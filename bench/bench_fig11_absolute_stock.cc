// Reproduces Fig. 11: absolute WN vs WA times on stock-data.
//
// Same measurements as Fig. 10 presented as absolute seconds per method
// (the paper plots WN and WA bars per k; note the log scale for mode).

#include "tradeoff_common.h"

using namespace affinity;
using namespace affinity::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  Banner("Fig. 11", "stock-data: absolute time comparison, WN vs WA", args);
  const ts::Dataset dataset = StockAtScale(args.scale);
  std::printf("measure,k,wn_seconds,wa_seconds\n");
  for (const TradeoffRow& row : RunTradeoff(dataset, {6, 10, 14, 18, 22})) {
    std::printf("%s,%zu,%.6f,%.6f\n", std::string(core::MeasureName(row.measure)).c_str(),
                row.k, row.wn_seconds, row.wa_seconds);
  }
  return 0;
}
