#ifndef AFFINITY_BENCH_SELECTION_COMMON_H_
#define AFFINITY_BENCH_SELECTION_COMMON_H_

/// \file selection_common.h
/// Shared driver for the Fig. 15 / Fig. 16 / Table 4 experiments: timing
/// MET and MER queries under the WN / WA / WF / SCAPE strategies at
/// controlled result-set sizes.
///
/// Thresholds are chosen from the quantiles of the measure's value
/// distribution so the x-axis (result size) sweeps 0 → all pairs, exactly
/// how the paper presents these figures.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/framework.h"
#include "core/query.h"

namespace affinity::bench {

/// All pairwise (or per-series) WA values of a measure, descending.
inline std::vector<double> SortedValuesDescending(const core::Affinity& fw,
                                                  core::Measure measure) {
  std::vector<double> values;
  const ts::DataMatrix& data = fw.data();
  if (core::IsLocation(measure)) {
    for (ts::SeriesId v = 0; v < data.n(); ++v) {
      values.push_back(*fw.model().SeriesMeasure(measure, v));
    }
  } else {
    for (ts::SeriesId u = 0; u + 1 < data.n(); ++u) {
      for (ts::SeriesId v = u + 1; v < data.n(); ++v) {
        values.push_back(*fw.model().PairMeasure(measure, ts::SequencePair(u, v)));
      }
    }
  }
  std::sort(values.begin(), values.end(), std::greater<double>());
  return values;
}

/// Threshold that yields approximately `target` results for "value > τ".
inline double ThresholdForResultSize(const std::vector<double>& sorted_desc,
                                     std::size_t target) {
  if (target == 0) return sorted_desc.front() + 1.0;
  if (target >= sorted_desc.size()) return sorted_desc.back() - 1.0;
  return sorted_desc[target];
}

/// Times one MET query; aborts the process on error (bench context).
inline double TimeMet(const core::QueryEngine& engine, const core::MetRequest& request,
                      core::QueryMethod method, std::size_t* result_size) {
  Stopwatch watch;
  auto result = engine.Met(request, method);
  const double seconds = watch.ElapsedSeconds();
  if (!result.ok()) {
    std::fprintf(stderr, "MET failed (%s): %s\n",
                 std::string(core::QueryMethodName(method)).c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  *result_size = result->pairs.size() + result->series.size();
  return seconds;
}

/// Times one MER query.
inline double TimeMer(const core::QueryEngine& engine, const core::MerRequest& request,
                      core::QueryMethod method, std::size_t* result_size) {
  Stopwatch watch;
  auto result = engine.Mer(request, method);
  const double seconds = watch.ElapsedSeconds();
  if (!result.ok()) {
    std::fprintf(stderr, "MER failed (%s): %s\n",
                 std::string(core::QueryMethodName(method)).c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  *result_size = result->pairs.size() + result->series.size();
  return seconds;
}

/// Builds the full framework over sensor-data (the dataset Figs. 14–16 and
/// Table 4 use).
inline core::Affinity BuildSensorFramework(double scale) {
  const ts::Dataset dataset = SensorAtScale(scale);
  auto fw = core::Affinity::Build(dataset.matrix);
  if (!fw.ok()) {
    std::fprintf(stderr, "framework build failed: %s\n", fw.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(fw).value();
}

}  // namespace affinity::bench

#endif  // AFFINITY_BENCH_SELECTION_COMMON_H_
