// Steady-state streaming refresh latency: incremental maintenance vs full
// rebuild (DESIGN.md §8), over the synthetic stock generator — plus the
// sharded-router scaling sweep (DESIGN.md §9).
//
// For every (window, interval) configuration the harness feeds a
// StreamingAffinity past its first build, then times each subsequent
// refresh (the Append calls that absorb one interval). The incremental
// path pays O(interval) per relationship plus O(n·window) exact
// recomputation; the rebuild path pays the full AFCLST → SYMEX+ → SCAPE
// build. The headline row is window=1024, interval=1, where the delta
// path must be ≥ 5× faster.
//
// With --shards=LIST (e.g. --shards=1,8) the harness instead sweeps
// `ShardedAffinity` at each shard count over one shared pool, timing the
// steady-state interval (scatter appends + concurrent per-shard
// incremental refreshes). The acceptance bar: 8-shard steady-state
// refresh latency within 2× of the 1-shard configuration at the same
// thread count (per-shard relationship counts shrink quadratically, so
// sharding should win outright).
//
// Output: human-readable rows on stdout, plus google-benchmark-compatible
// JSON with --benchmark_format=json [--benchmark_out=FILE] so CI can
// upload a BENCH_*.json artifact without needing the benchmark library.
//
// With --serve the harness instead runs the lock-free serving gates
// (DESIGN.md §11): flat-replica vs B+-tree selection latency at window
// 4096 (must be ≥ 2× and bitwise identical) and reader throughput under
// interval=1 slides vs idle (must stay ≥ 80%) — both enforced with a
// non-zero exit.
//
// With --serve-publish it runs the incremental epoch-publication gate:
// steady-state delta publication (COW window + shared/spliced SCAPE runs)
// at window 4096 / interval 1 must be ≥ 4× faster than a from-scratch
// flatten, bitwise identical, with bytes-copied accounting per epoch —
// also enforced with a non-zero exit.
//
// With --dirty it runs the dirty-ingestion gates (DESIGN.md §12): the
// masked pairwise-complete kernels over a fully-valid window must stay
// within 10% of the dense kernels (the dense-fast-path contract, enforced
// with a non-zero exit and a bitwise identity check), plus the
// steady-state refresh cost of a stream carrying ~5% gaps through
// AppendMasked versus the dense Append baseline.
//
//   $ ./bench_streaming --quick
//   $ ./bench_streaming --benchmark_format=json --benchmark_out=BENCH_streaming.json
//   $ ./bench_streaming --quick --shards=1,8 --benchmark_out=BENCH_shard_streaming.json
//   $ ./bench_streaming --quick --serve --benchmark_out=BENCH_serve.json
//   $ ./bench_streaming --quick --serve-publish --benchmark_out=BENCH_serve_publish.json
//   $ ./bench_streaming --quick --dirty --benchmark_out=BENCH_dirty.json

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <cstdint>

#include "common/random.h"
#include "common/stopwatch.h"
#include "core/kernels.h"
#include "core/streaming.h"
#include "serve/serve_query.h"
#include "shard/sharded.h"
#include "ts/generators.h"

namespace {

using namespace affinity;

struct Config {
  std::size_t window;
  std::size_t interval;
  core::UpdateMode mode;
};

struct Result {
  Config config;
  std::size_t refreshes = 0;
  double mean_seconds = 0;
  double min_seconds = 0;
  std::size_t rekeys = 0;
  std::size_t refits = 0;
  // Retained block-partial accounting (incremental mode; zeros otherwise).
  std::size_t recompute_blocks_touched = 0;
  std::size_t recompute_blocks_reused = 0;
};

const char* ModeName(core::UpdateMode mode) {
  return mode == core::UpdateMode::kIncremental ? "incremental" : "rebuild";
}

struct ShardConfig {
  std::size_t shards;
  std::size_t threads;
  std::size_t window;
  std::size_t interval;
};

struct ShardResult {
  ShardConfig config;
  std::size_t refreshes = 0;
  double mean_seconds = 0;
  double min_seconds = 0;
  std::size_t rekeys = 0;
  std::size_t refits = 0;
  // Cross co-moment cache accounting (ISSUE 4 acceptance: repeated MET on
  // a warm cache does zero raw pair scans for cached pairs).
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  double cache_hit_ratio = 0;
  std::size_t warm_pair_scans = 0;  ///< raw cross-pair scans during the warm repeats
};

ShardResult RunShardConfig(const ShardConfig& config, const ts::Dataset& feed,
                           std::size_t measured) {
  shard::ShardedOptions options;
  options.shards = config.shards;
  options.streaming.window = config.window;
  options.streaming.rebuild_interval = config.interval;
  options.streaming.mode = core::UpdateMode::kIncremental;
  options.streaming.build.afclst.k = config.shards > 1 ? 3 : 6;
  options.streaming.build.build_dft = false;
  options.streaming.build.threads = config.threads;
  // Watch every cross pair so the warm-query probe below exercises the
  // co-moment cache end to end.
  options.cross_cache.budget = static_cast<std::size_t>(-1);
  auto service = shard::ShardedAffinity::Create(feed.matrix.names(), options);
  if (!service.ok()) {
    std::fprintf(stderr, "sharded create failed: %s\n", service.status().ToString().c_str());
    std::exit(1);
  }

  std::vector<double> row(feed.matrix.n());
  std::size_t next = 0;
  const auto append = [&]() {
    for (std::size_t j = 0; j < feed.matrix.n(); ++j) {
      row[j] = feed.matrix.matrix()(next % feed.matrix.m(), j);
    }
    ++next;
    const auto result = service->Append(row);
    if (!result.ok()) {
      std::fprintf(stderr, "sharded append failed: %s\n", result.status.ToString().c_str());
      std::exit(1);
    }
    return result;
  };

  while (!service->ready()) append();
  for (std::size_t i = 0; i < config.interval; ++i) append();

  ShardResult out;
  out.config = config;
  out.min_seconds = 1e300;
  double total = 0;
  for (std::size_t r = 0; r < measured; ++r) {
    Stopwatch watch;
    bool refreshed = false;
    for (std::size_t i = 0; i < config.interval; ++i) refreshed |= append().refreshed;
    const double seconds = watch.ElapsedSeconds();
    if (!refreshed) {
      std::fprintf(stderr, "expected a refresh per interval\n");
      std::exit(1);
    }
    total += seconds;
    out.min_seconds = std::min(out.min_seconds, seconds);
    ++out.refreshes;
  }
  out.mean_seconds = total / static_cast<double>(out.refreshes);
  out.rekeys = service->maintenance().tree_rekeys;
  out.refits = service->maintenance().relationships_refit;

  // Warm-cache probe: repeated MET on the freshly stamped snapshot. Every
  // watched cross pair must answer from its co-moments — zero raw pair
  // scans across the repeats.
  const core::CrossSweepStats before = service->cross_sweep_stats();
  for (int q = 0; q < 8; ++q) {
    auto met = service->Met({core::Measure::kCorrelation, 0.5, true});
    if (!met.ok()) {
      std::fprintf(stderr, "warm MET failed: %s\n", met.status().ToString().c_str());
      std::exit(1);
    }
  }
  const core::CrossSweepStats after = service->cross_sweep_stats();
  out.warm_pair_scans = after.pairs_scanned - before.pairs_scanned;
  out.cache_hits = service->cross_cache_stats().hits;
  out.cache_misses = service->cross_cache_stats().misses;
  out.cache_hit_ratio = service->cross_cache_stats().HitRatio();
  return out;
}

int RunShardSweep(const std::vector<std::size_t>& shard_counts, bool quick, bool json,
                  const std::string& out_path) {
  ts::DatasetSpec spec;
  spec.num_series = 128;
  spec.num_samples = 2048;
  spec.num_clusters = 6;
  spec.noise_level = 0.015;
  spec.seed = 7;
  const ts::Dataset feed = ts::MakeStockData(spec);
  const std::size_t measured = quick ? 8 : 32;
  const std::size_t threads = 8;

  std::vector<ShardConfig> configs;
  for (const std::size_t shards : shard_counts) {
    configs.push_back({shards, threads, 256, 16});
    configs.push_back({shards, threads, 256, 1});
  }

  std::printf("# bench_streaming --shards — steady-state sharded refresh latency, "
              "stock generator (n=%zu, threads=%zu)\n", spec.num_series, threads);
  std::printf(
      "shards,threads,window,interval,refreshes,mean_us,min_us,"
      "cache_hits,cache_misses,cache_hit_ratio,warm_pair_scans\n");
  std::vector<ShardResult> results;
  for (const ShardConfig& config : configs) {
    ShardResult r = RunShardConfig(config, feed, measured);
    results.push_back(r);
    std::printf("%zu,%zu,%zu,%zu,%zu,%.1f,%.1f,%zu,%zu,%.3f,%zu\n", config.shards,
                config.threads, config.window, config.interval, r.refreshes,
                r.mean_seconds * 1e6, r.min_seconds * 1e6, r.cache_hits, r.cache_misses,
                r.cache_hit_ratio, r.warm_pair_scans);
  }

  // Scaling headline: each shard count vs the first listed (typically 1).
  if (results.size() > 2) {
    std::printf("\nshards,interval,speedup_vs_first\n");
    for (std::size_t i = 2; i < results.size(); ++i) {
      const ShardResult& base = results[i % 2];
      const ShardResult& r = results[i];
      std::printf("%zu,%zu,%.2fx\n", r.config.shards, r.config.interval,
                  base.mean_seconds / r.mean_seconds);
    }
  }

  if (json) {
    FILE* out = out_path.empty() ? stdout : std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"context\": {\"executable\": \"bench_streaming\", "
                 "\"mode\": \"sharded\", \"num_series\": %zu, \"threads\": %zu, "
                 "\"kernel_backend\": \"%s\"},\n"
                 "  \"benchmarks\": [\n", spec.num_series, threads,
                 core::kernels::ActiveBackendName());
    for (std::size_t i = 0; i < results.size(); ++i) {
      const ShardResult& r = results[i];
      std::fprintf(out,
                   "    {\"name\": \"shard_refresh/shards:%zu/threads:%zu/window:%zu/"
                   "interval:%zu\", \"run_type\": \"iteration\", \"iterations\": %zu, "
                   "\"real_time\": %.3f, \"cpu_time\": %.3f, \"time_unit\": \"us\", "
                   "\"rekeys\": %zu, \"refits\": %zu, \"cache_hits\": %zu, "
                   "\"cache_misses\": %zu, \"cache_hit_ratio\": %.3f, "
                   "\"warm_pair_scans\": %zu}%s\n",
                   r.config.shards, r.config.threads, r.config.window, r.config.interval,
                   r.refreshes, r.mean_seconds * 1e6, r.mean_seconds * 1e6, r.rekeys, r.refits,
                   r.cache_hits, r.cache_misses, r.cache_hit_ratio, r.warm_pair_scans,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    if (!out_path.empty()) std::fclose(out);
  }
  return 0;
}

// --- Retained block-partial sweep (ISSUE 5 acceptance) ---------------------
//
// Steady-state incremental refreshes at interval 1, with the
// BlockPartialCache on vs off: the retained path must cut the exact
// RecomputeDerived/refit recomputation cost ≥ 3× at window 4096 and show
// recompute_blocks_reused > 0 (interior block partials actually served
// from the cache).

struct Dot12Config {
  std::size_t window;
  bool retain;
};

struct Dot12Result {
  Dot12Config config;
  std::size_t refreshes = 0;
  double mean_refresh_us = 0;
  double mean_recompute_us = 0;
  std::size_t blocks_touched = 0;
  std::size_t blocks_reused = 0;
  std::size_t prefix_resumes = 0;
};

Dot12Result RunDot12Config(const Dot12Config& config, const ts::Dataset& feed,
                           std::size_t measured) {
  core::StreamingOptions options;
  options.window = config.window;
  options.rebuild_interval = 1;
  options.mode = core::UpdateMode::kIncremental;
  options.incremental.retain_block_partials = config.retain;
  options.build.afclst.k = 4;
  options.build.build_dft = false;
  auto stream = core::StreamingAffinity::Create(feed.matrix.names(), options);
  if (!stream.ok()) {
    std::fprintf(stderr, "create failed: %s\n", stream.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<double> row(feed.matrix.n());
  std::size_t next = 0;
  const auto append = [&]() {
    for (std::size_t j = 0; j < feed.matrix.n(); ++j) {
      row[j] = feed.matrix.matrix()(next % feed.matrix.m(), j);
    }
    ++next;
    const auto result = stream->Append(row);
    if (!result.ok()) {
      std::fprintf(stderr, "append failed: %s\n", result.status.ToString().c_str());
      std::exit(1);
    }
    return result;
  };
  while (!stream->ready()) append();
  // One warm interval so the retained chains are past their cold build.
  for (int i = 0; i < 2; ++i) append();

  Dot12Result out;
  out.config = config;
  const core::MaintenanceProfile before = stream->maintenance();
  Stopwatch watch;
  for (std::size_t r = 0; r < measured; ++r) append();
  const double total_seconds = watch.ElapsedSeconds();
  const core::MaintenanceProfile after = stream->maintenance();
  out.refreshes = after.refreshes - before.refreshes;
  out.mean_refresh_us = total_seconds * 1e6 / static_cast<double>(out.refreshes);
  out.mean_recompute_us = (after.recompute_seconds - before.recompute_seconds) * 1e6 /
                          static_cast<double>(out.refreshes);
  out.blocks_touched = after.recompute_blocks_touched - before.recompute_blocks_touched;
  out.blocks_reused = after.recompute_blocks_reused - before.recompute_blocks_reused;
  out.prefix_resumes = after.recompute_prefix_resumes - before.recompute_prefix_resumes;
  return out;
}

int RunDot12Sweep(bool quick, bool json, const std::string& out_path) {
  ts::DatasetSpec spec;
  spec.num_series = 32;
  spec.num_samples = 6144;
  spec.num_clusters = 4;
  spec.noise_level = 0.015;
  spec.seed = 7;
  const ts::Dataset feed = ts::MakeStockData(spec);
  const std::size_t measured = quick ? 16 : 64;

  std::vector<Dot12Config> configs;
  for (const std::size_t window : {std::size_t{1024}, std::size_t{4096}}) {
    configs.push_back({window, true});
    configs.push_back({window, false});
  }
  std::printf("# bench_streaming --dot12 — retained block partials vs cold exact "
              "recomputation (n=%zu, interval=1)\n", spec.num_series);
  std::printf("window,retain,refreshes,mean_refresh_us,mean_recompute_us,"
              "recompute_blocks_touched,recompute_blocks_reused,prefix_resumes\n");
  std::vector<Dot12Result> results;
  for (const Dot12Config& config : configs) {
    Dot12Result r = RunDot12Config(config, feed, measured);
    results.push_back(r);
    std::printf("%zu,%s,%zu,%.1f,%.1f,%zu,%zu,%zu\n", config.window,
                config.retain ? "on" : "off", r.refreshes, r.mean_refresh_us,
                r.mean_recompute_us, r.blocks_touched, r.blocks_reused, r.prefix_resumes);
  }
  std::printf("\nwindow,recompute_speedup_retained\n");
  bool gate_ok = true;
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    const double speedup = results[i + 1].mean_recompute_us / results[i].mean_recompute_us;
    std::printf("%zu,%.2fx\n", results[i].config.window, speedup);
    // The ISSUE 5 acceptance gate, enforced (not just reported): at
    // window 4096 / interval 1 retention must cut the exact recompute
    // cost ≥3× and actually reuse interior block partials.
    if (results[i].config.window == 4096 &&
        (speedup < 3.0 || results[i].blocks_reused == 0)) {
      std::fprintf(stderr,
                   "FAIL: retained partials at window 4096 give %.2fx (< 3x) "
                   "or zero reused blocks (%zu)\n",
                   speedup, results[i].blocks_reused);
      gate_ok = false;
    }
  }
  if (json) {
    FILE* out = out_path.empty() ? stdout : std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    // The dispatched backend makes runner generations comparable: a
    // scalar-only runner's µs rows must not be trended against avx2 ones.
    std::fprintf(out, "{\n  \"context\": {\"executable\": \"bench_streaming\", "
                 "\"mode\": \"dot12_slide\", \"num_series\": %zu, "
                 "\"kernel_backend\": \"%s\"},\n  \"benchmarks\": [\n",
                 spec.num_series, core::kernels::ActiveBackendName());
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Dot12Result& r = results[i];
      std::fprintf(out,
                   "    {\"name\": \"dot12_slide/window:%zu/retain:%s\", "
                   "\"run_type\": \"iteration\", \"iterations\": %zu, "
                   "\"real_time\": %.3f, \"cpu_time\": %.3f, \"time_unit\": \"us\", "
                   "\"recompute_us\": %.3f, \"recompute_blocks_touched\": %zu, "
                   "\"recompute_blocks_reused\": %zu, \"prefix_resumes\": %zu}%s\n",
                   r.config.window, r.config.retain ? "on" : "off", r.refreshes,
                   r.mean_refresh_us, r.mean_refresh_us, r.mean_recompute_us,
                   r.blocks_touched, r.blocks_reused, r.prefix_resumes,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    if (!out_path.empty()) std::fclose(out);
  }
  return gate_ok ? 0 : 1;
}

// --- Lock-free serving sweep (ISSUE 7 acceptance) --------------------------
//
// Two enforced gates, non-zero exit on failure:
//  1. Flat-replica selection: a covariance SCAPE MET served from the
//     published snapshot (sorted-array seeks + bulk-accepted runs) must be
//     ≥ 2× faster than the live B+-tree traversal at window 4096 — and
//     bitwise identical. n is sized so the walk is memory-bound (tens of
//     thousands of accepted pairs); tiny instances measure per-query fixed
//     cost, not index traversal.
//  2. Serving under maintenance: sustained query throughput from reader
//     threads while the owner slides at interval 1 (a refresh per append)
//     must stay ≥ 80% of the idle-stream throughput — queries never wait
//     on maintenance. The writer is paced to ~10% CPU duty so the gate
//     measures serving interference (blocking), not core fair-share on a
//     single-core CI box.

struct ServeResult {
  double flat_us = 0;
  double btree_us = 0;
  double flat_speedup = 0;
  double idle_qps = 0;
  double maintained_qps = 0;
  double qps_ratio = 0;
  std::uint64_t epochs = 0;
  // Publication / fallback accounting of the gate-2 stream (DESIGN.md §11).
  core::MaintenanceProfile profile;
};

int RunServeSweep(bool quick, bool json, const std::string& out_path) {
  ServeResult result;
  bool gate_ok = true;

  // Gate 1: flat vs B+-tree selection latency at window 4096.
  {
    ts::DatasetSpec spec;
    spec.num_series = 384;
    spec.num_samples = 6144;
    spec.num_clusters = 6;
    spec.noise_level = 0.015;
    spec.seed = 7;
    const ts::Dataset feed = ts::MakeStockData(spec);
    core::StreamingOptions options;
    options.window = 4096;
    options.rebuild_interval = 16;
    options.mode = core::UpdateMode::kIncremental;
    options.build.afclst.k = 6;
    options.build.build_dft = false;
    auto stream = core::StreamingAffinity::Create(feed.matrix.names(), options);
    if (!stream.ok()) {
      std::fprintf(stderr, "create failed: %s\n", stream.status().ToString().c_str());
      return 1;
    }
    std::vector<double> row(feed.matrix.n());
    std::size_t next = 0;
    while (!stream->ready() || next < options.window + options.rebuild_interval) {
      for (std::size_t j = 0; j < feed.matrix.n(); ++j) {
        row[j] = feed.matrix.matrix()(next % feed.matrix.m(), j);
      }
      ++next;
      if (!stream->Append(row).ok()) {
        std::fprintf(stderr, "append failed\n");
        return 1;
      }
    }
    auto snap = stream->serving();
    if (snap == nullptr) {
      std::fprintf(stderr, "no serving snapshot after refresh\n");
      return 1;
    }
    const core::MetRequest req{core::Measure::kCovariance, 0.0, true};
    const auto& engine = stream->framework()->engine();
    // Identity first (the contract the latency win must not cost).
    auto flat = serve::SnapshotMet(*snap, req, core::QueryMethod::kScape);
    auto live = engine.Met(req, core::QueryMethod::kScape);
    if (!flat.ok() || !live.ok()) {
      std::fprintf(stderr, "serve/live MET failed\n");
      return 1;
    }
    std::sort(flat->pairs.begin(), flat->pairs.end());
    std::sort(live->pairs.begin(), live->pairs.end());
    if (flat->pairs != live->pairs) {
      std::fprintf(stderr, "FAIL: snapshot-served MET diverged from the live index\n");
      gate_ok = false;
    }
    const std::size_t repeats = quick ? 60 : 300;
    std::size_t keep = 0;  // defeat dead-code elimination
    {
      Stopwatch watch;
      for (std::size_t r = 0; r < repeats; ++r) {
        auto s = serve::SnapshotMet(*snap, req, core::QueryMethod::kScape);
        if (s.ok()) keep += s->pairs.size();
      }
      result.flat_us = watch.ElapsedSeconds() * 1e6 / static_cast<double>(repeats);
    }
    {
      Stopwatch watch;
      for (std::size_t r = 0; r < repeats; ++r) {
        auto s = engine.Met(req, core::QueryMethod::kScape);
        if (s.ok()) keep += s->pairs.size();
      }
      result.btree_us = watch.ElapsedSeconds() * 1e6 / static_cast<double>(repeats);
    }
    if (keep == 0) std::fprintf(stderr, "# (empty selections)\n");
    result.flat_speedup = result.btree_us / result.flat_us;
    if (result.flat_speedup < 2.0) {
      std::fprintf(stderr, "FAIL: flat selection %.2fx vs B+-tree (< 2x) at window 4096\n",
                   result.flat_speedup);
      gate_ok = false;
    }
  }

  // Gate 2: reader throughput under interval=1 slides vs idle.
  {
    ts::DatasetSpec spec;
    spec.num_series = 64;
    spec.num_samples = 2048;
    spec.num_clusters = 4;
    spec.noise_level = 0.015;
    spec.seed = 7;
    const ts::Dataset feed = ts::MakeStockData(spec);
    core::StreamingOptions options;
    options.window = 256;
    options.rebuild_interval = 1;
    options.mode = core::UpdateMode::kIncremental;
    options.build.afclst.k = 4;
    options.build.build_dft = false;
    auto stream = core::StreamingAffinity::Create(feed.matrix.names(), options);
    if (!stream.ok()) {
      std::fprintf(stderr, "create failed: %s\n", stream.status().ToString().c_str());
      return 1;
    }
    std::vector<double> row(feed.matrix.n());
    std::size_t next = 0;
    const auto append = [&]() {
      for (std::size_t j = 0; j < feed.matrix.n(); ++j) {
        row[j] = feed.matrix.matrix()(next % feed.matrix.m(), j);
      }
      ++next;
      if (!stream->Append(row).ok()) {
        std::fprintf(stderr, "append failed\n");
        std::exit(1);
      }
    };
    while (!stream->ready()) append();
    append();  // one slide so the steady-state epoch is the serving one

    // Measure the per-append slide+refresh+publish cost, then pace the
    // writer at ~10% duty (sleep 9× the append cost between slides). On a
    // single-core runner a free-running writer would simply take its CPU
    // fair-share from the readers — the gate is about whether queries
    // *block* on maintenance, and a blocked reader craters far below the
    // fair-share floor this pacing establishes.
    double append_seconds;
    {
      const std::size_t warm = 16;
      Stopwatch watch;
      for (std::size_t i = 0; i < warm; ++i) append();
      append_seconds = watch.ElapsedSeconds() / static_cast<double>(warm);
    }
    const auto pace = std::chrono::duration<double>(append_seconds * 9.0);

    const double duration = quick ? 0.3 : 0.8;
    const std::size_t readers = 2;
    const core::MetRequest req{core::Measure::kCorrelation, 0.9, true};
    const auto run_phase = [&](bool slide) {
      std::atomic<bool> stop{false};
      std::atomic<std::size_t> queries{0};
      std::vector<std::thread> pool;
      for (std::size_t r = 0; r < readers; ++r) {
        pool.emplace_back([&stream, &stop, &queries, &req] {
          while (!stop.load(std::memory_order_relaxed)) {
            auto s = stream->serving();
            if (s == nullptr) continue;
            auto met = serve::SnapshotMet(*s, req, core::QueryMethod::kScape);
            if (met.ok()) queries.fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
      Stopwatch watch;
      if (slide) {
        while (watch.ElapsedSeconds() < duration) {
          append();
          std::this_thread::sleep_for(pace);
        }
      } else {
        while (watch.ElapsedSeconds() < duration) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      }
      const double elapsed = watch.ElapsedSeconds();
      stop.store(true);
      for (std::thread& t : pool) t.join();
      return static_cast<double>(queries.load()) / elapsed;
    };
    result.idle_qps = run_phase(false);
    const std::uint64_t before = stream->serving()->generation;
    result.maintained_qps = run_phase(true);
    result.epochs = stream->serving()->generation - before;
    result.qps_ratio = result.maintained_qps / result.idle_qps;
    if (result.qps_ratio < 0.80) {
      std::fprintf(stderr,
                   "FAIL: QPS under interval=1 slides is %.0f%% of idle (< 80%%)\n",
                   result.qps_ratio * 100.0);
      gate_ok = false;
    }
    if (result.epochs == 0) {
      std::fprintf(stderr, "FAIL: no epochs published during the maintained phase\n");
      gate_ok = false;
    }
    result.profile = stream->maintenance();
  }

  std::printf("# bench_streaming --serve — lock-free snapshot serving\n");
  std::printf("metric,value\n");
  std::printf("flat_met_us,%.1f\n", result.flat_us);
  std::printf("btree_met_us,%.1f\n", result.btree_us);
  std::printf("flat_speedup,%.2fx\n", result.flat_speedup);
  std::printf("idle_qps,%.0f\n", result.idle_qps);
  std::printf("maintained_qps,%.0f\n", result.maintained_qps);
  std::printf("qps_ratio,%.3f\n", result.qps_ratio);
  std::printf("epochs_published,%llu\n", static_cast<unsigned long long>(result.epochs));
  std::printf("serve_fallbacks,%zu\n", result.profile.serve_fallbacks);
  std::printf("epochs_delta,%zu\n", result.profile.epochs_delta);
  std::printf("window_segments_reused,%zu\n", result.profile.window_segments_reused);
  std::printf("scape_runs_shared,%zu\n", result.profile.scape_runs_shared);
  std::printf("scape_runs_spliced,%zu\n", result.profile.scape_runs_spliced);
  std::printf("snapshot_bytes_copied,%zu\n", result.profile.snapshot_bytes_copied);

  if (json) {
    FILE* out = out_path.empty() ? stdout : std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"context\": {\"executable\": \"bench_streaming\", "
                 "\"mode\": \"serve\", \"kernel_backend\": \"%s\"},\n  \"benchmarks\": [\n",
                 core::kernels::ActiveBackendName());
    std::fprintf(out,
                 "    {\"name\": \"serve_flat_met/window:4096\", \"run_type\": \"iteration\", "
                 "\"iterations\": 1, \"real_time\": %.3f, \"cpu_time\": %.3f, "
                 "\"time_unit\": \"us\", \"btree_us\": %.3f, \"flat_speedup\": %.3f},\n",
                 result.flat_us, result.flat_us, result.btree_us, result.flat_speedup);
    std::fprintf(out,
                 "    {\"name\": \"serve_qps/interval:1\", \"run_type\": \"iteration\", "
                 "\"iterations\": 1, \"real_time\": %.3f, \"cpu_time\": %.3f, "
                 "\"time_unit\": \"us\", \"idle_qps\": %.1f, \"maintained_qps\": %.1f, "
                 "\"qps_ratio\": %.3f, \"epochs_published\": %llu, "
                 "\"serve_fallbacks\": %zu, \"epochs_delta\": %zu, "
                 "\"window_segments_reused\": %zu, \"scape_runs_shared\": %zu, "
                 "\"scape_runs_spliced\": %zu, \"snapshot_bytes_copied\": %zu}\n",
                 1e6 / (result.maintained_qps > 0 ? result.maintained_qps : 1.0),
                 1e6 / (result.maintained_qps > 0 ? result.maintained_qps : 1.0),
                 result.idle_qps, result.maintained_qps, result.qps_ratio,
                 static_cast<unsigned long long>(result.epochs), result.profile.serve_fallbacks,
                 result.profile.epochs_delta, result.profile.window_segments_reused,
                 result.profile.scape_runs_shared, result.profile.scape_runs_spliced,
                 result.profile.snapshot_bytes_copied);
    std::fprintf(out, "  ]\n}\n");
    if (!out_path.empty()) std::fclose(out);
  }
  return gate_ok ? 0 : 1;
}

// --- Incremental epoch publication sweep (--serve-publish) -----------------
//
// The ISSUE 8 acceptance gate, enforced with a non-zero exit: at window
// 4096 / interval 1, steady-state *delta* publication (COW window
// segments + shared/spliced SCAPE runs + bulk WA refill) must be ≥ 4×
// faster than a from-scratch flatten of the same live structures — while
// publishing bitwise-identical snapshots (spot-checked here per run; the
// exhaustive per-epoch identity sweep lives in serve_delta_test).

struct ServePublishResult {
  std::size_t epochs = 0;        ///< measured steady-state publications
  std::size_t delta_epochs = 0;  ///< ... of which went through BuildDelta
  double delta_mean_us = 0;      ///< median publication wall time, delta path
  double full_mean_us = 0;       ///< median from-scratch flatten wall time
  double publish_speedup = 0;    ///< full / delta
  std::size_t delta_bytes_per_epoch = 0;
  std::size_t full_bytes_per_epoch = 0;
  std::size_t window_segments_reused = 0;
  std::size_t runs_shared = 0;
  std::size_t runs_spliced = 0;
};

double MedianUs(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  const std::size_t h = samples.size() / 2;
  return samples.size() % 2 == 1 ? samples[h] : 0.5 * (samples[h - 1] + samples[h]);
}

/// Spread line for the CSV output: a noisy host (this gate runs on shared
/// CI runners) shows up as a wide p10..p90 band around the median.
void PrintSpread(const char* name, const std::vector<double>& sorted) {
  if (sorted.empty()) return;
  const double p10 = sorted[sorted.size() / 10];
  const double p90 = sorted[sorted.size() - 1 - sorted.size() / 10];
  std::printf("%s_p10_us,%.1f\n%s_p90_us,%.1f\n", name, p10, name, p90);
}

int RunServePublishSweep(bool quick, bool json, const std::string& out_path) {
  ts::DatasetSpec spec;
  spec.num_series = 128;
  spec.num_samples = 6144;
  spec.num_clusters = 6;
  spec.noise_level = 0.015;
  spec.seed = 7;
  const ts::Dataset feed = ts::MakeStockData(spec);
  core::StreamingOptions options;
  options.window = 4096;
  options.rebuild_interval = 1;
  options.mode = core::UpdateMode::kIncremental;
  options.build.afclst.k = 6;
  options.build.build_dft = false;
  auto stream = core::StreamingAffinity::Create(feed.matrix.names(), options);
  if (!stream.ok()) {
    std::fprintf(stderr, "create failed: %s\n", stream.status().ToString().c_str());
    return 1;
  }
  std::vector<double> row(feed.matrix.n());
  std::size_t next = 0;
  const auto append = [&]() {
    for (std::size_t j = 0; j < feed.matrix.n(); ++j) {
      row[j] = feed.matrix.matrix()(next % feed.matrix.m(), j);
    }
    ++next;
    if (!stream->Append(row).ok()) {
      std::fprintf(stderr, "append failed\n");
      std::exit(1);
    }
  };
  while (!stream->ready()) append();
  // Warm slides: the first post-build epoch full-flattens (no prior with
  // delta provenance); steady state starts at the second.
  for (int i = 0; i < 4; ++i) append();

  ServePublishResult result;
  bool gate_ok = true;

  // Steady-state delta publication: the publish-side profile isolates the
  // flatten cost from the rest of the slide (absorb, rolling, compaction).
  // Delta slides and from-scratch flattens alternate in *blocks* — blocks
  // keep the within-phase cache behaviour of real steady state (a serving
  // stream never full-flattens between slides), while the alternation
  // keeps clock/frequency drift from biasing one side of the ratio.
  // Medians keep a descheduled slide from skewing the gate.
  const std::size_t rounds = 4;
  const std::size_t slides_per_round = quick ? 8 : 24;
  const std::size_t fulls_per_round = quick ? 3 : 8;
  std::vector<double> delta_samples;
  std::vector<double> full_samples;
  delta_samples.reserve(rounds * slides_per_round);
  full_samples.reserve(rounds * fulls_per_round);
  serve::PublishStats full_stats;
  const core::MaintenanceProfile before = stream->maintenance();
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t r = 0; r < slides_per_round; ++r) {
      append();
      delta_samples.push_back(stream->maintenance().last_publish_seconds * 1e6);
    }
    for (std::size_t r = 0; r < fulls_per_round; ++r) {
      full_stats = serve::PublishStats();
      Stopwatch full_watch;
      auto full = serve::SnapshotBuilder::Build(
          stream->framework()->model(), stream->framework()->scape(),
          stream->framework()->engine().Capabilities(), stream->serving()->generation,
          stream->serving()->snapshot_row, &full_stats);
      full_samples.push_back(full_watch.ElapsedSeconds() * 1e6);
      if (full == nullptr) {
        std::fprintf(stderr, "cold flatten failed\n");
        return 1;
      }
    }
  }
  const core::MaintenanceProfile after = stream->maintenance();
  result.epochs = after.epochs_published - before.epochs_published;
  result.delta_epochs = after.epochs_delta - before.epochs_delta;
  result.delta_mean_us = MedianUs(delta_samples);
  result.full_mean_us = MedianUs(full_samples);
  result.full_bytes_per_epoch = full_stats.bytes_copied;
  result.delta_bytes_per_epoch =
      (after.snapshot_bytes_copied - before.snapshot_bytes_copied) / result.epochs;
  result.window_segments_reused = after.window_segments_reused - before.window_segments_reused;
  result.runs_shared = after.scape_runs_shared - before.scape_runs_shared;
  result.runs_spliced = after.scape_runs_spliced - before.scape_runs_spliced;
  if (result.delta_epochs != result.epochs) {
    std::fprintf(stderr, "FAIL: only %zu of %zu steady-state epochs used the delta path\n",
                 result.delta_epochs, result.epochs);
    gate_ok = false;
  }

  // The from-scratch baseline over the *same* live structures, and the
  // bitwise spot check against what the delta path actually published.
  auto published = stream->serving();
  auto cold = stream->BuildColdSnapshot();
  if (published == nullptr || cold == nullptr) {
    std::fprintf(stderr, "no snapshot to compare\n");
    return 1;
  }
  bool identical = published->generation == cold->generation &&
                   published->snapshot_row == cold->snapshot_row &&
                   published->pair_pivots.size() == cold->pair_pivots.size();
  for (int t = 0; identical && t < 6; ++t) {
    identical = published->pair_values[t] == cold->pair_values[t];
  }
  for (std::size_t p = 0; identical && p < cold->pair_pivots.size(); ++p) {
    for (int f = 0; identical && f < 2; ++f) {
      identical = published->pair_pivots[p].trees[f].runs->keys ==
                      cold->pair_pivots[p].trees[f].runs->keys &&
                  published->pair_pivots[p].trees[f].runs->pairs ==
                      cold->pair_pivots[p].trees[f].runs->pairs;
    }
  }
  if (!identical) {
    std::fprintf(stderr, "FAIL: delta-published snapshot diverged from the cold flatten\n");
    gate_ok = false;
  }
  result.publish_speedup = result.full_mean_us / result.delta_mean_us;
  if (result.publish_speedup < 4.0) {
    std::fprintf(stderr,
                 "FAIL: delta publication %.2fx vs full flatten (< 4x) at window 4096 / "
                 "interval 1\n",
                 result.publish_speedup);
    gate_ok = false;
  }

  std::printf("# bench_streaming --serve-publish — incremental epoch publication "
              "(window=4096, interval=1, n=%zu)\n", spec.num_series);
  std::printf("metric,value\n");
  std::printf("epochs,%zu\n", result.epochs);
  std::printf("delta_epochs,%zu\n", result.delta_epochs);
  std::printf("delta_publish_us,%.1f\n", result.delta_mean_us);
  std::printf("full_publish_us,%.1f\n", result.full_mean_us);
  PrintSpread("delta_publish", delta_samples);
  PrintSpread("full_publish", full_samples);
  std::printf("publish_speedup,%.2fx\n", result.publish_speedup);
  std::printf("delta_bytes_per_epoch,%zu\n", result.delta_bytes_per_epoch);
  std::printf("full_bytes_per_epoch,%zu\n", result.full_bytes_per_epoch);
  std::printf("window_segments_reused,%zu\n", result.window_segments_reused);
  std::printf("scape_runs_shared,%zu\n", result.runs_shared);
  std::printf("scape_runs_spliced,%zu\n", result.runs_spliced);

  if (json) {
    FILE* out = out_path.empty() ? stdout : std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"context\": {\"executable\": \"bench_streaming\", "
                 "\"mode\": \"serve_publish\", \"num_series\": %zu, "
                 "\"kernel_backend\": \"%s\"},\n  \"benchmarks\": [\n",
                 spec.num_series, core::kernels::ActiveBackendName());
    std::fprintf(out,
                 "    {\"name\": \"serve_publish_delta/window:4096/interval:1\", "
                 "\"run_type\": \"iteration\", \"iterations\": %zu, \"real_time\": %.3f, "
                 "\"cpu_time\": %.3f, \"time_unit\": \"us\", \"bytes_per_epoch\": %zu, "
                 "\"window_segments_reused\": %zu, \"scape_runs_shared\": %zu, "
                 "\"scape_runs_spliced\": %zu},\n",
                 result.delta_epochs, result.delta_mean_us, result.delta_mean_us,
                 result.delta_bytes_per_epoch, result.window_segments_reused, result.runs_shared,
                 result.runs_spliced);
    std::fprintf(out,
                 "    {\"name\": \"serve_publish_full/window:4096/interval:1\", "
                 "\"run_type\": \"iteration\", \"iterations\": 1, \"real_time\": %.3f, "
                 "\"cpu_time\": %.3f, \"time_unit\": \"us\", \"bytes_per_epoch\": %zu, "
                 "\"publish_speedup\": %.3f}\n",
                 result.full_mean_us, result.full_mean_us, result.full_bytes_per_epoch,
                 result.publish_speedup);
    std::fprintf(out, "  ]\n}\n");
    if (!out_path.empty()) std::fclose(out);
  }
  return gate_ok ? 0 : 1;
}

// --- Dirty-ingestion sweep (--dirty) ---------------------------------------
//
// Gate (enforced, non-zero exit): the masked pairwise-complete kernels
// over a *fully-valid* window must cost ≤ 10% more than the dense kernels
// on the same data — the DESIGN.md §12 dense-fast-path contract (a full
// mask pays one O(m) byte scan and then runs the dispatched dense kernel,
// bit for bit). The sweep also checks that identity directly: the masked
// and dense moment checksums must be bitwise equal.
//
// Reported (not gated — the quality surface costs what it costs): the
// steady-state refresh latency of a stream fed through AppendMasked with
// ~5% of samples gapped (aligner-style: forward-filled within the
// horizon, flagged beyond it) versus the dense Append baseline, plus the
// published quality surface and a MET spot check over the dirty stream.

struct DirtyResult {
  // Full-mask kernel gate.
  double dense_sweep_us = 0;
  double masked_sweep_us = 0;
  double masked_overhead = 0;  ///< masked/dense − 1 over the medians
  bool bitwise_identical = false;
  // Steady-state dirty refresh vs dense baseline.
  std::size_t refreshes = 0;
  double dirty_mean_us = 0;
  double dense_mean_us = 0;
  double gap_ratio = 0;   ///< observed invalid-cell fraction of the fed rows
  double fill_ratio = 0;  ///< observed forward-filled fraction
  double quality_min = 0;
  double quality_mean = 0;
  double met_min_score = 0;
  std::size_t met_pairs = 0;
};

int RunDirtySweep(bool quick, bool json, const std::string& out_path) {
  DirtyResult result;
  bool gate_ok = true;

  // Gate: masked kernels with an explicit full mask vs the dense kernels,
  // all-pairs moment sweep over one window. Blocks alternate so clock
  // drift cannot bias one side; medians absorb descheduled sweeps.
  {
    const std::size_t n = 64;
    const std::size_t m = 4096;
    ts::DatasetSpec spec;
    spec.num_series = n;
    spec.num_samples = m;
    spec.num_clusters = 4;
    spec.noise_level = 0.015;
    spec.seed = 7;
    const ts::Dataset feed = ts::MakeStockData(spec);
    std::vector<std::vector<double>> columns(n, std::vector<double>(m));
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t i = 0; i < m; ++i) columns[j][i] = feed.matrix.matrix()(i, j);
    }
    const std::vector<std::uint8_t> full(m, 1);

    double dense_check = 0;
    const auto dense_sweep = [&]() {
      double acc = 0;
      double mom[5];
      for (std::size_t a = 0; a < n; ++a) {
        acc += core::kernels::ColumnMarginals(columns[a].data(), m).sum;
        for (std::size_t b = a + 1; b < n; ++b) {
          core::kernels::FusedPairMoments(columns[a].data(), columns[b].data(), m, mom);
          acc += mom[4];
        }
      }
      return acc;
    };
    double masked_check = 0;
    const auto masked_sweep = [&]() {
      // The product calling convention (NormalizeMask): probe each
      // column's mask once per sweep, then every pair call over a clean
      // column takes the O(1) nullptr fast path instead of re-scanning
      // O(m) bytes per pair.
      std::vector<const std::uint8_t*> masks(n);
      for (std::size_t a = 0; a < n; ++a) {
        masks[a] = core::kernels::NormalizeMask(full.data(), m);
      }
      double acc = 0;
      double mom[5];
      std::size_t valid = 0;
      for (std::size_t a = 0; a < n; ++a) {
        acc += core::kernels::MaskedColumnMarginals(columns[a].data(), masks[a], m)
                   .marginals.sum;
        for (std::size_t b = a + 1; b < n; ++b) {
          core::kernels::MaskedFusedPairMoments(columns[a].data(), columns[b].data(),
                                                masks[a], masks[b], m, mom, &valid);
          acc += mom[4];
        }
      }
      return acc;
    };

    const std::size_t rounds = 4;
    const std::size_t sweeps_per_round = quick ? 5 : 12;
    std::vector<double> dense_samples;
    std::vector<double> masked_samples;
    dense_sweep();  // warm the cache once before either side is timed
    for (std::size_t round = 0; round < rounds; ++round) {
      for (std::size_t s = 0; s < sweeps_per_round; ++s) {
        Stopwatch watch;
        dense_check = dense_sweep();
        dense_samples.push_back(watch.ElapsedSeconds() * 1e6);
      }
      for (std::size_t s = 0; s < sweeps_per_round; ++s) {
        Stopwatch watch;
        masked_check = masked_sweep();
        masked_samples.push_back(watch.ElapsedSeconds() * 1e6);
      }
    }
    result.dense_sweep_us = MedianUs(dense_samples);
    result.masked_sweep_us = MedianUs(masked_samples);
    result.masked_overhead = result.masked_sweep_us / result.dense_sweep_us - 1.0;
    result.bitwise_identical = dense_check == masked_check;
    if (!result.bitwise_identical) {
      std::fprintf(stderr, "FAIL: full-mask masked sweep diverged from the dense sweep\n");
      gate_ok = false;
    }
    if (result.masked_overhead > 0.10) {
      std::fprintf(stderr,
                   "FAIL: masked kernels on a fully-valid window cost %.1f%% over dense "
                   "(> 10%%)\n",
                   result.masked_overhead * 100.0);
      gate_ok = false;
    }
  }

  // Steady-state refresh with ~5% gaps, against the dense baseline on the
  // same values. The dirty feed reproduces the aligner's emission: a
  // missing sample carries the last value forward, counts as filled while
  // the gap is ≤ max_fill rows old and as an explicit gap beyond that.
  {
    ts::DatasetSpec spec;
    spec.num_series = 64;
    spec.num_samples = 2048;
    spec.num_clusters = 4;
    spec.noise_level = 0.015;
    spec.seed = 7;
    const ts::Dataset feed = ts::MakeStockData(spec);
    const std::size_t n = feed.matrix.n();
    const std::size_t window = 512;
    const std::size_t interval = 16;
    const std::size_t measured = quick ? 8 : 32;
    const std::size_t max_fill = 4;

    core::StreamingOptions options;
    options.window = window;
    options.rebuild_interval = interval;
    options.mode = core::UpdateMode::kIncremental;
    options.build.afclst.k = 4;
    options.build.build_dft = false;

    auto dirty = core::StreamingAffinity::Create(feed.matrix.names(), options);
    auto dense = core::StreamingAffinity::Create(feed.matrix.names(), options);
    if (!dirty.ok() || !dense.ok()) {
      std::fprintf(stderr, "create failed\n");
      return 1;
    }

    // Dirty stream: aligner-style masked rows with ~5% missing samples.
    // Outages are bursty (runs of 1–10 rows) so some runs outlive the
    // fill horizon and the stream carries explicit gaps, not just fills.
    Xoshiro256 rng(41);
    std::vector<double> last(n, 0.0);
    std::vector<std::size_t> gap_age(n, 0);
    std::vector<std::size_t> gap_left(n, 0);
    std::vector<double> values(n);
    std::vector<std::uint8_t> valid(n);
    std::vector<std::uint8_t> filled(n);
    std::size_t cells = 0, gap_cells = 0, fill_cells = 0;
    std::size_t next = 0;
    const auto append_dirty = [&]() {
      for (std::size_t j = 0; j < n; ++j) {
        const double fresh = feed.matrix.matrix()(next % feed.matrix.m(), j);
        if (gap_left[j] == 0 && rng.NextDouble() < 0.01) {
          gap_left[j] = 1 + rng.NextBounded(10);
        }
        const bool missing = gap_left[j] > 0;
        if (missing) {
          --gap_left[j];
          ++gap_age[j];
          values[j] = last[j];
          if (gap_age[j] <= max_fill) {
            valid[j] = 1;
            filled[j] = 1;
            ++fill_cells;
          } else {
            valid[j] = 0;
            filled[j] = 0;
            ++gap_cells;
          }
        } else {
          gap_age[j] = 0;
          last[j] = fresh;
          values[j] = fresh;
          valid[j] = 1;
          filled[j] = 0;
        }
        ++cells;
      }
      ++next;
      if (!dirty->AppendMasked(values, valid, filled).ok()) {
        std::fprintf(stderr, "masked append failed\n");
        std::exit(1);
      }
    };
    while (!dirty->ready()) append_dirty();
    for (std::size_t i = 0; i < interval; ++i) append_dirty();
    double dirty_total = 0;
    {
      Stopwatch watch;
      for (std::size_t r = 0; r < measured; ++r) {
        for (std::size_t i = 0; i < interval; ++i) append_dirty();
        ++result.refreshes;
      }
      dirty_total = watch.ElapsedSeconds();
    }

    // Dense baseline: the same generator values through plain Append, on
    // its own stream so the two measurements never interleave.
    double dense_total = 0;
    {
      std::vector<double> row(n);
      std::size_t dense_next = 0;
      const auto append_dense = [&]() {
        for (std::size_t j = 0; j < n; ++j) {
          row[j] = feed.matrix.matrix()(dense_next % feed.matrix.m(), j);
        }
        ++dense_next;
        if (!dense->Append(row).ok()) {
          std::fprintf(stderr, "append failed\n");
          std::exit(1);
        }
      };
      while (!dense->ready()) append_dense();
      for (std::size_t i = 0; i < interval; ++i) append_dense();
      Stopwatch watch;
      for (std::size_t r = 0; r < measured; ++r) {
        for (std::size_t i = 0; i < interval; ++i) append_dense();
      }
      dense_total = watch.ElapsedSeconds();
    }
    result.dirty_mean_us = dirty_total * 1e6 / static_cast<double>(measured);
    result.dense_mean_us = dense_total * 1e6 / static_cast<double>(measured);
    result.gap_ratio = static_cast<double>(gap_cells) / static_cast<double>(cells);
    result.fill_ratio = static_cast<double>(fill_cells) / static_cast<double>(cells);

    const std::vector<double>& scores = dirty->quality_scores();
    if (scores.size() != n) {
      std::fprintf(stderr, "FAIL: quality surface not published (%zu scores)\n", scores.size());
      return 1;
    }
    double qmin = 1.0, qsum = 0.0;
    for (const double s : scores) {
      qmin = std::min(qmin, s);
      qsum += s;
    }
    result.quality_min = qmin;
    result.quality_mean = qsum / static_cast<double>(n);

    core::MetRequest req;
    req.measure = core::Measure::kCorrelation;
    req.tau = 0.5;
    req.greater = true;
    auto met = dirty->Met(req);
    if (!met.ok() || !met->quality.populated) {
      std::fprintf(stderr, "FAIL: MET over the dirty stream did not answer with quality\n");
      return 1;
    }
    result.met_pairs = met->pairs.size();
    result.met_min_score = met->quality.min_score;
  }

  std::printf("# bench_streaming --dirty — masked kernels & dirty-stream refresh "
              "(DESIGN.md §12)\n");
  std::printf("metric,value\n");
  std::printf("dense_sweep_us,%.1f\n", result.dense_sweep_us);
  std::printf("masked_fullmask_sweep_us,%.1f\n", result.masked_sweep_us);
  std::printf("masked_overhead_pct,%.2f\n", result.masked_overhead * 100.0);
  std::printf("fullmask_bitwise_identical,%s\n", result.bitwise_identical ? "yes" : "no");
  std::printf("dirty_refresh_mean_us,%.1f\n", result.dirty_mean_us);
  std::printf("dense_refresh_mean_us,%.1f\n", result.dense_mean_us);
  std::printf("dirty_over_dense,%.3f\n", result.dirty_mean_us / result.dense_mean_us);
  std::printf("gap_ratio,%.4f\n", result.gap_ratio);
  std::printf("fill_ratio,%.4f\n", result.fill_ratio);
  std::printf("quality_min,%.4f\n", result.quality_min);
  std::printf("quality_mean,%.4f\n", result.quality_mean);
  std::printf("met_pairs,%zu\n", result.met_pairs);
  std::printf("met_min_score,%.4f\n", result.met_min_score);

  if (json) {
    FILE* out = out_path.empty() ? stdout : std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"context\": {\"executable\": \"bench_streaming\", "
                 "\"mode\": \"dirty\", \"kernel_backend\": \"%s\"},\n  \"benchmarks\": [\n",
                 core::kernels::ActiveBackendName());
    std::fprintf(out,
                 "    {\"name\": \"masked_fullmask_sweep/window:4096\", "
                 "\"run_type\": \"iteration\", \"iterations\": 1, \"real_time\": %.3f, "
                 "\"cpu_time\": %.3f, \"time_unit\": \"us\", \"dense_us\": %.3f, "
                 "\"overhead_pct\": %.3f, \"bitwise_identical\": %s},\n",
                 result.masked_sweep_us, result.masked_sweep_us, result.dense_sweep_us,
                 result.masked_overhead * 100.0, result.bitwise_identical ? "true" : "false");
    std::fprintf(out,
                 "    {\"name\": \"dirty_refresh/window:512/interval:16/gaps:5pct\", "
                 "\"run_type\": \"iteration\", \"iterations\": %zu, \"real_time\": %.3f, "
                 "\"cpu_time\": %.3f, \"time_unit\": \"us\", \"dense_us\": %.3f, "
                 "\"gap_ratio\": %.4f, \"fill_ratio\": %.4f, \"quality_min\": %.4f, "
                 "\"quality_mean\": %.4f, \"met_pairs\": %zu, \"met_min_score\": %.4f}\n",
                 result.refreshes, result.dirty_mean_us, result.dirty_mean_us,
                 result.dense_mean_us, result.gap_ratio, result.fill_ratio, result.quality_min,
                 result.quality_mean, result.met_pairs, result.met_min_score);
    std::fprintf(out, "  ]\n}\n");
    if (!out_path.empty()) std::fclose(out);
  }
  return gate_ok ? 0 : 1;
}

Result RunConfig(const Config& config, const ts::Dataset& feed, std::size_t measured) {
  core::StreamingOptions options;
  options.window = config.window;
  options.rebuild_interval = config.interval;
  options.mode = config.mode;
  options.build.afclst.k = 6;
  options.build.build_dft = false;
  auto stream = core::StreamingAffinity::Create(feed.matrix.names(), options);
  if (!stream.ok()) {
    std::fprintf(stderr, "create failed: %s\n", stream.status().ToString().c_str());
    std::exit(1);
  }

  std::vector<double> row(feed.matrix.n());
  std::size_t next = 0;
  const auto append = [&]() {
    for (std::size_t j = 0; j < feed.matrix.n(); ++j) {
      row[j] = feed.matrix.matrix()(next % feed.matrix.m(), j);
    }
    ++next;
    const auto result = stream->Append(row);
    if (!result.ok()) {
      std::fprintf(stderr, "append failed: %s\n", result.status.ToString().c_str());
      std::exit(1);
    }
    return result;
  };

  // Warm up through the first full build plus one refresh.
  while (!stream->ready()) append();
  for (std::size_t i = 0; i < config.interval; ++i) append();

  Result out;
  out.config = config;
  out.min_seconds = 1e300;
  double total = 0;
  for (std::size_t r = 0; r < measured; ++r) {
    Stopwatch watch;
    bool refreshed = false;
    for (std::size_t i = 0; i < config.interval; ++i) refreshed |= append().refreshed;
    const double seconds = watch.ElapsedSeconds();
    if (!refreshed) {
      std::fprintf(stderr, "expected a refresh per interval\n");
      std::exit(1);
    }
    total += seconds;
    out.min_seconds = std::min(out.min_seconds, seconds);
    ++out.refreshes;
  }
  out.mean_seconds = total / static_cast<double>(out.refreshes);
  out.rekeys = stream->maintenance().tree_rekeys;
  out.refits = stream->maintenance().relationships_refit;
  out.recompute_blocks_touched = stream->maintenance().recompute_blocks_touched;
  out.recompute_blocks_reused = stream->maintenance().recompute_blocks_reused;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool quick = false;
  bool dot12 = false;
  bool serve = false;
  bool serve_publish = false;
  bool dirty = false;
  std::string out_path;
  std::vector<std::size_t> shard_counts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--benchmark_format=json") == 0) json = true;
    else if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) out_path = argv[i] + 16;
    else if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    else if (std::strcmp(argv[i], "--dot12") == 0) dot12 = true;
    else if (std::strcmp(argv[i], "--serve") == 0) serve = true;
    else if (std::strcmp(argv[i], "--serve-publish") == 0) serve_publish = true;
    else if (std::strcmp(argv[i], "--dirty") == 0) dirty = true;
    else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      for (const char* p = argv[i] + 9; *p != '\0';) {
        char* end = nullptr;
        const unsigned long v = std::strtoul(p, &end, 10);
        if (end == p || v == 0) {
          std::fprintf(stderr, "bad --shards list\n");
          return 1;
        }
        shard_counts.push_back(static_cast<std::size_t>(v));
        p = *end == ',' ? end + 1 : end;
      }
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [--quick] [--dot12] [--serve] [--serve-publish] [--dirty] "
                  "[--shards=N,M,...] [--benchmark_format=json] [--benchmark_out=FILE]\n",
                  argv[0]);
      return 0;
    }
  }

  if (dirty) {
    return RunDirtySweep(quick, json, out_path);
  }
  if (serve_publish) {
    return RunServePublishSweep(quick, json, out_path);
  }
  if (serve) {
    return RunServeSweep(quick, json, out_path);
  }
  if (dot12) {
    return RunDot12Sweep(quick, json, out_path);
  }
  if (!shard_counts.empty()) {
    return RunShardSweep(shard_counts, quick, json, out_path);
  }

  // Synthetic stock generator (Table 3 stand-in) at a width that keeps the
  // rebuild baseline affordable (the paper's n=996 would take minutes per
  // rebuild config; the incremental/rebuild gap only widens with n).
  ts::DatasetSpec spec;
  spec.num_series = 128;
  spec.num_samples = 2048;
  spec.num_clusters = 6;
  spec.noise_level = 0.015;
  spec.seed = 7;
  const ts::Dataset feed = ts::MakeStockData(spec);

  const std::size_t measured_incremental = quick ? 8 : 32;
  const std::size_t measured_rebuild = quick ? 4 : 12;

  std::vector<Config> configs;
  for (const std::size_t window : {std::size_t{256}, std::size_t{1024}}) {
    for (const std::size_t interval : {std::size_t{1}, std::size_t{16}}) {
      configs.push_back({window, interval, core::UpdateMode::kIncremental});
      configs.push_back({window, interval, core::UpdateMode::kRebuild});
    }
  }

  std::printf("# bench_streaming — steady-state refresh latency, stock generator "
              "(n=%zu)\n", spec.num_series);
  std::printf("window,interval,mode,refreshes,mean_us,min_us\n");
  std::vector<Result> results;
  for (const Config& config : configs) {
    const std::size_t measured =
        config.mode == core::UpdateMode::kIncremental ? measured_incremental : measured_rebuild;
    Result r = RunConfig(config, feed, measured);
    results.push_back(r);
    std::printf("%zu,%zu,%s,%zu,%.1f,%.1f\n", config.window, config.interval,
                ModeName(config.mode), r.refreshes, r.mean_seconds * 1e6, r.min_seconds * 1e6);
  }

  // Headline speedups (the ≥5× acceptance bar lives at 1024/1).
  std::printf("\nwindow,interval,rebuild_over_incremental\n");
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    const Result& inc = results[i];
    const Result& reb = results[i + 1];
    std::printf("%zu,%zu,%.2fx\n", inc.config.window, inc.config.interval,
                reb.mean_seconds / inc.mean_seconds);
  }

  if (json) {
    FILE* out = out_path.empty() ? stdout : std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"context\": {\"executable\": \"bench_streaming\", "
                 "\"num_series\": %zu, \"kernel_backend\": \"%s\"},\n  \"benchmarks\": [\n",
                 spec.num_series, core::kernels::ActiveBackendName());
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Result& r = results[i];
      std::fprintf(out,
                   "    {\"name\": \"steady_refresh/window:%zu/interval:%zu/mode:%s\", "
                   "\"run_type\": \"iteration\", \"iterations\": %zu, "
                   "\"real_time\": %.3f, \"cpu_time\": %.3f, \"time_unit\": \"us\", "
                   "\"rekeys\": %zu, \"refits\": %zu, "
                   "\"recompute_blocks_touched\": %zu, "
                   "\"recompute_blocks_reused\": %zu}%s\n",
                   r.config.window, r.config.interval, ModeName(r.config.mode), r.refreshes,
                   r.mean_seconds * 1e6, r.mean_seconds * 1e6, r.rekeys, r.refits,
                   r.recompute_blocks_touched, r.recompute_blocks_reused,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    if (!out_path.empty()) std::fclose(out);
  }
  return 0;
}
