// Micro-benchmarks (google-benchmark) for the kernels behind the paper's
// design choices — the ablation data DESIGN.md §5 calls for:
//
//  * least-squares fit with vs without the cached normal-equation factor
//    (the SYMEX vs SYMEX+ ablation, per fit);
//  * measure propagation vs from-scratch computation (the WA vs WN gap,
//    per pair);
//  * histogram mode vs the O(m²) naive density mode (why the paper's mode
//    speedups are enormous);
//  * B+-tree fanout sweep (SCAPE's sorted-container constant);
//  * FFT sizes used by the WF comparator (720 and 1950 are not powers of
//    two → Bluestein).

#include <benchmark/benchmark.h>

#include <cmath>
#include <complex>
#include <vector>

#include "btree/bplus_tree.h"
#include "common/random.h"
#include "core/affine.h"
#include "core/lsfd.h"
#include "dft/fft.h"
#include "la/solve.h"
#include "la/svd.h"
#include "ts/stats.h"

namespace {

using namespace affinity;

la::Matrix RandomPair(std::size_t m, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  la::Matrix x(m, 2);
  for (std::size_t j = 0; j < 2; ++j) {
    for (std::size_t i = 0; i < m; ++i) x(i, j) = rng.Uniform(-2.0, 2.0);
  }
  return x;
}

std::vector<double> RandomSeries(std::size_t m, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> x(m);
  for (auto& v : x) v = rng.Gaussian(10.0, 3.0);
  return x;
}

// --- LSFD -------------------------------------------------------------------

void BM_Lsfd(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const la::Matrix x = RandomPair(m, 1);
  const la::Matrix y = RandomPair(m, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Lsfd(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Lsfd)->Arg(128)->Arg(720)->Arg(1950)->Complexity(benchmark::oN);

// --- Affine fitting: the SYMEX vs SYMEX+ per-fit ablation --------------------

void BM_FitWithoutCache(benchmark::State& state) {
  // Plain SYMEX re-derives the pseudo-inverse of the m×3 design per pair.
  const auto m = static_cast<std::size_t>(state.range(0));
  const la::Matrix source = RandomPair(m, 3);
  const la::Matrix target = RandomPair(m, 4);
  la::Matrix design(m, 3);
  for (std::size_t i = 0; i < m; ++i) {
    design(i, 0) = source(i, 0);
    design(i, 1) = source(i, 1);
    design(i, 2) = 1.0;
  }
  for (auto _ : state) {
    auto pinv = la::PseudoInverse(design);
    benchmark::DoNotOptimize(pinv->Multiply(target));
  }
}
BENCHMARK(BM_FitWithoutCache)->Arg(720)->Arg(1950);

void BM_FitWithCache(benchmark::State& state) {
  // SYMEX+ amortizes the factor: per pair only the 3×rhs products remain.
  const auto m = static_cast<std::size_t>(state.range(0));
  const la::Matrix source = RandomPair(m, 3);
  const la::Matrix target = RandomPair(m, 4);
  la::Matrix design(m, 3);
  for (std::size_t i = 0; i < m; ++i) {
    design(i, 0) = source(i, 0);
    design(i, 1) = source(i, 1);
    design(i, 2) = 1.0;
  }
  const la::Matrix pinv = *la::PseudoInverse(design);  // cached once
  for (auto _ : state) {
    benchmark::DoNotOptimize(pinv.Multiply(target));
  }
}
BENCHMARK(BM_FitWithCache)->Arg(720)->Arg(1950);

// --- Propagation vs from-scratch ---------------------------------------------

void BM_PropagateCovariance(benchmark::State& state) {
  const la::Matrix x = RandomPair(720, 5);
  const core::PairMatrixMeasures pm =
      core::ComputePairMatrixMeasures(x.ColData(0), x.ColData(1), 720);
  core::AffineTransform t;
  t.a12 = 1.7;
  t.a22 = -0.3;
  t.b2 = 4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::PropagateCovariance(pm, t));
  }
}
BENCHMARK(BM_PropagateCovariance);

void BM_ScratchCovariance(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::vector<double> x = RandomSeries(m, 6);
  const std::vector<double> y = RandomSeries(m, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::stats::Covariance(x.data(), y.data(), m));
  }
}
BENCHMARK(BM_ScratchCovariance)->Arg(720)->Arg(1950);

// --- Mode estimators ----------------------------------------------------------

void BM_HistogramMode(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::vector<double> x = RandomSeries(m, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::stats::Mode(x.data(), m));
  }
}
BENCHMARK(BM_HistogramMode)->Arg(720)->Arg(1950);

void BM_NaiveDensityMode(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::vector<double> x = RandomSeries(m, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::stats::NaiveModeEstimate(x.data(), m));
  }
}
BENCHMARK(BM_NaiveDensityMode)->Arg(720)->Arg(1950);

// --- B+-tree ------------------------------------------------------------------

void BM_BPlusTreeInsert(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(10);
  std::vector<double> keys(100000);
  for (auto& k : keys) k = rng.NextDouble();
  for (auto _ : state) {
    btree::BPlusTree<int> tree(fanout);
    for (std::size_t i = 0; i < keys.size(); ++i) tree.Insert(keys[i], static_cast<int>(i));
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100000);
}
BENCHMARK(BM_BPlusTreeInsert)->Arg(8)->Arg(16)->Arg(64)->Arg(256);

void BM_BPlusTreeThresholdScan(benchmark::State& state) {
  btree::BPlusTree<int> tree(64);
  Xoshiro256 rng(11);
  for (int i = 0; i < 100000; ++i) tree.Insert(rng.NextDouble(), i);
  for (auto _ : state) {
    std::size_t count = 0;
    tree.ScanGreaterThan(0.99, [&](double, const int&) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_BPlusTreeThresholdScan);

// --- FFT (WF comparator substrate) ---------------------------------------------

void BM_FftPowerOfTwo(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(12);
  std::vector<dft::Complex> base(n);
  for (auto& v : base) v = dft::Complex(rng.Gaussian(), 0.0);
  for (auto _ : state) {
    auto a = base;
    benchmark::DoNotOptimize(dft::Fft(&a, false));
  }
}
BENCHMARK(BM_FftPowerOfTwo)->Arg(1024)->Arg(2048);

void BM_BluesteinPaperLengths(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(13);
  std::vector<dft::Complex> base(n);
  for (auto& v : base) v = dft::Complex(rng.Gaussian(), 0.0);
  for (auto _ : state) {
    auto a = base;
    benchmark::DoNotOptimize(dft::BluesteinDft(&a, false));
  }
}
BENCHMARK(BM_BluesteinPaperLengths)->Arg(720)->Arg(1950);

// --- AFCLST centre update kernel -------------------------------------------------

void BM_PowerIterationCenter(benchmark::State& state) {
  // Typical cluster: ~100 member series of length 720.
  Xoshiro256 rng(14);
  la::Matrix members(720, 100);
  for (std::size_t j = 0; j < 100; ++j) {
    for (std::size_t i = 0; i < 720; ++i) members(i, j) = rng.Gaussian();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::PowerIterationTopSingular(members, la::Vector()));
  }
}
BENCHMARK(BM_PowerIterationCenter);

}  // namespace

BENCHMARK_MAIN();
