// Micro-benchmarks (google-benchmark) for the kernels behind the paper's
// design choices — the ablation data DESIGN.md §5 calls for:
//
//  * least-squares fit with vs without the cached normal-equation factor
//    (the SYMEX vs SYMEX+ ablation, per fit);
//  * measure propagation vs from-scratch computation (the WA vs WN gap,
//    per pair);
//  * histogram mode vs the O(m²) naive density mode (why the paper's mode
//    speedups are enormous);
//  * B+-tree fanout sweep (SCAPE's sorted-container constant);
//  * FFT sizes used by the WF comparator (720 and 1950 are not powers of
//    two → Bluestein);
//  * parallel scaling: MET/MER WN/WA sweeps and Affinity::Build at 1, 2,
//    4, and hardware_concurrency threads over the (scaled) stock dataset.
//
// Perf trajectory: run with
//   bench_micro --benchmark_format=json --benchmark_out=micro.json
// and compare the "threads" counter across PRs; each parallel benchmark
// exports its thread count as a counter so the JSON is self-describing.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cmath>
#include <complex>
#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <thread>
#include <utility>
#include <vector>

#include "btree/bplus_tree.h"
#include "common/check.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/affine.h"
#include "core/framework.h"
#include "core/kernels.h"
#include "core/lsfd.h"
#include "core/streaming.h"
#include "dft/fft.h"
#include "la/solve.h"
#include "la/svd.h"
#include "shard/sharded.h"
#include "ts/generators.h"
#include "ts/stats.h"

// ---------------------------------------------------------------------------
// Global allocation counter: replacement operator new/delete so the
// streaming/router hot-path benchmarks can report allocations per append
// (the DESIGN.md §9 zero-allocation claim, measured rather than asserted).
//
// GCC treats the replaced operator new as the builtin and then flags the
// malloc/free pairing at every inlined call site (false positive), so
// silence that diagnostic file-wide.
// ---------------------------------------------------------------------------

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) == 0) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace affinity;

std::size_t AllocCount() { return g_alloc_count.load(std::memory_order_relaxed); }

la::Matrix RandomPair(std::size_t m, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  la::Matrix x(m, 2);
  for (std::size_t j = 0; j < 2; ++j) {
    for (std::size_t i = 0; i < m; ++i) x(i, j) = rng.Uniform(-2.0, 2.0);
  }
  return x;
}

std::vector<double> RandomSeries(std::size_t m, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> x(m);
  for (auto& v : x) v = rng.Gaussian(10.0, 3.0);
  return x;
}

// --- LSFD -------------------------------------------------------------------

void BM_Lsfd(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const la::Matrix x = RandomPair(m, 1);
  const la::Matrix y = RandomPair(m, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Lsfd(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Lsfd)->Arg(128)->Arg(720)->Arg(1950)->Complexity(benchmark::oN);

// --- Affine fitting: the SYMEX vs SYMEX+ per-fit ablation --------------------

void BM_FitWithoutCache(benchmark::State& state) {
  // Plain SYMEX re-derives the pseudo-inverse of the m×3 design per pair.
  const auto m = static_cast<std::size_t>(state.range(0));
  const la::Matrix source = RandomPair(m, 3);
  const la::Matrix target = RandomPair(m, 4);
  la::Matrix design(m, 3);
  for (std::size_t i = 0; i < m; ++i) {
    design(i, 0) = source(i, 0);
    design(i, 1) = source(i, 1);
    design(i, 2) = 1.0;
  }
  for (auto _ : state) {
    auto pinv = la::PseudoInverse(design);
    benchmark::DoNotOptimize(pinv->Multiply(target));
  }
}
BENCHMARK(BM_FitWithoutCache)->Arg(720)->Arg(1950);

void BM_FitWithCache(benchmark::State& state) {
  // SYMEX+ amortizes the factor: per pair only the 3×rhs products remain.
  const auto m = static_cast<std::size_t>(state.range(0));
  const la::Matrix source = RandomPair(m, 3);
  const la::Matrix target = RandomPair(m, 4);
  la::Matrix design(m, 3);
  for (std::size_t i = 0; i < m; ++i) {
    design(i, 0) = source(i, 0);
    design(i, 1) = source(i, 1);
    design(i, 2) = 1.0;
  }
  const la::Matrix pinv = *la::PseudoInverse(design);  // cached once
  for (auto _ : state) {
    benchmark::DoNotOptimize(pinv.Multiply(target));
  }
}
BENCHMARK(BM_FitWithCache)->Arg(720)->Arg(1950);

// --- Propagation vs from-scratch ---------------------------------------------

void BM_PropagateCovariance(benchmark::State& state) {
  const la::Matrix x = RandomPair(720, 5);
  const core::PairMatrixMeasures pm =
      core::ComputePairMatrixMeasures(x.ColData(0), x.ColData(1), 720);
  core::AffineTransform t;
  t.a12 = 1.7;
  t.a22 = -0.3;
  t.b2 = 4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::PropagateCovariance(pm, t));
  }
}
BENCHMARK(BM_PropagateCovariance);

void BM_ScratchCovariance(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::vector<double> x = RandomSeries(m, 6);
  const std::vector<double> y = RandomSeries(m, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::stats::Covariance(x.data(), y.data(), m));
  }
}
BENCHMARK(BM_ScratchCovariance)->Arg(720)->Arg(1950);

// --- Blocked summation kernels (DESIGN.md §10) -------------------------------
//
// Named BM_Kernel* so CI can carve them into BENCH_kernels.json with
// --benchmark_filter=Kernel. Throughput kernels report bytes/second
// (GB/s in the JSON); the sweep pair reports pairs/second — the fused,
// marginal-hoisted sweep must be ≥ 2× the seed's multi-pass loop on
// derived measures at window ≥ 1024.

void BM_KernelScalarDot(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::vector<double> x = RandomSeries(m, 21);
  const std::vector<double> y = RandomSeries(m, 22);
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i) acc += x[i] * y[i];
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * m * sizeof(double)));
}
BENCHMARK(BM_KernelScalarDot)->Arg(1024)->Arg(4096)->Arg(65536);

void BM_KernelBlockedDot(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::vector<double> x = RandomSeries(m, 21);
  const std::vector<double> y = RandomSeries(m, 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::kernels::BlockedDot(x.data(), y.data(), m));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * m * sizeof(double)));
}
BENCHMARK(BM_KernelBlockedDot)->Arg(1024)->Arg(4096)->Arg(65536);

void BM_KernelColumnMarginals(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::vector<double> x = RandomSeries(m, 23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::kernels::ColumnMarginals(x.data(), m));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m * sizeof(double)));
}
BENCHMARK(BM_KernelColumnMarginals)->Arg(1024)->Arg(65536);

void BM_KernelFusedPairMoments(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::vector<double> x = RandomSeries(m, 24);
  const std::vector<double> y = RandomSeries(m, 25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComputePairMoments(x.data(), y.data(), m));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * m * sizeof(double)));
}
BENCHMARK(BM_KernelFusedPairMoments)->Arg(1024)->Arg(65536);

// --- SIMD backend rows (ISSUE 6) ---------------------------------------------
//
// Named BM_Simd* so CI carves them into BENCH_simd.json with
// --benchmark_filter=Simd. One GB/s row per (chain kernel, backend):
// range(0) selects forced scalar (0) vs the dispatched best backend (1),
// range(1) is the window; the row label records which backend actually
// ran, so artifacts stay comparable across runner generations. Gate: the
// dispatched BlockedDot and FusedPairMoments rows must be ≥ 2× their
// scalar rows at window 4096 on SIMD hardware. The prefetch sweep tunes
// kDefaultPrefetchDistance at memory-resident sizes.

/// Selects the row's backend, runs the loop, restores the entry backend.
template <class Fn>
void RunBackendRow(benchmark::State& state, std::size_t bytes_per_iter, const Fn& fn) {
  namespace k = core::kernels;
  const k::Backend saved = k::ActiveBackend();
  k::Backend row = k::Backend::kScalar;
  if (state.range(0) != 0) AFFINITY_CHECK(k::ParseBackend("auto", &row));
  AFFINITY_CHECK(k::SetBackend(row));
  state.SetLabel(k::ActiveBackendName());
  for (auto _ : state) fn();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes_per_iter));
  k::SetBackend(saved);
}

void BM_SimdBlockedSum(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(1));
  const std::vector<double> x = RandomSeries(m, 31);
  RunBackendRow(state, m * sizeof(double), [&] {
    benchmark::DoNotOptimize(core::kernels::BlockedSum(x.data(), m));
  });
}
BENCHMARK(BM_SimdBlockedSum)->ArgsProduct({{0, 1}, {4096, 65536}});

void BM_SimdBlockedDot(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(1));
  const std::vector<double> x = RandomSeries(m, 32);
  const std::vector<double> y = RandomSeries(m, 33);
  RunBackendRow(state, 2 * m * sizeof(double), [&] {
    benchmark::DoNotOptimize(core::kernels::BlockedDot(x.data(), y.data(), m));
  });
}
BENCHMARK(BM_SimdBlockedDot)->ArgsProduct({{0, 1}, {4096, 65536}});

void BM_SimdColumnMarginals(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(1));
  const std::vector<double> x = RandomSeries(m, 34);
  RunBackendRow(state, m * sizeof(double), [&] {
    benchmark::DoNotOptimize(core::kernels::ColumnMarginals(x.data(), m));
  });
}
BENCHMARK(BM_SimdColumnMarginals)->ArgsProduct({{0, 1}, {4096, 65536}});

void BM_SimdFusedDot3(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(1));
  const std::vector<double> x = RandomSeries(m, 35);
  const std::vector<double> y = RandomSeries(m, 36);
  RunBackendRow(state, 2 * m * sizeof(double), [&] {
    double xy, xx, yy;
    core::kernels::FusedDot3(x.data(), y.data(), m, &xy, &xx, &yy);
    benchmark::DoNotOptimize(xy + xx + yy);
  });
}
BENCHMARK(BM_SimdFusedDot3)->ArgsProduct({{0, 1}, {4096, 65536}});

void BM_SimdFusedCross3(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(1));
  const std::vector<double> c1 = RandomSeries(m, 37);
  const std::vector<double> c2 = RandomSeries(m, 38);
  const std::vector<double> t = RandomSeries(m, 39);
  RunBackendRow(state, 3 * m * sizeof(double), [&] {
    double out[3];
    core::kernels::FusedCross3(c1.data(), c2.data(), t.data(), m, out);
    benchmark::DoNotOptimize(out[0] + out[1] + out[2]);
  });
}
BENCHMARK(BM_SimdFusedCross3)->ArgsProduct({{0, 1}, {4096, 65536}});

void BM_SimdFusedGram5(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(1));
  const std::vector<double> c1 = RandomSeries(m, 40);
  const std::vector<double> c2 = RandomSeries(m, 41);
  RunBackendRow(state, 2 * m * sizeof(double), [&] {
    double out[5];
    core::kernels::FusedGram5(c1.data(), c2.data(), m, out);
    benchmark::DoNotOptimize(out[0] + out[4]);
  });
}
BENCHMARK(BM_SimdFusedGram5)->ArgsProduct({{0, 1}, {4096, 65536}});

void BM_SimdFusedPairMoments(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(1));
  const std::vector<double> x = RandomSeries(m, 42);
  const std::vector<double> y = RandomSeries(m, 43);
  RunBackendRow(state, 2 * m * sizeof(double), [&] {
    double out[5];
    core::kernels::FusedPairMoments(x.data(), y.data(), m, out);
    benchmark::DoNotOptimize(out[0] + out[4]);
  });
}
BENCHMARK(BM_SimdFusedPairMoments)->ArgsProduct({{0, 1}, {4096, 65536}});

void BM_SimdPrefetchSweep(benchmark::State& state) {
  // Dispatched BlockedDot at a memory-resident size (the columns don't
  // fit in cache), sweeping the software-prefetch lookahead. range(0) is
  // the distance in elements; 0 disables the prefetch entirely.
  namespace k = core::kernels;
  const std::size_t m = std::size_t{1} << 21;  // 16 MiB per column
  const std::vector<double> x = RandomSeries(m, 44);
  const std::vector<double> y = RandomSeries(m, 45);
  const std::size_t saved_dist = k::PrefetchDistance();
  const k::Backend saved = k::ActiveBackend();
  k::Backend best;
  AFFINITY_CHECK(k::ParseBackend("auto", &best));
  AFFINITY_CHECK(k::SetBackend(best));
  k::SetPrefetchDistance(static_cast<std::size_t>(state.range(0)));
  state.SetLabel(k::ActiveBackendName());
  for (auto _ : state) {
    benchmark::DoNotOptimize(k::BlockedDot(x.data(), y.data(), m));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * m * sizeof(double)));
  k::SetPrefetchDistance(saved_dist);
  k::SetBackend(saved);
}
BENCHMARK(BM_SimdPrefetchSweep)->Arg(0)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

/// The matrix behind the pairs/second sweeps: n columns of window m.
la::Matrix SweepMatrix(std::size_t n, std::size_t m) {
  Xoshiro256 rng(26);
  la::Matrix x(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < m; ++i) x(i, j) = rng.Gaussian(10.0, 3.0);
  }
  return x;
}

/// Seed-style derived sweep: three separate sequential scans per pair
/// (the pre-PR NaivePairMeasure cost model for cosine/Jaccard/Dice).
void BM_KernelPairSweepSeed(benchmark::State& state) {
  const std::size_t n = 48;
  const auto m = static_cast<std::size_t>(state.range(0));
  const la::Matrix x = SweepMatrix(n, m);
  std::size_t pairs = 0;
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = u + 1; v < n; ++v) {
        const double* cu = x.ColData(u);
        const double* cv = x.ColData(v);
        double nx = 0, ny = 0, d = 0;
        for (std::size_t i = 0; i < m; ++i) nx += cu[i] * cu[i];
        for (std::size_t i = 0; i < m; ++i) ny += cv[i] * cv[i];
        for (std::size_t i = 0; i < m; ++i) d += cu[i] * cv[i];
        const double norm = std::sqrt(nx * ny);
        acc += norm == 0.0 ? 0.0 : d / norm;
        ++pairs;
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pairs));
}
BENCHMARK(BM_KernelPairSweepSeed)->Arg(1024)->Arg(2048);

/// The new sweep: marginals hoisted once, one fused blocked dot per pair
/// (exactly what QueryEngine's WN MET/MER/top-k now run per chunk).
void BM_KernelPairSweepHoisted(benchmark::State& state) {
  const std::size_t n = 48;
  const auto m = static_cast<std::size_t>(state.range(0));
  const la::Matrix x = SweepMatrix(n, m);
  std::size_t pairs = 0;
  for (auto _ : state) {
    std::vector<core::kernels::Marginals> marginals(n);
    for (std::size_t j = 0; j < n; ++j) {
      marginals[j] = core::kernels::ColumnMarginals(x.ColData(j), m);
    }
    double acc = 0.0;
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = u + 1; v < n; ++v) {
        const double dot = core::kernels::BlockedDot(x.ColData(u), x.ColData(v), m);
        acc += *core::PairMeasureFromMoments(
            core::Measure::kCosine,
            core::PairMomentsFromMarginals(marginals[u], marginals[v], dot, m));
        ++pairs;
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pairs));
}
BENCHMARK(BM_KernelPairSweepHoisted)->Arg(1024)->Arg(2048);

/// Same comparison for correlation, whose seed path cost ~7 scans
/// (covariance + two centered variances, each with its mean pass).
void BM_KernelCorrelationSweepSeed(benchmark::State& state) {
  const std::size_t n = 48;
  const auto m = static_cast<std::size_t>(state.range(0));
  const la::Matrix x = SweepMatrix(n, m);
  std::size_t pairs = 0;
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = u + 1; v < n; ++v) {
        acc += ts::stats::Correlation(x.ColData(u), x.ColData(v), m);
        ++pairs;
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pairs));
}
BENCHMARK(BM_KernelCorrelationSweepSeed)->Arg(1024)->Arg(2048);

void BM_KernelCorrelationSweepHoisted(benchmark::State& state) {
  const std::size_t n = 48;
  const auto m = static_cast<std::size_t>(state.range(0));
  const la::Matrix x = SweepMatrix(n, m);
  std::size_t pairs = 0;
  for (auto _ : state) {
    std::vector<core::kernels::Marginals> marginals(n);
    for (std::size_t j = 0; j < n; ++j) {
      marginals[j] = core::kernels::ColumnMarginals(x.ColData(j), m);
    }
    double acc = 0.0;
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = u + 1; v < n; ++v) {
        const double dot = core::kernels::BlockedDot(x.ColData(u), x.ColData(v), m);
        acc += *core::PairMeasureFromMoments(
            core::Measure::kCorrelation,
            core::PairMomentsFromMarginals(marginals[u], marginals[v], dot, m));
        ++pairs;
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pairs));
}
BENCHMARK(BM_KernelCorrelationSweepHoisted)->Arg(1024)->Arg(2048);

// --- Mode estimators ----------------------------------------------------------

void BM_HistogramMode(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::vector<double> x = RandomSeries(m, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::stats::Mode(x.data(), m));
  }
}
BENCHMARK(BM_HistogramMode)->Arg(720)->Arg(1950);

void BM_NaiveDensityMode(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::vector<double> x = RandomSeries(m, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::stats::NaiveModeEstimate(x.data(), m));
  }
}
BENCHMARK(BM_NaiveDensityMode)->Arg(720)->Arg(1950);

// --- B+-tree ------------------------------------------------------------------

void BM_BPlusTreeInsert(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(10);
  std::vector<double> keys(100000);
  for (auto& k : keys) k = rng.NextDouble();
  for (auto _ : state) {
    btree::BPlusTree<int> tree(fanout);
    for (std::size_t i = 0; i < keys.size(); ++i) tree.Insert(keys[i], static_cast<int>(i));
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100000);
}
BENCHMARK(BM_BPlusTreeInsert)->Arg(8)->Arg(16)->Arg(64)->Arg(256);

void BM_BPlusTreeThresholdScan(benchmark::State& state) {
  btree::BPlusTree<int> tree(64);
  Xoshiro256 rng(11);
  for (int i = 0; i < 100000; ++i) tree.Insert(rng.NextDouble(), i);
  for (auto _ : state) {
    std::size_t count = 0;
    tree.ScanGreaterThan(0.99, [&](double, const int&) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_BPlusTreeThresholdScan);

// --- FFT (WF comparator substrate) ---------------------------------------------

void BM_FftPowerOfTwo(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(12);
  std::vector<dft::Complex> base(n);
  for (auto& v : base) v = dft::Complex(rng.Gaussian(), 0.0);
  for (auto _ : state) {
    auto a = base;
    benchmark::DoNotOptimize(dft::Fft(&a, false));
  }
}
BENCHMARK(BM_FftPowerOfTwo)->Arg(1024)->Arg(2048);

void BM_BluesteinPaperLengths(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(13);
  std::vector<dft::Complex> base(n);
  for (auto& v : base) v = dft::Complex(rng.Gaussian(), 0.0);
  for (auto _ : state) {
    auto a = base;
    benchmark::DoNotOptimize(dft::BluesteinDft(&a, false));
  }
}
BENCHMARK(BM_BluesteinPaperLengths)->Arg(720)->Arg(1950);

// --- AFCLST centre update kernel -------------------------------------------------

void BM_PowerIterationCenter(benchmark::State& state) {
  // Typical cluster: ~100 member series of length 720.
  Xoshiro256 rng(14);
  la::Matrix members(720, 100);
  for (std::size_t j = 0; j < 100; ++j) {
    for (std::size_t i = 0; i < 720; ++i) members(i, j) = rng.Gaussian();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::PowerIterationTopSingular(members, la::Vector()));
  }
}
BENCHMARK(BM_PowerIterationCenter);

// --- Parallel scaling: batched sweeps and framework build -----------------------
//
// The stock dataset (Table 3) at micro scale — big enough that the O(n²)
// pair sweeps dominate, small enough for tight iteration.

const ts::Dataset& StockMicro() {
  static const ts::Dataset dataset = [] {
    ts::DatasetSpec spec;
    spec.num_series = 120;
    spec.num_samples = 240;
    spec.num_clusters = 10;
    spec.noise_level = 0.015;
    spec.seed = 7;
    return ts::MakeStockData(spec);
  }();
  return dataset;
}

const core::Affinity& StockFramework() {
  static const core::Affinity fw = [] {
    auto built = core::Affinity::Build(StockMicro().matrix);
    AFFINITY_CHECK(built.ok());
    return std::move(built).value();
  }();
  return fw;
}

void ThreadArgs(benchmark::internal::Benchmark* b) {
  b->Arg(1)->Arg(2)->Arg(4);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 4) b->Arg(static_cast<long>(hw));
  b->UseRealTime();  // wall clock, not per-thread CPU
}

/// A query engine over the stock data with the requested sweep
/// parallelism; `owned_pool` keeps the pool alive for the state's scope.
core::QueryEngine SweepEngine(std::size_t threads, std::unique_ptr<ThreadPool>* owned_pool,
                              bool with_model) {
  core::QueryEngine engine(&StockFramework().data());
  if (with_model) engine.AttachModel(&StockFramework().model());
  if (threads > 1) {
    *owned_pool = std::make_unique<ThreadPool>(threads);
    engine.SetExec(ExecContext{owned_pool->get()});
  }
  return engine;
}

void BM_MetSweepWN(benchmark::State& state) {
  std::unique_ptr<ThreadPool> pool;
  const core::QueryEngine engine =
      SweepEngine(static_cast<std::size_t>(state.range(0)), &pool, /*with_model=*/false);
  core::MetRequest req;
  req.measure = core::Measure::kCorrelation;
  req.tau = 0.9;
  for (auto _ : state) {
    auto result = engine.Met(req, core::QueryMethod::kNaive);
    benchmark::DoNotOptimize(result);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_MetSweepWN)->Apply(ThreadArgs);

void BM_MetSweepWA(benchmark::State& state) {
  std::unique_ptr<ThreadPool> pool;
  const core::QueryEngine engine =
      SweepEngine(static_cast<std::size_t>(state.range(0)), &pool, /*with_model=*/true);
  core::MetRequest req;
  req.measure = core::Measure::kCorrelation;
  req.tau = 0.9;
  for (auto _ : state) {
    auto result = engine.Met(req, core::QueryMethod::kAffine);
    benchmark::DoNotOptimize(result);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_MetSweepWA)->Apply(ThreadArgs);

void BM_MerSweepWN(benchmark::State& state) {
  std::unique_ptr<ThreadPool> pool;
  const core::QueryEngine engine =
      SweepEngine(static_cast<std::size_t>(state.range(0)), &pool, /*with_model=*/false);
  core::MerRequest req;
  req.measure = core::Measure::kCovariance;
  req.lo = -0.5;
  req.hi = 0.5;
  for (auto _ : state) {
    auto result = engine.Mer(req, core::QueryMethod::kNaive);
    benchmark::DoNotOptimize(result);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_MerSweepWN)->Apply(ThreadArgs);

void BM_MerSweepWA(benchmark::State& state) {
  std::unique_ptr<ThreadPool> pool;
  const core::QueryEngine engine =
      SweepEngine(static_cast<std::size_t>(state.range(0)), &pool, /*with_model=*/true);
  core::MerRequest req;
  req.measure = core::Measure::kCovariance;
  req.lo = -0.5;
  req.hi = 0.5;
  for (auto _ : state) {
    auto result = engine.Mer(req, core::QueryMethod::kAffine);
    benchmark::DoNotOptimize(result);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_MerSweepWA)->Apply(ThreadArgs);

void BM_AffinityBuild(benchmark::State& state) {
  core::AffinityOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto fw = core::Affinity::Build(StockMicro().matrix, options);
    AFFINITY_CHECK(fw.ok());
    benchmark::DoNotOptimize(fw);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_AffinityBuild)->Apply(ThreadArgs);

// --- Append hot-path allocation accounting (DESIGN.md §9) ------------------

/// Steady-state streaming append: rolling-moment updates plus the
/// preallocated pending-row pool. `allocs_per_append` counts non-refresh
/// appends only; the residue is segment-granular storage growth
/// (~n/segment_capacity per append), not per-row buffers.
void BM_StreamingAppendAllocs(benchmark::State& state) {
  ts::DatasetSpec spec;
  spec.num_series = 32;
  spec.num_samples = 512;
  spec.num_clusters = 4;
  spec.seed = 11;
  const ts::Dataset feed = ts::MakeStockData(spec);
  core::StreamingOptions options;
  options.window = 256;
  options.rebuild_interval = 64;
  options.mode = core::UpdateMode::kIncremental;
  options.build.afclst.k = 4;
  options.build.build_dft = false;
  options.segment_capacity = 1024;
  auto stream = core::StreamingAffinity::Create(feed.matrix.names(), options);
  AFFINITY_CHECK(stream.ok());
  std::vector<double> row(feed.matrix.n());
  std::size_t next = 0;
  const auto fill = [&]() {
    for (std::size_t j = 0; j < feed.matrix.n(); ++j) {
      row[j] = feed.matrix.matrix()(next % feed.matrix.m(), j);
    }
    ++next;
  };
  while (!stream->ready()) {
    fill();
    AFFINITY_CHECK(stream->Append(row).ok());
  }
  // One full interval warms the pending pool to its steady-state capacity.
  for (std::size_t i = 0; i < options.rebuild_interval; ++i) {
    fill();
    AFFINITY_CHECK(stream->Append(row).ok());
  }
  std::size_t appends = 0;
  std::size_t allocs = 0;
  for (auto _ : state) {
    fill();
    const std::size_t before = AllocCount();
    const auto result = stream->Append(row);
    const std::size_t after = AllocCount();
    AFFINITY_CHECK(result.ok());
    if (!result.refreshed) {
      allocs += after - before;
      ++appends;
    }
    benchmark::DoNotOptimize(result);
  }
  state.counters["allocs_per_append"] =
      appends == 0 ? 0.0 : static_cast<double>(allocs) / static_cast<double>(appends);
}
BENCHMARK(BM_StreamingAppendAllocs);

/// Router scatter: the per-shard row buffers are preallocated once, so a
/// scatter is pure copying — `allocs_per_scatter` must be 0.
void BM_RouterScatterAllocs(benchmark::State& state) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < 64; ++i) names.push_back("s" + std::to_string(i));
  auto partitioner =
      shard::SeriesPartitioner::Create(names, 8, shard::PartitionScheme::kHash);
  AFFINITY_CHECK(partitioner.ok());
  shard::ShardRouter router(std::move(*partitioner));
  std::vector<double> row(64);
  for (std::size_t j = 0; j < 64; ++j) row[j] = static_cast<double>(j) * 0.25;
  std::size_t scatters = 0;
  std::size_t allocs = 0;
  for (auto _ : state) {
    const std::size_t before = AllocCount();
    const auto& scattered = router.Scatter(row);
    allocs += AllocCount() - before;
    ++scatters;
    benchmark::DoNotOptimize(scattered);
  }
  state.counters["allocs_per_scatter"] =
      scatters == 0 ? 0.0 : static_cast<double>(allocs) / static_cast<double>(scatters);
}
BENCHMARK(BM_RouterScatterAllocs);

}  // namespace

BENCHMARK_MAIN();
