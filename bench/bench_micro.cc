// Micro-benchmarks (google-benchmark) for the kernels behind the paper's
// design choices — the ablation data DESIGN.md §5 calls for:
//
//  * least-squares fit with vs without the cached normal-equation factor
//    (the SYMEX vs SYMEX+ ablation, per fit);
//  * measure propagation vs from-scratch computation (the WA vs WN gap,
//    per pair);
//  * histogram mode vs the O(m²) naive density mode (why the paper's mode
//    speedups are enormous);
//  * B+-tree fanout sweep (SCAPE's sorted-container constant);
//  * FFT sizes used by the WF comparator (720 and 1950 are not powers of
//    two → Bluestein);
//  * parallel scaling: MET/MER WN/WA sweeps and Affinity::Build at 1, 2,
//    4, and hardware_concurrency threads over the (scaled) stock dataset.
//
// Perf trajectory: run with
//   bench_micro --benchmark_format=json --benchmark_out=micro.json
// and compare the "threads" counter across PRs; each parallel benchmark
// exports its thread count as a counter so the JSON is self-describing.

#include <benchmark/benchmark.h>

#include <cmath>
#include <complex>
#include <cstddef>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "btree/bplus_tree.h"
#include "common/check.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/affine.h"
#include "core/framework.h"
#include "core/lsfd.h"
#include "dft/fft.h"
#include "la/solve.h"
#include "la/svd.h"
#include "ts/generators.h"
#include "ts/stats.h"

namespace {

using namespace affinity;

la::Matrix RandomPair(std::size_t m, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  la::Matrix x(m, 2);
  for (std::size_t j = 0; j < 2; ++j) {
    for (std::size_t i = 0; i < m; ++i) x(i, j) = rng.Uniform(-2.0, 2.0);
  }
  return x;
}

std::vector<double> RandomSeries(std::size_t m, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> x(m);
  for (auto& v : x) v = rng.Gaussian(10.0, 3.0);
  return x;
}

// --- LSFD -------------------------------------------------------------------

void BM_Lsfd(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const la::Matrix x = RandomPair(m, 1);
  const la::Matrix y = RandomPair(m, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Lsfd(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Lsfd)->Arg(128)->Arg(720)->Arg(1950)->Complexity(benchmark::oN);

// --- Affine fitting: the SYMEX vs SYMEX+ per-fit ablation --------------------

void BM_FitWithoutCache(benchmark::State& state) {
  // Plain SYMEX re-derives the pseudo-inverse of the m×3 design per pair.
  const auto m = static_cast<std::size_t>(state.range(0));
  const la::Matrix source = RandomPair(m, 3);
  const la::Matrix target = RandomPair(m, 4);
  la::Matrix design(m, 3);
  for (std::size_t i = 0; i < m; ++i) {
    design(i, 0) = source(i, 0);
    design(i, 1) = source(i, 1);
    design(i, 2) = 1.0;
  }
  for (auto _ : state) {
    auto pinv = la::PseudoInverse(design);
    benchmark::DoNotOptimize(pinv->Multiply(target));
  }
}
BENCHMARK(BM_FitWithoutCache)->Arg(720)->Arg(1950);

void BM_FitWithCache(benchmark::State& state) {
  // SYMEX+ amortizes the factor: per pair only the 3×rhs products remain.
  const auto m = static_cast<std::size_t>(state.range(0));
  const la::Matrix source = RandomPair(m, 3);
  const la::Matrix target = RandomPair(m, 4);
  la::Matrix design(m, 3);
  for (std::size_t i = 0; i < m; ++i) {
    design(i, 0) = source(i, 0);
    design(i, 1) = source(i, 1);
    design(i, 2) = 1.0;
  }
  const la::Matrix pinv = *la::PseudoInverse(design);  // cached once
  for (auto _ : state) {
    benchmark::DoNotOptimize(pinv.Multiply(target));
  }
}
BENCHMARK(BM_FitWithCache)->Arg(720)->Arg(1950);

// --- Propagation vs from-scratch ---------------------------------------------

void BM_PropagateCovariance(benchmark::State& state) {
  const la::Matrix x = RandomPair(720, 5);
  const core::PairMatrixMeasures pm =
      core::ComputePairMatrixMeasures(x.ColData(0), x.ColData(1), 720);
  core::AffineTransform t;
  t.a12 = 1.7;
  t.a22 = -0.3;
  t.b2 = 4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::PropagateCovariance(pm, t));
  }
}
BENCHMARK(BM_PropagateCovariance);

void BM_ScratchCovariance(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::vector<double> x = RandomSeries(m, 6);
  const std::vector<double> y = RandomSeries(m, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::stats::Covariance(x.data(), y.data(), m));
  }
}
BENCHMARK(BM_ScratchCovariance)->Arg(720)->Arg(1950);

// --- Mode estimators ----------------------------------------------------------

void BM_HistogramMode(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::vector<double> x = RandomSeries(m, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::stats::Mode(x.data(), m));
  }
}
BENCHMARK(BM_HistogramMode)->Arg(720)->Arg(1950);

void BM_NaiveDensityMode(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::vector<double> x = RandomSeries(m, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::stats::NaiveModeEstimate(x.data(), m));
  }
}
BENCHMARK(BM_NaiveDensityMode)->Arg(720)->Arg(1950);

// --- B+-tree ------------------------------------------------------------------

void BM_BPlusTreeInsert(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(10);
  std::vector<double> keys(100000);
  for (auto& k : keys) k = rng.NextDouble();
  for (auto _ : state) {
    btree::BPlusTree<int> tree(fanout);
    for (std::size_t i = 0; i < keys.size(); ++i) tree.Insert(keys[i], static_cast<int>(i));
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100000);
}
BENCHMARK(BM_BPlusTreeInsert)->Arg(8)->Arg(16)->Arg(64)->Arg(256);

void BM_BPlusTreeThresholdScan(benchmark::State& state) {
  btree::BPlusTree<int> tree(64);
  Xoshiro256 rng(11);
  for (int i = 0; i < 100000; ++i) tree.Insert(rng.NextDouble(), i);
  for (auto _ : state) {
    std::size_t count = 0;
    tree.ScanGreaterThan(0.99, [&](double, const int&) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_BPlusTreeThresholdScan);

// --- FFT (WF comparator substrate) ---------------------------------------------

void BM_FftPowerOfTwo(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(12);
  std::vector<dft::Complex> base(n);
  for (auto& v : base) v = dft::Complex(rng.Gaussian(), 0.0);
  for (auto _ : state) {
    auto a = base;
    benchmark::DoNotOptimize(dft::Fft(&a, false));
  }
}
BENCHMARK(BM_FftPowerOfTwo)->Arg(1024)->Arg(2048);

void BM_BluesteinPaperLengths(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(13);
  std::vector<dft::Complex> base(n);
  for (auto& v : base) v = dft::Complex(rng.Gaussian(), 0.0);
  for (auto _ : state) {
    auto a = base;
    benchmark::DoNotOptimize(dft::BluesteinDft(&a, false));
  }
}
BENCHMARK(BM_BluesteinPaperLengths)->Arg(720)->Arg(1950);

// --- AFCLST centre update kernel -------------------------------------------------

void BM_PowerIterationCenter(benchmark::State& state) {
  // Typical cluster: ~100 member series of length 720.
  Xoshiro256 rng(14);
  la::Matrix members(720, 100);
  for (std::size_t j = 0; j < 100; ++j) {
    for (std::size_t i = 0; i < 720; ++i) members(i, j) = rng.Gaussian();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::PowerIterationTopSingular(members, la::Vector()));
  }
}
BENCHMARK(BM_PowerIterationCenter);

// --- Parallel scaling: batched sweeps and framework build -----------------------
//
// The stock dataset (Table 3) at micro scale — big enough that the O(n²)
// pair sweeps dominate, small enough for tight iteration.

const ts::Dataset& StockMicro() {
  static const ts::Dataset dataset = [] {
    ts::DatasetSpec spec;
    spec.num_series = 120;
    spec.num_samples = 240;
    spec.num_clusters = 10;
    spec.noise_level = 0.015;
    spec.seed = 7;
    return ts::MakeStockData(spec);
  }();
  return dataset;
}

const core::Affinity& StockFramework() {
  static const core::Affinity fw = [] {
    auto built = core::Affinity::Build(StockMicro().matrix);
    AFFINITY_CHECK(built.ok());
    return std::move(built).value();
  }();
  return fw;
}

void ThreadArgs(benchmark::internal::Benchmark* b) {
  b->Arg(1)->Arg(2)->Arg(4);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 4) b->Arg(static_cast<long>(hw));
  b->UseRealTime();  // wall clock, not per-thread CPU
}

/// A query engine over the stock data with the requested sweep
/// parallelism; `owned_pool` keeps the pool alive for the state's scope.
core::QueryEngine SweepEngine(std::size_t threads, std::unique_ptr<ThreadPool>* owned_pool,
                              bool with_model) {
  core::QueryEngine engine(&StockFramework().data());
  if (with_model) engine.AttachModel(&StockFramework().model());
  if (threads > 1) {
    *owned_pool = std::make_unique<ThreadPool>(threads);
    engine.SetExec(ExecContext{owned_pool->get()});
  }
  return engine;
}

void BM_MetSweepWN(benchmark::State& state) {
  std::unique_ptr<ThreadPool> pool;
  const core::QueryEngine engine =
      SweepEngine(static_cast<std::size_t>(state.range(0)), &pool, /*with_model=*/false);
  core::MetRequest req;
  req.measure = core::Measure::kCorrelation;
  req.tau = 0.9;
  for (auto _ : state) {
    auto result = engine.Met(req, core::QueryMethod::kNaive);
    benchmark::DoNotOptimize(result);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_MetSweepWN)->Apply(ThreadArgs);

void BM_MetSweepWA(benchmark::State& state) {
  std::unique_ptr<ThreadPool> pool;
  const core::QueryEngine engine =
      SweepEngine(static_cast<std::size_t>(state.range(0)), &pool, /*with_model=*/true);
  core::MetRequest req;
  req.measure = core::Measure::kCorrelation;
  req.tau = 0.9;
  for (auto _ : state) {
    auto result = engine.Met(req, core::QueryMethod::kAffine);
    benchmark::DoNotOptimize(result);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_MetSweepWA)->Apply(ThreadArgs);

void BM_MerSweepWN(benchmark::State& state) {
  std::unique_ptr<ThreadPool> pool;
  const core::QueryEngine engine =
      SweepEngine(static_cast<std::size_t>(state.range(0)), &pool, /*with_model=*/false);
  core::MerRequest req;
  req.measure = core::Measure::kCovariance;
  req.lo = -0.5;
  req.hi = 0.5;
  for (auto _ : state) {
    auto result = engine.Mer(req, core::QueryMethod::kNaive);
    benchmark::DoNotOptimize(result);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_MerSweepWN)->Apply(ThreadArgs);

void BM_MerSweepWA(benchmark::State& state) {
  std::unique_ptr<ThreadPool> pool;
  const core::QueryEngine engine =
      SweepEngine(static_cast<std::size_t>(state.range(0)), &pool, /*with_model=*/true);
  core::MerRequest req;
  req.measure = core::Measure::kCovariance;
  req.lo = -0.5;
  req.hi = 0.5;
  for (auto _ : state) {
    auto result = engine.Mer(req, core::QueryMethod::kAffine);
    benchmark::DoNotOptimize(result);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_MerSweepWA)->Apply(ThreadArgs);

void BM_AffinityBuild(benchmark::State& state) {
  core::AffinityOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto fw = core::Affinity::Build(StockMicro().matrix, options);
    AFFINITY_CHECK(fw.ok());
    benchmark::DoNotOptimize(fw);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_AffinityBuild)->Apply(ThreadArgs);

}  // namespace

BENCHMARK_MAIN();
