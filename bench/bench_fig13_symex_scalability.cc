// Reproduces Fig. 13: scalability of SYMEX vs SYMEX+ in the number of
// affine relationships.
//
// Expected shape: both linear; SYMEX+ (pseudo-inverse cache) a constant
// factor faster (paper: 3.5–4×).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/afclst.h"
#include "core/symex.h"

using namespace affinity;
using namespace affinity::bench;

namespace {

void RunDataset(const ts::Dataset& dataset, const std::vector<std::size_t>& targets) {
  core::AfclstOptions afclst;
  afclst.k = 6;
  auto clustering = core::RunAfclst(dataset.matrix, afclst);
  if (!clustering.ok()) {
    std::fprintf(stderr, "AFCLST failed: %s\n", clustering.status().ToString().c_str());
    std::exit(1);
  }
  const std::size_t max_rel = ts::SequencePairCount(dataset.matrix.n());
  for (std::size_t target : targets) {
    if (target > max_rel) target = max_rel;
    core::SymexOptions plain;
    plain.cache_pseudo_inverse = false;
    plain.max_relationships = target;
    core::SymexOptions plus;
    plus.cache_pseudo_inverse = true;
    plus.max_relationships = target;

    auto model_plain = core::RunSymex(dataset.matrix, *clustering, plain);
    auto model_plus = core::RunSymex(dataset.matrix, *clustering, plus);
    if (!model_plain.ok() || !model_plus.ok()) {
      std::fprintf(stderr, "SYMEX failed\n");
      std::exit(1);
    }
    std::printf("%s,%zu,%.4f,%.4f,%.2f\n", dataset.name.c_str(),
                model_plus->relationship_count(), model_plain->stats().march_seconds,
                model_plus->stats().march_seconds,
                model_plain->stats().march_seconds /
                    (model_plus->stats().march_seconds > 0 ? model_plus->stats().march_seconds
                                                           : 1e-12));
    if (target == max_rel) break;
  }
}

std::vector<std::size_t> ScaledTargets(std::initializer_list<std::size_t> paper, double scale) {
  // Relationship counts scale with n², i.e. scale².
  std::vector<std::size_t> out;
  for (std::size_t t : paper) out.push_back(Scaled(t, scale * scale, 100));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  Banner("Fig. 13", "SYMEX vs SYMEX+ runtime vs number of affine relationships", args);
  std::printf("dataset,relationships,symex_seconds,symex_plus_seconds,plus_speedup\n");
  // Paper sweeps: sensor 5k..230k, stock 5k..505k.
  RunDataset(SensorAtScale(args.scale),
             ScaledTargets({5000, 50000, 95000, 140000, 185000, 230000}, args.scale));
  RunDataset(StockAtScale(args.scale),
             ScaledTargets({5000, 105000, 205000, 305000, 405000, 505000}, args.scale));
  return 0;
}
