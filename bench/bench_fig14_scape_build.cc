// Reproduces Fig. 14: scalability of SCAPE index construction on
// sensor-data, for a T-measure (covariance) and an L-measure (mean).
//
// The paper plots per-measure index build time against the number of
// indexed affine relationships; both curves are linear with covariance
// slightly above mean. We additionally report the full multi-measure index
// (what `ScapeIndex::Build` produces) — the paper's point that one
// structure serves all measures.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "btree/bplus_tree.h"
#include "core/scape.h"
#include "core/symex.h"

using namespace affinity;
using namespace affinity::bench;

namespace {

/// Covariance-only pair-level index build (Table 2 covariance row).
double BuildCovarianceOnly(const core::AffinityModel& model) {
  Stopwatch watch;
  std::unordered_map<std::uint64_t, btree::BPlusTree<ts::SequencePair>> trees;
  model.ForEachRelationship([&](const ts::SequencePair& e, const core::AffineRecord& rec) {
    const core::PairMatrixMeasures* pm = model.FindPivotMeasures(rec.pivot);
    double alpha[3];
    if (rec.pivot.series_first) {
      alpha[0] = pm->cov11;
      alpha[1] = pm->cov12;
    } else {
      alpha[0] = pm->cov12;
      alpha[1] = pm->cov22;
    }
    alpha[2] = 0.0;
    const double norm =
        std::sqrt(alpha[0] * alpha[0] + alpha[1] * alpha[1] + alpha[2] * alpha[2]);
    double beta[3];
    rec.Beta(beta);
    const double xi =
        norm > 0 ? (alpha[0] * beta[0] + alpha[1] * beta[1] + alpha[2] * beta[2]) / norm : 0.0;
    auto [it, inserted] = trees.try_emplace(rec.pivot.Key());
    it->second.Insert(xi, e);
  });
  return watch.ElapsedSeconds();
}

/// Mean-only pair-level index build (Table 2 location row: the L-measure of
/// the free series keyed per relationship, as the paper's Fig. 14 scales
/// the "mean" curve with the relationship count).
double BuildMeanOnly(const core::AffinityModel& model) {
  Stopwatch watch;
  std::unordered_map<std::uint64_t, btree::BPlusTree<ts::SequencePair>> trees;
  model.ForEachRelationship([&](const ts::SequencePair& e, const core::AffineRecord& rec) {
    const core::PairMatrixMeasures* pm = model.FindPivotMeasures(rec.pivot);
    const double alpha[3] = {pm->mean[0], pm->mean[1], 1.0};
    const double norm =
        std::sqrt(alpha[0] * alpha[0] + alpha[1] * alpha[1] + alpha[2] * alpha[2]);
    double beta[3];
    rec.Beta(beta);
    const double xi = (alpha[0] * beta[0] + alpha[1] * beta[1] + alpha[2] * beta[2]) / norm;
    auto [it, inserted] = trees.try_emplace(rec.pivot.Key());
    it->second.Insert(xi, e);
  });
  return watch.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  Banner("Fig. 14", "SCAPE index construction time vs indexed affine relationships (sensor-data)",
         args);
  const ts::Dataset dataset = SensorAtScale(args.scale);
  const std::size_t max_rel = ts::SequencePairCount(dataset.matrix.n());

  core::AfclstOptions afclst;
  afclst.k = 6;
  auto clustering = core::RunAfclst(dataset.matrix, afclst);
  if (!clustering.ok()) return 1;

  std::printf("relationships,covariance_seconds,mean_seconds,full_index_seconds\n");
  for (int step = 1; step <= 5; ++step) {
    std::size_t target = max_rel * static_cast<std::size_t>(step) / 5;
    core::SymexOptions symex;
    symex.max_relationships = target;
    auto model = core::RunSymex(dataset.matrix, *clustering, symex);
    if (!model.ok()) return 1;

    const double cov_seconds = BuildCovarianceOnly(*model);
    const double mean_seconds = BuildMeanOnly(*model);
    auto index = core::ScapeIndex::Build(*model);
    if (!index.ok()) return 1;
    std::printf("%zu,%.4f,%.4f,%.4f\n", model->relationship_count(), cov_seconds, mean_seconds,
                index->build_seconds());
  }
  return 0;
}
