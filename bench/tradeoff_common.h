#ifndef AFFINITY_BENCH_TRADEOFF_COMMON_H_
#define AFFINITY_BENCH_TRADEOFF_COMMON_H_

/// \file tradeoff_common.h
/// Shared driver for the Fig. 9/10/11 efficiency-vs-accuracy experiments.
///
/// For each cluster count k the driver builds the AFFINITY model, then for
/// each of the paper's five measures sweeps the *entire* dataset with both
/// the WN (from scratch) and WA (affine relationships) methods, reporting
/// wall time, speedup, and the Eq. (16) %RMSE.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/framework.h"
#include "core/measures.h"
#include "core/symex.h"
#include "ts/data_matrix.h"

namespace affinity::bench {

/// One sweep result for (measure, k).
struct TradeoffRow {
  core::Measure measure;
  std::size_t k = 0;
  double wn_seconds = 0;
  double wa_seconds = 0;
  double rmse_pct = 0;
  double build_seconds = 0;  ///< one-time AFCLST + SYMEX+ + preprocessing

  double speedup() const { return wa_seconds > 0 ? wn_seconds / wa_seconds : 0.0; }
};

/// Full-dataset WN sweep of one measure; returns values (for RMSE).
inline std::vector<double> NaiveSweep(const ts::DataMatrix& data, core::Measure measure,
                                      double* seconds) {
  std::vector<double> values;
  Stopwatch watch;
  if (core::IsLocation(measure)) {
    values.reserve(data.n());
    for (ts::SeriesId v = 0; v < data.n(); ++v) {
      values.push_back(*core::NaiveLocationMeasure(measure, data.ColumnData(v), data.m()));
    }
  } else {
    values.reserve(ts::SequencePairCount(data.n()));
    for (ts::SeriesId u = 0; u + 1 < data.n(); ++u) {
      for (ts::SeriesId v = u + 1; v < data.n(); ++v) {
        values.push_back(
            *core::NaivePairMeasure(measure, data.ColumnData(u), data.ColumnData(v), data.m()));
      }
    }
  }
  *seconds = watch.ElapsedSeconds();
  return values;
}

/// Full-dataset WA sweep of one measure via the pre-built model.
inline std::vector<double> AffineSweep(const core::AffinityModel& model, core::Measure measure,
                                       double* seconds) {
  const ts::DataMatrix& data = model.data();
  std::vector<double> values;
  Stopwatch watch;
  if (core::IsLocation(measure)) {
    values.reserve(data.n());
    for (ts::SeriesId v = 0; v < data.n(); ++v) {
      values.push_back(*model.SeriesMeasure(measure, v));
    }
  } else {
    values.reserve(ts::SequencePairCount(data.n()));
    for (ts::SeriesId u = 0; u + 1 < data.n(); ++u) {
      for (ts::SeriesId v = u + 1; v < data.n(); ++v) {
        values.push_back(*model.PairMeasure(measure, ts::SequencePair(u, v)));
      }
    }
  }
  *seconds = watch.ElapsedSeconds();
  return values;
}

/// Runs the (measure × k) sweep the paper plots in Figs. 9–11.
inline std::vector<TradeoffRow> RunTradeoff(const ts::Dataset& dataset,
                                            const std::vector<std::size_t>& k_values) {
  const std::vector<core::Measure> measures = {
      core::Measure::kMean, core::Measure::kMedian, core::Measure::kMode,
      core::Measure::kCovariance, core::Measure::kDotProduct};

  // WN does not depend on k: sweep once per measure.
  std::vector<double> wn_seconds(measures.size());
  std::vector<std::vector<double>> truth(measures.size());
  for (std::size_t mi = 0; mi < measures.size(); ++mi) {
    truth[mi] = NaiveSweep(dataset.matrix, measures[mi], &wn_seconds[mi]);
  }

  std::vector<TradeoffRow> rows;
  for (const std::size_t k : k_values) {
    core::AfclstOptions afclst;
    afclst.k = k;
    auto model = core::BuildAffinityModel(dataset.matrix, afclst, core::SymexOptions{});
    if (!model.ok()) {
      std::fprintf(stderr, "model build failed for k=%zu: %s\n", k,
                   model.status().ToString().c_str());
      continue;
    }
    const double build_seconds = model->stats().afclst_seconds +
                                 model->stats().march_seconds +
                                 model->stats().preprocess_seconds;
    for (std::size_t mi = 0; mi < measures.size(); ++mi) {
      TradeoffRow row;
      row.measure = measures[mi];
      row.k = k;
      row.wn_seconds = wn_seconds[mi];
      row.build_seconds = build_seconds;
      const std::vector<double> approx = AffineSweep(*model, measures[mi], &row.wa_seconds);
      row.rmse_pct = core::PercentRmse(truth[mi], approx);
      rows.push_back(row);
    }
  }
  return rows;
}

inline void PrintTradeoffHeader() {
  std::printf("measure,k,speedup,rmse_pct,wn_seconds,wa_seconds,build_seconds\n");
}

inline void PrintTradeoffRow(const TradeoffRow& row) {
  std::printf("%s,%zu,%.2f,%.3e,%.6f,%.6f,%.3f\n",
              std::string(core::MeasureName(row.measure)).c_str(), row.k, row.speedup(),
              row.rmse_pct, row.wn_seconds, row.wa_seconds, row.build_seconds);
}

}  // namespace affinity::bench

#endif  // AFFINITY_BENCH_TRADEOFF_COMMON_H_
