#ifndef AFFINITY_BENCH_BENCH_UTIL_H_
#define AFFINITY_BENCH_BENCH_UTIL_H_

/// \file bench_util.h
/// Shared plumbing for the figure/table reproduction harnesses.
///
/// Every harness prints a self-describing header (experiment id, dataset,
/// scale factor) followed by comma-separated rows so the output can be both
/// eyeballed against the paper and re-plotted mechanically.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "ts/generators.h"

namespace affinity::bench {

/// Command-line options common to all harnesses.
struct BenchArgs {
  /// Scales dataset sizes (n, m) and workload sizes. 1.0 = paper scale.
  double scale = 1.0;
  /// --quick: a fast smoke configuration (scale 0.25 unless --scale given).
  bool quick = false;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    bool scale_given = false;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--scale=", 8) == 0) {
        args.scale = std::atof(a + 8);
        scale_given = true;
      } else if (std::strcmp(a, "--quick") == 0) {
        args.quick = true;
      } else if (std::strcmp(a, "--help") == 0) {
        std::printf("usage: %s [--scale=F] [--quick]\n", argv[0]);
        std::exit(0);
      }
    }
    if (args.quick && !scale_given) args.scale = 0.25;
    if (args.scale <= 0.0 || args.scale > 1.0) args.scale = 1.0;
    return args;
  }
};

/// Applies a scale factor with a sane floor.
inline std::size_t Scaled(std::size_t value, double scale, std::size_t floor_value) {
  const auto scaled = static_cast<std::size_t>(static_cast<double>(value) * scale);
  return scaled < floor_value ? floor_value : scaled;
}

/// The paper's sensor-data (Table 3: 670 × 720) at the given scale.
inline ts::Dataset SensorAtScale(double scale) {
  ts::DatasetSpec spec;
  spec.num_series = Scaled(670, scale, 24);
  spec.num_samples = Scaled(720, scale, 48);
  spec.num_clusters = 8;
  spec.noise_level = 0.02;
  spec.seed = 42;
  return ts::MakeSensorData(spec);
}

/// The paper's stock-data (Table 3: 996 × 1950) at the given scale.
inline ts::Dataset StockAtScale(double scale) {
  ts::DatasetSpec spec;
  spec.num_series = Scaled(996, scale, 24);
  spec.num_samples = Scaled(1950, scale, 48);
  spec.num_clusters = 10;
  spec.noise_level = 0.015;
  spec.seed = 7;
  return ts::MakeStockData(spec);
}

/// Times a callable once, returning wall seconds.
template <typename Fn>
double TimeSeconds(Fn&& fn) {
  Stopwatch watch;
  fn();
  return watch.ElapsedSeconds();
}

/// Prints the standard experiment banner.
inline void Banner(const char* experiment, const char* description, const BenchArgs& args) {
  std::printf("# ============================================================\n");
  std::printf("# %s\n", experiment);
  std::printf("# %s\n", description);
  std::printf("# scale=%.3f (1.0 = paper scale; pass --scale=F to change)\n", args.scale);
  std::printf("# ============================================================\n");
}

}  // namespace affinity::bench

#endif  // AFFINITY_BENCH_BENCH_UTIL_H_
