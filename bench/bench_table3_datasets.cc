// Reproduces Table 3: summary of the datasets.
//
// Paper values: sensor-data n=670, m=720, Δt=2 min, 224,115 max affine
// relationships; stock-data n=996, m=1950, Δt=1 min, 495,510.

#include <cstdio>

#include "bench_util.h"
#include "ts/data_matrix.h"

using namespace affinity;
using namespace affinity::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  Banner("Table 3", "Summary of the datasets (synthetic stand-ins, DESIGN.md §2)", args);

  std::printf("dataset,sampling_interval_s,num_series_n,samples_per_series_m,"
              "max_affine_relationships\n");
  for (const ts::Dataset& ds : {SensorAtScale(args.scale), StockAtScale(args.scale)}) {
    std::printf("%s,%.0f,%zu,%zu,%zu\n", ds.name.c_str(), ds.sampling_interval_seconds,
                ds.matrix.n(), ds.matrix.m(), ts::SequencePairCount(ds.matrix.n()));
  }
  std::printf("# paper: sensor-data,120,670,720,224115\n");
  std::printf("# paper: stock-data,60,996,1950,495510\n");
  return 0;
}
