// Reproduces Fig. 9: efficiency/accuracy trade-off on sensor-data.
//
// Expected shape (paper): speedups greatest for mode (log scale), moderate
// for median/covariance, small for mean/dot product; %RMSE ~1e-12 for
// mean/covariance/dot, <3% for median, <8% for mode; accuracy already good
// at k=6.

#include "tradeoff_common.h"

using namespace affinity;
using namespace affinity::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  Banner("Fig. 9", "sensor-data: WN vs WA speedup and %RMSE as a function of k", args);
  const ts::Dataset dataset = SensorAtScale(args.scale);
  PrintTradeoffHeader();
  for (const TradeoffRow& row : RunTradeoff(dataset, {6, 10, 14, 18, 22})) {
    PrintTradeoffRow(row);
  }
  return 0;
}
