// Reproduces Fig. 12: MEC query processing in an online environment.
//
// Workload (paper §6.2): each query draws a measure uniformly from
// {mean, median, mode, covariance, dot product, correlation} and 10 distinct
// series ids from a power-law (Zipf) popularity distribution; the paper
// sweeps 15k…90k queries. WA timings include the one-time SYMEX+ build
// (k=6, γmax=10, δmin=10), exactly as in the paper.
//
// Expected shape: both methods linear in #queries; WA 2.5–23× faster.
//
// NOTE on scale: the paper's WN sweep ran for 2200–3500 s. The default
// --scale=0.05 keeps the same shape at ~1/20 the query counts; pass
// --scale=1 to reproduce the full workload.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/framework.h"
#include "core/query.h"

using namespace affinity;
using namespace affinity::bench;
using core::Measure;
using core::QueryMethod;

namespace {

struct OnlineQuery {
  core::MecRequest request;
};

std::vector<OnlineQuery> MakeWorkload(std::size_t count, std::size_t n, std::uint64_t seed) {
  const std::vector<Measure> menu = {Measure::kMean,       Measure::kMedian,
                                     Measure::kMode,       Measure::kCovariance,
                                     Measure::kDotProduct, Measure::kCorrelation};
  Xoshiro256 rng(seed);
  ZipfSampler zipf(n, 1.0);
  std::vector<OnlineQuery> out;
  out.reserve(count);
  const std::size_t ids_per_query = n < 10 ? n : 10;
  for (std::size_t q = 0; q < count; ++q) {
    OnlineQuery query;
    query.request.measure = menu[rng.NextBounded(menu.size())];
    for (std::size_t r : zipf.SampleDistinct(&rng, ids_per_query)) {
      query.request.ids.push_back(static_cast<ts::SeriesId>(r));
    }
    out.push_back(std::move(query));
  }
  return out;
}

double RunQueries(const core::QueryEngine& engine, const std::vector<OnlineQuery>& workload,
                  std::size_t count, QueryMethod method) {
  Stopwatch watch;
  for (std::size_t q = 0; q < count; ++q) {
    auto resp = engine.Mec(workload[q].request, method);
    if (!resp.ok()) {
      std::fprintf(stderr, "query failed: %s\n", resp.status().ToString().c_str());
      std::exit(1);
    }
  }
  return watch.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  // This experiment defaults to a reduced workload (see file comment).
  bool scale_given = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) scale_given = true;
  }
  const double query_scale = scale_given ? args.scale : 0.05;
  Banner("Fig. 12", "online MEC workloads: total time vs number of queries (WN vs WA)", args);
  std::printf("# query counts scaled by %.3f relative to the paper's 15k..90k\n", query_scale);
  std::printf("dataset,num_queries,wn_seconds,wa_seconds,wa_build_seconds\n");

  for (int which = 0; which < 2; ++which) {
    const ts::Dataset dataset = which == 0 ? SensorAtScale(args.scale) : StockAtScale(args.scale);

    // One-time WA build, included in the reported WA total (as in Fig. 12).
    Stopwatch build_watch;
    core::AffinityOptions build_options;
    build_options.afclst.k = 6;
    build_options.afclst.max_iterations = 10;
    build_options.afclst.min_changes = 10;
    build_options.build_scape = false;
    build_options.build_dft = false;
    auto fw = core::Affinity::Build(dataset.matrix, build_options);
    if (!fw.ok()) {
      std::fprintf(stderr, "build failed: %s\n", fw.status().ToString().c_str());
      return 1;
    }
    const double build_seconds = build_watch.ElapsedSeconds();

    const std::size_t max_queries = Scaled(90000, query_scale, 60);
    const std::vector<OnlineQuery> workload = MakeWorkload(max_queries, dataset.matrix.n(), 99);

    for (int step = 1; step <= 6; ++step) {
      const std::size_t count = max_queries * static_cast<std::size_t>(step) / 6;
      const double wn = RunQueries(fw->engine(), workload, count, QueryMethod::kNaive);
      const double wa_queries = RunQueries(fw->engine(), workload, count, QueryMethod::kAffine);
      std::printf("%s,%zu,%.4f,%.4f,%.4f\n", dataset.name.c_str(), count, wn,
                  wa_queries + build_seconds, build_seconds);
    }
  }
  return 0;
}
