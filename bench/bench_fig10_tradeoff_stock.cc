// Reproduces Fig. 10: efficiency/accuracy trade-off on stock-data.
//
// Same sweep as Fig. 9 on the larger dataset; the paper's point is that the
// efficiency gains grow with dataset size.

#include "tradeoff_common.h"

using namespace affinity;
using namespace affinity::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  Banner("Fig. 10", "stock-data: WN vs WA speedup and %RMSE as a function of k", args);
  const ts::Dataset dataset = StockAtScale(args.scale);
  PrintTradeoffHeader();
  for (const TradeoffRow& row : RunTradeoff(dataset, {6, 10, 14, 18, 22})) {
    PrintTradeoffRow(row);
  }
  return 0;
}
