// Reproduces Table 4: SCAPE query-processing speedup over WN / WA / WF
// when the query returns the maximum-size result set (sensor-data).
//
// Paper values for reference:
//   MET  correlation  59x / 13.4x / 32x     MER correlation 27x / 6.4x / 14x
//   MET  covariance  160x / 21x   / —       MER covariance 155x / 22x  / —
//   MET  dot product  41x / 35x   / —
//   MET  median        5x / 1.1x  / —
//
// The maximum result set is the worst case for SCAPE (it must emit every
// entry), so these are the paper's most conservative speedups.

#include "selection_common.h"

using namespace affinity;
using namespace affinity::bench;
using core::Measure;
using core::QueryMethod;

namespace {

void ReportMet(const core::Affinity& fw, Measure measure, bool include_wf) {
  const std::vector<double> sorted = SortedValuesDescending(fw, measure);
  core::MetRequest request;
  request.measure = measure;
  request.tau = sorted.back() - 1.0;  // everything qualifies: max result set
  request.greater = true;

  std::size_t size = 0;
  const double scape = TimeMet(fw.engine(), request, QueryMethod::kScape, &size);
  const double wn = TimeMet(fw.engine(), request, QueryMethod::kNaive, &size);
  const double wa = TimeMet(fw.engine(), request, QueryMethod::kAffine, &size);
  double wf = -1.0;
  if (include_wf) wf = TimeMet(fw.engine(), request, QueryMethod::kDft, &size);

  std::printf("MET,%s,%zu,%.1f,%.1f,", std::string(core::MeasureName(measure)).c_str(), size,
              wn / scape, wa / scape);
  if (include_wf) {
    std::printf("%.1f\n", wf / scape);
  } else {
    std::printf("x\n");
  }
}

void ReportMer(const core::Affinity& fw, Measure measure, bool include_wf) {
  const std::vector<double> sorted = SortedValuesDescending(fw, measure);
  core::MerRequest request;
  request.measure = measure;
  request.lo = sorted.back() - 1.0;
  request.hi = sorted.front() + 1.0;

  std::size_t size = 0;
  const double scape = TimeMer(fw.engine(), request, QueryMethod::kScape, &size);
  const double wn = TimeMer(fw.engine(), request, QueryMethod::kNaive, &size);
  const double wa = TimeMer(fw.engine(), request, QueryMethod::kAffine, &size);
  double wf = -1.0;
  if (include_wf) wf = TimeMer(fw.engine(), request, QueryMethod::kDft, &size);

  std::printf("MER,%s,%zu,%.1f,%.1f,", std::string(core::MeasureName(measure)).c_str(), size,
              wn / scape, wa / scape);
  if (include_wf) {
    std::printf("%.1f\n", wf / scape);
  } else {
    std::printf("x\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  Banner("Table 4", "SCAPE speedup at maximum result size (sensor-data)", args);
  const core::Affinity fw = BuildSensorFramework(args.scale);
  std::printf("query_type,measure,result_size,speedup_vs_wn,speedup_vs_wa,speedup_vs_wf\n");
  ReportMet(fw, Measure::kCorrelation, /*include_wf=*/true);
  ReportMet(fw, Measure::kCovariance, /*include_wf=*/false);
  ReportMet(fw, Measure::kDotProduct, /*include_wf=*/false);
  ReportMet(fw, Measure::kMedian, /*include_wf=*/false);
  ReportMer(fw, Measure::kCorrelation, /*include_wf=*/true);
  ReportMer(fw, Measure::kCovariance, /*include_wf=*/false);
  return 0;
}
