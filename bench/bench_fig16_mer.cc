// Reproduces Fig. 16: MER (range) query efficiency vs result size on
// sensor-data.
//
//  (a) correlation coefficient — WN, WA, WF, SCAPE
//  (b) covariance              — WN, WA, SCAPE
//
// Ranges are centred quantile windows of the value distribution so the
// result size sweeps the paper's 45k…225k x-axis.

#include "selection_common.h"

using namespace affinity;
using namespace affinity::bench;
using core::Measure;
using core::QueryMethod;

namespace {

void RunSubfigure(const core::Affinity& fw, Measure measure,
                  const std::vector<QueryMethod>& methods) {
  std::vector<double> sorted = SortedValuesDescending(fw, measure);
  const std::size_t total = sorted.size();
  for (int step = 1; step <= 5; ++step) {
    // A centred window holding ~step/5 of the population.
    const std::size_t target = total * static_cast<std::size_t>(step) / 5;
    const std::size_t lo_rank = (total - target) / 2;                   // upper bound rank
    const std::size_t hi_rank = lo_rank + target;                      // lower bound rank
    core::MerRequest request;
    request.measure = measure;
    request.hi = lo_rank == 0 ? sorted.front() + 1.0 : sorted[lo_rank];
    request.lo = hi_rank >= total ? sorted.back() - 1.0 : sorted[hi_rank];
    for (QueryMethod method : methods) {
      std::size_t result_size = 0;
      const double seconds = TimeMer(fw.engine(), request, method, &result_size);
      std::printf("%s,%zu,%s,%.6f\n", std::string(core::MeasureName(measure)).c_str(),
                  result_size, std::string(core::QueryMethodName(method)).c_str(), seconds);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  Banner("Fig. 16", "MER query time vs result size (sensor-data)", args);
  const core::Affinity fw = BuildSensorFramework(args.scale);
  std::printf("measure,result_size,method,seconds\n");
  RunSubfigure(fw, Measure::kCorrelation,
               {QueryMethod::kNaive, QueryMethod::kAffine, QueryMethod::kDft,
                QueryMethod::kScape});
  RunSubfigure(fw, Measure::kCovariance,
               {QueryMethod::kNaive, QueryMethod::kAffine, QueryMethod::kScape});
  return 0;
}
