// Reproduces Fig. 15: MET query efficiency vs result size on sensor-data.
//
//  (a) correlation coefficient — WN, WA, WF, SCAPE
//  (b) covariance              — WN, WA, SCAPE
//  (c) median                  — WN, WA, SCAPE
//  (d) dot product             — WN, WA, SCAPE
//
// Expected shape: SCAPE orders of magnitude below WN/WA at small result
// sizes (log-scale y); WF between WN and WA for correlation; median shows
// modest gains (only n series-level relationships exist).

#include "selection_common.h"

using namespace affinity;
using namespace affinity::bench;
using core::Measure;
using core::QueryMethod;

namespace {

void RunSubfigure(const core::Affinity& fw, Measure measure,
                  const std::vector<QueryMethod>& methods) {
  const std::vector<double> sorted = SortedValuesDescending(fw, measure);
  const std::size_t total = sorted.size();
  for (int step = 0; step <= 5; ++step) {
    const std::size_t target = total * static_cast<std::size_t>(step) / 5;
    core::MetRequest request;
    request.measure = measure;
    request.tau = ThresholdForResultSize(sorted, target);
    request.greater = true;
    for (QueryMethod method : methods) {
      std::size_t result_size = 0;
      const double seconds = TimeMet(fw.engine(), request, method, &result_size);
      std::printf("%s,%zu,%s,%.6f\n", std::string(core::MeasureName(measure)).c_str(),
                  result_size, std::string(core::QueryMethodName(method)).c_str(), seconds);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  Banner("Fig. 15", "MET query time vs result size (sensor-data)", args);
  const core::Affinity fw = BuildSensorFramework(args.scale);
  std::printf("measure,result_size,method,seconds\n");
  RunSubfigure(fw, Measure::kCorrelation,
               {QueryMethod::kNaive, QueryMethod::kAffine, QueryMethod::kDft,
                QueryMethod::kScape});
  RunSubfigure(fw, Measure::kCovariance,
               {QueryMethod::kNaive, QueryMethod::kAffine, QueryMethod::kScape});
  RunSubfigure(fw, Measure::kMedian,
               {QueryMethod::kNaive, QueryMethod::kAffine, QueryMethod::kScape});
  RunSubfigure(fw, Measure::kDotProduct,
               {QueryMethod::kNaive, QueryMethod::kAffine, QueryMethod::kScape});
  return 0;
}
