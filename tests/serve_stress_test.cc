// Concurrency stress for lock-free snapshot serving (DESIGN.md §11):
// reader threads continuously acquire serving epochs and run all four
// query kinds while the owner thread slides the window at interval 1
// (a refresh per append — the worst-case maintenance rate). Run under
// the TSan CI leg, this is the data-race proof of the epoch-publication
// contract: readers touch only acquired snapshots and const serve
// functions, writers only publish.

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/streaming.h"
#include "serve/serve_query.h"
#include "shard/sharded.h"
#include "ts/generators.h"

namespace affinity::shard {
namespace {

using core::Measure;
using core::StreamingAffinity;
using core::StreamingOptions;

std::vector<std::string> Names(std::size_t n) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back("s" + std::to_string(i));
  return out;
}

ts::Dataset TestData(std::size_t n) {
  ts::DatasetSpec spec;
  spec.num_series = n;
  spec.num_samples = 400;
  spec.num_clusters = 3;
  spec.noise_level = 0.02;
  spec.seed = 12;
  return ts::MakeSensorData(spec);
}

constexpr std::size_t kReaders = 4;
constexpr std::size_t kSlides = 160;  // appends after readiness, one refresh each

TEST(ServeStress, SingleInstanceReadersNeverBlockOnSlides) {
  StreamingOptions options;
  options.window = 40;
  options.rebuild_interval = 1;  // refresh on every append
  options.mode = core::UpdateMode::kIncremental;
  options.build.afclst.k = 2;
  options.build.build_dft = false;
  auto stream = StreamingAffinity::Create(Names(8), options);
  ASSERT_TRUE(stream.ok());
  const ts::Dataset ds = TestData(8);
  std::vector<double> row(8);
  for (std::size_t i = 0; i < options.window; ++i) {
    for (std::size_t j = 0; j < 8; ++j) row[j] = ds.matrix.matrix()(i, j);
    ASSERT_TRUE(stream->Append(row).ok());
  }
  ASSERT_NE(stream->serving(), nullptr);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> failures{0};
  std::atomic<std::size_t> queries{0};
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&stream, &stop, &failures, &queries] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto snap = stream->serving();
        if (snap == nullptr) {
          failures.fetch_add(1);
          continue;
        }
        const std::uint64_t generation = snap->generation;
        auto met = serve::SnapshotMet(*snap, {Measure::kCorrelation, 0.9, true});
        auto mer = serve::SnapshotMer(*snap, {Measure::kCovariance, -0.5, 0.5});
        auto topk = serve::SnapshotTopK(*snap, {Measure::kDotProduct, 3, true});
        auto mec = serve::SnapshotMec(*snap, {Measure::kMean, {0, 3, 7}});
        if (!met.ok() || !mer.ok() || !topk.ok() || !mec.ok()) failures.fetch_add(1);
        // The pinned epoch must be internally coherent while slides
        // publish newer ones underneath.
        if (snap->generation != generation) failures.fetch_add(1);
        queries.fetch_add(4, std::memory_order_relaxed);
      }
    });
  }
  for (std::size_t i = 0; i < kSlides; ++i) {
    const std::size_t src = options.window + i;
    for (std::size_t j = 0; j < 8; ++j) row[j] = ds.matrix.matrix()(src, j);
    const auto result = stream->Append(row);
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result.refreshed);  // interval 1: every append refreshes
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(queries.load(), 0u);
  // Every slide published a fresh epoch.
  auto last = stream->serving();
  ASSERT_NE(last, nullptr);
  EXPECT_GE(last->generation, kSlides);
}

TEST(ServeStress, RingReadersPinOldEpochsDuringContinuousSlides) {
  StreamingOptions options;
  options.window = 40;
  options.rebuild_interval = 1;  // refresh on every append
  options.mode = core::UpdateMode::kIncremental;
  options.build.afclst.k = 2;
  options.build.build_dft = false;
  options.serving_history = 8;  // publisher pins the last 8 superseded epochs
  auto stream = StreamingAffinity::Create(Names(8), options);
  ASSERT_TRUE(stream.ok());
  const ts::Dataset ds = TestData(8);
  std::vector<double> row(8);
  for (std::size_t i = 0; i < options.window; ++i) {
    for (std::size_t j = 0; j < 8; ++j) row[j] = ds.matrix.matrix()(i, j);
    ASSERT_TRUE(stream->Append(row).ok());
  }
  ASSERT_NE(stream->serving(), nullptr);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> failures{0};
  std::atomic<std::size_t> ring_hits{0};
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&stream, &stop, &failures, &ring_hits] {
      while (!stop.load(std::memory_order_relaxed)) {
        // Pin whatever is current, let the writer publish past it, then
        // re-acquire the same generation through the ring and check the
        // pinned epoch stayed bit-stable.
        auto pinned = stream->serving();
        if (pinned == nullptr) {
          failures.fetch_add(1);
          continue;
        }
        auto before = serve::SnapshotMet(*pinned, {Measure::kCorrelation, 0.9, true});
        if (!before.ok()) {
          failures.fetch_add(1);
          continue;
        }
        auto ringed = stream->serving_epoch(pinned->generation);
        if (ringed != nullptr) {
          // The ring must hand back the very same epoch object (no copy),
          // and it must answer identically to the handle we already hold.
          if (ringed.get() != pinned.get()) failures.fetch_add(1);
          auto after = serve::SnapshotMet(*ringed, {Measure::kCorrelation, 0.9, true});
          if (!after.ok() || after->series != before->series || after->pairs != before->pairs) {
            failures.fetch_add(1);
          }
          ring_hits.fetch_add(1, std::memory_order_relaxed);
        }
        // else: ≥ 9 epochs published between acquire and lookup — eviction
        // is legitimate under load; the pinned handle itself stays valid.
        auto again = serve::SnapshotMet(*pinned, {Measure::kCorrelation, 0.9, true});
        if (!again.ok() || again->pairs != before->pairs) failures.fetch_add(1);
      }
    });
  }
  for (std::size_t i = 0; i < kSlides; ++i) {
    const std::size_t src = options.window + i;
    for (std::size_t j = 0; j < 8; ++j) row[j] = ds.matrix.matrix()(src, j);
    const auto result = stream->Append(row);
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result.refreshed);
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(ring_hits.load(), 0u);
  // With history 8, the previous 8 generations stay acquirable after the
  // writer goes quiet.
  auto last = stream->serving();
  ASSERT_NE(last, nullptr);
  for (std::uint64_t g = last->generation - options.serving_history; g <= last->generation; ++g) {
    EXPECT_NE(stream->serving_epoch(g), nullptr) << "generation " << g;
  }
  EXPECT_EQ(stream->serving_epoch(last->generation - options.serving_history - 1), nullptr);
}

TEST(ServeStress, ShardedRoutersServeDuringContinuousSlides) {
  ShardedOptions options;
  options.shards = 4;
  options.streaming.window = 40;
  options.streaming.rebuild_interval = 1;
  options.streaming.mode = core::UpdateMode::kIncremental;
  options.streaming.build.afclst.k = 2;
  options.streaming.build.build_dft = false;
  options.cross_cache.budget = 8;
  auto service = ShardedAffinity::Create(Names(16), options);
  ASSERT_TRUE(service.ok());
  const ts::Dataset ds = TestData(16);
  std::vector<double> row(16);
  for (std::size_t i = 0; i < options.streaming.window; ++i) {
    for (std::size_t j = 0; j < 16; ++j) row[j] = ds.matrix.matrix()(i, j);
    ASSERT_TRUE(service->Append(row).ok());
  }
  ASSERT_NE(service->serving(), nullptr);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> failures{0};
  std::atomic<std::size_t> queries{0};
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&service, &stop, &failures, &queries] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto snap = service->serving();
        if (snap == nullptr) {
          failures.fetch_add(1);
          continue;
        }
        auto met = RouterMet(*snap, {Measure::kCorrelation, 0.9, true});
        auto mer = RouterMer(*snap, {Measure::kCovariance, -0.5, 0.5});
        auto topk = RouterTopK(*snap, {Measure::kCorrelation, 5, true});
        auto mec = RouterMec(*snap, {Measure::kCovariance, {0, 5, 9, 15}});
        if (!met.ok() || !mer.ok() || !topk.ok() || !mec.ok()) failures.fetch_add(1);
        if (mec.ok() && mec->pair_values.rows() != 4) failures.fetch_add(1);
        queries.fetch_add(4, std::memory_order_relaxed);
      }
    });
  }
  for (std::size_t i = 0; i < kSlides; ++i) {
    const std::size_t src = options.streaming.window + i;
    for (std::size_t j = 0; j < 16; ++j) row[j] = ds.matrix.matrix()(src, j);
    ASSERT_TRUE(service->Append(row).ok());
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(queries.load(), 0u);
  auto last = service->serving();
  ASSERT_NE(last, nullptr);
  EXPECT_GE(last->generation, kSlides);
}

}  // namespace
}  // namespace affinity::shard
