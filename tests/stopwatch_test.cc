// Tests for the timing utilities (common/stopwatch.h).

#include "common/stopwatch.h"

#include <gtest/gtest.h>

namespace affinity {
namespace {

TEST(Stopwatch, ElapsedIsNonNegativeAndMonotonic) {
  Stopwatch w;
  const double t1 = w.ElapsedSeconds();
  const double t2 = w.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(Stopwatch, UnitsAreConsistent) {
  Stopwatch w;
  // Busy-wait a little so elapsed is strictly positive.
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  const double s = w.ElapsedSeconds();
  const double ms = w.ElapsedMillis();
  EXPECT_GT(s, 0.0);
  // Millis sampled after seconds, so ms/1000 >= s.
  EXPECT_GE(ms / 1000.0, s * 0.5);
}

TEST(Stopwatch, RestartResets) {
  Stopwatch w;
  volatile double sink = 0;
  for (int i = 0; i < 1000000; ++i) sink = sink + i;
  const double before = w.ElapsedSeconds();
  w.Restart();
  EXPECT_LT(w.ElapsedSeconds(), before + 1e-3);
}

TEST(TimeAccumulator, AccumulatesAndCounts) {
  TimeAccumulator acc;
  acc.Add(1.5);
  acc.Add(0.5);
  EXPECT_DOUBLE_EQ(acc.seconds(), 2.0);
  EXPECT_EQ(acc.count(), 2);
  acc.Reset();
  EXPECT_DOUBLE_EQ(acc.seconds(), 0.0);
  EXPECT_EQ(acc.count(), 0);
}

TEST(ScopedTimer, AddsOnDestruction) {
  TimeAccumulator acc;
  {
    ScopedTimer t(&acc);
    volatile double sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + i;
  }
  EXPECT_GT(acc.seconds(), 0.0);
  EXPECT_EQ(acc.count(), 1);
}

}  // namespace
}  // namespace affinity
