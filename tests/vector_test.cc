// Tests for la::Vector (la/vector.h).

#include "la/vector.h"

#include <cmath>

#include <gtest/gtest.h>

namespace affinity::la {
namespace {

TEST(Vector, DefaultIsEmpty) {
  Vector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
}

TEST(Vector, SizedConstructorZeroInitializes) {
  Vector v(4);
  EXPECT_EQ(v.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(v[i], 0.0);
}

TEST(Vector, FillConstructor) {
  Vector v(3, 2.5);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(v[i], 2.5);
}

TEST(Vector, InitializerList) {
  Vector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], 2.0);
}

TEST(Vector, AdoptsStorage) {
  Vector v(std::vector<double>{5.0, 6.0});
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 5.0);
}

TEST(Vector, ElementwiseArithmetic) {
  Vector a{1, 2, 3};
  Vector b{10, 20, 30};
  Vector sum = a + b;
  Vector diff = b - a;
  EXPECT_EQ(sum[2], 33.0);
  EXPECT_EQ(diff[0], 9.0);
  a += b;
  EXPECT_EQ(a[1], 22.0);
  a -= b;
  EXPECT_EQ(a[1], 2.0);
}

TEST(Vector, ScalarArithmetic) {
  Vector a{1, -2};
  Vector scaled = a * 3.0;
  EXPECT_EQ(scaled[0], 3.0);
  EXPECT_EQ(scaled[1], -6.0);
  Vector scaled2 = 2.0 * a;
  EXPECT_EQ(scaled2[1], -4.0);
  a *= -1.0;
  EXPECT_EQ(a[0], -1.0);
  a /= 2.0;
  EXPECT_EQ(a[0], -0.5);
}

TEST(Vector, DotAndNorm) {
  Vector a{3, 4};
  EXPECT_DOUBLE_EQ(a.Dot(a), 25.0);
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  Vector b{1, 0};
  EXPECT_DOUBLE_EQ(a.Dot(b), 3.0);
}

TEST(Vector, SumAndMean) {
  Vector a{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(a.Sum(), 10.0);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(Vector().Mean(), 0.0);
}

TEST(Vector, NormalizeMakesUnitNorm) {
  Vector a{3, 4};
  const double old_norm = a.Normalize();
  EXPECT_DOUBLE_EQ(old_norm, 5.0);
  EXPECT_NEAR(a.Norm(), 1.0, 1e-15);
  EXPECT_NEAR(a[0], 0.6, 1e-15);
}

TEST(Vector, NormalizeZeroVectorIsNoOp) {
  Vector a(3);
  EXPECT_DOUBLE_EQ(a.Normalize(), 0.0);
  EXPECT_EQ(a[0], 0.0);
}

TEST(Vector, CenteredCopyHasZeroMean) {
  Vector a{1, 2, 3, 10};
  Vector c = a.CenteredCopy();
  EXPECT_NEAR(c.Mean(), 0.0, 1e-15);
  EXPECT_DOUBLE_EQ(a.Mean(), 4.0);  // original untouched
}

TEST(Vector, MaxAbsDiff) {
  Vector a{1, 2, 3};
  Vector b{1, 5, 2};
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 3.0);
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(a), 0.0);
}

TEST(Vector, ToStringRendersElements) {
  Vector a{1, 2};
  EXPECT_EQ(a.ToString(), "[1, 2]");
}

TEST(Vector, IterationWorks) {
  Vector a{1, 2, 3};
  double sum = 0;
  for (double x : a) sum += x;
  EXPECT_DOUBLE_EQ(sum, 6.0);
}

TEST(VectorDeath, SizeMismatchAborts) {
  Vector a{1, 2};
  Vector b{1, 2, 3};
  EXPECT_DEATH({ a.Dot(b); }, "CHECK");
}

}  // namespace
}  // namespace affinity::la
