// Tests for the windowed streaming wrapper (core/streaming.h).

#include "core/streaming.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "ts/generators.h"

namespace affinity::core {
namespace {

std::vector<std::string> Names(std::size_t n) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back("s" + std::to_string(i));
  return out;
}

StreamingOptions SmallOptions() {
  StreamingOptions options;
  options.window = 40;
  options.rebuild_interval = 20;
  options.build.afclst.k = 2;
  options.build.build_dft = false;
  return options;
}

/// Feeds `rows` rows of a clustered dataset into the stream.
Status Feed(StreamingAffinity* stream, const ts::Dataset& ds, std::size_t begin,
            std::size_t end) {
  std::vector<double> row(ds.matrix.n());
  for (std::size_t i = begin; i < end; ++i) {
    for (std::size_t j = 0; j < ds.matrix.n(); ++j) row[j] = ds.matrix.matrix()(i, j);
    AFFINITY_RETURN_IF_ERROR(stream->Append(row).status);
  }
  return Status::OK();
}

ts::Dataset TestData() {
  ts::DatasetSpec spec;
  spec.num_series = 10;
  spec.num_samples = 200;
  spec.num_clusters = 2;
  spec.noise_level = 0.02;
  spec.seed = 12;
  return ts::MakeSensorData(spec);
}

TEST(Streaming, CreateValidatesOptions) {
  EXPECT_FALSE(StreamingAffinity::Create({"only-one"}, SmallOptions()).ok());
  StreamingOptions bad = SmallOptions();
  bad.window = 1;
  EXPECT_FALSE(StreamingAffinity::Create(Names(4), bad).ok());
  bad = SmallOptions();
  bad.rebuild_interval = 0;
  EXPECT_FALSE(StreamingAffinity::Create(Names(4), bad).ok());
  EXPECT_TRUE(StreamingAffinity::Create(Names(4), SmallOptions()).ok());
}

TEST(Streaming, NotReadyBeforeWindowFills) {
  auto stream = StreamingAffinity::Create(Names(10), SmallOptions());
  ASSERT_TRUE(stream.ok());
  const ts::Dataset ds = TestData();
  ASSERT_TRUE(Feed(&*stream, ds, 0, 39).ok());
  EXPECT_FALSE(stream->ready());
  EXPECT_EQ(stream->framework(), nullptr);
  EXPECT_EQ(stream->rows_ingested(), 39u);
  // Forced rebuild refuses too.
  EXPECT_EQ(stream->Rebuild().code(), StatusCode::kFailedPrecondition);
}

TEST(Streaming, FirstRebuildAtWindow) {
  auto stream = StreamingAffinity::Create(Names(10), SmallOptions());
  ASSERT_TRUE(stream.ok());
  const ts::Dataset ds = TestData();
  ASSERT_TRUE(Feed(&*stream, ds, 0, 40).ok());
  EXPECT_TRUE(stream->ready());
  EXPECT_EQ(stream->rebuild_count(), 1u);
  EXPECT_EQ(stream->snapshot_age(), 0u);
  EXPECT_EQ(stream->framework()->data().m(), 40u);
  EXPECT_EQ(stream->framework()->data().n(), 10u);
}

TEST(Streaming, RebuildsAtInterval) {
  auto stream = StreamingAffinity::Create(Names(10), SmallOptions());
  ASSERT_TRUE(stream.ok());
  const ts::Dataset ds = TestData();
  ASSERT_TRUE(Feed(&*stream, ds, 0, 100).ok());
  // Rebuilds at rows 40, 60, 80, 100.
  EXPECT_EQ(stream->rebuild_count(), 4u);
  EXPECT_EQ(stream->snapshot_age(), 0u);
  ASSERT_TRUE(Feed(&*stream, ds, 100, 110).ok());
  EXPECT_EQ(stream->rebuild_count(), 4u);
  EXPECT_EQ(stream->snapshot_age(), 10u);
}

TEST(Streaming, SnapshotSeesTrailingWindowOnly) {
  auto stream = StreamingAffinity::Create(Names(10), SmallOptions());
  ASSERT_TRUE(stream.ok());
  const ts::Dataset ds = TestData();
  ASSERT_TRUE(Feed(&*stream, ds, 0, 120).ok());
  // The snapshot's first row must be source row 120 − 40 = 80.
  const ts::DataMatrix& snap = stream->framework()->data();
  ASSERT_EQ(snap.m(), 40u);
  for (std::size_t j = 0; j < snap.n(); ++j) {
    EXPECT_DOUBLE_EQ(snap.matrix()(0, j), ds.matrix.matrix()(80, j));
    EXPECT_DOUBLE_EQ(snap.matrix()(39, j), ds.matrix.matrix()(119, j));
  }
}

TEST(Streaming, QueriesWorkOnSnapshot) {
  auto stream = StreamingAffinity::Create(Names(10), SmallOptions());
  ASSERT_TRUE(stream.ok());
  const ts::Dataset ds = TestData();
  ASSERT_TRUE(Feed(&*stream, ds, 0, 60).ok());
  ASSERT_TRUE(stream->ready());
  MetRequest request{Measure::kCorrelation, 0.9, true};
  auto result = stream->framework()->engine().Met(request, QueryMethod::kScape);
  ASSERT_TRUE(result.ok());
  // The clustered generator guarantees some highly correlated pairs.
  EXPECT_GT(result->pairs.size(), 0u);
}

TEST(Streaming, AppendValidatesRowWidth) {
  auto stream = StreamingAffinity::Create(Names(4), SmallOptions());
  ASSERT_TRUE(stream.ok());
  EXPECT_FALSE(stream->Append({1.0, 2.0}).ok());
  EXPECT_TRUE(stream->Append({1.0, 2.0, 3.0, 4.0}).ok());
}

TEST(Streaming, AppendResultDistinguishesRefreshFromNoRefresh) {
  auto stream = StreamingAffinity::Create(Names(10), SmallOptions());
  ASSERT_TRUE(stream.ok());
  const ts::Dataset ds = TestData();
  std::vector<double> row(ds.matrix.n());
  std::size_t refreshed = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t j = 0; j < ds.matrix.n(); ++j) row[j] = ds.matrix.matrix()(i, j);
    const AppendResult result = stream->Append(row);
    ASSERT_TRUE(result.ok());
    // Refreshes run at rows 40, 60, 80, 100 with window 40 / interval 20;
    // every other append reports OK *without* claiming a refresh ran.
    const bool expect_refresh = (i + 1) == 40 || ((i + 1) > 40 && (i + 1) % 20 == 0);
    EXPECT_EQ(result.refreshed, expect_refresh) << "row " << i + 1;
    if (result.refreshed) {
      EXPECT_EQ(result.mode, UpdateMode::kRebuild);
      ++refreshed;
    }
  }
  EXPECT_EQ(refreshed, 4u);
  EXPECT_EQ(stream->rebuild_count(), 4u);
}

TEST(Streaming, ResidentRowsStayBoundedAcross10kAppends) {
  StreamingOptions options = SmallOptions();
  options.window = 64;
  options.rebuild_interval = 32;
  auto stream = StreamingAffinity::Create(Names(4), options);
  ASSERT_TRUE(stream.ok());
  Xoshiro256 rng(3);
  std::vector<double> row(4);
  std::size_t max_resident = 0;
  for (int i = 0; i < 10000; ++i) {
    for (double& v : row) v = rng.Uniform(-1.0, 1.0);
    ASSERT_TRUE(stream->Append(row).ok());
    max_resident = std::max(max_resident, stream->table().retained_row_count());
  }
  EXPECT_EQ(stream->rows_ingested(), 10000u);
  // O(window) residency: the window plus at most two segments of slack
  // (compaction reclaims whole segments only).
  const std::size_t segment = 16;  // DeriveSegmentCapacity(window 64)
  EXPECT_LE(max_resident, options.window + 2 * segment);
  // The snapshot still sees the full trailing window.
  ASSERT_TRUE(stream->ready());
  EXPECT_EQ(stream->framework()->data().m(), options.window);
}

StreamingOptions IncrementalOptions_() {
  StreamingOptions options = SmallOptions();
  options.mode = UpdateMode::kIncremental;
  return options;
}

TEST(Streaming, IncrementalModeRefreshesWithoutFullRebuilds) {
  auto stream = StreamingAffinity::Create(Names(10), IncrementalOptions_());
  ASSERT_TRUE(stream.ok());
  const ts::Dataset ds = TestData();
  ASSERT_TRUE(Feed(&*stream, ds, 0, 100).ok());
  // Refreshes at rows 40 (first full build), 60, 80, 100 (incremental).
  EXPECT_EQ(stream->rebuild_count(), 1u);
  EXPECT_EQ(stream->refresh_count(), 3u);
  EXPECT_EQ(stream->snapshot_age(), 0u);
  EXPECT_EQ(stream->framework()->data().m(), 40u);
  // The snapshot window slid: its last row is source row 99.
  const ts::DataMatrix& snap = stream->framework()->data();
  for (std::size_t j = 0; j < snap.n(); ++j) {
    EXPECT_DOUBLE_EQ(snap.matrix()(39, j), ds.matrix.matrix()(99, j));
    EXPECT_DOUBLE_EQ(snap.matrix()(0, j), ds.matrix.matrix()(60, j));
  }
  // Accounting: every refresh absorbed the interval and re-keyed the index.
  const MaintenanceProfile& profile = stream->maintenance();
  EXPECT_EQ(profile.refreshes, 3u);
  EXPECT_EQ(profile.rows_absorbed, 60u);
  EXPECT_GT(profile.tree_rekeys, 0u);
  EXPECT_GT(profile.relationships_refit + profile.relationships_updated, 0u);
  // Queries work against the maintained snapshot.
  MetRequest request{Measure::kCorrelation, 0.9, true};
  auto result = stream->framework()->engine().Met(request, QueryMethod::kScape);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->pairs.size(), 0u);
}

TEST(Streaming, IncrementalEscalatesOnRegimeChange) {
  StreamingOptions options = IncrementalOptions_();
  options.incremental.escalation_factor = 1.25;
  options.incremental.escalation_slack = 0.01;
  auto stream = StreamingAffinity::Create(Names(10), options);
  ASSERT_TRUE(stream.ok());
  const ts::Dataset calm = TestData();
  ASSERT_TRUE(Feed(&*stream, calm, 0, 60).ok());
  ASSERT_EQ(stream->rebuild_count(), 1u);
  // Feed an unrelated regime (different seed and cluster structure): the
  // frozen clustering stops fitting and the drift monitor must escalate.
  ts::DatasetSpec spec;
  spec.num_series = 10;
  spec.num_samples = 200;
  spec.num_clusters = 5;
  spec.noise_level = 0.3;
  spec.seed = 99;
  const ts::Dataset shifted = ts::MakeSensorData(spec);
  ASSERT_TRUE(Feed(&*stream, shifted, 0, 200).ok());
  EXPECT_GT(stream->maintenance().escalations, 0u);
  EXPECT_GT(stream->rebuild_count(), 1u);
}

TEST(Streaming, RollingStatsTrackTheLiveWindow) {
  StreamingOptions options = SmallOptions();
  auto stream = StreamingAffinity::Create(Names(10), options);
  ASSERT_TRUE(stream.ok());
  const ts::Dataset ds = TestData();
  ASSERT_TRUE(Feed(&*stream, ds, 0, 55).ok());
  // The rolling stats cover rows 15..54 (window 40) even though the
  // snapshot was built at row 40 — the live freshness signal.
  ASSERT_EQ(stream->rolling_stats().size(), 10u);
  const ts::RollingStats& rs = stream->rolling_stats()[2];
  ASSERT_TRUE(rs.full());
  double expect = 0;
  for (std::size_t i = 15; i < 55; ++i) expect += ds.matrix.matrix()(i, 2);
  EXPECT_NEAR(rs.Sum(), expect, 1e-9);
}

TEST(Streaming, ForcedRebuildResetsAge) {
  auto stream = StreamingAffinity::Create(Names(10), SmallOptions());
  ASSERT_TRUE(stream.ok());
  const ts::Dataset ds = TestData();
  ASSERT_TRUE(Feed(&*stream, ds, 0, 50).ok());
  EXPECT_EQ(stream->snapshot_age(), 10u);
  ASSERT_TRUE(stream->Rebuild().ok());
  EXPECT_EQ(stream->snapshot_age(), 0u);
  EXPECT_EQ(stream->rebuild_count(), 2u);
}

// Every freshness query path must leave the caller's report in a defined
// state on *every* exit — error branches included (a stale report used to
// leak through Mer's lo > hi rejection and the not-ready precondition).
TEST(Streaming, FreshnessReportWrittenOnErrorBranches) {
  auto stream = StreamingAffinity::Create(Names(10), SmallOptions());
  ASSERT_TRUE(stream.ok());
  const FreshnessReport garbage{123456, true};

  // Not ready: every query kind fails but still zeroes the report.
  FreshnessReport report = garbage;
  EXPECT_EQ(stream->Met({Measure::kCorrelation, 0.5, true}, {}, &report).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(report.snapshot_age, 0u);
  EXPECT_FALSE(report.blended);
  report = garbage;
  EXPECT_EQ(stream->Mer({Measure::kCorrelation, 0.1, 0.9}, {}, &report).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(report.snapshot_age, 0u);
  EXPECT_FALSE(report.blended);
  report = garbage;
  EXPECT_EQ(stream->TopK({Measure::kCorrelation, 3, true}, {}, &report).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(report.snapshot_age, 0u);
  report = garbage;
  MecRequest mec{Measure::kMean, {0, 1}};
  EXPECT_EQ(stream->Mec(mec, {}, &report).status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(report.snapshot_age, 0u);

  // Ready, then an invalid request: the report still reflects the real
  // snapshot age instead of whatever the caller last held.
  const ts::Dataset ds = TestData();
  ASSERT_TRUE(Feed(&*stream, ds, 0, 45).ok());
  report = garbage;
  EXPECT_EQ(stream->Mer({Measure::kCorrelation, 0.9, 0.1}, {}, &report).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(report.snapshot_age, 5u);
  EXPECT_FALSE(report.blended);

  // And the success path reports the same age plus the blend verdict.
  report = garbage;
  FreshnessOptions tight;
  tight.max_staleness = 2;
  ASSERT_TRUE(stream->Met({Measure::kCorrelation, 0.5, true}, tight, &report).ok());
  EXPECT_EQ(report.snapshot_age, 5u);
  EXPECT_TRUE(report.blended);
}

}  // namespace
}  // namespace affinity::core
