// Tests for the windowed streaming wrapper (core/streaming.h).

#include "core/streaming.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "ts/generators.h"

namespace affinity::core {
namespace {

std::vector<std::string> Names(std::size_t n) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back("s" + std::to_string(i));
  return out;
}

StreamingOptions SmallOptions() {
  StreamingOptions options;
  options.window = 40;
  options.rebuild_interval = 20;
  options.build.afclst.k = 2;
  options.build.build_dft = false;
  return options;
}

/// Feeds `rows` rows of a clustered dataset into the stream.
Status Feed(StreamingAffinity* stream, const ts::Dataset& ds, std::size_t begin,
            std::size_t end) {
  std::vector<double> row(ds.matrix.n());
  for (std::size_t i = begin; i < end; ++i) {
    for (std::size_t j = 0; j < ds.matrix.n(); ++j) row[j] = ds.matrix.matrix()(i, j);
    AFFINITY_RETURN_IF_ERROR(stream->Append(row));
  }
  return Status::OK();
}

ts::Dataset TestData() {
  ts::DatasetSpec spec;
  spec.num_series = 10;
  spec.num_samples = 200;
  spec.num_clusters = 2;
  spec.noise_level = 0.02;
  spec.seed = 12;
  return ts::MakeSensorData(spec);
}

TEST(Streaming, CreateValidatesOptions) {
  EXPECT_FALSE(StreamingAffinity::Create({"only-one"}, SmallOptions()).ok());
  StreamingOptions bad = SmallOptions();
  bad.window = 1;
  EXPECT_FALSE(StreamingAffinity::Create(Names(4), bad).ok());
  bad = SmallOptions();
  bad.rebuild_interval = 0;
  EXPECT_FALSE(StreamingAffinity::Create(Names(4), bad).ok());
  EXPECT_TRUE(StreamingAffinity::Create(Names(4), SmallOptions()).ok());
}

TEST(Streaming, NotReadyBeforeWindowFills) {
  auto stream = StreamingAffinity::Create(Names(10), SmallOptions());
  ASSERT_TRUE(stream.ok());
  const ts::Dataset ds = TestData();
  ASSERT_TRUE(Feed(&*stream, ds, 0, 39).ok());
  EXPECT_FALSE(stream->ready());
  EXPECT_EQ(stream->framework(), nullptr);
  EXPECT_EQ(stream->rows_ingested(), 39u);
  // Forced rebuild refuses too.
  EXPECT_EQ(stream->Rebuild().code(), StatusCode::kFailedPrecondition);
}

TEST(Streaming, FirstRebuildAtWindow) {
  auto stream = StreamingAffinity::Create(Names(10), SmallOptions());
  ASSERT_TRUE(stream.ok());
  const ts::Dataset ds = TestData();
  ASSERT_TRUE(Feed(&*stream, ds, 0, 40).ok());
  EXPECT_TRUE(stream->ready());
  EXPECT_EQ(stream->rebuild_count(), 1u);
  EXPECT_EQ(stream->snapshot_age(), 0u);
  EXPECT_EQ(stream->framework()->data().m(), 40u);
  EXPECT_EQ(stream->framework()->data().n(), 10u);
}

TEST(Streaming, RebuildsAtInterval) {
  auto stream = StreamingAffinity::Create(Names(10), SmallOptions());
  ASSERT_TRUE(stream.ok());
  const ts::Dataset ds = TestData();
  ASSERT_TRUE(Feed(&*stream, ds, 0, 100).ok());
  // Rebuilds at rows 40, 60, 80, 100.
  EXPECT_EQ(stream->rebuild_count(), 4u);
  EXPECT_EQ(stream->snapshot_age(), 0u);
  ASSERT_TRUE(Feed(&*stream, ds, 100, 110).ok());
  EXPECT_EQ(stream->rebuild_count(), 4u);
  EXPECT_EQ(stream->snapshot_age(), 10u);
}

TEST(Streaming, SnapshotSeesTrailingWindowOnly) {
  auto stream = StreamingAffinity::Create(Names(10), SmallOptions());
  ASSERT_TRUE(stream.ok());
  const ts::Dataset ds = TestData();
  ASSERT_TRUE(Feed(&*stream, ds, 0, 120).ok());
  // The snapshot's first row must be source row 120 − 40 = 80.
  const ts::DataMatrix& snap = stream->framework()->data();
  ASSERT_EQ(snap.m(), 40u);
  for (std::size_t j = 0; j < snap.n(); ++j) {
    EXPECT_DOUBLE_EQ(snap.matrix()(0, j), ds.matrix.matrix()(80, j));
    EXPECT_DOUBLE_EQ(snap.matrix()(39, j), ds.matrix.matrix()(119, j));
  }
}

TEST(Streaming, QueriesWorkOnSnapshot) {
  auto stream = StreamingAffinity::Create(Names(10), SmallOptions());
  ASSERT_TRUE(stream.ok());
  const ts::Dataset ds = TestData();
  ASSERT_TRUE(Feed(&*stream, ds, 0, 60).ok());
  ASSERT_TRUE(stream->ready());
  MetRequest request{Measure::kCorrelation, 0.9, true};
  auto result = stream->framework()->engine().Met(request, QueryMethod::kScape);
  ASSERT_TRUE(result.ok());
  // The clustered generator guarantees some highly correlated pairs.
  EXPECT_GT(result->pairs.size(), 0u);
}

TEST(Streaming, AppendValidatesRowWidth) {
  auto stream = StreamingAffinity::Create(Names(4), SmallOptions());
  ASSERT_TRUE(stream.ok());
  EXPECT_FALSE(stream->Append({1.0, 2.0}).ok());
  EXPECT_TRUE(stream->Append({1.0, 2.0, 3.0, 4.0}).ok());
}

TEST(Streaming, ForcedRebuildResetsAge) {
  auto stream = StreamingAffinity::Create(Names(10), SmallOptions());
  ASSERT_TRUE(stream.ok());
  const ts::Dataset ds = TestData();
  ASSERT_TRUE(Feed(&*stream, ds, 0, 50).ok());
  EXPECT_EQ(stream->snapshot_age(), 10u);
  ASSERT_TRUE(stream->Rebuild().ok());
  EXPECT_EQ(stream->snapshot_age(), 0u);
  EXPECT_EQ(stream->rebuild_count(), 2u);
}

}  // namespace
}  // namespace affinity::core
