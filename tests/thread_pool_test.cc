// Tests for the shared execution subsystem (common/thread_pool.h,
// common/exec_context.h): chunk-decomposition determinism, edge cases
// (zero items, fewer items than threads), exception propagation, and the
// sequential fallback.

#include "common/thread_pool.h"

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/exec_context.h"

namespace affinity {
namespace {

TEST(ThreadPool, SizeIsRequestedCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, SizeZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForZeroItemsNeverInvokesBody) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](std::size_t, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, FewerItemsThanThreadsCoversEachItemOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, LargeCountCoversEachItemExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 10007;  // prime: exercises uneven chunks
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ChunkDecompositionIsIndependentOfThreadCount) {
  // The determinism contract: (chunk, begin, end) triples are a function
  // of the item count alone.
  const auto collect = [](std::size_t workers, std::size_t count) {
    std::set<std::tuple<std::size_t, std::size_t, std::size_t>> chunks;
    std::mutex mutex;
    ThreadPool pool(workers);
    pool.ParallelFor(count, [&](std::size_t c, std::size_t b, std::size_t e) {
      std::lock_guard<std::mutex> lock(mutex);
      chunks.emplace(c, b, e);
    });
    return chunks;
  };
  for (const std::size_t count : {1u, 7u, 128u, 1000u}) {
    const auto one = collect(1, count);
    const auto four = collect(4, count);
    EXPECT_EQ(one, four) << "count=" << count;
    EXPECT_EQ(one.size(), ThreadPool::NumChunks(count));
  }
}

TEST(ThreadPool, SequentialForMatchesParallelDecomposition) {
  std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> seq;
  ThreadPool::SequentialFor(100, [&](std::size_t c, std::size_t b, std::size_t e) {
    seq.emplace_back(c, b, e);
  });
  ASSERT_EQ(seq.size(), ThreadPool::NumChunks(100));
  // Chunks are emitted in order and partition [0, 100).
  std::size_t expected_begin = 0;
  for (std::size_t c = 0; c < seq.size(); ++c) {
    EXPECT_EQ(std::get<0>(seq[c]), c);
    EXPECT_EQ(std::get<1>(seq[c]), expected_begin);
    EXPECT_GT(std::get<2>(seq[c]), std::get<1>(seq[c]));
    expected_begin = std::get<2>(seq[c]);
  }
  EXPECT_EQ(expected_begin, 100u);
}

TEST(ThreadPool, ExceptionPropagatesFromLowestFailingChunk) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 64;  // 64 chunks of one item each
  try {
    pool.ParallelFor(kCount, [&](std::size_t chunk, std::size_t, std::size_t) {
      if (chunk >= 5) throw std::runtime_error("chunk " + std::to_string(chunk));
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 5");
  }
}

TEST(ThreadPool, AllChunksStillRunWhenOneThrows) {
  ThreadPool pool(2);
  constexpr std::size_t kCount = 32;
  std::vector<std::atomic<int>> hits(kCount);
  EXPECT_THROW(pool.ParallelFor(kCount,
                                [&](std::size_t, std::size_t begin, std::size_t end) {
                                  for (std::size_t i = begin; i < end; ++i) ++hits[i];
                                  if (begin == 0) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> inner_items{0};
  pool.ParallelFor(4, [&](std::size_t, std::size_t, std::size_t) {
    pool.ParallelFor(8, [&](std::size_t, std::size_t begin, std::size_t end) {
      inner_items += static_cast<int>(end - begin);
    });
  });
  EXPECT_EQ(inner_items.load(), 4 * 8);
}

TEST(ThreadPool, ScheduleRunsTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.Schedule([&] { ++ran; });
    }
    // Destructor drains the queue.
  }
  EXPECT_EQ(ran.load(), 10);
}

TEST(ExecContext, DefaultIsSequential) {
  ExecContext exec;
  EXPECT_EQ(exec.pool, nullptr);
  EXPECT_EQ(exec.threads(), 1u);
  std::vector<int> hits(17, 0);
  ParallelChunks(exec, hits.size(), [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ExecContext, ReportsPoolThreads) {
  ThreadPool pool(3);
  ExecContext exec{&pool};
  EXPECT_EQ(exec.threads(), 3u);
}

TEST(ExecContext, NumChunksMatchesPoolPolicy) {
  EXPECT_EQ(ExecNumChunks(0), ThreadPool::NumChunks(0));
  EXPECT_EQ(ExecNumChunks(5), 5u);
  EXPECT_EQ(ExecNumChunks(1 << 20), ThreadPool::NumChunks(1 << 20));
}

}  // namespace
}  // namespace affinity
