// Tests for la::Matrix (la/matrix.h), including algebraic property sweeps.

#include "la/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace affinity::la {
namespace {

Matrix RandomMatrix(std::size_t r, std::size_t c, Xoshiro256* rng) {
  Matrix m(r, c);
  for (std::size_t j = 0; j < c; ++j) {
    for (std::size_t i = 0; i < r; ++i) m(i, j) = rng->Uniform(-2.0, 2.0);
  }
  return m;
}

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, FromRowsLaysOutCorrectly) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 2), 3.0);
  EXPECT_EQ(m(1, 1), 5.0);
}

TEST(Matrix, FromColumnsConcatenates) {
  Matrix m = Matrix::FromColumns({Vector{1, 2}, Vector{3, 4}});
  EXPECT_EQ(m(0, 1), 3.0);
  EXPECT_EQ(m(1, 0), 2.0);
}

TEST(Matrix, IdentityIsIdentity) {
  Matrix id = Matrix::Identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(id(i, j), i == j ? 1.0 : 0.0);
  }
}

TEST(Matrix, ColumnMajorStorage) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  const double* col0 = m.ColData(0);
  EXPECT_EQ(col0[0], 1.0);
  EXPECT_EQ(col0[1], 3.0);
}

TEST(Matrix, ColAndSetCol) {
  Matrix m(2, 2);
  m.SetCol(1, Vector{7, 8});
  const Vector c = m.Col(1);
  EXPECT_EQ(c[0], 7.0);
  EXPECT_EQ(c[1], 8.0);
}

TEST(Matrix, MultiplyKnownValues) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = a.Multiply(b);
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyByIdentityIsNoOp) {
  Xoshiro256 rng(1);
  Matrix a = RandomMatrix(4, 4, &rng);
  EXPECT_NEAR(a.Multiply(Matrix::Identity(4)).MaxAbsDiff(a), 0.0, 1e-14);
  EXPECT_NEAR(Matrix::Identity(4).Multiply(a).MaxAbsDiff(a), 0.0, 1e-14);
}

TEST(Matrix, MultiplyVector) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Vector x{1, 1};
  Vector y = a.Multiply(x);
  EXPECT_EQ(y[0], 3.0);
  EXPECT_EQ(y[1], 7.0);
}

TEST(Matrix, TransposeMultiplyMatchesExplicitTranspose) {
  Xoshiro256 rng(2);
  Matrix a = RandomMatrix(5, 3, &rng);
  Vector v = Vector{1, -1, 2, 0.5, -0.25};
  const Vector fast = a.TransposeMultiply(v);
  const Vector slow = a.Transpose().Multiply(v);
  EXPECT_NEAR(fast.MaxAbsDiff(slow), 0.0, 1e-13);
}

TEST(Matrix, GramMatchesExplicitProduct) {
  Xoshiro256 rng(3);
  Matrix a = RandomMatrix(6, 3, &rng);
  const Matrix gram = a.Gram();
  const Matrix slow = a.Transpose().Multiply(a);
  EXPECT_NEAR(gram.MaxAbsDiff(slow), 0.0, 1e-12);
  // Gram is symmetric.
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(gram(i, j), gram(j, i));
  }
}

TEST(Matrix, TransposeIsInvolution) {
  Xoshiro256 rng(4);
  Matrix a = RandomMatrix(3, 5, &rng);
  EXPECT_NEAR(a.Transpose().Transpose().MaxAbsDiff(a), 0.0, 0.0);
}

TEST(Matrix, AdditionAndSubtraction) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{4, 3}, {2, 1}});
  const Matrix sum = a + b;
  EXPECT_EQ(sum(0, 0), 5.0);
  EXPECT_EQ(sum(1, 1), 5.0);
  const Matrix diff = sum - b;
  EXPECT_NEAR(diff.MaxAbsDiff(a), 0.0, 0.0);
}

TEST(Matrix, ScalarMultiply) {
  Matrix a = Matrix::FromRows({{1, -2}});
  const Matrix s = a * -2.0;
  EXPECT_EQ(s(0, 0), -2.0);
  EXPECT_EQ(s(0, 1), 4.0);
}

TEST(Matrix, ConcatColumns) {
  Matrix a = Matrix::FromRows({{1}, {2}});
  Matrix b = Matrix::FromRows({{3, 4}, {5, 6}});
  const Matrix c = a.ConcatColumns(b);
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_EQ(c(0, 0), 1.0);
  EXPECT_EQ(c(0, 1), 3.0);
  EXPECT_EQ(c(1, 2), 6.0);
}

TEST(Matrix, CenteredColumnsHaveZeroMean) {
  Xoshiro256 rng(5);
  Matrix a = RandomMatrix(10, 3, &rng);
  const Matrix c = a.CenteredColumnsCopy();
  for (std::size_t j = 0; j < 3; ++j) {
    double mean = 0;
    for (std::size_t i = 0; i < 10; ++i) mean += c(i, j);
    EXPECT_NEAR(mean / 10.0, 0.0, 1e-14);
  }
}

TEST(Matrix, FrobeniusNormKnownValue) {
  Matrix a = Matrix::FromRows({{3, 0}, {0, 4}});
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), 5.0);
}

TEST(MatrixProperty, MultiplicationIsAssociative) {
  Xoshiro256 rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix a = RandomMatrix(3, 4, &rng);
    Matrix b = RandomMatrix(4, 2, &rng);
    Matrix c = RandomMatrix(2, 5, &rng);
    const Matrix left = a.Multiply(b).Multiply(c);
    const Matrix right = a.Multiply(b.Multiply(c));
    EXPECT_NEAR(left.MaxAbsDiff(right), 0.0, 1e-12);
  }
}

TEST(MatrixProperty, DistributesOverAddition) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix a = RandomMatrix(3, 3, &rng);
    Matrix b = RandomMatrix(3, 3, &rng);
    Matrix c = RandomMatrix(3, 3, &rng);
    const Matrix left = a.Multiply(b + c);
    const Matrix right = a.Multiply(b) + a.Multiply(c);
    EXPECT_NEAR(left.MaxAbsDiff(right), 0.0, 1e-12);
  }
}

TEST(MatrixProperty, TransposeReversesProduct) {
  Xoshiro256 rng(8);
  Matrix a = RandomMatrix(3, 4, &rng);
  Matrix b = RandomMatrix(4, 2, &rng);
  const Matrix left = a.Multiply(b).Transpose();
  const Matrix right = b.Transpose().Multiply(a.Transpose());
  EXPECT_NEAR(left.MaxAbsDiff(right), 0.0, 1e-12);
}

TEST(MatrixDeath, DimensionMismatchAborts) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_DEATH({ a.Multiply(b); }, "CHECK");
}

}  // namespace
}  // namespace affinity::la
