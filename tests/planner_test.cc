// Tests for the cost-based query planner (core/planner.h).

#include "core/planner.h"

#include <gtest/gtest.h>

namespace affinity::core {
namespace {

QueryPlanner FullPlanner() {
  return QueryPlanner(670, 720, {.has_model = true, .has_scape = true, .has_dft = true});
}

QueryPlanner BarePlanner() {
  return QueryPlanner(670, 720, {.has_model = false, .has_scape = false, .has_dft = false});
}

TEST(Planner, MecPrefersAffineWhenModelExists) {
  const PlanChoice c = FullPlanner().PlanMec(Measure::kCovariance, 10);
  EXPECT_EQ(c.method, QueryMethod::kAffine);
  EXPECT_GT(c.estimated_cost, 0.0);
}

TEST(Planner, MecFallsBackToNaive) {
  const PlanChoice c = BarePlanner().PlanMec(Measure::kCovariance, 10);
  EXPECT_EQ(c.method, QueryMethod::kNaive);
}

TEST(Planner, MetPrefersScapeForIndexableMeasures) {
  for (Measure m : {Measure::kMean, Measure::kMedian, Measure::kMode, Measure::kCovariance,
                    Measure::kDotProduct, Measure::kCorrelation, Measure::kCosine}) {
    EXPECT_EQ(FullPlanner().PlanMet(m).method, QueryMethod::kScape) << MeasureName(m);
  }
}

TEST(Planner, MetUsesAffineForNonIndexableDerivedMeasures) {
  for (Measure m : {Measure::kJaccard, Measure::kDice}) {
    const PlanChoice c = FullPlanner().PlanMet(m);
    EXPECT_EQ(c.method, QueryMethod::kAffine) << MeasureName(m);
    EXPECT_NE(c.rationale.find("not SCAPE-indexable"), std::string::npos);
  }
}

TEST(Planner, MetWithoutIndexUsesAffine) {
  QueryPlanner p(670, 720, {.has_model = true, .has_scape = false, .has_dft = false});
  EXPECT_EQ(p.PlanMet(Measure::kCovariance).method, QueryMethod::kAffine);
}

TEST(Planner, MetWithNothingUsesNaive) {
  EXPECT_EQ(BarePlanner().PlanMet(Measure::kCovariance).method, QueryMethod::kNaive);
}

TEST(Planner, MerMirrorsMet) {
  EXPECT_EQ(FullPlanner().PlanMer(Measure::kCorrelation).method, QueryMethod::kScape);
  EXPECT_EQ(FullPlanner().PlanMer(Measure::kJaccard).method, QueryMethod::kAffine);
}

TEST(Planner, TopKPrefersScape) {
  const PlanChoice c = FullPlanner().PlanTopK(Measure::kCorrelation, 10);
  EXPECT_EQ(c.method, QueryMethod::kScape);
  EXPECT_NE(c.rationale.find("top-k"), std::string::npos);
}

TEST(Planner, CostsOrderStrategiesSensibly) {
  // With everything built, the index plan for a selective query must be
  // cheaper than the WA full sweep, which must be cheaper than WN.
  QueryPlanner full = FullPlanner();
  QueryPlanner model_only(670, 720, {.has_model = true, .has_scape = false, .has_dft = false});
  QueryPlanner bare = BarePlanner();
  const double scape_cost = full.PlanMet(Measure::kCovariance, 0.01).estimated_cost;
  const double wa_cost = model_only.PlanMet(Measure::kCovariance, 0.01).estimated_cost;
  const double wn_cost = bare.PlanMet(Measure::kCovariance, 0.01).estimated_cost;
  EXPECT_LT(scape_cost, wa_cost);
  EXPECT_LT(wa_cost, wn_cost);
}

TEST(Planner, SelectivityScalesIndexCost) {
  QueryPlanner p = FullPlanner();
  const double cheap = p.PlanMet(Measure::kCovariance, 0.001).estimated_cost;
  const double pricey = p.PlanMet(Measure::kCovariance, 0.9).estimated_cost;
  EXPECT_LT(cheap, pricey);
}

TEST(Planner, NaiveUnitCostsReflectKernelComplexity) {
  QueryPlanner p = BarePlanner();
  // Mode is quadratic, everything else linear-ish in m.
  EXPECT_GT(p.NaiveUnitCost(Measure::kMode), 100.0 * p.NaiveUnitCost(Measure::kMedian));
  EXPECT_LT(p.NaiveUnitCost(Measure::kDotProduct), p.NaiveUnitCost(Measure::kCovariance));
  EXPECT_LT(p.NaiveUnitCost(Measure::kCovariance), p.NaiveUnitCost(Measure::kCorrelation));
}

TEST(Planner, LocationQueriesCostFewerEntities) {
  QueryPlanner bare = BarePlanner();
  const double loc = bare.PlanMet(Measure::kMean).estimated_cost;
  const double pair = bare.PlanMet(Measure::kDotProduct).estimated_cost;
  EXPECT_LT(loc, pair);  // n entities vs n(n−1)/2
}

TEST(Planner, RationaleIsAlwaysPresent) {
  for (Measure m : AllMeasures()) {
    EXPECT_FALSE(FullPlanner().PlanMet(m).rationale.empty()) << MeasureName(m);
    EXPECT_FALSE(BarePlanner().PlanMet(m).rationale.empty()) << MeasureName(m);
  }
}

TEST(Planner, ShardTopologyChargesCrossPairSweep) {
  QueryPlanner::Capabilities caps;
  caps.has_model = true;
  caps.has_scape = true;
  // 4 shards of 4 series over m=64; 96 of the 120 global pairs cross.
  const QueryPlanner flat(4, 64, caps);
  const QueryPlanner sharded(4, 64, caps, QueryPlanner::Topology{4, 96});

  const PlanChoice a = flat.PlanMet(Measure::kCovariance);
  const PlanChoice b = sharded.PlanMet(Measure::kCovariance);
  // Same per-shard strategy, plus exactly the cross-shard WN surcharge.
  EXPECT_EQ(b.method, a.method);
  EXPECT_NEAR(b.estimated_cost - a.estimated_cost,
              96.0 * sharded.NaiveUnitCost(Measure::kCovariance), 1e-9);
  EXPECT_NE(b.rationale.find("scatter-gather over 4 shards"), std::string::npos);
  EXPECT_NE(b.rationale.find("96 cross-shard pairs"), std::string::npos);

  // L-measures never span shards: no surcharge, unchanged rationale.
  const PlanChoice l = sharded.PlanMet(Measure::kMean);
  EXPECT_EQ(l.estimated_cost, flat.PlanMet(Measure::kMean).estimated_cost);
  EXPECT_EQ(l.rationale.find("scatter-gather"), std::string::npos);

  // The default topology is the unsharded identity.
  const QueryPlanner one(4, 64, caps, QueryPlanner::Topology{1, 0});
  EXPECT_EQ(one.PlanTopK(Measure::kCorrelation, 5).rationale,
            flat.PlanTopK(Measure::kCorrelation, 5).rationale);
}

}  // namespace
}  // namespace affinity::core
