// Tests for the FFT substrate (dft/fft.h).

#include "dft/fft.h"

#include <cmath>
#include <complex>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace affinity::dft {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// O(n²) reference DFT.
std::vector<Complex> NaiveDft(const std::vector<Complex>& x, bool inverse) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n, Complex(0, 0));
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const double angle = sign * 2.0 * kPi * static_cast<double>(k * i) / static_cast<double>(n);
      out[k] += x[i] * Complex(std::cos(angle), std::sin(angle));
    }
    if (inverse) out[k] /= static_cast<double>(n);
  }
  return out;
}

double MaxDiff(const std::vector<Complex>& a, const std::vector<Complex>& b) {
  double worst = 0;
  for (std::size_t i = 0; i < a.size(); ++i) worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

std::vector<Complex> RandomSignal(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.Uniform(-1, 1), rng.Uniform(-1, 1));
  return x;
}

TEST(Helpers, PowerOfTwoDetection) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(720));
}

TEST(Helpers, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(720), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1950), 2048u);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> x(6);
  EXPECT_FALSE(Fft(&x, false).ok());
}

TEST(Fft, ImpulseHasFlatSpectrum) {
  std::vector<Complex> x(8, Complex(0, 0));
  x[0] = Complex(1, 0);
  ASSERT_TRUE(Fft(&x, false).ok());
  for (const auto& v : x) EXPECT_NEAR(std::abs(v - Complex(1, 0)), 0.0, 1e-12);
}

TEST(Fft, ConstantHasDcOnly) {
  std::vector<Complex> x(8, Complex(2, 0));
  ASSERT_TRUE(Fft(&x, false).ok());
  EXPECT_NEAR(std::abs(x[0] - Complex(16, 0)), 0.0, 1e-12);
  for (std::size_t k = 1; k < 8; ++k) EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-12);
}

TEST(Fft, MatchesNaiveDft) {
  const auto x = RandomSignal(32, 1);
  auto fast = x;
  ASSERT_TRUE(Fft(&fast, false).ok());
  EXPECT_NEAR(MaxDiff(fast, NaiveDft(x, false)), 0.0, 1e-10);
}

TEST(Fft, InverseRoundTrip) {
  const auto x = RandomSignal(64, 2);
  auto y = x;
  ASSERT_TRUE(Fft(&y, false).ok());
  ASSERT_TRUE(Fft(&y, true).ok());
  EXPECT_NEAR(MaxDiff(y, x), 0.0, 1e-12);
}

TEST(Bluestein, PowerOfTwoDelegates) {
  const auto x = RandomSignal(16, 3);
  auto a = x, b = x;
  ASSERT_TRUE(Fft(&a, false).ok());
  ASSERT_TRUE(BluesteinDft(&b, false).ok());
  EXPECT_NEAR(MaxDiff(a, b), 0.0, 1e-12);
}

TEST(Bluestein, RejectsEmpty) {
  std::vector<Complex> x;
  EXPECT_FALSE(BluesteinDft(&x, false).ok());
}

TEST(Bluestein, InverseRoundTripArbitraryLength) {
  const auto x = RandomSignal(45, 4);
  auto y = x;
  ASSERT_TRUE(BluesteinDft(&y, false).ok());
  ASSERT_TRUE(BluesteinDft(&y, true).ok());
  EXPECT_NEAR(MaxDiff(y, x), 0.0, 1e-10);
}

TEST(RealDftFn, SingleSinusoidConcentrates) {
  // x_i = cos(2π·3·i/n): spectrum peaks at k=3 and k=n−3 with value n/2.
  const std::size_t n = 30;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::cos(2.0 * kPi * 3.0 * static_cast<double>(i) / static_cast<double>(n));
  }
  auto spec = RealDft(x.data(), n);
  ASSERT_TRUE(spec.ok());
  EXPECT_NEAR(std::abs((*spec)[3]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs((*spec)[n - 3]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs((*spec)[1]), 0.0, 1e-9);
}

TEST(RealDftFn, ConjugateSymmetry) {
  Xoshiro256 rng(5);
  std::vector<double> x(25);
  for (auto& v : x) v = rng.Gaussian();
  auto spec = RealDft(x.data(), 25);
  ASSERT_TRUE(spec.ok());
  for (std::size_t k = 1; k < 25; ++k) {
    EXPECT_NEAR(std::abs((*spec)[k] - std::conj((*spec)[25 - k])), 0.0, 1e-9);
  }
}

TEST(RealDftFn, ParsevalHolds) {
  Xoshiro256 rng(6);
  std::vector<double> x(50);
  double time_energy = 0;
  for (auto& v : x) {
    v = rng.Gaussian();
    time_energy += v * v;
  }
  auto spec = RealDft(x.data(), 50);
  ASSERT_TRUE(spec.ok());
  double freq_energy = 0;
  for (const auto& c : *spec) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / 50.0, time_energy, 1e-8);
}

// Property sweep: Bluestein matches the naive DFT on awkward lengths,
// including the paper's series lengths 720 and 1950.
class BluesteinVsNaive : public ::testing::TestWithParam<int> {};

TEST_P(BluesteinVsNaive, Agree) {
  const auto n = static_cast<std::size_t>(GetParam());
  const auto x = RandomSignal(n, 40 + n);
  auto fast = x;
  ASSERT_TRUE(BluesteinDft(&fast, false).ok());
  EXPECT_NEAR(MaxDiff(fast, NaiveDft(x, false)), 0.0, 1e-7 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Lengths, BluesteinVsNaive,
                         ::testing::Values(2, 3, 5, 7, 12, 45, 100, 243, 720));

}  // namespace
}  // namespace affinity::dft
