// Randomized cross-strategy consistency suite: over several seeds and both
// dataset families, every strategy must agree with every other wherever
// the design says they must. These are the repository's fuzz-adjacent
// invariant checks — cheap datasets, many random probes.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/framework.h"
#include "ts/generators.h"

namespace affinity::core {
namespace {

struct Scenario {
  std::uint64_t seed;
  bool stock;
};

class RandomizedConsistency : public ::testing::TestWithParam<Scenario> {
 protected:
  Affinity BuildFramework() {
    ts::DatasetSpec spec;
    spec.num_series = 26;
    spec.num_samples = 70;
    spec.num_clusters = 3;
    spec.noise_level = 0.05;  // noisier than other tests on purpose
    spec.seed = GetParam().seed;
    const ts::Dataset ds =
        GetParam().stock ? ts::MakeStockData(spec) : ts::MakeSensorData(spec);
    auto fw = Affinity::Build(ds.matrix);
    EXPECT_TRUE(fw.ok());
    return std::move(fw).value();
  }
};

TEST_P(RandomizedConsistency, ScapeEqualsWaOnRandomThresholds) {
  const Affinity fw = BuildFramework();
  Xoshiro256 rng(GetParam().seed * 7 + 1);
  const std::vector<Measure> measures = {Measure::kMean,        Measure::kMedian,
                                         Measure::kMode,        Measure::kCovariance,
                                         Measure::kDotProduct,  Measure::kCorrelation,
                                         Measure::kCosine};
  for (int probe = 0; probe < 30; ++probe) {
    const Measure measure = measures[rng.NextBounded(measures.size())];
    // Draw tau from the value distribution so results are non-trivial, then
    // nudge it off the exact stored value: thresholds are cut points, and
    // ulp-level ties are unspecified for a key-transformed index (see
    // scape.h "Boundary semantics").
    double tau;
    if (IsLocation(measure)) {
      const auto v = static_cast<ts::SeriesId>(rng.NextBounded(fw.data().n()));
      tau = *fw.model().SeriesMeasure(measure, v);
    } else {
      const auto u = static_cast<ts::SeriesId>(rng.NextBounded(fw.data().n()));
      auto v = static_cast<ts::SeriesId>(rng.NextBounded(fw.data().n()));
      if (u == v) v = (v + 1) % static_cast<ts::SeriesId>(fw.data().n());
      tau = *fw.model().PairMeasure(measure, ts::SequencePair(u, v));
    }
    tau += rng.Uniform(1e-7, 1e-6) * (1.0 + std::fabs(tau)) * (rng.NextDouble() < 0.5 ? -1 : 1);
    const bool greater = rng.NextDouble() < 0.5;
    MetRequest request{measure, tau, greater};
    auto scape = fw.engine().Met(request, QueryMethod::kScape);
    auto wa = fw.engine().Met(request, QueryMethod::kAffine);
    ASSERT_TRUE(scape.ok());
    ASSERT_TRUE(wa.ok());
    auto sp = scape->pairs, wp = wa->pairs;
    auto ss = scape->series, ws = wa->series;
    std::sort(sp.begin(), sp.end());
    std::sort(wp.begin(), wp.end());
    std::sort(ss.begin(), ss.end());
    std::sort(ws.begin(), ws.end());
    EXPECT_EQ(sp, wp) << MeasureName(measure) << " tau=" << tau << " greater=" << greater;
    EXPECT_EQ(ss, ws) << MeasureName(measure) << " tau=" << tau << " greater=" << greater;
  }
}

TEST_P(RandomizedConsistency, MetPartitionsThePopulation) {
  // For any tau: |{> tau}| + |{< tau}| + |{== tau}| == population, and the
  // two SCAPE scans never overlap.
  const Affinity fw = BuildFramework();
  Xoshiro256 rng(GetParam().seed * 11 + 3);
  for (int probe = 0; probe < 10; ++probe) {
    const double tau = rng.Uniform(-1.0, 1.0);
    MetRequest gt{Measure::kCorrelation, tau, true};
    MetRequest lt{Measure::kCorrelation, tau, false};
    auto above = fw.engine().Met(gt, QueryMethod::kScape);
    auto below = fw.engine().Met(lt, QueryMethod::kScape);
    ASSERT_TRUE(above.ok());
    ASSERT_TRUE(below.ok());
    EXPECT_LE(above->pairs.size() + below->pairs.size(),
              ts::SequencePairCount(fw.data().n()));
    std::vector<ts::SequencePair> a = above->pairs, b = below->pairs;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::vector<ts::SequencePair> overlap;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(overlap));
    EXPECT_TRUE(overlap.empty());
  }
}

TEST_P(RandomizedConsistency, MerEqualsMetIntersection) {
  const Affinity fw = BuildFramework();
  Xoshiro256 rng(GetParam().seed * 13 + 5);
  for (int probe = 0; probe < 8; ++probe) {
    double lo = rng.Uniform(-1.0, 1.0);
    double hi = rng.Uniform(-1.0, 1.0);
    if (lo > hi) std::swap(lo, hi);
    MerRequest range{Measure::kCorrelation, lo, hi};
    auto mer = fw.engine().Mer(range, QueryMethod::kScape);
    auto above = fw.engine().Met({Measure::kCorrelation, lo, true}, QueryMethod::kScape);
    auto below = fw.engine().Met({Measure::kCorrelation, hi, false}, QueryMethod::kScape);
    ASSERT_TRUE(mer.ok());
    ASSERT_TRUE(above.ok());
    ASSERT_TRUE(below.ok());
    std::vector<ts::SequencePair> a = above->pairs, b = below->pairs, expected;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expected));
    std::vector<ts::SequencePair> got = mer->pairs;
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "range (" << lo << "," << hi << ")";
  }
}

TEST_P(RandomizedConsistency, TopKEqualsSortedSweep) {
  const Affinity fw = BuildFramework();
  Xoshiro256 rng(GetParam().seed * 17 + 7);
  for (const Measure measure :
       {Measure::kCovariance, Measure::kCorrelation, Measure::kMean}) {
    const std::size_t k = 1 + rng.NextBounded(20);
    const bool largest = rng.NextDouble() < 0.5;
    TopKRequest request{measure, k, largest};
    auto scape = fw.engine().TopK(request, QueryMethod::kScape);
    auto wa = fw.engine().TopK(request, QueryMethod::kAffine);
    ASSERT_TRUE(scape.ok());
    ASSERT_TRUE(wa.ok());
    ASSERT_EQ(scape->entries.size(), wa->entries.size());
    for (std::size_t i = 0; i < scape->entries.size(); ++i) {
      EXPECT_NEAR(scape->entries[i].value, wa->entries[i].value,
                  1e-9 * (1.0 + std::fabs(wa->entries[i].value)))
          << MeasureName(measure) << " k=" << k << " largest=" << largest << " rank " << i;
    }
  }
}

TEST_P(RandomizedConsistency, WaTracksGroundTruth) {
  const Affinity fw = BuildFramework();
  std::vector<double> truth, approx;
  for (const auto& e : ts::AllSequencePairs(fw.data().n())) {
    truth.push_back(*NaivePairMeasure(Measure::kCorrelation, fw.data().ColumnData(e.u),
                                      fw.data().ColumnData(e.v), fw.data().m()));
    approx.push_back(*fw.model().PairMeasure(Measure::kCorrelation, e));
  }
  // Even at 5% noise the correlation %RMSE stays well under 1%.
  EXPECT_LT(PercentRmse(truth, approx), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedConsistency,
                         ::testing::Values(Scenario{101, false}, Scenario{202, false},
                                           Scenario{303, true}, Scenario{404, true},
                                           Scenario{505, false}, Scenario{606, true}),
                         [](const ::testing::TestParamInfo<Scenario>& info) {
                           return (info.param.stock ? "stock" : "sensor") +
                                  std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace affinity::core
