// Tests for model persistence (core/serialize.h): round trips, corrupt
// inputs, and query equivalence of loaded models.

#include "core/serialize.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <iterator>

#include <gtest/gtest.h>

#include "core/framework.h"
#include "core/scape.h"
#include "core/streaming.h"
#include "ts/generators.h"

namespace affinity::core {
namespace {

std::string TempPath(const std::string& name) { return ::testing::TempDir() + "/" + name; }

AffinityModel BuildModel(std::uint64_t seed = 13) {
  ts::DatasetSpec spec;
  spec.num_series = 24;
  spec.num_samples = 80;
  spec.num_clusters = 3;
  spec.noise_level = 0.02;
  spec.seed = seed;
  const ts::Dataset ds = ts::MakeSensorData(spec);
  auto model = BuildAffinityModel(ds.matrix, AfclstOptions{.k = 3}, SymexOptions{});
  EXPECT_TRUE(model.ok());
  return std::move(model).value();
}

TEST(Serialize, RoundTripPreservesStructure) {
  const AffinityModel original = BuildModel();
  const std::string path = TempPath("model.affm");
  ASSERT_TRUE(SaveModel(original, path).ok());

  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->relationship_count(), original.relationship_count());
  EXPECT_EQ(loaded->pivot_count(), original.pivot_count());
  EXPECT_EQ(loaded->data().n(), original.data().n());
  EXPECT_EQ(loaded->data().m(), original.data().m());
  EXPECT_EQ(loaded->data().names(), original.data().names());
  EXPECT_NEAR(loaded->data().matrix().MaxAbsDiff(original.data().matrix()), 0.0, 0.0);
  EXPECT_NEAR(loaded->clustering().centers.MaxAbsDiff(original.clustering().centers), 0.0, 0.0);
  EXPECT_EQ(loaded->clustering().assignment, original.clustering().assignment);
  EXPECT_EQ(loaded->stats().relationships, original.stats().relationships);
}

TEST(Serialize, LoadedModelAnswersIdentically) {
  const AffinityModel original = BuildModel();
  const std::string path = TempPath("model2.affm");
  ASSERT_TRUE(SaveModel(original, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());

  for (const auto& e : ts::AllSequencePairs(original.data().n())) {
    for (Measure m : {Measure::kCovariance, Measure::kDotProduct, Measure::kCorrelation}) {
      EXPECT_DOUBLE_EQ(*loaded->PairMeasure(m, e), *original.PairMeasure(m, e));
    }
  }
  for (ts::SeriesId v = 0; v < original.data().n(); ++v) {
    for (Measure m : {Measure::kMean, Measure::kMedian, Measure::kMode}) {
      EXPECT_DOUBLE_EQ(*loaded->SeriesMeasure(m, v), *original.SeriesMeasure(m, v));
    }
  }
}

TEST(Serialize, ScapeRebuildFromLoadedModelMatches) {
  const AffinityModel original = BuildModel();
  const std::string path = TempPath("model3.affm");
  ASSERT_TRUE(SaveModel(original, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());

  auto index_a = ScapeIndex::Build(original);
  auto index_b = ScapeIndex::Build(*loaded);
  ASSERT_TRUE(index_a.ok());
  ASSERT_TRUE(index_b.ok());
  auto result_a = index_a->MeasureThreshold(Measure::kCorrelation, 0.8, true);
  auto result_b = index_b->MeasureThreshold(Measure::kCorrelation, 0.8, true);
  ASSERT_TRUE(result_a.ok());
  ASSERT_TRUE(result_b.ok());
  auto pa = result_a->pairs, pb = result_b->pairs;
  std::sort(pa.begin(), pa.end());
  std::sort(pb.begin(), pb.end());
  EXPECT_EQ(pa, pb);
}

TEST(Serialize, IncrementallyMaintainedModelRoundTripsBitIdentically) {
  // A model produced by incremental maintenance (DESIGN.md §8) — slid
  // window, extended centres, delta-updated transforms — must persist
  // exactly like a built one: save → load → every field bit-identical.
  ts::DatasetSpec spec;
  spec.num_series = 10;
  spec.num_samples = 200;
  spec.num_clusters = 3;
  spec.noise_level = 0.03;
  spec.seed = 31;
  const ts::Dataset ds = ts::MakeSensorData(spec);

  StreamingOptions options;
  options.window = 40;
  options.rebuild_interval = 4;
  options.mode = UpdateMode::kIncremental;
  options.build.afclst.k = 3;
  options.build.build_dft = false;
  auto stream = StreamingAffinity::Create(ds.matrix.names(), options);
  ASSERT_TRUE(stream.ok());
  std::vector<double> row(ds.matrix.n());
  for (std::size_t i = 0; i < 80; ++i) {  // first build + 10 slides
    for (std::size_t j = 0; j < ds.matrix.n(); ++j) row[j] = ds.matrix.matrix()(i, j);
    ASSERT_TRUE(stream->Append(row).ok());
  }
  ASSERT_GE(stream->refresh_count(), 10u);
  const AffinityModel& maintained = stream->framework()->model();

  const std::string path = TempPath("incremental.affm");
  ASSERT_TRUE(SaveModel(maintained, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Bit-identical payload: window data, extended centres, per-series
  // stats and relationships, every transform. The block-grid anchor (the
  // maintained window's absolute stream position, DESIGN.md §10) rides
  // along so restored sums land on the same grid.
  EXPECT_EQ(maintained.data().anchor_row(), 40u);  // 80 rows fed, window 40
  EXPECT_EQ(loaded->data().anchor_row(), maintained.data().anchor_row());
  EXPECT_EQ(loaded->data().matrix().MaxAbsDiff(maintained.data().matrix()), 0.0);
  EXPECT_EQ(loaded->clustering().centers.MaxAbsDiff(maintained.clustering().centers), 0.0);
  EXPECT_EQ(loaded->clustering().assignment, maintained.clustering().assignment);
  for (ts::SeriesId v = 0; v < maintained.data().n(); ++v) {
    EXPECT_EQ(loaded->series_stats(v).mean, maintained.series_stats(v).mean);
    EXPECT_EQ(loaded->series_stats(v).variance, maintained.series_stats(v).variance);
    EXPECT_EQ(loaded->series_stats(v).sum, maintained.series_stats(v).sum);
    EXPECT_EQ(loaded->series_stats(v).sumsq, maintained.series_stats(v).sumsq);
    EXPECT_EQ(loaded->series_affine(v).gain, maintained.series_affine(v).gain);
    EXPECT_EQ(loaded->series_affine(v).offset, maintained.series_affine(v).offset);
  }
  maintained.ForEachRelationship([&](const ts::SequencePair& e, const AffineRecord& rec) {
    const AffineRecord* lr = loaded->FindRelationship(e);
    ASSERT_NE(lr, nullptr);
    EXPECT_EQ(lr->pivot.Key(), rec.pivot.Key());
    EXPECT_EQ(lr->transform.a11, rec.transform.a11);
    EXPECT_EQ(lr->transform.a21, rec.transform.a21);
    EXPECT_EQ(lr->transform.a12, rec.transform.a12);
    EXPECT_EQ(lr->transform.a22, rec.transform.a22);
    EXPECT_EQ(lr->transform.b1, rec.transform.b1);
    EXPECT_EQ(lr->transform.b2, rec.transform.b2);
  });
  maintained.ForEachPivot([&](const PivotPair& p, const PairMatrixMeasures& pm) {
    const PairMatrixMeasures* lp = loaded->FindPivotMeasures(p);
    ASSERT_NE(lp, nullptr);
    EXPECT_EQ(lp->cov12, pm.cov12);
    EXPECT_EQ(lp->dot12, pm.dot12);
    EXPECT_EQ(lp->h1, pm.h1);
    EXPECT_EQ(lp->h2, pm.h2);
  });

  // And the loaded model re-saves to the same byte count (a cheap guard
  // against asymmetric read/write paths).
  const std::string path2 = TempPath("incremental2.affm");
  ASSERT_TRUE(SaveModel(*loaded, path2).ok());
  std::ifstream a(path, std::ios::binary | std::ios::ate);
  std::ifstream b(path2, std::ios::binary | std::ios::ate);
  EXPECT_EQ(a.tellg(), b.tellg());
}

TEST(Serialize, TruncatedModelRoundTrips) {
  ts::DatasetSpec spec;
  spec.num_series = 20;
  spec.num_samples = 50;
  spec.num_clusters = 2;
  spec.seed = 9;
  const ts::Dataset ds = ts::MakeSensorData(spec);
  SymexOptions symex;
  symex.max_relationships = 30;
  auto model = BuildAffinityModel(ds.matrix, AfclstOptions{.k = 2}, symex);
  ASSERT_TRUE(model.ok());
  const std::string path = TempPath("trunc.affm");
  ASSERT_TRUE(SaveModel(*model, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->relationship_count(), 30u);
}

TEST(Serialize, MissingFileIsIoError) {
  EXPECT_EQ(LoadModel(TempPath("nope.affm")).status().code(), StatusCode::kIoError);
}

TEST(Serialize, BadMagicRejected) {
  const std::string path = TempPath("garbage.affm");
  std::ofstream(path) << "definitely not a model";
  auto loaded = LoadModel(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(Serialize, TruncatedFileRejected) {
  const AffinityModel model = BuildModel();
  const std::string path = TempPath("full.affm");
  ASSERT_TRUE(SaveModel(model, path).ok());
  // Chop the file in half.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  const std::string cut = TempPath("cut.affm");
  std::ofstream(cut, std::ios::binary) << bytes.substr(0, bytes.size() / 2);
  auto loaded = LoadModel(cut);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

// Pre-anchor (v1) payloads still load: the only v2 addition is the
// block-grid anchor, whose faithful default for v1 data is 0 (the phase
// those payloads' measures were computed at). Reconstruct a v1 file by
// splicing the anchor field out of a v2 payload.
TEST(Serialize, V1PayloadLoadsWithZeroAnchor) {
  const AffinityModel model = BuildModel();
  const std::string path = TempPath("v1.affm");
  ASSERT_TRUE(SaveModel(model, path).ok());
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  // Walk the v2 layout to the anchor field: magic(4) version(4),
  // matrix rows/cols(16) + data, name count(8) + length-prefixed names.
  std::size_t off = 8;
  const auto u64_at = [&](std::size_t pos) {
    std::uint64_t v = 0;
    std::memcpy(&v, bytes.data() + pos, sizeof v);
    return static_cast<std::size_t>(v);
  };
  const std::size_t rows = u64_at(off);
  const std::size_t cols = u64_at(off + 8);
  off += 16 + rows * cols * sizeof(double);
  const std::size_t name_count = u64_at(off);
  off += 8;
  for (std::size_t i = 0; i < name_count; ++i) off += 8 + u64_at(off);
  ASSERT_EQ(u64_at(off), model.data().anchor_row());
  bytes.erase(off, 8);
  const std::uint32_t v1 = 1;
  std::memcpy(bytes.data() + 4, &v1, sizeof v1);
  const std::string v1_path = TempPath("v1_spliced.affm");
  std::ofstream(v1_path, std::ios::binary) << bytes;

  auto loaded = LoadModel(v1_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->data().anchor_row(), 0u);
  EXPECT_EQ(loaded->relationship_count(), model.relationship_count());
  EXPECT_EQ(loaded->data().matrix().MaxAbsDiff(model.data().matrix()), 0.0);
}

TEST(Serialize, UnsupportedVersionRejected) {
  const AffinityModel model = BuildModel();
  const std::string path = TempPath("ver.affm");
  ASSERT_TRUE(SaveModel(model, path).ok());
  // Bump the version field (bytes 4..7).
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(4);
  const std::uint32_t bad = 999;
  f.write(reinterpret_cast<const char*>(&bad), sizeof bad);
  f.close();
  auto loaded = LoadModel(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

TEST(Serialize, SaveToUnwritablePathFails) {
  const AffinityModel model = BuildModel();
  EXPECT_EQ(SaveModel(model, "/nonexistent-dir/x.affm").code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace affinity::core
