// Tests for SYMEX/SYMEX+ and the AffinityModel (core/symex.h).

#include "core/symex.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/measures.h"
#include "ts/generators.h"
#include "ts/stats.h"

namespace affinity::core {
namespace {

ts::Dataset SmallDataset() {
  ts::DatasetSpec spec;
  spec.num_series = 30;
  spec.num_samples = 100;
  spec.num_clusters = 3;
  spec.noise_level = 0.015;
  spec.seed = 13;
  return ts::MakeSensorData(spec);
}

AffinityModel BuildSmallModel(bool cached = true, std::size_t max_rel = SIZE_MAX) {
  const ts::Dataset ds = SmallDataset();
  AfclstOptions afclst;
  afclst.k = 3;
  SymexOptions symex;
  symex.cache_pseudo_inverse = cached;
  symex.max_relationships = max_rel;
  auto model = BuildAffinityModel(ds.matrix, afclst, symex);
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return std::move(model).value();
}

TEST(Symex, CoversAllSequencePairs) {
  const AffinityModel model = BuildSmallModel();
  const std::size_t n = model.data().n();
  EXPECT_EQ(model.relationship_count(), ts::SequencePairCount(n));
  for (const auto& e : ts::AllSequencePairs(n)) {
    EXPECT_NE(model.FindRelationship(e), nullptr) << "(" << e.u << "," << e.v << ")";
  }
}

TEST(Symex, PivotCountIsNearLinear) {
  const AffinityModel model = BuildSmallModel();
  const std::size_t n = model.data().n();
  const std::size_t k = model.clustering().k();
  // Algorithm 2 generates both (u, ω(v)) and (ω(u), v) pivots: ≤ 2nk, and
  // far below the n(n−1)/2 sequence pairs.
  EXPECT_LE(model.pivot_count(), 2 * n * k);
  EXPECT_LT(model.pivot_count(), model.relationship_count());
}

TEST(Symex, EveryRelationshipHasPivotMeasures) {
  const AffinityModel model = BuildSmallModel();
  model.ForEachRelationship([&](const ts::SequencePair& e, const AffineRecord& rec) {
    const PairMatrixMeasures* pm = model.FindPivotMeasures(rec.pivot);
    ASSERT_NE(pm, nullptr);
    EXPECT_EQ(pm->m, model.data().m());
    // The pivot references either e.u or e.v as its common series.
    EXPECT_TRUE(rec.pivot.series == e.u || rec.pivot.series == e.v);
  });
}

TEST(Symex, CommonColumnCoefficientsAreExact) {
  const AffinityModel model = BuildSmallModel();
  model.ForEachRelationship([&](const ts::SequencePair&, const AffineRecord& rec) {
    if (rec.pivot.series_first) {
      EXPECT_EQ(rec.transform.a11, 1.0);
      EXPECT_EQ(rec.transform.a21, 0.0);
      EXPECT_EQ(rec.transform.b1, 0.0);
    } else {
      EXPECT_EQ(rec.transform.a12, 0.0);
      EXPECT_EQ(rec.transform.a22, 1.0);
      EXPECT_EQ(rec.transform.b2, 0.0);
    }
  });
}

TEST(Symex, BetaIsTheFreeColumn) {
  const AffinityModel model = BuildSmallModel();
  int checked = 0;
  model.ForEachRelationship([&](const ts::SequencePair&, const AffineRecord& rec) {
    double beta[3];
    rec.Beta(beta);
    if (rec.pivot.series_first) {
      EXPECT_EQ(beta[0], rec.transform.a12);
      EXPECT_EQ(beta[1], rec.transform.a22);
      EXPECT_EQ(beta[2], rec.transform.b2);
    } else {
      EXPECT_EQ(beta[0], rec.transform.a11);
      EXPECT_EQ(beta[1], rec.transform.a21);
      EXPECT_EQ(beta[2], rec.transform.b1);
    }
    ++checked;
  });
  EXPECT_GT(checked, 0);
}

TEST(Symex, CachedAndUncachedProduceIdenticalTransforms) {
  const AffinityModel plus = BuildSmallModel(/*cached=*/true);
  const AffinityModel plain = BuildSmallModel(/*cached=*/false);
  ASSERT_EQ(plus.relationship_count(), plain.relationship_count());
  plus.ForEachRelationship([&](const ts::SequencePair& e, const AffineRecord& a) {
    const AffineRecord* b = plain.FindRelationship(e);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a.pivot.Key(), b->pivot.Key());
    const double tol = 1e-9;
    EXPECT_NEAR(a.transform.a12, b->transform.a12, tol * (1.0 + std::fabs(a.transform.a12)));
    EXPECT_NEAR(a.transform.a22, b->transform.a22, tol * (1.0 + std::fabs(a.transform.a22)));
    EXPECT_NEAR(a.transform.b2, b->transform.b2, tol * (1.0 + std::fabs(a.transform.b2)));
    EXPECT_NEAR(a.transform.a11, b->transform.a11, tol * (1.0 + std::fabs(a.transform.a11)));
  });
}

TEST(Symex, CacheStatisticsAreConsistent) {
  const AffinityModel model = BuildSmallModel(/*cached=*/true);
  const SymexStats& st = model.stats();
  EXPECT_EQ(st.cache_misses, model.pivot_count());
  EXPECT_EQ(st.cache_hits + st.cache_misses, model.relationship_count());
  EXPECT_GT(st.cache_hits, st.cache_misses);  // many pairs share pivots
}

TEST(Symex, UncachedHasNoCacheTraffic) {
  const AffinityModel model = BuildSmallModel(/*cached=*/false);
  EXPECT_EQ(model.stats().cache_hits, 0u);
  EXPECT_EQ(model.stats().cache_misses, 0u);
}

TEST(Symex, TruncationStopsEarly) {
  const AffinityModel model = BuildSmallModel(true, 50);
  EXPECT_EQ(model.relationship_count(), 50u);
  EXPECT_EQ(model.stats().relationships, 50u);
}

TEST(Symex, RequiresTwoSeries) {
  la::Matrix one(10, 1);
  AfclstOptions afclst;
  afclst.k = 1;
  EXPECT_FALSE(BuildAffinityModel(ts::DataMatrix(one), afclst, SymexOptions{}).ok());
}

TEST(PivotPairKey, DistinguishesSidesAndClusters) {
  std::set<std::uint64_t> keys;
  for (ts::SeriesId s = 0; s < 10; ++s) {
    for (std::uint32_t c = 0; c < 5; ++c) {
      keys.insert(PivotPair{s, c, true}.Key());
      keys.insert(PivotPair{s, c, false}.Key());
    }
  }
  EXPECT_EQ(keys.size(), 100u);
}

// --- WA evaluation accuracy ------------------------------------------------

TEST(AffinityModelWa, DotProductIsExactLemma1) {
  const AffinityModel model = BuildSmallModel();
  const ts::DataMatrix& dm = model.data();
  for (const auto& e : ts::AllSequencePairs(dm.n())) {
    const double truth = ts::stats::DotProduct(dm.ColumnData(e.u), dm.ColumnData(e.v), dm.m());
    auto approx = model.PairMeasure(Measure::kDotProduct, e);
    ASSERT_TRUE(approx.ok());
    EXPECT_NEAR(*approx, truth, 1e-6 * (1.0 + std::fabs(truth)))
        << "pair (" << e.u << "," << e.v << ")";
  }
}

TEST(AffinityModelWa, CovarianceIsAccurateOnClusteredData) {
  const AffinityModel model = BuildSmallModel();
  const ts::DataMatrix& dm = model.data();
  double worst_rel = 0;
  for (const auto& e : ts::AllSequencePairs(dm.n())) {
    const double truth = ts::stats::Covariance(dm.ColumnData(e.u), dm.ColumnData(e.v), dm.m());
    const double approx = *model.PairMeasure(Measure::kCovariance, e);
    worst_rel = std::max(worst_rel, std::fabs(truth - approx) / (1.0 + std::fabs(truth)));
  }
  EXPECT_LT(worst_rel, 1e-3);
}

TEST(AffinityModelWa, CorrelationUsesExactNormalizer) {
  const AffinityModel model = BuildSmallModel();
  const ts::DataMatrix& dm = model.data();
  const ts::SequencePair e(1, 17);
  auto u = model.PairNormalizer(Measure::kCorrelation, e);
  ASSERT_TRUE(u.ok());
  EXPECT_NEAR(*u, ts::stats::CorrelationNormalizer(dm.ColumnData(1), dm.ColumnData(17), dm.m()),
              1e-9 * (1.0 + *u));
  auto rho = model.PairMeasure(Measure::kCorrelation, e);
  ASSERT_TRUE(rho.ok());
  EXPECT_LE(std::fabs(*rho), 1.0 + 1e-6);
}

TEST(AffinityModelWa, MeanIsExact) {
  const AffinityModel model = BuildSmallModel();
  const ts::DataMatrix& dm = model.data();
  for (ts::SeriesId v = 0; v < dm.n(); ++v) {
    const double truth = ts::stats::Mean(dm.ColumnData(v), dm.m());
    auto approx = model.SeriesMeasure(Measure::kMean, v);
    ASSERT_TRUE(approx.ok());
    // The series-level fit is least squares against [r, 1]; the mean is
    // propagated through it exactly (normal equations force the residual
    // to be orthogonal to 1).
    EXPECT_NEAR(*approx, truth, 1e-8 * (1.0 + std::fabs(truth)));
  }
}

TEST(AffinityModelWa, MedianAndModeAreClose) {
  const AffinityModel model = BuildSmallModel();
  const ts::DataMatrix& dm = model.data();
  double med_err = 0, mode_err = 0;
  double med_range = 0;
  std::vector<double> medians;
  for (ts::SeriesId v = 0; v < dm.n(); ++v) {
    medians.push_back(ts::stats::Median(dm.ColumnData(v), dm.m()));
  }
  const auto [lo, hi] = std::minmax_element(medians.begin(), medians.end());
  med_range = *hi - *lo;
  for (ts::SeriesId v = 0; v < dm.n(); ++v) {
    med_err = std::max(med_err,
                       std::fabs(*model.SeriesMeasure(Measure::kMedian, v) - medians[v]));
    const double mode_truth = ts::stats::Mode(dm.ColumnData(v), dm.m());
    mode_err = std::max(
        mode_err, std::fabs(*model.SeriesMeasure(Measure::kMode, v) - mode_truth));
  }
  EXPECT_LT(med_err / med_range, 0.15);
  EXPECT_GT(med_range, 0.0);
  (void)mode_err;  // mode error is data-dependent; bounded implicitly by median check
}

TEST(AffinityModelWa, JaccardAndDiceFromPropagatedDot) {
  const AffinityModel model = BuildSmallModel();
  const ts::DataMatrix& dm = model.data();
  for (ts::SeriesId v = 1; v < 6; ++v) {
    const ts::SequencePair e(0, v);
    for (Measure m : {Measure::kJaccard, Measure::kDice, Measure::kCosine}) {
      const double truth =
          *NaivePairMeasure(m, dm.ColumnData(0), dm.ColumnData(v), dm.m());
      const double approx = *model.PairMeasure(m, e);
      EXPECT_NEAR(approx, truth, 1e-6 * (1.0 + std::fabs(truth)))
          << MeasureName(m) << " pair (0," << v << ")";
    }
  }
}

TEST(AffinityModelWa, ErrorsOnBadInput) {
  const AffinityModel model = BuildSmallModel();
  EXPECT_FALSE(model.PairMeasure(Measure::kMean, ts::SequencePair(0, 1)).ok());
  EXPECT_FALSE(model.SeriesMeasure(Measure::kCovariance, 0).ok());
  EXPECT_FALSE(model.SeriesMeasure(Measure::kMean, 10000).ok());
  EXPECT_FALSE(model.PairMeasure(Measure::kCovariance, ts::SequencePair(0, 10000)).ok());
  EXPECT_FALSE(model.PairNormalizer(Measure::kCovariance, ts::SequencePair(0, 1)).ok());
}

TEST(AffinityModelWa, TruncatedModelReportsNotFound) {
  const AffinityModel model = BuildSmallModel(true, 10);
  std::size_t found = 0, missing = 0;
  for (const auto& e : ts::AllSequencePairs(model.data().n())) {
    auto v = model.PairMeasure(Measure::kCovariance, e);
    if (v.ok()) {
      ++found;
    } else {
      EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
      ++missing;
    }
  }
  EXPECT_EQ(found, 10u);
  EXPECT_GT(missing, 0u);
}

TEST(AffinityModelWa, SeriesStatsAreExact) {
  const AffinityModel model = BuildSmallModel();
  const ts::DataMatrix& dm = model.data();
  for (ts::SeriesId v = 0; v < dm.n(); ++v) {
    const SeriesStats& st = model.series_stats(v);
    EXPECT_NEAR(st.mean, ts::stats::Mean(dm.ColumnData(v), dm.m()), 1e-10);
    EXPECT_NEAR(st.variance, ts::stats::Variance(dm.ColumnData(v), dm.m()),
                1e-8 * (1.0 + st.variance));
    EXPECT_NEAR(st.sumsq, ts::stats::DotProduct(dm.ColumnData(v), dm.ColumnData(v), dm.m()),
                1e-8 * (1.0 + st.sumsq));
  }
}

TEST(AffinityModelWa, CenterLocationValidation) {
  const AffinityModel model = BuildSmallModel();
  EXPECT_TRUE(model.CenterLocation(Measure::kMean, 0).ok());
  EXPECT_FALSE(model.CenterLocation(Measure::kCovariance, 0).ok());
  EXPECT_FALSE(model.CenterLocation(Measure::kMean, 99).ok());
  EXPECT_FALSE(model.CenterLocation(Measure::kMean, -1).ok());
}

TEST(RunSymexFn, AcceptsPrecomputedClustering) {
  const ts::Dataset ds = SmallDataset();
  AfclstOptions afclst;
  afclst.k = 3;
  auto clustering = RunAfclst(ds.matrix, afclst);
  ASSERT_TRUE(clustering.ok());
  auto model = RunSymex(ds.matrix, *clustering, SymexOptions{});
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->relationship_count(), ts::SequencePairCount(ds.matrix.n()));
}

}  // namespace
}  // namespace affinity::core
