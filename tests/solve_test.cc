// Tests for the dense solvers (la/solve.h).

#include "la/solve.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace affinity::la {
namespace {

Matrix RandomMatrix(std::size_t r, std::size_t c, Xoshiro256* rng) {
  Matrix m(r, c);
  for (std::size_t j = 0; j < c; ++j) {
    for (std::size_t i = 0; i < r; ++i) m(i, j) = rng->Uniform(-2.0, 2.0);
  }
  return m;
}

TEST(SolveLinearSystem, KnownSystem) {
  // x + y = 3; x - y = 1  ->  x = 2, y = 1.
  Matrix a = Matrix::FromRows({{1, 1}, {1, -1}});
  auto x = SolveLinearSystem(a, Vector{3, 1});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-12);
  EXPECT_NEAR((*x)[1], 1.0, 1e-12);
}

TEST(SolveLinearSystem, RequiresPivoting) {
  // Leading zero forces a row swap.
  Matrix a = Matrix::FromRows({{0, 1}, {1, 0}});
  auto x = SolveLinearSystem(a, Vector{5, 7});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 7.0, 1e-12);
  EXPECT_NEAR((*x)[1], 5.0, 1e-12);
}

TEST(SolveLinearSystem, DetectsSingular) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 4}});
  auto x = SolveLinearSystem(a, Vector{1, 2});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SolveLinearSystem, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_FALSE(SolveLinearSystem(a, Vector{1, 2}).ok());
}

TEST(SolveLinearSystem, RejectsDimensionMismatch) {
  Matrix a = Matrix::Identity(3);
  EXPECT_FALSE(SolveLinearSystem(a, Vector{1, 2}).ok());
}

TEST(SolveLinearSystem, ResidualIsTinyOnRandomSystems) {
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const Matrix a = RandomMatrix(5, 5, &rng);
    Vector b(5);
    for (std::size_t i = 0; i < 5; ++i) b[i] = rng.Uniform(-1.0, 1.0);
    auto x = SolveLinearSystem(a, b);
    if (!x.ok()) continue;  // singular draw, fine
    const Vector r = a.Multiply(*x) - b;
    EXPECT_NEAR(r.Norm(), 0.0, 1e-9);
  }
}

TEST(SolveLinearSystems, MultiRhs) {
  Matrix a = Matrix::FromRows({{2, 0}, {0, 4}});
  Matrix b = Matrix::FromRows({{2, 4}, {8, 12}});
  auto x = SolveLinearSystems(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)(0, 0), 1.0, 1e-12);
  EXPECT_NEAR((*x)(0, 1), 2.0, 1e-12);
  EXPECT_NEAR((*x)(1, 0), 2.0, 1e-12);
  EXPECT_NEAR((*x)(1, 1), 3.0, 1e-12);
}

TEST(Invert, InverseTimesOriginalIsIdentity) {
  Xoshiro256 rng(2);
  const Matrix a = RandomMatrix(4, 4, &rng);
  auto inv = Invert(a);
  ASSERT_TRUE(inv.ok());
  EXPECT_NEAR(a.Multiply(*inv).MaxAbsDiff(Matrix::Identity(4)), 0.0, 1e-9);
  EXPECT_NEAR(inv->Multiply(a).MaxAbsDiff(Matrix::Identity(4)), 0.0, 1e-9);
}

TEST(SolveLeastSquares, ExactFitIsRecovered) {
  // b = m·x exactly -> least squares returns x.
  Xoshiro256 rng(3);
  const Matrix m = RandomMatrix(10, 3, &rng);
  const Matrix x_true = RandomMatrix(3, 2, &rng);
  const Matrix b = m.Multiply(x_true);
  auto x = SolveLeastSquares(m, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x->MaxAbsDiff(x_true), 0.0, 1e-9);
}

TEST(SolveLeastSquares, ResidualIsOrthogonalToColumns) {
  Xoshiro256 rng(4);
  const Matrix m = RandomMatrix(12, 3, &rng);
  const Matrix b = RandomMatrix(12, 1, &rng);
  auto x = SolveLeastSquares(m, b);
  ASSERT_TRUE(x.ok());
  const Matrix residual = b - m.Multiply(*x);
  // mᵀ r = 0 characterizes the least-squares solution.
  const Vector mtr = m.TransposeMultiply(residual.Col(0));
  EXPECT_NEAR(mtr.Norm(), 0.0, 1e-9);
}

TEST(SolveLeastSquares, RejectsUnderdetermined) {
  Matrix m(2, 3);
  Matrix b(2, 1);
  EXPECT_FALSE(SolveLeastSquares(m, b).ok());
}

TEST(PseudoInverse, LeftInverseProperty) {
  Xoshiro256 rng(5);
  const Matrix m = RandomMatrix(9, 3, &rng);
  auto pinv = PseudoInverse(m);
  ASSERT_TRUE(pinv.ok());
  EXPECT_EQ(pinv->rows(), 3u);
  EXPECT_EQ(pinv->cols(), 9u);
  EXPECT_NEAR(pinv->Multiply(m).MaxAbsDiff(Matrix::Identity(3)), 0.0, 1e-9);
}

TEST(PseudoInverse, MatchesLeastSquaresSolution) {
  Xoshiro256 rng(6);
  const Matrix m = RandomMatrix(8, 3, &rng);
  const Matrix b = RandomMatrix(8, 2, &rng);
  auto pinv = PseudoInverse(m);
  auto x = SolveLeastSquares(m, b);
  ASSERT_TRUE(pinv.ok());
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(pinv->Multiply(b).MaxAbsDiff(*x), 0.0, 1e-9);
}

TEST(PseudoInverse, FailsOnRankDeficient) {
  Matrix m(5, 2);
  for (std::size_t i = 0; i < 5; ++i) {
    m(i, 0) = static_cast<double>(i);
    m(i, 1) = 2.0 * static_cast<double>(i);  // collinear columns
  }
  EXPECT_FALSE(PseudoInverse(m).ok());
}

}  // namespace
}  // namespace affinity::la
