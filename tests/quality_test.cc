// Tests for the model-quality diagnostics (core/quality.h).

#include "core/quality.h"

#include <numeric>

#include <gtest/gtest.h>

#include "core/symex.h"
#include "ts/generators.h"

namespace affinity::core {
namespace {

AffinityModel BuildModel(double noise, std::uint64_t seed = 3) {
  ts::DatasetSpec spec;
  spec.num_series = 30;
  spec.num_samples = 100;
  spec.num_clusters = 3;
  spec.noise_level = noise;
  spec.seed = seed;
  const ts::Dataset ds = ts::MakeSensorData(spec);
  auto model = BuildAffinityModel(ds.matrix, AfclstOptions{.k = 3}, SymexOptions{});
  EXPECT_TRUE(model.ok());
  return std::move(model).value();
}

TEST(Quality, ReportShapesAndCounts) {
  const AffinityModel model = BuildModel(0.02);
  auto report = EvaluateModelQuality(model, 200, 1);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->relationships, model.relationship_count());
  EXPECT_EQ(report->pivots, model.pivot_count());
  EXPECT_GT(report->sampled_pairs, 0u);
  EXPECT_LE(report->sampled_pairs, 200u);
  EXPECT_EQ(report->cluster_sizes.size(), model.clustering().k());
  EXPECT_EQ(std::accumulate(report->cluster_sizes.begin(), report->cluster_sizes.end(),
                            std::size_t{0}),
            model.data().n());
}

TEST(Quality, ResidualStatisticsAreOrdered) {
  const AffinityModel model = BuildModel(0.05);
  auto report = EvaluateModelQuality(model, 300, 2);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->mean_relative_residual, 0.0);
  EXPECT_LE(report->mean_relative_residual, report->max_relative_residual + 1e-12);
  EXPECT_LE(report->p95_relative_residual, report->max_relative_residual + 1e-12);
}

TEST(Quality, LowNoiseBeatsHighNoise) {
  const AffinityModel clean = BuildModel(0.005);
  const AffinityModel noisy = BuildModel(0.2);
  auto clean_report = EvaluateModelQuality(clean, 300, 4);
  auto noisy_report = EvaluateModelQuality(noisy, 300, 4);
  ASSERT_TRUE(clean_report.ok());
  ASSERT_TRUE(noisy_report.ok());
  EXPECT_LT(clean_report->mean_relative_residual, noisy_report->mean_relative_residual);
  EXPECT_LT(clean_report->mean_relative_projection_error,
            noisy_report->mean_relative_projection_error);
}

TEST(Quality, ExactAffineFamilyHasNearZeroResiduals) {
  const ts::DataMatrix dm = ts::MakeExactAffineFamily(80, 16, 9);
  auto model = BuildAffinityModel(dm, AfclstOptions{.k = 2}, SymexOptions{});
  ASSERT_TRUE(model.ok());
  auto report = EvaluateModelQuality(*model, 120, 5);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->max_relative_residual, 1e-6);
  EXPECT_LT(report->mean_relative_lsfd, 1e-6);
}

TEST(Quality, DeterministicForSeed) {
  const AffinityModel model = BuildModel(0.02);
  auto a = EvaluateModelQuality(model, 100, 7);
  auto b = EvaluateModelQuality(model, 100, 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->mean_relative_residual, b->mean_relative_residual);
  EXPECT_EQ(a->sampled_pairs, b->sampled_pairs);
}

TEST(Quality, LsfdTracksResiduals) {
  // LSFD lower-bounds the best possible affine fit; relative LSFD must not
  // exceed the achieved relative residual by much (both normalized the
  // same way).
  const AffinityModel model = BuildModel(0.1);
  auto report = EvaluateModelQuality(model, 300, 6);
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->mean_relative_lsfd, report->max_relative_residual * 1.5 + 1e-9);
}

TEST(Quality, WorksOnTruncatedModels) {
  ts::DatasetSpec spec;
  spec.num_series = 30;
  spec.num_samples = 100;
  spec.num_clusters = 3;
  spec.seed = 3;
  const ts::Dataset ds = ts::MakeSensorData(spec);
  SymexOptions symex;
  symex.max_relationships = 40;
  auto model = BuildAffinityModel(ds.matrix, AfclstOptions{.k = 3}, symex);
  ASSERT_TRUE(model.ok());
  auto report = EvaluateModelQuality(*model, 100, 8);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->sampled_pairs, 0u);
}

}  // namespace
}  // namespace affinity::core
