// Tests for the synthetic dataset generators (ts/generators.h).

#include "ts/generators.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ts/stats.h"

namespace affinity::ts {
namespace {

DatasetSpec SmallSpec() {
  DatasetSpec spec;
  spec.num_series = 40;
  spec.num_samples = 120;
  spec.num_clusters = 4;
  spec.noise_level = 0.02;
  spec.seed = 77;
  return spec;
}

TEST(MakeSensorData, ShapeMatchesSpec) {
  const Dataset ds = MakeSensorData(SmallSpec());
  EXPECT_EQ(ds.matrix.n(), 40u);
  EXPECT_EQ(ds.matrix.m(), 120u);
  EXPECT_EQ(ds.true_cluster.size(), 40u);
  EXPECT_EQ(ds.name, "sensor-data");
  EXPECT_DOUBLE_EQ(ds.sampling_interval_seconds, 120.0);
}

TEST(MakeSensorData, DefaultsMatchTable3) {
  DatasetSpec spec = SmallSpec();
  spec.num_series = 670;
  spec.num_samples = 720;
  const Dataset ds = MakeSensorData(spec);
  EXPECT_EQ(ds.matrix.n(), 670u);
  EXPECT_EQ(ds.matrix.m(), 720u);
}

TEST(MakeSensorData, DeterministicForSeed) {
  const Dataset a = MakeSensorData(SmallSpec());
  const Dataset b = MakeSensorData(SmallSpec());
  EXPECT_NEAR(a.matrix.matrix().MaxAbsDiff(b.matrix.matrix()), 0.0, 0.0);
}

TEST(MakeSensorData, DifferentSeedsDiffer) {
  DatasetSpec spec = SmallSpec();
  const Dataset a = MakeSensorData(spec);
  spec.seed = 78;
  const Dataset b = MakeSensorData(spec);
  EXPECT_GT(a.matrix.matrix().MaxAbsDiff(b.matrix.matrix()), 1e-6);
}

TEST(MakeSensorData, WithinClusterCorrelationBeatsCross) {
  const Dataset ds = MakeSensorData(SmallSpec());
  const std::size_t m = ds.matrix.m();
  double within = 0, cross = 0;
  int wn = 0, cn = 0;
  for (SeriesId u = 0; u < ds.matrix.n(); ++u) {
    for (SeriesId v = u + 1; v < ds.matrix.n(); ++v) {
      const double r =
          std::fabs(stats::Correlation(ds.matrix.ColumnData(u), ds.matrix.ColumnData(v), m));
      if (ds.true_cluster[u] == ds.true_cluster[v]) {
        within += r;
        ++wn;
      } else {
        cross += r;
        ++cn;
      }
    }
  }
  ASSERT_GT(wn, 0);
  ASSERT_GT(cn, 0);
  EXPECT_GT(within / wn, cross / cn);
  EXPECT_GT(within / wn, 0.8);  // strong affine structure within clusters
}

TEST(MakeStockData, ShapeAndPositivity) {
  DatasetSpec spec = SmallSpec();
  spec.num_clusters = 5;
  const Dataset ds = MakeStockData(spec);
  EXPECT_EQ(ds.matrix.n(), 40u);
  EXPECT_EQ(ds.name, "stock-data");
  EXPECT_DOUBLE_EQ(ds.sampling_interval_seconds, 60.0);
  // Prices are strictly positive.
  for (std::size_t j = 0; j < ds.matrix.n(); ++j) {
    for (std::size_t i = 0; i < ds.matrix.m(); ++i) {
      EXPECT_GT(ds.matrix.matrix()(i, j), 0.0);
    }
  }
}

TEST(MakeStockData, DeterministicForSeed) {
  const Dataset a = MakeStockData(SmallSpec());
  const Dataset b = MakeStockData(SmallSpec());
  EXPECT_NEAR(a.matrix.matrix().MaxAbsDiff(b.matrix.matrix()), 0.0, 0.0);
}

TEST(MakeStockData, SectorStructureExists) {
  DatasetSpec spec = SmallSpec();
  spec.num_samples = 400;
  const Dataset ds = MakeStockData(spec);
  const std::size_t m = ds.matrix.m();
  double within = 0, cross = 0;
  int wn = 0, cn = 0;
  for (SeriesId u = 0; u < ds.matrix.n(); ++u) {
    for (SeriesId v = u + 1; v < ds.matrix.n(); ++v) {
      const double r =
          stats::Correlation(ds.matrix.ColumnData(u), ds.matrix.ColumnData(v), m);
      if (ds.true_cluster[u] == ds.true_cluster[v]) {
        within += r;
        ++wn;
      } else {
        cross += r;
        ++cn;
      }
    }
  }
  EXPECT_GT(within / wn, cross / cn);
}

TEST(MakeClusteredData, NameEncodesShape) {
  const Dataset ds = MakeClusteredData(SmallSpec());
  EXPECT_EQ(ds.name, "clustered-40x120");
}

TEST(MakeExactAffineFamily, AllSeriesInTwoDimensionalAffineSpan) {
  const DataMatrix dm = MakeExactAffineFamily(100, 8, 3);
  EXPECT_EQ(dm.n(), 8u);
  // Centered data matrix has rank <= 2: verify via Gram eigen-decay.
  const la::Matrix centered = dm.matrix().CenteredColumnsCopy();
  const la::Matrix gram = centered.Gram();
  // Sum of all eigenvalues == trace; the trailing n-2 must be ~0. Use the
  // fact that rank(G) = rank(centered) <= 2 ⟹ det of any 3x3 principal
  // minor is 0. Cheap proxy: total trace vs top-2 via power iteration is
  // overkill here — check pairwise: every column is an affine combo of
  // cols 0,1 ⟹ residual of LS fit on [c0, c1, 1] is ~0.
  for (std::size_t j = 2; j < 8; ++j) {
    // Fit col j on columns 0 and 1 plus intercept using normal equations.
    const double* c0 = dm.ColumnData(0);
    const double* c1 = dm.ColumnData(1);
    const double* t = dm.ColumnData(static_cast<SeriesId>(j));
    // 3x3 normal system.
    double g[3][3] = {}, r[3] = {};
    for (std::size_t i = 0; i < dm.m(); ++i) {
      const double row[3] = {c0[i], c1[i], 1.0};
      for (int a = 0; a < 3; ++a) {
        for (int b = 0; b < 3; ++b) g[a][b] += row[a] * row[b];
        r[a] += row[a] * t[i];
      }
    }
    // Solve by Cramer's rule.
    const double det = g[0][0] * (g[1][1] * g[2][2] - g[1][2] * g[2][1]) -
                       g[0][1] * (g[1][0] * g[2][2] - g[1][2] * g[2][0]) +
                       g[0][2] * (g[1][0] * g[2][1] - g[1][1] * g[2][0]);
    ASSERT_NE(det, 0.0);
    auto solve = [&](int col) {
      double mcopy[3][3];
      for (int a = 0; a < 3; ++a) {
        for (int b = 0; b < 3; ++b) mcopy[a][b] = g[a][b];
      }
      for (int a = 0; a < 3; ++a) mcopy[a][col] = r[a];
      return (mcopy[0][0] * (mcopy[1][1] * mcopy[2][2] - mcopy[1][2] * mcopy[2][1]) -
              mcopy[0][1] * (mcopy[1][0] * mcopy[2][2] - mcopy[1][2] * mcopy[2][0]) +
              mcopy[0][2] * (mcopy[1][0] * mcopy[2][1] - mcopy[1][1] * mcopy[2][0])) /
             det;
    };
    const double a = solve(0), b = solve(1), c = solve(2);
    double residual = 0;
    for (std::size_t i = 0; i < dm.m(); ++i) {
      const double pred = a * c0[i] + b * c1[i] + c;
      residual = std::max(residual, std::fabs(pred - t[i]));
    }
    EXPECT_NEAR(residual, 0.0, 1e-8);
  }
  (void)gram;
}

TEST(MakeExactAffineFamilyDeath, RejectsTinyFamilies) {
  EXPECT_DEATH({ MakeExactAffineFamily(10, 1, 1); }, "CHECK");
}

}  // namespace
}  // namespace affinity::ts
