// Tests for the blocked summation kernel layer (core/kernels.h,
// DESIGN.md §10): property tests of every kernel against sequential
// scalar oracles, the bitwise chain-equality contract that marginal
// hoisting relies on, thread-count invariance of the rewritten naive
// sweeps, and the cross-shard co-moment cache's hit/miss/invalidation
// behaviour.

#include "core/kernels.h"

#include <cmath>
#include <cstddef>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/fit_kernels.h"
#include "core/measures.h"
#include "core/query.h"
#include "shard/sharded.h"
#include "ts/generators.h"
#include "ts/rolling.h"

namespace affinity::core {
namespace {

// The lengths of the ISSUE checklist: empty, sub-lane, around one lane
// group, around one block, and past it.
const std::size_t kLengths[] = {0, 1, 7, 8, 9, 63, 1023, 1024, 1025};

// Sequential scalar oracles (the seed accumulation order).
double SeqSum(const std::vector<double>& x) {
  double acc = 0;
  for (const double v : x) acc += v;
  return acc;
}
double SeqDot(const std::vector<double>& x, const std::vector<double>& y) {
  double acc = 0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

struct Column {
  const char* name;
  std::vector<double> x;
  std::vector<double> y;
};

std::vector<Column> MakeColumns(std::size_t m) {
  Xoshiro256 rng(m * 31 + 7);
  Column random{"random", std::vector<double>(m), std::vector<double>(m)};
  for (auto& v : random.x) v = rng.Uniform(-3.0, 3.0);
  for (auto& v : random.y) v = rng.Gaussian(10.0, 2.5);
  Column constant{"constant", std::vector<double>(m, 2.5), std::vector<double>(m, -1.25)};
  Column zero{"zero", std::vector<double>(m, 0.0), std::vector<double>(m, 0.0)};
  Column huge{"huge", std::vector<double>(m), std::vector<double>(m)};
  for (auto& v : huge.x) v = rng.Uniform(0.5, 2.0) * 1e140;
  for (auto& v : huge.y) v = rng.Uniform(-2.0, -0.5) * 1e140;
  return {random, constant, zero, huge};
}

double RelTol(double reference) { return 1e-12 * (1.0 + std::fabs(reference)); }

TEST(BlockedKernels, SumAndDotMatchScalarOracle) {
  for (const std::size_t m : kLengths) {
    for (const Column& c : MakeColumns(m)) {
      EXPECT_NEAR(kernels::BlockedSum(c.x.data(), m), SeqSum(c.x), RelTol(SeqSum(c.x)))
          << c.name << " m=" << m;
      const double dot = SeqDot(c.x, c.y);
      EXPECT_NEAR(kernels::BlockedDot(c.x.data(), c.y.data(), m), dot, RelTol(dot))
          << c.name << " m=" << m;
    }
  }
}

TEST(BlockedKernels, MarginalsMatchOraclesAndExtremes) {
  for (const std::size_t m : kLengths) {
    for (const Column& c : MakeColumns(m)) {
      const kernels::Marginals marg = kernels::ColumnMarginals(c.x.data(), m);
      EXPECT_NEAR(marg.sum, SeqSum(c.x), RelTol(SeqSum(c.x))) << c.name << " m=" << m;
      const double sumsq = SeqDot(c.x, c.x);
      EXPECT_NEAR(marg.sumsq, sumsq, RelTol(sumsq)) << c.name << " m=" << m;
      if (m == 0) {
        EXPECT_EQ(marg.min, 0.0);
        EXPECT_EQ(marg.max, 0.0);
      } else {
        double lo = c.x[0], hi = c.x[0];
        for (const double v : c.x) {
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
        EXPECT_EQ(marg.min, lo) << c.name << " m=" << m;
        EXPECT_EQ(marg.max, hi) << c.name << " m=" << m;
      }
    }
  }
}

// The load-bearing contract: every fused kernel's chains are bitwise
// equal to the standalone kernels over the same data, so hoisted
// marginals + one cross dot reproduce a fused per-pair pass exactly.
TEST(BlockedKernels, FusedChainsAreBitwiseEqualToStandaloneKernels) {
  for (const std::size_t m : kLengths) {
    for (const Column& c : MakeColumns(m)) {
      const double* x = c.x.data();
      const double* y = c.y.data();
      const double sum_x = kernels::BlockedSum(x, m);
      const double sum_y = kernels::BlockedSum(y, m);
      const double dot_xx = kernels::BlockedDot(x, x, m);
      const double dot_yy = kernels::BlockedDot(y, y, m);
      const double dot_xy = kernels::BlockedDot(x, y, m);

      double d3_xy, d3_xx, d3_yy;
      kernels::FusedDot3(x, y, m, &d3_xy, &d3_xx, &d3_yy);
      EXPECT_EQ(d3_xy, dot_xy) << c.name << " m=" << m;
      EXPECT_EQ(d3_xx, dot_xx) << c.name << " m=" << m;
      EXPECT_EQ(d3_yy, dot_yy) << c.name << " m=" << m;

      double cross[3];
      kernels::FusedCross3(x, y, y, m, cross);  // c1=x, c2=y, t=y
      EXPECT_EQ(cross[0], dot_xy);
      EXPECT_EQ(cross[1], dot_yy);
      EXPECT_EQ(cross[2], sum_y);

      double gram[5];
      kernels::FusedGram5(x, y, m, gram);
      EXPECT_EQ(gram[0], dot_xx);
      EXPECT_EQ(gram[1], dot_xy);
      EXPECT_EQ(gram[2], dot_yy);
      EXPECT_EQ(gram[3], sum_x);
      EXPECT_EQ(gram[4], sum_y);

      double pm[5];
      kernels::FusedPairMoments(x, y, m, pm);
      EXPECT_EQ(pm[0], sum_x);
      EXPECT_EQ(pm[1], dot_xx);
      EXPECT_EQ(pm[2], sum_y);
      EXPECT_EQ(pm[3], dot_yy);
      EXPECT_EQ(pm[4], dot_xy);

      const kernels::Marginals mx = kernels::ColumnMarginals(x, m);
      EXPECT_EQ(mx.sum, sum_x);
      EXPECT_EQ(mx.sumsq, dot_xx);
    }
  }
}

// RollingCrossSums::Reset and the SYMEX+ build rhs must agree bitwise —
// the DESIGN.md §8 equivalence contract, now routed through one kernel.
TEST(BlockedKernels, RollingResetMatchesFitRhsBitwise) {
  for (const std::size_t m : kLengths) {
    const Column c = MakeColumns(m)[0];
    std::vector<double> t(m);
    Xoshiro256 rng(m + 5);
    for (auto& v : t) v = rng.Gaussian(1.0, 4.0);
    ts::RollingCrossSums sums;
    sums.Reset(c.x.data(), c.y.data(), t.data(), m);
    double rhs[3];
    fit::ComputeRhs(c.x.data(), c.y.data(), t.data(), m, rhs);
    EXPECT_EQ(sums.c1t, rhs[0]) << "m=" << m;
    EXPECT_EQ(sums.c2t, rhs[1]) << "m=" << m;
    EXPECT_EQ(sums.t, rhs[2]) << "m=" << m;
  }
}

TEST(PairMomentsFn, FusedPassEqualsMarginalAssemblyBitwise) {
  for (const std::size_t m : kLengths) {
    for (const Column& c : MakeColumns(m)) {
      const PairMoments fused = ComputePairMoments(c.x.data(), c.y.data(), m);
      const PairMoments assembled = PairMomentsFromMarginals(
          kernels::ColumnMarginals(c.x.data(), m), kernels::ColumnMarginals(c.y.data(), m),
          kernels::BlockedDot(c.x.data(), c.y.data(), m), m);
      EXPECT_EQ(fused.sum_x, assembled.sum_x) << c.name << " m=" << m;
      EXPECT_EQ(fused.sumsq_x, assembled.sumsq_x) << c.name << " m=" << m;
      EXPECT_EQ(fused.sum_y, assembled.sum_y) << c.name << " m=" << m;
      EXPECT_EQ(fused.sumsq_y, assembled.sumsq_y) << c.name << " m=" << m;
      EXPECT_EQ(fused.dot_xy, assembled.dot_xy) << c.name << " m=" << m;
    }
  }
}

TEST(PairMomentsFn, MeasuresMatchScalarOracleWithinTolerance) {
  for (const std::size_t m : kLengths) {
    if (m < 2) continue;
    for (const Column& c : MakeColumns(m)) {
      if (c.x[0] > 1e100) continue;  // the oracle's centered covariance overflows products
      for (const Measure measure :
           {Measure::kCovariance, Measure::kDotProduct, Measure::kCorrelation, Measure::kCosine,
            Measure::kJaccard, Measure::kDice}) {
        const double fused = *NaivePairMeasure(measure, c.x.data(), c.y.data(), m);
        const double oracle = *NaivePairMeasureScalar(measure, c.x.data(), c.y.data(), m);
        EXPECT_NEAR(fused, oracle, 1e-9 * (1.0 + std::fabs(oracle)))
            << MeasureName(measure) << " " << c.name << " m=" << m;
      }
    }
  }
}

TEST(PairMomentsFn, DegenerateColumnsAreDefinedAsZero) {
  const PairMoments zero = ComputePairMoments(nullptr, nullptr, 0);
  for (const Measure measure : {Measure::kCovariance, Measure::kCorrelation, Measure::kCosine,
                                Measure::kJaccard, Measure::kDice}) {
    EXPECT_EQ(*PairMeasureFromMoments(measure, zero), 0.0) << MeasureName(measure);
  }
  EXPECT_FALSE(PairMeasureFromMoments(Measure::kMean, zero).ok());
}

// ---------------------------------------------------------------------------
// Sweep equivalence: the marginal-hoisted naive sweeps must return
// bitwise-identical results at 1/2/8 threads, and per-value agree with
// NaivePairMeasure exactly.
// ---------------------------------------------------------------------------

class HoistedSweeps : public ::testing::Test {
 protected:
  void SetUp() override {
    ts::DatasetSpec spec;
    spec.num_series = 18;
    spec.num_samples = 80;
    spec.num_clusters = 3;
    spec.seed = 11;
    dataset_ = std::make_unique<ts::Dataset>(ts::MakeSensorData(spec));
  }

  std::unique_ptr<ts::Dataset> dataset_;
};

TEST_F(HoistedSweeps, NaiveResultsAreThreadCountInvariant) {
  for (const Measure measure : {Measure::kCovariance, Measure::kCorrelation, Measure::kCosine,
                                Measure::kJaccard}) {
    std::vector<SelectionResult> met_runs;
    std::vector<TopKResult> topk_runs;
    std::vector<MecResponse> mec_runs;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      std::unique_ptr<ThreadPool> pool;
      QueryEngine engine(&dataset_->matrix);
      if (threads > 1) {
        pool = std::make_unique<ThreadPool>(threads);
        engine.SetExec(ExecContext{pool.get()});
      }
      met_runs.push_back(*engine.Met({measure, 0.1, true}, QueryMethod::kNaive));
      topk_runs.push_back(*engine.TopK({measure, 9, true}, QueryMethod::kNaive));
      MecRequest mec;
      mec.measure = measure;
      mec.ids = {0, 3, 7, 11};
      mec_runs.push_back(*engine.Mec(mec, QueryMethod::kNaive));
    }
    for (std::size_t t = 1; t < met_runs.size(); ++t) {
      EXPECT_EQ(met_runs[t].pairs, met_runs[0].pairs) << MeasureName(measure);
      ASSERT_EQ(topk_runs[t].entries.size(), topk_runs[0].entries.size());
      for (std::size_t i = 0; i < topk_runs[0].entries.size(); ++i) {
        EXPECT_EQ(topk_runs[t].entries[i].pair, topk_runs[0].entries[i].pair);
        EXPECT_EQ(topk_runs[t].entries[i].value, topk_runs[0].entries[i].value);
      }
      EXPECT_EQ(mec_runs[t].pair_values.MaxAbsDiff(mec_runs[0].pair_values), 0.0);
    }
  }
}

TEST_F(HoistedSweeps, SweepValuesEqualNaivePairMeasureBitwise) {
  QueryEngine engine(&dataset_->matrix);
  MecRequest mec;
  mec.measure = Measure::kCorrelation;
  mec.ids = {1, 4, 9};
  const MecResponse resp = *engine.Mec(mec, QueryMethod::kNaive);
  for (std::size_t i = 0; i < mec.ids.size(); ++i) {
    for (std::size_t j = 0; j < mec.ids.size(); ++j) {
      if (i == j) continue;
      const double direct = *NaivePairMeasure(
          mec.measure, dataset_->matrix.ColumnData(mec.ids[i]),
          dataset_->matrix.ColumnData(mec.ids[j]), dataset_->matrix.m());
      EXPECT_EQ(resp.pair_values(i, j), direct) << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace affinity::core

// ---------------------------------------------------------------------------
// Cross-shard co-moment cache behaviour (shard/cross_cache.h).
// ---------------------------------------------------------------------------

namespace affinity::shard {
namespace {

using core::Measure;
using core::MetRequest;

ShardedOptions CachedOptions(std::size_t budget) {
  ShardedOptions options;
  options.shards = 2;
  options.streaming.window = 32;
  options.streaming.rebuild_interval = 8;
  options.streaming.mode = core::UpdateMode::kIncremental;
  options.streaming.build.afclst.k = 2;
  options.streaming.build.build_dft = false;
  options.cross_cache.budget = budget;
  return options;
}

struct Feed {
  ts::Dataset dataset;
  std::size_t next = 0;

  explicit Feed(std::uint64_t seed) : dataset([&] {
    ts::DatasetSpec spec;
    spec.num_series = 10;
    spec.num_samples = 400;
    spec.num_clusters = 2;
    spec.seed = seed;
    return ts::MakeStockData(spec);
  }()) {}

  std::vector<double> Row() {
    std::vector<double> row(dataset.matrix.n());
    for (std::size_t j = 0; j < row.size(); ++j) {
      row[j] = dataset.matrix.matrix()(next % dataset.matrix.m(), j);
    }
    ++next;
    return row;
  }
};

void FeedUntilReady(ShardedAffinity* service, Feed* feed) {
  while (!service->ready()) ASSERT_TRUE(service->Append(feed->Row()).ok());
}

TEST(CrossMomentCache, WarmQueriesSkipRawScansAndMatchUncached) {
  Feed feed_a(3), feed_b(3);
  auto cached = ShardedAffinity::Create(feed_a.dataset.matrix.names(), CachedOptions(1000));
  auto plain = ShardedAffinity::Create(feed_b.dataset.matrix.names(), CachedOptions(0));
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(plain.ok());
  FeedUntilReady(&*cached, &feed_a);
  FeedUntilReady(&*plain, &feed_b);

  // Every cross pair is watched, and the first stamp (at the lockstep
  // refresh that made the service ready) is exact — so warm answers are
  // bitwise identical to the cache-less sweep and cost zero raw scans.
  const std::size_t watched = cached->router().cross_pairs().size();
  ASSERT_GT(watched, 0u);
  EXPECT_EQ(cached->cross_cache_stats().stamps, 1u);
  EXPECT_EQ(cached->cross_cache_stats().exact_stamps, 1u);

  MetRequest met{Measure::kCovariance, 0.0, true};
  const core::CrossSweepStats before = cached->cross_sweep_stats();
  auto cached_met = cached->Met(met, {core::QueryMethod::kNaive});
  auto plain_met = plain->Met(met, {core::QueryMethod::kNaive});
  ASSERT_TRUE(cached_met.ok());
  ASSERT_TRUE(plain_met.ok());
  EXPECT_EQ(cached_met->result.pairs, plain_met->result.pairs);
  const core::CrossSweepStats after = cached->cross_sweep_stats();
  EXPECT_EQ(after.pairs_scanned, before.pairs_scanned);  // zero raw pair scans
  EXPECT_EQ(after.columns_hoisted, before.columns_hoisted);
  EXPECT_EQ(cached->cross_cache_stats().hits, watched);
  EXPECT_EQ(cached->cross_cache_stats().misses, 0u);
}

TEST(CrossMomentCache, InvalidationMissesOnceThenRewarms) {
  Feed feed(5);
  auto service = ShardedAffinity::Create(feed.dataset.matrix.names(), CachedOptions(1000));
  ASSERT_TRUE(service.ok());
  FeedUntilReady(&*service, &feed);
  const std::size_t watched = service->router().cross_pairs().size();

  // A manual rebuild drops every stamp.
  ASSERT_TRUE(service->Rebuild().ok());
  EXPECT_EQ(service->cross_cache_stats().invalidations, 1u);

  MetRequest met{Measure::kCorrelation, 0.5, true};
  ASSERT_TRUE(service->Met(met, {core::QueryMethod::kNaive}).ok());
  EXPECT_EQ(service->cross_cache_stats().misses, watched);
  const core::CrossSweepStats swept = service->cross_sweep_stats();
  EXPECT_EQ(swept.pairs_scanned, watched);  // the miss fill re-scanned

  // The miss fill stored sweep moments: the repeat is all hits, no scans.
  ASSERT_TRUE(service->Met(met, {core::QueryMethod::kNaive}).ok());
  EXPECT_EQ(service->cross_cache_stats().hits, watched);
  EXPECT_EQ(service->cross_sweep_stats().pairs_scanned, swept.pairs_scanned);
}

TEST(CrossMomentCache, RolledStampsStayWithinToleranceAcrossRefreshes) {
  Feed feed_a(7), feed_b(7);
  auto cached = ShardedAffinity::Create(feed_a.dataset.matrix.names(), CachedOptions(1000));
  auto plain = ShardedAffinity::Create(feed_b.dataset.matrix.names(), CachedOptions(0));
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(plain.ok());
  FeedUntilReady(&*cached, &feed_a);
  FeedUntilReady(&*plain, &feed_b);
  // Several more refresh intervals: stamps 2..N are rolled add/evict.
  for (int i = 0; i < 3 * 8; ++i) {
    ASSERT_TRUE(cached->Append(feed_a.Row()).ok());
    ASSERT_TRUE(plain->Append(feed_b.Row()).ok());
  }
  ASSERT_GT(cached->cross_cache_stats().stamps, 1u);
  auto a = cached->TopK({Measure::kCosine, 12, true}, {core::QueryMethod::kNaive});
  auto b = plain->TopK({Measure::kCosine, 12, true}, {core::QueryMethod::kNaive});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->result.entries.size(), b->result.entries.size());
  for (std::size_t i = 0; i < a->result.entries.size(); ++i) {
    EXPECT_EQ(a->result.entries[i].pair, b->result.entries[i].pair) << "rank " << i;
    EXPECT_NEAR(a->result.entries[i].value, b->result.entries[i].value,
                1e-9 * (1.0 + std::fabs(b->result.entries[i].value)));
  }
}

TEST(CrossMomentCache, MecCrossCellsServeFromWarmCache) {
  Feed feed(11);
  auto service = ShardedAffinity::Create(feed.dataset.matrix.names(), CachedOptions(1000));
  ASSERT_TRUE(service.ok());
  FeedUntilReady(&*service, &feed);
  // ids 0 and 9 land on different range shards, so the (0, 9) cell is a
  // cross pair — warm, it must come from the cache with zero raw scans.
  core::MecRequest mec;
  mec.measure = Measure::kCovariance;
  mec.ids = {0, 9};
  const core::CrossSweepStats before = service->cross_sweep_stats();
  auto response = service->Mec(mec, {core::QueryMethod::kNaive});
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(service->cross_sweep_stats().pairs_scanned, before.pairs_scanned);
  EXPECT_GT(service->cross_cache_stats().hits, 0u);
  EXPECT_EQ(response->response.pair_values(0, 1), response->response.pair_values(1, 0));
}

TEST(CrossMomentCache, PlannerReportsWarmCoMoments) {
  Feed feed(9);
  auto service = ShardedAffinity::Create(feed.dataset.matrix.names(), CachedOptions(1000));
  ASSERT_TRUE(service.ok());
  FeedUntilReady(&*service, &feed);
  auto met = service->Met({Measure::kCovariance, 0.0, true});
  ASSERT_TRUE(met.ok());
  EXPECT_NE(met->result.plan.rationale.find("served from warm co-moments"), std::string::npos)
      << met->result.plan.rationale;
}

}  // namespace
}  // namespace affinity::shard
