// Tests for the Jacobi symmetric eigensolver (la/eigen.h).

#include "la/eigen.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace affinity::la {
namespace {

Matrix RandomSymmetric(std::size_t n, Xoshiro256* rng) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng->Uniform(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  return a;
}

TEST(JacobiEigen, DiagonalMatrixEigenvaluesAreDiagonal) {
  Matrix a = Matrix::FromRows({{3, 0, 0}, {0, -1, 0}, {0, 0, 7}});
  auto eig = JacobiEigenSym(a);
  ASSERT_TRUE(eig.ok());
  ASSERT_EQ(eig->values.size(), 3u);
  EXPECT_NEAR(eig->values[0], 7.0, 1e-12);
  EXPECT_NEAR(eig->values[1], 3.0, 1e-12);
  EXPECT_NEAR(eig->values[2], -1.0, 1e-12);
}

TEST(JacobiEigen, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a = Matrix::FromRows({{2, 1}, {1, 2}});
  auto eig = JacobiEigenSym(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig->values[1], 1.0, 1e-12);
}

TEST(JacobiEigen, EigenvectorsSatisfyDefinition) {
  Xoshiro256 rng(1);
  const Matrix a = RandomSymmetric(4, &rng);
  auto eig = JacobiEigenSym(a);
  ASSERT_TRUE(eig.ok());
  for (std::size_t j = 0; j < 4; ++j) {
    const Vector v = eig->vectors.Col(j);
    const Vector av = a.Multiply(v);
    const Vector lv = v * eig->values[j];
    EXPECT_NEAR(av.MaxAbsDiff(lv), 0.0, 1e-10);
  }
}

TEST(JacobiEigen, EigenvectorsAreOrthonormal) {
  Xoshiro256 rng(2);
  const Matrix a = RandomSymmetric(5, &rng);
  auto eig = JacobiEigenSym(a);
  ASSERT_TRUE(eig.ok());
  const Matrix vtv = eig->vectors.Gram();
  EXPECT_NEAR(vtv.MaxAbsDiff(Matrix::Identity(5)), 0.0, 1e-10);
}

TEST(JacobiEigen, TraceEqualsEigenvalueSum) {
  Xoshiro256 rng(3);
  const Matrix a = RandomSymmetric(6, &rng);
  auto eig = JacobiEigenSym(a);
  ASSERT_TRUE(eig.ok());
  double trace = 0, sum = 0;
  for (std::size_t i = 0; i < 6; ++i) trace += a(i, i);
  for (double v : eig->values) sum += v;
  EXPECT_NEAR(trace, sum, 1e-10);
}

TEST(JacobiEigen, ValuesSortedDescending) {
  Xoshiro256 rng(4);
  const Matrix a = RandomSymmetric(7, &rng);
  auto eig = JacobiEigenSym(a);
  ASSERT_TRUE(eig.ok());
  for (std::size_t i = 1; i < eig->values.size(); ++i) {
    EXPECT_GE(eig->values[i - 1], eig->values[i]);
  }
}

TEST(JacobiEigen, PsdGramHasNonNegativeEigenvalues) {
  Xoshiro256 rng(5);
  Matrix b(8, 3);
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t i = 0; i < 8; ++i) b(i, j) = rng.Uniform(-1.0, 1.0);
  }
  auto eig = SymmetricEigenvalues(b.Gram());
  ASSERT_TRUE(eig.ok());
  for (double v : *eig) EXPECT_GE(v, -1e-10);
}

TEST(JacobiEigen, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_FALSE(JacobiEigenSym(a).ok());
}

TEST(JacobiEigen, RejectsEmpty) {
  Matrix a;
  EXPECT_FALSE(JacobiEigenSym(a).ok());
}

TEST(JacobiEigen, OneByOne) {
  Matrix a(1, 1);
  a(0, 0) = -4.0;
  auto eig = JacobiEigenSym(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_DOUBLE_EQ(eig->values[0], -4.0);
}

// Property sweep: random symmetric matrices of several sizes must satisfy
// the reconstruction A = V Λ Vᵀ.
class JacobiReconstruction : public ::testing::TestWithParam<int> {};

TEST_P(JacobiReconstruction, ReconstructsInput) {
  const int n = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(100 + n));
  const Matrix a = RandomSymmetric(static_cast<std::size_t>(n), &rng);
  auto eig = JacobiEigenSym(a);
  ASSERT_TRUE(eig.ok());
  Matrix lambda(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    lambda(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) =
        eig->values[static_cast<std::size_t>(i)];
  }
  const Matrix rebuilt =
      eig->vectors.Multiply(lambda).Multiply(eig->vectors.Transpose());
  EXPECT_NEAR(rebuilt.MaxAbsDiff(a), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, JacobiReconstruction, ::testing::Values(2, 3, 4, 5, 8, 12, 16));

}  // namespace
}  // namespace affinity::la
