// End-to-end dirty-stream tests (DESIGN.md §12): the ISSUE acceptance
// scenario (a stream with gaps/NaNs in up to 20% of samples aligned,
// built, slid 200 rows and queried at 1/2/8 threads with finite answers
// and a populated quality surface), the non-finite ingestion guards on
// the dense entry points, quality predicates on every query type,
// AFCLST pivot-quality exclusion, and the fault-injected maintenance
// recovery path.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/framework.h"
#include "core/streaming.h"
#include "ts/generators.h"
#include "ts/ingest.h"

namespace affinity::core {
namespace {

std::vector<std::string> Names(std::size_t n) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back("s" + std::to_string(i));
  return out;
}

ts::Dataset TestData(std::size_t samples, std::uint64_t seed = 12) {
  ts::DatasetSpec spec;
  spec.num_series = 10;
  spec.num_samples = samples;
  spec.num_clusters = 2;
  spec.noise_level = 0.02;
  spec.seed = seed;
  return ts::MakeSensorData(spec);
}

StreamingOptions DirtyOptions(std::size_t threads) {
  StreamingOptions options;
  options.window = 64;
  options.rebuild_interval = 16;
  options.build.afclst.k = 2;
  options.build.build_dft = false;
  options.build.threads = threads;
  return options;
}

/// Feeds the dataset through a StreamAligner, corrupting ~`dirty_pct` of
/// the samples: a third of the corruptions arrive as NaN (dropped at the
/// aligner, slot stays a gap), the rest are silently skipped pushes
/// (missing samples that forward-fill or gap out by age).
struct DirtyFeedStats {
  std::size_t corrupted = 0;
  std::size_t total = 0;
};

DirtyFeedStats FeedDirty(StreamingAffinity* stream, const ts::Dataset& ds, double dirty_pct,
                         std::uint64_t seed) {
  const std::size_t n = ds.matrix.n();
  ts::IngestOptions iopts;
  iopts.max_fill = 4;
  ts::StreamAligner aligner(n, iopts);
  Xoshiro256 rng(seed);
  DirtyFeedStats stats;
  std::vector<ts::AlignedRow> rows;
  for (std::size_t i = 0; i < ds.matrix.m(); ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      ++stats.total;
      const bool corrupt = rng.Uniform(0.0, 1.0) < dirty_pct;
      if (corrupt) {
        ++stats.corrupted;
        if (rng.NextBounded(3) == 0) {
          // A NaN sample: the aligner must absorb it as a gap.
          EXPECT_TRUE(aligner.Push(j, static_cast<double>(i), std::nan("")).ok());
        }
        // else: the sample simply never arrives.
        continue;
      }
      EXPECT_TRUE(aligner.Push(j, static_cast<double>(i), ds.matrix.matrix()(i, j)).ok());
    }
    rows.clear();
    aligner.EmitUpTo(static_cast<double>(i + 1), &rows);
    for (const ts::AlignedRow& row : rows) {
      const AppendResult r = stream->AppendMasked(row);
      EXPECT_TRUE(r.ok()) << r.status.message();
    }
  }
  return stats;
}

// --- The ISSUE acceptance scenario ----------------------------------------

class DirtyStreamAcceptance : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DirtyStreamAcceptance, BuildsSlidesAndAnswersWithFiniteValues) {
  const std::size_t threads = GetParam();
  // window 64 + 200 slides, 20% of samples dirty.
  const ts::Dataset ds = TestData(64 + 200);
  auto stream = StreamingAffinity::Create(Names(10), DirtyOptions(threads));
  ASSERT_TRUE(stream.ok());
  const DirtyFeedStats fed = FeedDirty(&*stream, ds, 0.20, 777 + threads);
  EXPECT_GT(fed.corrupted, 0u);

  ASSERT_TRUE(stream->ready());
  EXPECT_EQ(stream->rows_ingested(), 264u);

  // The dense window the engine built over must be all-finite even though
  // a fifth of the samples never arrived (fills and finite gap carriers).
  const ts::DataMatrix& snap = stream->framework()->data();
  for (std::size_t i = 0; i < snap.m(); ++i) {
    for (std::size_t j = 0; j < snap.n(); ++j) {
      ASSERT_TRUE(std::isfinite(snap.matrix()(i, j))) << i << "," << j;
    }
  }

  // The quality surface is populated: every score finite in [0, 1], and
  // at least one series shows degradation from the corruption.
  const std::vector<double>& scores = stream->quality_scores();
  ASSERT_EQ(scores.size(), 10u);
  double min_score = 1.0;
  for (const double s : scores) {
    ASSERT_TRUE(std::isfinite(s));
    ASSERT_GE(s, 0.0);
    ASSERT_LE(s, 1.0);
    min_score = std::min(min_score, s);
  }
  EXPECT_LT(min_score, 1.0);
  const ts::SeriesQuality q0 = stream->series_quality(0);
  EXPECT_EQ(q0.length, 64u);
  // The published surface is as-of the last refresh (row 256 here); the
  // live tracker has absorbed the rows since. Both agree with their own
  // composite formula.
  EXPECT_EQ(q0.score, stream->quality().Scores()[0]);

  // MET: finite answer, quality stamp populated.
  MetRequest met{Measure::kCorrelation, 0.5, true};
  const auto met_got = stream->Met(met);
  ASSERT_TRUE(met_got.ok());
  EXPECT_TRUE(met_got->quality.populated);
  EXPECT_GE(met_got->quality.min_score, 0.0);
  EXPECT_LE(met_got->quality.min_score, 1.0);

  // MER: finite bounds behave.
  MerRequest mer{Measure::kCorrelation, 0.2, 0.9};
  const auto mer_got = stream->Mer(mer);
  ASSERT_TRUE(mer_got.ok());
  EXPECT_TRUE(mer_got->quality.populated);

  // Top-k: every reported value finite.
  TopKRequest topk{Measure::kCorrelation, 5, true};
  const auto topk_got = stream->TopK(topk);
  ASSERT_TRUE(topk_got.ok());
  ASSERT_EQ(topk_got->entries.size(), 5u);
  for (const auto& e : topk_got->entries) {
    EXPECT_TRUE(std::isfinite(e.value));
  }
  EXPECT_TRUE(topk_got->quality.populated);

  // MEC over a subset: all pair values finite.
  MecRequest mec{Measure::kCorrelation, {0, 1, 2}};
  const auto mec_got = stream->Mec(mec);
  ASSERT_TRUE(mec_got.ok());
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_TRUE(std::isfinite(mec_got->pair_values(i, j)));
    }
  }
  EXPECT_TRUE(mec_got->quality.populated);
}

INSTANTIATE_TEST_SUITE_P(Threads, DirtyStreamAcceptance, ::testing::Values(1, 2, 8));

TEST(DirtyStream, QualityPredicateFiltersAnswers) {
  const ts::Dataset ds = TestData(64 + 200);
  auto stream = StreamingAffinity::Create(Names(10), DirtyOptions(1));
  ASSERT_TRUE(stream.ok());
  FeedDirty(&*stream, ds, 0.20, 4242);
  ASSERT_TRUE(stream->ready());

  const std::vector<double>& scores = stream->quality_scores();
  // Pick a threshold between the worst and best score so the predicate
  // actually separates the series.
  double lo = 1.0, hi = 0.0;
  for (const double s : scores) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  ASSERT_LT(lo, hi);
  const double threshold = 0.5 * (lo + hi);
  std::size_t eligible = 0;
  for (const double s : scores) eligible += s >= threshold ? 1 : 0;
  ASSERT_GT(eligible, 0u);
  ASSERT_LT(eligible, scores.size());

  // MET with the predicate: every surviving pair has both endpoints at or
  // above the threshold, and the unfiltered answer is a superset.
  MetRequest met{Measure::kCorrelation, -2.0, true};  // keep everything
  const auto all = stream->Met(met);
  ASSERT_TRUE(all.ok());
  met.min_quality = threshold;
  const auto filtered = stream->Met(met);
  ASSERT_TRUE(filtered.ok());
  EXPECT_LT(filtered->pairs.size(), all->pairs.size());
  EXPECT_EQ(all->pairs.size() - filtered->pairs.size(), filtered->quality.excluded);
  for (const auto& p : filtered->pairs) {
    EXPECT_GE(scores[p.u], threshold);
    EXPECT_GE(scores[p.v], threshold);
  }
  EXPECT_GE(filtered->quality.min_score, threshold);
  // The plan records the exclusion.
  EXPECT_NE(filtered->plan.rationale.find("quality"), std::string::npos);

  // Top-k under the predicate: only eligible endpoints compete.
  TopKRequest topk{Measure::kCorrelation, 5, true};
  topk.min_quality = threshold;
  const auto topk_got = stream->TopK(topk);
  ASSERT_TRUE(topk_got.ok());
  for (const auto& e : topk_got->entries) {
    EXPECT_GE(scores[e.pair.u], threshold);
    EXPECT_GE(scores[e.pair.v], threshold);
  }

  // MEC: requesting a below-threshold id is a FailedPrecondition (the
  // response is id-aligned; silent exclusion is not an option).
  ts::SeriesId bad = 0;
  for (std::size_t j = 0; j < scores.size(); ++j) {
    if (scores[j] < threshold) bad = static_cast<ts::SeriesId>(j);
  }
  MecRequest mec{Measure::kCorrelation, {bad}};
  mec.min_quality = threshold;
  EXPECT_EQ(stream->Mec(mec).status().code(), StatusCode::kFailedPrecondition);
}

TEST(DirtyStream, AfclstExcludesLowQualityPivots) {
  // Corrupt two series heavily and ask the build to keep them out of the
  // centre updates: the clustering still assigns them, and the build
  // succeeds with finite centres.
  const ts::Dataset ds = TestData(64 + 40);
  StreamingOptions options = DirtyOptions(1);
  options.build.afclst.min_center_quality = 0.6;
  auto stream = StreamingAffinity::Create(Names(10), options);
  ASSERT_TRUE(stream.ok());

  const std::size_t n = ds.matrix.n();
  ts::IngestOptions iopts;
  iopts.max_fill = 2;
  ts::StreamAligner aligner(n, iopts);
  Xoshiro256 rng(99);
  std::vector<ts::AlignedRow> rows;
  for (std::size_t i = 0; i < ds.matrix.m(); ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      // Series 0 and 1 lose 60% of their samples; the rest are clean.
      if (j < 2 && rng.Uniform(0.0, 1.0) < 0.6) continue;
      ASSERT_TRUE(aligner.Push(j, static_cast<double>(i), ds.matrix.matrix()(i, j)).ok());
    }
    rows.clear();
    aligner.EmitUpTo(static_cast<double>(i + 1), &rows);
    for (const ts::AlignedRow& row : rows) ASSERT_TRUE(stream->AppendMasked(row).ok());
  }
  ASSERT_TRUE(stream->ready());
  const std::vector<double>& scores = stream->quality_scores();
  EXPECT_LT(scores[0], 0.6);
  EXPECT_LT(scores[1], 0.6);

  // Every series — including the dirty ones — still has a cluster.
  const AfclstResult& clusters = stream->framework()->model().clustering();
  ASSERT_EQ(clusters.assignment.size(), 10u);
  for (const int a : clusters.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 2);
  }
  for (std::size_t l = 0; l < clusters.centers.cols(); ++l) {
    for (std::size_t i = 0; i < clusters.centers.rows(); ++i) {
      EXPECT_TRUE(std::isfinite(clusters.centers(i, l)));
    }
  }
}

// --- Satellite (a): non-finite guards on the dense entry points -----------

TEST(DirtyStream, AppendRejectsNonFiniteWithoutMutatingState) {
  auto stream = StreamingAffinity::Create(Names(10), DirtyOptions(1));
  ASSERT_TRUE(stream.ok());
  std::vector<double> row(10, 1.0);
  ASSERT_TRUE(stream->Append(row).ok());

  row[3] = std::nan("");
  AppendResult r = stream->Append(row);
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  row[3] = INFINITY;
  r = stream->Append(row);
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  row[3] = -INFINITY;
  r = stream->Append(row);
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);

  // Nothing mutated: the rejected rows were not ingested.
  EXPECT_EQ(stream->rows_ingested(), 1u);
  EXPECT_EQ(stream->quality().size(), 1u);

  // AppendMasked validates mask shapes too.
  row[3] = 1.0;
  r = stream->AppendMasked(row, std::vector<std::uint8_t>(9, 1), std::vector<std::uint8_t>(10, 0));
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  // And rejects non-finite repaired values (the aligner never emits them).
  row[3] = std::nan("");
  r = stream->AppendMasked(row, std::vector<std::uint8_t>(10, 1), std::vector<std::uint8_t>(10, 0));
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(stream->rows_ingested(), 1u);
}

TEST(DirtyStream, BuildRejectsNonFiniteData) {
  ts::Dataset ds = TestData(64);
  AffinityOptions options;
  options.afclst.k = 2;
  options.build_dft = false;

  ts::DataMatrix dirty = ds.matrix;
  dirty.mutable_matrix()(10, 3) = std::nan("");
  auto build = Affinity::Build(dirty, options);
  EXPECT_EQ(build.status().code(), StatusCode::kInvalidArgument);

  dirty.mutable_matrix()(10, 3) = INFINITY;
  build = Affinity::Build(dirty, options);
  EXPECT_EQ(build.status().code(), StatusCode::kInvalidArgument);

  // The clean matrix still builds.
  EXPECT_TRUE(Affinity::Build(ds.matrix, options).ok());
}

// --- Satellite (b): fault-injected maintenance recovery -------------------

TEST(DirtyStream, InjectedMaintenanceFailureEscalatesAndHeals) {
  const ts::Dataset ds = TestData(300, 21);
  StreamingOptions options = DirtyOptions(1);
  options.mode = UpdateMode::kIncremental;
  auto stream = StreamingAffinity::Create(Names(10), options);
  ASSERT_TRUE(stream.ok());

  // Injection is meaningless before the first build (no maintainer yet).
  EXPECT_EQ(stream->InjectMaintenanceFailureForTesting(1).code(),
            StatusCode::kFailedPrecondition);

  std::vector<double> row(10);
  std::size_t fed = 0;
  const auto feed = [&](std::size_t count) {
    AppendResult last;
    for (std::size_t i = 0; i < count; ++i, ++fed) {
      for (std::size_t j = 0; j < 10; ++j) row[j] = ds.matrix.matrix()(fed, j);
      last = stream->Append(row);
      EXPECT_TRUE(last.ok()) << last.status.message();
    }
    return last;
  };

  // First build at the window, one incremental refresh after.
  feed(64 + 16);
  ASSERT_TRUE(stream->ready());
  const std::size_t rebuilds_before = stream->rebuild_count();
  const std::size_t escalations_before = stream->maintenance().escalations;

  // Arm a failure: the next refresh must escalate to a full rebuild and
  // still report a successful, refreshed append.
  ASSERT_TRUE(stream->InjectMaintenanceFailureForTesting(1).ok());
  const AppendResult refreshed = feed(16);
  EXPECT_TRUE(refreshed.ok());
  EXPECT_TRUE(refreshed.refreshed);
  EXPECT_TRUE(refreshed.escalated);
  EXPECT_EQ(stream->rebuild_count(), rebuilds_before + 1);
  EXPECT_EQ(stream->maintenance().escalations, escalations_before + 1);

  // The healed stream answers exactly like a from-scratch build over the
  // same window: no wrong answers survive the recovery.
  const std::size_t window_start = stream->rows_ingested() - 64;
  la::Matrix tail(64, 10);
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t j = 0; j < 10; ++j) tail(i, j) = ds.matrix.matrix()(window_start + i, j);
  }
  auto oracle = Affinity::Build(ts::DataMatrix(std::move(tail), Names(10)), options.build);
  ASSERT_TRUE(oracle.ok());
  MetRequest met{Measure::kCorrelation, 0.5, true};
  const auto healed = stream->Met(met);
  const auto want = oracle->engine().Met(met);
  ASSERT_TRUE(healed.ok());
  ASSERT_TRUE(want.ok());
  ASSERT_EQ(healed->pairs.size(), want->pairs.size());
  for (std::size_t i = 0; i < want->pairs.size(); ++i) {
    EXPECT_EQ(healed->pairs[i].u, want->pairs[i].u);
    EXPECT_EQ(healed->pairs[i].v, want->pairs[i].v);
  }

  // Subsequent refreshes run incrementally again (the armed count is
  // consumed).
  const AppendResult next = feed(16);
  EXPECT_TRUE(next.ok());
  EXPECT_TRUE(next.refreshed);
  EXPECT_FALSE(next.escalated);
}

}  // namespace
}  // namespace affinity::core
