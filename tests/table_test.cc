// Tests for the storage layer (storage/table.h, storage/column_segment.h).

#include "storage/table.h"

#include <gtest/gtest.h>

#include "storage/column_segment.h"
#include "ts/generators.h"

namespace affinity::storage {
namespace {

TEST(ColumnSegment, TracksSummaries) {
  ColumnSegment seg(4);
  seg.Append(3.0);
  seg.Append(-1.0);
  seg.Append(2.0);
  EXPECT_EQ(seg.size(), 3u);
  EXPECT_FALSE(seg.full());
  EXPECT_DOUBLE_EQ(seg.min(), -1.0);
  EXPECT_DOUBLE_EQ(seg.max(), 3.0);
  EXPECT_DOUBLE_EQ(seg.sum(), 4.0);
  seg.Append(0.0);
  EXPECT_TRUE(seg.full());
}

TEST(ColumnSegmentDeath, AppendToFullAborts) {
  ColumnSegment seg(1);
  seg.Append(1.0);
  EXPECT_DEATH({ seg.Append(2.0); }, "CHECK");
}

TEST(DataMatrixTable, RegisterAndLookup) {
  DataMatrixTable table;
  auto a = table.RegisterSeries("INTC", "finance", 60.0);
  auto b = table.RegisterSeries("AMD", "finance", 60.0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(*b, 1u);
  EXPECT_EQ(table.series_count(), 2u);

  auto info = table.GetSeriesInfo(1);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->name, "AMD");
  EXPECT_EQ(info->source, "finance");

  auto found = table.FindSeries("INTC");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 0u);
  EXPECT_EQ(table.FindSeries("MSFT").status().code(), StatusCode::kNotFound);
}

TEST(DataMatrixTable, DuplicateNameRejected) {
  DataMatrixTable table;
  ASSERT_TRUE(table.RegisterSeries("x", "s", 1.0).ok());
  auto dup = table.RegisterSeries("x", "s", 1.0);
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(DataMatrixTable, EmptyNameRejected) {
  DataMatrixTable table;
  EXPECT_EQ(table.RegisterSeries("", "s", 1.0).status().code(), StatusCode::kInvalidArgument);
}

TEST(DataMatrixTable, RegistrationLockedAfterFirstRow) {
  DataMatrixTable table;
  ASSERT_TRUE(table.RegisterSeries("x", "s", 1.0).ok());
  ASSERT_TRUE(table.AppendRow({1.0}).ok());
  EXPECT_EQ(table.RegisterSeries("y", "s", 1.0).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DataMatrixTable, AppendRowValidatesWidth) {
  DataMatrixTable table;
  ASSERT_TRUE(table.RegisterSeries("x", "s", 1.0).ok());
  ASSERT_TRUE(table.RegisterSeries("y", "s", 1.0).ok());
  EXPECT_FALSE(table.AppendRow({1.0}).ok());
  EXPECT_FALSE(table.AppendRow({1.0, 2.0, 3.0}).ok());
  EXPECT_TRUE(table.AppendRow({1.0, 2.0}).ok());
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(DataMatrixTable, AppendToEmptyTableFails) {
  DataMatrixTable table;
  EXPECT_EQ(table.AppendRow({}).code(), StatusCode::kFailedPrecondition);
}

TEST(DataMatrixTable, SnapshotRoundTrip) {
  DataMatrixTable table(/*segment_capacity=*/3);  // force multiple segments
  ASSERT_TRUE(table.RegisterSeries("a", "s", 1.0).ok());
  ASSERT_TRUE(table.RegisterSeries("b", "s", 1.0).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table.AppendRow({static_cast<double>(i), static_cast<double>(10 * i)}).ok());
  }
  auto snap = table.Snapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->m(), 10u);
  EXPECT_EQ(snap->n(), 2u);
  EXPECT_EQ(snap->name(0), "a");
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(snap->matrix()(static_cast<std::size_t>(i), 0), i);
    EXPECT_DOUBLE_EQ(snap->matrix()(static_cast<std::size_t>(i), 1), 10.0 * i);
  }
}

TEST(DataMatrixTable, SnapshotRequiresData) {
  DataMatrixTable table;
  EXPECT_FALSE(table.Snapshot().ok());
  ASSERT_TRUE(table.RegisterSeries("a", "s", 1.0).ok());
  EXPECT_FALSE(table.Snapshot().ok());
}

TEST(DataMatrixTable, SegmentSummaryAggregates) {
  DataMatrixTable table(/*segment_capacity=*/2);
  ASSERT_TRUE(table.RegisterSeries("a", "s", 1.0).ok());
  for (double v : {5.0, -2.0, 7.0, 1.0, 0.0}) ASSERT_TRUE(table.AppendRow({v}).ok());
  EXPECT_DOUBLE_EQ(*table.ColumnMin(0), -2.0);
  EXPECT_DOUBLE_EQ(*table.ColumnMax(0), 7.0);
  EXPECT_DOUBLE_EQ(*table.ColumnSum(0), 11.0);
  EXPECT_FALSE(table.ColumnMin(1).ok());
}

TEST(DataMatrixTable, FromDataMatrixRoundTrip) {
  const ts::Dataset ds = ts::MakeSensorData(
      {.num_series = 6, .num_samples = 50, .num_clusters = 2, .noise_level = 0.02, .seed = 4});
  auto table = DataMatrixTable::FromDataMatrix(ds.matrix, "sensor", 120.0);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->series_count(), 6u);
  EXPECT_EQ(table->row_count(), 50u);
  auto snap = table->Snapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_NEAR(snap->matrix().MaxAbsDiff(ds.matrix.matrix()), 0.0, 0.0);
  EXPECT_EQ(snap->names(), ds.matrix.names());
}

TEST(DataMatrixTable, GetSeriesInfoOutOfRange) {
  DataMatrixTable table;
  EXPECT_EQ(table.GetSeriesInfo(0).status().code(), StatusCode::kOutOfRange);
}

TEST(DataMatrixTable, CompactBeforeReclaimsWholeSegments) {
  DataMatrixTable table(/*segment_capacity=*/4);
  ASSERT_TRUE(table.RegisterSeries("a", "s", 1.0).ok());
  ASSERT_TRUE(table.RegisterSeries("b", "s", 1.0).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table.AppendRow({static_cast<double>(i), static_cast<double>(-i)}).ok());
  }
  EXPECT_EQ(table.CompactBefore(0), 0u);
  // Row 6 lies in the second segment: only the first (rows 0–3) can go.
  EXPECT_EQ(table.CompactBefore(6), 4u);
  EXPECT_EQ(table.first_retained_row(), 4u);
  EXPECT_EQ(table.row_count(), 10u);
  EXPECT_EQ(table.retained_row_count(), 6u);
  // Re-compacting below the retained frontier is a no-op.
  EXPECT_EQ(table.CompactBefore(4), 0u);

  auto snap = table.Snapshot();
  ASSERT_TRUE(snap.ok());
  ASSERT_EQ(snap->m(), 6u);
  EXPECT_DOUBLE_EQ(snap->matrix()(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(snap->matrix()(5, 1), -9.0);

  // Aggregates cover the retained rows only.
  EXPECT_DOUBLE_EQ(*table.ColumnMin(0), 4.0);
  EXPECT_DOUBLE_EQ(*table.ColumnSum(0), 4 + 5 + 6 + 7 + 8 + 9);

  // Appends continue seamlessly after compaction.
  ASSERT_TRUE(table.AppendRow({10.0, -10.0}).ok());
  EXPECT_EQ(table.row_count(), 11u);
  EXPECT_EQ(table.retained_row_count(), 7u);
}

TEST(DataMatrixTable, CompactBeforeEverythingEmptiesTable) {
  DataMatrixTable table(/*segment_capacity=*/2);
  ASSERT_TRUE(table.RegisterSeries("a", "s", 1.0).ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(table.AppendRow({1.0}).ok());
  EXPECT_EQ(table.CompactBefore(4), 4u);
  EXPECT_EQ(table.retained_row_count(), 0u);
  EXPECT_FALSE(table.Snapshot().ok());
  EXPECT_FALSE(table.ColumnMin(0).ok());
  // The table still accepts rows (logical numbering continues).
  ASSERT_TRUE(table.AppendRow({2.0}).ok());
  EXPECT_EQ(table.row_count(), 5u);
  EXPECT_EQ(table.retained_row_count(), 1u);
  auto snap = table.Snapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->m(), 1u);
  EXPECT_DOUBLE_EQ(snap->matrix()(0, 0), 2.0);
}

}  // namespace
}  // namespace affinity::storage
