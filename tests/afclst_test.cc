// Tests for the AFCLST clustering algorithm (core/afclst.h).

#include "core/afclst.h"

#include <cmath>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/lsfd.h"
#include "ts/generators.h"

namespace affinity::core {
namespace {

ts::Dataset SmallDataset(std::size_t clusters = 4) {
  ts::DatasetSpec spec;
  spec.num_series = 48;
  spec.num_samples = 160;
  spec.num_clusters = clusters;
  spec.noise_level = 0.01;
  spec.seed = 21;
  return ts::MakeSensorData(spec);
}

TEST(Afclst, ValidatesArguments) {
  const ts::Dataset ds = SmallDataset();
  AfclstOptions opt;
  opt.k = 0;
  EXPECT_FALSE(RunAfclst(ds.matrix, opt).ok());
  opt.k = ds.matrix.n() + 1;
  EXPECT_FALSE(RunAfclst(ds.matrix, opt).ok());
  opt.k = 4;
  opt.max_iterations = 0;
  EXPECT_FALSE(RunAfclst(ds.matrix, opt).ok());
}

TEST(Afclst, OutputShapes) {
  const ts::Dataset ds = SmallDataset();
  AfclstOptions opt;
  opt.k = 5;
  auto res = RunAfclst(ds.matrix, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->centers.rows(), ds.matrix.m());
  EXPECT_EQ(res->centers.cols(), 5u);
  EXPECT_EQ(res->assignment.size(), ds.matrix.n());
  EXPECT_EQ(res->projection_errors.size(), ds.matrix.n());
  EXPECT_EQ(res->k(), 5u);
  EXPECT_GE(res->iterations, 1);
}

TEST(Afclst, AssignmentsInRange) {
  const ts::Dataset ds = SmallDataset();
  AfclstOptions opt;
  opt.k = 6;
  auto res = RunAfclst(ds.matrix, opt);
  ASSERT_TRUE(res.ok());
  for (std::size_t v = 0; v < ds.matrix.n(); ++v) {
    EXPECT_GE(res->assignment[v], 0);
    EXPECT_LT(res->assignment[v], 6);
    EXPECT_EQ(res->Omega(static_cast<ts::SeriesId>(v)), res->assignment[v]);
  }
}

TEST(Afclst, CentersAreUnitNorm) {
  const ts::Dataset ds = SmallDataset();
  AfclstOptions opt;
  opt.k = 4;
  auto res = RunAfclst(ds.matrix, opt);
  ASSERT_TRUE(res.ok());
  for (std::size_t l = 0; l < 4; ++l) {
    const la::Vector c = res->centers.Col(l);
    EXPECT_NEAR(c.Norm(), 1.0, 1e-9);
  }
}

TEST(Afclst, DeterministicForSeed) {
  const ts::Dataset ds = SmallDataset();
  AfclstOptions opt;
  opt.k = 4;
  opt.seed = 123;
  auto a = RunAfclst(ds.matrix, opt);
  auto b = RunAfclst(ds.matrix, opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignment, b->assignment);
  EXPECT_NEAR(a->centers.MaxAbsDiff(b->centers), 0.0, 0.0);
}

TEST(Afclst, RecoversPlantedClusters) {
  // Low-noise latent clusters must be recovered up to label permutation:
  // all members of a true cluster land in the same AFCLST cluster.
  const ts::Dataset ds = SmallDataset(4);
  AfclstOptions opt;
  opt.k = 4;
  opt.max_iterations = 30;
  opt.min_changes = 0;
  auto res = RunAfclst(ds.matrix, opt);
  ASSERT_TRUE(res.ok());
  // A planted cluster counts as recovered when >= 90% of its members share
  // one AFCLST label (random latent factors can correlate across clusters
  // by chance, so the odd stray is legitimate).
  std::map<int, std::map<int, int>> contingency;
  std::map<int, int> truth_size;
  for (std::size_t v = 0; v < ds.matrix.n(); ++v) {
    ++contingency[ds.true_cluster[v]][res->assignment[v]];
    ++truth_size[ds.true_cluster[v]];
  }
  std::size_t recovered = 0;
  for (const auto& [truth, found] : contingency) {
    int majority = 0;
    for (const auto& [label, count] : found) majority = std::max(majority, count);
    if (10 * majority >= 9 * truth_size[truth]) ++recovered;
  }
  EXPECT_EQ(recovered, 4u);
}

TEST(Afclst, ProjectionErrorsAreSmallOnClusteredData) {
  const ts::Dataset ds = SmallDataset(4);
  AfclstOptions opt;
  opt.k = 4;
  opt.max_iterations = 20;
  auto res = RunAfclst(ds.matrix, opt);
  ASSERT_TRUE(res.ok());
  // Relative projection error per series should be tiny: the series are
  // near-affine images of their cluster factors.
  for (std::size_t v = 0; v < ds.matrix.n(); ++v) {
    const double norm = ds.matrix.Column(static_cast<ts::SeriesId>(v)).Norm();
    EXPECT_LT(res->projection_errors[v] / norm, 0.25) << "series " << v;
  }
}

TEST(Afclst, KEqualsOneAssignsEverything) {
  const ts::Dataset ds = SmallDataset();
  AfclstOptions opt;
  opt.k = 1;
  auto res = RunAfclst(ds.matrix, opt);
  ASSERT_TRUE(res.ok());
  for (int a : res->assignment) EXPECT_EQ(a, 0);
}

TEST(Afclst, KEqualsNIsAllowed) {
  ts::DatasetSpec spec;
  spec.num_series = 8;
  spec.num_samples = 40;
  spec.num_clusters = 2;
  spec.seed = 5;
  const ts::Dataset ds = ts::MakeSensorData(spec);
  AfclstOptions opt;
  opt.k = 8;
  auto res = RunAfclst(ds.matrix, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->k(), 8u);
}

TEST(Afclst, MoreCentersNeverHurtProjection) {
  const ts::Dataset ds = SmallDataset(4);
  AfclstOptions opt;
  opt.max_iterations = 20;
  opt.min_changes = 0;
  opt.k = 2;
  auto res2 = RunAfclst(ds.matrix, opt);
  opt.k = 8;
  auto res8 = RunAfclst(ds.matrix, opt);
  ASSERT_TRUE(res2.ok());
  ASSERT_TRUE(res8.ok());
  double err2 = 0, err8 = 0;
  for (std::size_t v = 0; v < ds.matrix.n(); ++v) {
    err2 += res2->projection_errors[v];
    err8 += res8->projection_errors[v];
  }
  EXPECT_LE(err8, err2 * 1.1);  // allow slack for local minima
}

TEST(PivotPairMatrixFn, BuildsCommonSeriesPlusCenter) {
  const ts::Dataset ds = SmallDataset();
  AfclstOptions opt;
  opt.k = 3;
  auto res = RunAfclst(ds.matrix, opt);
  ASSERT_TRUE(res.ok());
  const la::Matrix op = PivotPairMatrix(ds.matrix, *res, 2, 7);
  EXPECT_EQ(op.rows(), ds.matrix.m());
  EXPECT_EQ(op.cols(), 2u);
  // Column 0 is series 2 verbatim.
  for (std::size_t i = 0; i < ds.matrix.m(); ++i) {
    EXPECT_EQ(op(i, 0), ds.matrix.matrix()(i, 2));
  }
  // Column 1 is the centre of series 7's cluster.
  const int cluster = res->assignment[7];
  for (std::size_t i = 0; i < ds.matrix.m(); ++i) {
    EXPECT_EQ(op(i, 1), res->centers(i, static_cast<std::size_t>(cluster)));
  }
}

TEST(PivotPairMatrixFn, LsfdToSequencePairIsSmall) {
  // §3.3's claim: [s_u, r_ω(v)] is a good affine source for [s_u, s_v].
  const ts::Dataset ds = SmallDataset(4);
  AfclstOptions opt;
  opt.k = 4;
  opt.max_iterations = 20;
  auto res = RunAfclst(ds.matrix, opt);
  ASSERT_TRUE(res.ok());
  double total_rel = 0;
  int count = 0;
  for (ts::SeriesId u = 0; u < 10; ++u) {
    for (ts::SeriesId v = u + 1; v < 10; ++v) {
      const la::Matrix se = ds.matrix.SequencePairMatrix(ts::SequencePair(u, v));
      const la::Matrix op = PivotPairMatrix(ds.matrix, *res, u, v);
      const double d = *Lsfd(op, se);
      const double scale = se.CenteredColumnsCopy().FrobeniusNorm();
      total_rel += d / (scale + 1e-12);
      ++count;
    }
  }
  EXPECT_LT(total_rel / count, 0.2);
}

}  // namespace
}  // namespace affinity::core
