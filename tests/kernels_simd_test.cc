// Cross-backend bitwise equality of the chain kernels (DESIGN.md §10):
// every vector backend must reproduce the scalar reference sums bit for
// bit — at lengths and anchors straddling the block grid, and on columns
// engineered to expose reordered rounding (±0.0, denormals, 1e140
// magnitudes). Also covers the dispatch machinery itself: env-style
// parsing, the programmatic setter, and the prefetch-distance knob
// (a pure scheduling hint — it must never change bits).

#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/kernels.h"

namespace affinity::core::kernels {
namespace {

std::uint64_t Bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Restores the entry backend and prefetch distance on scope exit so a
/// failing test can't poison the rest of the suite.
struct BackendGuard {
  Backend saved = ActiveBackend();
  std::size_t dist = PrefetchDistance();
  ~BackendGuard() {
    SetBackend(saved);
    SetPrefetchDistance(dist);
  }
};

std::vector<Backend> SimdBackends() {
  std::vector<Backend> out;
  if (BackendSupported(Backend::kAvx2)) out.push_back(Backend::kAvx2);
  if (BackendSupported(Backend::kNeon)) out.push_back(Backend::kNeon);
  return out;
}

enum class ColumnKind { kRandom, kSignedZeros, kDenormal, kHuge };

std::vector<double> MakeColumn(ColumnKind kind, std::size_t m, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> x(m);
  switch (kind) {
    case ColumnKind::kRandom:
      for (double& v : x) v = rng.Uniform(-2.0, 2.0);
      break;
    case ColumnKind::kSignedZeros:
      // ±0.0 runs with occasional finite values: exercises signed-zero
      // accumulation and min/max ties.
      for (std::size_t i = 0; i < m; ++i) {
        x[i] = (i % 3 == 0) ? 0.0 : ((i % 3 == 1) ? -0.0 : rng.Uniform(-1.0, 1.0));
      }
      break;
    case ColumnKind::kDenormal:
      // Subnormal magnitudes: products flush toward zero differently if a
      // backend reorders roundings.
      for (std::size_t i = 0; i < m; ++i) {
        x[i] = rng.Uniform(-1.0, 1.0) * 5e-324 * static_cast<double>(1 + i % 7);
      }
      break;
    case ColumnKind::kHuge:
      // 1e140 magnitudes: squares reach 1e280, so any reassociation that
      // changes intermediate magnitudes shows up in the low mantissa bits.
      for (double& v : x) v = rng.Uniform(-1.0, 1.0) * 1e140;
      break;
  }
  return x;
}

struct Reference {
  double sum, dot_xy;
  Marginals marg;
  double d3[3];
  double cross[3];
  double gram[5];
  double pm[5];
};

Reference ScalarReference(const double* x, const double* y, std::size_t m, std::size_t anchor) {
  Reference r;
  r.sum = scalar::BlockedSum(x, m, anchor);
  r.dot_xy = scalar::BlockedDot(x, y, m, anchor);
  r.marg = scalar::ColumnMarginals(x, m, anchor);
  scalar::FusedDot3(x, y, m, &r.d3[0], &r.d3[1], &r.d3[2], anchor);
  scalar::FusedCross3(x, y, x, m, r.cross, anchor);
  scalar::FusedGram5(x, y, m, r.gram, anchor);
  scalar::FusedPairMoments(x, y, m, r.pm, anchor);
  return r;
}

TEST(KernelBackends, CrossBackendBitwiseEquality) {
  const std::vector<Backend> backends = SimdBackends();
  if (backends.empty()) GTEST_SKIP() << "no SIMD backend runs on this machine";
  BackendGuard guard;
  const std::size_t lengths[] = {0, 1, 7, 1023, 1024, 1025, 4096 + 1};
  // Anchors straddling block boundaries: on-grid, one off either side of
  // a cut, mid-block, and a deep-stream phase repeat.
  const std::size_t anchors[] = {0, 1, 511, 1023, 1024, 1025, 4095, 7 + 3 * kBlockElems};
  const ColumnKind kinds[] = {ColumnKind::kRandom, ColumnKind::kSignedZeros,
                              ColumnKind::kDenormal, ColumnKind::kHuge};
  for (const ColumnKind kind : kinds) {
    for (const std::size_t m : lengths) {
      const std::vector<double> x = MakeColumn(kind, m, 1234 + m);
      const std::vector<double> y = MakeColumn(kind, m, 9876 + m);
      for (const std::size_t anchor : anchors) {
        const Reference ref = ScalarReference(x.data(), y.data(), m, anchor);
        for (const Backend b : backends) {
          ASSERT_TRUE(SetBackend(b));
          SCOPED_TRACE(testing::Message() << "backend=" << ActiveBackendName() << " m=" << m
                                          << " anchor=" << anchor << " kind="
                                          << static_cast<int>(kind));
          EXPECT_EQ(Bits(BlockedSum(x.data(), m, anchor)), Bits(ref.sum));
          EXPECT_EQ(Bits(BlockedDot(x.data(), y.data(), m, anchor)), Bits(ref.dot_xy));
          // Σx² through an aliased dot — the documented spelling.
          EXPECT_EQ(Bits(BlockedDot(x.data(), x.data(), m, anchor)),
                    Bits(scalar::BlockedDot(x.data(), x.data(), m, anchor)));
          const Marginals marg = ColumnMarginals(x.data(), m, anchor);
          EXPECT_EQ(Bits(marg.sum), Bits(ref.marg.sum));
          EXPECT_EQ(Bits(marg.sumsq), Bits(ref.marg.sumsq));
          // min/max are value-equal across backends (±0.0 ties may land
          // on the other sign bit — kernels.h).
          EXPECT_EQ(marg.min, ref.marg.min);
          EXPECT_EQ(marg.max, ref.marg.max);
          double d3[3];
          FusedDot3(x.data(), y.data(), m, &d3[0], &d3[1], &d3[2], anchor);
          double cross[3], gram[5], pm[5];
          FusedCross3(x.data(), y.data(), x.data(), m, cross, anchor);
          FusedGram5(x.data(), y.data(), m, gram, anchor);
          FusedPairMoments(x.data(), y.data(), m, pm, anchor);
          for (int c = 0; c < 3; ++c) {
            EXPECT_EQ(Bits(d3[c]), Bits(ref.d3[c])) << "FusedDot3 chain " << c;
            EXPECT_EQ(Bits(cross[c]), Bits(ref.cross[c])) << "FusedCross3 chain " << c;
          }
          for (int c = 0; c < 5; ++c) {
            EXPECT_EQ(Bits(gram[c]), Bits(ref.gram[c])) << "FusedGram5 chain " << c;
            EXPECT_EQ(Bits(pm[c]), Bits(ref.pm[c])) << "FusedPairMoments chain " << c;
          }
        }
      }
    }
  }
}

TEST(KernelBackends, PrefetchDistanceNeverChangesBits) {
  const std::vector<Backend> backends = SimdBackends();
  if (backends.empty()) GTEST_SKIP() << "no SIMD backend runs on this machine";
  BackendGuard guard;
  const std::size_t m = 4096 + 37;
  const std::vector<double> x = MakeColumn(ColumnKind::kRandom, m, 5);
  const std::vector<double> y = MakeColumn(ColumnKind::kRandom, m, 6);
  const double ref = scalar::BlockedDot(x.data(), y.data(), m, 17);
  for (const Backend b : backends) {
    ASSERT_TRUE(SetBackend(b));
    for (const std::size_t dist : {std::size_t{0}, std::size_t{16}, std::size_t{256}}) {
      SetPrefetchDistance(dist);
      EXPECT_EQ(Bits(BlockedDot(x.data(), y.data(), m, 17)), Bits(ref)) << "dist=" << dist;
    }
  }
}

TEST(KernelBackends, DispatchMachinery) {
  BackendGuard guard;
  // Scalar is always supported and settable.
  EXPECT_TRUE(BackendSupported(Backend::kScalar));
  EXPECT_TRUE(SetBackend(Backend::kScalar));
  EXPECT_EQ(ActiveBackend(), Backend::kScalar);
  EXPECT_STREQ(ActiveBackendName(), "scalar");
  // Setting an unsupported backend fails and leaves the current one.
  for (const Backend b : {Backend::kAvx2, Backend::kNeon}) {
    if (!BackendSupported(b)) {
      EXPECT_FALSE(SetBackend(b));
      EXPECT_EQ(ActiveBackend(), Backend::kScalar);
    } else {
      EXPECT_TRUE(SetBackend(b));
      EXPECT_EQ(ActiveBackend(), b);
      EXPECT_TRUE(SetBackend(Backend::kScalar));
    }
  }
  // At most one SIMD backend exists per architecture.
  EXPECT_LE(SimdBackends().size(), 1u);

  Backend parsed;
  EXPECT_TRUE(ParseBackend("scalar", &parsed));
  EXPECT_EQ(parsed, Backend::kScalar);
  EXPECT_TRUE(ParseBackend("avx2", &parsed));
  EXPECT_EQ(parsed, Backend::kAvx2);
  EXPECT_TRUE(ParseBackend("neon", &parsed));
  EXPECT_EQ(parsed, Backend::kNeon);
  EXPECT_TRUE(ParseBackend("auto", &parsed));
  EXPECT_TRUE(BackendSupported(parsed)) << "auto must resolve to a runnable backend";
  EXPECT_FALSE(ParseBackend("sse9", &parsed));
  EXPECT_FALSE(ParseBackend("", &parsed));
  EXPECT_FALSE(ParseBackend(nullptr, &parsed));
}

}  // namespace
}  // namespace affinity::core::kernels
