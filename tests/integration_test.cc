// Cross-module integration tests: the full AFFINITY pipeline on both
// synthetic datasets, validating the paper's qualitative claims end to end
// (accuracy pattern of Fig. 9/10, result-set agreement of Fig. 15/16, and
// storage → framework round trips).

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/framework.h"
#include "storage/table.h"
#include "ts/generators.h"
#include "ts/stats.h"

namespace affinity::core {
namespace {

/// Mini versions of the paper's datasets (same structure, laptop-fast).
ts::Dataset MiniSensor() {
  return ts::MakeSensorData(
      {.num_series = 67, .num_samples = 72, .num_clusters = 6, .noise_level = 0.02, .seed = 42});
}

ts::Dataset MiniStock() {
  return ts::MakeStockData(
      {.num_series = 50, .num_samples = 130, .num_clusters = 5, .noise_level = 0.015, .seed = 7});
}

class PipelineTest : public ::testing::TestWithParam<int> {
 protected:
  ts::Dataset Data() const { return GetParam() == 0 ? MiniSensor() : MiniStock(); }
};

TEST_P(PipelineTest, AccuracyPatternMatchesFig9And10) {
  const ts::Dataset ds = Data();
  auto fw = Affinity::Build(ds.matrix);
  ASSERT_TRUE(fw.ok());
  const std::size_t m = ds.matrix.m();

  // Pair measures: %RMSE must be ~machine precision for covariance and dot
  // product (the paper reports 1e-12-ish) and tiny for correlation.
  for (Measure meas : {Measure::kCovariance, Measure::kDotProduct, Measure::kCorrelation}) {
    std::vector<double> truth, approx;
    for (const auto& e : ts::AllSequencePairs(ds.matrix.n())) {
      truth.push_back(
          *NaivePairMeasure(meas, ds.matrix.ColumnData(e.u), ds.matrix.ColumnData(e.v), m));
      approx.push_back(*fw->model().PairMeasure(meas, e));
    }
    EXPECT_LT(PercentRmse(truth, approx), 1e-3) << MeasureName(meas);
  }

  // L-measures: mean essentially exact; median/mode approximate but small
  // (the paper reports up to ~3%).
  std::vector<double> mean_t, mean_a, med_t, med_a, mode_t, mode_a;
  for (ts::SeriesId v = 0; v < ds.matrix.n(); ++v) {
    mean_t.push_back(ts::stats::Mean(ds.matrix.ColumnData(v), m));
    mean_a.push_back(*fw->model().SeriesMeasure(Measure::kMean, v));
    med_t.push_back(ts::stats::Median(ds.matrix.ColumnData(v), m));
    med_a.push_back(*fw->model().SeriesMeasure(Measure::kMedian, v));
    mode_t.push_back(ts::stats::Mode(ds.matrix.ColumnData(v), m));
    mode_a.push_back(*fw->model().SeriesMeasure(Measure::kMode, v));
  }
  EXPECT_LT(PercentRmse(mean_t, mean_a), 1e-6);
  EXPECT_LT(PercentRmse(med_t, med_a), 5.0);
  EXPECT_LT(PercentRmse(mode_t, mode_a), 15.0);
  // And the ordering of the pattern: mean ≪ median ≤ mode-ish.
  EXPECT_LT(PercentRmse(mean_t, mean_a), PercentRmse(med_t, med_a) + 1e-9);
}

TEST_P(PipelineTest, ScapeAgreesWithWaOnEveryIndexableMeasure) {
  const ts::Dataset ds = Data();
  auto fw = Affinity::Build(ds.matrix);
  ASSERT_TRUE(fw.ok());
  const std::vector<std::pair<Measure, double>> cases = {
      {Measure::kCovariance, 0.0}, {Measure::kDotProduct, 100.0},
      {Measure::kCorrelation, 0.8}, {Measure::kCosine, 0.9},
      {Measure::kMean, 1.0},       {Measure::kMedian, 1.0},
      {Measure::kMode, 1.0},
  };
  for (const auto& [measure, tau] : cases) {
    MetRequest req{measure, tau, true};
    auto scape = fw->engine().Met(req, QueryMethod::kScape);
    auto wa = fw->engine().Met(req, QueryMethod::kAffine);
    ASSERT_TRUE(scape.ok()) << MeasureName(measure);
    ASSERT_TRUE(wa.ok());
    auto sp = scape->pairs, wp = wa->pairs;
    std::sort(sp.begin(), sp.end());
    std::sort(wp.begin(), wp.end());
    EXPECT_EQ(sp, wp) << MeasureName(measure);
    auto ss = scape->series, ws = wa->series;
    std::sort(ss.begin(), ss.end());
    std::sort(ws.begin(), ws.end());
    EXPECT_EQ(ss, ws) << MeasureName(measure);
  }
}

TEST_P(PipelineTest, ScapeNearlyMatchesGroundTruthOnCleanData) {
  const ts::Dataset ds = Data();
  auto fw = Affinity::Build(ds.matrix);
  ASSERT_TRUE(fw.ok());
  MetRequest req{Measure::kCorrelation, 0.85, true};
  auto scape = fw->engine().Met(req, QueryMethod::kScape);
  auto wn = fw->engine().Met(req, QueryMethod::kNaive);
  ASSERT_TRUE(scape.ok());
  ASSERT_TRUE(wn.ok());
  auto sp = scape->pairs, np = wn->pairs;
  std::sort(sp.begin(), sp.end());
  std::sort(np.begin(), np.end());
  std::vector<ts::SequencePair> sym;
  std::set_symmetric_difference(sp.begin(), sp.end(), np.begin(), np.end(),
                                std::back_inserter(sym));
  // Approximation-induced boundary flips only: < 3% of the union.
  EXPECT_LE(sym.size(), 1 + (sp.size() + np.size()) * 3 / 100);
}

TEST_P(PipelineTest, WfIsCorrelationOnlyAndLessAccurateThanWa) {
  const ts::Dataset ds = Data();
  auto fw = Affinity::Build(ds.matrix);
  ASSERT_TRUE(fw.ok());
  const std::size_t m = ds.matrix.m();
  double wa_err = 0, wf_err = 0;
  for (const auto& e : ts::AllSequencePairs(ds.matrix.n())) {
    const double truth =
        ts::stats::Correlation(ds.matrix.ColumnData(e.u), ds.matrix.ColumnData(e.v), m);
    wa_err += std::fabs(*fw->model().PairMeasure(Measure::kCorrelation, e) - truth);
    wf_err += std::fabs(fw->wf()->Estimate(e.u, e.v) - truth);
  }
  // The affine method dominates the 5-coefficient DFT sketch on accuracy.
  EXPECT_LT(wa_err, wf_err);
}

TEST_P(PipelineTest, PruningLeavesNarrowVerifyBand) {
  const ts::Dataset ds = Data();
  auto fw = Affinity::Build(ds.matrix);
  ASSERT_TRUE(fw.ok());
  MetRequest req{Measure::kCorrelation, 0.9, true};
  auto scape = fw->engine().Met(req, QueryMethod::kScape);
  ASSERT_TRUE(scape.ok());
  const std::size_t total = fw->model().relationship_count();
  // §5.3: the verify band must be a strict subset of the index — most
  // entries are pruned (accepted or rejected) without touching normalizers.
  EXPECT_LT(scape->prune.verified, total);
}

INSTANTIATE_TEST_SUITE_P(Datasets, PipelineTest, ::testing::Values(0, 1),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == 0 ? "sensor" : "stock";
                         });

TEST(StorageIntegration, TableSnapshotFeedsFramework) {
  const ts::Dataset ds = MiniSensor();
  auto table = storage::DataMatrixTable::FromDataMatrix(ds.matrix, "sensor", 120.0);
  ASSERT_TRUE(table.ok());
  auto snapshot = table->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  auto fw = Affinity::Build(*snapshot);
  ASSERT_TRUE(fw.ok());
  MetRequest req{Measure::kCorrelation, 0.9, true};
  auto result = fw->engine().Met(req, QueryMethod::kScape);
  ASSERT_TRUE(result.ok());
  // Same result as building from the original matrix.
  auto fw2 = Affinity::Build(ds.matrix);
  ASSERT_TRUE(fw2.ok());
  auto result2 = fw2->engine().Met(req, QueryMethod::kScape);
  ASSERT_TRUE(result2.ok());
  auto a = result->pairs, b = result2->pairs;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(ExactAffineIntegration, ZeroNoiseFamilyIsExactEverywhere) {
  // On an exact affine family every propagated measure is exact and SCAPE
  // equals WN bit-for-bit in result-set terms.
  const ts::DataMatrix dm = ts::MakeExactAffineFamily(120, 20, 17);
  AffinityOptions small_k;
  small_k.afclst.k = 2;
  auto fw = Affinity::Build(dm, small_k);
  ASSERT_TRUE(fw.ok());
  const std::size_t m = dm.m();
  for (const auto& e : ts::AllSequencePairs(dm.n())) {
    const double truth =
        ts::stats::Covariance(dm.ColumnData(e.u), dm.ColumnData(e.v), m);
    EXPECT_NEAR(*fw->model().PairMeasure(Measure::kCovariance, e), truth,
                1e-7 * (1.0 + std::fabs(truth)));
  }
  MetRequest req{Measure::kCorrelation, 0.5, true};
  auto scape = fw->engine().Met(req, QueryMethod::kScape);
  auto wn = fw->engine().Met(req, QueryMethod::kNaive);
  ASSERT_TRUE(scape.ok());
  ASSERT_TRUE(wn.ok());
  auto a = scape->pairs, b = wn->pairs;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(ScalabilityShape, SymexPlusIsFasterThanSymex) {
  // The Fig. 13 claim in miniature: the pseudo-inverse cache wins.
  const ts::Dataset ds = ts::MakeSensorData(
      {.num_series = 80, .num_samples = 200, .num_clusters = 6, .noise_level = 0.02, .seed = 2});
  auto clustering = RunAfclst(ds.matrix, AfclstOptions{.k = 6});
  ASSERT_TRUE(clustering.ok());

  SymexOptions plain;
  plain.cache_pseudo_inverse = false;
  SymexOptions plus;
  plus.cache_pseudo_inverse = true;
  auto model_plain = RunSymex(ds.matrix, *clustering, plain);
  auto model_plus = RunSymex(ds.matrix, *clustering, plus);
  ASSERT_TRUE(model_plain.ok());
  ASSERT_TRUE(model_plus.ok());
  // Identical outputs...
  EXPECT_EQ(model_plain->relationship_count(), model_plus->relationship_count());
  // ...but the cached variant is measurably faster (paper: 3.5–4×; accept
  // any definitive win to keep the test robust to machine noise). Wall
  // times are best-of-3 so a scheduler hiccup during one run (e.g. a
  // concurrent ctest process) cannot invert the comparison.
  const auto best_march_seconds = [&](const SymexOptions& options) {
    double best = model_plain->stats().march_seconds;  // overwritten below
    for (int run = 0; run < 3; ++run) {
      auto model = RunSymex(ds.matrix, *clustering, options);
      EXPECT_TRUE(model.ok());
      const double seconds = model->stats().march_seconds;
      if (run == 0 || seconds < best) best = seconds;
    }
    return best;
  };
  EXPECT_LT(best_march_seconds(plus), best_march_seconds(plain));
}

}  // namespace
}  // namespace affinity::core
