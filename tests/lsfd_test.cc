// Tests for the LSFD metric (core/lsfd.h): Definition 1 and the metric
// axioms of Theorem 1.

#include "core/lsfd.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/affine.h"
#include "la/svd.h"

namespace affinity::core {
namespace {

la::Matrix RandomPairMatrix(std::size_t m, Xoshiro256* rng) {
  la::Matrix x(m, 2);
  for (std::size_t j = 0; j < 2; ++j) {
    for (std::size_t i = 0; i < m; ++i) x(i, j) = rng->Uniform(-3.0, 3.0);
  }
  return x;
}

TEST(Lsfd, ValidatesShapes) {
  la::Matrix a(10, 2), b(10, 3), c(9, 2), d(1, 2);
  EXPECT_TRUE(Lsfd(a, a).ok());
  EXPECT_FALSE(Lsfd(a, b).ok());
  EXPECT_FALSE(Lsfd(b, a).ok());
  EXPECT_FALSE(Lsfd(a, c).ok());
  EXPECT_FALSE(Lsfd(d, d).ok());
}

TEST(Lsfd, SelfDistanceIsZero) {
  Xoshiro256 rng(1);
  const la::Matrix x = RandomPairMatrix(40, &rng);
  auto d = Lsfd(x, x);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 0.0, 1e-6);
}

TEST(Lsfd, ZeroForExactAffineImages) {
  // Definition 1: DF = 0 iff Y's columns lie in the affine span of X's.
  Xoshiro256 rng(2);
  const la::Matrix x = RandomPairMatrix(60, &rng);
  AffineTransform t;
  t.a11 = 2.0;
  t.a21 = -1.0;
  t.a12 = 0.5;
  t.a22 = 3.0;
  t.b1 = 7.0;
  t.b2 = -4.0;
  const la::Matrix y = ApplyAffine(x, t);
  auto d = Lsfd(x, y);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 0.0, 1e-5);
}

TEST(Lsfd, TranslationInvariant) {
  // Zero-meaning makes pure translations free.
  Xoshiro256 rng(3);
  const la::Matrix x = RandomPairMatrix(30, &rng);
  la::Matrix y = x;
  for (std::size_t i = 0; i < 30; ++i) {
    y(i, 0) += 100.0;
    y(i, 1) -= 55.0;
  }
  auto d = Lsfd(x, y);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 0.0, 1e-6);
}

TEST(Lsfd, PositiveForIndependentData) {
  Xoshiro256 rng(4);
  const la::Matrix x = RandomPairMatrix(50, &rng);
  const la::Matrix y = RandomPairMatrix(50, &rng);
  auto d = Lsfd(x, y);
  ASSERT_TRUE(d.ok());
  EXPECT_GT(*d, 0.1);
}

TEST(Lsfd, Symmetric) {
  Xoshiro256 rng(5);
  const la::Matrix x = RandomPairMatrix(25, &rng);
  const la::Matrix y = RandomPairMatrix(25, &rng);
  EXPECT_NEAR(*Lsfd(x, y), *Lsfd(y, x), 1e-9);
}

TEST(Lsfd, MatchesSingularValueDefinition) {
  // DF² must equal λ3² + λ4² of the centered concatenation (Definition 1).
  Xoshiro256 rng(6);
  const la::Matrix x = RandomPairMatrix(35, &rng);
  const la::Matrix y = RandomPairMatrix(35, &rng);
  const la::Matrix concat =
      x.CenteredColumnsCopy().ConcatColumns(y.CenteredColumnsCopy());
  auto sv = la::SingularValues(concat);
  ASSERT_TRUE(sv.ok());
  const double expected = (*sv)[2] * (*sv)[2] + (*sv)[3] * (*sv)[3];
  auto d2 = LsfdSquared(x, y);
  ASSERT_TRUE(d2.ok());
  EXPECT_NEAR(*d2, expected, 1e-8 * (1.0 + expected));
}

TEST(Lsfd, SquaredIsSquare) {
  Xoshiro256 rng(7);
  const la::Matrix x = RandomPairMatrix(20, &rng);
  const la::Matrix y = RandomPairMatrix(20, &rng);
  EXPECT_NEAR(*LsfdSquared(x, y), (*Lsfd(x, y)) * (*Lsfd(x, y)), 1e-9);
}

TEST(Lsfd, SmallPerturbationSmallDistance) {
  Xoshiro256 rng(8);
  const la::Matrix x = RandomPairMatrix(80, &rng);
  la::Matrix y = x;
  for (std::size_t i = 0; i < 80; ++i) {
    y(i, 0) += rng.Gaussian(0.0, 1e-4);
    y(i, 1) += rng.Gaussian(0.0, 1e-4);
  }
  auto d = Lsfd(x, y);
  ASSERT_TRUE(d.ok());
  EXPECT_LT(*d, 1e-2);
}

TEST(Lsfd, ScalesWithData) {
  // DF(cX, cY) = |c|·DF(X, Y): singular values are homogeneous.
  Xoshiro256 rng(9);
  const la::Matrix x = RandomPairMatrix(30, &rng);
  const la::Matrix y = RandomPairMatrix(30, &rng);
  const double base = *Lsfd(x, y);
  const la::Matrix x3 = x * 3.0;
  const la::Matrix y3 = y * 3.0;
  EXPECT_NEAR(*Lsfd(x3, y3), 3.0 * base, 1e-7 * (1.0 + base));
}

// Theorem 1: triangle inequality over random triples.
class LsfdTriangle : public ::testing::TestWithParam<int> {};

TEST_P(LsfdTriangle, HoldsOnRandomTriples) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    const la::Matrix x = RandomPairMatrix(24, &rng);
    const la::Matrix y = RandomPairMatrix(24, &rng);
    const la::Matrix z = RandomPairMatrix(24, &rng);
    const double dxy = *Lsfd(x, y);
    const double dxz = *Lsfd(x, z);
    const double dzy = *Lsfd(z, y);
    EXPECT_LE(dxy, dxz + dzy + 1e-9);
    EXPECT_LE(dxz, dxy + dzy + 1e-9);
    EXPECT_LE(dzy, dxy + dxz + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LsfdTriangle, ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace affinity::core
