// Tests for the top-k extension: ScapeIndex::TopK and QueryEngine::TopK.
// The index-side threshold algorithm must agree exactly with the WA
// strategy's evaluate-all-and-sort answer.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/framework.h"
#include "ts/generators.h"

namespace affinity::core {
namespace {

class TopKTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ts::DatasetSpec spec;
    spec.num_series = 40;
    spec.num_samples = 120;
    spec.num_clusters = 4;
    spec.noise_level = 0.02;
    spec.seed = 77;
    auto fw = Affinity::Build(ts::MakeSensorData(spec).matrix);
    ASSERT_TRUE(fw.ok());
    framework_ = new Affinity(std::move(fw).value());
  }
  static void TearDownTestSuite() {
    delete framework_;
    framework_ = nullptr;
  }
  static Affinity* framework_;
};

Affinity* TopKTest::framework_ = nullptr;

/// WA reference: evaluate everything, sort, truncate.
std::vector<double> ReferenceValues(const Affinity& fw, Measure measure, std::size_t k,
                                    bool largest) {
  std::vector<double> values;
  if (IsLocation(measure)) {
    for (ts::SeriesId v = 0; v < fw.data().n(); ++v) {
      values.push_back(*fw.model().SeriesMeasure(measure, v));
    }
  } else {
    for (const auto& e : ts::AllSequencePairs(fw.data().n())) {
      values.push_back(*fw.model().PairMeasure(measure, e));
    }
  }
  std::sort(values.begin(), values.end());
  if (largest) std::reverse(values.begin(), values.end());
  values.resize(std::min(k, values.size()));
  return values;
}

struct TopKCase {
  Measure measure;
  std::size_t k;
  bool largest;
};

class TopKEquivalence : public ::testing::TestWithParam<TopKCase> {};

TEST_P(TopKEquivalence, IndexMatchesReference) {
  ts::DatasetSpec spec;
  spec.num_series = 36;
  spec.num_samples = 100;
  spec.num_clusters = 3;
  spec.noise_level = 0.02;
  spec.seed = 5;
  auto fw = Affinity::Build(ts::MakeSensorData(spec).matrix);
  ASSERT_TRUE(fw.ok());
  const TopKCase c = GetParam();

  auto result = fw->scape()->TopK(c.measure, c.k, c.largest);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::vector<double> expected = ReferenceValues(*fw, c.measure, c.k, c.largest);
  ASSERT_EQ(result->entries.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(result->entries[i].value, expected[i], 1e-9 * (1.0 + std::fabs(expected[i])))
        << "rank " << i;
  }
  // Best-first ordering.
  for (std::size_t i = 1; i < result->entries.size(); ++i) {
    if (c.largest) {
      EXPECT_GE(result->entries[i - 1].value, result->entries[i].value - 1e-12);
    } else {
      EXPECT_LE(result->entries[i - 1].value, result->entries[i].value + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TopKEquivalence,
    ::testing::Values(TopKCase{Measure::kCovariance, 10, true},
                      TopKCase{Measure::kCovariance, 10, false},
                      TopKCase{Measure::kDotProduct, 25, true},
                      TopKCase{Measure::kCorrelation, 10, true},
                      TopKCase{Measure::kCorrelation, 10, false},
                      TopKCase{Measure::kCorrelation, 100, true},
                      TopKCase{Measure::kCosine, 15, true},
                      TopKCase{Measure::kMean, 5, true},
                      TopKCase{Measure::kMedian, 5, false},
                      TopKCase{Measure::kMode, 7, true}));

TEST_F(TopKTest, KZeroIsEmpty) {
  auto result = framework_->scape()->TopK(Measure::kCorrelation, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->entries.empty());
}

TEST_F(TopKTest, KLargerThanPopulationReturnsAll) {
  auto result = framework_->scape()->TopK(Measure::kMean, 10000, true);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entries.size(), framework_->data().n());
}

TEST_F(TopKTest, RejectsNonIndexableMeasures) {
  EXPECT_EQ(framework_->scape()->TopK(Measure::kJaccard, 5).status().code(),
            StatusCode::kUnimplemented);
}

TEST_F(TopKTest, ThresholdAlgorithmPrunesForDerivedMeasures) {
  // For a small k the TA must examine far fewer entries than the index holds.
  auto result = framework_->scape()->TopK(Measure::kCorrelation, 5, true);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entries.size(), 5u);
  EXPECT_LT(result->examined, framework_->model().relationship_count());
}

TEST_F(TopKTest, EngineDispatchAgreesAcrossMethods) {
  TopKRequest request;
  request.measure = Measure::kCovariance;
  request.k = 12;
  auto scape = framework_->engine().TopK(request, QueryMethod::kScape);
  auto wa = framework_->engine().TopK(request, QueryMethod::kAffine);
  auto wn = framework_->engine().TopK(request, QueryMethod::kNaive);
  ASSERT_TRUE(scape.ok());
  ASSERT_TRUE(wa.ok());
  ASSERT_TRUE(wn.ok());
  ASSERT_EQ(scape->entries.size(), 12u);
  ASSERT_EQ(wa->entries.size(), 12u);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_NEAR(scape->entries[i].value, wa->entries[i].value,
                1e-9 * (1.0 + std::fabs(wa->entries[i].value)));
    // WN is the ground truth; WA/SCAPE approximate it closely on clean data.
    EXPECT_NEAR(scape->entries[i].value, wn->entries[i].value,
                1e-3 * (1.0 + std::fabs(wn->entries[i].value)));
  }
}

TEST_F(TopKTest, EngineValidation) {
  TopKRequest request;
  request.measure = Measure::kCorrelation;
  request.k = 3;
  EXPECT_FALSE(framework_->engine().TopK(request, QueryMethod::kDft).ok());

  const ts::DataMatrix& data = framework_->data();
  QueryEngine bare(&data);
  EXPECT_EQ(bare.TopK(request, QueryMethod::kScape).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(bare.TopK(request, QueryMethod::kNaive).ok());
}

TEST_F(TopKTest, PairEntriesCarryNoSeries) {
  // Pair-measure entries must not pretend to reference series 0: absence
  // is the explicit kNoSeries sentinel, never a default of 0.
  auto scape = framework_->scape()->TopK(Measure::kCorrelation, 8, true);
  ASSERT_TRUE(scape.ok());
  for (const auto& entry : scape->entries) {
    EXPECT_FALSE(entry.has_series());
    EXPECT_EQ(entry.series, kNoSeries);
  }
  TopKRequest request;
  request.measure = Measure::kCovariance;
  request.k = 8;
  for (QueryMethod method : {QueryMethod::kNaive, QueryMethod::kAffine}) {
    auto engine_result = framework_->engine().TopK(request, method);
    ASSERT_TRUE(engine_result.ok());
    for (const auto& entry : engine_result->entries) {
      EXPECT_FALSE(entry.has_series());
    }
  }
}

TEST_F(TopKTest, LocationEntriesCarryARealSeriesIncludingZero) {
  // All n series fit in the result, so series 0 must appear as a *valid*
  // id — distinguishable from the sentinel.
  auto result = framework_->scape()->TopK(Measure::kMean, 10000, true);
  ASSERT_TRUE(result.ok());
  bool saw_series_zero = false;
  for (const auto& entry : result->entries) {
    EXPECT_TRUE(entry.has_series());
    EXPECT_LT(entry.series, framework_->data().n());
    if (entry.series == 0) saw_series_zero = true;
  }
  EXPECT_TRUE(saw_series_zero);
}

TEST(MergeTopKFn, MergesBestFirstRunsWithDeterministicTies) {
  const auto entry = [](ts::SeriesId u, ts::SeriesId v, double value) {
    return ScapeTopKEntry{ts::SequencePair(u, v), kNoSeries, value};
  };
  std::vector<ScapeTopKResult> runs(3);
  runs[0].entries = {entry(0, 1, 9.0), entry(0, 2, 5.0), entry(0, 3, 1.0)};
  runs[0].examined = 7;
  runs[1].entries = {entry(4, 5, 8.0), entry(4, 6, 5.0)};
  runs[1].examined = 3;
  runs[2].entries = {};  // an empty run (e.g. a shard smaller than k)
  const ScapeTopKResult merged = MergeTopK(runs, 4, /*largest=*/true);
  ASSERT_EQ(merged.entries.size(), 4u);
  EXPECT_EQ(merged.examined, 10u);
  EXPECT_DOUBLE_EQ(merged.entries[0].value, 9.0);
  EXPECT_DOUBLE_EQ(merged.entries[1].value, 8.0);
  // Tie at 5.0 breaks by pair id: (0,2) before (4,6) regardless of run order.
  EXPECT_EQ(merged.entries[2].pair, ts::SequencePair(0, 2));
  EXPECT_EQ(merged.entries[3].pair, ts::SequencePair(4, 6));

  // Smallest-first direction, k larger than the union.
  std::vector<ScapeTopKResult> asc(2);
  asc[0].entries = {entry(0, 1, 1.0), entry(0, 2, 3.0)};
  asc[1].entries = {entry(3, 4, 2.0)};
  const ScapeTopKResult small = MergeTopK(asc, 10, /*largest=*/false);
  ASSERT_EQ(small.entries.size(), 3u);
  EXPECT_DOUBLE_EQ(small.entries[0].value, 1.0);
  EXPECT_DOUBLE_EQ(small.entries[1].value, 2.0);
  EXPECT_DOUBLE_EQ(small.entries[2].value, 3.0);
}

TEST_F(TopKTest, TopPairsAreMutuallyDistinct) {
  auto result = framework_->scape()->TopK(Measure::kCorrelation, 50, true);
  ASSERT_TRUE(result.ok());
  std::vector<ts::SequencePair> pairs;
  for (const auto& entry : result->entries) pairs.push_back(entry.pair);
  std::sort(pairs.begin(), pairs.end());
  EXPECT_EQ(std::adjacent_find(pairs.begin(), pairs.end()), pairs.end());
}

}  // namespace
}  // namespace affinity::core
