// Tests for the measure taxonomy and naive evaluation (core/measures.h).

#include "core/measures.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ts/stats.h"

namespace affinity::core {
namespace {

TEST(Taxonomy, ClassAssignment) {
  EXPECT_EQ(ClassOf(Measure::kMean), MeasureClass::kLocation);
  EXPECT_EQ(ClassOf(Measure::kMedian), MeasureClass::kLocation);
  EXPECT_EQ(ClassOf(Measure::kMode), MeasureClass::kLocation);
  EXPECT_EQ(ClassOf(Measure::kCovariance), MeasureClass::kDispersion);
  EXPECT_EQ(ClassOf(Measure::kDotProduct), MeasureClass::kDispersion);
  EXPECT_EQ(ClassOf(Measure::kCorrelation), MeasureClass::kDerived);
  EXPECT_EQ(ClassOf(Measure::kCosine), MeasureClass::kDerived);
  EXPECT_EQ(ClassOf(Measure::kJaccard), MeasureClass::kDerived);
  EXPECT_EQ(ClassOf(Measure::kDice), MeasureClass::kDerived);
}

TEST(Taxonomy, Predicates) {
  EXPECT_TRUE(IsLocation(Measure::kMode));
  EXPECT_TRUE(IsDispersion(Measure::kDotProduct));
  EXPECT_TRUE(IsDerived(Measure::kDice));
  EXPECT_FALSE(IsDerived(Measure::kMean));
}

TEST(Taxonomy, BaseMeasureOfDerived) {
  EXPECT_EQ(BaseMeasure(Measure::kCorrelation), Measure::kCovariance);
  EXPECT_EQ(BaseMeasure(Measure::kCosine), Measure::kDotProduct);
  EXPECT_EQ(BaseMeasure(Measure::kJaccard), Measure::kDotProduct);
  EXPECT_EQ(BaseMeasure(Measure::kDice), Measure::kDotProduct);
  EXPECT_EQ(BaseMeasure(Measure::kMean), Measure::kMean);  // identity on L/T
}

TEST(Taxonomy, SeparableNormalizers) {
  EXPECT_TRUE(HasSeparableNormalizer(Measure::kCorrelation));
  EXPECT_TRUE(HasSeparableNormalizer(Measure::kCosine));
  EXPECT_FALSE(HasSeparableNormalizer(Measure::kJaccard));
  EXPECT_FALSE(HasSeparableNormalizer(Measure::kDice));
  EXPECT_FALSE(HasSeparableNormalizer(Measure::kCovariance));
}

TEST(Taxonomy, NamesAreDistinct) {
  std::set<std::string_view> names;
  for (Measure m : AllMeasures()) names.insert(MeasureName(m));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumMeasures));
}

TEST(Taxonomy, MeasureLists) {
  EXPECT_EQ(AllMeasures().size(), static_cast<std::size_t>(kNumMeasures));
  EXPECT_EQ(LocationMeasures().size(), 3u);
  EXPECT_EQ(DispersionMeasures().size(), 2u);
  EXPECT_EQ(DerivedMeasures().size(), 4u);
}

TEST(NaiveLocation, MatchesStatsKernels) {
  const double x[] = {4, 1, 3, 2, 5};
  EXPECT_DOUBLE_EQ(*NaiveLocationMeasure(Measure::kMean, x, 5), 3.0);
  EXPECT_DOUBLE_EQ(*NaiveLocationMeasure(Measure::kMedian, x, 5), 3.0);
  EXPECT_DOUBLE_EQ(*NaiveLocationMeasure(Measure::kMode, x, 5),
                   ts::stats::NaiveModeEstimate(x, 5));
}

TEST(NaiveLocation, RejectsPairMeasures) {
  const double x[] = {1, 2};
  EXPECT_FALSE(NaiveLocationMeasure(Measure::kCovariance, x, 2).ok());
  EXPECT_FALSE(NaiveLocationMeasure(Measure::kCorrelation, x, 2).ok());
}

TEST(NaivePair, CovarianceAndDot) {
  const double x[] = {1, 2, 3};
  const double y[] = {4, 6, 8};
  // The fused path computes the population covariance from co-moments
  // (Σxy/m − μμ); the centered scalar oracle agrees to the documented
  // round-off tolerance (DESIGN.md §10), not bit for bit.
  EXPECT_NEAR(*NaivePairMeasure(Measure::kCovariance, x, y, 3),
              ts::stats::Covariance(x, y, 3), 1e-12);
  EXPECT_DOUBLE_EQ(*NaivePairMeasure(Measure::kCovariance, x, y, 3),
                   *PairMeasureFromMoments(Measure::kCovariance, ComputePairMoments(x, y, 3)));
  EXPECT_DOUBLE_EQ(*NaivePairMeasure(Measure::kDotProduct, x, y, 3), 40.0);
}

TEST(NaivePair, CorrelationMatchesStats) {
  const double x[] = {1, 2, 3, 5};
  const double y[] = {2, 2, 4, 7};
  EXPECT_NEAR(*NaivePairMeasure(Measure::kCorrelation, x, y, 4),
              ts::stats::Correlation(x, y, 4), 1e-12);
}

TEST(NaivePair, MatchesScalarOracle) {
  // The blocked moments path vs the seed's sequential multi-scan oracle,
  // across every pair measure (DESIGN.md §10 tolerance).
  const double x[] = {1.5, -2.25, 3.0, 5.5, -0.75, 4.0, 2.0};
  const double y[] = {2.0, 2.5, -4.0, 7.25, 1.0, -3.5, 0.5};
  for (const Measure m : {Measure::kCovariance, Measure::kDotProduct, Measure::kCorrelation,
                          Measure::kCosine, Measure::kJaccard, Measure::kDice}) {
    const double fused = *NaivePairMeasure(m, x, y, 7);
    const double oracle = *NaivePairMeasureScalar(m, x, y, 7);
    EXPECT_NEAR(fused, oracle, 1e-12 * (1.0 + std::fabs(oracle))) << MeasureName(m);
  }
}

TEST(NaivePair, CosineKnownValue) {
  const double x[] = {1, 0};
  const double y[] = {1, 1};
  EXPECT_NEAR(*NaivePairMeasure(Measure::kCosine, x, y, 2), 1.0 / std::sqrt(2.0), 1e-14);
}

TEST(NaivePair, CosineOfSelfIsOne) {
  const double x[] = {2, 3, 4};
  EXPECT_NEAR(*NaivePairMeasure(Measure::kCosine, x, x, 3), 1.0, 1e-14);
}

TEST(NaivePair, JaccardAndDiceIdentity) {
  // For identical vectors Jaccard = Dice = 1.
  const double x[] = {1, 2, 3};
  EXPECT_NEAR(*NaivePairMeasure(Measure::kJaccard, x, x, 3), 1.0, 1e-14);
  EXPECT_NEAR(*NaivePairMeasure(Measure::kDice, x, x, 3), 1.0, 1e-14);
}

TEST(NaivePair, JaccardKnownValue) {
  const double x[] = {1, 0};
  const double y[] = {0, 1};
  // dot = 0 → Jaccard = 0, Dice = 0.
  EXPECT_DOUBLE_EQ(*NaivePairMeasure(Measure::kJaccard, x, y, 2), 0.0);
  EXPECT_DOUBLE_EQ(*NaivePairMeasure(Measure::kDice, x, y, 2), 0.0);
}

TEST(NaivePair, DegenerateZeroVectors) {
  const double x[] = {0, 0};
  EXPECT_DOUBLE_EQ(*NaivePairMeasure(Measure::kCosine, x, x, 2), 0.0);
  EXPECT_DOUBLE_EQ(*NaivePairMeasure(Measure::kJaccard, x, x, 2), 0.0);
  EXPECT_DOUBLE_EQ(*NaivePairMeasure(Measure::kDice, x, x, 2), 0.0);
}

TEST(NaivePair, RejectsLocationMeasures) {
  const double x[] = {1, 2};
  EXPECT_FALSE(NaivePairMeasure(Measure::kMean, x, x, 2).ok());
}

TEST(NaiveNormalizerFn, CorrelationAndCosine) {
  const double x[] = {1, 2, 3};
  const double y[] = {4, 5, 6};
  EXPECT_DOUBLE_EQ(*NaiveNormalizer(Measure::kCorrelation, x, y, 3),
                   ts::stats::CorrelationNormalizer(x, y, 3));
  EXPECT_DOUBLE_EQ(
      *NaiveNormalizer(Measure::kCosine, x, y, 3),
      std::sqrt(ts::stats::DotProduct(x, x, 3) * ts::stats::DotProduct(y, y, 3)));
}

TEST(NaiveNormalizerFn, RejectsNonSeparable) {
  const double x[] = {1, 2};
  EXPECT_FALSE(NaiveNormalizer(Measure::kJaccard, x, x, 2).ok());
  EXPECT_FALSE(NaiveNormalizer(Measure::kCovariance, x, x, 2).ok());
}

TEST(DerivedDefinition, CorrelationIsCovOverNormalizer) {
  const double x[] = {1, 3, 2, 5, 4};
  const double y[] = {2, 3, 1, 6, 5};
  const double cov = *NaivePairMeasure(Measure::kCovariance, x, y, 5);
  const double u = *NaiveNormalizer(Measure::kCorrelation, x, y, 5);
  EXPECT_NEAR(*NaivePairMeasure(Measure::kCorrelation, x, y, 5), cov / u, 1e-14);
}

TEST(DerivedDefinition, CosineIsDotOverNormalizer) {
  const double x[] = {1, 3, 2};
  const double y[] = {2, 3, 1};
  const double dot = *NaivePairMeasure(Measure::kDotProduct, x, y, 3);
  const double u = *NaiveNormalizer(Measure::kCosine, x, y, 3);
  EXPECT_NEAR(*NaivePairMeasure(Measure::kCosine, x, y, 3), dot / u, 1e-14);
}

}  // namespace
}  // namespace affinity::core
