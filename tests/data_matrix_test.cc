// Tests for DataMatrix, SequencePair and the pair vocabulary
// (ts/data_matrix.h).

#include "ts/data_matrix.h"

#include <set>

#include <gtest/gtest.h>

namespace affinity::ts {
namespace {

la::Matrix SmallMatrix() {
  return la::Matrix::FromRows({{1, 10, 100}, {2, 20, 200}, {3, 30, 300}, {4, 40, 400}});
}

TEST(SequencePair, NormalizesOrder) {
  const SequencePair a(3, 1);
  EXPECT_EQ(a.u, 1u);
  EXPECT_EQ(a.v, 3u);
  EXPECT_EQ(a, SequencePair(1, 3));
}

TEST(SequencePair, OrderingIsLexicographic) {
  EXPECT_LT(SequencePair(0, 1), SequencePair(0, 2));
  EXPECT_LT(SequencePair(0, 9), SequencePair(1, 2));
}

TEST(SequencePair, KeysAreUniquePerPair) {
  std::set<std::uint64_t> keys;
  for (SeriesId u = 0; u < 30; ++u) {
    for (SeriesId v = u + 1; v < 30; ++v) keys.insert(SequencePair(u, v).Key());
  }
  EXPECT_EQ(keys.size(), SequencePairCount(30));
}

TEST(SequencePair, HashSpreads) {
  SequencePairHash h;
  std::set<std::size_t> hashes;
  for (SeriesId u = 0; u < 20; ++u) {
    for (SeriesId v = u + 1; v < 20; ++v) hashes.insert(h(SequencePair(u, v)));
  }
  // All 190 pairs should hash distinctly (SplitMix64 finalizer).
  EXPECT_EQ(hashes.size(), SequencePairCount(20));
}

TEST(SequencePairCountFn, MatchesFormula) {
  EXPECT_EQ(SequencePairCount(0), 0u);
  EXPECT_EQ(SequencePairCount(1), 0u);
  EXPECT_EQ(SequencePairCount(2), 1u);
  EXPECT_EQ(SequencePairCount(670), 670u * 669u / 2u);
  EXPECT_EQ(SequencePairCount(996), 996u * 995u / 2u);
}

TEST(AllSequencePairs, EnumeratesUpperTriangle) {
  const auto pairs = AllSequencePairs(4);
  ASSERT_EQ(pairs.size(), 6u);
  EXPECT_EQ(pairs[0], SequencePair(0, 1));
  EXPECT_EQ(pairs[5], SequencePair(2, 3));
  for (const auto& e : pairs) EXPECT_LT(e.u, e.v);
}

TEST(DataMatrix, DefaultNames) {
  DataMatrix dm(SmallMatrix());
  EXPECT_EQ(dm.m(), 4u);
  EXPECT_EQ(dm.n(), 3u);
  EXPECT_EQ(dm.name(0), "s0");
  EXPECT_EQ(dm.name(2), "s2");
}

TEST(DataMatrix, ExplicitNames) {
  DataMatrix dm(SmallMatrix(), {"a", "b", "c"});
  EXPECT_EQ(dm.name(1), "b");
  EXPECT_EQ(dm.names().size(), 3u);
}

TEST(DataMatrix, ColumnAccess) {
  DataMatrix dm(SmallMatrix());
  const la::Vector c1 = dm.Column(1);
  EXPECT_EQ(c1[0], 10.0);
  EXPECT_EQ(c1[3], 40.0);
  EXPECT_EQ(dm.ColumnData(2)[1], 200.0);
}

TEST(DataMatrix, FromSeries) {
  std::vector<TimeSeries> series;
  series.emplace_back("x", la::Vector{1, 2, 3});
  series.emplace_back("y", la::Vector{4, 5, 6});
  auto dm = DataMatrix::FromSeries(series);
  ASSERT_TRUE(dm.ok());
  EXPECT_EQ(dm->m(), 3u);
  EXPECT_EQ(dm->n(), 2u);
  EXPECT_EQ(dm->name(1), "y");
  EXPECT_EQ(dm->matrix()(2, 0), 3.0);
}

TEST(DataMatrix, FromSeriesRejectsMismatchedLengths) {
  std::vector<TimeSeries> series;
  series.emplace_back("x", la::Vector{1, 2, 3});
  series.emplace_back("y", la::Vector{4, 5});
  EXPECT_FALSE(DataMatrix::FromSeries(series).ok());
}

TEST(DataMatrix, FromSeriesRejectsEmpty) {
  EXPECT_FALSE(DataMatrix::FromSeries({}).ok());
}

TEST(DataMatrix, SequencePairMatrixExtractsColumns) {
  DataMatrix dm(SmallMatrix());
  const la::Matrix se = dm.SequencePairMatrix(SequencePair(0, 2));
  EXPECT_EQ(se.rows(), 4u);
  EXPECT_EQ(se.cols(), 2u);
  EXPECT_EQ(se(0, 0), 1.0);
  EXPECT_EQ(se(0, 1), 100.0);
}

TEST(DataMatrix, FindByName) {
  DataMatrix dm(SmallMatrix(), {"alpha", "beta", "gamma"});
  auto id = dm.FindByName("beta");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 1u);
  EXPECT_EQ(dm.FindByName("delta").status().code(), StatusCode::kNotFound);
}

TEST(DataMatrix, PrefixKeepsLeadingSeries) {
  DataMatrix dm(SmallMatrix(), {"a", "b", "c"});
  const DataMatrix two = dm.Prefix(2);
  EXPECT_EQ(two.n(), 2u);
  EXPECT_EQ(two.m(), 4u);
  EXPECT_EQ(two.name(1), "b");
  EXPECT_EQ(two.matrix()(3, 1), 40.0);
}

TEST(TimeSeries, TimestampArithmetic) {
  TimeSeries s("t", la::Vector{1, 2}, 120.0, 1000);
  EXPECT_EQ(s.length(), 2u);
  EXPECT_DOUBLE_EQ(s.TimestampOf(0), 1000.0);
  EXPECT_DOUBLE_EQ(s.TimestampOf(1), 1120.0);
}

}  // namespace
}  // namespace affinity::ts
