// Tests for the sharded streaming service (src/shard): partitioner
// invariants, scatter-gather equivalence with the unsharded baseline at
// 1/2/8 shards × 1/2/8 threads, freshness-bounded (blended) answers, and
// the shard-manifest round-trip.

#include "shard/sharded.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/serialize.h"
#include "ts/generators.h"
#include "ts/ingest.h"

namespace affinity::shard {
namespace {

using core::FreshnessOptions;
using core::Measure;
using core::MecRequest;
using core::MetRequest;
using core::MerRequest;
using core::QueryMethod;
using core::TopKRequest;

std::string TempPath(const std::string& name) { return ::testing::TempDir() + "/" + name; }

std::vector<std::string> Names(std::size_t n) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back("s" + std::to_string(i));
  return out;
}

ts::Dataset TestData(std::size_t n = 16, std::uint64_t seed = 12) {
  ts::DatasetSpec spec;
  spec.num_series = n;
  spec.num_samples = 240;
  spec.num_clusters = 3;
  spec.noise_level = 0.02;
  spec.seed = seed;
  return ts::MakeSensorData(spec);
}

ShardedOptions SmallOptions(std::size_t shards, std::size_t threads = 1) {
  ShardedOptions options;
  options.shards = shards;
  options.streaming.window = 40;
  options.streaming.rebuild_interval = 20;
  options.streaming.mode = core::UpdateMode::kIncremental;
  options.streaming.build.afclst.k = 2;
  options.streaming.build.build_dft = false;
  options.streaming.build.threads = threads;
  return options;
}

/// Feeds rows [begin, end) of `ds` into the sharded service.
void Feed(ShardedAffinity* service, const ts::Dataset& ds, std::size_t begin, std::size_t end) {
  std::vector<double> row(ds.matrix.n());
  for (std::size_t i = begin; i < end; ++i) {
    for (std::size_t j = 0; j < ds.matrix.n(); ++j) row[j] = ds.matrix.matrix()(i, j);
    ASSERT_TRUE(service->Append(row).ok());
  }
}

void FeedStream(core::StreamingAffinity* stream, const ts::Dataset& ds, std::size_t begin,
                std::size_t end) {
  std::vector<double> row(ds.matrix.n());
  for (std::size_t i = begin; i < end; ++i) {
    for (std::size_t j = 0; j < ds.matrix.n(); ++j) row[j] = ds.matrix.matrix()(i, j);
    ASSERT_TRUE(stream->Append(row).ok());
  }
}

// ---------------------------------------------------------------------------
// SeriesPartitioner.
// ---------------------------------------------------------------------------

TEST(Partitioner, RangeIsContiguousDisjointCover) {
  auto p = SeriesPartitioner::Create(Names(10), 3, PartitionScheme::kRange);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->shards(), 3u);
  std::set<ts::SeriesId> seen;
  for (std::size_t s = 0; s < 3; ++s) {
    const auto& group = p->group(s);
    EXPECT_GE(group.size(), 2u);
    EXPECT_TRUE(std::is_sorted(group.begin(), group.end()));
    // Contiguous block.
    EXPECT_EQ(group.back() - group.front() + 1, group.size());
    for (ts::SeriesId id : group) {
      EXPECT_TRUE(seen.insert(id).second) << "series in two shards";
      EXPECT_EQ(p->shard_of(id), s);
      EXPECT_EQ(p->global_id(s, p->local_id(id)), id);
    }
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Partitioner, HashIsBalancedDeterministicCover) {
  const auto names = Names(17);
  auto a = SeriesPartitioner::Create(names, 4, PartitionScheme::kHash);
  auto b = SeriesPartitioner::Create(names, 4, PartitionScheme::kHash);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::set<ts::SeriesId> seen;
  for (std::size_t s = 0; s < 4; ++s) {
    // Balanced within one series per shard: 17/4 → sizes in {4, 5}.
    EXPECT_GE(a->group(s).size(), 4u);
    EXPECT_LE(a->group(s).size(), 5u);
    EXPECT_EQ(a->group(s), b->group(s)) << "hash partition must be deterministic";
    for (ts::SeriesId id : a->group(s)) EXPECT_TRUE(seen.insert(id).second);
  }
  EXPECT_EQ(seen.size(), 17u);
}

TEST(Partitioner, CrossPairCountMatchesEnumeration) {
  auto p = SeriesPartitioner::Create(Names(9), 2, PartitionScheme::kHash);
  ASSERT_TRUE(p.ok());
  std::size_t cross = 0;
  for (std::size_t u = 0; u < 9; ++u) {
    for (std::size_t v = u + 1; v < 9; ++v) {
      if (p->shard_of(u) != p->shard_of(v)) ++cross;
    }
  }
  EXPECT_EQ(p->cross_pair_count(), cross);
}

TEST(Partitioner, RejectsBadGeometry) {
  EXPECT_FALSE(SeriesPartitioner::Create(Names(4), 0, PartitionScheme::kRange).ok());
  EXPECT_FALSE(SeriesPartitioner::Create(Names(4), 3, PartitionScheme::kRange).ok());
  EXPECT_FALSE(SeriesPartitioner::Create(Names(5), 3, PartitionScheme::kHash).ok());
  EXPECT_TRUE(SeriesPartitioner::Create(Names(6), 3, PartitionScheme::kRange).ok());
}

TEST(Partitioner, FromAssignmentRoundTrips) {
  auto p = SeriesPartitioner::Create(Names(11), 3, PartitionScheme::kHash);
  ASSERT_TRUE(p.ok());
  std::vector<std::uint32_t> assignment(11);
  for (std::size_t i = 0; i < 11; ++i) {
    assignment[i] = static_cast<std::uint32_t>(p->shard_of(i));
  }
  auto q = SeriesPartitioner::FromAssignment(assignment, 3, PartitionScheme::kHash);
  ASSERT_TRUE(q.ok());
  for (std::size_t s = 0; s < 3; ++s) EXPECT_EQ(p->group(s), q->group(s));
  // Out-of-range shard id rejected.
  assignment[0] = 7;
  EXPECT_FALSE(SeriesPartitioner::FromAssignment(assignment, 3, PartitionScheme::kHash).ok());
}

// ---------------------------------------------------------------------------
// Construction validation (Status, never a crash).
// ---------------------------------------------------------------------------

TEST(Sharded, CreateValidatesOptions) {
  EXPECT_FALSE(ShardedAffinity::Create(Names(16), SmallOptions(0)).ok());
  EXPECT_FALSE(ShardedAffinity::Create(Names(16), SmallOptions(9)).ok());  // 16 < 2·9
  ShardedOptions bad = SmallOptions(2);
  bad.streaming.window = 1;
  EXPECT_FALSE(ShardedAffinity::Create(Names(16), bad).ok());
  bad = SmallOptions(2);
  bad.streaming.rebuild_interval = 0;
  EXPECT_FALSE(ShardedAffinity::Create(Names(16), bad).ok());
  bad = SmallOptions(2);
  bad.streaming.incremental.exact_refit_period = 0;
  EXPECT_FALSE(ShardedAffinity::Create(Names(16), bad).ok());
  bad = SmallOptions(2);
  bad.streaming.incremental.escalation_factor = 0.0;
  EXPECT_FALSE(ShardedAffinity::Create(Names(16), bad).ok());
  EXPECT_TRUE(ShardedAffinity::Create(Names(16), SmallOptions(2)).ok());
}

TEST(Sharded, AppendValidatesRowWidth) {
  auto service = ShardedAffinity::Create(Names(8), SmallOptions(2));
  ASSERT_TRUE(service.ok());
  EXPECT_FALSE(service->Append({1.0, 2.0}).ok());
  EXPECT_TRUE(service->Append(std::vector<double>(8, 1.0)).ok());
}

TEST(Sharded, QueriesFailBeforeFirstSnapshot) {
  auto service = ShardedAffinity::Create(Names(8), SmallOptions(2));
  ASSERT_TRUE(service.ok());
  EXPECT_FALSE(service->ready());
  MetRequest request{Measure::kCorrelation, 0.9, true};
  EXPECT_EQ(service->Met(request).status().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Ingest semantics.
// ---------------------------------------------------------------------------

TEST(Sharded, ShardsRefreshInLockstep) {
  const ts::Dataset ds = TestData();
  auto service = ShardedAffinity::Create(ds.matrix.names(), SmallOptions(4));
  ASSERT_TRUE(service.ok());
  std::vector<double> row(ds.matrix.n());
  std::size_t refreshes = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t j = 0; j < ds.matrix.n(); ++j) row[j] = ds.matrix.matrix()(i, j);
    const core::AppendResult result = service->Append(row);
    ASSERT_TRUE(result.ok());
    const bool expect_refresh = (i + 1) == 40 || ((i + 1) > 40 && (i + 1) % 20 == 0);
    EXPECT_EQ(result.refreshed, expect_refresh) << "row " << i + 1;
    if (result.refreshed) ++refreshes;
  }
  EXPECT_EQ(refreshes, 4u);
  EXPECT_TRUE(service->ready());
  EXPECT_EQ(service->rows_ingested(), 100u);
  // Lockstep: every shard's snapshot is the same age.
  for (const std::size_t age : service->snapshot_ages()) EXPECT_EQ(age, 0u);
  // Maintenance aggregation saw every shard's refreshes (first build at 40
  // plus 3 incremental refreshes per shard).
  EXPECT_EQ(service->maintenance().refreshes, 4u * 3u);
  EXPECT_GT(service->maintenance().tree_rekeys, 0u);
}

// ---------------------------------------------------------------------------
// Scatter-gather equivalence with the unsharded baseline.
// ---------------------------------------------------------------------------

/// Canonical order for comparing selection answers.
template <typename T>
std::vector<T> Sorted(std::vector<T> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(Sharded, AnswersMatchUnshardedBaseline) {
  const ts::Dataset ds = TestData();
  // Unsharded baseline over the same 120 rows.
  core::StreamingOptions base_options = SmallOptions(1).streaming;
  auto baseline = core::StreamingAffinity::Create(ds.matrix.names(), base_options);
  ASSERT_TRUE(baseline.ok());
  FeedStream(&*baseline, ds, 0, 120);
  ASSERT_TRUE(baseline->ready());

  const MetRequest met{Measure::kCorrelation, 0.9, true};
  const MerRequest mer{Measure::kCovariance, -0.1, 0.1};
  const MetRequest met_mean{Measure::kMean, 0.0, true};
  const TopKRequest topk{Measure::kCorrelation, 5, true};
  MecRequest mec;
  mec.measure = Measure::kCovariance;
  mec.ids = {0, 3, 7, 9, 12, 15};  // spans every shard at 8 shards

  auto base_met = baseline->Met(met);
  auto base_mer = baseline->Mer(mer);
  auto base_met_mean = baseline->Met(met_mean);
  auto base_topk = baseline->TopK(topk);
  auto base_mec = baseline->Mec(mec);
  ASSERT_TRUE(base_met.ok());
  ASSERT_TRUE(base_mer.ok());
  ASSERT_TRUE(base_met_mean.ok());
  ASSERT_TRUE(base_topk.ok());
  ASSERT_TRUE(base_mec.ok());
  ASSERT_GT(base_met->pairs.size(), 0u);
  ASSERT_GT(base_mer->pairs.size(), 0u);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) + " threads=" + std::to_string(threads));
      auto service = ShardedAffinity::Create(ds.matrix.names(), SmallOptions(shards, threads));
      ASSERT_TRUE(service.ok());
      Feed(&*service, ds, 0, 120);
      ASSERT_TRUE(service->ready());

      auto s_met = service->Met(met);
      ASSERT_TRUE(s_met.ok());
      EXPECT_EQ(Sorted(s_met->result.pairs), Sorted(base_met->pairs));

      auto s_mer = service->Mer(mer);
      ASSERT_TRUE(s_mer.ok());
      EXPECT_EQ(Sorted(s_mer->result.pairs), Sorted(base_mer->pairs));

      auto s_met_mean = service->Met(met_mean);
      ASSERT_TRUE(s_met_mean.ok());
      EXPECT_EQ(Sorted(s_met_mean->result.series), Sorted(base_met_mean->series));

      auto s_topk = service->TopK(topk);
      ASSERT_TRUE(s_topk.ok());
      ASSERT_EQ(s_topk->result.entries.size(), base_topk->entries.size());
      // Same entity set, same order by value; values equal to a few ulps
      // (per-shard WA and cross-shard WN round differently).
      std::vector<ts::SequencePair> s_pairs;
      std::vector<ts::SequencePair> b_pairs;
      for (std::size_t i = 0; i < base_topk->entries.size(); ++i) {
        s_pairs.push_back(s_topk->result.entries[i].pair);
        b_pairs.push_back(base_topk->entries[i].pair);
        EXPECT_NEAR(s_topk->result.entries[i].value, base_topk->entries[i].value, 1e-9);
      }
      EXPECT_EQ(Sorted(s_pairs), Sorted(b_pairs));

      auto s_mec = service->Mec(mec);
      ASSERT_TRUE(s_mec.ok());
      for (std::size_t i = 0; i < mec.ids.size(); ++i) {
        for (std::size_t j = 0; j < mec.ids.size(); ++j) {
          EXPECT_NEAR(s_mec->response.pair_values(i, j), base_mec->pair_values(i, j), 1e-9)
              << "cell " << i << "," << j;
        }
      }

      // The executed plan is shard-aware: at N > 1 the rationale records
      // the scatter-gather and the kAuto dispatch still resolves.
      if (shards > 1) {
        EXPECT_NE(s_met->result.plan.rationale.find("scatter-gather"), std::string::npos);
      }
    }
  }
}

TEST(Sharded, HashPartitionAlsoMatchesBaseline) {
  const ts::Dataset ds = TestData();
  core::StreamingOptions base_options = SmallOptions(1).streaming;
  auto baseline = core::StreamingAffinity::Create(ds.matrix.names(), base_options);
  ASSERT_TRUE(baseline.ok());
  FeedStream(&*baseline, ds, 0, 120);

  ShardedOptions options = SmallOptions(4);
  options.partition = PartitionScheme::kHash;
  auto service = ShardedAffinity::Create(ds.matrix.names(), options);
  ASSERT_TRUE(service.ok());
  Feed(&*service, ds, 0, 120);

  const MetRequest met{Measure::kCorrelation, 0.9, true};
  auto base = baseline->Met(met);
  auto sharded = service->Met(met);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(Sorted(sharded->result.pairs), Sorted(base->pairs));
}

TEST(Sharded, ResultsAreIdenticalAcrossThreadCounts) {
  const ts::Dataset ds = TestData();
  std::vector<ShardedTopK> per_thread;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    auto service = ShardedAffinity::Create(ds.matrix.names(), SmallOptions(4, threads));
    ASSERT_TRUE(service.ok());
    Feed(&*service, ds, 0, 100);
    auto topk = service->TopK(TopKRequest{Measure::kCovariance, 7, true});
    ASSERT_TRUE(topk.ok());
    per_thread.push_back(std::move(*topk));
  }
  for (std::size_t t = 1; t < per_thread.size(); ++t) {
    ASSERT_EQ(per_thread[t].result.entries.size(), per_thread[0].result.entries.size());
    for (std::size_t i = 0; i < per_thread[0].result.entries.size(); ++i) {
      EXPECT_EQ(per_thread[t].result.entries[i].pair, per_thread[0].result.entries[i].pair);
      // Bitwise: the §7 determinism contract extends through the router.
      EXPECT_EQ(per_thread[t].result.entries[i].value, per_thread[0].result.entries[i].value);
    }
  }
}

// ---------------------------------------------------------------------------
// Freshness-bounded answers.
// ---------------------------------------------------------------------------

TEST(Sharded, FreshnessReportsAgeAndBlends) {
  const ts::Dataset ds = TestData();
  auto service = ShardedAffinity::Create(ds.matrix.names(), SmallOptions(2));
  ASSERT_TRUE(service.ok());
  Feed(&*service, ds, 0, 40);  // first snapshot at row 40
  ASSERT_TRUE(service->ready());

  // Age the snapshot by 5 rows with a ×3 amplitude regime so the live
  // marginals clearly disagree with the snapshot.
  std::vector<double> row(ds.matrix.n());
  for (std::size_t i = 40; i < 45; ++i) {
    for (std::size_t j = 0; j < ds.matrix.n(); ++j) row[j] = 3.0 * ds.matrix.matrix()(i, j);
    ASSERT_TRUE(service->Append(row).ok());
  }

  MecRequest mec;
  mec.measure = Measure::kCovariance;
  mec.ids = {0, 15};  // different shards at 2-way range partition

  // Unbounded: snapshot answer, age reported, no blending.
  auto stale = service->Mec(mec);
  ASSERT_TRUE(stale.ok());
  for (const ShardFreshness& f : stale->shards) {
    EXPECT_EQ(f.snapshot_age, 5u);
    EXPECT_FALSE(f.blended);
  }

  // Bounded tighter than the age: blended answer, flagged per shard.
  FreshnessOptions bounded;
  bounded.max_staleness = 2;
  auto fresh = service->Mec(mec, bounded);
  ASSERT_TRUE(fresh.ok());
  for (const ShardFreshness& f : fresh->shards) {
    EXPECT_EQ(f.snapshot_age, 5u);
    EXPECT_TRUE(f.blended);
  }

  // The blend tracks the live scale: snapshot correlation × live σuσv.
  MecRequest corr = mec;
  corr.measure = Measure::kCorrelation;
  auto rho = service->Mec(corr);
  ASSERT_TRUE(rho.ok());
  const auto& su = service->shard(service->router().partitioner().shard_of(0));
  const auto& sv = service->shard(service->router().partitioner().shard_of(15));
  const ts::RollingStats& ru =
      su.rolling_stats()[service->router().partitioner().local_id(0)];
  const ts::RollingStats& rv =
      sv.rolling_stats()[service->router().partitioner().local_id(15)];
  const double expected =
      rho->response.pair_values(0, 1) * std::sqrt(ru.Variance() * rv.Variance());
  EXPECT_NEAR(fresh->response.pair_values(0, 1), expected, 1e-9);
  // And it moved away from the stale snapshot answer (the ×3 regime).
  EXPECT_GT(std::abs(fresh->response.pair_values(0, 1)),
            1.5 * std::abs(stale->response.pair_values(0, 1)));

  // Blended correlation is the snapshot correlation (scale-free).
  auto fresh_corr = service->Mec(corr, bounded);
  ASSERT_TRUE(fresh_corr.ok());
  EXPECT_DOUBLE_EQ(fresh_corr->response.pair_values(0, 1), rho->response.pair_values(0, 1));

  // A fresh-enough snapshot is never blended.
  FreshnessOptions loose;
  loose.max_staleness = 10;
  auto unblended = service->Mec(mec, loose);
  ASSERT_TRUE(unblended.ok());
  for (const ShardFreshness& f : unblended->shards) EXPECT_FALSE(f.blended);
  EXPECT_DOUBLE_EQ(unblended->response.pair_values(0, 1), stale->response.pair_values(0, 1));
}

TEST(Streaming, FreshnessBlendOnSingleInstance) {
  const ts::Dataset ds = TestData(10);
  core::StreamingOptions options;
  options.window = 40;
  options.rebuild_interval = 20;
  options.build.afclst.k = 2;
  options.build.build_dft = false;
  auto stream = core::StreamingAffinity::Create(ds.matrix.names(), options);
  ASSERT_TRUE(stream.ok());
  FeedStream(&*stream, ds, 0, 40);
  ASSERT_TRUE(stream->ready());
  std::vector<double> row(ds.matrix.n());
  for (std::size_t i = 40; i < 44; ++i) {
    for (std::size_t j = 0; j < ds.matrix.n(); ++j) row[j] = 2.0 * ds.matrix.matrix()(i, j);
    ASSERT_TRUE(stream->Append(row).ok());
  }
  EXPECT_EQ(stream->snapshot_age(), 4u);

  // Blended mean equals the live rolling mean exactly.
  FreshnessOptions bounded;
  bounded.max_staleness = 1;
  core::FreshnessReport report;
  MecRequest mec;
  mec.measure = Measure::kMean;
  mec.ids = {2};
  auto blended = stream->Mec(mec, bounded, &report);
  ASSERT_TRUE(blended.ok());
  EXPECT_TRUE(report.blended);
  EXPECT_EQ(report.snapshot_age, 4u);
  EXPECT_DOUBLE_EQ(blended->location[0], stream->rolling_stats()[2].Mean());

  // Blended top-k runs the sweep (plan documents the blend).
  auto topk = stream->TopK(TopKRequest{Measure::kCovariance, 3, true}, bounded, &report);
  ASSERT_TRUE(topk.ok());
  EXPECT_TRUE(report.blended);
  EXPECT_EQ(topk->entries.size(), 3u);
  EXPECT_NE(topk->plan.rationale.find("freshness blend"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Shard-manifest round-trip.
// ---------------------------------------------------------------------------

TEST(Sharded, ManifestRoundTripPreservesAnswers) {
  const ts::Dataset ds = TestData();
  auto service = ShardedAffinity::Create(ds.matrix.names(), SmallOptions(2));
  ASSERT_TRUE(service.ok());
  Feed(&*service, ds, 0, 100);  // first build + 3 incremental refreshes
  ASSERT_TRUE(service->ready());
  EXPECT_GT(service->maintenance().refreshes, 0u);

  const std::string path = TempPath("sharded.affs");
  ASSERT_TRUE(service->Save(path).ok());
  auto loaded = ShardedAffinity::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->ready());
  EXPECT_EQ(loaded->shard_count(), 2u);
  // Build/maintenance tuning survives the round trip (a post-restore
  // escalation must rebuild with the original knobs, not defaults).
  EXPECT_EQ(loaded->options().streaming.build.afclst.k, 2u);
  EXPECT_FALSE(loaded->options().streaming.build.build_dft);
  EXPECT_EQ(loaded->options().streaming.rebuild_interval, 20u);

  const MetRequest met{Measure::kCorrelation, 0.9, true};
  const TopKRequest topk{Measure::kCorrelation, 5, true};
  auto met_a = service->Met(met);
  auto met_b = loaded->Met(met);
  ASSERT_TRUE(met_a.ok());
  ASSERT_TRUE(met_b.ok());
  EXPECT_EQ(met_a->result.pairs, met_b->result.pairs);

  auto topk_a = service->TopK(topk);
  auto topk_b = loaded->TopK(topk);
  ASSERT_TRUE(topk_a.ok());
  ASSERT_TRUE(topk_b.ok());
  ASSERT_EQ(topk_a->result.entries.size(), topk_b->result.entries.size());
  for (std::size_t i = 0; i < topk_a->result.entries.size(); ++i) {
    EXPECT_EQ(topk_a->result.entries[i].pair, topk_b->result.entries[i].pair);
    EXPECT_NEAR(topk_a->result.entries[i].value, topk_b->result.entries[i].value, 1e-9);
  }

  // Load re-freezes the maintainer (an exact refit of every relationship,
  // as after an escalation), so values may shift by the bounded round-off
  // the refit cadence normally reclaims — compare to that tolerance.
  MecRequest mec;
  mec.measure = Measure::kDotProduct;
  mec.ids = {1, 8, 14};
  auto mec_a = service->Mec(mec);
  auto mec_b = loaded->Mec(mec);
  ASSERT_TRUE(mec_a.ok());
  ASSERT_TRUE(mec_b.ok());
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      const double a = mec_a->response.pair_values(i, j);
      const double b = mec_b->response.pair_values(i, j);
      EXPECT_NEAR(a, b, 1e-8 * (1.0 + std::abs(a)));
    }
  }

  // The restored deployment keeps streaming: one interval → a refresh.
  std::vector<double> row(ds.matrix.n());
  bool refreshed = false;
  for (std::size_t i = 100; i < 120; ++i) {
    for (std::size_t j = 0; j < ds.matrix.n(); ++j) row[j] = ds.matrix.matrix()(i, j);
    const auto result = loaded->Append(row);
    ASSERT_TRUE(result.ok());
    refreshed |= result.refreshed;
  }
  EXPECT_TRUE(refreshed);
}

// Restore-ordering audit (ISSUE 5): the cross co-moment cache uses
// stamped_generation == 0 as its never-stamped/invalidated sentinel, and
// a freshly restored router must never Stamp/Lookup at that sentinel —
// Load starts the router's generation at 1, so post-restore queries are
// ordinary miss-fills (never false hits against dropped stamps) and the
// next lockstep refresh advances to a fresh generation.
TEST(Sharded, RestoredRouterNeverTouchesGenerationZero) {
  const ts::Dataset ds = TestData();
  ShardedOptions options = SmallOptions(2);
  options.cross_cache.budget = static_cast<std::size_t>(-1);  // watch everything
  auto service = ShardedAffinity::Create(ds.matrix.names(), options);
  ASSERT_TRUE(service.ok());
  Feed(&*service, ds, 0, 60);
  ASSERT_TRUE(service->ready());
  const std::string path = TempPath("sharded_gen.affs");
  ASSERT_TRUE(service->Save(path).ok());

  auto loaded = ShardedAffinity::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->ready());
  const std::size_t watched = loaded->router().cross_pairs().size();
  ASSERT_GT(watched, 0u);

  // First query after restore: nothing is stamped (the manifest carries
  // no rings), so every watched pair misses and re-fills from the sweep —
  // a CHECK inside the cache would abort here if the router consulted it
  // at the sentinel generation.
  const MetRequest met{Measure::kCovariance, 0.0, true};
  ASSERT_TRUE(loaded->Met(met, {core::QueryMethod::kNaive}).ok());
  EXPECT_EQ(loaded->cross_cache_stats().hits, 0u);
  EXPECT_EQ(loaded->cross_cache_stats().misses, watched);

  // The miss fill stored at the restored generation: the repeat is warm
  // with zero additional raw pair scans.
  const core::CrossSweepStats swept = loaded->cross_sweep_stats();
  ASSERT_TRUE(loaded->Met(met, {core::QueryMethod::kNaive}).ok());
  EXPECT_EQ(loaded->cross_cache_stats().hits, watched);
  EXPECT_EQ(loaded->cross_sweep_stats().pairs_scanned, swept.pairs_scanned);

  // After a full window of appends the lockstep refresh stamps a *new*
  // generation; warm answers keep flowing (no sentinel aliasing).
  std::vector<double> row(ds.matrix.n());
  for (std::size_t i = 60; i < 60 + 40 + 20; ++i) {
    for (std::size_t j = 0; j < ds.matrix.n(); ++j) row[j] = ds.matrix.matrix()(i, j);
    ASSERT_TRUE(loaded->Append(row).ok());
  }
  EXPECT_GT(loaded->cross_cache_stats().stamps, 0u);
  const std::size_t hits_before = loaded->cross_cache_stats().hits;
  ASSERT_TRUE(loaded->Met(met, {core::QueryMethod::kNaive}).ok());
  EXPECT_EQ(loaded->cross_cache_stats().hits, hits_before + watched);
}

TEST(Sharded, LoadRejectsCorruptManifests) {
  EXPECT_EQ(ShardedAffinity::Load(TempPath("missing.affs")).status().code(),
            StatusCode::kIoError);
  const std::string path = TempPath("garbage.affs");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a manifest at all";
  }
  EXPECT_EQ(ShardedAffinity::Load(path).status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Dirty ingestion + quality predicates across shards (DESIGN.md §12).
// ---------------------------------------------------------------------------

/// Feeds `rows` dataset rows through a StreamAligner, dropping ~`dirty_pct`
/// of the samples, and appends each emitted masked row to both sinks.
void FeedDirtyBoth(core::StreamingAffinity* baseline, ShardedAffinity* service,
                   const ts::Dataset& ds, std::size_t rows, double dirty_pct,
                   std::uint64_t seed) {
  const std::size_t n = ds.matrix.n();
  ts::IngestOptions iopts;
  iopts.max_fill = 3;
  ts::StreamAligner aligner(n, iopts);
  Xoshiro256 rng(seed);
  std::vector<ts::AlignedRow> emitted;
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.Uniform(0.0, 1.0) < dirty_pct) continue;  // sample never arrives
      ASSERT_TRUE(aligner.Push(j, static_cast<double>(i), ds.matrix.matrix()(i, j)).ok());
    }
    emitted.clear();
    aligner.EmitUpTo(static_cast<double>(i + 1), &emitted);
    for (const ts::AlignedRow& row : emitted) {
      ASSERT_TRUE(baseline->AppendMasked(row).ok());
      ASSERT_TRUE(service->AppendMasked(row).ok());
    }
  }
}

TEST(ShardedQuality, FilteredAnswersMatchUnshardedBaseline) {
  const ts::Dataset ds = TestData();
  for (const std::size_t shards : {std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    auto baseline =
        core::StreamingAffinity::Create(ds.matrix.names(), SmallOptions(1).streaming);
    ASSERT_TRUE(baseline.ok());
    auto service = ShardedAffinity::Create(ds.matrix.names(), SmallOptions(shards));
    ASSERT_TRUE(service.ok());
    FeedDirtyBoth(&*baseline, &*service, ds, 120, 0.15, 2024);
    ASSERT_TRUE(baseline->ready());
    ASSERT_TRUE(service->ready());

    // Both sides saw identical masks, so the per-series scores agree.
    const std::vector<double>& scores = baseline->quality_scores();
    double lo = 1.0, hi = 0.0;
    for (const double s : scores) {
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
    ASSERT_LT(lo, hi);
    const double threshold = 0.5 * (lo + hi);

    MetRequest met{Measure::kCorrelation, 0.5, true};
    met.min_quality = threshold;
    auto base_met = baseline->Met(met);
    auto s_met = service->Met(met);
    ASSERT_TRUE(base_met.ok());
    ASSERT_TRUE(s_met.ok());
    EXPECT_EQ(Sorted(s_met->result.pairs), Sorted(base_met->pairs));
    EXPECT_TRUE(s_met->result.quality.populated);
    EXPECT_GE(s_met->result.quality.min_score, threshold);
    for (const auto& p : s_met->result.pairs) {
      EXPECT_GE(scores[p.u], threshold);
      EXPECT_GE(scores[p.v], threshold);
    }

    MerRequest mer{Measure::kCorrelation, 0.2, 0.9};
    mer.min_quality = threshold;
    auto base_mer = baseline->Mer(mer);
    auto s_mer = service->Mer(mer);
    ASSERT_TRUE(base_mer.ok());
    ASSERT_TRUE(s_mer.ok());
    EXPECT_EQ(Sorted(s_mer->result.pairs), Sorted(base_mer->pairs));

    TopKRequest topk{Measure::kCorrelation, 5, true};
    topk.min_quality = threshold;
    auto base_topk = baseline->TopK(topk);
    auto s_topk = service->TopK(topk);
    ASSERT_TRUE(base_topk.ok());
    ASSERT_TRUE(s_topk.ok());
    ASSERT_EQ(s_topk->result.entries.size(), base_topk->entries.size());
    std::vector<ts::SequencePair> s_pairs;
    std::vector<ts::SequencePair> b_pairs;
    for (std::size_t i = 0; i < base_topk->entries.size(); ++i) {
      s_pairs.push_back(s_topk->result.entries[i].pair);
      b_pairs.push_back(base_topk->entries[i].pair);
      EXPECT_NEAR(s_topk->result.entries[i].value, base_topk->entries[i].value, 1e-9);
      EXPECT_GE(scores[s_topk->result.entries[i].pair.u], threshold);
      EXPECT_GE(scores[s_topk->result.entries[i].pair.v], threshold);
    }
    EXPECT_EQ(Sorted(s_pairs), Sorted(b_pairs));
    EXPECT_TRUE(s_topk->result.quality.populated);

    // MEC: an eligible id set answers with a quality stamp; a set touching
    // a below-threshold series fails FailedPrecondition through the router
    // exactly like the facade.
    ts::SeriesId good = 0, bad = 0;
    for (std::size_t j = 0; j < scores.size(); ++j) {
      if (scores[j] >= threshold) good = static_cast<ts::SeriesId>(j);
      if (scores[j] < threshold) bad = static_cast<ts::SeriesId>(j);
    }
    MecRequest mec_ok;
    mec_ok.measure = Measure::kCorrelation;
    mec_ok.ids = {good};
    mec_ok.min_quality = threshold;
    auto s_mec = service->Mec(mec_ok);
    ASSERT_TRUE(s_mec.ok());
    EXPECT_TRUE(s_mec->response.quality.populated);

    MecRequest mec_bad = mec_ok;
    mec_bad.ids = {good, bad};
    EXPECT_EQ(service->Mec(mec_bad).status().code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(baseline->Mec(mec_bad).status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(ShardedQuality, AppendMaskedValidatesShapes) {
  const ts::Dataset ds = TestData();
  auto service = ShardedAffinity::Create(ds.matrix.names(), SmallOptions(2));
  ASSERT_TRUE(service.ok());
  const std::size_t n = ds.matrix.n();
  std::vector<double> row(n, 1.0);
  EXPECT_EQ(service
                ->AppendMasked(row, std::vector<std::uint8_t>(n - 1, 1),
                               std::vector<std::uint8_t>(n, 0))
                .status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(
      service->AppendMasked(row, std::vector<std::uint8_t>(n, 1), std::vector<std::uint8_t>(n, 0))
          .ok());
  EXPECT_EQ(service->rows_ingested(), 1u);
}

}  // namespace
}  // namespace affinity::shard
