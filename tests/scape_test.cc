// Tests for the SCAPE index (core/scape.h): result-set equivalence with the
// WA strategy, §5.3 pruning correctness, and degenerate-input handling.

#include "core/scape.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/measures.h"
#include "core/symex.h"
#include "ts/generators.h"

namespace affinity::core {
namespace {

AffinityModel BuildModel(std::size_t n = 30, std::size_t m = 100, std::uint64_t seed = 13) {
  ts::DatasetSpec spec;
  spec.num_series = n;
  spec.num_samples = m;
  spec.num_clusters = 3;
  spec.noise_level = 0.015;
  spec.seed = seed;
  const ts::Dataset ds = ts::MakeSensorData(spec);
  auto model = BuildAffinityModel(ds.matrix, AfclstOptions{.k = 3}, SymexOptions{});
  EXPECT_TRUE(model.ok());
  return std::move(model).value();
}

/// WA reference answer for a MET query.
std::vector<ts::SequencePair> WaThresholdPairs(const AffinityModel& model, Measure measure,
                                               double tau, bool greater) {
  std::vector<ts::SequencePair> out;
  for (const auto& e : ts::AllSequencePairs(model.data().n())) {
    const double v = *model.PairMeasure(measure, e);
    if (greater ? v > tau : v < tau) out.push_back(e);
  }
  return out;
}

std::vector<ts::SeriesId> WaThresholdSeries(const AffinityModel& model, Measure measure,
                                            double tau, bool greater) {
  std::vector<ts::SeriesId> out;
  for (ts::SeriesId v = 0; v < model.data().n(); ++v) {
    const double x = *model.SeriesMeasure(measure, v);
    if (greater ? x > tau : x < tau) out.push_back(v);
  }
  return out;
}

std::vector<ts::SequencePair> Sorted(std::vector<ts::SequencePair> v) {
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<ts::SeriesId> Sorted(std::vector<ts::SeriesId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(ScapeBuild, CountsMatchModel) {
  const AffinityModel model = BuildModel();
  auto index = ScapeIndex::Build(model);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->pair_entry_count(), model.relationship_count());
  EXPECT_EQ(index->series_entry_count(), model.data().n());
  EXPECT_EQ(index->pair_pivot_count(), model.pivot_count());
  EXPECT_GE(index->build_seconds(), 0.0);
}

TEST(ScapeBuild, RespectsFanoutOption) {
  const AffinityModel model = BuildModel();
  ScapeOptions opt;
  opt.btree_fanout = 8;
  auto index = ScapeIndex::Build(model, opt);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->pair_entry_count(), model.relationship_count());
}

TEST(ScapeQuery, RejectsNonIndexableMeasures) {
  const AffinityModel model = BuildModel();
  auto index = ScapeIndex::Build(model);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->MeasureThreshold(Measure::kJaccard, 0.5).status().code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(index->MeasureRange(Measure::kDice, 0.0, 1.0).status().code(),
            StatusCode::kUnimplemented);
}

TEST(ScapeQuery, RejectsInvertedRange) {
  const AffinityModel model = BuildModel();
  auto index = ScapeIndex::Build(model);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(index->MeasureRange(Measure::kCovariance, 1.0, -1.0).ok());
}

// MET equivalence with WA across measures, thresholds, and directions.
struct MetCase {
  Measure measure;
  double tau;
  bool greater;
};

class ScapeMetEquivalence : public ::testing::TestWithParam<MetCase> {};

TEST_P(ScapeMetEquivalence, MatchesWaExactly) {
  const MetCase c = GetParam();
  const AffinityModel model = BuildModel();
  auto index = ScapeIndex::Build(model);
  ASSERT_TRUE(index.ok());
  auto result = index->MeasureThreshold(c.measure, c.tau, c.greater);
  ASSERT_TRUE(result.ok());
  if (IsLocation(c.measure)) {
    EXPECT_EQ(Sorted(result->series), Sorted(WaThresholdSeries(model, c.measure, c.tau, c.greater)));
    EXPECT_TRUE(result->pairs.empty());
  } else {
    EXPECT_EQ(Sorted(result->pairs), Sorted(WaThresholdPairs(model, c.measure, c.tau, c.greater)));
    EXPECT_TRUE(result->series.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ScapeMetEquivalence,
    ::testing::Values(MetCase{Measure::kCovariance, 0.5, true},
                      MetCase{Measure::kCovariance, 0.5, false},
                      MetCase{Measure::kCovariance, -0.2, true},
                      MetCase{Measure::kDotProduct, 1000.0, true},
                      MetCase{Measure::kDotProduct, 0.0, false},
                      MetCase{Measure::kCorrelation, 0.9, true},
                      MetCase{Measure::kCorrelation, 0.5, true},
                      MetCase{Measure::kCorrelation, -0.5, true},
                      MetCase{Measure::kCorrelation, 0.0, false},
                      MetCase{Measure::kCorrelation, -0.9, false},
                      MetCase{Measure::kCosine, 0.95, true},
                      MetCase{Measure::kCosine, 0.2, false},
                      MetCase{Measure::kMean, 10.0, true},
                      MetCase{Measure::kMean, 0.0, false},
                      MetCase{Measure::kMedian, 5.0, true},
                      MetCase{Measure::kMode, 2.0, true}));

// MER equivalence with WA.
struct MerCase {
  Measure measure;
  double lo;
  double hi;
};

class ScapeMerEquivalence : public ::testing::TestWithParam<MerCase> {};

TEST_P(ScapeMerEquivalence, MatchesWaExactly) {
  const MerCase c = GetParam();
  const AffinityModel model = BuildModel();
  auto index = ScapeIndex::Build(model);
  ASSERT_TRUE(index.ok());
  auto result = index->MeasureRange(c.measure, c.lo, c.hi);
  ASSERT_TRUE(result.ok());

  if (IsLocation(c.measure)) {
    std::vector<ts::SeriesId> expected;
    for (ts::SeriesId v = 0; v < model.data().n(); ++v) {
      const double x = *model.SeriesMeasure(c.measure, v);
      if (c.lo < x && x < c.hi) expected.push_back(v);
    }
    EXPECT_EQ(Sorted(result->series), Sorted(expected));
  } else {
    std::vector<ts::SequencePair> expected;
    for (const auto& e : ts::AllSequencePairs(model.data().n())) {
      const double x = *model.PairMeasure(c.measure, e);
      if (c.lo < x && x < c.hi) expected.push_back(e);
    }
    EXPECT_EQ(Sorted(result->pairs), Sorted(expected));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ScapeMerEquivalence,
    ::testing::Values(MerCase{Measure::kCovariance, -0.5, 0.5},
                      MerCase{Measure::kCovariance, 0.0, 10.0},
                      MerCase{Measure::kDotProduct, 100.0, 100000.0},
                      MerCase{Measure::kCorrelation, 0.2, 0.8},
                      MerCase{Measure::kCorrelation, -0.9, -0.1},
                      MerCase{Measure::kCorrelation, -0.1, 0.1},
                      MerCase{Measure::kCosine, 0.5, 0.99},
                      MerCase{Measure::kMean, 0.0, 20.0},
                      MerCase{Measure::kMedian, -10.0, 10.0},
                      MerCase{Measure::kMode, -5.0, 25.0}));

TEST(ScapePruning, AcceptRegionNeedsNoVerification) {
  const AffinityModel model = BuildModel();
  auto index = ScapeIndex::Build(model);
  ASSERT_TRUE(index.ok());
  // A selective correlation threshold: most accepted entries should come
  // from the prune-accept region, with a narrow verify band.
  auto result = index->MeasureThreshold(Measure::kCorrelation, 0.95, true);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->prune.accepted_unverified + result->prune.verified, 0u);
  // Verification never exceeds total entries.
  EXPECT_LE(result->prune.verified, model.relationship_count());
}

TEST(ScapePruning, TMeasureQueriesNeverVerify) {
  const AffinityModel model = BuildModel();
  auto index = ScapeIndex::Build(model);
  ASSERT_TRUE(index.ok());
  auto result = index->MeasureThreshold(Measure::kCovariance, 0.3, true);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->prune.verified, 0u);
  EXPECT_EQ(result->prune.accepted_unverified, result->pairs.size());
}

TEST(ScapeEdge, ExtremeTauGivesAllOrNothing) {
  const AffinityModel model = BuildModel();
  auto index = ScapeIndex::Build(model);
  ASSERT_TRUE(index.ok());
  const std::size_t all_pairs = model.relationship_count();
  auto everything = index->MeasureThreshold(Measure::kCorrelation, -2.0, true);
  ASSERT_TRUE(everything.ok());
  EXPECT_EQ(everything->pairs.size(), all_pairs);
  auto nothing = index->MeasureThreshold(Measure::kCorrelation, 2.0, true);
  ASSERT_TRUE(nothing.ok());
  EXPECT_TRUE(nothing->pairs.empty());
}

TEST(ScapeEdge, DegenerateConstantSeriesHandled) {
  // A constant series has zero variance (correlation normalizer 0). SCAPE
  // must neither crash nor disagree with WA.
  ts::DatasetSpec spec;
  spec.num_series = 12;
  spec.num_samples = 60;
  spec.num_clusters = 2;
  spec.seed = 3;
  ts::Dataset ds = ts::MakeSensorData(spec);
  la::Matrix values = ds.matrix.matrix();
  for (std::size_t i = 0; i < values.rows(); ++i) values(i, 5) = 4.2;  // flatten series 5
  const ts::DataMatrix data(values);
  auto model = BuildAffinityModel(data, AfclstOptions{.k = 2}, SymexOptions{});
  ASSERT_TRUE(model.ok());
  auto index = ScapeIndex::Build(*model);
  ASSERT_TRUE(index.ok());

  for (const double tau : {-0.5, 0.0, 0.5}) {
    for (const bool greater : {true, false}) {
      auto result = index->MeasureThreshold(Measure::kCorrelation, tau, greater);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(Sorted(result->pairs), Sorted(WaThresholdPairs(*model, Measure::kCorrelation,
                                                               tau, greater)))
          << "tau=" << tau << " greater=" << greater;
    }
  }
}

TEST(ScapeEdge, ResultSizeMonotoneInThreshold) {
  const AffinityModel model = BuildModel();
  auto index = ScapeIndex::Build(model);
  ASSERT_TRUE(index.ok());
  std::size_t prev = model.relationship_count() + 1;
  for (double tau = -1.0; tau <= 1.0; tau += 0.25) {
    auto result = index->MeasureThreshold(Measure::kCorrelation, tau, true);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->pairs.size(), prev);
    prev = result->pairs.size();
  }
}

TEST(ScapeEdge, MerIsIntersectionOfMets) {
  const AffinityModel model = BuildModel();
  auto index = ScapeIndex::Build(model);
  ASSERT_TRUE(index.ok());
  const double lo = 0.3, hi = 0.7;
  auto range = index->MeasureRange(Measure::kCorrelation, lo, hi);
  auto above = index->MeasureThreshold(Measure::kCorrelation, lo, true);
  auto below = index->MeasureThreshold(Measure::kCorrelation, hi, false);
  ASSERT_TRUE(range.ok());
  ASSERT_TRUE(above.ok());
  ASSERT_TRUE(below.ok());
  std::vector<ts::SequencePair> a = Sorted(above->pairs);
  std::vector<ts::SequencePair> b = Sorted(below->pairs);
  std::vector<ts::SequencePair> expected;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(expected));
  EXPECT_EQ(Sorted(range->pairs), expected);
}

TEST(ScapeEdge, LocationTreesCoverEverySeriesOnce) {
  const AffinityModel model = BuildModel();
  auto index = ScapeIndex::Build(model);
  ASSERT_TRUE(index.ok());
  auto all = index->MeasureThreshold(Measure::kMean, -1e300, true);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->series.size(), model.data().n());
  std::set<ts::SeriesId> unique(all->series.begin(), all->series.end());
  EXPECT_EQ(unique.size(), model.data().n());
}

}  // namespace
}  // namespace affinity::core
