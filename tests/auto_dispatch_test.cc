// Tests for QueryMethod::kAuto: the engine must consult the QueryPlanner
// over the capabilities actually attached, dispatch to the planner's
// choice, surface the executed plan in the response, and return exactly
// what the explicitly-requested strategy would have returned.

#include <vector>

#include <gtest/gtest.h>

#include "core/framework.h"
#include "core/planner.h"
#include "core/query.h"
#include "ts/generators.h"

namespace affinity::core {
namespace {

class AutoDispatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ts::DatasetSpec spec;
    spec.num_series = 24;
    spec.num_samples = 80;
    spec.num_clusters = 3;
    spec.noise_level = 0.02;
    spec.seed = 17;
    dataset_ = new ts::Dataset(ts::MakeSensorData(spec));
    auto fw = Affinity::Build(dataset_->matrix);
    ASSERT_TRUE(fw.ok());
    framework_ = new Affinity(std::move(fw).value());
  }
  static void TearDownTestSuite() {
    delete framework_;
    delete dataset_;
    framework_ = nullptr;
    dataset_ = nullptr;
  }
  static ts::Dataset* dataset_;
  static Affinity* framework_;
};

ts::Dataset* AutoDispatchTest::dataset_ = nullptr;
Affinity* AutoDispatchTest::framework_ = nullptr;

/// Engines covering every capability combination the facade can produce:
/// bare (WN only), model (WA), model+scape, model+dft, and everything.
struct CapabilityCase {
  bool model;
  bool scape;
  bool dft;
};

QueryEngine MakeEngine(const Affinity& fw, const ts::DataMatrix& data, const CapabilityCase& c) {
  QueryEngine engine(&data);
  if (c.model) engine.AttachModel(&fw.model());
  if (c.scape) engine.AttachScape(fw.scape());
  if (c.dft) engine.EnableDft();
  return engine;
}

const CapabilityCase kAllCases[] = {
    {false, false, false}, {true, false, false}, {true, true, false},
    {true, false, true},   {true, true, true},
};

TEST_F(AutoDispatchTest, CapabilitiesReflectAttachments) {
  for (const CapabilityCase& c : kAllCases) {
    const QueryEngine engine = MakeEngine(*framework_, dataset_->matrix, c);
    const QueryPlanner::Capabilities caps = engine.Capabilities();
    EXPECT_EQ(caps.has_model, c.model);
    EXPECT_EQ(caps.has_scape, c.scape);
    EXPECT_EQ(caps.has_dft, c.dft);
  }
}

TEST_F(AutoDispatchTest, MetAutoMatchesPlannerForEveryCapabilityCombination) {
  for (const CapabilityCase& c : kAllCases) {
    const QueryEngine engine = MakeEngine(*framework_, dataset_->matrix, c);
    const QueryPlanner planner(dataset_->matrix.n(), dataset_->matrix.m(),
                               engine.Capabilities());
    for (const Measure m : {Measure::kCovariance, Measure::kCorrelation, Measure::kMean,
                            Measure::kJaccard}) {
      MetRequest req;
      req.measure = m;
      req.tau = m == Measure::kCorrelation ? 0.7 : 1.0;
      auto result = engine.Met(req, QueryMethod::kAuto);
      ASSERT_TRUE(result.ok()) << MeasureName(m);
      const PlanChoice expected = planner.PlanMet(m);
      EXPECT_EQ(result->plan.method, expected.method)
          << MeasureName(m) << " model=" << c.model << " scape=" << c.scape;
      EXPECT_EQ(result->plan.rationale, expected.rationale);
      EXPECT_EQ(result->plan.estimated_cost, expected.estimated_cost);

      // The auto answer is exactly the explicit answer of the chosen method.
      auto explicit_result = engine.Met(req, expected.method);
      ASSERT_TRUE(explicit_result.ok());
      EXPECT_EQ(result->pairs, explicit_result->pairs) << MeasureName(m);
      EXPECT_EQ(result->series, explicit_result->series) << MeasureName(m);
    }
  }
}

TEST_F(AutoDispatchTest, MetAutoPicksExpectedStrategies) {
  // Bare → WN; model-only → WA; model+scape → SCAPE (indexable) / WA
  // (Jaccard & Dice are not indexable).
  const QueryEngine bare = MakeEngine(*framework_, dataset_->matrix, {false, false, false});
  const QueryEngine model_only = MakeEngine(*framework_, dataset_->matrix, {true, false, false});
  const QueryEngine full = MakeEngine(*framework_, dataset_->matrix, {true, true, true});
  MetRequest req;
  req.measure = Measure::kCovariance;
  req.tau = 0.5;
  EXPECT_EQ(bare.Met(req, QueryMethod::kAuto)->plan.method, QueryMethod::kNaive);
  EXPECT_EQ(model_only.Met(req, QueryMethod::kAuto)->plan.method, QueryMethod::kAffine);
  EXPECT_EQ(full.Met(req, QueryMethod::kAuto)->plan.method, QueryMethod::kScape);
  req.measure = Measure::kDice;
  EXPECT_EQ(full.Met(req, QueryMethod::kAuto)->plan.method, QueryMethod::kAffine);
}

TEST_F(AutoDispatchTest, AutoNeverPicksApproximateWfButReportsIt) {
  // WF-only engine: AUTO stays exact (WN) and the rationale tells the
  // caller the approximate sketch path exists.
  const QueryEngine wf_only = MakeEngine(*framework_, dataset_->matrix, {false, false, true});
  MetRequest req;
  req.measure = Measure::kCorrelation;
  req.tau = 0.7;
  auto result = wf_only.Met(req, QueryMethod::kAuto);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.method, QueryMethod::kNaive);
  EXPECT_NE(result->plan.rationale.find("WF sketches available"), std::string::npos)
      << result->plan.rationale;
}

TEST_F(AutoDispatchTest, MerAutoDispatchesThroughPlanner) {
  MerRequest req;
  req.measure = Measure::kCorrelation;
  req.lo = 0.2;
  req.hi = 0.9;
  auto result = framework_->engine().Mer(req, QueryMethod::kAuto);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.method, QueryMethod::kScape);
  auto explicit_result = framework_->engine().Mer(req, QueryMethod::kScape);
  ASSERT_TRUE(explicit_result.ok());
  EXPECT_EQ(result->pairs, explicit_result->pairs);
}

TEST_F(AutoDispatchTest, MecAutoUsesModelWhenPresent) {
  MecRequest req;
  req.measure = Measure::kCovariance;
  req.ids = {0, 3, 5};
  auto result = framework_->engine().Mec(req, QueryMethod::kAuto);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.method, QueryMethod::kAffine);
  EXPECT_GT(result->plan.estimated_cost, 0.0);
  EXPECT_FALSE(result->plan.rationale.empty());

  const QueryEngine bare = MakeEngine(*framework_, dataset_->matrix, {false, false, false});
  auto naive = bare.Mec(req, QueryMethod::kAuto);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(naive->plan.method, QueryMethod::kNaive);
}

TEST_F(AutoDispatchTest, TopKAutoPrefersScapeAndMatchesExplicit) {
  TopKRequest req;
  req.measure = Measure::kCorrelation;
  req.k = 10;
  auto result = framework_->engine().TopK(req, QueryMethod::kAuto);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.method, QueryMethod::kScape);
  auto explicit_result = framework_->engine().TopK(req, QueryMethod::kScape);
  ASSERT_TRUE(explicit_result.ok());
  ASSERT_EQ(result->entries.size(), explicit_result->entries.size());
  for (std::size_t i = 0; i < result->entries.size(); ++i) {
    EXPECT_EQ(result->entries[i].value, explicit_result->entries[i].value);
    EXPECT_EQ(result->entries[i].pair, explicit_result->entries[i].pair);
  }
}

TEST_F(AutoDispatchTest, AutoIsTheDefaultMethod) {
  MetRequest req;
  req.measure = Measure::kCorrelation;
  req.tau = 0.7;
  auto defaulted = framework_->engine().Met(req);
  auto spelled = framework_->engine().Met(req, QueryMethod::kAuto);
  ASSERT_TRUE(defaulted.ok());
  ASSERT_TRUE(spelled.ok());
  EXPECT_EQ(defaulted->plan.method, spelled->plan.method);
  EXPECT_EQ(defaulted->pairs, spelled->pairs);
}

TEST_F(AutoDispatchTest, ExplicitMethodsRecordExplicitPlan) {
  MetRequest req;
  req.measure = Measure::kCovariance;
  req.tau = 0.5;
  auto result = framework_->engine().Met(req, QueryMethod::kNaive);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.method, QueryMethod::kNaive);
  EXPECT_NE(result->plan.rationale.find("explicitly requested"), std::string::npos);
}

TEST(QueryMethodNameFn, AutoName) { EXPECT_EQ(QueryMethodName(QueryMethod::kAuto), "AUTO"); }

}  // namespace
}  // namespace affinity::core
