// Tests for the sliding-window statistics substrate (ts/rolling.h),
// including differential tests against exact recomputation.

#include "ts/rolling.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "ts/generators.h"
#include "ts/stats.h"

namespace affinity::ts {
namespace {

TEST(RollingStats, EmptyWindow) {
  RollingStats r(4);
  EXPECT_EQ(r.count(), 0u);
  EXPECT_FALSE(r.full());
  EXPECT_DOUBLE_EQ(r.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(r.Variance(), 0.0);
}

TEST(RollingStats, PartialWindowUsesAvailableSamples) {
  RollingStats r(10);
  r.Push(2.0);
  r.Push(4.0);
  EXPECT_EQ(r.count(), 2u);
  EXPECT_DOUBLE_EQ(r.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(r.Variance(), 1.0);
}

TEST(RollingStats, EvictsOldestWhenFull) {
  RollingStats r(3);
  for (double x : {1.0, 2.0, 3.0, 4.0}) r.Push(x);  // window is {2,3,4}
  EXPECT_TRUE(r.full());
  EXPECT_EQ(r.count(), 3u);
  EXPECT_DOUBLE_EQ(r.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(r.Sum(), 9.0);
}

TEST(RollingStats, MatchesExactRecomputation) {
  const std::size_t window = 16;
  RollingStats r(window);
  Xoshiro256 rng(3);
  std::vector<double> history;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Gaussian(5.0, 2.0);
    history.push_back(x);
    r.Push(x);
    const std::size_t count = std::min(history.size(), window);
    const double* tail = history.data() + history.size() - count;
    EXPECT_NEAR(r.Mean(), stats::Mean(tail, count), 1e-9);
    EXPECT_NEAR(r.Variance(), stats::Variance(tail, count), 1e-8);
  }
}

TEST(RollingStats, WindowOfOne) {
  RollingStats r(1);
  r.Push(7.0);
  r.Push(-3.0);
  EXPECT_DOUBLE_EQ(r.Mean(), -3.0);
  EXPECT_DOUBLE_EQ(r.Variance(), 0.0);
}

TEST(RollingStatsDeath, ZeroWindowAborts) { EXPECT_DEATH({ RollingStats r(0); }, "CHECK"); }

TEST(RollingCovariance, MatchesExactRecomputation) {
  const std::size_t window = 12;
  RollingCovariance rc(window);
  Xoshiro256 rng(4);
  std::vector<double> xs, ys;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.Gaussian();
    const double y = 0.5 * x + rng.Gaussian(0.0, 0.3);
    xs.push_back(x);
    ys.push_back(y);
    rc.Push(x, y);
    const std::size_t count = std::min(xs.size(), window);
    const double* tx = xs.data() + xs.size() - count;
    const double* ty = ys.data() + ys.size() - count;
    EXPECT_NEAR(rc.Covariance(), stats::Covariance(tx, ty, count), 1e-9);
    EXPECT_NEAR(rc.DotProduct(), stats::DotProduct(tx, ty, count), 1e-8);
    EXPECT_NEAR(rc.Correlation(), stats::Correlation(tx, ty, count), 1e-8);
  }
}

TEST(RollingCovariance, ConstantSeriesCorrelationIsZero) {
  RollingCovariance rc(5);
  for (int i = 0; i < 5; ++i) rc.Push(3.0, static_cast<double>(i));
  EXPECT_DOUBLE_EQ(rc.Correlation(), 0.0);
}

TEST(RollingCovariance, PerSeriesAccessors) {
  RollingCovariance rc(4);
  rc.Push(1.0, 10.0);
  rc.Push(3.0, 30.0);
  EXPECT_DOUBLE_EQ(rc.x().Mean(), 2.0);
  EXPECT_DOUBLE_EQ(rc.y().Mean(), 20.0);
}

TEST(TailWindowFn, ExtractsLastRows) {
  la::Matrix values = la::Matrix::FromRows({{1, 10}, {2, 20}, {3, 30}, {4, 40}});
  DataMatrix dm(values, {"a", "b"});
  auto tail = TailWindow(dm, 2);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->m(), 2u);
  EXPECT_EQ(tail->n(), 2u);
  EXPECT_DOUBLE_EQ(tail->matrix()(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(tail->matrix()(1, 1), 40.0);
  EXPECT_EQ(tail->name(1), "b");
}

TEST(TailWindowFn, FullWindowIsIdentity) {
  const Dataset ds = MakeSensorData(
      {.num_series = 5, .num_samples = 30, .num_clusters = 2, .noise_level = 0.02, .seed = 1});
  auto tail = TailWindow(ds.matrix, 30);
  ASSERT_TRUE(tail.ok());
  EXPECT_NEAR(tail->matrix().MaxAbsDiff(ds.matrix.matrix()), 0.0, 0.0);
}

TEST(TailWindowFn, ValidatesWindow) {
  DataMatrix dm(la::Matrix::FromRows({{1.0}, {2.0}}));
  EXPECT_FALSE(TailWindow(dm, 0).ok());
  EXPECT_FALSE(TailWindow(dm, 3).ok());
}

TEST(RollingCrossSums, AddEvictTracksExactWindowSums) {
  // Slide a window of 16 over a random stream; after every slide the
  // accumulators must match sums recomputed from scratch.
  constexpr std::size_t kWin = 16;
  Xoshiro256 rng(77);
  std::vector<double> c1, c2, t;
  for (std::size_t i = 0; i < kWin + 64; ++i) {
    c1.push_back(rng.Uniform(-2.0, 2.0));
    c2.push_back(rng.Uniform(-2.0, 2.0));
    t.push_back(rng.Uniform(-2.0, 2.0));
  }
  RollingCrossSums sums;
  sums.Reset(c1.data(), c2.data(), t.data(), kWin);
  for (std::size_t start = 1; start + kWin <= c1.size(); ++start) {
    sums.Evict(c1[start - 1], c2[start - 1], t[start - 1]);
    sums.Add(c1[start + kWin - 1], c2[start + kWin - 1], t[start + kWin - 1]);
    RollingCrossSums exact;
    exact.Reset(c1.data() + start, c2.data() + start, t.data() + start, kWin);
    EXPECT_NEAR(sums.c1t, exact.c1t, 1e-12);
    EXPECT_NEAR(sums.c2t, exact.c2t, 1e-12);
    EXPECT_NEAR(sums.t, exact.t, 1e-12);
  }
  // Reset re-materializes exactly.
  const std::size_t last = c1.size() - kWin;
  RollingCrossSums exact;
  exact.Reset(c1.data() + last, c2.data() + last, t.data() + last, kWin);
  sums.Reset(c1.data() + last, c2.data() + last, t.data() + last, kWin);
  EXPECT_EQ(sums.c1t, exact.c1t);
  EXPECT_EQ(sums.c2t, exact.c2t);
  EXPECT_EQ(sums.t, exact.t);
}

}  // namespace
}  // namespace affinity::ts
