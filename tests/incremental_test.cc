// Equivalence tests for incremental sliding-window maintenance
// (core/incremental, DESIGN.md §8).
//
// Contract under test: after any sequence of appends, the incrementally
// maintained snapshot answers MET/MER/MEC/top-k identically — same entity
// sets, same order — to a from-scratch SYMEX+ + SCAPE rebuild over the
// same window and the same (frozen, linearly extended) clustering.
// Moments and measures (per-series stats, pivot measures, series-level
// relationships, centre L-measures) are bit-identical; delta-updated
// transforms stay within the core/quality gates, and with
// exact_refit_period = 1 the *entire* maintained model is bit-identical.
// All of it holds at 1, 2, and 8 threads.

#include "core/incremental.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/quality.h"
#include "core/streaming.h"
#include "ts/generators.h"

namespace affinity::core {
namespace {

constexpr std::size_t kWindow = 48;
constexpr std::size_t kSeries = 12;

ts::Dataset FeedData() {
  ts::DatasetSpec spec;
  spec.num_series = kSeries;
  spec.num_samples = 400;
  spec.num_clusters = 3;
  spec.noise_level = 0.05;
  spec.seed = 17;
  return ts::MakeSensorData(spec);
}

StatusOr<StreamingAffinity> MakeStream(std::size_t threads, std::size_t interval,
                                       std::size_t refit_period) {
  std::vector<std::string> names;
  for (std::size_t j = 0; j < kSeries; ++j) names.push_back("s" + std::to_string(j));
  StreamingOptions options;
  options.window = kWindow;
  options.rebuild_interval = interval;
  options.mode = UpdateMode::kIncremental;
  options.incremental.exact_refit_period = refit_period;
  // Keep the drift monitor out of the way: these tests compare against a
  // same-clustering rebuild, so escalation would only change the baseline.
  options.incremental.escalation_factor = 100.0;
  options.incremental.escalation_slack = 100.0;
  options.build.afclst.k = 3;
  options.build.build_dft = false;
  options.build.threads = threads;
  return StreamingAffinity::Create(names, options);
}

Status FeedRows(StreamingAffinity* stream, const ts::Dataset& ds, std::size_t begin,
                std::size_t end) {
  std::vector<double> row(ds.matrix.n());
  for (std::size_t i = begin; i < end; ++i) {
    for (std::size_t j = 0; j < ds.matrix.n(); ++j) row[j] = ds.matrix.matrix()(i, j);
    AFFINITY_RETURN_IF_ERROR(stream->Append(row).status);
  }
  return Status::OK();
}

/// The from-scratch comparator: SYMEX+ over the incremental snapshot's
/// window with the incremental snapshot's (extended) clustering, plus a
/// fresh SCAPE index — what a full rebuild would produce had AFCLST
/// returned the maintained clustering.
struct Comparator {
  AffinityModel model;
  ScapeIndex index;
  QueryEngine engine;

  explicit Comparator(AffinityModel m, ScapeIndex idx)
      : model(std::move(m)), index(std::move(idx)), engine(&model.data()) {
    engine.AttachModel(&model);
    engine.AttachScape(&index);
  }
};

StatusOr<std::unique_ptr<Comparator>> BuildComparator(const Affinity& fw,
                                                      const ExecContext& exec) {
  AfclstResult clustering;
  clustering.centers = fw.model().clustering().centers;
  clustering.assignment = fw.model().clustering().assignment;
  clustering.iterations = fw.model().clustering().iterations;
  clustering.projection_errors = fw.model().clustering().projection_errors;
  AFFINITY_ASSIGN_OR_RETURN(AffinityModel model,
                            RunSymex(fw.data(), std::move(clustering), SymexOptions{}, exec));
  AFFINITY_ASSIGN_OR_RETURN(ScapeIndex index, ScapeIndex::Build(model, ScapeOptions{}, exec));
  auto comparator = std::make_unique<Comparator>(std::move(model), std::move(index));
  comparator->engine.SetExec(exec);
  return comparator;
}

/// Bit-identical moments and measures; transforms bitwise when `exact`,
/// within tight quality gates otherwise.
void CompareModels(const AffinityModel& inc, const AffinityModel& fresh, bool exact) {
  ASSERT_EQ(inc.relationship_count(), fresh.relationship_count());
  ASSERT_EQ(inc.pivot_count(), fresh.pivot_count());
  ASSERT_EQ(inc.data().m(), fresh.data().m());
  ASSERT_EQ(inc.data().n(), fresh.data().n());

  // The window itself.
  EXPECT_EQ(inc.data().matrix().MaxAbsDiff(fresh.data().matrix()), 0.0);

  // Per-series moments: bit-identical.
  for (std::size_t j = 0; j < inc.data().n(); ++j) {
    const auto v = static_cast<ts::SeriesId>(j);
    EXPECT_EQ(inc.series_stats(v).mean, fresh.series_stats(v).mean);
    EXPECT_EQ(inc.series_stats(v).variance, fresh.series_stats(v).variance);
    EXPECT_EQ(inc.series_stats(v).sum, fresh.series_stats(v).sum);
    EXPECT_EQ(inc.series_stats(v).sumsq, fresh.series_stats(v).sumsq);
    EXPECT_EQ(inc.series_affine(v).gain, fresh.series_affine(v).gain);
    EXPECT_EQ(inc.series_affine(v).offset, fresh.series_affine(v).offset);
  }

  // Centre L-measures: bit-identical.
  for (const Measure m : LocationMeasures()) {
    for (std::size_t l = 0; l < inc.clustering().k(); ++l) {
      EXPECT_EQ(*inc.CenterLocation(m, static_cast<int>(l)),
                *fresh.CenterLocation(m, static_cast<int>(l)));
    }
  }

  // Pivot measures: bit-identical.
  fresh.ForEachPivot([&](const PivotPair& p, const PairMatrixMeasures& fm) {
    const PairMatrixMeasures* im = inc.FindPivotMeasures(p);
    ASSERT_NE(im, nullptr);
    EXPECT_EQ(im->cov11, fm.cov11);
    EXPECT_EQ(im->cov12, fm.cov12);
    EXPECT_EQ(im->cov22, fm.cov22);
    EXPECT_EQ(im->dot11, fm.dot11);
    EXPECT_EQ(im->dot12, fm.dot12);
    EXPECT_EQ(im->dot22, fm.dot22);
    EXPECT_EQ(im->h1, fm.h1);
    EXPECT_EQ(im->h2, fm.h2);
    EXPECT_EQ(im->mean[0], fm.mean[0]);
    EXPECT_EQ(im->mean[1], fm.mean[1]);
    EXPECT_EQ(im->median[0], fm.median[0]);
    EXPECT_EQ(im->median[1], fm.median[1]);
    EXPECT_EQ(im->mode[0], fm.mode[0]);
    EXPECT_EQ(im->mode[1], fm.mode[1]);
  });

  // Relationships: same structure; transforms bitwise in exact mode,
  // within tight gates otherwise (delta-updated accumulators).
  double max_diff = 0.0;
  fresh.ForEachRelationship([&](const ts::SequencePair& e, const AffineRecord& fr) {
    const AffineRecord* ir = inc.FindRelationship(e);
    ASSERT_NE(ir, nullptr);
    EXPECT_EQ(ir->pivot.Key(), fr.pivot.Key());
    const double diffs[6] = {
        std::fabs(ir->transform.a11 - fr.transform.a11),
        std::fabs(ir->transform.a21 - fr.transform.a21),
        std::fabs(ir->transform.a12 - fr.transform.a12),
        std::fabs(ir->transform.a22 - fr.transform.a22),
        std::fabs(ir->transform.b1 - fr.transform.b1),
        std::fabs(ir->transform.b2 - fr.transform.b2),
    };
    for (double d : diffs) max_diff = std::max(max_diff, d);
  });
  if (exact) {
    EXPECT_EQ(max_diff, 0.0);
  } else {
    EXPECT_LT(max_diff, 1e-7);
  }
}

void ExpectSameSelection(const SelectionResult& a, const SelectionResult& b) {
  EXPECT_EQ(a.series, b.series);
  EXPECT_EQ(a.pairs, b.pairs);
}

/// MET/MER/MEC/top-k answers: same entity sets and order on both engines.
void CompareQueries(const QueryEngine& inc, const QueryEngine& fresh, bool exact) {
  const double value_tol = exact ? 0.0 : 1e-9;

  for (const QueryMethod method : {QueryMethod::kScape, QueryMethod::kAffine}) {
    for (const Measure m : {Measure::kCorrelation, Measure::kCovariance, Measure::kCosine,
                            Measure::kDotProduct}) {
      MetRequest met{m, m == Measure::kCorrelation || m == Measure::kCosine ? 0.85 : 0.01,
                     true};
      auto ia = inc.Met(met, method);
      auto fa = fresh.Met(met, method);
      ASSERT_TRUE(ia.ok() && fa.ok());
      ExpectSameSelection(*ia, *fa);
    }
  }
  // L-measure MET through the index.
  MetRequest loc{Measure::kMean, 0.0, true};
  auto il = inc.Met(loc, QueryMethod::kScape);
  auto fl = fresh.Met(loc, QueryMethod::kScape);
  ASSERT_TRUE(il.ok() && fl.ok());
  ExpectSameSelection(*il, *fl);

  MerRequest mer{Measure::kCorrelation, 0.3, 0.9};
  auto im = inc.Mer(mer, QueryMethod::kScape);
  auto fm = fresh.Mer(mer, QueryMethod::kScape);
  ASSERT_TRUE(im.ok() && fm.ok());
  ExpectSameSelection(*im, *fm);

  // MEC over a subset: L-measure values bit-identical (exact moments);
  // pair values through the (possibly delta-updated) transforms.
  MecRequest mec{Measure::kMean, {0, 3, 5, 7}};
  auto imec = inc.Mec(mec, QueryMethod::kAffine);
  auto fmec = fresh.Mec(mec, QueryMethod::kAffine);
  ASSERT_TRUE(imec.ok() && fmec.ok());
  ASSERT_EQ(imec->location.size(), fmec->location.size());
  for (std::size_t i = 0; i < imec->location.size(); ++i) {
    EXPECT_EQ(imec->location[i], fmec->location[i]);
  }
  MecRequest mec_pair{Measure::kCorrelation, {0, 3, 5, 7}};
  auto ip = inc.Mec(mec_pair, QueryMethod::kAffine);
  auto fp = fresh.Mec(mec_pair, QueryMethod::kAffine);
  ASSERT_TRUE(ip.ok() && fp.ok());
  EXPECT_LE(ip->pair_values.MaxAbsDiff(fp->pair_values), value_tol);

  // Top-k, both directions.
  for (const bool largest : {true, false}) {
    TopKRequest topk{Measure::kCorrelation, 5, largest};
    auto it = inc.TopK(topk, QueryMethod::kScape);
    auto ft = fresh.TopK(topk, QueryMethod::kScape);
    ASSERT_TRUE(it.ok() && ft.ok());
    ASSERT_EQ(it->entries.size(), ft->entries.size());
    for (std::size_t i = 0; i < it->entries.size(); ++i) {
      EXPECT_EQ(it->entries[i].pair, ft->entries[i].pair) << "rank " << i;
      EXPECT_EQ(it->entries[i].series, ft->entries[i].series) << "rank " << i;
      EXPECT_NEAR(it->entries[i].value, ft->entries[i].value, value_tol) << "rank " << i;
    }
  }
}

class IncrementalEquivalence : public ::testing::TestWithParam<int> {};

// The headline contract, at every thread count: slide by 1, 2, and 8 rows
// per refresh; after each refresh the maintained snapshot must agree with
// a from-scratch rebuild over the same window.
TEST_P(IncrementalEquivalence, MatchesFromScratchRebuildAcrossSlides) {
  const auto threads = static_cast<std::size_t>(GetParam());
  const ts::Dataset ds = FeedData();
  for (const std::size_t interval : {1u, 2u, 8u}) {
    auto stream = MakeStream(threads, interval, /*refit_period=*/16);
    ASSERT_TRUE(stream.ok());
    ASSERT_TRUE(FeedRows(&*stream, ds, 0, kWindow).ok());
    ASSERT_TRUE(stream->ready());
    std::size_t fed = kWindow;
    for (int refresh = 0; refresh < 4; ++refresh) {
      ASSERT_TRUE(FeedRows(&*stream, ds, fed, fed + interval).ok());
      fed += interval;
      ASSERT_EQ(stream->snapshot_age(), 0u);
      auto comparator = BuildComparator(*stream->framework(), stream->exec());
      ASSERT_TRUE(comparator.ok());
      CompareModels(stream->framework()->model(), (*comparator)->model, /*exact=*/false);
      CompareQueries(stream->framework()->engine(), (*comparator)->engine, /*exact=*/false);
    }
  }
}

// With exact_refit_period = 1 every accumulator re-materializes each
// refresh: the whole maintained model — transforms included — and every
// query answer must be bit-identical to the from-scratch rebuild.
TEST_P(IncrementalEquivalence, ExactRefitEveryRefreshIsBitIdentical) {
  const auto threads = static_cast<std::size_t>(GetParam());
  const ts::Dataset ds = FeedData();
  auto stream = MakeStream(threads, /*interval=*/4, /*refit_period=*/1);
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(FeedRows(&*stream, ds, 0, kWindow + 12).ok());
  ASSERT_EQ(stream->refresh_count(), 3u);
  auto comparator = BuildComparator(*stream->framework(), stream->exec());
  ASSERT_TRUE(comparator.ok());
  CompareModels(stream->framework()->model(), (*comparator)->model, /*exact=*/true);
  CompareQueries(stream->framework()->engine(), (*comparator)->engine, /*exact=*/true);
}

// Sliding by more than the whole window (interval > window) degenerates to
// "replace everything" and must still agree with the rebuild.
TEST_P(IncrementalEquivalence, SlideLargerThanWindow) {
  const auto threads = static_cast<std::size_t>(GetParam());
  const ts::Dataset ds = FeedData();
  auto stream = MakeStream(threads, /*interval=*/kWindow + 16, /*refit_period=*/16);
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(FeedRows(&*stream, ds, 0, 2 * kWindow + 32).ok());
  ASSERT_EQ(stream->refresh_count(), 1u);
  auto comparator = BuildComparator(*stream->framework(), stream->exec());
  ASSERT_TRUE(comparator.ok());
  // A full-window slide refits everything exactly: bit-identical.
  CompareModels(stream->framework()->model(), (*comparator)->model, /*exact=*/true);
  CompareQueries(stream->framework()->engine(), (*comparator)->engine, /*exact=*/true);
}

INSTANTIATE_TEST_SUITE_P(Threads, IncrementalEquivalence, ::testing::Values(1, 2, 8));

// Thread-count invariance of the maintained model itself (§7): the
// incremental path at 2 and 8 threads produces the bitwise-same model as
// at 1 thread.
TEST(IncrementalDeterminism, SameModelAtAnyThreadCount) {
  const ts::Dataset ds = FeedData();
  auto reference = MakeStream(1, /*interval=*/2, /*refit_period=*/8);
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(FeedRows(&*reference, ds, 0, kWindow + 10).ok());
  for (const std::size_t threads : {2u, 8u}) {
    auto stream = MakeStream(threads, /*interval=*/2, /*refit_period=*/8);
    ASSERT_TRUE(stream.ok());
    ASSERT_TRUE(FeedRows(&*stream, ds, 0, kWindow + 10).ok());
    CompareModels(stream->framework()->model(), reference->framework()->model(),
                  /*exact=*/true);
  }
}

// The delta-updated model stays inside the core/quality gates the full
// rebuild satisfies: residual statistics match the from-scratch model's
// to far below the gate's own scale.
TEST(IncrementalQuality, StaysWithinQualityGates) {
  const ts::Dataset ds = FeedData();
  auto stream = MakeStream(1, /*interval=*/1, /*refit_period=*/32);
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(FeedRows(&*stream, ds, 0, kWindow + 20).ok());
  auto comparator = BuildComparator(*stream->framework(), stream->exec());
  ASSERT_TRUE(comparator.ok());
  auto inc_quality = EvaluateModelQuality(stream->framework()->model());
  auto fresh_quality = EvaluateModelQuality((*comparator)->model);
  ASSERT_TRUE(inc_quality.ok() && fresh_quality.ok());
  EXPECT_NEAR(inc_quality->mean_relative_residual, fresh_quality->mean_relative_residual,
              1e-9);
  EXPECT_NEAR(inc_quality->max_relative_residual, fresh_quality->max_relative_residual, 1e-9);
}

}  // namespace
}  // namespace affinity::core
