// affinity-lint: allow-file(randomness): fixture — exercises file-wide suppression
// Fixture: allow-file must silence a rule across the whole file. Never
// compiled; scanned by lint_test only.
#include <random>

std::mt19937 MakeGen() { return std::mt19937(7); }
