// Fixture: a suppression without a justification must be reported as
// `bad-suppression` AND must not silence the underlying finding. Never
// compiled; scanned by lint_test only.
#include <numeric>
#include <vector>

double Bad(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);  // affinity-lint: allow(fp-accumulate)
}
