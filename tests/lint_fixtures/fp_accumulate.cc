// Fixture: rule `fp-accumulate` must fire on std::accumulate, std::reduce,
// and manual double-reduction loops — and must NOT fire on element-wise
// updates or straight-line rolling updates. Never compiled; scanned by
// lint_test only.
#include <numeric>
#include <vector>

double AccumulateCall(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);  // finding (line 9)
}

double ReduceCall(const std::vector<double>& xs) {
  return std::reduce(xs.begin(), xs.end());  // finding (line 13)
}

double ManualLoop(const double* x, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += x[i];  // finding (line 19)
  }
  return sum;
}

double BracelessLoop(const double* x, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += x[i];  // finding (line 26)
  return total;
}

void ElementWise(std::vector<double>& slots, const double* x, int n) {
  for (int i = 0; i < n; ++i) {
    slots[i] += x[i];  // subscripted target: element-wise, no finding
  }
}

struct Acc {
  double dot = 0.0;
};

void MemberElementWise(std::vector<Acc>& accs, double v) {
  for (Acc& a : accs) {
    a.dot += v;  // member of the loop variable: no finding
  }
}

void RollingUpdate(double v) {
  static double rolled = 0.0;
  rolled += v;  // straight-line (no loop): caller-defined order, no finding
}
