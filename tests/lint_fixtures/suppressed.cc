// Fixture: justified allow() directives must silence findings — both the
// same-line and preceding-comment-line forms. Never compiled; scanned by
// lint_test only.
#include <numeric>
#include <vector>

double SameLine(const std::vector<double>& xs) {
  // affinity-lint: allow(fp-accumulate): fixture — seed oracle, bit-compat asserted in tests
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

double PrevLine(const double* x, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += x[i];  // affinity-lint: allow(fp-accumulate): fixture — sequential by construction
  }
  return sum;
}
