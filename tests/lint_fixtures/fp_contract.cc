// Fixture: rule `fp-contract` must fire on std::fma, the FP_CONTRACT
// pragma, and FMA intrinsics — and must NOT fire on fmax/fmin. Never
// compiled; scanned by lint_test only.
#include <cmath>

#pragma STDC FP_CONTRACT ON

double Fused(double a, double b, double c) {
  return std::fma(a, b, c);
}

double NotFma(double a, double b) {
  return std::fmax(a, b) + std::fmin(a, b);
}

void Intrinsic(__m256d x, __m256d y, __m256d z, __m256d* out) {
  *out = _mm256_fmadd_pd(x, y, z);
}
