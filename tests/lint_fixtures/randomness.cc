// Fixture: rule `randomness` must fire on <random> engines and the libc
// rand family — and must NOT fire on innocent identifiers containing
// "rand". Never compiled; scanned by lint_test only.
#include <random>
#include <cstdlib>

int Roll() {
  std::mt19937 gen(42);
  std::uniform_int_distribution<int> die(1, 6);
  return die(gen);
}

int LibcRoll() {
  return rand() % 6;
}

void Seed() { srand(7); }

int NotRandom(int operand) { return operand + 1; }
