// Fixture: rule `hot-alloc` must fire on allocation keywords inside
// AFFINITY_HOT bodies — and must NOT fire in unmarked functions, on
// declarations without bodies, or on preallocated writes. Never
// compiled; scanned by lint_test only.
#include <memory>
#include <vector>

struct Pool {
  std::vector<double> slots;
  double* cursor = nullptr;
};

AFFINITY_HOT void HotAppend(Pool& pool, double v) {
  *pool.cursor = v;
  double* leaked = new double(v);
  (void)leaked;
  auto owned = std::make_unique<double>(v);
  (void)owned;
  pool.slots.resize(100);
  std::vector<double> scratch;
  (void)scratch;
}

AFFINITY_HOT void HotDeclared(Pool& pool);

void ColdAppend(Pool& pool, double v) {
  pool.slots.push_back(v);
  double* p = new double(v);
  delete p;
}
