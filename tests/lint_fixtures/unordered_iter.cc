// Fixture: rule `unordered-iter` must fire on range-for and iterator
// loops over unordered containers — and must NOT fire on point lookups
// or ordered containers. Never compiled; scanned by lint_test only.
#include <unordered_map>
#include <vector>

class Registry {
 public:
  std::vector<int> Ordered() const {
    std::vector<int> out;
    for (const auto& [key, value] : table_) {
      out.push_back(value);
    }
    return out;
  }

  int Sum() const {
    int s = 0;
    for (auto it = table_.begin(); it != table_.end(); ++it) s += it->second;
    return s;
  }

  bool Has(int k) const {
    return table_.find(k) != table_.end();
  }

 private:
  std::unordered_map<int, int> table_;
};

std::vector<int> OrderedVec(const std::vector<int>& xs) {
  std::vector<int> out;
  for (int x : xs) out.push_back(x);
  return out;
}
