// Tests for affinity_lint (tools/affinity_lint) — one fixture per rule,
// plus suppression and justification coverage. Fixtures live in
// tests/lint_fixtures/ and are never compiled; each test loads one into
// a SourceFile whose path places it wherever the scenario needs (the
// path-scoped exemptions key off SourceFile::path).

#include "affinity_lint/lint.h"

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace affinity::lint {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(AFFINITY_LINT_FIXTURES) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Lints one fixture as if it lived at `as_path`.
LintResult LintFixtureAs(const std::string& name, const std::string& as_path) {
  SourceFile src;
  src.path = as_path;
  src.content = ReadFixture(name);
  return LintSources({src});
}

/// The 1-based lines on which `rule` fired.
std::set<std::size_t> LinesOf(const LintResult& result, const std::string& rule) {
  std::set<std::size_t> lines;
  for (const Finding& f : result.findings) {
    if (f.rule == rule) lines.insert(f.line);
  }
  return lines;
}

using Lines = std::set<std::size_t>;

TEST(LintFpAccumulate, FiresOnReductionsOnly) {
  const LintResult r = LintFixtureAs("fp_accumulate.cc", "src/core/query_fixture.cc");
  // std::accumulate (9), std::reduce (13), braced manual loop (19),
  // braceless manual loop (26) — and nothing on the element-wise,
  // member-of-loop-var, or straight-line rolling updates.
  EXPECT_EQ(LinesOf(r, "fp-accumulate"), (Lines{9, 13, 19, 26}));
  EXPECT_EQ(r.findings.size(), 4u);
}

TEST(LintFpAccumulate, KernelsPathIsExempt) {
  // The canonical blocked chains live in core/kernels* — the same text
  // there is the implementation of the contract, not a violation.
  const LintResult r = LintFixtureAs("fp_accumulate.cc", "src/core/kernels_fixture.cc");
  EXPECT_TRUE(r.findings.empty()) << FormatReport(r);
}

TEST(LintFpContract, FiresOnFmaPragmaAndIntrinsics) {
  const LintResult r = LintFixtureAs("fp_contract.cc", "src/ts/fixture.cc");
  // FP_CONTRACT pragma (6), std::fma (9), _mm256_fmadd_pd (17) — and
  // nothing on std::fmax/std::fmin.
  EXPECT_EQ(LinesOf(r, "fp-contract"), (Lines{6, 9, 17}));
  EXPECT_EQ(r.findings.size(), 3u);
}

TEST(LintUnorderedIter, FiresOnRangeForAndIteratorLoops) {
  const LintResult r = LintFixtureAs("unordered_iter.cc", "src/core/fixture.cc");
  // Range-for over table_ (11), iterator loop over table_ (19) — and
  // nothing on the point lookup or the ordered-vector loop.
  EXPECT_EQ(LinesOf(r, "unordered-iter"), (Lines{11, 19}));
  EXPECT_EQ(r.findings.size(), 2u);
}

TEST(LintRandomness, FiresOutsideCommonRandom) {
  const LintResult r = LintFixtureAs("randomness.cc", "src/core/fixture.cc");
  // <random> include (4), mt19937 (8), distribution (9), rand() (14),
  // srand() (17) — and nothing on the identifier containing "rand".
  EXPECT_EQ(LinesOf(r, "randomness"), (Lines{4, 8, 9, 14, 17}));
  EXPECT_EQ(r.findings.size(), 5u);
}

TEST(LintRandomness, CommonRandomPathIsExempt) {
  const LintResult r = LintFixtureAs("randomness.cc", "src/common/random.cc");
  EXPECT_TRUE(r.findings.empty()) << FormatReport(r);
}

TEST(LintHotAlloc, FiresInsideMarkedBodiesOnly) {
  const LintResult r = LintFixtureAs("hot_alloc.cc", "src/ts/fixture.cc");
  // new (15), make_unique (17), .resize( (19), owning vector local (20)
  // — and nothing in the unmarked ColdAppend or on the body-less
  // declaration.
  EXPECT_EQ(LinesOf(r, "hot-alloc"), (Lines{15, 17, 19, 20}));
  EXPECT_EQ(r.findings.size(), 4u);
}

TEST(LintSuppression, JustifiedAllowSilencesBothForms) {
  // Same-line and preceding-comment-line allow() forms, both justified:
  // all findings silenced and both suppressions counted as used.
  const LintResult r = LintFixtureAs("suppressed.cc", "src/core/fixture.cc");
  EXPECT_TRUE(r.findings.empty()) << FormatReport(r);
  EXPECT_EQ(r.suppressions_used, 2u);
}

TEST(LintSuppression, AllowFileSilencesRuleFileWide) {
  const LintResult r = LintFixtureAs("suppressed_file.cc", "src/core/fixture.cc");
  EXPECT_TRUE(r.findings.empty()) << FormatReport(r);
  EXPECT_EQ(r.suppressions_used, 2u);  // include + engine use, both covered
}

TEST(LintSuppression, UnjustifiedAllowIsReportedAndIgnored) {
  const LintResult r = LintFixtureAs("unjustified.cc", "src/core/fixture.cc");
  // The bare allow() is itself a finding AND does not silence the
  // underlying fp-accumulate finding on the same line.
  EXPECT_EQ(LinesOf(r, "bad-suppression"), (Lines{8}));
  EXPECT_EQ(LinesOf(r, "fp-accumulate"), (Lines{8}));
  EXPECT_EQ(r.suppressions_used, 0u);
}

TEST(LintSuppression, CommentedOutCodeDoesNotFire) {
  SourceFile src;
  src.path = "src/core/fixture.cc";
  src.content =
      "// double s = std::accumulate(xs.begin(), xs.end(), 0.0);\n"
      "/* std::mt19937 gen(1); */\n"
      "const char* kDoc = \"std::reduce is banned\";\n";
  const LintResult r = LintSources({src});
  EXPECT_TRUE(r.findings.empty()) << FormatReport(r);
}

TEST(LintReport, FormatsFileLineRuleAndSummary) {
  const LintResult r = LintFixtureAs("unjustified.cc", "src/core/fixture.cc");
  const std::string report = FormatReport(r);
  EXPECT_NE(report.find("src/core/fixture.cc:8: [bad-suppression]"), std::string::npos)
      << report;
  EXPECT_NE(report.find("2 finding(s)"), std::string::npos) << report;
}

}  // namespace
}  // namespace affinity::lint
