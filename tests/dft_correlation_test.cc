// Tests for the WF baseline (dft/dft_correlation.h).

#include "dft/dft_correlation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "ts/generators.h"
#include "ts/stats.h"

namespace affinity::dft {
namespace {

constexpr double kPi = 3.14159265358979323846;

ts::DataMatrix SinusoidFamily(std::size_t m, std::size_t n) {
  // Smooth low-frequency signals: the regime WF is designed for.
  la::Matrix values(m, n);
  Xoshiro256 rng(11);
  for (std::size_t j = 0; j < n; ++j) {
    const double phase = rng.Uniform(0.0, 2.0 * kPi);
    const double amp = rng.Uniform(0.5, 2.0);
    const double offset = rng.Uniform(-5.0, 5.0);
    for (std::size_t i = 0; i < m; ++i) {
      const double t = static_cast<double>(i) / static_cast<double>(m);
      values(i, j) = offset + amp * std::sin(2.0 * kPi * t + phase) +
                     0.3 * amp * std::sin(4.0 * kPi * t + 2.0 * phase);
    }
  }
  return ts::DataMatrix(std::move(values));
}

TEST(DftCorrelation, BuildValidatesArguments) {
  const ts::DataMatrix dm = SinusoidFamily(32, 3);
  EXPECT_FALSE(DftCorrelationEstimator::Build(dm, 0).ok());
  la::Matrix one_row(1, 2);
  EXPECT_FALSE(DftCorrelationEstimator::Build(ts::DataMatrix(one_row)).ok());
}

TEST(DftCorrelation, SelfCorrelationIsOne) {
  const ts::DataMatrix dm = SinusoidFamily(64, 3);
  auto est = DftCorrelationEstimator::Build(dm);
  ASSERT_TRUE(est.ok());
  for (ts::SeriesId v = 0; v < 3; ++v) EXPECT_DOUBLE_EQ(est->Estimate(v, v), 1.0);
}

TEST(DftCorrelation, IdenticalSeriesEstimateNearOne) {
  la::Matrix values(40, 2);
  for (std::size_t i = 0; i < 40; ++i) {
    const double x = std::sin(2.0 * kPi * static_cast<double>(i) / 40.0);
    values(i, 0) = x;
    values(i, 1) = 3.0 * x + 7.0;  // affine image: exact correlation 1
  }
  auto est = DftCorrelationEstimator::Build(ts::DataMatrix(values));
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->Estimate(0, 1), 1.0, 1e-9);
}

TEST(DftCorrelation, AntiCorrelatedEstimateNearMinusOne) {
  la::Matrix values(40, 2);
  for (std::size_t i = 0; i < 40; ++i) {
    const double x = std::sin(2.0 * kPi * static_cast<double>(i) / 40.0);
    values(i, 0) = x;
    values(i, 1) = -2.0 * x + 1.0;
  }
  auto est = DftCorrelationEstimator::Build(ts::DataMatrix(values));
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->Estimate(0, 1), -1.0, 1e-9);
}

TEST(DftCorrelation, AccurateOnSmoothSeries) {
  const ts::DataMatrix dm = SinusoidFamily(128, 8);
  auto est = DftCorrelationEstimator::Build(dm);
  ASSERT_TRUE(est.ok());
  for (ts::SeriesId u = 0; u < 8; ++u) {
    for (ts::SeriesId v = u + 1; v < 8; ++v) {
      const double truth = ts::stats::Correlation(dm.ColumnData(u), dm.ColumnData(v), dm.m());
      EXPECT_NEAR(est->Estimate(u, v), truth, 0.05) << "pair (" << u << "," << v << ")";
    }
  }
}

TEST(DftCorrelation, OverestimatesOnNoise) {
  // The truncated distance underestimates, so ρ̂ >= ρ (up to clamping) —
  // the known WF bias on white-noise-like ("uncooperative") series.
  Xoshiro256 rng(3);
  la::Matrix values(200, 2);
  for (std::size_t i = 0; i < 200; ++i) {
    values(i, 0) = rng.Gaussian();
    values(i, 1) = rng.Gaussian();
  }
  const ts::DataMatrix dm(values);
  auto est = DftCorrelationEstimator::Build(dm);
  ASSERT_TRUE(est.ok());
  const double truth = ts::stats::Correlation(dm.ColumnData(0), dm.ColumnData(1), 200);
  EXPECT_GE(est->Estimate(0, 1), truth - 1e-9);
}

TEST(DftCorrelation, EstimateIsClamped) {
  const ts::DataMatrix dm = SinusoidFamily(64, 6);
  auto est = DftCorrelationEstimator::Build(dm);
  ASSERT_TRUE(est.ok());
  for (ts::SeriesId u = 0; u < 6; ++u) {
    for (ts::SeriesId v = 0; v < 6; ++v) {
      const double r = est->Estimate(u, v);
      EXPECT_GE(r, -1.0);
      EXPECT_LE(r, 1.0);
    }
  }
}

TEST(DftCorrelation, DegenerateConstantSeriesEstimatesZero) {
  la::Matrix values(32, 2);
  for (std::size_t i = 0; i < 32; ++i) {
    values(i, 0) = 5.0;  // constant
    values(i, 1) = std::sin(static_cast<double>(i));
  }
  auto est = DftCorrelationEstimator::Build(ts::DataMatrix(values));
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->Estimate(0, 1), 0.0);
}

TEST(DftCorrelation, EstimateAllIsSymmetricWithUnitDiagonal) {
  const ts::DataMatrix dm = SinusoidFamily(64, 5);
  auto est = DftCorrelationEstimator::Build(dm);
  ASSERT_TRUE(est.ok());
  const la::Matrix all = est->EstimateAll();
  for (std::size_t u = 0; u < 5; ++u) {
    EXPECT_DOUBLE_EQ(all(u, u), 1.0);
    for (std::size_t v = 0; v < 5; ++v) EXPECT_DOUBLE_EQ(all(u, v), all(v, u));
  }
}

TEST(DftCorrelation, CoefficientCountIsCappedByHalfLength) {
  const ts::DataMatrix dm = SinusoidFamily(8, 2);
  auto est = DftCorrelationEstimator::Build(dm, 100);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->coefficients(), 4u);
}

TEST(DftCorrelation, MoreCoefficientsImproveAccuracy) {
  const ts::Dataset ds = ts::MakeSensorData(
      {.num_series = 10, .num_samples = 100, .num_clusters = 3, .noise_level = 0.1, .seed = 5});
  double err_small = 0, err_large = 0;
  auto est1 = DftCorrelationEstimator::Build(ds.matrix, 2);
  auto est2 = DftCorrelationEstimator::Build(ds.matrix, 20);
  ASSERT_TRUE(est1.ok());
  ASSERT_TRUE(est2.ok());
  for (ts::SeriesId u = 0; u < 10; ++u) {
    for (ts::SeriesId v = u + 1; v < 10; ++v) {
      const double truth =
          ts::stats::Correlation(ds.matrix.ColumnData(u), ds.matrix.ColumnData(v), 100);
      err_small += std::fabs(est1->Estimate(u, v) - truth);
      err_large += std::fabs(est2->Estimate(u, v) - truth);
    }
  }
  EXPECT_LE(err_large, err_small + 1e-12);
}

}  // namespace
}  // namespace affinity::dft
