// Tests for the masked pairwise-complete kernels (core/kernels.h,
// DESIGN.md §12): bitwise identity with the dense kernels on a full
// mask, pairwise-complete sums against sequential scalar oracles at the
// ISSUE lengths with random and edge masks, thread-count invariance of
// the masked marginal hoist, and the masked measure layer's degenerate
// conventions.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/exec_context.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/kernels.h"
#include "core/measures.h"

namespace affinity::core {
namespace {

// The checklist lengths: empty, sub-lane, short, around one block, past it.
const std::size_t kLengths[] = {0, 1, 7, 1023, 1024, 1025};

struct MaskedCase {
  const char* name;
  std::vector<std::uint8_t> mask_x;
  std::vector<std::uint8_t> mask_y;
};

std::vector<double> RandomColumn(std::size_t m, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> x(m);
  for (auto& v : x) v = rng.Uniform(-3.0, 3.0);
  return x;
}

std::vector<MaskedCase> MakeMasks(std::size_t m) {
  Xoshiro256 rng(m * 101 + 3);
  std::vector<MaskedCase> cases;
  cases.push_back({"full", std::vector<std::uint8_t>(m, 1), std::vector<std::uint8_t>(m, 1)});
  cases.push_back({"empty", std::vector<std::uint8_t>(m, 0), std::vector<std::uint8_t>(m, 0)});
  MaskedCase random{"random", std::vector<std::uint8_t>(m), std::vector<std::uint8_t>(m)};
  for (auto& b : random.mask_x) b = rng.NextBounded(4) != 0 ? 1 : 0;
  for (auto& b : random.mask_y) b = rng.NextBounded(4) != 0 ? 1 : 0;
  cases.push_back(std::move(random));
  // Edge masks: only the first row valid / only the last row valid /
  // disjoint halves (pairwise-complete set is empty though both series
  // have plenty of valid rows).
  MaskedCase first{"first-only", std::vector<std::uint8_t>(m, 0), std::vector<std::uint8_t>(m, 0)};
  MaskedCase last{"last-only", std::vector<std::uint8_t>(m, 0), std::vector<std::uint8_t>(m, 0)};
  MaskedCase disjoint{"disjoint", std::vector<std::uint8_t>(m, 0), std::vector<std::uint8_t>(m, 0)};
  if (m > 0) {
    first.mask_x[0] = first.mask_y[0] = 1;
    last.mask_x[m - 1] = last.mask_y[m - 1] = 1;
    for (std::size_t i = 0; i < m; ++i) {
      if (i < m / 2) {
        disjoint.mask_x[i] = 1;
      } else {
        disjoint.mask_y[i] = 1;
      }
    }
  }
  cases.push_back(std::move(first));
  cases.push_back(std::move(last));
  cases.push_back(std::move(disjoint));
  return cases;
}

// Sequential pairwise-complete oracle.
struct OracleMoments {
  double sx = 0, sxx = 0, sy = 0, syy = 0, sxy = 0;
  std::size_t valid = 0;
};

OracleMoments SeqPairwise(const std::vector<double>& x, const std::vector<double>& y,
                          const std::vector<std::uint8_t>& mx,
                          const std::vector<std::uint8_t>& my) {
  OracleMoments o;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (mx[i] == 0 || my[i] == 0) continue;
    o.sx += x[i];
    o.sxx += x[i] * x[i];
    o.sy += y[i];
    o.syy += y[i] * y[i];
    o.sxy += x[i] * y[i];
    ++o.valid;
  }
  return o;
}

double RelTol(double reference) { return 1e-12 * (1.0 + std::fabs(reference)); }

TEST(MaskedKernels, FullMaskIsBitwiseIdenticalToDense) {
  for (const std::size_t m : kLengths) {
    const std::vector<double> x = RandomColumn(m, m * 7 + 1);
    const std::vector<double> y = RandomColumn(m, m * 7 + 2);
    const std::vector<std::uint8_t> full(m, 1);
    for (const std::size_t anchor : {std::size_t{0}, std::size_t{5}, std::size_t{1023}}) {
      const kernels::Marginals dense = kernels::ColumnMarginals(x.data(), m, anchor);
      // Explicit full mask and the null-mask convention must both take
      // the dense fast path.
      for (const std::uint8_t* mask : {full.data(), static_cast<const std::uint8_t*>(nullptr)}) {
        const kernels::MaskedMarginals got =
            kernels::MaskedColumnMarginals(x.data(), mask, m, anchor);
        EXPECT_EQ(got.valid, m);
        EXPECT_EQ(got.marginals.sum, dense.sum) << "m=" << m << " anchor=" << anchor;
        EXPECT_EQ(got.marginals.sumsq, dense.sumsq) << "m=" << m << " anchor=" << anchor;
        EXPECT_EQ(got.marginals.min, dense.min);
        EXPECT_EQ(got.marginals.max, dense.max);
      }

      double dense_pair[5];
      kernels::FusedPairMoments(x.data(), y.data(), m, dense_pair, anchor);
      double masked_pair[5];
      std::size_t valid = 0;
      kernels::MaskedFusedPairMoments(x.data(), y.data(), full.data(), nullptr, m, masked_pair,
                                      &valid, anchor);
      EXPECT_EQ(valid, m);
      for (int c = 0; c < 5; ++c) {
        EXPECT_EQ(masked_pair[c], dense_pair[c]) << "m=" << m << " anchor=" << anchor << " c=" << c;
      }
    }
  }
}

TEST(MaskedKernels, PairwiseCompleteMatchesScalarOracle) {
  for (const std::size_t m : kLengths) {
    const std::vector<double> x = RandomColumn(m, m * 13 + 1);
    const std::vector<double> y = RandomColumn(m, m * 13 + 2);
    for (const MaskedCase& c : MakeMasks(m)) {
      const OracleMoments want = SeqPairwise(x, y, c.mask_x, c.mask_y);
      double got[5];
      std::size_t valid = 0;
      kernels::MaskedFusedPairMoments(x.data(), y.data(), c.mask_x.data(), c.mask_y.data(), m, got,
                                      &valid, 0);
      EXPECT_EQ(valid, want.valid) << c.name << " m=" << m;
      EXPECT_NEAR(got[0], want.sx, RelTol(want.sx)) << c.name << " m=" << m;
      EXPECT_NEAR(got[1], want.sxx, RelTol(want.sxx)) << c.name << " m=" << m;
      EXPECT_NEAR(got[2], want.sy, RelTol(want.sy)) << c.name << " m=" << m;
      EXPECT_NEAR(got[3], want.syy, RelTol(want.syy)) << c.name << " m=" << m;
      EXPECT_NEAR(got[4], want.sxy, RelTol(want.sxy)) << c.name << " m=" << m;

      // Single-column marginals agree with a one-sided oracle.
      const kernels::MaskedMarginals mg =
          kernels::MaskedColumnMarginals(x.data(), c.mask_x.data(), m, 0);
      double sum = 0, sumsq = 0;
      std::size_t count = 0;
      bool seen = false;
      double lo = 0, hi = 0;
      for (std::size_t i = 0; i < m; ++i) {
        if (c.mask_x[i] == 0) continue;
        sum += x[i];
        sumsq += x[i] * x[i];
        if (!seen || x[i] < lo) lo = x[i];
        if (!seen || x[i] > hi) hi = x[i];
        seen = true;
        ++count;
      }
      EXPECT_EQ(mg.valid, count) << c.name << " m=" << m;
      EXPECT_NEAR(mg.marginals.sum, sum, RelTol(sum)) << c.name << " m=" << m;
      EXPECT_NEAR(mg.marginals.sumsq, sumsq, RelTol(sumsq)) << c.name << " m=" << m;
      if (seen) {
        EXPECT_EQ(mg.marginals.min, lo) << c.name << " m=" << m;
        EXPECT_EQ(mg.marginals.max, hi) << c.name << " m=" << m;
      }
    }
  }
}

TEST(MaskedKernels, MaskedAnchoringIsWindowInvariant) {
  // The masked slow path runs the same anchored blocked accumulation as
  // the dense kernels: a window's masked sums depend only on
  // (anchor mod kBlockElems, m), so sliding by a whole block re-produces
  // bit-identical partial sums for identical content.
  const std::size_t m = 1500;
  const std::vector<double> x = RandomColumn(m, 99);
  std::vector<std::uint8_t> mask(m, 1);
  Xoshiro256 rng(17);
  for (auto& b : mask) b = rng.NextBounded(5) != 0 ? 1 : 0;

  double a0[5], a1[5];
  std::size_t v0 = 0, v1 = 0;
  kernels::MaskedFusedPairMoments(x.data(), x.data(), mask.data(), mask.data(), m, a0, &v0,
                                  kernels::kBlockElems);
  kernels::MaskedFusedPairMoments(x.data(), x.data(), mask.data(), mask.data(), m, a1, &v1,
                                  2 * kernels::kBlockElems);
  EXPECT_EQ(v0, v1);
  for (int c = 0; c < 5; ++c) EXPECT_EQ(a0[c], a1[c]);
}

TEST(MaskedKernels, HoistIsThreadCountInvariant) {
  const std::size_t m = 1025;
  const std::size_t n = 17;
  std::vector<std::vector<double>> data(n);
  std::vector<std::vector<std::uint8_t>> masks(n);
  std::vector<const double*> columns(n);
  std::vector<const std::uint8_t*> mask_ptrs(n);
  Xoshiro256 rng(5);
  for (std::size_t j = 0; j < n; ++j) {
    data[j] = RandomColumn(m, 1000 + j);
    masks[j].assign(m, 1);
    if (j % 3 != 0) {  // every third column stays fully valid (dense path)
      for (auto& b : masks[j]) b = rng.NextBounded(6) != 0 ? 1 : 0;
    }
    columns[j] = data[j].data();
    mask_ptrs[j] = j % 4 == 1 ? nullptr : masks[j].data();  // exercise null entries
  }

  const std::vector<kernels::MaskedMarginals> seq =
      kernels::HoistMaskedMarginals(columns, mask_ptrs, m, ExecContext{});
  ASSERT_EQ(seq.size(), n);
  for (const std::size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    const std::vector<kernels::MaskedMarginals> par =
        kernels::HoistMaskedMarginals(columns, mask_ptrs, m, ExecContext{&pool});
    ASSERT_EQ(par.size(), n);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(par[j].valid, seq[j].valid) << "threads=" << threads << " j=" << j;
      EXPECT_EQ(par[j].marginals.sum, seq[j].marginals.sum) << "threads=" << threads << " j=" << j;
      EXPECT_EQ(par[j].marginals.sumsq, seq[j].marginals.sumsq)
          << "threads=" << threads << " j=" << j;
      EXPECT_EQ(par[j].marginals.min, seq[j].marginals.min);
      EXPECT_EQ(par[j].marginals.max, seq[j].marginals.max);
    }
  }

  // Empty mask list means every column is dense.
  const std::vector<kernels::MaskedMarginals> dense =
      kernels::HoistMaskedMarginals(columns, {}, m, ExecContext{});
  for (std::size_t j = 0; j < n; ++j) {
    const kernels::Marginals want = kernels::ColumnMarginals(columns[j], m, 0);
    EXPECT_EQ(dense[j].valid, m);
    EXPECT_EQ(dense[j].marginals.sum, want.sum);
    EXPECT_EQ(dense[j].marginals.sumsq, want.sumsq);
  }
}

TEST(MaskedKernels, MaskHelpers) {
  const std::vector<std::uint8_t> full(100, 1);
  std::vector<std::uint8_t> holey(100, 1);
  holey[3] = holey[97] = 0;
  EXPECT_TRUE(kernels::MaskAllValid(nullptr, 100));
  EXPECT_TRUE(kernels::MaskAllValid(full.data(), 100));
  EXPECT_FALSE(kernels::MaskAllValid(holey.data(), 100));
  EXPECT_TRUE(kernels::MaskAllValid(holey.data(), 0));
  EXPECT_EQ(kernels::MaskInvalidCount(nullptr, 100), 0u);
  EXPECT_EQ(kernels::MaskInvalidCount(holey.data(), 100), 2u);
}

TEST(MaskedMeasures, PairwiseCompleteMeasureMatchesDenseOnFullMask) {
  const std::size_t m = 512;
  const std::vector<double> x = RandomColumn(m, 41);
  const std::vector<double> y = RandomColumn(m, 42);
  for (const Measure ms : {Measure::kCorrelation, Measure::kCosine, Measure::kCovariance}) {
    const auto dense = NaivePairMeasureScalar(ms, x.data(), y.data(), m);
    ASSERT_TRUE(dense.ok());
    const auto masked = NaivePairMeasureMasked(ms, x.data(), y.data(), nullptr, nullptr, m);
    ASSERT_TRUE(masked.ok());
    EXPECT_NEAR(*masked, *dense, 1e-9 * (1.0 + std::fabs(*dense)));
  }
}

TEST(MaskedMeasures, MaskedMeasureEqualsDenseMeasureOfCompactedRows) {
  // Pairwise-complete semantics: the masked measure over (x, y, masks)
  // is the dense measure over the compacted pairwise-complete rows.
  const std::size_t m = 300;
  const std::vector<double> x = RandomColumn(m, 51);
  const std::vector<double> y = RandomColumn(m, 52);
  Xoshiro256 rng(53);
  std::vector<std::uint8_t> mx(m), my(m);
  for (auto& b : mx) b = rng.NextBounded(5) != 0 ? 1 : 0;
  for (auto& b : my) b = rng.NextBounded(5) != 0 ? 1 : 0;
  std::vector<double> cx, cy;
  for (std::size_t i = 0; i < m; ++i) {
    if (mx[i] && my[i]) {
      cx.push_back(x[i]);
      cy.push_back(y[i]);
    }
  }
  ASSERT_GT(cx.size(), 10u);
  for (const Measure ms : {Measure::kCorrelation, Measure::kCosine, Measure::kCovariance}) {
    const auto masked = NaivePairMeasureMasked(ms, x.data(), y.data(), mx.data(), my.data(), m);
    ASSERT_TRUE(masked.ok());
    const auto dense = NaivePairMeasureScalar(ms, cx.data(), cy.data(), cx.size());
    ASSERT_TRUE(dense.ok());
    EXPECT_NEAR(*masked, *dense, 1e-9 * (1.0 + std::fabs(*dense)));
  }
}

TEST(MaskedMeasures, DegenerateAndUnsupportedCases) {
  const std::size_t m = 64;
  const std::vector<double> x = RandomColumn(m, 61);
  const std::vector<double> y = RandomColumn(m, 62);
  const std::vector<std::uint8_t> none(m, 0);
  // Zero pairwise-complete rows degenerate to measure 0, not an error.
  const auto empty =
      NaivePairMeasureMasked(Measure::kCorrelation, x.data(), y.data(), none.data(), nullptr, m);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(*empty, 0.0);
  // L-measures are not moment-expressible; the masked path rejects them.
  const auto loc = NaivePairMeasureMasked(Measure::kMean, x.data(), y.data(), nullptr, nullptr, m);
  EXPECT_FALSE(loc.ok());

  PairMoments pm = ComputePairMomentsMasked(x.data(), y.data(), none.data(), none.data(), m);
  EXPECT_EQ(pm.m, 0u);
}

}  // namespace
}  // namespace affinity::core
