// Tests for lock-free snapshot serving (DESIGN.md §11): per-refresh
// publication, bitwise identity with the live engine/router, epoch
// pinning across maintenance, kUnavailable fallback semantics, the
// heat-adaptive cross co-moment watch-list, and the sparse-movement
// SCAPE refresh fast path.

#include "serve/serve_query.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/streaming.h"
#include "shard/sharded.h"
#include "ts/generators.h"

namespace affinity::shard {
namespace {

using core::FreshnessOptions;
using core::Measure;
using core::MecRequest;
using core::MecResponse;
using core::MetRequest;
using core::MerRequest;
using core::QueryMethod;
using core::SelectionResult;
using core::StreamingAffinity;
using core::StreamingOptions;
using core::TopKRequest;
using core::TopKResult;

std::string TempPath(const std::string& name) { return ::testing::TempDir() + "/" + name; }

std::vector<std::string> Names(std::size_t n) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back("s" + std::to_string(i));
  return out;
}

ts::Dataset TestData(std::size_t n = 10, std::uint64_t seed = 12) {
  ts::DatasetSpec spec;
  spec.num_series = n;
  spec.num_samples = 240;
  spec.num_clusters = 3;
  spec.noise_level = 0.02;
  spec.seed = seed;
  return ts::MakeSensorData(spec);
}

StreamingOptions StreamOptions(std::size_t threads = 1) {
  StreamingOptions options;
  options.window = 40;
  options.rebuild_interval = 20;
  options.mode = core::UpdateMode::kIncremental;
  options.build.afclst.k = 2;
  options.build.build_dft = false;
  options.build.threads = threads;
  return options;
}

ShardedOptions ShardOptions(std::size_t shards, std::size_t threads = 1) {
  ShardedOptions options;
  options.shards = shards;
  options.streaming = StreamOptions(threads);
  return options;
}

void FeedStream(StreamingAffinity* stream, const ts::Dataset& ds, std::size_t begin,
                std::size_t end) {
  std::vector<double> row(ds.matrix.n());
  for (std::size_t i = begin; i < end; ++i) {
    for (std::size_t j = 0; j < ds.matrix.n(); ++j) row[j] = ds.matrix.matrix()(i, j);
    ASSERT_TRUE(stream->Append(row).ok());
  }
}

void Feed(ShardedAffinity* service, const ts::Dataset& ds, std::size_t begin, std::size_t end) {
  std::vector<double> row(ds.matrix.n());
  for (std::size_t i = begin; i < end; ++i) {
    for (std::size_t j = 0; j < ds.matrix.n(); ++j) row[j] = ds.matrix.matrix()(i, j);
    ASSERT_TRUE(service->Append(row).ok());
  }
}

// Bitwise comparison helpers: EXPECT_EQ on doubles is deliberate — the
// serving contract is bitwise identity, not tolerance.

void ExpectSameSelection(const SelectionResult& served, const SelectionResult& live) {
  EXPECT_EQ(served.series, live.series);
  EXPECT_EQ(served.pairs, live.pairs);
  EXPECT_EQ(served.prune.accepted_unverified, live.prune.accepted_unverified);
  EXPECT_EQ(served.prune.verified, live.prune.verified);
  EXPECT_EQ(served.plan.method, live.plan.method);
}

void ExpectSameTopK(const TopKResult& served, const TopKResult& live) {
  ASSERT_EQ(served.entries.size(), live.entries.size());
  for (std::size_t i = 0; i < live.entries.size(); ++i) {
    EXPECT_EQ(served.entries[i].pair, live.entries[i].pair);
    EXPECT_EQ(served.entries[i].series, live.entries[i].series);
    EXPECT_EQ(served.entries[i].value, live.entries[i].value) << "entry " << i;
  }
  EXPECT_EQ(served.plan.method, live.plan.method);
}

void ExpectSameMec(const MecResponse& served, const MecResponse& live) {
  ASSERT_EQ(served.location.size(), live.location.size());
  for (std::size_t i = 0; i < live.location.size(); ++i)
    EXPECT_EQ(served.location[i], live.location[i]) << "location " << i;
  ASSERT_EQ(served.pair_values.rows(), live.pair_values.rows());
  ASSERT_EQ(served.pair_values.cols(), live.pair_values.cols());
  for (std::size_t i = 0; i < live.pair_values.rows(); ++i)
    for (std::size_t j = 0; j < live.pair_values.cols(); ++j)
      EXPECT_EQ(served.pair_values(i, j), live.pair_values(i, j)) << "cell " << i << "," << j;
}

// ---------------------------------------------------------------------------
// Single-instance serving: serve::SnapshotXxx vs the raw live engine.
// ---------------------------------------------------------------------------

TEST(ServeSnapshot, MirrorsLiveEngineBitwise) {
  const ts::Dataset ds = TestData();
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto stream = StreamingAffinity::Create(Names(10), StreamOptions(threads));
    ASSERT_TRUE(stream.ok());
    FeedStream(&*stream, ds, 0, 60);
    ASSERT_TRUE(stream->ready());
    auto snap = stream->serving();
    ASSERT_NE(snap, nullptr);
    EXPECT_GE(snap->generation, 2u);  // published at rows 40 and 60
    EXPECT_EQ(snap->snapshot_row, 60u);
    const auto& engine = stream->framework()->engine();

    const QueryMethod methods[] = {QueryMethod::kAuto, QueryMethod::kNaive, QueryMethod::kAffine,
                                   QueryMethod::kScape};
    for (QueryMethod method : methods) {
      SCOPED_TRACE(std::string("method=") + std::string(core::QueryMethodName(method)));
      // MET over a pair measure, a derived measure, and a location measure.
      for (const MetRequest& req :
           {MetRequest{Measure::kCovariance, 0.0, true}, MetRequest{Measure::kCorrelation, 0.9, true},
            MetRequest{Measure::kMean, 0.0, false}}) {
        auto live = engine.Met(req, method);
        auto served = serve::SnapshotMet(*snap, req, method);
        ASSERT_TRUE(live.ok());
        ASSERT_TRUE(served.ok());
        ExpectSameSelection(*served, *live);
      }
      // MER.
      for (const MerRequest& req :
           {MerRequest{Measure::kCorrelation, 0.2, 0.9}, MerRequest{Measure::kCovariance, -0.5, 0.5}}) {
        auto live = engine.Mer(req, method);
        auto served = serve::SnapshotMer(*snap, req, method);
        ASSERT_TRUE(live.ok());
        ASSERT_TRUE(served.ok());
        ExpectSameSelection(*served, *live);
      }
      // Top-k: values compare bitwise.
      for (const TopKRequest& req :
           {TopKRequest{Measure::kCorrelation, 5, true}, TopKRequest{Measure::kDotProduct, 4, true}}) {
        auto live = engine.TopK(req, method);
        auto served = serve::SnapshotTopK(*snap, req, method);
        ASSERT_TRUE(live.ok());
        ASSERT_TRUE(served.ok());
        ExpectSameTopK(*served, *live);
      }
    }

    // MEC: location vector and pair matrix, bitwise.
    for (const MecRequest& req :
         {MecRequest{Measure::kMean, {0, 1, 2, 3}}, MecRequest{Measure::kCovariance, {0, 3, 5, 9}},
          MecRequest{Measure::kCorrelation, {1, 4, 7}}}) {
      auto live = engine.Mec(req, QueryMethod::kAuto);
      auto served = serve::SnapshotMec(*snap, req, QueryMethod::kAuto);
      ASSERT_TRUE(live.ok());
      ASSERT_TRUE(served.ok());
      ExpectSameMec(*served, *live);
    }
  }
}

TEST(ServeSnapshot, FacadeServesFromSnapshotAndMarksThePlan) {
  auto stream = StreamingAffinity::Create(Names(10), StreamOptions());
  ASSERT_TRUE(stream.ok());
  const ts::Dataset ds = TestData();
  FeedStream(&*stream, ds, 0, 60);
  auto result = stream->Met({Measure::kCorrelation, 0.9, true});
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->plan.rationale.find("served from read-optimized snapshot"), std::string::npos)
      << result->plan.rationale;
  // The facade's snapshot-served answer equals the raw engine's.
  auto live = stream->framework()->engine().Met({Measure::kCorrelation, 0.9, true});
  ASSERT_TRUE(live.ok());
  ExpectSameSelection(*result, *live);
  // A blended answer (staleness bound exceeded) is live by construction
  // and must NOT carry the snapshot annotation.
  FeedStream(&*stream, ds, 60, 65);  // age 5 without a refresh
  FreshnessOptions tight;
  tight.max_staleness = 2;
  auto blended = stream->Met({Measure::kCorrelation, 0.9, true}, tight);
  ASSERT_TRUE(blended.ok());
  EXPECT_EQ(blended->plan.rationale.find("served from read-optimized snapshot"),
            std::string::npos);
}

TEST(ServeSnapshot, EpochPinnedAcrossRefresh) {
  auto stream = StreamingAffinity::Create(Names(10), StreamOptions());
  ASSERT_TRUE(stream.ok());
  const ts::Dataset ds = TestData();
  FeedStream(&*stream, ds, 0, 40);
  auto old_snap = stream->serving();
  ASSERT_NE(old_snap, nullptr);
  EXPECT_EQ(old_snap->snapshot_row, 40u);
  const TopKRequest req{Measure::kCorrelation, 5, true};
  auto before = serve::SnapshotTopK(*old_snap, req);
  ASSERT_TRUE(before.ok());

  // Two more refreshes; the pinned epoch must keep answering identically.
  FeedStream(&*stream, ds, 40, 80);
  auto new_snap = stream->serving();
  ASSERT_NE(new_snap, nullptr);
  EXPECT_GT(new_snap->generation, old_snap->generation);
  EXPECT_EQ(new_snap->snapshot_row, 80u);
  auto after = serve::SnapshotTopK(*old_snap, req);
  ASSERT_TRUE(after.ok());
  ExpectSameTopK(*after, *before);
}

TEST(ServeSnapshot, UnavailableQueriesFallBackToLive) {
  StreamingOptions options = StreamOptions();
  options.build.build_dft = true;  // WF exists live but is never snapshot-servable
  auto stream = StreamingAffinity::Create(Names(10), options);
  ASSERT_TRUE(stream.ok());
  const ts::Dataset ds = TestData();
  FeedStream(&*stream, ds, 0, 60);
  auto snap = stream->serving();
  ASSERT_NE(snap, nullptr);
  // Direct snapshot query: kUnavailable (sketches are built per query).
  auto served = serve::SnapshotMet(*snap, {Measure::kCorrelation, 0.9, true}, QueryMethod::kDft);
  EXPECT_EQ(served.status().code(), StatusCode::kUnavailable);
  // The facade treats that as "fall back to the live engine" and succeeds.
  FreshnessOptions wf;
  wf.method = QueryMethod::kDft;
  auto result = stream->Met({Measure::kCorrelation, 0.9, true}, wf);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.rationale.find("served from read-optimized snapshot"),
            std::string::npos);
  // Real argument errors are final — they must NOT trigger fallback
  // masking (same code live and served).
  auto bad = stream->Mer({Measure::kCorrelation, 0.9, 0.1});
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Router serving: RouterXxx over a published RouterSnapshot vs the live
// scatter-gather, at 1/2/8 shards.
// ---------------------------------------------------------------------------

TEST(RouterServe, MirrorsLiveRouterBitwise) {
  const ts::Dataset ds = TestData(16);
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    // Enable the co-moment cache so the stamped cross path is exercised
    // alongside the sweep path (cache only engages for shards > 1).
    ShardedOptions options = ShardOptions(shards);
    options.cross_cache.budget = 8;
    auto service = ShardedAffinity::Create(Names(16), options);
    ASSERT_TRUE(service.ok());
    Feed(&*service, ds, 0, 60);
    ASSERT_TRUE(service->ready());
    auto snap = service->serving();
    ASSERT_NE(snap, nullptr);
    EXPECT_GE(snap->generation, 2u);
    EXPECT_EQ(snap->shards.size(), shards);

    {
      const MetRequest req{Measure::kCorrelation, 0.9, true};
      auto live = service->Met(req);
      auto served = RouterMet(*snap, req);
      ASSERT_TRUE(live.ok());
      ASSERT_TRUE(served.ok());
      ExpectSameSelection(*served, live->result);
    }
    {
      const MerRequest req{Measure::kCovariance, -0.3, 0.6};
      auto live = service->Mer(req);
      auto served = RouterMer(*snap, req);
      ASSERT_TRUE(live.ok());
      ASSERT_TRUE(served.ok());
      ExpectSameSelection(*served, live->result);
    }
    {
      const TopKRequest req{Measure::kCorrelation, 6, true};
      auto live = service->TopK(req);
      auto served = RouterTopK(*snap, req);
      ASSERT_TRUE(live.ok());
      ASSERT_TRUE(served.ok());
      ExpectSameTopK(*served, live->result);
    }
    // MEC with ids spanning every shard (16 series / 8 shards = 2 each).
    for (const MecRequest& req :
         {MecRequest{Measure::kCovariance, {0, 5, 9, 15}}, MecRequest{Measure::kMean, {1, 8, 14}}}) {
      auto live = service->Mec(req);
      auto served = RouterMec(*snap, req);
      ASSERT_TRUE(live.ok());
      ASSERT_TRUE(served.ok());
      ExpectSameMec(*served, live->response);
    }
  }
}

TEST(RouterServe, SnapshotFreezesCrossMomentView) {
  ShardedOptions options = ShardOptions(2);
  options.cross_cache.budget = static_cast<std::size_t>(-1);  // watch everything
  auto service = ShardedAffinity::Create(Names(16), options);
  ASSERT_TRUE(service.ok());
  Feed(&*service, TestData(16), 0, 60);
  auto snap = service->serving();
  ASSERT_NE(snap, nullptr);
  ASSERT_NE(snap->cross_view, nullptr);
  const RouterSnapshot::CrossMomentView& view = *snap->cross_view;
  ASSERT_EQ(view.stamped.size(), snap->cross.size());
  ASSERT_EQ(view.moments.size(), snap->cross.size());
  // Every cross pair was watched since construction → all stamped.
  std::size_t stamped = 0;
  for (std::uint8_t s : view.stamped) stamped += s;
  EXPECT_EQ(stamped, snap->cross.size());
  EXPECT_EQ(view.stamped_count, stamped);
  for (std::size_t i = 0; i < snap->cross.size(); ++i)
    EXPECT_EQ(view.moments[i].m, snap->window) << "pair " << i;
}

TEST(RouterServe, UnchangedCrossViewIsSharedAcrossEpochs) {
  // Disabled cache (budget 0): its mutation version is pinned at 0, so
  // after the first publish every subsequent epoch must share the same
  // immutable all-unstamped view instead of re-freezing a copy.
  auto service = ShardedAffinity::Create(Names(16), ShardOptions(2));
  ASSERT_TRUE(service.ok());
  const ts::Dataset data = TestData(16);
  Feed(&*service, data, 0, 48);
  auto first = service->serving();
  ASSERT_NE(first, nullptr);
  ASSERT_NE(first->cross_view, nullptr);
  Feed(&*service, data, 48, 60);
  auto second = service->serving();
  ASSERT_NE(second, nullptr);
  EXPECT_GT(second->generation, first->generation);
  EXPECT_EQ(second->cross_view.get(), first->cross_view.get());
  EXPECT_EQ(first->cross_view->stamped_count, 0u);

  // Enabled cache: every lockstep refresh stamps (version moves), so the
  // view is legitimately re-frozen per epoch.
  ShardedOptions warm = ShardOptions(2);
  warm.cross_cache.budget = static_cast<std::size_t>(-1);
  auto warm_service = ShardedAffinity::Create(Names(16), warm);
  ASSERT_TRUE(warm_service.ok());
  Feed(&*warm_service, data, 0, 48);
  auto warm_first = warm_service->serving();
  Feed(&*warm_service, data, 48, 60);
  auto warm_second = warm_service->serving();
  ASSERT_NE(warm_first, nullptr);
  ASSERT_NE(warm_second, nullptr);
  EXPECT_NE(warm_second->cross_view.get(), warm_first->cross_view.get());
}

TEST(RouterServe, LoadPublishesFirstEpoch) {
  const std::string path = TempPath("serve_router_roundtrip.bin");
  {
    auto service = ShardedAffinity::Create(Names(16), ShardOptions(2));
    ASSERT_TRUE(service.ok());
    Feed(&*service, TestData(16), 0, 60);
    ASSERT_TRUE(service->Save(path).ok());
  }
  auto loaded = ShardedAffinity::Load(path);
  ASSERT_TRUE(loaded.ok());
  auto snap = loaded->serving();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->generation, 1u);  // restored routers restart at epoch 1
  const MetRequest req{Measure::kCorrelation, 0.9, true};
  auto live = loaded->Met(req);
  auto served = RouterMet(*snap, req);
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(served.ok());
  ExpectSameSelection(*served, live->result);
}

// ---------------------------------------------------------------------------
// Heat-adaptive cross co-moment watch-list (cross_cache.h).
// ---------------------------------------------------------------------------

TEST(CrossCacheHeat, HotUnwatchedPairDisplacesColdEntry) {
  // Pairs over series {0,1} × {2,3}; window 4, budget 2 → the seed
  // watch-list is the lex prefix {(0,2), (0,3)}.
  const std::vector<ts::SequencePair> cross = {{0, 2}, {0, 3}, {1, 2}, {1, 3}};
  CrossCacheOptions options;
  options.budget = 2;
  CrossMomentCache cache(cross, 4, options);
  ASSERT_TRUE(cache.enabled());
  EXPECT_TRUE(cache.Watches(0));
  EXPECT_TRUE(cache.Watches(1));
  EXPECT_FALSE(cache.Watches(2));

  const std::vector<std::vector<double>> rows = {
      {1.0, 2.0, 3.0, 4.0}, {2.0, 1.0, 4.0, 3.0}, {0.5, 1.5, 2.5, 3.5}, {3.0, 2.0, 1.0, 0.0},
      {1.5, 2.5, 3.5, 4.5}, {2.5, 0.5, 1.5, 3.0}, {0.0, 1.0, 2.0, 3.0}, {4.0, 3.0, 2.0, 1.0}};
  for (std::size_t i = 0; i < 4; ++i) cache.Observe(rows[i]);
  cache.Stamp(1, 0);
  EXPECT_EQ(cache.stats().stamps, 1u);

  // Heat cross index 2 — unwatched, so every lookup misses without
  // counting against the hit/miss ledger but accrues promotion heat.
  core::PairMoments pm;
  for (int i = 0; i < 6; ++i) EXPECT_FALSE(cache.Lookup(2, 1, &pm));
  const std::size_t misses_before = cache.stats().misses;

  cache.Stamp(2, 0);
  EXPECT_EQ(cache.stats().promotions, 1u);
  EXPECT_TRUE(cache.Watches(2));   // promoted
  EXPECT_TRUE(cache.Watches(0));   // survivor (lower cross index evicts last)
  EXPECT_FALSE(cache.Watches(1));  // evicted: coldest, highest index

  // Stamp-gating: series 1's ring is fresh (zero-filled), so the promoted
  // pair must miss — never serve moments over a partial window.
  EXPECT_FALSE(cache.Lookup(2, 2, &pm));
  EXPECT_EQ(cache.stats().misses, misses_before + 1);

  // Once the ring covers a full window the pair stamps and serves.
  for (std::size_t i = 4; i < 8; ++i) cache.Observe(rows[i]);
  cache.Stamp(3, 0);
  ASSERT_TRUE(cache.Lookup(2, 3, &pm));
  EXPECT_EQ(cache.stats().hits, 1u);
  // The served co-moments cover exactly the last window (rows 4..7 of
  // series 1 and 2); the rolled sums match the naive ones to round-off.
  ASSERT_EQ(pm.m, 4u);
  double sum_u = 0, sumsq_u = 0, sum_v = 0, sumsq_v = 0, dot = 0;
  for (std::size_t i = 4; i < 8; ++i) {
    const double u = rows[i][1], v = rows[i][2];
    sum_u += u;
    sumsq_u += u * u;
    sum_v += v;
    sumsq_v += v * v;
    dot += u * v;
  }
  EXPECT_NEAR(pm.sum_x, sum_u, 1e-12);
  EXPECT_NEAR(pm.sumsq_x, sumsq_u, 1e-12);
  EXPECT_NEAR(pm.sum_y, sum_v, 1e-12);
  EXPECT_NEAR(pm.sumsq_y, sumsq_v, 1e-12);
  EXPECT_NEAR(pm.dot_xy, dot, 1e-12);
}

TEST(CrossCacheHeat, UniformWorkloadNeverChurns) {
  const std::vector<ts::SequencePair> cross = {{0, 2}, {0, 3}, {1, 2}, {1, 3}};
  CrossCacheOptions options;
  options.budget = 2;
  CrossMomentCache cache(cross, 4, options);
  const std::vector<double> row = {1.0, 2.0, 3.0, 4.0};
  for (int i = 0; i < 4; ++i) cache.Observe(row);
  cache.Stamp(1, 0);
  // A uniform sweep touches every cross pair equally; the strict
  // promotion inequality must keep the watch-list stable (hysteresis).
  core::PairMoments pm;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < cross.size(); ++i) cache.Lookup(i, 1 + round, &pm);
    cache.Observe(row);
    cache.Stamp(2 + round, 0);
  }
  EXPECT_EQ(cache.stats().promotions, 0u);
  EXPECT_TRUE(cache.Watches(0));
  EXPECT_TRUE(cache.Watches(1));
}

TEST(CrossCacheHeat, PromotionsSurfaceThroughShardedService) {
  // 16 series over 2 shards: cross pairs = 8 × 8 = 64, budget 4. Hammer
  // one unwatched cross pair via MEC until a refresh promotes it.
  ShardedOptions options = ShardOptions(2);
  options.cross_cache.budget = 4;
  auto service = ShardedAffinity::Create(Names(16), options);
  ASSERT_TRUE(service.ok());
  const ts::Dataset ds = TestData(16);
  Feed(&*service, ds, 0, 40);
  ASSERT_TRUE(service->ready());
  // Series 7 (shard 0) × series 15 (shard 1): a cross pair far outside
  // the lex-prefix seed {(0,8), (0,9), (0,10), (0,11)}.
  const MecRequest hot{Measure::kCovariance, {7, 15}};
  for (int i = 0; i < 32; ++i) ASSERT_TRUE(service->Mec(hot).ok());
  Feed(&*service, ds, 40, 60);  // lockstep refresh → stamp → promotion
  EXPECT_GT(service->cross_cache_stats().promotions, 0u);
  // The promoted pair's answers stay identical to an uncached service.
  auto baseline = ShardedAffinity::Create(Names(16), ShardOptions(2));
  ASSERT_TRUE(baseline.ok());
  Feed(&*baseline, ds, 0, 60);
  auto a = service->Mec(hot);
  auto b = baseline->Mec(hot);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectSameMec(a->response, b->response);
}

// ---------------------------------------------------------------------------
// Sparse-movement SCAPE refresh fast path (ISSUE 7 satellite): a
// slow-drift window where most ξ keys land unchanged must skip their
// B+-tree re-insertions, and the skip accounting must surface.
// ---------------------------------------------------------------------------

TEST(ServeMaintenance, SlowDriftSkipsScapeRekeys) {
  // Cyclic stream with period == window == interval: after each refresh
  // the window holds exactly the same 40 rows, so an exact refit (forced
  // every refresh) reproduces each relationship bitwise and the refresh
  // path can skip every unmoved key.
  StreamingOptions options = StreamOptions();
  options.rebuild_interval = 40;
  options.incremental.exact_refit_period = 1;
  auto stream = StreamingAffinity::Create(Names(10), options);
  ASSERT_TRUE(stream.ok());
  const ts::Dataset ds = TestData();
  std::vector<double> row(10);
  for (std::size_t i = 0; i < 120; ++i) {
    const std::size_t src = i % 40;
    for (std::size_t j = 0; j < 10; ++j) row[j] = ds.matrix.matrix()(src, j);
    ASSERT_TRUE(stream->Append(row).ok());
  }
  // Refreshes ran at rows 80 and 120 over identical window content.
  ASSERT_GE(stream->refresh_count(), 2u);
  const core::MaintenanceProfile& profile = stream->maintenance();
  EXPECT_GT(profile.scape_rekeys_skipped, 0u)
      << "identical window content must skip unmoved ξ re-insertions";
  // The fast path must not corrupt the index: SCAPE answers still match
  // the naive sweep exactly.
  const auto& engine = stream->framework()->engine();
  auto scape = engine.Met({Measure::kCorrelation, 0.9, true}, QueryMethod::kScape);
  auto naive = engine.Met({Measure::kCorrelation, 0.9, true}, QueryMethod::kNaive);
  ASSERT_TRUE(scape.ok());
  ASSERT_TRUE(naive.ok());
  std::sort(scape->pairs.begin(), scape->pairs.end());
  std::sort(naive->pairs.begin(), naive->pairs.end());
  EXPECT_EQ(scape->pairs, naive->pairs);
}

// ---------------------------------------------------------------------------
// Quality predicates are not snapshot-servable (DESIGN.md §12).
// ---------------------------------------------------------------------------

TEST(Serving, QualityPredicateBouncesToLiveEngine) {
  const ts::Dataset ds = TestData();
  auto stream = StreamingAffinity::Create(ds.matrix.names(), StreamOptions());
  ASSERT_TRUE(stream.ok());
  FeedStream(&*stream, ds, 0, 120);
  ASSERT_TRUE(stream->ready());
  auto snap = stream->serving();
  ASSERT_NE(snap, nullptr);

  // The quality surface is live state, not snapshot state: every snapshot
  // entry point declines min_quality > 0 with kUnavailable.
  MetRequest met{Measure::kCorrelation, 0.5, true};
  met.min_quality = 0.5;
  EXPECT_EQ(serve::SnapshotMet(*snap, met, QueryMethod::kAuto).status().code(),
            StatusCode::kUnavailable);
  MerRequest mer{Measure::kCorrelation, 0.2, 0.9};
  mer.min_quality = 0.5;
  EXPECT_EQ(serve::SnapshotMer(*snap, mer, QueryMethod::kAuto).status().code(),
            StatusCode::kUnavailable);
  TopKRequest topk{Measure::kCorrelation, 3, true};
  topk.min_quality = 0.5;
  EXPECT_EQ(serve::SnapshotTopK(*snap, topk, QueryMethod::kAuto).status().code(),
            StatusCode::kUnavailable);
  MecRequest mec;
  mec.measure = Measure::kCorrelation;
  mec.ids = {0, 1};
  mec.min_quality = 0.5;
  EXPECT_EQ(serve::SnapshotMec(*snap, mec, QueryMethod::kAuto).status().code(),
            StatusCode::kUnavailable);

  // The streaming facade counts the bounce as a serve fallback and still
  // answers from the live engine (a dense stream scores 1.0 everywhere, so
  // the predicate excludes nothing).
  const std::size_t fallbacks_before = stream->maintenance().serve_fallbacks;
  auto live = stream->Met(met);
  ASSERT_TRUE(live.ok());
  EXPECT_GT(stream->maintenance().serve_fallbacks, fallbacks_before);
  EXPECT_TRUE(live->quality.populated);
  EXPECT_EQ(live->quality.min_score, 1.0);
  EXPECT_EQ(live->quality.excluded, 0u);

  // Without the predicate, the snapshot still serves the same request.
  met.min_quality = 0.0;
  auto served = serve::SnapshotMet(*snap, met, QueryMethod::kAuto);
  ASSERT_TRUE(served.ok());
  auto unfiltered = stream->Met(met);
  ASSERT_TRUE(unfiltered.ok());
  ExpectSameSelection(*served, *unfiltered);
}

}  // namespace
}  // namespace affinity::shard
