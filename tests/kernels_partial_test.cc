// Retained block-partial cache tests (core/kernels BlockChain, DESIGN.md
// §10): a chain slid along a stream must reproduce the cold anchored
// kernels bit for bit at every step — including window lengths straddling
// the block size {1023, 1024, 1025}, slides larger than the window, and
// multi-refresh gaps — while actually reusing interior block partials.
// Also covers the satellite fixes this cache depends on: the sorted-input
// mode estimator's bitwise equality, and DataMatrixTable::CompactBefore's
// anchor bookkeeping (snapshots keep their absolute grid position).

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/kernels.h"
#include "storage/table.h"
#include "ts/rolling.h"
#include "ts/stats.h"

namespace affinity::core::kernels {
namespace {

/// An unbounded synthetic stream; Window(S, w) materializes [S, S+w).
struct Stream {
  explicit Stream(std::uint64_t seed) : rng(seed) {}

  double At(std::size_t i) {
    while (values.size() <= i) values.push_back(rng.Uniform(-2.0, 2.0));
    return values[i];
  }

  std::vector<double> Window(std::size_t start, std::size_t w) {
    std::vector<double> out(w);
    for (std::size_t i = 0; i < w; ++i) out[i] = At(start + i);
    return out;
  }

  Xoshiro256 rng;
  std::vector<double> values;
};

TEST(BlockChain, SlidesMatchColdKernelsAtStraddlingWindows) {
  for (const std::size_t w : {std::size_t{100}, std::size_t{1023}, std::size_t{1024},
                              std::size_t{1025}, std::size_t{4096}}) {
    for (const std::size_t interval :
         {std::size_t{1}, std::size_t{3}, std::size_t{1024}, w + 7}) {
      Stream xs(17 * w + interval), ys(91 * w + interval);
      BlockChain<1> dot_chain;
      BlockChain<2> marg_chain;
      BlockSpanStats stats;
      std::size_t anchor = 0;
      for (int refresh = 0; refresh < 12; ++refresh) {
        const std::vector<double> x = xs.Window(anchor, w);
        const std::vector<double> y = ys.Window(anchor, w);
        double dot;
        dot_chain.SlideTo(anchor, w,
                          [&](std::size_t i, double* v) { v[0] = x[i] * y[i]; }, &dot, &stats);
        EXPECT_EQ(dot, BlockedDot(x.data(), y.data(), w, anchor))
            << "w=" << w << " interval=" << interval << " anchor=" << anchor;
        double marg[2];
        marg_chain.SlideTo(anchor, w,
                           [&](std::size_t i, double* v) {
                             v[0] = x[i];
                             v[1] = x[i] * x[i];
                           },
                           marg, &stats);
        const Marginals cold = ColumnMarginals(x.data(), w, anchor);
        EXPECT_EQ(marg[0], cold.sum);
        EXPECT_EQ(marg[1], cold.sumsq);
        anchor += interval;
      }
      if (w >= 3 * kBlockElems && interval < kBlockElems) {
        // Real retention happened: interior blocks were served from the
        // cache, not recomputed.
        EXPECT_GT(stats.reused, 0u) << "w=" << w << " interval=" << interval;
      }
    }
  }
}

TEST(BlockChain, LeadingPrefixResumesMatchColdPassAndAreCounted) {
  // Steady-state slides inside one leading block must serve the leading
  // span from the checkpointed prefix state — an O(kPrefixStride) resume,
  // counted in prefix_resumes — and still match the cold anchored kernel
  // bit for bit at every step.
  const std::size_t w = 4096;
  for (const std::size_t interval : {std::size_t{1}, std::size_t{3}, std::size_t{129}}) {
    Stream xs(7 * interval + 1), ys(9 * interval + 2);
    BlockChain<1> chain;
    BlockSpanStats stats;
    std::size_t anchor = 1;  // off-grid from the first refresh
    const int refreshes = 200;
    for (int refresh = 0; refresh < refreshes; ++refresh) {
      const std::vector<double> x = xs.Window(anchor, w);
      const std::vector<double> y = ys.Window(anchor, w);
      double dot;
      chain.SlideTo(anchor, w, [&](std::size_t i, double* v) { v[0] = x[i] * y[i]; }, &dot,
                    &stats);
      EXPECT_EQ(dot, BlockedDot(x.data(), y.data(), w, anchor))
          << "interval=" << interval << " anchor=" << anchor;
      anchor += interval;
    }
    // Every warm refresh except the ones around a grid crossing (one cold
    // re-walk per block entered, plus a possible on-grid landing with no
    // leading span at all) must have resumed from a checkpoint.
    const std::size_t crossings = (1 + interval * (refreshes - 1)) / kBlockElems;
    EXPECT_GE(stats.prefix_resumes + 1 + 2 * crossings, static_cast<std::size_t>(refreshes))
        << "interval=" << interval;
    EXPECT_GT(stats.prefix_resumes, static_cast<std::size_t>(refreshes) / 2)
        << "interval=" << interval;
  }
  // A window that never reaches the grid has nothing to retain: the
  // whole window is one reversed span, recomputed cold every time, and
  // the totals still match.
  Stream xs(55);
  BlockChain<1> small;
  BlockSpanStats small_stats;
  std::size_t anchor = 10;
  for (int refresh = 0; refresh < 5; ++refresh) {
    const std::vector<double> x = xs.Window(anchor, 100);
    double sum;
    small.SlideTo(anchor, 100, [&](std::size_t i, double* v) { v[0] = x[i]; }, &sum,
                  &small_stats);
    EXPECT_EQ(sum, BlockedSum(x.data(), 100, anchor));
    anchor += 7;
  }
  EXPECT_EQ(small_stats.prefix_resumes, 0u);
}

TEST(BlockChain, ThreeChainSlideMatchesFusedCross3AndReset) {
  const std::size_t w = 2048;
  Stream c1s(5), c2s(6), ts_(7);
  BlockChain<3> chain;
  std::size_t anchor = 3;  // off-grid from the start
  for (int refresh = 0; refresh < 8; ++refresh) {
    const std::vector<double> c1 = c1s.Window(anchor, w);
    const std::vector<double> c2 = c2s.Window(anchor, w);
    const std::vector<double> t = ts_.Window(anchor, w);
    double sums[3];
    chain.SlideTo(anchor, w,
                  [&](std::size_t i, double* v) {
                    v[0] = c1[i] * t[i];
                    v[1] = c2[i] * t[i];
                    v[2] = t[i];
                  },
                  sums);
    double cold[3];
    FusedCross3(c1.data(), c2.data(), t.data(), w, cold, anchor);
    EXPECT_EQ(sums[0], cold[0]);
    EXPECT_EQ(sums[1], cold[1]);
    EXPECT_EQ(sums[2], cold[2]);
    // The incremental refit installs these sums; Reset must agree.
    ts::RollingCrossSums rolled;
    rolled.Reset(c1.data(), c2.data(), t.data(), w, anchor);
    EXPECT_EQ(sums[0], rolled.c1t);
    EXPECT_EQ(sums[1], rolled.c2t);
    EXPECT_EQ(sums[2], rolled.t);
    anchor += 5;
  }
}

TEST(BlockChain, MultiRefreshGapsAndBackwardAnchorsFallBackExactly) {
  const std::size_t w = 3000;
  Stream xs(23);
  BlockChain<1> chain;
  // Gaps larger than the window, equal anchors, and a backwards jump all
  // must serve exact totals (cold fallback where retention is impossible).
  const std::size_t anchors[] = {0, 1, 1 + w, 1 + w, 1 + w + 512, 400, 401};
  for (const std::size_t anchor : anchors) {
    const std::vector<double> x = xs.Window(anchor, w);
    double sum;
    chain.SlideTo(anchor, w, [&](std::size_t i, double* v) { v[0] = x[i]; }, &sum);
    EXPECT_EQ(sum, BlockedSum(x.data(), w, anchor)) << "anchor=" << anchor;
  }
  // A window-length change rebuilds rather than reusing stale geometry.
  const std::size_t w2 = 1500;
  const std::vector<double> x = xs.Window(500, w2);
  double sum;
  chain.SlideTo(500, w2, [&](std::size_t i, double* v) { v[0] = x[i]; }, &sum);
  EXPECT_EQ(sum, BlockedSum(x.data(), w2, 500));
}

TEST(AnchoredKernels, ChainEqualityHoldsAtEveryPhase) {
  const std::size_t m = 2600;
  Stream xs(31), ys(32);
  const std::vector<double> x = xs.Window(0, m);
  const std::vector<double> y = ys.Window(0, m);
  for (const std::size_t anchor : {std::size_t{0}, std::size_t{1}, std::size_t{511},
                                   std::size_t{1024}, std::size_t{1025}, std::size_t{99999}}) {
    double dot_xy, dot_xx, dot_yy;
    FusedDot3(x.data(), y.data(), m, &dot_xy, &dot_xx, &dot_yy, anchor);
    EXPECT_EQ(dot_xx, BlockedDot(x.data(), x.data(), m, anchor));
    EXPECT_EQ(dot_yy, BlockedDot(y.data(), y.data(), m, anchor));
    EXPECT_EQ(dot_xy, BlockedDot(x.data(), y.data(), m, anchor));
    const Marginals mx = ColumnMarginals(x.data(), m, anchor);
    EXPECT_EQ(mx.sum, BlockedSum(x.data(), m, anchor));
    EXPECT_EQ(mx.sumsq, BlockedDot(x.data(), x.data(), m, anchor));
    double gram[5];
    FusedGram5(x.data(), y.data(), m, gram, anchor);
    EXPECT_EQ(gram[0], mx.sumsq);
    EXPECT_EQ(gram[1], dot_xy);
    EXPECT_EQ(gram[3], mx.sum);
  }
  // Anchors in the same grid phase produce the same bits.
  EXPECT_EQ(BlockedSum(x.data(), m, 7), BlockedSum(x.data(), m, 7 + 3 * kBlockElems));
  // The default anchor is the historic phase-0 order.
  EXPECT_EQ(BlockedSum(x.data(), m), BlockedSum(x.data(), m, 0));
}

TEST(ModeSorted, BitwiseEqualToHistogramModeOnAnyPermutation) {
  Xoshiro256 rng(77);
  std::vector<std::uint32_t> hist_a, hist_b;
  for (const std::size_t m : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                              std::size_t{100}, std::size_t{1025}}) {
    std::vector<double> x(m);
    for (double& v : x) v = rng.Uniform(-3.0, 3.0);
    // Duplicate runs so bin-boundary ties are exercised.
    for (std::size_t i = 2; i + 1 < m; i += 5) x[i + 1] = x[i];
    std::vector<double> sorted = x;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(ts::stats::ModeSortedWithScratch(sorted.data(), m, ts::stats::kModeBins, &hist_a),
              ts::stats::ModeWithScratch(x.data(), m, ts::stats::kModeBins, &hist_b))
        << "m=" << m;
    EXPECT_EQ(hist_a, hist_b) << "bin populations must match exactly";
  }
  // Constant series short-circuit.
  const std::vector<double> flat(9, 4.25);
  EXPECT_EQ(ts::stats::ModeSortedWithScratch(flat.data(), 9, 16, &hist_a), 4.25);
}

TEST(TableAnchors, SnapshotsKeepAbsoluteGridPositionAcrossCompaction) {
  // Capacity 24 deliberately does not divide kBlockElems: the absolute
  // anchor, not segment alignment, is what keeps blocked sums stable.
  storage::DataMatrixTable table(/*segment_capacity=*/24);
  ASSERT_TRUE(table.RegisterSeries("a", "s", 1.0).ok());
  ASSERT_TRUE(table.RegisterSeries("b", "s", 1.0).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(table.AppendRow({static_cast<double>(i), 0.5 * i}).ok());
  }
  // Rows 0..47 lie in the first two whole segments below row 60.
  EXPECT_EQ(table.CompactBefore(60), 48u);
  EXPECT_EQ(table.first_retained_row(), 48u);
  EXPECT_EQ(table.first_retained_row() % 24, 0u) << "whole-segment reclamation";
  auto snap = table.Snapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->anchor_row(), 48u);
  EXPECT_EQ(snap->m(), 52u);
  // TailWindow advances the anchor to the absolute stream position, so a
  // rebuild window lands on the same grid as the maintained one.
  auto tail = ts::TailWindow(*snap, 20);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->anchor_row(), 80u);  // = row_count() - window
  EXPECT_EQ(tail->anchor_row(), table.row_count() - 20u);
  // Repeated compaction keeps advancing on segment multiples; overshoot
  // clamps to the appended rows.
  EXPECT_EQ(table.CompactBefore(table.row_count() + 1000), 48u);  // rows 48..95
  EXPECT_EQ(table.first_retained_row(), 96u);
  EXPECT_EQ(table.retained_row_count(), 4u);  // the partial tail segment survives
  auto snap2 = table.Snapshot();
  ASSERT_TRUE(snap2.ok());
  EXPECT_EQ(snap2->anchor_row(), 96u);
  EXPECT_DOUBLE_EQ(snap2->matrix()(0, 0), 96.0);
  // The partial tail keeps filling seamlessly after compaction, and a
  // partial (not-yet-full) segment is never reclaimed even when every
  // row it holds lies below the requested frontier.
  ASSERT_TRUE(table.AppendRow({100.0, 50.0}).ok());
  EXPECT_EQ(table.retained_row_count(), 5u);
  EXPECT_EQ(table.CompactBefore(table.row_count()), 0u);
  EXPECT_EQ(table.first_retained_row(), 96u);
}

}  // namespace
}  // namespace affinity::core::kernels
