// Tests for CSV import/export (ts/csv.h).

#include "ts/csv.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "ts/generators.h"

namespace affinity::ts {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(Csv, RoundTripPreservesEverything) {
  DatasetSpec spec;
  spec.num_series = 5;
  spec.num_samples = 17;
  spec.num_clusters = 2;
  spec.seed = 3;
  const Dataset ds = MakeSensorData(spec);
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(ds.matrix, path).ok());

  auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->n(), ds.matrix.n());
  EXPECT_EQ(loaded->m(), ds.matrix.m());
  EXPECT_EQ(loaded->names(), ds.matrix.names());
  EXPECT_NEAR(loaded->matrix().MaxAbsDiff(ds.matrix.matrix()), 0.0, 1e-12);
}

TEST(Csv, ReadSimpleLiteral) {
  const std::string path = TempPath("simple.csv");
  WriteFile(path, "a,b\n1,2\n3,4\n");
  auto dm = ReadCsv(path);
  ASSERT_TRUE(dm.ok());
  EXPECT_EQ(dm->n(), 2u);
  EXPECT_EQ(dm->m(), 2u);
  EXPECT_EQ(dm->name(0), "a");
  EXPECT_DOUBLE_EQ(dm->matrix()(1, 1), 4.0);
}

TEST(Csv, HandlesCrLf) {
  const std::string path = TempPath("crlf.csv");
  WriteFile(path, "a,b\r\n1,2\r\n");
  auto dm = ReadCsv(path);
  ASSERT_TRUE(dm.ok());
  EXPECT_EQ(dm->name(1), "b");
  EXPECT_DOUBLE_EQ(dm->matrix()(0, 0), 1.0);
}

TEST(Csv, SkipsBlankLines) {
  const std::string path = TempPath("blank.csv");
  WriteFile(path, "a\n1\n\n2\n");
  auto dm = ReadCsv(path);
  ASSERT_TRUE(dm.ok());
  EXPECT_EQ(dm->m(), 2u);
}

TEST(Csv, MissingFileIsIoError) {
  auto dm = ReadCsv(TempPath("does-not-exist.csv"));
  ASSERT_FALSE(dm.ok());
  EXPECT_EQ(dm.status().code(), StatusCode::kIoError);
}

TEST(Csv, EmptyFileIsInvalid) {
  const std::string path = TempPath("empty.csv");
  WriteFile(path, "");
  EXPECT_FALSE(ReadCsv(path).ok());
}

TEST(Csv, HeaderOnlyIsInvalid) {
  const std::string path = TempPath("header-only.csv");
  WriteFile(path, "a,b\n");
  auto dm = ReadCsv(path);
  ASSERT_FALSE(dm.ok());
  EXPECT_EQ(dm.status().code(), StatusCode::kInvalidArgument);
}

TEST(Csv, WrongFieldCountIsInvalid) {
  const std::string path = TempPath("ragged.csv");
  WriteFile(path, "a,b\n1,2\n3\n");
  auto dm = ReadCsv(path);
  ASSERT_FALSE(dm.ok());
  EXPECT_NE(dm.status().message().find("line 3"), std::string::npos);
}

TEST(Csv, NonNumericValueIsInvalid) {
  const std::string path = TempPath("text.csv");
  WriteFile(path, "a\n1\nxyz\n");
  auto dm = ReadCsv(path);
  ASSERT_FALSE(dm.ok());
  EXPECT_NE(dm.status().message().find("xyz"), std::string::npos);
}

TEST(Csv, ScientificNotationParses) {
  const std::string path = TempPath("sci.csv");
  WriteFile(path, "a\n1e-3\n-2.5E+2\n");
  auto dm = ReadCsv(path);
  ASSERT_TRUE(dm.ok());
  EXPECT_DOUBLE_EQ(dm->matrix()(0, 0), 1e-3);
  EXPECT_DOUBLE_EQ(dm->matrix()(1, 0), -250.0);
}

TEST(Csv, WriteToUnwritablePathFails) {
  DataMatrix dm(la::Matrix::FromRows({{1.0}}));
  EXPECT_EQ(WriteCsv(dm, "/nonexistent-dir/x.csv").code(), StatusCode::kIoError);
}

// --- Tolerant reader (DESIGN.md §12) ---------------------------------------

TEST(CsvTolerant, CleanFileMatchesStrictReaderWithCleanReport) {
  const std::string path = TempPath("tolerant_clean.csv");
  WriteFile(path, "a,b\n1,2\n3,4\n");
  CsvParseReport report;
  auto dm = ReadCsvTolerant(path, &report);
  ASSERT_TRUE(dm.ok());
  EXPECT_EQ(dm->n(), 2u);
  EXPECT_EQ(dm->m(), 2u);
  EXPECT_DOUBLE_EQ(dm->matrix()(1, 0), 3.0);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.rows, 2u);
  EXPECT_EQ(report.nan_cells, 0u);
}

TEST(CsvTolerant, DirtyFixtureRepairsToNaNAndReports) {
  // The dirty fixture of the ISSUE checklist: empty cells, non-numeric
  // junk, a short row and a long row, plus a literal nan.
  const std::string path = TempPath("tolerant_dirty.csv");
  WriteFile(path,
            "a,b,c\n"
            "1,,3\n"          // empty middle cell
            "4,oops,6\n"      // non-numeric cell
            "7,8\n"           // short row: c missing
            "9,10,11,12\n"    // long row: extra field dropped
            "nan,13,14\n");   // literal NaN parses as a NaN cell
  CsvParseReport report;
  auto dm = ReadCsvTolerant(path, &report);
  ASSERT_TRUE(dm.ok());
  EXPECT_EQ(dm->n(), 3u);
  EXPECT_EQ(dm->m(), 5u);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.rows, 5u);
  EXPECT_EQ(report.missing_fields, 1u);  // the empty middle cell
  EXPECT_EQ(report.bad_fields, 1u);      // "oops"
  EXPECT_EQ(report.short_rows, 1u);
  EXPECT_EQ(report.long_rows, 1u);
  EXPECT_EQ(report.nan_cells, 4u);  // empty + oops + missing c + literal nan

  EXPECT_DOUBLE_EQ(dm->matrix()(0, 0), 1.0);
  EXPECT_TRUE(std::isnan(dm->matrix()(0, 1)));
  EXPECT_TRUE(std::isnan(dm->matrix()(1, 1)));
  EXPECT_TRUE(std::isnan(dm->matrix()(2, 2)));
  EXPECT_DOUBLE_EQ(dm->matrix()(3, 0), 9.0);
  EXPECT_DOUBLE_EQ(dm->matrix()(3, 2), 11.0);
  EXPECT_TRUE(std::isnan(dm->matrix()(4, 0)));
  EXPECT_DOUBLE_EQ(dm->matrix()(4, 2), 14.0);
}

TEST(CsvTolerant, StructuralProblemsAreStillErrors) {
  CsvParseReport report;
  EXPECT_EQ(ReadCsvTolerant(TempPath("does_not_exist.csv"), &report).status().code(),
            StatusCode::kIoError);

  const std::string empty = TempPath("tolerant_empty.csv");
  WriteFile(empty, "");
  EXPECT_EQ(ReadCsvTolerant(empty, &report).status().code(), StatusCode::kInvalidArgument);

  const std::string header_only = TempPath("tolerant_header_only.csv");
  WriteFile(header_only, "a,b\n");
  EXPECT_EQ(ReadCsvTolerant(header_only, &report).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CsvTolerant, NullReportIsAccepted) {
  const std::string path = TempPath("tolerant_noreport.csv");
  WriteFile(path, "a\n1\n,\n");
  auto dm = ReadCsvTolerant(path);
  ASSERT_TRUE(dm.ok());
  EXPECT_EQ(dm->m(), 2u);
  EXPECT_TRUE(std::isnan(dm->matrix()(1, 0)));
}

}  // namespace
}  // namespace affinity::ts
