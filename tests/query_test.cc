// Tests for the query engine (core/query.h): strategy dispatch, input
// validation, and agreement between strategies.

#include "core/query.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/framework.h"
#include "ts/generators.h"
#include "ts/stats.h"

namespace affinity::core {
namespace {

class QueryEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ts::DatasetSpec spec;
    spec.num_series = 24;
    spec.num_samples = 90;
    spec.num_clusters = 3;
    spec.noise_level = 0.02;
    spec.seed = 31;
    dataset_ = new ts::Dataset(ts::MakeSensorData(spec));
    auto fw = Affinity::Build(dataset_->matrix);
    ASSERT_TRUE(fw.ok());
    framework_ = new Affinity(std::move(fw).value());
  }

  static void TearDownTestSuite() {
    delete framework_;
    delete dataset_;
    framework_ = nullptr;
    dataset_ = nullptr;
  }

  static ts::Dataset* dataset_;
  static Affinity* framework_;
};

ts::Dataset* QueryEngineTest::dataset_ = nullptr;
Affinity* QueryEngineTest::framework_ = nullptr;

TEST_F(QueryEngineTest, MecValidatesIds) {
  MecRequest req;
  req.measure = Measure::kMean;
  req.ids = {};
  EXPECT_FALSE(framework_->engine().Mec(req, QueryMethod::kNaive).ok());
  req.ids = {0, 99};
  EXPECT_EQ(framework_->engine().Mec(req, QueryMethod::kNaive).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(QueryEngineTest, MecLocationNaiveMatchesKernels) {
  MecRequest req;
  req.measure = Measure::kMedian;
  req.ids = {3, 7, 11};
  auto resp = framework_->engine().Mec(req, QueryMethod::kNaive);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->location.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(resp->location[i],
                     ts::stats::Median(dataset_->matrix.ColumnData(req.ids[i]), 90));
  }
}

TEST_F(QueryEngineTest, MecPairNaiveMatchesKernels) {
  MecRequest req;
  req.measure = Measure::kCovariance;
  req.ids = {1, 4, 9, 15};
  auto resp = framework_->engine().Mec(req, QueryMethod::kNaive);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->pair_values.rows(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(resp->pair_values(i, j),
                  ts::stats::Covariance(dataset_->matrix.ColumnData(req.ids[i]),
                                        dataset_->matrix.ColumnData(req.ids[j]), 90),
                  1e-10);
    }
  }
}

TEST_F(QueryEngineTest, MecMatrixIsSymmetricWithCorrectDiagonal) {
  MecRequest req;
  req.measure = Measure::kCorrelation;
  req.ids = {0, 5, 10};
  for (QueryMethod method : {QueryMethod::kNaive, QueryMethod::kAffine}) {
    auto resp = framework_->engine().Mec(req, method);
    ASSERT_TRUE(resp.ok());
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_NEAR(resp->pair_values(i, i), 1.0, 1e-9);
      for (std::size_t j = 0; j < 3; ++j) {
        EXPECT_DOUBLE_EQ(resp->pair_values(i, j), resp->pair_values(j, i));
      }
    }
  }
}

TEST_F(QueryEngineTest, MecAffineAgreesWithNaive) {
  MecRequest req;
  req.ids = {2, 6, 13, 20};
  for (Measure m : {Measure::kCovariance, Measure::kDotProduct, Measure::kCorrelation,
                    Measure::kCosine, Measure::kJaccard, Measure::kDice}) {
    req.measure = m;
    auto naive = framework_->engine().Mec(req, QueryMethod::kNaive);
    auto affine = framework_->engine().Mec(req, QueryMethod::kAffine);
    ASSERT_TRUE(naive.ok());
    ASSERT_TRUE(affine.ok());
    EXPECT_LT(naive->pair_values.MaxAbsDiff(affine->pair_values),
              1e-4 * (1.0 + naive->pair_values.FrobeniusNorm()))
        << MeasureName(m);
  }
}

TEST_F(QueryEngineTest, MecDftOnlySupportsCorrelation) {
  MecRequest req;
  req.ids = {0, 1};
  req.measure = Measure::kCovariance;
  EXPECT_FALSE(framework_->engine().Mec(req, QueryMethod::kDft).ok());
  req.measure = Measure::kCorrelation;
  auto resp = framework_->engine().Mec(req, QueryMethod::kDft);
  ASSERT_TRUE(resp.ok());
  EXPECT_DOUBLE_EQ(resp->pair_values(0, 0), 1.0);
}

TEST_F(QueryEngineTest, MecScapeIsRejected) {
  MecRequest req;
  req.measure = Measure::kCovariance;
  req.ids = {0, 1};
  EXPECT_FALSE(framework_->engine().Mec(req, QueryMethod::kScape).ok());
}

TEST_F(QueryEngineTest, MetNaiveVsAffineCloseOnCleanData) {
  MetRequest req;
  req.measure = Measure::kCorrelation;
  req.tau = 0.9;
  auto naive = framework_->engine().Met(req, QueryMethod::kNaive);
  auto affine = framework_->engine().Met(req, QueryMethod::kAffine);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(affine.ok());
  // On low-noise clustered data the approximate result set is nearly the
  // exact one: symmetric difference below 2% of the union.
  std::vector<ts::SequencePair> a = naive->pairs, b = affine->pairs;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<ts::SequencePair> sym_diff;
  std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                std::back_inserter(sym_diff));
  EXPECT_LE(sym_diff.size(), 1 + (a.size() + b.size()) / 50);
}

TEST_F(QueryEngineTest, MetScapeEqualsAffine) {
  for (Measure m : {Measure::kCovariance, Measure::kDotProduct, Measure::kCorrelation,
                    Measure::kMean, Measure::kMedian}) {
    MetRequest req;
    req.measure = m;
    req.tau = m == Measure::kCorrelation ? 0.7 : 1.0;
    auto scape = framework_->engine().Met(req, QueryMethod::kScape);
    auto affine = framework_->engine().Met(req, QueryMethod::kAffine);
    ASSERT_TRUE(scape.ok()) << MeasureName(m);
    ASSERT_TRUE(affine.ok());
    std::vector<ts::SequencePair> a = scape->pairs, b = affine->pairs;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << MeasureName(m);
    std::vector<ts::SeriesId> sa = scape->series, sb = affine->series;
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    EXPECT_EQ(sa, sb) << MeasureName(m);
  }
}

TEST_F(QueryEngineTest, MetLesserDirection) {
  MetRequest req;
  req.measure = Measure::kCorrelation;
  req.tau = 0.0;
  req.greater = false;
  auto scape = framework_->engine().Met(req, QueryMethod::kScape);
  auto naive = framework_->engine().Met(req, QueryMethod::kNaive);
  ASSERT_TRUE(scape.ok());
  ASSERT_TRUE(naive.ok());
  // Greater + lesser partitions all pairs (ties measure exactly 0 are rare).
  MetRequest gt = req;
  gt.greater = true;
  auto scape_gt = framework_->engine().Met(gt, QueryMethod::kScape);
  ASSERT_TRUE(scape_gt.ok());
  EXPECT_EQ(scape->pairs.size() + scape_gt->pairs.size(),
            ts::SequencePairCount(dataset_->matrix.n()));
}

TEST_F(QueryEngineTest, MetDftCorrelationWorks) {
  MetRequest req;
  req.measure = Measure::kCorrelation;
  req.tau = 0.95;
  auto wf = framework_->engine().Met(req, QueryMethod::kDft);
  ASSERT_TRUE(wf.ok());
  auto wn = framework_->engine().Met(req, QueryMethod::kNaive);
  ASSERT_TRUE(wn.ok());
  // WF overestimates correlation, so its result set is a superset.
  EXPECT_GE(wf->pairs.size(), wn->pairs.size());
}

TEST_F(QueryEngineTest, MerValidatesBounds) {
  MerRequest req;
  req.measure = Measure::kCovariance;
  req.lo = 1.0;
  req.hi = 0.0;
  EXPECT_FALSE(framework_->engine().Mer(req, QueryMethod::kNaive).ok());
}

TEST_F(QueryEngineTest, MerScapeEqualsAffine) {
  MerRequest req;
  req.measure = Measure::kCorrelation;
  req.lo = 0.3;
  req.hi = 0.9;
  auto scape = framework_->engine().Mer(req, QueryMethod::kScape);
  auto affine = framework_->engine().Mer(req, QueryMethod::kAffine);
  ASSERT_TRUE(scape.ok());
  ASSERT_TRUE(affine.ok());
  std::vector<ts::SequencePair> a = scape->pairs, b = affine->pairs;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST_F(QueryEngineTest, MerLocationMeasure) {
  MerRequest req;
  req.measure = Measure::kMean;
  req.lo = 0.0;
  req.hi = 15.0;
  auto naive = framework_->engine().Mer(req, QueryMethod::kNaive);
  ASSERT_TRUE(naive.ok());
  for (ts::SeriesId v : naive->series) {
    const double mean = ts::stats::Mean(dataset_->matrix.ColumnData(v), 90);
    EXPECT_GT(mean, 0.0);
    EXPECT_LT(mean, 15.0);
  }
}

TEST(QueryEngineStandalone, StrategiesRequireAttachment) {
  ts::DatasetSpec spec;
  spec.num_series = 6;
  spec.num_samples = 30;
  spec.num_clusters = 2;
  spec.seed = 1;
  const ts::Dataset ds = ts::MakeSensorData(spec);
  QueryEngine engine(&ds.matrix);

  MecRequest mec;
  mec.measure = Measure::kCovariance;
  mec.ids = {0, 1};
  EXPECT_TRUE(engine.Mec(mec, QueryMethod::kNaive).ok());
  EXPECT_EQ(engine.Mec(mec, QueryMethod::kAffine).status().code(),
            StatusCode::kFailedPrecondition);
  mec.measure = Measure::kCorrelation;
  EXPECT_EQ(engine.Mec(mec, QueryMethod::kDft).status().code(),
            StatusCode::kFailedPrecondition);

  MetRequest met;
  met.measure = Measure::kCovariance;
  met.tau = 0.0;
  EXPECT_TRUE(engine.Met(met, QueryMethod::kNaive).ok());
  EXPECT_EQ(engine.Met(met, QueryMethod::kScape).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(QueryMethodNameFn, Names) {
  EXPECT_EQ(QueryMethodName(QueryMethod::kNaive), "WN");
  EXPECT_EQ(QueryMethodName(QueryMethod::kAffine), "WA");
  EXPECT_EQ(QueryMethodName(QueryMethod::kDft), "WF");
  EXPECT_EQ(QueryMethodName(QueryMethod::kScape), "SCAPE");
}

TEST(EvaluateCrossPairsFn, MatchesNaivePairMeasure) {
  ts::DatasetSpec spec;
  spec.num_series = 6;
  spec.num_samples = 30;
  spec.num_clusters = 2;
  spec.seed = 5;
  const ts::Dataset ds = ts::MakeSensorData(spec);
  // Columns resolved from "different snapshots" (here: the same matrix —
  // the function only sees pointers, exactly like the shard router).
  std::vector<CrossPair> pairs;
  for (const ts::SequencePair e : {ts::SequencePair(0, 3), ts::SequencePair(1, 5)}) {
    pairs.push_back(CrossPair{e, ds.matrix.ColumnData(e.u), ds.matrix.ColumnData(e.v)});
  }
  for (const Measure m : {Measure::kCovariance, Measure::kDotProduct, Measure::kCorrelation,
                          Measure::kCosine}) {
    auto values = EvaluateCrossPairs(m, pairs, ds.matrix.m());
    ASSERT_TRUE(values.ok());
    ASSERT_EQ(values->size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
      auto expect = NaivePairMeasure(m, pairs[i].u, pairs[i].v, ds.matrix.m());
      ASSERT_TRUE(expect.ok());
      EXPECT_DOUBLE_EQ((*values)[i], *expect);
    }
  }
  // L-measures are rejected; unresolved columns are rejected.
  EXPECT_EQ(EvaluateCrossPairs(Measure::kMean, pairs, ds.matrix.m()).status().code(),
            StatusCode::kInvalidArgument);
  pairs[1].v = nullptr;
  EXPECT_EQ(EvaluateCrossPairs(Measure::kCovariance, pairs, ds.matrix.m()).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace affinity::core
