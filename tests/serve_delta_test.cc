// Tests for incremental epoch publication (DESIGN.md §11): the delta
// path (COW window segments, shared/spliced SCAPE runs, bulk WA refill)
// must publish snapshots bitwise identical to a from-scratch
// SnapshotBuilder flatten at every epoch — across refresh intervals,
// thread counts, escalations, manual rebuilds, and restores — and the
// epoch ring must keep superseded generations queryable and bit-stable.

#include "serve/serving_snapshot.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/streaming.h"
#include "serve/serve_query.h"
#include "shard/shard_serve.h"
#include "shard/sharded.h"
#include "ts/generators.h"

namespace affinity::serve {
namespace {

using core::Measure;
using core::MetRequest;
using core::StreamingAffinity;
using core::StreamingOptions;

constexpr std::size_t kWindow = 40;
constexpr std::size_t kSlides = 200;

std::vector<std::string> Names(std::size_t n) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back("s" + std::to_string(i));
  return out;
}

ts::Dataset TestData(std::size_t n = 10, std::uint64_t seed = 12) {
  ts::DatasetSpec spec;
  spec.num_series = n;
  spec.num_samples = kWindow + kSlides + 16;
  spec.num_clusters = 3;
  spec.noise_level = 0.02;
  spec.seed = seed;
  return ts::MakeSensorData(spec);
}

StreamingOptions StreamOptions(std::size_t interval, std::size_t threads) {
  StreamingOptions options;
  options.window = kWindow;
  options.rebuild_interval = interval;
  options.mode = core::UpdateMode::kIncremental;
  options.build.afclst.k = 2;
  options.build.build_dft = false;
  options.build.threads = threads;
  return options;
}

// Bitwise comparison: EXPECT_EQ on doubles is deliberate — the delta
// publication contract is bitwise identity with the cold flatten, not
// tolerance.

void ExpectSameWindow(const CowWindow& a, const CowWindow& b) {
  ASSERT_EQ(a.m(), b.m());
  ASSERT_EQ(a.n(), b.n());
  EXPECT_EQ(a.anchor_row(), b.anchor_row());
  for (std::size_t j = 0; j < a.n(); ++j) {
    const double* ca = a.ColumnData(static_cast<ts::SeriesId>(j));
    const double* cb = b.ColumnData(static_cast<ts::SeriesId>(j));
    EXPECT_EQ(0, std::memcmp(ca, cb, a.m() * sizeof(double))) << "column " << j;
  }
}

void ExpectSamePairTree(const FlatPairTree& a, const FlatPairTree& b, const char* what) {
  EXPECT_EQ(a.norm, b.norm) << what;
  EXPECT_EQ(a.u_min, b.u_min) << what;
  EXPECT_EQ(a.u_max, b.u_max) << what;
  ASSERT_NE(a.runs, nullptr) << what;
  ASSERT_NE(b.runs, nullptr) << what;
  EXPECT_EQ(a.runs->keys, b.runs->keys) << what;
  EXPECT_EQ(a.runs->pairs, b.runs->pairs) << what;
  EXPECT_EQ(a.runs->us, b.runs->us) << what;
  ASSERT_EQ(a.degenerate.size(), b.degenerate.size()) << what;
  for (std::size_t i = 0; i < a.degenerate.size(); ++i) {
    EXPECT_EQ(a.degenerate[i].pair, b.degenerate[i].pair) << what;
    EXPECT_EQ(a.degenerate[i].u, b.degenerate[i].u) << what;
    EXPECT_EQ(a.degenerate[i].xi, b.degenerate[i].xi) << what;
  }
}

void ExpectSameSnapshot(const ServingSnapshot& got, const ServingSnapshot& want) {
  EXPECT_EQ(got.generation, want.generation);
  EXPECT_EQ(got.snapshot_row, want.snapshot_row);
  ExpectSameWindow(got.data, want.data);
  ASSERT_EQ(got.stats.size(), want.stats.size());
  for (std::size_t v = 0; v < want.stats.size(); ++v) {
    EXPECT_EQ(got.stats[v].mean, want.stats[v].mean) << "series " << v;
    EXPECT_EQ(got.stats[v].variance, want.stats[v].variance) << "series " << v;
    EXPECT_EQ(got.stats[v].sumsq, want.stats[v].sumsq) << "series " << v;
    EXPECT_EQ(got.stats[v].sum, want.stats[v].sum) << "series " << v;
  }
  for (int f = 0; f < 3; ++f) {
    EXPECT_EQ(got.location_ok[f], want.location_ok[f]) << "loc family " << f;
    EXPECT_EQ(got.location[f], want.location[f]) << "loc family " << f;
  }
  for (int t = 0; t < 6; ++t) {
    EXPECT_EQ(got.pair_ok[t], want.pair_ok[t]) << "pair table " << t;
    EXPECT_EQ(got.pair_values[t], want.pair_values[t]) << "pair table " << t;
  }
  ASSERT_EQ(got.has_scape, want.has_scape);
  ASSERT_EQ(got.pair_pivots.size(), want.pair_pivots.size());
  for (std::size_t p = 0; p < want.pair_pivots.size(); ++p) {
    for (int f = 0; f < 2; ++f) {
      const std::string what = "pair pivot " + std::to_string(p) + " family " + std::to_string(f);
      ExpectSamePairTree(got.pair_pivots[p].trees[f], want.pair_pivots[p].trees[f], what.c_str());
    }
  }
  ASSERT_EQ(got.loc_pivots.size(), want.loc_pivots.size());
  for (std::size_t p = 0; p < want.loc_pivots.size(); ++p) {
    for (int f = 0; f < 3; ++f) {
      const FlatLocTree& a = got.loc_pivots[p].trees[f];
      const FlatLocTree& b = want.loc_pivots[p].trees[f];
      EXPECT_EQ(a.norm, b.norm) << "loc pivot " << p << " family " << f;
      ASSERT_NE(a.runs, nullptr);
      ASSERT_NE(b.runs, nullptr);
      EXPECT_EQ(a.runs->keys, b.runs->keys) << "loc pivot " << p << " family " << f;
      EXPECT_EQ(a.runs->series, b.runs->series) << "loc pivot " << p << " family " << f;
    }
  }
}

/// Slides `slides` rows through a fresh stream and checks every published
/// epoch bitwise against a from-scratch flatten of the same live state.
void RunIdentitySweep(std::size_t interval, std::size_t threads) {
  const ts::Dataset ds = TestData();
  auto stream = StreamingAffinity::Create(Names(ds.matrix.n()), StreamOptions(interval, threads));
  ASSERT_TRUE(stream.ok()) << stream.status().message();
  std::vector<double> row(ds.matrix.n());
  std::size_t epochs = 0;
  for (std::size_t i = 0; i < kWindow + kSlides; ++i) {
    for (std::size_t j = 0; j < ds.matrix.n(); ++j) row[j] = ds.matrix.matrix()(i, j);
    const auto result = stream->Append(row);
    ASSERT_TRUE(result.ok()) << result.status.message();
    if (!result.refreshed) continue;
    auto published = stream->serving();
    auto cold = stream->BuildColdSnapshot();
    ASSERT_NE(published, nullptr);
    ASSERT_NE(cold, nullptr);
    ExpectSameSnapshot(*published, *cold);
    ++epochs;
  }
  EXPECT_GT(epochs, 0u);
  // The sweep exercised the delta path (not only full-flatten fallbacks):
  // after the first epoch every steady-state publication is incremental.
  if (interval <= kSlides / 2) {
    EXPECT_GT(stream->maintenance().epochs_delta, 0u) << "interval " << interval;
  }
}

TEST(ServeDelta, BitwiseIdentityInterval1) {
  RunIdentitySweep(1, 1);
  RunIdentitySweep(1, 2);
  RunIdentitySweep(1, 8);
}

TEST(ServeDelta, BitwiseIdentityInterval3) {
  RunIdentitySweep(3, 1);
  RunIdentitySweep(3, 8);
}

TEST(ServeDelta, BitwiseIdentityInterval129) {
  RunIdentitySweep(129, 2);
}

TEST(ServeDelta, BitwiseIdentityIntervalWindowPlus7) {
  RunIdentitySweep(kWindow + 7, 8);
}

TEST(ServeDelta, EscalationRebuildAndRestoreInvalidateTheDeltaPath) {
  const ts::Dataset ds = TestData();
  // A hair-trigger drift monitor: every refresh escalates to a rebuild,
  // so the delta provenance is torn down constantly — identity must hold
  // through every one of those full republications.
  StreamingOptions options = StreamOptions(5, 2);
  options.incremental.escalation_factor = 1e-9;
  options.incremental.escalation_slack = -1.0;
  auto stream = StreamingAffinity::Create(Names(ds.matrix.n()), options);
  ASSERT_TRUE(stream.ok());
  std::vector<double> row(ds.matrix.n());
  std::size_t escalations = 0;
  for (std::size_t i = 0; i < kWindow + 60; ++i) {
    for (std::size_t j = 0; j < ds.matrix.n(); ++j) row[j] = ds.matrix.matrix()(i, j);
    const auto result = stream->Append(row);
    ASSERT_TRUE(result.ok());
    if (result.escalated) ++escalations;
    if (!result.refreshed) continue;
    auto published = stream->serving();
    auto cold = stream->BuildColdSnapshot();
    ASSERT_NE(published, nullptr);
    ExpectSameSnapshot(*published, *cold);
  }
  EXPECT_GT(escalations, 0u);

  // Manual rebuild: republishes a full flatten that still matches.
  ASSERT_TRUE(stream->Rebuild().ok());
  {
    auto published = stream->serving();
    auto cold = stream->BuildColdSnapshot();
    ASSERT_NE(published, nullptr);
    ExpectSameSnapshot(*published, *cold);
  }

  // Restore: a stream rebuilt from a checkpointed model publishes its
  // first epoch immediately, and subsequent delta epochs (whose prior is
  // that restored flatten) stay bitwise identical.
  core::AffinityModel model = stream->framework()->model();
  StreamingOptions restore_options = StreamOptions(5, 2);
  auto restored = StreamingAffinity::Restore(std::move(model), restore_options, stream->exec());
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  ASSERT_NE(restored->serving(), nullptr);
  for (std::size_t i = kWindow; i < kWindow + 40; ++i) {
    for (std::size_t j = 0; j < ds.matrix.n(); ++j) row[j] = ds.matrix.matrix()(i, j);
    const auto result = restored->Append(row);
    ASSERT_TRUE(result.ok());
    if (!result.refreshed) continue;
    auto published = restored->serving();
    auto cold = restored->BuildColdSnapshot();
    ASSERT_NE(published, nullptr);
    ExpectSameSnapshot(*published, *cold);
  }
}

TEST(ServeDelta, EpochRingPinsOldGenerationsWithoutCopying) {
  const ts::Dataset ds = TestData();
  StreamingOptions options = StreamOptions(1, 2);
  options.serving_history = 4;
  auto stream = StreamingAffinity::Create(Names(ds.matrix.n()), options);
  ASSERT_TRUE(stream.ok());
  std::vector<double> row(ds.matrix.n());
  auto feed = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      for (std::size_t j = 0; j < ds.matrix.n(); ++j) row[j] = ds.matrix.matrix()(i, j);
      ASSERT_TRUE(stream->Append(row).ok());
    }
  };
  feed(0, kWindow + 10);
  auto pinned = stream->serving();
  ASSERT_NE(pinned, nullptr);
  const std::uint64_t pinned_generation = pinned->generation;
  const MetRequest req{Measure::kCorrelation, 0.5, true};
  auto before = SnapshotMet(*pinned, req);
  ASSERT_TRUE(before.ok());

  // Publish 4 newer epochs: the pinned one must stay reachable by
  // generation, share identity with our handle (no copy), and answer
  // bit-identically to before.
  feed(kWindow + 10, kWindow + 14);
  auto current = stream->serving();
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->generation, pinned_generation + 4);
  auto ringed = stream->serving_epoch(pinned_generation);
  ASSERT_NE(ringed, nullptr);
  EXPECT_EQ(ringed.get(), pinned.get());
  auto after = SnapshotMet(*ringed, req);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->series, before->series);
  EXPECT_EQ(after->pairs, before->pairs);

  // One more epoch pushes the pinned generation past the 4-deep ring.
  feed(kWindow + 14, kWindow + 15);
  EXPECT_EQ(stream->serving_epoch(pinned_generation), nullptr);
  // Our own handle still pins the epoch alive regardless of eviction.
  auto again = SnapshotMet(*pinned, req);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->pairs, before->pairs);
}

TEST(ServeDelta, ShardedRingServesOldRouterEpochs) {
  const ts::Dataset ds = TestData(16);
  shard::ShardedOptions options;
  options.shards = 2;
  options.streaming = StreamOptions(1, 2);
  options.streaming.serving_history = 4;
  auto service = shard::ShardedAffinity::Create(Names(16), options);
  ASSERT_TRUE(service.ok()) << service.status().message();
  std::vector<double> row(16);
  auto feed = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      for (std::size_t j = 0; j < 16; ++j) row[j] = ds.matrix.matrix()(i, j);
      ASSERT_TRUE(service->Append(row).ok());
    }
  };
  feed(0, kWindow + 8);
  auto pinned = service->serving();
  ASSERT_NE(pinned, nullptr);
  const MetRequest req{Measure::kCorrelation, 0.5, true};
  auto before = shard::RouterMet(*pinned, req);
  ASSERT_TRUE(before.ok());

  feed(kWindow + 8, kWindow + 11);
  auto ringed = service->serving_epoch(pinned->generation);
  ASSERT_NE(ringed, nullptr);
  EXPECT_EQ(ringed.get(), pinned.get());
  auto after = shard::RouterMet(*ringed, req);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->series, before->series);
  EXPECT_EQ(after->pairs, before->pairs);

  feed(kWindow + 11, kWindow + 13);
  EXPECT_EQ(service->serving_epoch(pinned->generation), nullptr);
}

TEST(ServeDelta, DeltaReusesWindowSegmentsAndScapeRuns) {
  const ts::Dataset ds = TestData();
  auto stream = StreamingAffinity::Create(Names(ds.matrix.n()), StreamOptions(1, 1));
  ASSERT_TRUE(stream.ok());
  std::vector<double> row(ds.matrix.n());
  for (std::size_t i = 0; i < kWindow + 60; ++i) {
    for (std::size_t j = 0; j < ds.matrix.n(); ++j) row[j] = ds.matrix.matrix()(i, j);
    ASSERT_TRUE(stream->Append(row).ok());
  }
  const core::MaintenanceProfile profile = stream->maintenance();
  // Steady-state interval-1 slides publish through the delta path, and
  // the COW window shares nearly every segment with the prior epoch (the
  // window is 40 rows over 16-row segments; only the tail segment's
  // buffer content changes, and even that buffer is shared because
  // appends mutate rows the snapshot never reads).
  EXPECT_GT(profile.epochs_delta, 0u);
  EXPECT_GT(profile.window_segments_reused, 0u);
  EXPECT_EQ(profile.serve_fallbacks, 0u);
}

}  // namespace
}  // namespace affinity::serve
