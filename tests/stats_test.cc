// Tests for the statistical kernels (ts/stats.h) — the WN baseline.

#include "ts/stats.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace affinity::ts::stats {
namespace {

TEST(Mean, KnownValues) {
  const double x[] = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(x, 4), 2.5);
  EXPECT_DOUBLE_EQ(Mean(x, 1), 1.0);
  EXPECT_DOUBLE_EQ(Mean(x, 0), 0.0);
}

TEST(Median, OddLength) {
  const double x[] = {5, 1, 3};
  EXPECT_DOUBLE_EQ(Median(x, 3), 3.0);
}

TEST(Median, EvenLengthAveragesMiddle) {
  const double x[] = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(Median(x, 4), 2.5);
}

TEST(Median, DoesNotMutateInput) {
  const double x[] = {9, 1, 5};
  (void)Median(x, 3);
  EXPECT_EQ(x[0], 9.0);
  EXPECT_EQ(x[1], 1.0);
}

TEST(Median, SingleAndEmpty) {
  const double x[] = {7};
  EXPECT_DOUBLE_EQ(Median(x, 1), 7.0);
  EXPECT_DOUBLE_EQ(Median(x, 0), 0.0);
}

TEST(Median, RobustToOutliers) {
  const double x[] = {1, 2, 3, 4, 1000};
  EXPECT_DOUBLE_EQ(Median(x, 5), 3.0);
}

TEST(Mode, PicksDensestBin) {
  // Cluster around 5 with one straggler at 0.
  const double x[] = {5.0, 5.01, 5.02, 4.99, 0.0};
  const double mode = Mode(x, 5);
  EXPECT_NEAR(mode, 5.0, 0.05);
}

TEST(Mode, ConstantSeriesReturnsValue) {
  const double x[] = {3.3, 3.3, 3.3};
  EXPECT_DOUBLE_EQ(Mode(x, 3), 3.3);
}

TEST(Mode, EmptyReturnsZero) { EXPECT_DOUBLE_EQ(Mode(nullptr, 0), 0.0); }

TEST(Mode, RespectsBinCount) {
  const double x[] = {0.0, 1.0};
  // With two bins, bin centres are 0.25 and 0.75; tie keeps the lower bin.
  EXPECT_DOUBLE_EQ(Mode(x, 2, 2), 0.25);
}

TEST(Mode, AffineEquivarianceApproximately) {
  Xoshiro256 rng(1);
  std::vector<double> x(500);
  for (auto& v : x) v = rng.Gaussian(10.0, 2.0);
  std::vector<double> y(500);
  for (std::size_t i = 0; i < 500; ++i) y[i] = 3.0 * x[i] - 7.0;
  // mode(3x-7) ≈ 3·mode(x) − 7 (bins are affine-equivariant over [min,max]).
  EXPECT_NEAR(Mode(y.data(), 500), 3.0 * Mode(x.data(), 500) - 7.0, 1e-9);
}

TEST(NaiveMode, AgreesWithHistogramModeOnClusteredData) {
  Xoshiro256 rng(7);
  std::vector<double> x(400);
  for (auto& v : x) v = rng.Gaussian(3.0, 0.5);
  const double lo = *std::min_element(x.begin(), x.end());
  const double hi = *std::max_element(x.begin(), x.end());
  const double bin = (hi - lo) / kModeBins;
  EXPECT_NEAR(NaiveModeEstimate(x.data(), 400), Mode(x.data(), 400), 3.0 * bin);
}

TEST(NaiveMode, ConstantSeries) {
  const double x[] = {2.5, 2.5, 2.5};
  EXPECT_DOUBLE_EQ(NaiveModeEstimate(x, 3), 2.5);
}

TEST(NaiveMode, PicksDensestSample) {
  const double x[] = {10.0, 1.0, 1.001, 0.999, 1.0002};
  EXPECT_NEAR(NaiveModeEstimate(x, 5), 1.0, 0.01);
}

TEST(NaiveMode, EmptyReturnsZero) { EXPECT_DOUBLE_EQ(NaiveModeEstimate(nullptr, 0), 0.0); }

TEST(Variance, KnownValue) {
  const double x[] = {1, 3};
  EXPECT_DOUBLE_EQ(Variance(x, 2), 1.0);  // population variance
}

TEST(Variance, ConstantIsZero) {
  const double x[] = {4, 4, 4};
  EXPECT_DOUBLE_EQ(Variance(x, 3), 0.0);
}

TEST(Covariance, KnownValue) {
  const double x[] = {1, 2, 3};
  const double y[] = {2, 4, 6};
  // cov = E[xy] − E[x]E[y] = 28/3 − 2·4 = 4/3... direct: Σ(x−2)(y−4)/3 = (2+0+2)/3.
  EXPECT_NEAR(Covariance(x, y, 3), 4.0 / 3.0, 1e-12);
}

TEST(Covariance, SymmetricInArguments) {
  const double x[] = {1, 5, 2, 8};
  const double y[] = {0, 3, 3, 1};
  EXPECT_DOUBLE_EQ(Covariance(x, y, 4), Covariance(y, x, 4));
}

TEST(Covariance, OfSelfIsVariance) {
  const double x[] = {1, 5, 2, 8};
  EXPECT_DOUBLE_EQ(Covariance(x, x, 4), Variance(x, 4));
}

TEST(DotProduct, KnownValue) {
  const double x[] = {1, 2, 3};
  const double y[] = {4, 5, 6};
  EXPECT_DOUBLE_EQ(DotProduct(x, y, 3), 32.0);
}

TEST(Correlation, PerfectPositive) {
  const double x[] = {1, 2, 3, 4};
  const double y[] = {10, 20, 30, 40};
  EXPECT_NEAR(Correlation(x, y, 4), 1.0, 1e-12);
}

TEST(Correlation, PerfectNegative) {
  const double x[] = {1, 2, 3, 4};
  const double y[] = {8, 6, 4, 2};
  EXPECT_NEAR(Correlation(x, y, 4), -1.0, 1e-12);
}

TEST(Correlation, ShiftAndScaleInvariant) {
  Xoshiro256 rng(2);
  std::vector<double> x(100), y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x[i] = rng.Gaussian();
    y[i] = 5.0 * x[i] + 3.0;
  }
  EXPECT_NEAR(Correlation(x.data(), y.data(), 100), 1.0, 1e-12);
}

TEST(Correlation, ZeroVarianceGivesZero) {
  const double x[] = {1, 1, 1};
  const double y[] = {1, 2, 3};
  EXPECT_DOUBLE_EQ(Correlation(x, y, 3), 0.0);
}

TEST(Correlation, BoundedByOne) {
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> x(40), y(40);
    for (std::size_t i = 0; i < 40; ++i) {
      x[i] = rng.Gaussian();
      y[i] = rng.Gaussian();
    }
    const double r = Correlation(x.data(), y.data(), 40);
    EXPECT_LE(std::fabs(r), 1.0 + 1e-12);
  }
}

TEST(CorrelationNormalizerFn, MatchesDefinition) {
  const double x[] = {1, 2, 3, 4};
  const double y[] = {2, 2, 4, 4};
  EXPECT_NEAR(CorrelationNormalizer(x, y, 4), std::sqrt(Variance(x, 4) * Variance(y, 4)), 1e-14);
}

TEST(ColumnSumsFn, TwoColumns) {
  la::Matrix x = la::Matrix::FromRows({{1, 10}, {2, 20}});
  const la::Vector h = ColumnSums(x);
  EXPECT_DOUBLE_EQ(h[0], 3.0);
  EXPECT_DOUBLE_EQ(h[1], 30.0);
}

TEST(PairCovarianceMatrixFn, MatchesScalars) {
  la::Matrix x = la::Matrix::FromRows({{1, 4}, {2, 5}, {3, 7}});
  const la::Matrix c = PairCovarianceMatrix(x);
  EXPECT_DOUBLE_EQ(c(0, 0), Variance(x.ColData(0), 3));
  EXPECT_DOUBLE_EQ(c(1, 1), Variance(x.ColData(1), 3));
  EXPECT_DOUBLE_EQ(c(0, 1), Covariance(x.ColData(0), x.ColData(1), 3));
  EXPECT_DOUBLE_EQ(c(0, 1), c(1, 0));
}

TEST(PairDotProductMatrixFn, MatchesScalars) {
  la::Matrix x = la::Matrix::FromRows({{1, 4}, {2, 5}});
  const la::Matrix d = PairDotProductMatrix(x);
  EXPECT_DOUBLE_EQ(d(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 41.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 14.0);
}

TEST(MatrixLevel, CovarianceMatrixMatchesScalars) {
  Xoshiro256 rng(4);
  la::Matrix values(20, 4);
  for (std::size_t j = 0; j < 4; ++j) {
    for (std::size_t i = 0; i < 20; ++i) values(i, j) = rng.Gaussian();
  }
  DataMatrix dm(values);
  const la::Matrix cov = CovarianceMatrix(dm);
  for (std::size_t u = 0; u < 4; ++u) {
    for (std::size_t v = 0; v < 4; ++v) {
      EXPECT_NEAR(cov(u, v), Covariance(dm.ColumnData(u), dm.ColumnData(v), 20), 1e-12);
    }
  }
}

TEST(MatrixLevel, CorrelationMatrixHasUnitDiagonal) {
  Xoshiro256 rng(5);
  la::Matrix values(30, 3);
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t i = 0; i < 30; ++i) values(i, j) = rng.Gaussian();
  }
  DataMatrix dm(values);
  const la::Matrix rho = CorrelationMatrix(dm);
  for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(rho(j, j), 1.0);
}

TEST(MatrixLevel, LocationVectors) {
  la::Matrix values = la::Matrix::FromRows({{1, 10}, {3, 30}, {2, 20}});
  DataMatrix dm(values);
  const la::Vector mean = MeanVector(dm);
  const la::Vector median = MedianVector(dm);
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 20.0);
  EXPECT_DOUBLE_EQ(median[0], 2.0);
  EXPECT_DOUBLE_EQ(median[1], 20.0);
}

TEST(VectorOverloads, AgreeWithPointerVersions) {
  la::Vector x{1, 2, 3, 4};
  la::Vector y{4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(Mean(x), Mean(x.data(), 4));
  EXPECT_DOUBLE_EQ(Median(x), Median(x.data(), 4));
  EXPECT_DOUBLE_EQ(Variance(x), Variance(x.data(), 4));
  EXPECT_DOUBLE_EQ(Covariance(x, y), Covariance(x.data(), y.data(), 4));
  EXPECT_DOUBLE_EQ(DotProduct(x, y), DotProduct(x.data(), y.data(), 4));
  EXPECT_DOUBLE_EQ(Correlation(x, y), Correlation(x.data(), y.data(), 4));
}

// Property sweep: covariance bilinearity cov(a·x+c, y) = a·cov(x, y).
class CovarianceScaling : public ::testing::TestWithParam<double> {};

TEST_P(CovarianceScaling, IsBilinear) {
  const double a = GetParam();
  Xoshiro256 rng(6);
  std::vector<double> x(60), y(60), ax(60);
  for (std::size_t i = 0; i < 60; ++i) {
    x[i] = rng.Gaussian();
    y[i] = rng.Gaussian();
    ax[i] = a * x[i] + 11.0;  // shift must not matter
  }
  EXPECT_NEAR(Covariance(ax.data(), y.data(), 60), a * Covariance(x.data(), y.data(), 60),
              1e-10 * (1.0 + std::fabs(a)));
}

INSTANTIATE_TEST_SUITE_P(Scales, CovarianceScaling, ::testing::Values(-3.0, -1.0, 0.0, 0.5, 2.0, 10.0));

}  // namespace
}  // namespace affinity::ts::stats
