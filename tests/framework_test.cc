// Tests for the Affinity facade and the %RMSE metric (core/framework.h).

#include "core/framework.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ts/generators.h"

namespace affinity::core {
namespace {

ts::Dataset SmallDataset() {
  ts::DatasetSpec spec;
  spec.num_series = 16;
  spec.num_samples = 64;
  spec.num_clusters = 2;
  spec.noise_level = 0.02;
  spec.seed = 8;
  return ts::MakeSensorData(spec);
}

TEST(AffinityBuild, DefaultBuildsEverything) {
  const ts::Dataset ds = SmallDataset();
  auto fw = Affinity::Build(ds.matrix);
  ASSERT_TRUE(fw.ok());
  EXPECT_NE(fw->scape(), nullptr);
  EXPECT_NE(fw->wf(), nullptr);
  EXPECT_EQ(fw->model().relationship_count(), ts::SequencePairCount(16));
  EXPECT_EQ(fw->data().n(), 16u);
}

TEST(AffinityBuild, OptionalComponentsCanBeSkipped) {
  const ts::Dataset ds = SmallDataset();
  AffinityOptions opt;
  opt.build_scape = false;
  opt.build_dft = false;
  auto fw = Affinity::Build(ds.matrix, opt);
  ASSERT_TRUE(fw.ok());
  EXPECT_EQ(fw->scape(), nullptr);
  EXPECT_EQ(fw->wf(), nullptr);
  // WN/WA still work.
  MetRequest req;
  req.measure = Measure::kCovariance;
  req.tau = 0.0;
  EXPECT_TRUE(fw->engine().Met(req, QueryMethod::kAffine).ok());
  EXPECT_FALSE(fw->engine().Met(req, QueryMethod::kScape).ok());
}

TEST(AffinityBuild, ProfileIsPopulated) {
  const ts::Dataset ds = SmallDataset();
  auto fw = Affinity::Build(ds.matrix);
  ASSERT_TRUE(fw.ok());
  const BuildProfile& p = fw->profile();
  EXPECT_GE(p.afclst_seconds, 0.0);
  EXPECT_GT(p.symex_seconds, 0.0);
  EXPECT_GT(p.total_seconds, 0.0);
  EXPECT_GE(p.total_seconds,
            p.afclst_seconds + p.symex_seconds + p.scape_seconds + p.dft_seconds - 1e-9);
}

TEST(AffinityBuild, RespectsAfclstOptions) {
  const ts::Dataset ds = SmallDataset();
  AffinityOptions opt;
  opt.afclst.k = 5;
  auto fw = Affinity::Build(ds.matrix, opt);
  ASSERT_TRUE(fw.ok());
  EXPECT_EQ(fw->model().clustering().k(), 5u);
}

TEST(AffinityBuild, PropagatesInvalidOptions) {
  const ts::Dataset ds = SmallDataset();
  AffinityOptions opt;
  opt.afclst.k = 1000;  // > n
  EXPECT_FALSE(Affinity::Build(ds.matrix, opt).ok());
}

TEST(AffinityBuild, MoveSemantics) {
  const ts::Dataset ds = SmallDataset();
  auto fw = Affinity::Build(ds.matrix);
  ASSERT_TRUE(fw.ok());
  Affinity moved = std::move(fw).value();
  MetRequest req;
  req.measure = Measure::kCorrelation;
  req.tau = 0.5;
  EXPECT_TRUE(moved.engine().Met(req, QueryMethod::kScape).ok());
}

TEST(PercentRmseFn, ZeroForIdenticalInputs) {
  EXPECT_DOUBLE_EQ(PercentRmse({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(PercentRmseFn, EmptyInputsGiveZero) { EXPECT_DOUBLE_EQ(PercentRmse({}, {}), 0.0); }

TEST(PercentRmseFn, KnownValue) {
  // truth range = 10; each |error| = 1 → normalized RMSE = 0.1 → 10%.
  EXPECT_NEAR(PercentRmse({0, 10}, {1, 9}), 10.0, 1e-12);
}

TEST(PercentRmseFn, ScaleInvariantInTruthUnits) {
  const double a = PercentRmse({0, 1}, {0.1, 0.9});
  const double b = PercentRmse({0, 1000}, {100, 900});
  EXPECT_NEAR(a, b, 1e-9);
}

TEST(PercentRmseFn, ConstantTruthFallsBackToUnnormalized) {
  EXPECT_NEAR(PercentRmse({5, 5}, {5, 6}), std::sqrt(0.5) * 100.0, 1e-9);
}

TEST(PercentRmseFn, DeathOnSizeMismatch) {
  EXPECT_DEATH({ PercentRmse({1.0}, {1.0, 2.0}); }, "CHECK");
}

TEST(AffinityQuickstart, EndToEndFlow) {
  // The README quickstart, as a test.
  const ts::Dataset ds = SmallDataset();
  auto fw = Affinity::Build(ds.matrix);
  ASSERT_TRUE(fw.ok());

  MecRequest mec;
  mec.measure = Measure::kCorrelation;
  mec.ids = {0, 1, 2};
  auto matrix = fw->engine().Mec(mec, QueryMethod::kAffine);
  ASSERT_TRUE(matrix.ok());
  EXPECT_NEAR(matrix->pair_values(0, 0), 1.0, 1e-9);

  MetRequest met;
  met.measure = Measure::kCorrelation;
  met.tau = 0.9;
  auto hot = fw->engine().Met(met, QueryMethod::kScape);
  ASSERT_TRUE(hot.ok());

  MerRequest mer;
  mer.measure = Measure::kCovariance;
  mer.lo = -0.1;
  mer.hi = 0.1;
  auto mild = fw->engine().Mer(mer, QueryMethod::kScape);
  ASSERT_TRUE(mild.ok());
}

}  // namespace
}  // namespace affinity::core
