// Tests for the PRNG stack (common/random.h): determinism, distributional
// sanity, and the Zipf workload sampler.

#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace affinity {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.Next() != b.Next());
  EXPECT_TRUE(any_diff);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro256, UniformRespectsBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Xoshiro256, UniformMeanIsCentered) {
  Xoshiro256 rng(11);
  double acc = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) acc += rng.Uniform(0.0, 1.0);
  EXPECT_NEAR(acc / trials, 0.5, 0.01);
}

TEST(Xoshiro256, NextBoundedInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Xoshiro256, NextBoundedCoversAllResidues) {
  Xoshiro256 rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro256, GaussianMomentsMatchStandardNormal) {
  Xoshiro256 rng(5);
  const int trials = 200000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < trials; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sumsq += g * g;
  }
  const double mean = sum / trials;
  const double var = sumsq / trials - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Xoshiro256, GaussianScaled) {
  Xoshiro256 rng(5);
  const int trials = 100000;
  double sum = 0;
  for (int i = 0; i < trials; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / trials, 10.0, 0.05);
}

TEST(ZipfSampler, SamplesInRange) {
  Xoshiro256 rng(1);
  ZipfSampler zipf(50, 1.0);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(&rng), 50u);
}

TEST(ZipfSampler, RankZeroIsMostPopular) {
  Xoshiro256 rng(1);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(&rng)];
  // Rank 0 should dominate rank 50 by roughly 51x under exponent 1.
  EXPECT_GT(counts[0], counts[50] * 10);
  EXPECT_GT(counts[0], counts[10] * 3);
}

TEST(ZipfSampler, ExponentZeroIsUniform) {
  Xoshiro256 rng(9);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c, trials / 10, trials / 50);
}

TEST(ZipfSampler, SampleDistinctReturnsDistinct) {
  Xoshiro256 rng(2);
  ZipfSampler zipf(30, 1.0);
  for (int trial = 0; trial < 100; ++trial) {
    const std::vector<std::size_t> picks = zipf.SampleDistinct(&rng, 10);
    EXPECT_EQ(picks.size(), 10u);
    std::set<std::size_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 10u);
  }
}

TEST(ZipfSampler, SampleDistinctWholePopulation) {
  Xoshiro256 rng(2);
  ZipfSampler zipf(5, 1.0);
  const std::vector<std::size_t> picks = zipf.SampleDistinct(&rng, 5);
  std::set<std::size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 5u);
}

}  // namespace
}  // namespace affinity
