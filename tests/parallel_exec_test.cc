// Thread-count invariance of the whole stack (the DESIGN.md §7
// guarantee): building the framework and answering MET/MER/MEC/top-k
// queries with 1, 2, and 8 threads must produce *identical* results —
// same entity sets, same order, bitwise-equal values — because the chunk
// decomposition depends only on item counts and merges are ordered.

#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/framework.h"
#include "core/streaming.h"
#include "ts/generators.h"

namespace affinity::core {
namespace {

ts::Dataset TestData() {
  ts::DatasetSpec spec;
  spec.num_series = 30;
  spec.num_samples = 96;
  spec.num_clusters = 3;
  spec.noise_level = 0.03;
  spec.seed = 99;
  return ts::MakeSensorData(spec);
}

Affinity BuildWithThreads(const ts::DataMatrix& data, std::size_t threads) {
  AffinityOptions options;
  options.threads = threads;
  auto fw = Affinity::Build(data, options);
  EXPECT_TRUE(fw.ok()) << fw.status().ToString();
  return std::move(fw).value();
}

void ExpectSelectionsIdentical(const SelectionResult& a, const SelectionResult& b,
                               const char* label) {
  // Full equality including order: parallel merges are chunk-ordered, so
  // even the sequence must match the sequential run.
  EXPECT_EQ(a.series, b.series) << label;
  EXPECT_EQ(a.pairs, b.pairs) << label;
}

class ParallelExecTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new ts::Dataset(TestData());
    baseline_ = new Affinity(BuildWithThreads(dataset_->matrix, 1));
  }
  static void TearDownTestSuite() {
    delete baseline_;
    delete dataset_;
    baseline_ = nullptr;
    dataset_ = nullptr;
  }
  static ts::Dataset* dataset_;
  static Affinity* baseline_;  ///< sequential reference build
};

ts::Dataset* ParallelExecTest::dataset_ = nullptr;
Affinity* ParallelExecTest::baseline_ = nullptr;

TEST_F(ParallelExecTest, BuiltModelIsIdenticalAcrossThreadCounts) {
  for (const std::size_t threads : {2u, 8u}) {
    const Affinity fw = BuildWithThreads(dataset_->matrix, threads);
    EXPECT_EQ(fw.profile().threads, threads);
    ASSERT_EQ(fw.model().relationship_count(), baseline_->model().relationship_count());
    ASSERT_EQ(fw.model().pivot_count(), baseline_->model().pivot_count());
    // Bitwise-equal propagated values for every pair and measure family.
    for (const auto& e : ts::AllSequencePairs(dataset_->matrix.n())) {
      for (const Measure m : {Measure::kCovariance, Measure::kDotProduct,
                              Measure::kCorrelation, Measure::kCosine}) {
        EXPECT_EQ(*fw.model().PairMeasure(m, e), *baseline_->model().PairMeasure(m, e))
            << MeasureName(m) << " (" << e.u << "," << e.v << ") threads=" << threads;
      }
    }
    for (ts::SeriesId v = 0; v < dataset_->matrix.n(); ++v) {
      EXPECT_EQ(*fw.model().SeriesMeasure(Measure::kMean, v),
                *baseline_->model().SeriesMeasure(Measure::kMean, v));
    }
  }
}

TEST_F(ParallelExecTest, MetIdenticalAcrossThreadCounts) {
  for (const std::size_t threads : {2u, 8u}) {
    const Affinity fw = BuildWithThreads(dataset_->matrix, threads);
    for (const QueryMethod method :
         {QueryMethod::kNaive, QueryMethod::kAffine, QueryMethod::kScape, QueryMethod::kDft}) {
      MetRequest req;
      req.measure = Measure::kCorrelation;
      req.tau = 0.7;
      auto parallel = fw.engine().Met(req, method);
      auto sequential = baseline_->engine().Met(req, method);
      ASSERT_TRUE(parallel.ok()) << QueryMethodName(method);
      ASSERT_TRUE(sequential.ok());
      ExpectSelectionsIdentical(*parallel, *sequential, QueryMethodName(method).data());
    }
    MetRequest loc;
    loc.measure = Measure::kMean;
    loc.tau = 5.0;
    auto parallel = fw.engine().Met(loc, QueryMethod::kNaive);
    auto sequential = baseline_->engine().Met(loc, QueryMethod::kNaive);
    ASSERT_TRUE(parallel.ok());
    ASSERT_TRUE(sequential.ok());
    ExpectSelectionsIdentical(*parallel, *sequential, "mean/WN");
  }
}

TEST_F(ParallelExecTest, MerIdenticalAcrossThreadCounts) {
  for (const std::size_t threads : {2u, 8u}) {
    const Affinity fw = BuildWithThreads(dataset_->matrix, threads);
    MerRequest req;
    req.measure = Measure::kCovariance;
    req.lo = -1.0;
    req.hi = 2.5;
    for (const QueryMethod method :
         {QueryMethod::kNaive, QueryMethod::kAffine, QueryMethod::kScape}) {
      auto parallel = fw.engine().Mer(req, method);
      auto sequential = baseline_->engine().Mer(req, method);
      ASSERT_TRUE(parallel.ok()) << QueryMethodName(method);
      ASSERT_TRUE(sequential.ok());
      ExpectSelectionsIdentical(*parallel, *sequential, QueryMethodName(method).data());
    }
  }
}

TEST_F(ParallelExecTest, MecIdenticalAcrossThreadCounts) {
  MecRequest req;
  req.measure = Measure::kCorrelation;
  for (ts::SeriesId v = 0; v < dataset_->matrix.n(); ++v) req.ids.push_back(v);
  for (const std::size_t threads : {2u, 8u}) {
    const Affinity fw = BuildWithThreads(dataset_->matrix, threads);
    for (const QueryMethod method :
         {QueryMethod::kNaive, QueryMethod::kAffine, QueryMethod::kDft}) {
      auto parallel = fw.engine().Mec(req, method);
      auto sequential = baseline_->engine().Mec(req, method);
      ASSERT_TRUE(parallel.ok()) << QueryMethodName(method);
      ASSERT_TRUE(sequential.ok());
      EXPECT_EQ(parallel->pair_values.MaxAbsDiff(sequential->pair_values), 0.0)
          << QueryMethodName(method);
    }
    MecRequest loc;
    loc.measure = Measure::kMedian;
    loc.ids = req.ids;
    auto parallel = fw.engine().Mec(loc, QueryMethod::kNaive);
    auto sequential = baseline_->engine().Mec(loc, QueryMethod::kNaive);
    ASSERT_TRUE(parallel.ok());
    ASSERT_TRUE(sequential.ok());
    ASSERT_EQ(parallel->location.size(), sequential->location.size());
    for (std::size_t i = 0; i < parallel->location.size(); ++i) {
      EXPECT_EQ(parallel->location[i], sequential->location[i]);
    }
  }
}

TEST_F(ParallelExecTest, TopKIdenticalAcrossThreadCounts) {
  for (const std::size_t threads : {2u, 8u}) {
    const Affinity fw = BuildWithThreads(dataset_->matrix, threads);
    for (const QueryMethod method :
         {QueryMethod::kNaive, QueryMethod::kAffine, QueryMethod::kScape}) {
      TopKRequest req;
      req.measure = Measure::kCorrelation;
      req.k = 15;
      auto parallel = fw.engine().TopK(req, method);
      auto sequential = baseline_->engine().TopK(req, method);
      ASSERT_TRUE(parallel.ok()) << QueryMethodName(method);
      ASSERT_TRUE(sequential.ok());
      ASSERT_EQ(parallel->entries.size(), sequential->entries.size());
      for (std::size_t i = 0; i < parallel->entries.size(); ++i) {
        EXPECT_EQ(parallel->entries[i].value, sequential->entries[i].value) << i;
        EXPECT_EQ(parallel->entries[i].pair, sequential->entries[i].pair) << i;
        EXPECT_EQ(parallel->entries[i].series, sequential->entries[i].series) << i;
      }
    }
  }
}

TEST(ParallelStreaming, RebuildsMatchSequentialStream) {
  // Two identical streams, one sequential and one with a shared pool:
  // every snapshot must answer queries identically.
  const ts::Dataset data = TestData();
  std::vector<std::string> names;
  for (ts::SeriesId v = 0; v < data.matrix.n(); ++v) names.push_back(data.matrix.name(v));

  StreamingOptions seq_options;
  seq_options.window = 48;
  seq_options.rebuild_interval = 16;
  seq_options.build.threads = 1;
  StreamingOptions par_options = seq_options;
  par_options.build.threads = 4;

  auto seq = StreamingAffinity::Create(names, seq_options);
  auto par = StreamingAffinity::Create(names, par_options);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());

  std::vector<double> row(data.matrix.n());
  for (std::size_t i = 0; i < 80; ++i) {
    for (std::size_t j = 0; j < data.matrix.n(); ++j) {
      row[j] = data.matrix.ColumnData(static_cast<ts::SeriesId>(j))[i];
    }
    ASSERT_TRUE(seq->Append(row).ok());
    ASSERT_TRUE(par->Append(row).ok());
  }
  ASSERT_TRUE(seq->ready());
  ASSERT_TRUE(par->ready());
  EXPECT_EQ(seq->rebuild_count(), par->rebuild_count());

  MetRequest req;
  req.measure = Measure::kCorrelation;
  req.tau = 0.8;
  auto a = seq->framework()->engine().Met(req, QueryMethod::kScape);
  auto b = par->framework()->engine().Met(req, QueryMethod::kScape);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->pairs, b->pairs);
}

}  // namespace
}  // namespace affinity::core
