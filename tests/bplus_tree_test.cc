// Tests for the B+-tree substrate (btree/bplus_tree.h), including a
// randomized differential test against std::multimap.

#include "btree/bplus_tree.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace affinity::btree {
namespace {

TEST(BPlusTree, EmptyTree) {
  BPlusTree<int> t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.height(), 1u);
  EXPECT_EQ(t.begin(), t.end());
  EXPECT_EQ(t.LowerBound(0.0), t.end());
  EXPECT_TRUE(t.ValidateInvariants());
}

TEST(BPlusTree, SingleInsert) {
  BPlusTree<int> t;
  t.Insert(1.5, 42);
  EXPECT_EQ(t.size(), 1u);
  auto it = t.begin();
  ASSERT_NE(it, t.end());
  EXPECT_EQ(it.key(), 1.5);
  EXPECT_EQ(it.value(), 42);
}

TEST(BPlusTree, IterationIsSorted) {
  BPlusTree<int> t(4);  // tiny fanout forces splits early
  const double keys[] = {5, 1, 9, 3, 7, 2, 8, 4, 6, 0};
  for (int i = 0; i < 10; ++i) t.Insert(keys[i], i);
  double prev = -1;
  std::size_t count = 0;
  for (auto it = t.begin(); it != t.end(); ++it) {
    EXPECT_GE(it.key(), prev);
    prev = it.key();
    ++count;
  }
  EXPECT_EQ(count, 10u);
  EXPECT_TRUE(t.ValidateInvariants());
}

TEST(BPlusTree, DuplicateKeysAreKept) {
  BPlusTree<int> t(4);
  for (int i = 0; i < 20; ++i) t.Insert(1.0, i);
  EXPECT_EQ(t.size(), 20u);
  std::size_t seen = 0;
  for (auto it = t.begin(); it != t.end(); ++it) {
    EXPECT_EQ(it.key(), 1.0);
    ++seen;
  }
  EXPECT_EQ(seen, 20u);
  EXPECT_TRUE(t.ValidateInvariants());
}

TEST(BPlusTree, LowerBoundSemantics) {
  BPlusTree<int> t(4);
  for (double k : {1.0, 3.0, 3.0, 5.0, 7.0}) t.Insert(k, 0);
  EXPECT_EQ(t.LowerBound(0.0).key(), 1.0);
  EXPECT_EQ(t.LowerBound(3.0).key(), 3.0);  // first >=
  EXPECT_EQ(t.LowerBound(4.0).key(), 5.0);
  EXPECT_EQ(t.LowerBound(7.0).key(), 7.0);
  EXPECT_EQ(t.LowerBound(7.5), t.end());
}

TEST(BPlusTree, UpperBoundSemantics) {
  BPlusTree<int> t(4);
  for (double k : {1.0, 3.0, 3.0, 5.0}) t.Insert(k, 0);
  EXPECT_EQ(t.UpperBound(0.0).key(), 1.0);
  EXPECT_EQ(t.UpperBound(3.0).key(), 5.0);  // strictly greater
  EXPECT_EQ(t.UpperBound(1.0).key(), 3.0);
  EXPECT_EQ(t.UpperBound(5.0), t.end());
}

TEST(BPlusTree, ScanGreaterThanIsStrict) {
  BPlusTree<int> t(4);
  for (int i = 0; i < 10; ++i) t.Insert(static_cast<double>(i), i);
  std::vector<int> got;
  t.ScanGreaterThan(4.0, [&](double, const int& v) { got.push_back(v); });
  EXPECT_EQ(got, (std::vector<int>{5, 6, 7, 8, 9}));
}

TEST(BPlusTree, ScanLessThanIsStrict) {
  BPlusTree<int> t(4);
  for (int i = 0; i < 10; ++i) t.Insert(static_cast<double>(i), i);
  std::vector<int> got;
  t.ScanLessThan(3.0, [&](double, const int& v) { got.push_back(v); });
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2}));
}

TEST(BPlusTree, ScanOpenRangeExcludesEndpoints) {
  BPlusTree<int> t(4);
  for (int i = 0; i < 10; ++i) t.Insert(static_cast<double>(i), i);
  std::vector<int> got;
  t.ScanOpenRange(2.0, 6.0, [&](double, const int& v) { got.push_back(v); });
  EXPECT_EQ(got, (std::vector<int>{3, 4, 5}));
}

TEST(BPlusTree, EmptyRangeScans) {
  BPlusTree<int> t(4);
  for (int i = 0; i < 5; ++i) t.Insert(static_cast<double>(i), i);
  int count = 0;
  t.ScanOpenRange(2.0, 2.0, [&](double, const int&) { ++count; });
  EXPECT_EQ(count, 0);
  t.ScanOpenRange(10.0, 20.0, [&](double, const int&) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(BPlusTree, HeightGrowsLogarithmically) {
  BPlusTree<int> t(4);
  for (int i = 0; i < 1000; ++i) t.Insert(static_cast<double>(i), i);
  EXPECT_GT(t.height(), 2u);
  EXPECT_LT(t.height(), 12u);
  EXPECT_TRUE(t.ValidateInvariants());
}

TEST(BPlusTree, DescendingInsertionStaysValid) {
  BPlusTree<int> t(4);
  for (int i = 1000; i-- > 0;) t.Insert(static_cast<double>(i), i);
  EXPECT_TRUE(t.ValidateInvariants());
  EXPECT_EQ(t.begin().value(), 0);
}

TEST(BPlusTree, NegativeAndExtremeKeys) {
  BPlusTree<int> t(4);
  t.Insert(-1e300, 1);
  t.Insert(1e300, 2);
  t.Insert(0.0, 3);
  t.Insert(-0.0, 4);
  EXPECT_EQ(t.begin().value(), 1);
  EXPECT_EQ(t.LowerBound(1e299).value(), 2);
  EXPECT_TRUE(t.ValidateInvariants());
}

TEST(BPlusTree, MoveSemantics) {
  BPlusTree<int> t(4);
  for (int i = 0; i < 100; ++i) t.Insert(static_cast<double>(i), i);
  BPlusTree<int> moved = std::move(t);
  EXPECT_EQ(moved.size(), 100u);
  EXPECT_TRUE(moved.ValidateInvariants());
}

// Differential property test: the tree must agree with std::multimap on
// inserts, bounds, and range scans, across fanouts.
class BPlusTreeDifferential : public ::testing::TestWithParam<int> {};

TEST_P(BPlusTreeDifferential, MatchesMultimap) {
  const auto fanout = static_cast<std::size_t>(GetParam());
  BPlusTree<int> tree(fanout);
  std::multimap<double, int> reference;
  Xoshiro256 rng(fanout);

  for (int i = 0; i < 5000; ++i) {
    // Quantized keys create plenty of duplicates.
    const double key = std::floor(rng.Uniform(-50.0, 50.0));
    tree.Insert(key, i);
    reference.emplace(key, i);
  }
  ASSERT_EQ(tree.size(), reference.size());
  ASSERT_TRUE(tree.ValidateInvariants());

  // Full iteration yields the same sorted key sequence.
  {
    auto it = tree.begin();
    for (auto ref = reference.begin(); ref != reference.end(); ++ref, ++it) {
      ASSERT_NE(it, tree.end());
      EXPECT_EQ(it.key(), ref->first);
    }
    EXPECT_EQ(it, tree.end());
  }

  // Random bound probes.
  for (int probe = 0; probe < 200; ++probe) {
    const double q = std::floor(rng.Uniform(-60.0, 60.0));
    const auto lb_ref = reference.lower_bound(q);
    const auto lb = tree.LowerBound(q);
    if (lb_ref == reference.end()) {
      EXPECT_EQ(lb, tree.end());
    } else {
      ASSERT_NE(lb, tree.end());
      EXPECT_EQ(lb.key(), lb_ref->first);
    }
    const auto ub_ref = reference.upper_bound(q);
    const auto ub = tree.UpperBound(q);
    if (ub_ref == reference.end()) {
      EXPECT_EQ(ub, tree.end());
    } else {
      ASSERT_NE(ub, tree.end());
      EXPECT_EQ(ub.key(), ub_ref->first);
    }
  }

  // Range scan count matches.
  for (int probe = 0; probe < 50; ++probe) {
    double lo = std::floor(rng.Uniform(-60.0, 60.0));
    double hi = std::floor(rng.Uniform(-60.0, 60.0));
    if (lo > hi) std::swap(lo, hi);
    std::size_t tree_count = 0;
    tree.ScanOpenRange(lo, hi, [&](double k, const int&) {
      EXPECT_GT(k, lo);
      EXPECT_LT(k, hi);
      ++tree_count;
    });
    std::size_t ref_count = 0;
    for (auto it = reference.upper_bound(lo); it != reference.end() && it->first < hi; ++it) {
      ++ref_count;
    }
    EXPECT_EQ(tree_count, ref_count);
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, BPlusTreeDifferential, ::testing::Values(4, 8, 16, 64, 256));

TEST(BPlusTreeReverse, EmptyTree) {
  BPlusTree<int> t;
  EXPECT_EQ(t.rbegin(), t.rend());
}

TEST(BPlusTreeReverse, DescendingTraversalVisitsEverything) {
  BPlusTree<int> t(4);
  Xoshiro256 rng(21);
  for (int i = 0; i < 2000; ++i) t.Insert(rng.NextDouble(), i);
  double prev = 2.0;
  std::size_t count = 0;
  for (auto it = t.rbegin(); it != t.rend(); ++it) {
    EXPECT_LE(it.key(), prev);
    prev = it.key();
    ++count;
  }
  EXPECT_EQ(count, 2000u);
}

TEST(BPlusTreeReverse, MatchesForwardReversed) {
  BPlusTree<int> t(8);
  Xoshiro256 rng(22);
  for (int i = 0; i < 500; ++i) t.Insert(std::floor(rng.Uniform(-20, 20)), i);
  std::vector<double> forward, backward;
  for (auto it = t.begin(); it != t.end(); ++it) forward.push_back(it.key());
  for (auto it = t.rbegin(); it != t.rend(); ++it) backward.push_back(it.key());
  std::reverse(backward.begin(), backward.end());
  EXPECT_EQ(forward, backward);
}

TEST(BPlusTreeReverse, SingleEntry) {
  BPlusTree<int> t;
  t.Insert(3.5, 1);
  auto it = t.rbegin();
  ASSERT_NE(it, t.rend());
  EXPECT_EQ(it.key(), 3.5);
  ++it;
  EXPECT_EQ(it, t.rend());
}

TEST(BPlusTreeErase, EraseFromLeafRoot) {
  BPlusTree<int> t;
  t.Insert(1.0, 1);
  t.Insert(2.0, 2);
  EXPECT_TRUE(t.Erase(1.0));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_FALSE(t.Erase(1.0));  // already gone
  EXPECT_FALSE(t.Erase(9.0));  // never existed
  EXPECT_TRUE(t.Erase(2.0));
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.begin(), t.end());
  EXPECT_TRUE(t.ValidateInvariants());
}

TEST(BPlusTreeErase, PredicateSelectsAmongDuplicates) {
  BPlusTree<int> t(4);
  for (int i = 0; i < 10; ++i) t.Insert(1.0, i);
  EXPECT_TRUE(t.Erase(1.0, [](const int& v) { return v == 7; }));
  EXPECT_FALSE(t.Erase(1.0, [](const int& v) { return v == 7; }));
  std::vector<int> left;
  for (auto it = t.begin(); it != t.end(); ++it) left.push_back(it.value());
  EXPECT_EQ(left, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 8, 9}));
  EXPECT_TRUE(t.ValidateInvariants());
}

TEST(BPlusTreeErase, DrainAscendingTriggersMergeChains) {
  BPlusTree<int> t(4);
  for (int i = 0; i < 1000; ++i) t.Insert(static_cast<double>(i), i);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(t.Erase(static_cast<double>(i))) << i;
    ASSERT_TRUE(t.ValidateInvariants()) << i;
  }
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.height(), 1u);
}

TEST(BPlusTreeErase, DrainDescendingTriggersBorrowFromLeft) {
  BPlusTree<int> t(4);
  for (int i = 0; i < 1000; ++i) t.Insert(static_cast<double>(i), i);
  for (int i = 1000; i-- > 0;) {
    ASSERT_TRUE(t.Erase(static_cast<double>(i))) << i;
    ASSERT_TRUE(t.ValidateInvariants()) << i;
  }
  EXPECT_TRUE(t.empty());
}

TEST(BPlusTreeErase, RootCollapsesAsTreeShrinks) {
  BPlusTree<int> t(4);
  for (int i = 0; i < 500; ++i) t.Insert(static_cast<double>(i), i);
  const std::size_t tall = t.height();
  ASSERT_GT(tall, 2u);
  Xoshiro256 rng(5);
  std::vector<int> alive(500);
  for (int i = 0; i < 500; ++i) alive[static_cast<std::size_t>(i)] = i;
  while (alive.size() > 3) {
    const std::size_t pick = rng.NextBounded(alive.size());
    ASSERT_TRUE(t.Erase(static_cast<double>(alive[pick])));
    alive.erase(alive.begin() + static_cast<long>(pick));
    ASSERT_TRUE(t.ValidateInvariants());
  }
  EXPECT_EQ(t.height(), 1u);
  EXPECT_EQ(t.size(), 3u);
}

TEST(BPlusTreeErase, ReKeyMovesEntryAndKeepsPayload) {
  BPlusTree<int> t(4);
  for (int i = 0; i < 100; ++i) t.Insert(static_cast<double>(i), i);
  EXPECT_TRUE(t.ReKey(42.0, -5.0, [](const int& v) { return v == 42; }));
  EXPECT_FALSE(t.ReKey(42.0, 0.0, [](const int& v) { return v == 42; }));
  EXPECT_EQ(t.size(), 100u);
  EXPECT_EQ(t.begin().key(), -5.0);
  EXPECT_EQ(t.begin().value(), 42);
  EXPECT_TRUE(t.ValidateInvariants());
}

TEST(BPlusTreeErase, ReKeyAmongEqualKeysAppendsAfterExisting) {
  BPlusTree<int> t(4);
  t.Insert(1.0, 10);
  t.Insert(2.0, 20);
  t.Insert(2.0, 21);
  ASSERT_TRUE(t.ReKey(1.0, 2.0, [](const int&) { return true; }));
  std::vector<int> order;
  for (auto it = t.begin(); it != t.end(); ++it) order.push_back(it.value());
  EXPECT_EQ(order, (std::vector<int>{20, 21, 10}));
}

// Randomized insert/erase/re-key differential test against std::multimap.
// Values are unique so an erase can target one specific entry on both
// sides; quantized keys create long duplicate runs that straddle node
// splits (the hard case for deletion descent).
class BPlusTreeEraseDifferential : public ::testing::TestWithParam<int> {};

TEST_P(BPlusTreeEraseDifferential, MatchesMultimap) {
  const auto fanout = static_cast<std::size_t>(GetParam());
  BPlusTree<int> tree(fanout);
  std::multimap<double, int> reference;
  Xoshiro256 rng(1000 + fanout);
  int next_value = 0;

  const auto erase_ref = [&](double key, int value) {
    for (auto [it, end] = reference.equal_range(key); it != end; ++it) {
      if (it->second == value) {
        reference.erase(it);
        return;
      }
    }
    FAIL() << "oracle out of sync";
  };

  for (int step = 0; step < 8000; ++step) {
    const std::size_t op = rng.NextBounded(10);
    if (op < 5 || reference.empty()) {
      // Insert (biased so the tree both grows and shrinks over time).
      const double key = std::floor(rng.Uniform(-30.0, 30.0));
      tree.Insert(key, next_value);
      reference.emplace(key, next_value);
      ++next_value;
    } else if (op < 8) {
      // Erase a uniformly random live entry.
      auto ref = std::next(reference.begin(),
                           static_cast<long>(rng.NextBounded(reference.size())));
      const double key = ref->first;
      const int value = ref->second;
      ASSERT_TRUE(tree.Erase(key, [&](const int& v) { return v == value; }));
      erase_ref(key, value);
    } else {
      // Re-key a random live entry to a random new key.
      auto ref = std::next(reference.begin(),
                           static_cast<long>(rng.NextBounded(reference.size())));
      const double key = ref->first;
      const int value = ref->second;
      const double new_key = std::floor(rng.Uniform(-30.0, 30.0));
      ASSERT_TRUE(tree.ReKey(key, new_key, [&](const int& v) { return v == value; }));
      erase_ref(key, value);
      reference.emplace(new_key, value);
    }
    if (step % 256 == 0) {
      ASSERT_TRUE(tree.ValidateInvariants()) << "step " << step;
    }
    ASSERT_EQ(tree.size(), reference.size());
  }
  ASSERT_TRUE(tree.ValidateInvariants());

  // Final contents agree: same sorted key sequence and same per-key value
  // multisets.
  auto it = tree.begin();
  auto ref = reference.begin();
  std::multimap<double, int> tree_entries;
  for (; ref != reference.end(); ++ref, ++it) {
    ASSERT_NE(it, tree.end());
    EXPECT_EQ(it.key(), ref->first);
    tree_entries.emplace(it.key(), it.value());
  }
  EXPECT_EQ(it, tree.end());
  for (const auto& [key, value] : reference) {
    bool found = false;
    for (auto [lo, hi] = tree_entries.equal_range(key); lo != hi; ++lo) {
      if (lo->second == value) {
        tree_entries.erase(lo);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "missing (" << key << ", " << value << ")";
  }
  EXPECT_TRUE(tree_entries.empty());

  // Drain everything through Erase to exercise deep merge chains.
  while (!reference.empty()) {
    auto pick = std::next(reference.begin(),
                          static_cast<long>(rng.NextBounded(reference.size())));
    ASSERT_TRUE(tree.Erase(pick->first, [&](const int& v) { return v == pick->second; }));
    reference.erase(pick);
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.ValidateInvariants());
}

INSTANTIATE_TEST_SUITE_P(Fanouts, BPlusTreeEraseDifferential, ::testing::Values(4, 8, 64));

TEST(BPlusTree, LargeScaleStaysValid) {
  BPlusTree<std::size_t> t(64);
  Xoshiro256 rng(9);
  for (std::size_t i = 0; i < 100000; ++i) t.Insert(rng.Uniform(0.0, 1.0), i);
  EXPECT_EQ(t.size(), 100000u);
  EXPECT_TRUE(t.ValidateInvariants());
  // Count via leaf chain.
  std::size_t count = 0;
  for (auto it = t.begin(); it != t.end(); ++it) ++count;
  EXPECT_EQ(count, 100000u);
}

}  // namespace
}  // namespace affinity::btree
