// Tests for affine transformations and measure propagation (core/affine.h) —
// Eqs. (4)–(8) of the paper, including the corrected dot-product rule.

#include "core/affine.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "ts/stats.h"

namespace affinity::core {
namespace {

la::Matrix RandomPairMatrix(std::size_t m, Xoshiro256* rng) {
  la::Matrix x(m, 2);
  for (std::size_t j = 0; j < 2; ++j) {
    for (std::size_t i = 0; i < m; ++i) x(i, j) = rng->Uniform(-3.0, 3.0);
  }
  return x;
}

AffineTransform RandomTransform(Xoshiro256* rng) {
  AffineTransform t;
  t.a11 = rng->Uniform(-2, 2);
  t.a21 = rng->Uniform(-2, 2);
  t.a12 = rng->Uniform(-2, 2);
  t.a22 = rng->Uniform(-2, 2);
  t.b1 = rng->Uniform(-5, 5);
  t.b2 = rng->Uniform(-5, 5);
  return t;
}

TEST(AffineTransform, DefaultIsIdentity) {
  const AffineTransform t;
  la::Matrix x = la::Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_NEAR(ApplyAffine(x, t).MaxAbsDiff(x), 0.0, 0.0);
}

TEST(AffineTransform, AccessorsMatchFields) {
  AffineTransform t;
  t.a11 = 1;
  t.a21 = 2;
  t.a12 = 3;
  t.a22 = 4;
  t.b1 = 5;
  t.b2 = 6;
  const la::Matrix a = t.AMatrix();
  EXPECT_EQ(a(0, 0), 1.0);
  EXPECT_EQ(a(1, 0), 2.0);
  EXPECT_EQ(a(0, 1), 3.0);
  EXPECT_EQ(a(1, 1), 4.0);
  const la::Vector b = t.BVector();
  EXPECT_EQ(b[0], 5.0);
  EXPECT_EQ(b[1], 6.0);
}

TEST(ApplyAffineFn, MatchesDefinition) {
  // Y = X·A + 1·bᵀ computed elementwise.
  Xoshiro256 rng(1);
  const la::Matrix x = RandomPairMatrix(7, &rng);
  const AffineTransform t = RandomTransform(&rng);
  const la::Matrix y = ApplyAffine(x, t);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_NEAR(y(i, 0), t.a11 * x(i, 0) + t.a21 * x(i, 1) + t.b1, 1e-12);
    EXPECT_NEAR(y(i, 1), t.a12 * x(i, 0) + t.a22 * x(i, 1) + t.b2, 1e-12);
  }
}

TEST(ComputePairMatrixMeasuresFn, MatchesKernels) {
  Xoshiro256 rng(2);
  const la::Matrix x = RandomPairMatrix(50, &rng);
  const PairMatrixMeasures pm = ComputePairMatrixMeasures(x.ColData(0), x.ColData(1), 50);
  EXPECT_NEAR(pm.mean[0], ts::stats::Mean(x.ColData(0), 50), 1e-12);
  EXPECT_NEAR(pm.median[1], ts::stats::Median(x.ColData(1), 50), 1e-12);
  EXPECT_NEAR(pm.cov11, ts::stats::Variance(x.ColData(0), 50), 1e-10);
  EXPECT_NEAR(pm.cov12, ts::stats::Covariance(x.ColData(0), x.ColData(1), 50), 1e-10);
  EXPECT_NEAR(pm.cov22, ts::stats::Variance(x.ColData(1), 50), 1e-10);
  EXPECT_NEAR(pm.dot12, ts::stats::DotProduct(x.ColData(0), x.ColData(1), 50), 1e-10);
  EXPECT_NEAR(pm.h1, ts::stats::Sum(x.ColData(0), 50), 1e-10);
  EXPECT_EQ(pm.m, 50u);
}

TEST(FitAffineFn, RecoversExactTransform) {
  Xoshiro256 rng(3);
  const la::Matrix x = RandomPairMatrix(30, &rng);
  const AffineTransform truth = RandomTransform(&rng);
  const la::Matrix y = ApplyAffine(x, truth);
  auto fitted = FitAffine(x, y);
  ASSERT_TRUE(fitted.ok());
  EXPECT_NEAR(fitted->a11, truth.a11, 1e-9);
  EXPECT_NEAR(fitted->a21, truth.a21, 1e-9);
  EXPECT_NEAR(fitted->a12, truth.a12, 1e-9);
  EXPECT_NEAR(fitted->a22, truth.a22, 1e-9);
  EXPECT_NEAR(fitted->b1, truth.b1, 1e-9);
  EXPECT_NEAR(fitted->b2, truth.b2, 1e-9);
}

TEST(FitAffineFn, LeastSquaresResidualOrthogonality) {
  Xoshiro256 rng(4);
  const la::Matrix x = RandomPairMatrix(40, &rng);
  const la::Matrix y = RandomPairMatrix(40, &rng);
  auto fitted = FitAffine(x, y);
  ASSERT_TRUE(fitted.ok());
  const la::Matrix residual = y - ApplyAffine(x, *fitted);
  // Residual columns must be orthogonal to x's columns and to 1.
  for (std::size_t rc = 0; rc < 2; ++rc) {
    const la::Vector r = residual.Col(rc);
    EXPECT_NEAR(std::fabs(r.Dot(x.Col(0))), 0.0, 1e-8);
    EXPECT_NEAR(std::fabs(r.Dot(x.Col(1))), 0.0, 1e-8);
    EXPECT_NEAR(std::fabs(r.Sum()), 0.0, 1e-8);
  }
}

TEST(FitAffineFn, ValidatesInput) {
  la::Matrix bad(5, 3);
  la::Matrix good(5, 2);
  EXPECT_FALSE(FitAffine(bad, good).ok());
  EXPECT_FALSE(FitAffine(good, bad).ok());
  la::Matrix other(6, 2);
  EXPECT_FALSE(FitAffine(good, other).ok());
  la::Matrix tiny(2, 2);
  EXPECT_FALSE(FitAffine(tiny, tiny).ok());
}

TEST(FitAffineFn, CollinearSourceFails) {
  la::Matrix x(10, 2);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = static_cast<double>(i);
    x(i, 1) = 2.0 * static_cast<double>(i);  // second column collinear with first
  }
  // [x, 1] still has rank 3? cols: i, 2i, 1 → rank 2. Singular.
  EXPECT_FALSE(FitAffine(x, x).ok());
}

// --- Propagation rules (Eqs. 5–8) vs direct computation on Y -------------

class PropagationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Xoshiro256 rng(5);
    x_ = RandomPairMatrix(64, &rng);
    t_ = RandomTransform(&rng);
    y_ = ApplyAffine(x_, t_);
    pm_ = ComputePairMatrixMeasures(x_.ColData(0), x_.ColData(1), 64);
  }

  la::Matrix x_, y_;
  AffineTransform t_;
  PairMatrixMeasures pm_;
};

TEST_F(PropagationTest, MeanPropagatesExactly) {
  // Eq. (5): L(Y)ᵀ = L(X)ᵀ A + bᵀ, exact for the mean.
  for (int col = 0; col < 2; ++col) {
    const double direct = ts::stats::Mean(y_.ColData(static_cast<std::size_t>(col)), 64);
    const double propagated = PropagateLocation(pm_.mean[0], pm_.mean[1], t_, col);
    EXPECT_NEAR(propagated, direct, 1e-10);
  }
}

TEST_F(PropagationTest, CovariancePropagatesExactly) {
  // Eq. (6): Σ12(Y) = a1ᵀ Σ(X) a2, exact when Y is an exact affine image.
  const double direct = ts::stats::Covariance(y_.ColData(0), y_.ColData(1), 64);
  EXPECT_NEAR(PropagateCovariance(pm_, t_), direct, 1e-9);
}

TEST_F(PropagationTest, VariancePropagatesExactly) {
  for (int col = 0; col < 2; ++col) {
    const double direct = ts::stats::Variance(y_.ColData(static_cast<std::size_t>(col)), 64);
    EXPECT_NEAR(PropagateVariance(pm_, t_, col), direct, 1e-9);
  }
}

TEST_F(PropagationTest, DotProductPropagatesExactly) {
  // Eq. (7), corrected form (DESIGN.md): includes both cross terms and m·b1·b2.
  const double direct = ts::stats::DotProduct(y_.ColData(0), y_.ColData(1), 64);
  EXPECT_NEAR(PropagateDotProduct(pm_, t_), direct, 1e-8);
}

TEST_F(PropagationTest, SquaredNormPropagatesExactly) {
  for (int col = 0; col < 2; ++col) {
    const double* yc = y_.ColData(static_cast<std::size_t>(col));
    const double direct = ts::stats::DotProduct(yc, yc, 64);
    EXPECT_NEAR(PropagateSquaredNorm(pm_, t_, col), direct, 1e-8);
  }
}

TEST_F(PropagationTest, PaperTable2FormWithCommonColumn) {
  // With a1 = (1,0)ᵀ, b1 = 0 (the SYMEX structure), the propagated
  // covariance collapses to the Table 2 key form α·β.
  AffineTransform s = t_;
  s.a11 = 1.0;
  s.a21 = 0.0;
  s.b1 = 0.0;
  const double propagated = PropagateCovariance(pm_, s);
  const double alpha_beta = pm_.cov11 * s.a12 + pm_.cov12 * s.a22;  // α=(Σ11,Σ12,0)·β
  EXPECT_NEAR(propagated, alpha_beta, 1e-10);

  const double dot_prop = PropagateDotProduct(pm_, s);
  const double dot_alpha_beta = pm_.dot11 * s.a12 + pm_.dot12 * s.a22 + pm_.h1 * s.b2;
  EXPECT_NEAR(dot_prop, dot_alpha_beta, 1e-10);
}

// Propagation across m sweeps (property-style).
class PropagationSweep : public ::testing::TestWithParam<int> {};

TEST_P(PropagationSweep, AllRulesExactForExactImages) {
  const auto m = static_cast<std::size_t>(GetParam());
  Xoshiro256 rng(50 + m);
  const la::Matrix x = RandomPairMatrix(m, &rng);
  const AffineTransform t = RandomTransform(&rng);
  const la::Matrix y = ApplyAffine(x, t);
  const PairMatrixMeasures pm = ComputePairMatrixMeasures(x.ColData(0), x.ColData(1), m);
  const double scale = 1.0 + static_cast<double>(m);
  EXPECT_NEAR(PropagateCovariance(pm, t),
              ts::stats::Covariance(y.ColData(0), y.ColData(1), m), 1e-10 * scale);
  EXPECT_NEAR(PropagateDotProduct(pm, t),
              ts::stats::DotProduct(y.ColData(0), y.ColData(1), m), 1e-9 * scale);
  EXPECT_NEAR(PropagateLocation(pm.mean[0], pm.mean[1], t, 0),
              ts::stats::Mean(y.ColData(0), m), 1e-11 * scale);
}

INSTANTIATE_TEST_SUITE_P(Lengths, PropagationSweep, ::testing::Values(3, 8, 32, 100, 500));

}  // namespace
}  // namespace affinity::core
