// Tests for the dirty-stream ingestion layer (ts/ingest.h, DESIGN.md
// §12): grid snapping, duplicate/late/non-finite handling, the forward-
// fill horizon and explicit-gap semantics of the aligner, and the
// QualityTracker's structural stats and composite score.

#include "ts/ingest.h"

#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

namespace affinity::ts {
namespace {

TEST(IngestOptions, Validation) {
  EXPECT_TRUE(ValidateIngestOptions({}).ok());
  IngestOptions bad_tick;
  bad_tick.tick = 0.0;
  EXPECT_FALSE(ValidateIngestOptions(bad_tick).ok());
  bad_tick.tick = -1.0;
  EXPECT_FALSE(ValidateIngestOptions(bad_tick).ok());
  IngestOptions bad_origin;
  bad_origin.origin = std::nan("");
  EXPECT_FALSE(ValidateIngestOptions(bad_origin).ok());
}

TEST(StreamAligner, SnapsObservationsOntoTheGrid) {
  IngestOptions opts;
  opts.origin = 100.0;
  opts.tick = 10.0;
  StreamAligner aligner(2, opts);
  // Slightly-skewed timestamps snap to the nearest slot and are counted.
  ASSERT_TRUE(aligner.Push(0, 100.4, 1.0).ok());   // slot 0
  ASSERT_TRUE(aligner.Push(1, 109.6, 2.0).ok());   // slot 1
  ASSERT_TRUE(aligner.Push(0, 110.0, 3.0).ok());   // slot 1, exactly on grid
  EXPECT_EQ(aligner.stats().snapped, 2u);

  std::vector<AlignedRow> rows;
  EXPECT_EQ(aligner.Flush(&rows), 2u);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].slot, 0);
  EXPECT_EQ(rows[0].values[0], 1.0);
  EXPECT_EQ(rows[0].valid[0], 1);
  EXPECT_EQ(rows[0].filled[0], 0);
  EXPECT_EQ(rows[1].values[0], 3.0);
  EXPECT_EQ(rows[1].values[1], 2.0);

  // Series 1 had nothing at slot 0: no prior observation → explicit gap
  // with a finite placeholder value.
  EXPECT_EQ(rows[0].valid[1], 0);
  EXPECT_EQ(rows[0].values[1], 0.0);
  EXPECT_TRUE(std::isfinite(rows[0].values[1]));
}

TEST(StreamAligner, RejectsBadPushes) {
  StreamAligner aligner(2, {});
  EXPECT_FALSE(aligner.Push(5, 0.0, 1.0).ok());                // unknown series
  EXPECT_FALSE(aligner.Push(0, std::nan(""), 1.0).ok());       // NaN timestamp
  EXPECT_FALSE(aligner.Push(0, -3.0, 1.0).ok());               // before the origin
}

TEST(StreamAligner, NonFiniteValuesBecomeGapsNotErrors) {
  StreamAligner aligner(1, {});
  ASSERT_TRUE(aligner.Push(0, 0.0, std::nan("")).ok());
  ASSERT_TRUE(aligner.Push(0, 1.0, INFINITY).ok());
  ASSERT_TRUE(aligner.Push(0, 2.0, 7.0).ok());
  EXPECT_EQ(aligner.stats().nonfinite, 2u);

  std::vector<AlignedRow> rows;
  aligner.Flush(&rows);
  ASSERT_EQ(rows.size(), 3u);
  // Slots 0 and 1 never saw a finite sample and nothing precedes them:
  // explicit gaps with a finite placeholder.
  EXPECT_EQ(rows[0].valid[0], 0);
  EXPECT_EQ(rows[1].valid[0], 0);
  EXPECT_TRUE(std::isfinite(rows[0].values[0]));
  EXPECT_EQ(rows[2].valid[0], 1);
  EXPECT_EQ(rows[2].values[0], 7.0);
}

TEST(StreamAligner, DuplicatesLatestWinsAndLateDropped) {
  StreamAligner aligner(1, {});
  ASSERT_TRUE(aligner.Push(0, 0.0, 1.0).ok());
  ASSERT_TRUE(aligner.Push(0, 0.0, 2.0).ok());  // duplicate slot, latest wins
  EXPECT_EQ(aligner.stats().duplicates, 1u);

  std::vector<AlignedRow> rows;
  EXPECT_EQ(aligner.EmitUpTo(1.0, &rows), 1u);
  EXPECT_EQ(rows[0].values[0], 2.0);
  EXPECT_EQ(aligner.watermark(), 1);

  // Slot 0 is behind the watermark now: a push there is late and dropped.
  ASSERT_TRUE(aligner.Push(0, 0.0, 99.0).ok());
  EXPECT_EQ(aligner.stats().late, 1u);
}

TEST(StreamAligner, OutOfOrderPushesAboveTheWatermarkLand) {
  StreamAligner aligner(1, {});
  ASSERT_TRUE(aligner.Push(0, 3.0, 30.0).ok());
  ASSERT_TRUE(aligner.Push(0, 1.0, 10.0).ok());  // earlier slot, still pending
  std::vector<AlignedRow> rows;
  aligner.Flush(&rows);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[1].values[0], 10.0);
  EXPECT_EQ(rows[1].valid[0], 1);
  EXPECT_EQ(rows[3].values[0], 30.0);
}

TEST(StreamAligner, ForwardFillsWithinHorizonThenGaps) {
  IngestOptions opts;
  opts.max_fill = 2;
  StreamAligner aligner(1, opts);
  ASSERT_TRUE(aligner.Push(0, 0.0, 5.0).ok());
  ASSERT_TRUE(aligner.Push(0, 6.0, 9.0).ok());

  std::vector<AlignedRow> rows;
  aligner.Flush(&rows);
  ASSERT_EQ(rows.size(), 7u);
  // Slot 0: observed. Slots 1-2: within the fill horizon → filled with
  // the last value. Slots 3-5: beyond → gaps (value still the last known
  // sample so dense kernels stay finite). Slot 6: observed again.
  EXPECT_EQ(rows[0].valid[0], 1);
  EXPECT_EQ(rows[0].filled[0], 0);
  for (int i = 1; i <= 2; ++i) {
    EXPECT_EQ(rows[i].valid[0], 1) << i;
    EXPECT_EQ(rows[i].filled[0], 1) << i;
    EXPECT_EQ(rows[i].values[0], 5.0) << i;
  }
  for (int i = 3; i <= 5; ++i) {
    EXPECT_EQ(rows[i].valid[0], 0) << i;
    EXPECT_EQ(rows[i].values[0], 5.0) << i;
  }
  EXPECT_EQ(rows[6].valid[0], 1);
  EXPECT_EQ(rows[6].values[0], 9.0);
  EXPECT_EQ(aligner.stats().fills, 2u);
  EXPECT_EQ(aligner.stats().gaps, 3u);
  EXPECT_EQ(aligner.stats().rows, 7u);
}

TEST(StreamAligner, EmitUpToIsExclusiveOfTheTimestampSlot) {
  StreamAligner aligner(1, {});
  ASSERT_TRUE(aligner.Push(0, 0.0, 1.0).ok());
  ASSERT_TRUE(aligner.Push(0, 5.0, 6.0).ok());
  std::vector<AlignedRow> rows;
  EXPECT_EQ(aligner.EmitUpTo(3.0, &rows), 3u);  // slots 0, 1, 2
  EXPECT_EQ(aligner.watermark(), 3);
  EXPECT_EQ(aligner.EmitUpTo(3.0, &rows), 0u);  // idempotent
  EXPECT_EQ(aligner.Flush(&rows), 3u);  // slots 3, 4, 5
}

TEST(QualityTracker, CleanWindowScoresPerfect) {
  QualityTracker tracker(2, 8);
  const double rows[4][2] = {{1, 5}, {2, 6}, {3, 7}, {4, 8}};
  for (const auto& r : rows) tracker.Push(r, nullptr, nullptr);
  const SeriesQuality q = tracker.Quality(0);
  EXPECT_EQ(q.length, 4u);
  EXPECT_EQ(q.observed, 4u);
  EXPECT_EQ(q.gaps, 0u);
  EXPECT_EQ(q.filled, 0u);
  EXPECT_EQ(q.longest_plateau, 1u);
  EXPECT_EQ(q.score, 1.0);
  EXPECT_EQ(tracker.Scores()[1], 1.0);
}

TEST(QualityTracker, CountsGapsFillsPlateausAndIntermittency) {
  QualityTracker tracker(1, 16);
  // observed 3, gap, gap, filled 3, observed 0, observed 4
  const double vals[] = {3, 3, 3, 3, 0, 4};
  const std::uint8_t valid[] = {1, 0, 0, 1, 1, 1};
  const std::uint8_t filled[] = {0, 0, 0, 1, 0, 0};
  for (std::size_t i = 0; i < 6; ++i) tracker.Push(&vals[i], &valid[i], &filled[i]);

  const SeriesQuality q = tracker.Quality(0);
  EXPECT_EQ(q.length, 6u);
  EXPECT_EQ(q.observed, 3u);
  EXPECT_EQ(q.filled, 1u);
  EXPECT_EQ(q.gaps, 2u);
  EXPECT_EQ(q.gap_runs, 1u);
  EXPECT_EQ(q.longest_gap, 2u);
  // Rows 0-3 all carry the value 3 (gap rows carry the last value).
  EXPECT_EQ(q.longest_plateau, 4u);
  EXPECT_DOUBLE_EQ(q.gap_ratio, 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(q.fill_ratio, 1.0 / 6.0);
  // One zero among three observed rows.
  EXPECT_DOUBLE_EQ(q.intermittency, 1.0 / 3.0);
  EXPECT_EQ(q.score, CompositeQualityScore(q));
  EXPECT_GT(q.score, 0.0);
  EXPECT_LT(q.score, 1.0);
}

TEST(QualityTracker, RingEvictsOldRowsAtTheWindow) {
  QualityTracker tracker(1, 4);
  const std::uint8_t invalid = 0;
  const std::uint8_t ok = 1;
  double v = 1.0;
  tracker.Push(&v, &invalid, nullptr);  // will be evicted
  for (int i = 0; i < 4; ++i) {
    v = 2.0 + i;
    tracker.Push(&v, &ok, nullptr);
  }
  const SeriesQuality q = tracker.Quality(0);
  EXPECT_EQ(q.length, 4u);
  EXPECT_EQ(q.gaps, 0u);  // the gap row fell out of the window
  EXPECT_EQ(q.observed, 4u);
  EXPECT_EQ(q.score, 1.0);
}

TEST(CompositeQualityScoreFormula, MatchesTheDocumentedFormula) {
  SeriesQuality q;
  EXPECT_EQ(CompositeQualityScore(q), 1.0);  // empty window

  q.length = 10;
  q.observed = 6;
  q.filled = 2;
  q.gaps = 2;
  q.longest_plateau = 4;
  q.intermittency = 0.5;
  const double completeness = 0.8;
  const double observed_frac = 0.6;
  const double base = 0.5 * (completeness + observed_frac);
  // plateau_ratio counts only the excess run: (4 - 1) / 10.
  const double want = base * (1.0 - 0.5 * 0.3) * (1.0 - 0.25 * 0.5);
  EXPECT_DOUBLE_EQ(CompositeQualityScore(q), want);

  // All-gap window clamps to 0.
  SeriesQuality dead;
  dead.length = 10;
  dead.gaps = 10;
  dead.longest_plateau = 10;
  EXPECT_EQ(CompositeQualityScore(dead), 0.0);
}

}  // namespace
}  // namespace affinity::ts
