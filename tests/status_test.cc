// Tests for affinity::Status and StatusOr (common/status.h).

#include "common/status.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace affinity {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoryHelpersSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("oor").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("nf").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("ae").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("fp").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("in").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("un").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("io").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(Status, ErrorsAreNotOk) {
  EXPECT_FALSE(Status::Internal("x").ok());
  EXPECT_FALSE(Status::NotFound("x").ok());
}

TEST(Status, ToStringIncludesCodeName) {
  const Status s = Status::InvalidArgument("k must be positive");
  EXPECT_EQ(s.ToString(), "InvalidArgument: k must be positive");
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Internal("a"));
  EXPECT_EQ(Status(), Status::OK());
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOr, ValueOrReturnsValueWhenOk) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v.value_or("fallback"), "hello");
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  std::vector<int> taken = std::move(v).value();
  EXPECT_EQ(taken.size(), 3u);
}

TEST(StatusOr, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

namespace helpers {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  AFFINITY_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  AFFINITY_ASSIGN_OR_RETURN(int h, Half(x));
  AFFINITY_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

}  // namespace helpers

TEST(StatusMacros, ReturnIfErrorPropagates) {
  EXPECT_TRUE(helpers::Chain(1).ok());
  EXPECT_FALSE(helpers::Chain(-1).ok());
  EXPECT_EQ(helpers::Chain(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacros, AssignOrReturnChains) {
  StatusOr<int> q = helpers::Quarter(8);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, 2);
  EXPECT_FALSE(helpers::Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(helpers::Quarter(7).ok());
}

}  // namespace
}  // namespace affinity
