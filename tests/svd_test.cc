// Tests for the SVD helpers (la/svd.h).

#include "la/svd.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace affinity::la {
namespace {

Matrix RandomMatrix(std::size_t r, std::size_t c, Xoshiro256* rng) {
  Matrix m(r, c);
  for (std::size_t j = 0; j < c; ++j) {
    for (std::size_t i = 0; i < r; ++i) m(i, j) = rng->Uniform(-2.0, 2.0);
  }
  return m;
}

TEST(SingularValues, DiagonalMatrix) {
  Matrix a = Matrix::FromRows({{3, 0}, {0, -4}, {0, 0}});
  auto sv = SingularValues(a);
  ASSERT_TRUE(sv.ok());
  ASSERT_EQ(sv->size(), 2u);
  EXPECT_NEAR((*sv)[0], 4.0, 1e-12);
  EXPECT_NEAR((*sv)[1], 3.0, 1e-12);
}

TEST(SingularValues, RankOneMatrixHasOneNonZero) {
  // Outer product u vᵀ has exactly one non-zero singular value ‖u‖‖v‖.
  Matrix a(4, 3);
  const double u[4] = {1, 2, 3, 4};
  const double v[3] = {1, -1, 2};
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = u[i] * v[j];
  }
  auto sv = SingularValues(a);
  ASSERT_TRUE(sv.ok());
  const double expected = std::sqrt(30.0) * std::sqrt(6.0);
  EXPECT_NEAR((*sv)[0], expected, 1e-10);
  EXPECT_NEAR((*sv)[1], 0.0, 1e-8);
  EXPECT_NEAR((*sv)[2], 0.0, 1e-8);
}

TEST(SingularValues, FrobeniusIdentity) {
  // ‖A‖_F² = Σ σᵢ².
  Xoshiro256 rng(1);
  const Matrix a = RandomMatrix(7, 4, &rng);
  auto sv = SingularValues(a);
  ASSERT_TRUE(sv.ok());
  double sum = 0;
  for (double s : *sv) sum += s * s;
  EXPECT_NEAR(sum, a.FrobeniusNorm() * a.FrobeniusNorm(), 1e-9);
}

TEST(SingularValues, WideMatrixUsesThinSide) {
  Xoshiro256 rng(2);
  const Matrix a = RandomMatrix(3, 9, &rng);
  auto sv = SingularValues(a);
  ASSERT_TRUE(sv.ok());
  EXPECT_EQ(sv->size(), 3u);
  auto svt = SingularValues(a.Transpose());
  ASSERT_TRUE(svt.ok());
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR((*sv)[i], (*svt)[i], 1e-9);
}

TEST(SingularValues, RejectsEmpty) { EXPECT_FALSE(SingularValues(Matrix()).ok()); }

TEST(PowerIteration, MatchesLargestSingularValue) {
  Xoshiro256 rng(3);
  const Matrix a = RandomMatrix(20, 6, &rng);
  auto top = PowerIterationTopSingular(a, Vector());
  auto sv = SingularValues(a);
  ASSERT_TRUE(top.ok());
  ASSERT_TRUE(sv.ok());
  EXPECT_NEAR(top->sigma, (*sv)[0], 1e-8);
}

TEST(PowerIteration, SingularVectorsAreUnitNorm) {
  Xoshiro256 rng(4);
  const Matrix a = RandomMatrix(15, 4, &rng);
  auto top = PowerIterationTopSingular(a, Vector());
  ASSERT_TRUE(top.ok());
  EXPECT_NEAR(top->left.Norm(), 1.0, 1e-10);
  EXPECT_NEAR(top->right.Norm(), 1.0, 1e-10);
}

TEST(PowerIteration, SatisfiesSingularTripleRelations) {
  Xoshiro256 rng(5);
  const Matrix a = RandomMatrix(12, 5, &rng);
  auto top = PowerIterationTopSingular(a, Vector());
  ASSERT_TRUE(top.ok());
  // A v ≈ σ u and Aᵀ u ≈ σ v.
  const Vector av = a.Multiply(top->right);
  const Vector su = top->left * top->sigma;
  EXPECT_NEAR(av.MaxAbsDiff(su), 0.0, 1e-7);
  const Vector atu = a.TransposeMultiply(top->left);
  const Vector sv = top->right * top->sigma;
  EXPECT_NEAR(atu.MaxAbsDiff(sv), 0.0, 1e-7);
}

TEST(PowerIteration, RankOneRecoversDirection) {
  // For A = u vᵀ the dominant left singular vector is ±u/‖u‖.
  Matrix a(4, 2);
  const double u[4] = {2, 0, 0, 0};
  const double v[2] = {1, 1};
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 2; ++j) a(i, j) = u[i] * v[j];
  }
  auto top = PowerIterationTopSingular(a, Vector());
  ASSERT_TRUE(top.ok());
  EXPECT_NEAR(std::fabs(top->left[0]), 1.0, 1e-10);
  EXPECT_NEAR(top->left[1], 0.0, 1e-10);
}

TEST(PowerIteration, HonorsSeedVector) {
  Xoshiro256 rng(6);
  const Matrix a = RandomMatrix(10, 3, &rng);
  Vector seed{1, 0, 0};
  auto top = PowerIterationTopSingular(a, seed);
  ASSERT_TRUE(top.ok());
  auto sv = SingularValues(a);
  EXPECT_NEAR(top->sigma, (*sv)[0], 1e-7);
}

TEST(PowerIteration, RejectsBadSeed) {
  Matrix a(3, 2);
  a(0, 0) = 1.0;
  EXPECT_FALSE(PowerIterationTopSingular(a, Vector{1, 2, 3}).ok());  // wrong length
  EXPECT_FALSE(PowerIterationTopSingular(a, Vector{0, 0}).ok());     // zero seed
}

TEST(PowerIteration, ZeroMatrixReturnsZeroSigma) {
  Matrix a(5, 2);
  auto top = PowerIterationTopSingular(a, Vector());
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->sigma, 0.0);
}

// Property sweep: power iteration agrees with Gram-based singular values
// across shapes.
class PowerVsGram : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(PowerVsGram, Agree) {
  const auto [r, c] = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(r * 100 + c));
  const Matrix a = RandomMatrix(static_cast<std::size_t>(r), static_cast<std::size_t>(c), &rng);
  auto top = PowerIterationTopSingular(a, Vector(), 500, 1e-14);
  auto sv = SingularValues(a);
  ASSERT_TRUE(top.ok());
  ASSERT_TRUE(sv.ok());
  EXPECT_NEAR(top->sigma, (*sv)[0], 1e-6 * (1.0 + (*sv)[0]));
}

INSTANTIATE_TEST_SUITE_P(Shapes, PowerVsGram,
                         ::testing::Values(std::pair{4, 2}, std::pair{10, 3}, std::pair{50, 5},
                                           std::pair{100, 2}, std::pair{8, 8}));

}  // namespace
}  // namespace affinity::la
