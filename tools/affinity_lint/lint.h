#ifndef AFFINITY_TOOLS_AFFINITY_LINT_LINT_H_
#define AFFINITY_TOOLS_AFFINITY_LINT_LINT_H_

/// \file lint.h
/// affinity_lint — project-specific determinism lint (DESIGN.md §13).
///
/// The engine's core contract is bitwise-identical answers at any thread
/// and shard count. The compiler cannot check most of what that rests
/// on, so this lint enforces the project invariants *textually* over the
/// source list, with a small curated rule set:
///
///  * `fp-accumulate` — no floating-point accumulation outside the
///    canonical blocked kernels (`src/core/kernels*`): flags
///    `std::accumulate`, `std::reduce`, and manual `+=` reduction loops
///    whose target is a bare `double` scalar. Accumulation order defines
///    bits; all summation must flow through `core::kernels` chains.
///    Element-wise updates (`slot[i] += x`, `entry.dot += x`) and
///    straight-line rolling updates outside loops are allowed — their
///    order is defined by the caller, not by a reduction.
///  * `fp-contract` — no `std::fma` (or FMA intrinsics), no
///    `-ffast-math`, no `#pragma STDC FP_CONTRACT`, anywhere. The chains
///    are separately-rounded mul-then-add by definition (DESIGN.md §10);
///    contraction changes bits per ISA.
///  * `unordered-iter` — no iteration (range-for / iterator loops) over
///    `std::unordered_*` containers: iteration order is
///    implementation-defined and must never feed result ordering.
///    Collect-then-sort, or scatter into key-indexed slots instead.
///  * `randomness` — no random sources (`<random>` engines,
///    `rand`/`srand`, `std::random_device`) outside `src/common/random*`.
///    All randomness must be seeded and owned by `common/random` so runs
///    replay.
///  * `hot-alloc` — no heap-allocation keywords (`new`,
///    `make_unique`/`make_shared`, the `malloc` family, owning-container
///    locals, `resize`/`reserve`) inside function bodies marked
///    `AFFINITY_HOT` (the allocation-free append path, DESIGN.md §13).
///    Amortized `push_back`/`emplace_back` into pre-reserved storage is
///    allowed; the allocs_per_append bench counter owns that contract.
///
/// Suppressions: `// affinity-lint: allow(<rule>): <justification>` on
/// the offending line (or alone on the line above) suppresses one site;
/// `// affinity-lint: allow-file(<rule>): <justification>` near the top
/// of a file suppresses the rule file-wide. The justification is
/// mandatory — a suppression without one is itself reported (rule
/// `bad-suppression`, never suppressible).

#include <cstddef>
#include <string>
#include <vector>

namespace affinity::lint {

/// One lint violation.
struct Finding {
  std::string file;
  std::size_t line = 0;  ///< 1-based
  std::string rule;
  std::string message;
};

/// Outcome of one lint pass.
struct LintResult {
  std::vector<Finding> findings;     ///< file order, then line order
  std::size_t files_scanned = 0;
  std::size_t suppressions_used = 0;  ///< allow() directives that matched a finding
};

/// A source file already loaded into memory (the testable seam).
struct SourceFile {
  std::string path;     ///< repo-relative; rule exemptions match on this
  std::string content;
};

/// Lints in-memory sources. `paths` in `SourceFile::path` drive the
/// path-scoped exemptions (`src/core/kernels*`, `src/common/random*`),
/// so fixtures can impersonate any location.
LintResult LintSources(const std::vector<SourceFile>& sources);

/// Loads each path from disk and lints it. Paths are normalized to use
/// '/' and made relative to `root` when they live under it. Files that
/// cannot be read are reported as findings (rule `io`).
LintResult LintPaths(const std::vector<std::string>& paths, const std::string& root);

/// The default scan list for `root`: every *.h / *.cc under root/src and
/// root/tools, plus root/CMakeLists.txt — sorted, so output order is
/// stable across filesystems.
std::vector<std::string> DefaultSourceList(const std::string& root);

/// "file:line: [rule] message" per finding plus a summary line.
std::string FormatReport(const LintResult& result);

}  // namespace affinity::lint

#endif  // AFFINITY_TOOLS_AFFINITY_LINT_LINT_H_
