/// \file main.cc
/// affinity_lint CLI (DESIGN.md §13).
///
///   affinity_lint --root <repo>            lint the default source list
///                                          (src/**, tools/**, CMakeLists.txt)
///   affinity_lint [--root <repo>] <files>  lint an explicit file list
///   affinity_lint --list-rules             print the curated rule set
///
/// Exit status: 0 when clean, 1 when any finding survived suppressions,
/// 2 on usage errors. Findings print as `file:line: [rule] message` so
/// editors and CI annotate them directly.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "affinity_lint/lint.h"

namespace {

constexpr char kRuleDoc[] =
    "affinity_lint rules (DESIGN.md §13):\n"
    "  fp-accumulate   no std::accumulate/std::reduce or manual `+=` reduction\n"
    "                  loops over double outside src/core/kernels* — accumulation\n"
    "                  order defines bits\n"
    "  fp-contract     no std::fma / FMA intrinsics / -ffast-math /\n"
    "                  `#pragma STDC FP_CONTRACT` anywhere\n"
    "  unordered-iter  no iteration over std::unordered_* containers —\n"
    "                  iteration order must never feed result ordering\n"
    "  randomness      no random sources outside src/common/random*\n"
    "  hot-alloc       no heap-allocation keywords inside AFFINITY_HOT bodies\n"
    "  bad-suppression an `affinity-lint: allow(...)` without a justification\n"
    "\n"
    "Suppress one site:   // affinity-lint: allow(<rule>): <justification>\n"
    "Suppress file-wide:  // affinity-lint: allow-file(<rule>): <justification>\n";

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-rules") == 0) {
      std::fputs(kRuleDoc, stdout);
      return 0;
    }
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
      continue;
    }
    if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "affinity_lint: unknown flag '%s'\n", argv[i]);
      return 2;
    }
    files.emplace_back(argv[i]);
  }
  if (files.empty()) files = affinity::lint::DefaultSourceList(root);
  if (files.empty()) {
    std::fprintf(stderr, "affinity_lint: no sources found under '%s'\n", root.c_str());
    return 2;
  }
  const affinity::lint::LintResult result = affinity::lint::LintPaths(files, root);
  std::fputs(affinity::lint::FormatReport(result).c_str(), stdout);
  return result.findings.empty() ? 0 : 1;
}
