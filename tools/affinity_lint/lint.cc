#include "affinity_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace affinity::lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `text` contains `word` with non-identifier characters (or
/// the text edge) on both sides, at or after `from`. Returns the match
/// position through `*pos`.
bool FindWord(const std::string& text, const std::string& word, std::size_t from,
              std::size_t* pos) {
  for (std::size_t at = text.find(word, from); at != std::string::npos;
       at = text.find(word, at + 1)) {
    const bool left_ok = at == 0 || !IsIdentChar(text[at - 1]);
    const std::size_t end = at + word.size();
    const bool right_ok = end >= text.size() || !IsIdentChar(text[end]);
    if (left_ok && right_ok) {
      *pos = at;
      return true;
    }
  }
  return false;
}

std::string Trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

// ---------------------------------------------------------------------------
// Stripping: comments and string/char literals are blanked (replaced by
// spaces, so columns and brace structure survive) while comment text is
// kept aside for directive parsing.
// ---------------------------------------------------------------------------

/// One `affinity-lint` directive found in a comment.
struct Directive {
  std::size_t line = 0;  ///< 1-based line the directive sits on
  std::vector<std::string> rules;
  bool file_scope = false;     ///< allow-file(...) vs allow(...)
  bool justified = false;      ///< non-empty justification after the colon
  bool parse_error = false;    ///< malformed directive text
};

struct Stripped {
  std::vector<std::string> code;      ///< per line, literals/comments blanked
  std::vector<std::string> comments;  ///< per line, comment text only
  std::vector<Directive> directives;
};

/// Parses every `affinity-lint` directive occurrence in `comment` (one
/// line's comment text).
void ParseDirectives(const std::string& comment, std::size_t line, std::vector<Directive>* out) {
  static const std::string kTag = "affinity-lint:";
  for (std::size_t at = comment.find(kTag); at != std::string::npos;
       at = comment.find(kTag, at + 1)) {
    Directive d;
    d.line = line;
    std::size_t p = at + kTag.size();
    while (p < comment.size() && comment[p] == ' ') ++p;
    if (comment.compare(p, 11, "allow-file(") == 0) {
      d.file_scope = true;
      p += 11;
    } else if (comment.compare(p, 6, "allow(") == 0) {
      p += 6;
    } else {
      d.parse_error = true;
      out->push_back(std::move(d));
      continue;
    }
    const std::size_t close = comment.find(')', p);
    if (close == std::string::npos) {
      d.parse_error = true;
      out->push_back(std::move(d));
      continue;
    }
    std::stringstream rules(comment.substr(p, close - p));
    std::string rule;
    while (std::getline(rules, rule, ',')) {
      rule = Trim(rule);
      if (!rule.empty()) d.rules.push_back(rule);
    }
    if (d.rules.empty()) d.parse_error = true;
    // Justification: a ':' after the rule list with non-space content.
    std::size_t q = close + 1;
    while (q < comment.size() && comment[q] == ' ') ++q;
    if (q < comment.size() && comment[q] == ':') {
      d.justified = !Trim(comment.substr(q + 1)).empty();
    }
    out->push_back(std::move(d));
  }
}

Stripped Strip(const std::string& content) {
  Stripped out;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::string code_line;
  std::string comment_line;
  std::size_t line = 1;

  auto flush_line = [&] {
    ParseDirectives(comment_line, line, &out.directives);
    out.code.push_back(code_line);
    out.comments.push_back(comment_line);
    code_line.clear();
    comment_line.clear();
    ++line;
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      // Unterminated string/char literals do not cross lines in practice.
      if (state == State::kString || state == State::kChar) state = State::kCode;
      flush_line();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kString;
          code_line += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          code_line += ' ';
        } else {
          code_line += c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        code_line += ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code_line += "  ";
          ++i;
        } else {
          comment_line += c;
          code_line += ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          code_line += ' ';
        } else {
          code_line += ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          code_line += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          code_line += ' ';
        } else {
          code_line += ' ';
        }
        break;
    }
  }
  flush_line();  // final (possibly empty) line
  return out;
}

// ---------------------------------------------------------------------------
// Symbol collection.
// ---------------------------------------------------------------------------

/// Reads the identifier starting at `p` (must be an identifier start).
std::string ReadIdent(const std::string& text, std::size_t p) {
  std::size_t e = p;
  while (e < text.size() && IsIdentChar(text[e])) ++e;
  return text.substr(p, e - p);
}

/// Collects names declared as `std::unordered_{map,set,multimap,multiset}
/// <...> name {;,=,{}` into `names`. Works on whole-file stripped text so
/// multi-line template arguments resolve.
void CollectUnorderedNames(const std::string& text, std::set<std::string>* names) {
  static const char* kKinds[] = {"unordered_map", "unordered_set", "unordered_multimap",
                                 "unordered_multiset"};
  for (const char* kind : kKinds) {
    std::size_t pos = 0;
    std::size_t at;
    while (FindWord(text, kind, pos, &at)) {
      pos = at + 1;
      std::size_t p = at + std::string(kind).size();
      while (p < text.size() && std::isspace(static_cast<unsigned char>(text[p])) != 0) ++p;
      if (p >= text.size() || text[p] != '<') continue;
      int depth = 0;
      while (p < text.size()) {
        if (text[p] == '<') ++depth;
        if (text[p] == '>') {
          --depth;
          if (depth == 0) break;
        }
        ++p;
      }
      if (p >= text.size()) continue;
      ++p;  // past '>'
      while (p < text.size() && std::isspace(static_cast<unsigned char>(text[p])) != 0) ++p;
      if (p >= text.size() || !IsIdentChar(text[p]) ||
          std::isdigit(static_cast<unsigned char>(text[p])) != 0) {
        continue;
      }
      const std::string name = ReadIdent(text, p);
      std::size_t q = p + name.size();
      while (q < text.size() && std::isspace(static_cast<unsigned char>(text[q])) != 0) ++q;
      if (q < text.size() && (text[q] == ';' || text[q] == '=' || text[q] == '{')) {
        names->insert(name);
      }
    }
  }
}

/// Collects identifiers declared with type `double` (locals, members,
/// parameters) — the candidate targets of a scalar FP reduction.
void CollectDoubleScalars(const std::vector<std::string>& code, std::set<std::string>* names) {
  for (const std::string& text : code) {
    std::size_t pos = 0;
    std::size_t at;
    while (FindWord(text, "double", pos, &at)) {
      pos = at + 6;
      std::size_t p = at + 6;
      while (p < text.size() && text[p] == ' ') ++p;
      if (p >= text.size() || !IsIdentChar(text[p]) ||
          std::isdigit(static_cast<unsigned char>(text[p])) != 0) {
        continue;
      }
      const std::string name = ReadIdent(text, p);
      std::size_t q = p + name.size();
      while (q < text.size() && text[q] == ' ') ++q;
      // `double Foo(` declares a function, `double* p` / `double& r` an
      // indirection — neither is a scalar accumulator target.
      if (q < text.size() && (text[q] == '(' || text[q] == '*' || text[q] == '&')) continue;
      names->insert(name);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule passes. Each emits raw findings; suppressions filter afterwards.
// ---------------------------------------------------------------------------

void AddFinding(std::vector<Finding>* out, const std::string& file, std::size_t line,
                const char* rule, std::string message) {
  Finding f;
  f.file = file;
  f.line = line;
  f.rule = rule;
  f.message = std::move(message);
  out->push_back(std::move(f));
}

bool PathContains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

/// `std::fma(`, `std::fmaf(`, `std::fmal(` — but not fmax/fmin.
bool HasStdFma(const std::string& text) {
  for (std::size_t at = text.find("std::fma"); at != std::string::npos;
       at = text.find("std::fma", at + 1)) {
    std::size_t p = at + 8;
    if (p < text.size() && (text[p] == 'f' || text[p] == 'l')) ++p;
    if (p < text.size() && text[p] == '(') return true;
  }
  return false;
}

void PassFpContract(const SourceFile& src, const Stripped& s, std::vector<Finding>* out) {
  static const char* kSubstrings[] = {"_mm_fmadd",   "_mm256_fmadd", "_mm512_fmadd",
                                      "_mm_fmsub",   "_mm256_fmsub", "vfmaq_",
                                      "vfmsq_",      "-ffast-math",  "ffp-contract=fast",
                                      "FP_CONTRACT"};
  for (std::size_t i = 0; i < s.code.size(); ++i) {
    const std::string& text = s.code[i];
    if (HasStdFma(text)) {
      AddFinding(out, src.path, i + 1, "fp-contract",
                 "std::fma fuses the canonical mul-then-add chains; bits change per ISA "
                 "(DESIGN.md §10)");
      continue;
    }
    for (const char* pat : kSubstrings) {
      if (text.find(pat) != std::string::npos) {
        AddFinding(out, src.path, i + 1, "fp-contract",
                   std::string("'") + pat + "' contracts or reorders FP — the chains are "
                   "separately rounded by definition (DESIGN.md §10)");
        break;
      }
    }
  }
}

void PassRandomness(const SourceFile& src, const Stripped& s, std::vector<Finding>* out) {
  if (PathContains(src.path, "common/random")) return;
  static const char* kSubstrings[] = {
      "std::mt19937",          "std::minstd_rand",    "std::ranlux",
      "std::knuth_b",          "std::default_random_engine",
      "std::random_device",    "std::uniform_int_distribution",
      "std::uniform_real_distribution", "std::normal_distribution",
      "std::bernoulli_distribution",    "std::discrete_distribution",
      "#include <random>"};
  for (std::size_t i = 0; i < s.code.size(); ++i) {
    const std::string& text = s.code[i];
    bool hit = false;
    for (const char* pat : kSubstrings) {
      if (text.find(pat) != std::string::npos) {
        AddFinding(out, src.path, i + 1, "randomness",
                   std::string("'") + pat + "' outside common/random — all randomness must "
                   "be seeded and owned there so runs replay");
        hit = true;
        break;
      }
    }
    if (hit) continue;
    for (const char* fn : {"rand", "srand"}) {
      std::size_t pos;
      if (!FindWord(text, fn, 0, &pos)) continue;
      std::size_t p = pos;
      while (p < text.size() && IsIdentChar(text[p])) ++p;
      while (p < text.size() && text[p] == ' ') ++p;
      if (p < text.size() && text[p] == '(') {
        AddFinding(out, src.path, i + 1, "randomness",
                   "rand()/srand() outside common/random — unseedable global state");
        break;
      }
    }
  }
}

void PassUnorderedIter(const SourceFile& src, const Stripped& s,
                       const std::set<std::string>& unordered_names,
                       std::vector<Finding>* out) {
  for (std::size_t i = 0; i < s.code.size(); ++i) {
    const std::string& text = s.code[i];
    std::size_t at;
    if (!FindWord(text, "for", 0, &at)) continue;
    const std::size_t open = text.find('(', at);
    if (open == std::string::npos) continue;
    // The header may span lines; join a small window so the range
    // expression resolves.
    std::string header = text.substr(open);
    for (std::size_t j = i + 1; j < s.code.size() && j < i + 4 &&
                                std::count(header.begin(), header.end(), '(') >
                                    std::count(header.begin(), header.end(), ')');
         ++j) {
      header += ' ';
      header += s.code[j];
    }
    // Top-level ':' (not '::') splits a range-for header.
    int depth = 0;
    std::size_t colon = std::string::npos;
    for (std::size_t p = 0; p < header.size(); ++p) {
      const char c = header[p];
      if (c == '(' || c == '[' || c == '<') ++depth;
      if (c == ')' || c == ']' || c == '>') {
        if (c == ')' && depth == 1) break;
        --depth;
      }
      if (c == ':' && depth == 1) {
        const bool dbl = (p > 0 && header[p - 1] == ':') ||
                         (p + 1 < header.size() && header[p + 1] == ':');
        if (!dbl) {
          colon = p;
          break;
        }
      }
    }
    std::string range;
    if (colon != std::string::npos) {
      const std::size_t close = header.find_last_of(')');
      range = Trim(header.substr(colon + 1,
                                 close == std::string::npos ? std::string::npos
                                                            : close - colon - 1));
    } else {
      // Iterator loop: `for (auto it = name.begin(); ...`.
      const std::size_t beg = header.find(".begin(");
      if (beg == std::string::npos) continue;
      std::size_t e = beg;
      while (e > 0 && IsIdentChar(header[e - 1])) --e;
      range = header.substr(e, beg - e);
    }
    if (range.empty()) continue;
    // Trailing identifier of the range expression (`model->pivot_hash_`
    // → `pivot_hash_`).
    std::size_t e = range.size();
    while (e > 0 && (range[e - 1] == ')' || range[e - 1] == ' ')) --e;
    std::size_t b = e;
    while (b > 0 && IsIdentChar(range[b - 1])) --b;
    const std::string tail = range.substr(b, e - b);
    if (unordered_names.count(tail) != 0 || range.find("unordered_") != std::string::npos) {
      AddFinding(out, src.path, i + 1, "unordered-iter",
                 "iterating '" + Trim(range) + "' — unordered container order is "
                 "implementation-defined and must never feed result ordering; "
                 "collect-then-sort or scatter by key instead");
    }
  }
}

void PassFpAccumulate(const SourceFile& src, const Stripped& s,
                      const std::set<std::string>& doubles, std::vector<Finding>* out) {
  if (PathContains(src.path, "core/kernels")) return;  // the canonical chains live here
  struct LoopFrame {
    int open_depth = 0;  ///< brace depth before the loop body '{'
    std::vector<std::string> vars;
  };
  std::vector<LoopFrame> loops;
  bool pending_loop = false;
  std::vector<std::string> pending_vars;
  int depth = 0;

  for (std::size_t i = 0; i < s.code.size(); ++i) {
    const std::string& text = s.code[i];

    if (text.find("std::accumulate") != std::string::npos ||
        text.find("std::reduce") != std::string::npos) {
      AddFinding(out, src.path, i + 1, "fp-accumulate",
                 "std::accumulate/std::reduce outside core/kernels — accumulation order "
                 "defines bits; route summation through the canonical blocked chains");
    }

    // Loop headers: remember the loop variables so element-wise updates
    // (`e.dot += x` via `for (auto& e : ...)`) are not mistaken for
    // scalar reductions.
    std::size_t kw;
    std::size_t header_end = 0;  ///< position just past the header's ')'
    const bool is_for = FindWord(text, "for", 0, &kw);
    const bool is_while = !is_for && FindWord(text, "while", 0, &kw);
    if (is_for || is_while) {
      pending_loop = true;
      pending_vars.clear();
      const std::size_t open = text.find('(', kw);
      if (open != std::string::npos) {
        int d = 0;
        std::size_t p = open;
        for (; p < text.size(); ++p) {
          if (text[p] == '(') ++d;
          if (text[p] == ')' && --d == 0) break;
        }
        header_end = p < text.size() ? p + 1 : text.size();
        if (is_for) {
          const std::string inner = text.substr(open + 1, (p > open ? p - open - 1 : 0));
          // Range-for: var precedes the top-level ':'; classic for: vars
          // precede '=' in the init clause.
          const std::size_t init_end = inner.find(';');
          const std::string init =
              init_end == std::string::npos ? inner : inner.substr(0, init_end);
          std::string last;
          for (std::size_t p2 = 0; p2 < init.size(); ++p2) {
            if (IsIdentChar(init[p2]) &&
                std::isdigit(static_cast<unsigned char>(init[p2])) == 0) {
              last = ReadIdent(init, p2);
              p2 += last.size() - 1;
            } else if (init[p2] == '=' || (init[p2] == ':' && (p2 == 0 || init[p2 - 1] != ':') &&
                                           (p2 + 1 >= init.size() || init[p2 + 1] != ':'))) {
              break;
            }
          }
          if (!last.empty()) pending_vars.push_back(last);
        }
      }
    }

    // `target +=` where target is a bare double scalar inside a loop.
    for (std::size_t at = text.find("+=", header_end); at != std::string::npos;
         at = text.find("+=", at + 2)) {
      std::size_t e = at;
      while (e > 0 && text[e - 1] == ' ') --e;
      if (e == 0 || !IsIdentChar(text[e - 1])) continue;  // a[i] += / obj.x += / ++
      std::size_t b = e;
      while (b > 0 && IsIdentChar(text[b - 1])) --b;
      if (b > 0 && (text[b - 1] == '.' || text[b - 1] == ':' ||
                    (b > 1 && text[b - 2] == '-' && text[b - 1] == '>'))) {
        continue;  // member access — element-wise update, caller-defined order
      }
      const std::string target = text.substr(b, e - b);
      const bool in_loop = !loops.empty() || pending_loop;
      if (!in_loop || doubles.count(target) == 0) continue;
      bool is_loop_var = false;
      for (const LoopFrame& f : loops) {
        for (const std::string& v : f.vars) is_loop_var = is_loop_var || v == target;
      }
      for (const std::string& v : pending_vars) is_loop_var = is_loop_var || v == target;
      if (is_loop_var) continue;
      AddFinding(out, src.path, i + 1, "fp-accumulate",
                 "'" + target + " +=' reduction loop over double outside core/kernels — "
                 "accumulation order defines bits; use the canonical blocked chains");
    }

    // Brace tracking: open loop frames at '{' after a header, pop them
    // when the depth returns to the open level.
    for (char c : text) {
      if (c == '{') {
        if (pending_loop) {
          loops.push_back({depth, pending_vars});
          pending_loop = false;
          pending_vars.clear();
        }
        ++depth;
      } else if (c == '}') {
        --depth;
        while (!loops.empty() && loops.back().open_depth >= depth) loops.pop_back();
      }
    }
    // A braceless single-statement body ends with the line.
    if (pending_loop && !text.empty() && text.find(';', header_end) != std::string::npos) {
      pending_loop = false;
      pending_vars.clear();
    }
  }
}

void PassHotAlloc(const SourceFile& src, const Stripped& s, std::vector<Finding>* out) {
  if (PathContains(src.path, "common/thread_annotations")) return;  // the definition site
  // Join with line map for cross-line body scans.
  std::string all;
  std::vector<std::size_t> line_of;  ///< line (1-based) of each char in `all`
  for (std::size_t i = 0; i < s.code.size(); ++i) {
    for (char c : s.code[i]) {
      all += c;
      line_of.push_back(i + 1);
    }
    all += '\n';
    line_of.push_back(i + 1);
  }

  static const char* kCalls[] = {"std::make_unique", "std::make_shared", "malloc(",
                                 "calloc(",          "realloc(",         "strdup",
                                 "aligned_alloc",    ".resize(",         ".reserve("};
  static const char* kOwningDecls[] = {"std::vector<", "std::string ", "std::deque<",
                                       "std::map<", "std::unordered_"};

  std::size_t at;
  std::size_t from = 0;
  while (FindWord(all, "AFFINITY_HOT", from, &at)) {
    from = at + 1;
    // Skip preprocessor lines (`#define AFFINITY_HOT ...`): the marker
    // there introduces no function body.
    std::size_t bol = at;
    while (bol > 0 && all[bol - 1] != '\n') --bol;
    while (bol < at && all[bol] == ' ') ++bol;
    if (all[bol] == '#') continue;
    // Definition bodies only: a ';' before the '{' marks a declaration.
    std::size_t p = at + 12;
    while (p < all.size() && all[p] != '{' && all[p] != ';') ++p;
    if (p >= all.size() || all[p] == ';') continue;
    int depth = 0;
    std::size_t body_begin = p;
    std::size_t body_end = p;
    for (std::size_t q = p; q < all.size(); ++q) {
      if (all[q] == '{') ++depth;
      if (all[q] == '}' && --depth == 0) {
        body_end = q;
        break;
      }
    }
    // Scan the body line by line.
    std::size_t line_start = body_begin + 1;
    for (std::size_t q = body_begin + 1; q <= body_end && q < all.size(); ++q) {
      if (all[q] != '\n' && q != body_end) continue;
      const std::string line = all.substr(line_start, q - line_start);
      const std::size_t lineno = line_of[line_start];
      std::size_t word_at;
      if (FindWord(line, "new", 0, &word_at)) {
        AddFinding(out, src.path, lineno, "hot-alloc",
                   "operator new inside an AFFINITY_HOT body — the append hot path is "
                   "allocation-free (DESIGN.md §13)");
      }
      for (const char* pat : kCalls) {
        if (line.find(pat) != std::string::npos) {
          AddFinding(out, src.path, lineno, "hot-alloc",
                     std::string("'") + pat + "' inside an AFFINITY_HOT body — the append "
                     "hot path is allocation-free (DESIGN.md §13)");
          break;
        }
      }
      if (line.find('&') == std::string::npos && line.find('*') == std::string::npos) {
        for (const char* pat : kOwningDecls) {
          if (line.find(pat) != std::string::npos) {
            AddFinding(out, src.path, lineno, "hot-alloc",
                       std::string("owning container ('") + pat + "') constructed inside an "
                       "AFFINITY_HOT body — the append hot path is allocation-free");
            break;
          }
        }
      }
      line_start = q + 1;
    }
  }
}

// ---------------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------------

/// Lines each rule is suppressed on, plus file-wide allows.
struct Suppressions {
  std::map<std::string, std::set<std::size_t>> lines;  ///< rule → covered lines
  std::set<std::string> file_rules;
  std::size_t directive_count = 0;
};

Suppressions BuildSuppressions(const SourceFile& src, const Stripped& s,
                               std::vector<Finding>* out) {
  Suppressions sup;
  for (const Directive& d : s.directives) {
    if (d.parse_error) {
      AddFinding(out, src.path, d.line, "bad-suppression",
                 "malformed affinity-lint directive — expected "
                 "'affinity-lint: allow(<rule>): <justification>'");
      continue;
    }
    if (!d.justified) {
      AddFinding(out, src.path, d.line, "bad-suppression",
                 "suppression without a justification — write "
                 "'affinity-lint: allow(<rule>): <why this site is safe>'");
      continue;
    }
    ++sup.directive_count;
    if (d.file_scope) {
      for (const std::string& r : d.rules) sup.file_rules.insert(r);
      continue;
    }
    // Covers its own line; a comment-only directive line also covers the
    // next line carrying code.
    for (const std::string& r : d.rules) sup.lines[r].insert(d.line);
    const std::string& own_code =
        d.line - 1 < s.code.size() ? s.code[d.line - 1] : std::string();
    if (Trim(own_code).empty()) {
      for (std::size_t j = d.line; j < s.code.size(); ++j) {
        if (!Trim(s.code[j]).empty()) {
          for (const std::string& r : d.rules) sup.lines[r].insert(j + 1);
          break;
        }
      }
    }
  }
  return sup;
}

}  // namespace

LintResult LintSources(const std::vector<SourceFile>& sources) {
  LintResult result;
  result.files_scanned = sources.size();

  // Pass 1: strip everything and collect the cross-file symbol tables.
  std::vector<Stripped> stripped;
  stripped.reserve(sources.size());
  std::set<std::string> unordered_names;
  for (const SourceFile& src : sources) {
    stripped.push_back(Strip(src.content));
    std::string joined;
    for (const std::string& l : stripped.back().code) {
      joined += l;
      joined += '\n';
    }
    CollectUnorderedNames(joined, &unordered_names);
  }

  // Pass 2: rules, then suppression filtering, per file.
  for (std::size_t f = 0; f < sources.size(); ++f) {
    const SourceFile& src = sources[f];
    const Stripped& s = stripped[f];

    std::set<std::string> doubles;
    CollectDoubleScalars(s.code, &doubles);

    std::vector<Finding> raw;
    PassFpAccumulate(src, s, doubles, &raw);
    PassFpContract(src, s, &raw);
    PassUnorderedIter(src, s, unordered_names, &raw);
    PassRandomness(src, s, &raw);
    PassHotAlloc(src, s, &raw);

    std::vector<Finding> meta;
    const Suppressions sup = BuildSuppressions(src, s, &meta);
    std::set<std::size_t> used;  ///< directive lines that matched a finding
    for (Finding& fi : raw) {
      if (sup.file_rules.count(fi.rule) != 0) {
        ++result.suppressions_used;
        continue;
      }
      const auto it = sup.lines.find(fi.rule);
      if (it != sup.lines.end() && it->second.count(fi.line) != 0) {
        ++result.suppressions_used;
        continue;
      }
      result.findings.push_back(std::move(fi));
    }
    for (Finding& fi : meta) result.findings.push_back(std::move(fi));
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return result;
}

LintResult LintPaths(const std::vector<std::string>& paths, const std::string& root) {
  std::vector<SourceFile> sources;
  std::vector<Finding> io_errors;
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      Finding f;
      f.file = path;
      f.line = 0;
      f.rule = "io";
      f.message = "cannot read file";
      io_errors.push_back(std::move(f));
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    SourceFile src;
    src.path = path;
    std::replace(src.path.begin(), src.path.end(), '\\', '/');
    std::string prefix = root;
    std::replace(prefix.begin(), prefix.end(), '\\', '/');
    if (!prefix.empty() && prefix.back() != '/') prefix += '/';
    if (!prefix.empty() && src.path.compare(0, prefix.size(), prefix) == 0) {
      src.path = src.path.substr(prefix.size());
    }
    src.content = buf.str();
    sources.push_back(std::move(src));
  }
  LintResult result = LintSources(sources);
  for (Finding& f : io_errors) result.findings.push_back(std::move(f));
  return result;
}

std::vector<std::string> DefaultSourceList(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  for (const char* dir : {"src", "tools"}) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cc") out.push_back(entry.path().string());
    }
  }
  const fs::path cmake = fs::path(root) / "CMakeLists.txt";
  if (fs::exists(cmake)) out.push_back(cmake.string());
  std::sort(out.begin(), out.end());
  return out;
}

std::string FormatReport(const LintResult& result) {
  std::ostringstream out;
  for (const Finding& f : result.findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  }
  out << "affinity_lint: " << result.files_scanned << " files, " << result.findings.size()
      << " finding(s), " << result.suppressions_used << " suppression(s) used\n";
  return out.str();
}

}  // namespace affinity::lint
