#ifndef AFFINITY_SHARD_SHARDED_H_
#define AFFINITY_SHARD_SHARDED_H_

/// \file sharded.h
/// The sharded streaming service (DESIGN.md §9): N independent
/// `StreamingAffinity` instances over disjoint series groups behind one
/// router — the ROADMAP's "millions of users" deployment shape.
///
/// **Ingest.** `Append` scatters each global row into per-shard rows
/// (reusable buffers, no per-append allocation) and runs every shard's
/// append — including any due snapshot refresh — concurrently over one
/// shared thread pool. Shards refresh in lockstep (same window/interval,
/// aligned rows), so all shard snapshots always cover the same logical
/// trailing window.
///
/// **Queries.** MET/MER/MEC/top-k run scatter-gather: the shard-aware
/// planner (`QueryPlanner::Topology`) resolves one strategy, every shard
/// answers over its own model/index (`StreamingAffinity` freshness
/// queries), and the router adds the pairs no shard can see — pairs
/// spanning two shards — by evaluating them naively over the aligned
/// shard snapshots (`core::EvaluateCrossPairs`). Results merge by k-way
/// heap merge (`core::MergeTopK` for top-k; sorted-run merges for
/// selections), making the merged answer identical to an unsharded
/// instance over the same data (asserted in tests at 1/2/8 shards).
///
/// **Freshness.** `FreshnessOptions::max_staleness` bounds the snapshot
/// age an answer may reflect; shards older than the bound blend live
/// rolling marginals into their answers (streaming.h), and the response
/// reports every shard's actual snapshot age.
///
/// The single-instance deployment is exactly the N = 1 case: one shard,
/// no cross pairs, every query a pure pass-through.

#include <memory>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/streaming.h"
#include "serve/serving_snapshot.h"
#include "ts/ingest.h"
#include "shard/cross_cache.h"
#include "shard/partitioner.h"
#include "shard/shard_serve.h"

namespace affinity::shard {

/// Sharded service configuration.
struct ShardedOptions {
  /// Number of independent model instances (≥ 1).
  std::size_t shards = 1;
  /// How series are assigned to shards.
  PartitionScheme partition = PartitionScheme::kRange;
  /// Per-shard streaming configuration. `streaming.build.threads` sizes
  /// the single router-owned pool all shards share (1 = sequential, 0 =
  /// one per hardware thread).
  core::StreamingOptions streaming;
  /// Cross-shard co-moment watch-list (cross_cache.h): rolling co-moments
  /// for the first `cross_cache.budget` cross pairs, so repeated warm
  /// MET/MER/top-k queries skip their raw cross sweep entirely. Off by
  /// default (budget 0): cached values are rolled accumulators, identical
  /// to the raw sweep only to the documented round-off tolerance
  /// (DESIGN.md §10), so enabling is an explicit opt-in.
  CrossCacheOptions cross_cache;
};

/// Per-shard freshness attached to every scatter-gather answer.
struct ShardFreshness {
  std::size_t snapshot_age = 0;  ///< rows appended since that shard's refresh
  bool blended = false;          ///< that shard answered with the live blend
};

/// A MET/MER answer in global ids, plus per-shard freshness.
struct ShardedSelection {
  core::SelectionResult result;
  std::vector<ShardFreshness> shards;
};

/// A MEC answer (locations / pair matrix in request order), plus
/// per-shard freshness.
struct ShardedMec {
  core::MecResponse response;
  std::vector<ShardFreshness> shards;
};

/// A top-k answer in global ids, plus per-shard freshness.
struct ShardedTopK {
  core::TopKResult result;
  std::vector<ShardFreshness> shards;
};

/// Owns the partition and the scatter/gather id plumbing: reusable
/// per-shard row buffers for ingest and the precomputed cross-shard pair
/// list for queries.
class ShardRouter {
 public:
  explicit ShardRouter(SeriesPartitioner partitioner);

  const SeriesPartitioner& partitioner() const { return partitioner_; }

  /// Scatters one global row into per-shard rows. The returned reference
  /// aliases internal buffers reused on every call — valid until the next
  /// Scatter (the allocation-free append hot path).
  const std::vector<std::vector<double>>& Scatter(const std::vector<double>& row);

  /// Every sequence pair spanning two shards, (u, v)-lex order in global
  /// ids; precomputed once at construction.
  const std::vector<ts::SequencePair>& cross_pairs() const { return cross_pairs_; }

 private:
  SeriesPartitioner partitioner_;
  std::vector<std::vector<double>> scatter_;
  std::vector<ts::SequencePair> cross_pairs_;
};

/// The sharded ingest-and-query service. Movable, not copyable.
///
/// Concurrency contract (DESIGN.md §13): single-writer, multi-reader.
/// Append/Rebuild/Load and the lockstep refresh they drive — including
/// every CrossMomentCache access — run on one writer thread; shard
/// fan-out inside a refresh goes through the internally synchronized
/// ThreadPool and joins before the call returns. Queries service from
/// the last published RouterSnapshot via the internally synchronized
/// EpochPublisher; no query ever reads the live shards, so the writer
/// needs no lock of its own.
class ShardedAffinity {
 public:
  /// Creates N shards over the named series. Status errors (never crashes)
  /// for invalid configurations: see ValidateStreamingOptions plus the
  /// shard-count bounds of SeriesPartitioner::Create.
  static StatusOr<ShardedAffinity> Create(const std::vector<std::string>& names,
                                          const ShardedOptions& options);

  /// Appends one aligned global row; every shard ingests its slice
  /// concurrently on the shared pool. The aggregated result reports the
  /// first per-shard error (by shard index), whether any shard refreshed /
  /// escalated, and the refresh mode of the lowest refreshed shard.
  core::AppendResult Append(const std::vector<double>& row);

  /// Appends one aligned row from the dirty-ingestion path (DESIGN.md
  /// §12): `values` is the repaired dense row, `valid`/`filled` the
  /// aligner's masks, all sized n. Each shard ingests its slice of the
  /// values *and* masks, so per-shard quality surfaces (and `min_quality`
  /// predicates routed across shards) see the same gaps the unsharded
  /// stream would.
  core::AppendResult AppendMasked(const std::vector<double>& values,
                                  const std::vector<std::uint8_t>& valid,
                                  const std::vector<std::uint8_t>& filled);

  /// Convenience overload for the aligner's emission type.
  core::AppendResult AppendMasked(const ts::AlignedRow& row) {
    return AppendMasked(row.values, row.valid, row.filled);
  }

  /// True once every shard has a snapshot (they refresh in lockstep, so
  /// this flips for all shards on the same append).
  bool ready() const;

  /// Rows ingested (global rows; every shard saw each of them).
  std::size_t rows_ingested() const { return rows_; }

  std::size_t shard_count() const { return shards_.size(); }

  /// Shard s (its framework, rolling stats, maintenance accounting).
  const core::StreamingAffinity& shard(std::size_t s) const { return shards_[s]; }

  const ShardRouter& router() const { return router_; }

  /// Cross-shard aggregation of the per-shard maintenance accounting
  /// (counters summed, last-refresh latency maxed — shards refresh
  /// concurrently; residual levels averaged).
  core::MaintenanceProfile maintenance() const;

  /// Co-moment cache accounting (zeros when the cache is disabled).
  const CrossCacheStats& cross_cache_stats() const { return cross_cache_.stats(); }

  /// Raw-scan accounting of every cross-pair sweep this service ran —
  /// on a warm cache, repeated MET/MER/top-k queries add zero pair scans
  /// for watched pairs (the bench_streaming acceptance counter).
  const core::CrossSweepStats& cross_sweep_stats() const { return cross_sweep_stats_; }

  /// The current router serving snapshot (DESIGN.md §11): an immutable
  /// epoch bundling every shard's serving replica plus the frozen cross
  /// co-moment view, republished on every lockstep refresh, rebuild, and
  /// restore. Safe to read from any thread concurrently with Append —
  /// the returned shared_ptr keeps the whole epoch alive for the
  /// caller's query (RouterMet/RouterMer/RouterMec/RouterTopK). nullptr
  /// before the first refresh.
  std::shared_ptr<const RouterSnapshot> serving() const {
    return publisher_ != nullptr ? publisher_->Acquire() : nullptr;
  }

  /// A specific router epoch by generation: the current one, or any
  /// superseded epoch still pinned by the publisher's history ring
  /// (`StreamingOptions::serving_history`). nullptr when that generation
  /// was never published or has been evicted.
  std::shared_ptr<const RouterSnapshot> serving_epoch(std::uint64_t generation) const {
    return publisher_ != nullptr ? publisher_->AcquireEpoch(generation) : nullptr;
  }

  /// Every shard's snapshot age, indexed by shard.
  std::vector<std::size_t> snapshot_ages() const;

  /// Forces a full rebuild of every shard (concurrently).
  Status Rebuild();

  // --- Scatter-gather queries (global ids) --------------------------------

  StatusOr<ShardedMec> Mec(const core::MecRequest& request,
                           const core::FreshnessOptions& options = {}) const;
  StatusOr<ShardedSelection> Met(const core::MetRequest& request,
                                 const core::FreshnessOptions& options = {}) const;
  StatusOr<ShardedSelection> Mer(const core::MerRequest& request,
                                 const core::FreshnessOptions& options = {}) const;
  StatusOr<ShardedTopK> TopK(const core::TopKRequest& request,
                             const core::FreshnessOptions& options = {}) const;

  // --- Shard-manifest persistence (serialize.h framing) -------------------

  /// Saves the whole deployment to one file: a manifest header (shard
  /// count, partition assignment, streaming geometry, names) followed by
  /// every shard's model payload (`core::WriteModelStream`). All shards
  /// must be ready. IoError / FailedPrecondition on failure.
  Status Save(const std::string& path) const;

  /// Restores a deployment saved by Save: every shard comes back ready,
  /// answering over its checkpointed window, with logical row numbering
  /// restarted at `window`. `threads` sizes the restored shared pool
  /// (1 = sequential, 0 = hardware). In kIncremental mode the maintenance
  /// structure re-freezes from the checkpoint — an exact refit of every
  /// relationship, as after an escalation — so answers may differ from the
  /// pre-checkpoint delta-maintained state by the bounded round-off the
  /// exact-refit cadence normally reclaims (~1e-13 relative; DESIGN.md §8).
  static StatusOr<ShardedAffinity> Load(const std::string& path, std::size_t threads = 1);

  /// The configuration the service was created with.
  const ShardedOptions& options() const { return options_; }

  /// The shared execution context (scatter appends and gather sweeps).
  const ExecContext& exec() const { return exec_; }

 private:
  ShardedAffinity(ShardedOptions options, SeriesPartitioner partitioner,
                  std::unique_ptr<ThreadPool> pool);

  /// Builds the per-shard streams (used by Create and Load).
  Status InitShards(const std::vector<std::string>& names);

  /// The globally resolved plan for a sharded query: per-shard strategy
  /// from the shard-aware planner (Topology carries shard count and cross
  /// pairs). FailedPrecondition before the first refresh.
  StatusOr<core::ExecutedPlan> ResolveShardPlan(
      const std::function<core::PlanChoice(const core::QueryPlanner&)>& plan,
      const core::FreshnessOptions& options) const;

  /// True when the staleness bound demands blending: the *oldest* shard
  /// snapshot exceeds it. The single gate shared by plan resolution and
  /// the cross-shard sweep, so a lone stale shard can never leak raw
  /// snapshot values into an answer stamped as blended.
  bool NeedsBlend(const core::FreshnessOptions& options) const;

  /// The shared MET/MER gather: per-shard selections run concurrently on
  /// the pool (`shard_query` invokes one shard's Met/Mer), local ids are
  /// rewritten to global, the cross-shard sweep applies `keep(value, a,
  /// b)` plus the `min_quality` predicate (each endpoint's score read from
  /// its shard's live quality surface), and the sorted runs k-way merge.
  StatusOr<ShardedSelection> SelectAcrossShards(
      core::Measure measure, bool (*keep)(double, double, double), double a, double b,
      double min_quality,
      const std::function<core::PlanChoice(const core::QueryPlanner&)>& plan,
      const std::function<StatusOr<core::SelectionResult>(
          const core::StreamingAffinity&, const core::FreshnessOptions&,
          core::FreshnessReport*)>& shard_query,
      const core::FreshnessOptions& options) const;

  /// Composite quality score of one global series id, read from its
  /// shard's live surface (DESIGN.md §12) — the router-side lookup behind
  /// cross-pair quality filtering and answer stamping.
  double GlobalQualityScore(ts::SeriesId global) const;

  /// Shared tail of Append/AppendMasked: aggregates `append_results_`,
  /// rolls the cross epoch and republishes the router snapshot when a
  /// lockstep refresh ran.
  core::AppendResult FinishAppend();

  /// Values of every cross-shard pair (index-aligned with
  /// router_.cross_pairs()): naive over the aligned shard snapshots, or
  /// the live-marginal blend when `blend` is set.
  StatusOr<std::vector<double>> CrossPairValues(core::Measure measure, bool blend) const;

  /// Collects per-shard freshness for a response.
  std::vector<ShardFreshness> Freshness(const core::FreshnessOptions& options) const;

  /// The shard snapshots' shared block-grid anchor (lockstep refreshes
  /// keep every shard on the same trailing window); 0 before readiness.
  std::size_t SnapshotAnchor() const;

  /// Assembles and atomically publishes a fresh RouterSnapshot from the
  /// shards' serving snapshots, the partitioner's routing tables, and the
  /// cross cache's stamped co-moments. Called after every successful
  /// lockstep refresh (Append), Rebuild, and Load; no-op before
  /// readiness.
  void PublishRouterSnapshot();

  // Pool first: shards hold ExecContexts pointing at it (destroy last).
  std::unique_ptr<ThreadPool> pool_;
  ExecContext exec_;
  ShardedOptions options_;
  ShardRouter router_;
  std::vector<core::StreamingAffinity> shards_;
  /// Reused per-append result buffer (allocation-free hot path).
  std::vector<core::AppendResult> append_results_;
  std::size_t rows_ = 0;
  /// Cross-pair co-moment watch-list, rolled on every append, stamped on
  /// every lockstep refresh, invalidated on escalation/rebuild/restore.
  /// Mutable: queries fill misses and count hits (single-threaded at the
  /// router surface, like the rest of the query path).
  mutable CrossMomentCache cross_cache_;
  /// Current snapshot generation (bumped per lockstep refresh). 0 = "no
  /// snapshots yet", which is also the cache's never-stamped sentinel —
  /// queries are gated on ready(), so the cache is never consulted at 0
  /// (CHECKed in CrossMomentCache), and Load starts restored routers at 1.
  std::uint64_t cross_generation_ = 0;
  mutable core::CrossSweepStats cross_sweep_stats_;
  /// Epoch publication point for lock-free router serving (serving()).
  std::unique_ptr<serve::EpochPublisher<RouterSnapshot>> publisher_;
  /// The cross co-moment view frozen at the last publish, shared with the
  /// next epoch whenever the cache's mutation version has not moved —
  /// then re-freezing would copy identical bytes (satellite fix: a
  /// disabled or quiescent cache shares one immutable view across
  /// epochs).
  std::shared_ptr<const RouterSnapshot::CrossMomentView> last_cross_view_;
  std::uint64_t last_cross_view_version_ = 0;
};

}  // namespace affinity::shard

#endif  // AFFINITY_SHARD_SHARDED_H_
