#include "shard/sharded.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <queue>
#include <utility>

#include "core/serialize.h"

namespace affinity::shard {

namespace {

using core::AppendResult;
using core::CrossPair;
using core::ExecutedPlan;
using core::FreshnessOptions;
using core::FreshnessReport;
using core::Measure;
using core::QueryMethod;
using core::QueryPlanner;
using core::ScapeTopKEntry;
using core::ScapeTopKResult;

/// K-way heap merge of sorted runs into one sorted vector — the gather
/// step for selection results (runs: per-shard answers + the cross-shard
/// sweep, each sorted ascending under `less`).
template <typename T, typename Less>
std::vector<T> MergeSortedRuns(const std::vector<std::vector<T>>& runs, Less less) {
  struct Head {
    std::size_t run;
    std::size_t pos;
  };
  const auto head_greater = [&](const Head& a, const Head& b) {
    return less(runs[b.run][b.pos], runs[a.run][a.pos]);
  };
  std::priority_queue<Head, std::vector<Head>, decltype(head_greater)> frontier(head_greater);
  std::size_t total = 0;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    total += runs[r].size();
    if (!runs[r].empty()) frontier.push(Head{r, 0});
  }
  std::vector<T> out;
  out.reserve(total);
  while (!frontier.empty()) {
    const Head head = frontier.top();
    frontier.pop();
    out.push_back(runs[head.run][head.pos]);
    if (head.pos + 1 < runs[head.run].size()) frontier.push(Head{head.run, head.pos + 1});
  }
  return out;
}

// --- Manifest framing (composes with serialize.h model payloads) ----------

constexpr char kManifestMagic[4] = {'A', 'F', 'F', 'S'};
// v2 added the cross co-moment cache tuning (budget, exact_resync_period)
// so a restored router keeps its watch-list instead of silently reverting
// to a disabled cache (part of the ISSUE 5 restore-ordering audit). v1
// manifests still load with the cache defaults they were written under.
constexpr std::uint32_t kManifestVersion = 2;
constexpr std::uint32_t kMinManifestVersion = 1;

void WriteU32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void WriteU64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void WriteF64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

bool ReadU32(std::istream& in, std::uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof *v);
  return in.gcount() == sizeof *v;
}
bool ReadU64(std::istream& in, std::uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof *v);
  return in.gcount() == sizeof *v;
}
bool ReadF64(std::istream& in, double* v) {
  in.read(reinterpret_cast<char*>(v), sizeof *v);
  return in.gcount() == sizeof *v;
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardRouter.
// ---------------------------------------------------------------------------

ShardRouter::ShardRouter(SeriesPartitioner partitioner) : partitioner_(std::move(partitioner)) {
  scatter_.resize(partitioner_.shards());
  for (std::size_t s = 0; s < partitioner_.shards(); ++s) {
    scatter_[s].resize(partitioner_.group(s).size());
  }
  // Cross-shard pairs, (u, v)-lex in global ids, fixed for the router's
  // lifetime: the complement of the per-shard pair sets.
  const std::size_t n = partitioner_.n();
  cross_pairs_.reserve(partitioner_.cross_pair_count());
  for (std::size_t u = 0; u + 1 < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (partitioner_.shard_of(static_cast<ts::SeriesId>(u)) !=
          partitioner_.shard_of(static_cast<ts::SeriesId>(v))) {
        cross_pairs_.emplace_back(static_cast<ts::SeriesId>(u), static_cast<ts::SeriesId>(v));
      }
    }
  }
}

const std::vector<std::vector<double>>& ShardRouter::Scatter(const std::vector<double>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    const auto id = static_cast<ts::SeriesId>(i);
    scatter_[partitioner_.shard_of(id)][partitioner_.local_id(id)] = row[i];
  }
  return scatter_;
}

// ---------------------------------------------------------------------------
// ShardedAffinity: construction and ingest.
// ---------------------------------------------------------------------------

ShardedAffinity::ShardedAffinity(ShardedOptions options, SeriesPartitioner partitioner,
                                 std::unique_ptr<ThreadPool> pool)
    : pool_(std::move(pool)),
      exec_{pool_.get()},
      options_(std::move(options)),
      router_(std::move(partitioner)) {}

StatusOr<ShardedAffinity> ShardedAffinity::Create(const std::vector<std::string>& names,
                                                  const ShardedOptions& options) {
  AFFINITY_ASSIGN_OR_RETURN(
      SeriesPartitioner partitioner,
      SeriesPartitioner::Create(names, options.shards, options.partition));
  // Validate against the *smallest* shard so bad geometry reports before
  // any pool or table is built.
  std::size_t min_group = names.size();
  for (std::size_t s = 0; s < partitioner.shards(); ++s) {
    min_group = std::min(min_group, partitioner.group(s).size());
  }
  AFFINITY_RETURN_IF_ERROR(core::ValidateStreamingOptions(options.streaming, min_group));
  // One pool shared by every shard: scatter appends fan out across it, and
  // per-shard refreshes run concurrently on it (nested parallel loops
  // degrade to in-worker sequential execution — one worker per shard).
  std::unique_ptr<ThreadPool> pool;
  if (options.streaming.build.threads != 1) {
    pool = std::make_unique<ThreadPool>(options.streaming.build.threads);
  }
  ShardedAffinity service(options, std::move(partitioner), std::move(pool));
  AFFINITY_RETURN_IF_ERROR(service.InitShards(names));
  return service;
}

Status ShardedAffinity::InitShards(const std::vector<std::string>& names) {
  const SeriesPartitioner& partitioner = router_.partitioner();
  shards_.reserve(partitioner.shards());
  for (std::size_t s = 0; s < partitioner.shards(); ++s) {
    std::vector<std::string> local_names;
    local_names.reserve(partitioner.group(s).size());
    for (const ts::SeriesId id : partitioner.group(s)) local_names.push_back(names[id]);
    AFFINITY_ASSIGN_OR_RETURN(
        core::StreamingAffinity stream,
        core::StreamingAffinity::CreateWith(local_names, options_.streaming, exec_));
    shards_.push_back(std::move(stream));
  }
  append_results_.resize(shards_.size());
  cross_cache_ =
      CrossMomentCache(router_.cross_pairs(), options_.streaming.window, options_.cross_cache);
  return Status::OK();
}

AppendResult ShardedAffinity::Append(const std::vector<double>& row) {
  AppendResult out;
  if (row.size() != router_.partitioner().n()) {
    out.status = Status::InvalidArgument("row has " + std::to_string(row.size()) +
                                         " values, service has " +
                                         std::to_string(router_.partitioner().n()) + " series");
    return out;
  }
  const std::vector<std::vector<double>>& scattered = router_.Scatter(row);
  ++rows_;
  // Roll the cross watch-list before the shard appends: a refresh below
  // absorbs this row, so the rolled live window must already include it
  // when the post-refresh Stamp freezes it as the snapshot moments.
  cross_cache_.Observe(row);
  // One chunk per shard: appends (and any due refreshes) run concurrently
  // on the shared pool, each shard's own maintenance sequential within its
  // worker.
  ParallelChunks(exec_, shards_.size(), [&](std::size_t /*chunk*/, std::size_t lo,
                                            std::size_t hi) {
    for (std::size_t s = lo; s < hi; ++s) append_results_[s] = shards_[s].Append(scattered[s]);
  });
  return FinishAppend();
}

AppendResult ShardedAffinity::AppendMasked(const std::vector<double>& values,
                                           const std::vector<std::uint8_t>& valid,
                                           const std::vector<std::uint8_t>& filled) {
  AppendResult out;
  const std::size_t n = router_.partitioner().n();
  if (values.size() != n) {
    out.status = Status::InvalidArgument("row has " + std::to_string(values.size()) +
                                         " values, service has " + std::to_string(n) + " series");
    return out;
  }
  if (valid.size() != n || filled.size() != n) {
    out.status = Status::InvalidArgument("mask sizes must match the row");
    return out;
  }
  const std::vector<std::vector<double>>& scattered = router_.Scatter(values);
  // Scatter the masks along the same per-shard groups. (Allocates per
  // call — the dirty path trades hot-path purity for the quality surface;
  // the dense Append stays allocation-free.)
  std::vector<std::vector<std::uint8_t>> valid_s(shards_.size());
  std::vector<std::vector<std::uint8_t>> filled_s(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const auto& group = router_.partitioner().group(s);
    valid_s[s].resize(group.size());
    filled_s[s].resize(group.size());
    for (std::size_t i = 0; i < group.size(); ++i) {
      valid_s[s][i] = valid[group[i]];
      filled_s[s][i] = filled[group[i]];
    }
  }
  ++rows_;
  cross_cache_.Observe(values);
  ParallelChunks(exec_, shards_.size(), [&](std::size_t /*chunk*/, std::size_t lo,
                                            std::size_t hi) {
    for (std::size_t s = lo; s < hi; ++s) {
      append_results_[s] = shards_[s].AppendMasked(scattered[s], valid_s[s], filled_s[s]);
    }
  });
  return FinishAppend();
}

AppendResult ShardedAffinity::FinishAppend() {
  AppendResult out;
  // Aggregate: first error by shard index; any refresh / escalation shows,
  // with the mode of the lowest refreshed shard.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const AppendResult& r = append_results_[s];
    if (!r.status.ok() && out.status.ok()) {
      out.status = Status(r.status.code(), "shard " + std::to_string(s) + ": " +
                                               std::string(r.status.message()));
    }
    if (r.refreshed && !out.refreshed) {
      out.refreshed = true;
      out.mode = r.mode;
    }
    out.escalated = out.escalated || r.escalated;
  }
  if (out.refreshed) {
    ++cross_generation_;
    if (out.escalated || !out.status.ok()) {
      // Conservative: a rebuild (or a half-failed lockstep refresh)
      // re-froze shard state; drop the stamps and let the next sweep
      // re-fill exactly.
      cross_cache_.Invalidate();
    } else {
      cross_cache_.Stamp(cross_generation_, SnapshotAnchor());
    }
    // Every shard republished its serving snapshot during this lockstep
    // refresh; bundle them (plus the just-stamped co-moment view) into a
    // fresh router epoch. A half-failed refresh keeps the previous epoch
    // (its shard snapshots are still the last coherent lockstep set).
    if (out.status.ok()) PublishRouterSnapshot();
  }
  return out;
}

void ShardedAffinity::PublishRouterSnapshot() {
  if (!ready()) return;
  auto snap = std::make_shared<RouterSnapshot>();
  snap->generation = cross_generation_;
  snap->window = options_.streaming.window;
  snap->n = router_.partitioner().n();
  snap->shards.reserve(shards_.size());
  core::QueryPlanner::Capabilities caps{true, true, true};
  std::size_t max_n = 0;
  for (const core::StreamingAffinity& shard : shards_) {
    std::shared_ptr<const serve::ServingSnapshot> shard_snap = shard.serving();
    // Defensive: a ready shard has always published (Refresh/Rebuild/
    // Restore all do); without a full lockstep set there is no coherent
    // epoch to serve, so keep the previous one.
    if (shard_snap == nullptr) return;
    caps.has_model = caps.has_model && shard_snap->caps.has_model;
    caps.has_scape = caps.has_scape && shard_snap->caps.has_scape;
    caps.has_dft = caps.has_dft && shard_snap->caps.has_dft;
    max_n = std::max(max_n, shard_snap->data.n());
    snap->shards.push_back(std::move(shard_snap));
  }
  snap->anchor = snap->shards[0]->data.anchor_row();
  snap->caps = caps;
  snap->max_n = max_n;
  const SeriesPartitioner& partitioner = router_.partitioner();
  snap->shard_of.resize(partitioner.n());
  snap->local_of.resize(partitioner.n());
  for (std::size_t i = 0; i < partitioner.n(); ++i) {
    const auto id = static_cast<ts::SeriesId>(i);
    snap->shard_of[i] = partitioner.shard_of(id);
    snap->local_of[i] = partitioner.local_id(id);
  }
  snap->groups.reserve(partitioner.shards());
  for (std::size_t s = 0; s < partitioner.shards(); ++s) {
    snap->groups.push_back(partitioner.group(s));
  }
  snap->cross = router_.cross_pairs();
  // Re-freeze the cross co-moment view only when the cache's exportable
  // state actually changed since the last publish (its mutation version
  // moved). Otherwise the prior epoch's immutable view is shared — with
  // the cache disabled (version pinned at 0) every epoch after the first
  // shares one all-unstamped view forever.
  if (last_cross_view_ == nullptr || cross_cache_.version() != last_cross_view_version_) {
    auto view = std::make_shared<RouterSnapshot::CrossMomentView>();
    cross_cache_.ExportStamped(cross_generation_, &view->stamped, &view->moments);
    // A disabled cache exports empty vectors; pad to the cross list so the
    // serve path treats every pair as unstamped (raw sweep), like the live
    // path with the cache off.
    view->stamped.resize(snap->cross.size(), 0);
    view->moments.resize(snap->cross.size());
    std::size_t stamped = 0;
    for (const std::uint8_t flag : view->stamped) stamped += flag;
    view->stamped_count = stamped;
    last_cross_view_ = std::move(view);
    last_cross_view_version_ = cross_cache_.version();
  }
  snap->cross_view = last_cross_view_;
  if (publisher_ == nullptr) {
    publisher_ = std::make_unique<serve::EpochPublisher<RouterSnapshot>>(
        options_.streaming.serving_history);
  }
  publisher_->Publish(std::move(snap));
}

std::size_t ShardedAffinity::SnapshotAnchor() const {
  // Lockstep refreshes keep every shard snapshot on the same trailing
  // window, hence on the same absolute block grid; shard 0 speaks for
  // all (callers only run on a ready deployment).
  return shards_.empty() || !shards_[0].ready()
             ? 0
             : shards_[0].framework()->data().anchor_row();
}

bool ShardedAffinity::ready() const {
  for (const core::StreamingAffinity& shard : shards_) {
    if (!shard.ready()) return false;
  }
  return !shards_.empty();
}

core::MaintenanceProfile ShardedAffinity::maintenance() const {
  std::vector<core::MaintenanceProfile> profiles;
  profiles.reserve(shards_.size());
  for (const core::StreamingAffinity& shard : shards_) profiles.push_back(shard.maintenance());
  return core::AggregateShardProfiles(profiles);
}

std::vector<std::size_t> ShardedAffinity::snapshot_ages() const {
  std::vector<std::size_t> ages;
  ages.reserve(shards_.size());
  for (const core::StreamingAffinity& shard : shards_) ages.push_back(shard.snapshot_age());
  return ages;
}

Status ShardedAffinity::Rebuild() {
  // A manual rebuild re-snapshots every shard mid-interval; the cached
  // generation no longer describes the snapshots, so drop it.
  ++cross_generation_;
  cross_cache_.Invalidate();
  AFFINITY_RETURN_IF_ERROR(TryParallelChunks(
      exec_, shards_.size(), [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) -> Status {
        for (std::size_t s = lo; s < hi; ++s) {
          AFFINITY_RETURN_IF_ERROR(shards_[s].Rebuild());
        }
        return Status::OK();
      }));
  PublishRouterSnapshot();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Scatter-gather queries.
// ---------------------------------------------------------------------------

std::vector<ShardFreshness> ShardedAffinity::Freshness(const FreshnessOptions& options) const {
  std::vector<ShardFreshness> out(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    out[s].snapshot_age = shards_[s].snapshot_age();
    out[s].blended =
        options.max_staleness > 0 && out[s].snapshot_age > options.max_staleness;
  }
  return out;
}

bool ShardedAffinity::NeedsBlend(const FreshnessOptions& options) const {
  if (options.max_staleness == 0) return false;
  for (const core::StreamingAffinity& shard : shards_) {
    if (shard.snapshot_age() > options.max_staleness) return true;
  }
  return false;
}

StatusOr<ExecutedPlan> ShardedAffinity::ResolveShardPlan(
    const std::function<core::PlanChoice(const QueryPlanner&)>& plan,
    const FreshnessOptions& options) const {
  if (!ready()) {
    return Status::FailedPrecondition("no shard snapshots yet (need window rows)");
  }
  // Blend trumps strategy choice: a stale deployment answers with the
  // live-marginal blend sweep whatever is attached.
  if (NeedsBlend(options)) {
    std::size_t max_age = 0;
    for (const core::StreamingAffinity& shard : shards_) {
      max_age = std::max(max_age, shard.snapshot_age());
    }
    ExecutedPlan blended;
    blended.method = QueryMethod::kAffine;
    blended.rationale = "freshness blend over " + std::to_string(shards_.size()) +
                        " shards: snapshot structure (age " + std::to_string(max_age) +
                        " rows) rescaled by live rolling marginals";
    return blended;
  }
  if (options.method != QueryMethod::kAuto) {
    ExecutedPlan explicit_plan;
    explicit_plan.method = options.method;
    explicit_plan.rationale = "explicitly requested " +
                              std::string(core::QueryMethodName(options.method)) +
                              " per shard; scatter-gather over " +
                              std::to_string(shards_.size()) + " shards";
    return explicit_plan;
  }
  // Shard-aware auto dispatch: capabilities every shard can serve, per-
  // shard dimensions, and the cross-pair surcharge via the Topology.
  QueryPlanner::Capabilities caps{true, true, true};
  std::size_t max_n = 0;
  for (const core::StreamingAffinity& shard : shards_) {
    const QueryPlanner::Capabilities c = shard.framework()->engine().Capabilities();
    caps.has_model = caps.has_model && c.has_model;
    caps.has_scape = caps.has_scape && c.has_scape;
    caps.has_dft = caps.has_dft && c.has_dft;
    max_n = std::max(max_n, shard.framework()->data().n());
  }
  const QueryPlanner::Topology topology{shards_.size(),
                                        router_.partitioner().cross_pair_count(),
                                        cross_cache_.StampedCount(cross_generation_)};
  const QueryPlanner planner(max_n, options_.streaming.window, caps, topology);
  return plan(planner);
}

StatusOr<std::vector<double>> ShardedAffinity::CrossPairValues(Measure measure,
                                                               bool blend) const {
  const std::vector<ts::SequencePair>& cross = router_.cross_pairs();
  const SeriesPartitioner& partitioner = router_.partitioner();
  const std::size_t window = options_.streaming.window;
  const auto resolve = [&](const ts::SequencePair e) {
    const core::StreamingAffinity& su = shards_[partitioner.shard_of(e.u)];
    const core::StreamingAffinity& sv = shards_[partitioner.shard_of(e.v)];
    return CrossPair{e, su.framework()->data().ColumnData(partitioner.local_id(e.u)),
                     sv.framework()->data().ColumnData(partitioner.local_id(e.v))};
  };

  // Warm watched pairs answer from their stamped co-moments — zero raw
  // column scans; everything else goes through the marginal-hoisted sweep,
  // whose per-pair moments re-fill the cache. The freshness blend bypasses
  // the cache (it sweeps twice over the same snapshot anyway).
  std::vector<double> values(cross.size());
  const bool use_cache = !blend && cross_cache_.enabled();
  std::vector<std::size_t> swept;  // cross indices needing the raw sweep
  if (use_cache) {
    swept.reserve(cross.size());
    for (std::size_t i = 0; i < cross.size(); ++i) {
      core::PairMoments pm;
      if (cross_cache_.Lookup(i, cross_generation_, &pm)) {
        auto value = core::PairMeasureFromMoments(measure, pm);
        if (!value.ok()) return value.status();
        values[i] = *value;
      } else {
        swept.push_back(i);
      }
    }
  } else {
    swept.resize(cross.size());
    for (std::size_t i = 0; i < cross.size(); ++i) swept[i] = i;
  }

  std::vector<CrossPair> resolved(swept.size());
  for (std::size_t j = 0; j < swept.size(); ++j) resolved[j] = resolve(cross[swept[j]]);
  if (!resolved.empty()) {
    std::vector<core::PairMoments> moments;
    AFFINITY_ASSIGN_OR_RETURN(
        const std::vector<double> swept_values,
        core::EvaluateCrossPairs(measure, resolved, window, exec_,
                                 use_cache ? &moments : nullptr, &cross_sweep_stats_,
                                 SnapshotAnchor()));
    for (std::size_t j = 0; j < swept.size(); ++j) {
      values[swept[j]] = swept_values[j];
      if (use_cache) cross_cache_.Store(swept[j], cross_generation_, moments[j]);
    }
  }
  if (!blend || measure == Measure::kCorrelation) return values;
  // Blend: snapshot correlation carries the structure, live rolling
  // moments the marginals (same semantics as the per-shard blend). In
  // blend mode `resolved` covers every cross pair, index-aligned.
  AFFINITY_ASSIGN_OR_RETURN(const std::vector<double> rhos,
                            core::EvaluateCrossPairs(Measure::kCorrelation, resolved, window,
                                                     exec_, nullptr, &cross_sweep_stats_,
                                                     SnapshotAnchor()));
  for (std::size_t i = 0; i < cross.size(); ++i) {
    const ts::SequencePair e = cross[i];
    const ts::RollingStats& ru =
        shards_[partitioner.shard_of(e.u)].rolling_stats()[partitioner.local_id(e.u)];
    const ts::RollingStats& rv =
        shards_[partitioner.shard_of(e.v)].rolling_stats()[partitioner.local_id(e.v)];
    values[i] = core::BlendPairMeasure(measure, rhos[i], values[i], ru, rv);
  }
  return values;
}

double ShardedAffinity::GlobalQualityScore(ts::SeriesId global) const {
  const SeriesPartitioner& partitioner = router_.partitioner();
  const std::vector<double>& scores = shards_[partitioner.shard_of(global)].quality_scores();
  const ts::SeriesId local = partitioner.local_id(global);
  return local < scores.size() ? scores[local] : 1.0;
}

StatusOr<ShardedSelection> ShardedAffinity::SelectAcrossShards(
    Measure measure, bool (*keep)(double, double, double), double a, double b,
    double min_quality, const std::function<core::PlanChoice(const QueryPlanner&)>& plan,
    const std::function<StatusOr<core::SelectionResult>(
        const core::StreamingAffinity&, const FreshnessOptions&, FreshnessReport*)>& shard_query,
    const FreshnessOptions& options) const {
  AFFINITY_ASSIGN_OR_RETURN(ExecutedPlan resolved, ResolveShardPlan(plan, options));
  ShardedSelection out;
  out.shards = Freshness(options);
  FreshnessOptions per_shard = options;
  if (options.method == QueryMethod::kAuto) per_shard.method = resolved.method;

  const SeriesPartitioner& partitioner = router_.partitioner();
  const bool location = core::IsLocation(measure);
  const std::size_t n_shards = shards_.size();
  // One chunk per shard, like Append: per-shard index scans run
  // concurrently on the pool; every write below is shard-disjoint.
  std::vector<std::vector<ts::SeriesId>> series_runs(n_shards);
  std::vector<std::vector<ts::SequencePair>> pair_runs(n_shards);
  std::vector<core::PruneStats> prunes(n_shards);
  std::vector<core::AnswerQuality> qualities(n_shards);
  AFFINITY_RETURN_IF_ERROR(TryParallelChunks(
      exec_, n_shards, [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) -> Status {
        for (std::size_t s = lo; s < hi; ++s) {
          FreshnessReport report;
          AFFINITY_ASSIGN_OR_RETURN(core::SelectionResult r,
                                    shard_query(shards_[s], per_shard, &report));
          out.shards[s] = ShardFreshness{report.snapshot_age, report.blended};
          prunes[s] = r.prune;
          qualities[s] = r.quality;
          if (location) {
            for (ts::SeriesId& v : r.series) v = partitioner.global_id(s, v);
            std::sort(r.series.begin(), r.series.end());
            series_runs[s] = std::move(r.series);
          } else {
            for (ts::SequencePair& e : r.pairs) {
              e = ts::SequencePair(partitioner.global_id(s, e.u), partitioner.global_id(s, e.v));
            }
            std::sort(r.pairs.begin(), r.pairs.end());
            pair_runs[s] = std::move(r.pairs);
          }
        }
        return Status::OK();
      }));
  for (const core::PruneStats& p : prunes) out.result.prune += p;
  // The merged stamp: populated only when every shard answered with a
  // quality surface; min over shard minima, exclusions summed (cross-pair
  // exclusions added below).
  core::AnswerQuality merged;
  merged.populated = n_shards > 0;
  for (const core::AnswerQuality& q : qualities) {
    merged.populated = merged.populated && q.populated;
    merged.min_score = std::min(merged.min_score, q.min_score);
    merged.excluded += q.excluded;
  }
  if (!location && n_shards > 1) {
    AFFINITY_ASSIGN_OR_RETURN(const std::vector<double> values,
                              CrossPairValues(measure, NeedsBlend(options)));
    const std::vector<ts::SequencePair>& cross = router_.cross_pairs();
    std::vector<ts::SequencePair> kept;
    for (std::size_t i = 0; i < cross.size(); ++i) {
      if (!keep(values[i], a, b)) continue;
      // No shard model covers a cross pair, so its quality predicate runs
      // here, against each endpoint's shard-local surface — same
      // conjunctive semantics as QueryEngine's post-filter.
      const double su = GlobalQualityScore(cross[i].u);
      const double sv = GlobalQualityScore(cross[i].v);
      if (min_quality > 0.0 && (su < min_quality || sv < min_quality)) {
        ++merged.excluded;
        continue;
      }
      if (merged.populated) merged.min_score = std::min(merged.min_score, std::min(su, sv));
      kept.push_back(cross[i]);
    }
    pair_runs.push_back(std::move(kept));  // already lex-sorted
  }
  if (location) {
    out.result.series = MergeSortedRuns(series_runs, std::less<ts::SeriesId>{});
  } else {
    out.result.pairs = MergeSortedRuns(pair_runs, std::less<ts::SequencePair>{});
  }
  out.result.quality = merged;
  if (min_quality > 0.0) {
    core::AnnotateQualityFiltered(&resolved, min_quality, merged.excluded);
  }
  out.result.plan = std::move(resolved);
  return out;
}

StatusOr<ShardedSelection> ShardedAffinity::Met(const core::MetRequest& request,
                                                const FreshnessOptions& options) const {
  return SelectAcrossShards(
      request.measure, request.greater ? core::KeepGreater : core::KeepLesser, request.tau, 0.0,
      request.min_quality,
      [&](const QueryPlanner& planner) { return planner.PlanMet(request.measure); },
      [&](const core::StreamingAffinity& shard, const FreshnessOptions& per_shard,
          FreshnessReport* report) { return shard.Met(request, per_shard, report); },
      options);
}

StatusOr<ShardedSelection> ShardedAffinity::Mer(const core::MerRequest& request,
                                                const FreshnessOptions& options) const {
  if (request.lo > request.hi) return Status::InvalidArgument("MER requires lo <= hi");
  return SelectAcrossShards(
      request.measure, core::KeepInside, request.lo, request.hi, request.min_quality,
      [&](const QueryPlanner& planner) { return planner.PlanMer(request.measure); },
      [&](const core::StreamingAffinity& shard, const FreshnessOptions& per_shard,
          FreshnessReport* report) { return shard.Mer(request, per_shard, report); },
      options);
}

StatusOr<ShardedTopK> ShardedAffinity::TopK(const core::TopKRequest& request,
                                            const FreshnessOptions& options) const {
  AFFINITY_ASSIGN_OR_RETURN(
      ExecutedPlan plan,
      ResolveShardPlan(
          [&](const QueryPlanner& planner) {
            return planner.PlanTopK(request.measure, request.k);
          },
          options));
  ShardedTopK out;
  out.shards = Freshness(options);
  FreshnessOptions per_shard = options;
  if (options.method == QueryMethod::kAuto) per_shard.method = plan.method;

  const SeriesPartitioner& partitioner = router_.partitioner();
  std::vector<ScapeTopKResult> runs(shards_.size());
  std::vector<core::AnswerQuality> qualities(shards_.size());
  AFFINITY_RETURN_IF_ERROR(TryParallelChunks(
      exec_, shards_.size(), [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) -> Status {
        for (std::size_t s = lo; s < hi; ++s) {
          FreshnessReport report;
          AFFINITY_ASSIGN_OR_RETURN(core::TopKResult r,
                                    shards_[s].TopK(request, per_shard, &report));
          out.shards[s] = ShardFreshness{report.snapshot_age, report.blended};
          qualities[s] = r.quality;
          for (ScapeTopKEntry& entry : r.entries) {
            if (entry.has_series()) {
              entry.series = partitioner.global_id(s, entry.series);
            } else {
              entry.pair = ts::SequencePair(partitioner.global_id(s, entry.pair.u),
                                            partitioner.global_id(s, entry.pair.v));
            }
          }
          runs[s] = std::move(r);
        }
        return Status::OK();
      }));
  core::AnswerQuality merged;
  merged.populated = !shards_.empty();
  for (const core::AnswerQuality& q : qualities) {
    merged.populated = merged.populated && q.populated;
    merged.excluded += q.excluded;
  }
  if (!core::IsLocation(request.measure) && shards_.size() > 1) {
    AFFINITY_ASSIGN_OR_RETURN(const std::vector<double> values,
                              CrossPairValues(request.measure, NeedsBlend(options)));
    const std::vector<ts::SequencePair>& cross = router_.cross_pairs();
    ScapeTopKResult cross_run;
    cross_run.entries.reserve(cross.size());
    for (std::size_t i = 0; i < cross.size(); ++i) {
      // Cross pairs compete only when both endpoints satisfy the quality
      // predicate (per-shard answers already restricted their own
      // competition).
      if (request.min_quality > 0.0 &&
          (GlobalQualityScore(cross[i].u) < request.min_quality ||
           GlobalQualityScore(cross[i].v) < request.min_quality)) {
        ++merged.excluded;
        continue;
      }
      cross_run.entries.push_back(ScapeTopKEntry{cross[i], core::kNoSeries, values[i]});
    }
    const std::size_t k = std::min(request.k, cross_run.entries.size());
    const auto better = [&](const ScapeTopKEntry& a, const ScapeTopKEntry& b) {
      return request.largest ? a.value > b.value : a.value < b.value;
    };
    std::partial_sort(cross_run.entries.begin(),
                      cross_run.entries.begin() + static_cast<long>(k), cross_run.entries.end(),
                      better);
    cross_run.entries.resize(k);
    cross_run.examined = cross.size();
    runs.push_back(std::move(cross_run));
  }
  static_cast<ScapeTopKResult&>(out.result) = core::MergeTopK(runs, request.k, request.largest);
  if (merged.populated) {
    // Exact stamp over the entries that actually survived the merge.
    for (const ScapeTopKEntry& e : out.result.entries) {
      if (e.has_series()) {
        merged.min_score = std::min(merged.min_score, GlobalQualityScore(e.series));
      } else {
        merged.min_score = std::min(merged.min_score,
                                    std::min(GlobalQualityScore(e.pair.u),
                                             GlobalQualityScore(e.pair.v)));
      }
    }
  }
  out.result.quality = merged;
  if (request.min_quality > 0.0) {
    core::AnnotateQualityFiltered(&plan, request.min_quality, merged.excluded);
  }
  out.result.plan = std::move(plan);
  return out;
}

StatusOr<ShardedMec> ShardedAffinity::Mec(const core::MecRequest& request,
                                          const FreshnessOptions& options) const {
  AFFINITY_ASSIGN_OR_RETURN(
      ExecutedPlan plan,
      ResolveShardPlan(
          [&](const QueryPlanner& planner) {
            return planner.PlanMec(request.measure, request.ids.size());
          },
          options));
  if (request.ids.empty()) return Status::InvalidArgument("MEC requires a non-empty id set");
  const SeriesPartitioner& partitioner = router_.partitioner();
  for (const ts::SeriesId id : request.ids) {
    if (id >= partitioner.n()) {
      return Status::OutOfRange("series id " + std::to_string(id) + " out of range (n=" +
                                std::to_string(partitioner.n()) + ")");
    }
  }
  ShardedMec out;
  out.shards = Freshness(options);
  FreshnessOptions per_shard = options;
  if (options.method == QueryMethod::kAuto) per_shard.method = plan.method;

  // Slice the request per shard, remembering each id's request position.
  std::vector<std::vector<std::size_t>> positions(shards_.size());
  std::vector<core::MecRequest> slices(shards_.size());
  for (std::size_t i = 0; i < request.ids.size(); ++i) {
    const std::size_t s = partitioner.shard_of(request.ids[i]);
    positions[s].push_back(i);
    slices[s].measure = request.measure;
    slices[s].min_quality = request.min_quality;
    slices[s].ids.push_back(partitioner.local_id(request.ids[i]));
  }

  const std::size_t count = request.ids.size();
  const bool location = core::IsLocation(request.measure);
  if (location) {
    out.response.location = la::Vector(count);
  } else {
    out.response.pair_values = la::Matrix(count, count);
  }
  // One chunk per shard (writes are shard-disjoint request positions).
  std::vector<core::AnswerQuality> qualities(shards_.size());
  std::vector<char> sliced(shards_.size(), 0);
  AFFINITY_RETURN_IF_ERROR(TryParallelChunks(
      exec_, shards_.size(), [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) -> Status {
        for (std::size_t s = lo; s < hi; ++s) {
          if (slices[s].ids.empty()) continue;
          FreshnessReport report;
          AFFINITY_ASSIGN_OR_RETURN(core::MecResponse r,
                                    shards_[s].Mec(slices[s], per_shard, &report));
          out.shards[s] = ShardFreshness{report.snapshot_age, report.blended};
          qualities[s] = r.quality;
          sliced[s] = 1;
          if (location) {
            for (std::size_t t = 0; t < positions[s].size(); ++t) {
              out.response.location[positions[s][t]] = r.location[t];
            }
          } else {
            for (std::size_t a = 0; a < positions[s].size(); ++a) {
              for (std::size_t b = 0; b < positions[s].size(); ++b) {
                out.response.pair_values(positions[s][a], positions[s][b]) = r.pair_values(a, b);
              }
            }
          }
        }
        return Status::OK();
      }));
  if (!location) {
    // Cross-shard cells: resolve each requested (i, j) spanning two shards
    // against the aligned snapshots and evaluate naively (blended when the
    // staleness bound trips). Warm watched pairs answer from their cached
    // co-moments instead — the router's cross list is lex-sorted, so each
    // cell's cross index resolves by binary search.
    const bool blend = NeedsBlend(options);
    const bool use_cache = !blend && cross_cache_.enabled();
    const std::vector<ts::SequencePair>& cross = router_.cross_pairs();
    std::vector<CrossPair> resolved;
    std::vector<std::pair<std::size_t, std::size_t>> cells;
    std::vector<std::size_t> cell_cross_index;  // aligned with cells; for Store
    for (std::size_t i = 0; i < count; ++i) {
      for (std::size_t j = i + 1; j < count; ++j) {
        if (partitioner.shard_of(request.ids[i]) == partitioner.shard_of(request.ids[j])) {
          continue;
        }
        const ts::SeriesId u = request.ids[i];
        const ts::SeriesId v = request.ids[j];
        const ts::SequencePair e(u, v);
        const auto it = std::lower_bound(cross.begin(), cross.end(), e);
        const std::size_t cross_index = static_cast<std::size_t>(it - cross.begin());
        if (use_cache) {
          core::PairMoments pm;
          if (cross_cache_.Lookup(cross_index, cross_generation_, &pm)) {
            AFFINITY_ASSIGN_OR_RETURN(const double value,
                                      core::PairMeasureFromMoments(request.measure, pm));
            out.response.pair_values(i, j) = value;
            out.response.pair_values(j, i) = value;
            continue;
          }
        }
        const core::StreamingAffinity& su = shards_[partitioner.shard_of(u)];
        const core::StreamingAffinity& sv = shards_[partitioner.shard_of(v)];
        resolved.push_back(
            CrossPair{e, su.framework()->data().ColumnData(partitioner.local_id(u)),
                      sv.framework()->data().ColumnData(partitioner.local_id(v))});
        cells.emplace_back(i, j);
        cell_cross_index.push_back(cross_index);
      }
    }
    if (!resolved.empty()) {
      const std::size_t window = options_.streaming.window;
      std::vector<core::PairMoments> moments;
      AFFINITY_ASSIGN_OR_RETURN(
          std::vector<double> values,
          core::EvaluateCrossPairs(request.measure, resolved, window, exec_,
                                   use_cache ? &moments : nullptr, &cross_sweep_stats_,
                                   SnapshotAnchor()));
      if (use_cache) {
        for (std::size_t idx = 0; idx < resolved.size(); ++idx) {
          cross_cache_.Store(cell_cross_index[idx], cross_generation_, moments[idx]);
        }
      }
      if (blend && request.measure != Measure::kCorrelation) {
        AFFINITY_ASSIGN_OR_RETURN(
            const std::vector<double> rhos,
            core::EvaluateCrossPairs(Measure::kCorrelation, resolved, window, exec_, nullptr,
                                     &cross_sweep_stats_, SnapshotAnchor()));
        for (std::size_t idx = 0; idx < resolved.size(); ++idx) {
          const ts::SeriesId u = request.ids[cells[idx].first];
          const ts::SeriesId v = request.ids[cells[idx].second];
          const ts::RollingStats& ru =
              shards_[partitioner.shard_of(u)].rolling_stats()[partitioner.local_id(u)];
          const ts::RollingStats& rv =
              shards_[partitioner.shard_of(v)].rolling_stats()[partitioner.local_id(v)];
          values[idx] = core::BlendPairMeasure(request.measure, rhos[idx], values[idx], ru, rv);
        }
      }
      for (std::size_t idx = 0; idx < cells.size(); ++idx) {
        out.response.pair_values(cells[idx].first, cells[idx].second) = values[idx];
        out.response.pair_values(cells[idx].second, cells[idx].first) = values[idx];
      }
    }
  }
  // Merged stamp over the shards the request actually touched (every id
  // lands in exactly one slice, and each slice already enforced the
  // FailedPrecondition contract for its ids).
  core::AnswerQuality merged;
  merged.populated = true;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!sliced[s]) continue;
    merged.populated = merged.populated && qualities[s].populated;
    merged.min_score = std::min(merged.min_score, qualities[s].min_score);
    merged.excluded += qualities[s].excluded;
  }
  out.response.quality = merged;
  out.response.plan = std::move(plan);
  return out;
}

// ---------------------------------------------------------------------------
// Shard-manifest persistence.
// ---------------------------------------------------------------------------

Status ShardedAffinity::Save(const std::string& path) const {
  if (!ready()) {
    return Status::FailedPrecondition("every shard needs a snapshot before Save");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  const SeriesPartitioner& partitioner = router_.partitioner();

  out.write(kManifestMagic, sizeof kManifestMagic);
  WriteU32(out, kManifestVersion);
  WriteU64(out, partitioner.shards());
  WriteU64(out, partitioner.n());
  WriteU32(out, static_cast<std::uint32_t>(partitioner.scheme()));
  for (std::size_t i = 0; i < partitioner.n(); ++i) {
    WriteU32(out, static_cast<std::uint32_t>(partitioner.shard_of(static_cast<ts::SeriesId>(i))));
  }
  // Streaming geometry and build/maintenance tuning the restored
  // deployment must agree on (a post-restore escalation rebuilds with
  // these, so they cannot silently reset to defaults).
  WriteU64(out, options_.streaming.window);
  WriteU64(out, options_.streaming.rebuild_interval);
  WriteU32(out, options_.streaming.mode == core::UpdateMode::kIncremental ? 1 : 0);
  WriteU64(out, options_.streaming.segment_capacity);
  WriteU64(out, options_.streaming.build.afclst.k);
  WriteU32(out, static_cast<std::uint32_t>(options_.streaming.build.afclst.max_iterations));
  WriteU32(out, static_cast<std::uint32_t>(options_.streaming.build.afclst.min_changes));
  WriteU64(out, options_.streaming.build.afclst.seed);
  WriteU32(out, options_.streaming.build.symex.cache_pseudo_inverse ? 1 : 0);
  WriteU64(out, options_.streaming.build.symex.max_relationships);
  WriteU64(out, options_.streaming.build.scape.btree_fanout);
  WriteU32(out, options_.streaming.build.build_scape ? 1 : 0);
  WriteU32(out, options_.streaming.build.build_dft ? 1 : 0);
  WriteU64(out, options_.streaming.build.dft_coefficients);
  WriteF64(out, options_.streaming.incremental.refit_drift_threshold);
  WriteU64(out, options_.streaming.incremental.exact_refit_period);
  WriteF64(out, options_.streaming.incremental.escalation_factor);
  WriteF64(out, options_.streaming.incremental.escalation_slack);
  WriteU64(out, options_.cross_cache.budget);
  WriteU64(out, options_.cross_cache.exact_resync_period);
  // One model payload per shard (serialize.h framing).
  for (const core::StreamingAffinity& shard : shards_) {
    AFFINITY_RETURN_IF_ERROR(core::WriteModelStream(shard.framework()->model(), out));
  }
  out.flush();
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

StatusOr<ShardedAffinity> ShardedAffinity::Load(const std::string& path, std::size_t threads) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");

  char magic[4] = {};
  in.read(magic, sizeof magic);
  if (in.gcount() != 4 || std::memcmp(magic, kManifestMagic, 4) != 0) {
    return Status::InvalidArgument("'" + path + "' is not an AFFINITY shard manifest");
  }
  std::uint32_t version = 0;
  if (!ReadU32(in, &version) || version < kMinManifestVersion || version > kManifestVersion) {
    return Status::InvalidArgument("unsupported shard manifest version");
  }
  std::uint64_t shards = 0;
  std::uint64_t n = 0;
  std::uint32_t scheme_raw = 0;
  if (!ReadU64(in, &shards) || !ReadU64(in, &n) || !ReadU32(in, &scheme_raw) || shards == 0 ||
      shards > (1u << 20) || n > (1u << 28) || scheme_raw > 1) {
    return Status::InvalidArgument("'" + path + "': corrupt shard manifest header");
  }
  std::vector<std::uint32_t> assignment(n);
  for (auto& a : assignment) {
    if (!ReadU32(in, &a)) {
      return Status::InvalidArgument("'" + path + "': corrupt shard assignment");
    }
  }
  ShardedOptions options;
  options.shards = static_cast<std::size_t>(shards);
  options.partition = static_cast<PartitionScheme>(scheme_raw);
  std::uint64_t window = 0;
  std::uint64_t interval = 0;
  std::uint32_t mode = 0;
  std::uint64_t segment_capacity = 0;
  if (!ReadU64(in, &window) || !ReadU64(in, &interval) || !ReadU32(in, &mode) ||
      !ReadU64(in, &segment_capacity) || mode > 1) {
    return Status::InvalidArgument("'" + path + "': corrupt streaming geometry");
  }
  options.streaming.window = static_cast<std::size_t>(window);
  options.streaming.rebuild_interval = static_cast<std::size_t>(interval);
  options.streaming.mode = mode == 1 ? core::UpdateMode::kIncremental : core::UpdateMode::kRebuild;
  options.streaming.segment_capacity = static_cast<std::size_t>(segment_capacity);
  std::uint64_t k = 0;
  std::uint32_t max_iterations = 0;
  std::uint32_t min_changes = 0;
  std::uint64_t afclst_seed = 0;
  std::uint32_t cache_pinv = 0;
  std::uint64_t max_relationships = 0;
  std::uint64_t btree_fanout = 0;
  std::uint32_t build_scape = 0;
  std::uint32_t build_dft = 0;
  std::uint64_t dft_coefficients = 0;
  std::uint64_t refit_period = 0;
  core::IncrementalOptions incremental;
  if (!ReadU64(in, &k) || !ReadU32(in, &max_iterations) || !ReadU32(in, &min_changes) ||
      !ReadU64(in, &afclst_seed) || !ReadU32(in, &cache_pinv) ||
      !ReadU64(in, &max_relationships) || !ReadU64(in, &btree_fanout) ||
      !ReadU32(in, &build_scape) || !ReadU32(in, &build_dft) ||
      !ReadU64(in, &dft_coefficients) || !ReadF64(in, &incremental.refit_drift_threshold) ||
      !ReadU64(in, &refit_period) || !ReadF64(in, &incremental.escalation_factor) ||
      !ReadF64(in, &incremental.escalation_slack) || cache_pinv > 1 || build_scape > 1 ||
      build_dft > 1) {
    return Status::InvalidArgument("'" + path + "': corrupt build-tuning section");
  }
  options.streaming.build.afclst.k = static_cast<std::size_t>(k);
  options.streaming.build.afclst.max_iterations = static_cast<int>(max_iterations);
  options.streaming.build.afclst.min_changes = static_cast<int>(min_changes);
  options.streaming.build.afclst.seed = afclst_seed;
  options.streaming.build.symex.cache_pseudo_inverse = cache_pinv == 1;
  options.streaming.build.symex.max_relationships = static_cast<std::size_t>(max_relationships);
  options.streaming.build.scape.btree_fanout = static_cast<std::size_t>(btree_fanout);
  options.streaming.build.build_scape = build_scape == 1;
  options.streaming.build.build_dft = build_dft == 1;
  options.streaming.build.dft_coefficients = static_cast<std::size_t>(dft_coefficients);
  incremental.exact_refit_period = static_cast<std::size_t>(refit_period);
  options.streaming.incremental = incremental;
  if (version >= 2) {
    std::uint64_t cache_budget = 0;
    std::uint64_t cache_resync = 0;
    if (!ReadU64(in, &cache_budget) || !ReadU64(in, &cache_resync) || cache_resync == 0) {
      return Status::InvalidArgument("'" + path + "': corrupt cross-cache section");
    }
    options.cross_cache.budget = static_cast<std::size_t>(cache_budget);
    options.cross_cache.exact_resync_period = static_cast<std::size_t>(cache_resync);
  }  // v1: pre-cache manifests keep the CrossCacheOptions defaults.
  options.streaming.build.threads = threads;

  AFFINITY_ASSIGN_OR_RETURN(
      SeriesPartitioner partitioner,
      SeriesPartitioner::FromAssignment(assignment, options.shards, options.partition));

  std::unique_ptr<ThreadPool> pool;
  if (threads != 1) pool = std::make_unique<ThreadPool>(threads);
  ShardedAffinity service(options, std::move(partitioner), std::move(pool));
  service.shards_.reserve(options.shards);
  for (std::size_t s = 0; s < options.shards; ++s) {
    auto model = core::ReadModelStream(in);
    if (!model.ok()) {
      return Status(model.status().code(), "'" + path + "' shard " + std::to_string(s) + ": " +
                                               std::string(model.status().message()));
    }
    if (model->data().n() != service.router_.partitioner().group(s).size()) {
      return Status::InvalidArgument("'" + path + "' shard " + std::to_string(s) +
                                     ": model width disagrees with the shard assignment");
    }
    AFFINITY_ASSIGN_OR_RETURN(
        core::StreamingAffinity stream,
        core::StreamingAffinity::Restore(std::move(model).value(), options.streaming,
                                         service.exec_));
    service.shards_.push_back(std::move(stream));
  }
  service.append_results_.resize(options.shards);
  // The co-moment cache restores cold (the manifest carries no rings):
  // its stamps stay invalid until a full window of appends has been
  // observed and a lockstep refresh stamps it.
  service.cross_cache_ = CrossMomentCache(service.router_.cross_pairs(),
                                          options.streaming.window, options.cross_cache);
  // Restore-ordering audit (ISSUE 5): the restored snapshots form a real
  // generation, so the router's counter must not sit at the cache's
  // never-stamped sentinel 0 — a Lookup/Store at 0 would alias every
  // Invalidate()d entry (now also CHECKed inside the cache). Starting at
  // 1 makes post-restore sweeps legal miss-fills: the first query misses
  // (nothing is stamped), re-fills at generation 1, and repeats serve
  // warm until the next lockstep refresh advances the generation.
  service.cross_generation_ = 1;
  // Logical row numbering restarts at `window` (each restored shard's
  // resident window is its whole history).
  service.rows_ = options.streaming.window;
  // First router epoch: the restored shard snapshots form generation 1
  // (every restored shard published in Restore), with an all-cold cross
  // view — serve sweeps fill in until the first lockstep refresh.
  service.PublishRouterSnapshot();
  return service;
}

}  // namespace affinity::shard
