#include "shard/cross_cache.h"

#include <unordered_map>

#include "common/check.h"
#include "core/kernels.h"

namespace affinity::shard {

CrossMomentCache::CrossMomentCache(const std::vector<ts::SequencePair>& cross_pairs,
                                   std::size_t window, const CrossCacheOptions& options)
    : window_(window),
      exact_resync_period_(options.exact_resync_period < 1 ? 1 : options.exact_resync_period) {
  const std::size_t watched =
      options.budget < cross_pairs.size() ? options.budget : cross_pairs.size();
  if (watched == 0 || window == 0) return;
  // Distinct series across the watch-list share one ring each.
  std::unordered_map<ts::SeriesId, std::size_t> slot_of;
  entries_.reserve(watched);
  for (std::size_t i = 0; i < watched; ++i) {
    PairEntry entry;
    for (const bool first : {true, false}) {
      const ts::SeriesId id = first ? cross_pairs[i].u : cross_pairs[i].v;
      auto [it, inserted] = slot_of.try_emplace(id, series_.size());
      if (inserted) {
        SeriesSlot slot;
        slot.id = id;
        slot.ring.assign(window, 0.0);
        series_.push_back(std::move(slot));
      }
      (first ? entry.u_slot : entry.v_slot) = it->second;
    }
    entries_.push_back(entry);
  }
}

void CrossMomentCache::Observe(const std::vector<double>& row) {
  if (entries_.empty()) return;
  const bool full = count_ == window_;
  // Pairs first: the eviction needs both rings' outgoing values, which
  // the per-series update below overwrites.
  for (PairEntry& entry : entries_) {
    const SeriesSlot& su = series_[entry.u_slot];
    const SeriesSlot& sv = series_[entry.v_slot];
    if (full) entry.dot -= su.ring[head_] * sv.ring[head_];
    entry.dot += row[su.id] * row[sv.id];
  }
  for (SeriesSlot& slot : series_) {
    const double x = row[slot.id];
    if (full) {
      const double evicted = slot.ring[head_];
      slot.sum -= evicted;
      slot.sumsq -= evicted * evicted;
    }
    slot.ring[head_] = x;
    slot.sum += x;
    slot.sumsq += x * x;
  }
  head_ = (head_ + 1) % window_;
  if (!full) ++count_;
  ++stats_.observed_rows;
}

void CrossMomentCache::Stamp(std::uint64_t generation, std::size_t anchor) {
  // 0 is the never-stamped sentinel Invalidate() writes into entries; a
  // stamp at 0 would make dropped entries indistinguishable from fresh
  // ones (the ISSUE 5 restore-ordering audit).
  AFFINITY_CHECK_NE(generation, std::uint64_t{0});
  if (entries_.empty()) return;
  if (count_ < window_) {
    // The rings do not cover the snapshot window yet (e.g. a restored
    // deployment): anything previously stamped is stale.
    Invalidate();
    return;
  }
  // Periodic exact re-materialization: unroll every ring into snapshot
  // row order (oldest → newest — exactly the snapshot column layout) and
  // rebuild all accumulators with the canonical blocked kernels at the
  // snapshot's grid anchor, so the stamped moments are bitwise identical
  // to the raw cross sweep.
  const bool exact = stamps_since_resync_ == 0;
  std::vector<std::vector<double>> unrolled;
  if (exact) {
    unrolled.resize(series_.size());
    for (std::size_t s = 0; s < series_.size(); ++s) {
      unrolled[s].resize(window_);
      for (std::size_t i = 0; i < window_; ++i) {
        unrolled[s][i] = series_[s].ring[(head_ + i) % window_];
      }
      const core::kernels::Marginals marg =
          core::kernels::ColumnMarginals(unrolled[s].data(), window_, anchor);
      series_[s].sum = marg.sum;
      series_[s].sumsq = marg.sumsq;
    }
    ++stats_.exact_stamps;
  }
  for (PairEntry& entry : entries_) {
    if (exact) {
      entry.dot = core::kernels::BlockedDot(unrolled[entry.u_slot].data(),
                                            unrolled[entry.v_slot].data(), window_, anchor);
    }
    const SeriesSlot& su = series_[entry.u_slot];
    const SeriesSlot& sv = series_[entry.v_slot];
    entry.stamped =
        core::PairMoments{window_, su.sum, su.sumsq, sv.sum, sv.sumsq, entry.dot};
    entry.stamped_generation = generation;
  }
  ++stats_.stamps;
  stamps_since_resync_ = (stamps_since_resync_ + 1) % exact_resync_period_;
}

void CrossMomentCache::Invalidate() {
  if (entries_.empty()) return;
  for (PairEntry& entry : entries_) entry.stamped_generation = 0;
  stamps_since_resync_ = 0;  // the next stamp re-materializes exactly
  ++stats_.invalidations;
}

bool CrossMomentCache::Lookup(std::size_t cross_index, std::uint64_t generation,
                              core::PairMoments* out) {
  // A lookup at the sentinel would match every Invalidate()d entry and
  // serve dropped moments as hits; the router guarantees generation ≥ 1
  // from construction and restore alike (ShardedAffinity ordering audit).
  AFFINITY_CHECK_NE(generation, std::uint64_t{0});
  if (!Watches(cross_index)) return false;
  PairEntry& entry = entries_[cross_index];
  if (entry.stamped_generation != generation) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  *out = entry.stamped;
  return true;
}

void CrossMomentCache::Store(std::size_t cross_index, std::uint64_t generation,
                             const core::PairMoments& pm) {
  AFFINITY_CHECK_NE(generation, std::uint64_t{0});
  if (!Watches(cross_index)) return;
  PairEntry& entry = entries_[cross_index];
  entry.stamped = pm;
  entry.stamped_generation = generation;
}

std::size_t CrossMomentCache::StampedCount(std::uint64_t generation) const {
  if (generation == 0) return 0;
  std::size_t count = 0;
  for (const PairEntry& entry : entries_) {
    if (entry.stamped_generation == generation) ++count;
  }
  return count;
}

}  // namespace affinity::shard
