#include "shard/cross_cache.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/thread_annotations.h"
#include "core/kernels.h"

namespace affinity::shard {

CrossMomentCache::CrossMomentCache(const std::vector<ts::SequencePair>& cross_pairs,
                                   std::size_t window, const CrossCacheOptions& options)
    : window_(window),
      exact_resync_period_(options.exact_resync_period < 1 ? 1 : options.exact_resync_period) {
  const std::size_t watched =
      options.budget < cross_pairs.size() ? options.budget : cross_pairs.size();
  if (watched == 0 || window == 0) return;
  cross_pairs_ = cross_pairs;
  heat_.assign(cross_pairs.size(), 0);
  watch_of_.assign(cross_pairs.size(), kUnwatched);
  // Distinct series across the watch-list share one ring each.
  std::unordered_map<ts::SeriesId, std::size_t> slot_of;
  entries_.reserve(watched);
  for (std::size_t i = 0; i < watched; ++i) {
    PairEntry entry;
    entry.cross_index = i;
    for (const bool first : {true, false}) {
      const ts::SeriesId id = first ? cross_pairs[i].u : cross_pairs[i].v;
      auto [it, inserted] = slot_of.try_emplace(id, series_.size());
      if (inserted) {
        SeriesSlot slot;
        slot.id = id;
        slot.ring.assign(window, 0.0);
        series_.push_back(std::move(slot));
      }
      (first ? entry.u_slot : entry.v_slot) = it->second;
    }
    watch_of_[i] = entries_.size();
    entries_.push_back(entry);
  }
}

AFFINITY_HOT void CrossMomentCache::Observe(const std::vector<double>& row) {
  if (entries_.empty()) return;
  const bool full = count_ == window_;
  // Pairs first: the eviction needs both rings' outgoing values, which
  // the per-series update below overwrites. A freshly promoted slot's
  // ring is zero-filled, so its "evictions" subtract exact zeros and the
  // rolling invariant dot == Σ ring_u[i]·ring_v[i] is preserved from the
  // moment RewatchEntry materializes it.
  for (PairEntry& entry : entries_) {
    const SeriesSlot& su = series_[entry.u_slot];
    const SeriesSlot& sv = series_[entry.v_slot];
    if (full) entry.dot -= su.ring[head_] * sv.ring[head_];
    entry.dot += row[su.id] * row[sv.id];
  }
  for (SeriesSlot& slot : series_) {
    const double x = row[slot.id];
    if (full) {
      const double evicted = slot.ring[head_];
      slot.sum -= evicted;
      slot.sumsq -= evicted * evicted;
    }
    slot.ring[head_] = x;
    slot.sum += x;
    slot.sumsq += x * x;
    if (slot.filled < window_) ++slot.filled;
  }
  head_ = (head_ + 1) % window_;
  if (!full) ++count_;
  ++stats_.observed_rows;
}

std::size_t CrossMomentCache::EnsureSlot(ts::SeriesId id) {
  // series_ is O(2·budget) — a linear probe beats maintaining an id map
  // through the slot GC below.
  for (std::size_t s = 0; s < series_.size(); ++s) {
    if (series_[s].id == id) return s;
  }
  SeriesSlot slot;
  slot.id = id;
  slot.ring.assign(window_, 0.0);
  series_.push_back(std::move(slot));
  return series_.size() - 1;
}

void CrossMomentCache::RewatchEntry(std::size_t slot, std::size_t new_index,
                                    std::size_t anchor) {
  PairEntry& entry = entries_[slot];
  watch_of_[entry.cross_index] = kUnwatched;
  entry.cross_index = new_index;
  watch_of_[new_index] = slot;
  entry.u_slot = EnsureSlot(cross_pairs_[new_index].u);
  entry.v_slot = EnsureSlot(cross_pairs_[new_index].v);
  entry.stamped_generation = 0;
  // Materialize the rolling Σuv invariant over the current rings (zero-
  // padded where a fresh slot has not observed a full window yet) with
  // the canonical blocked kernel, in snapshot row order.
  std::vector<double> u(window_);
  std::vector<double> v(window_);
  for (std::size_t i = 0; i < window_; ++i) {
    u[i] = series_[entry.u_slot].ring[(head_ + i) % window_];
    v[i] = series_[entry.v_slot].ring[(head_ + i) % window_];
  }
  entry.dot = core::kernels::BlockedDot(u.data(), v.data(), window_, anchor);
}

void CrossMomentCache::CollectSeriesSlots() {
  std::vector<std::size_t> remap(series_.size(), kUnwatched);
  std::vector<SeriesSlot> kept;
  kept.reserve(series_.size());
  for (PairEntry& entry : entries_) {
    for (std::size_t* slot : {&entry.u_slot, &entry.v_slot}) {
      if (remap[*slot] == kUnwatched) {
        remap[*slot] = kept.size();
        kept.push_back(std::move(series_[*slot]));
      }
      *slot = remap[*slot];
    }
  }
  series_ = std::move(kept);
}

void CrossMomentCache::PromoteHot(std::size_t anchor) {
  if (entries_.size() < cross_pairs_.size()) {
    // Hottest unwatched pairs, heat desc then cross index asc.
    std::vector<std::size_t> cands;
    for (std::size_t ci = 0; ci < cross_pairs_.size(); ++ci) {
      if (watch_of_[ci] == kUnwatched && heat_[ci] > 0) cands.push_back(ci);
    }
    if (!cands.empty()) {
      std::sort(cands.begin(), cands.end(), [&](std::size_t a, std::size_t b) {
        return heat_[a] != heat_[b] ? heat_[a] > heat_[b] : a < b;
      });
      // Coldest watched entries, heat asc then cross index desc (evict
      // the deepest-in-the-list of equally cold entries).
      std::vector<std::size_t> victims(entries_.size());
      std::iota(victims.begin(), victims.end(), std::size_t{0});
      std::sort(victims.begin(), victims.end(), [&](std::size_t a, std::size_t b) {
        const std::uint64_t ha = heat_[entries_[a].cross_index];
        const std::uint64_t hb = heat_[entries_[b].cross_index];
        return ha != hb ? ha < hb : entries_[a].cross_index > entries_[b].cross_index;
      });
      const std::size_t swaps = std::min(cands.size(), victims.size());
      bool changed = false;
      for (std::size_t i = 0; i < swaps; ++i) {
        // Strictly hotter only: ties never churn the list (hysteresis —
        // a uniform sweep workload keeps the seeded prefix).
        if (heat_[cands[i]] <= heat_[entries_[victims[i]].cross_index]) break;
        RewatchEntry(victims[i], cands[i], anchor);
        changed = true;
        ++stats_.promotions;
      }
      if (changed) CollectSeriesSlots();
    }
  }
  // Exponential decay: the list tracks the current query mix, not its
  // whole history.
  for (std::uint64_t& h : heat_) h >>= 1;
}

void CrossMomentCache::Stamp(std::uint64_t generation, std::size_t anchor) {
  // 0 is the never-stamped sentinel Invalidate() writes into entries; a
  // stamp at 0 would make dropped entries indistinguishable from fresh
  // ones (the ISSUE 5 restore-ordering audit).
  AFFINITY_CHECK_NE(generation, std::uint64_t{0});
  if (entries_.empty()) return;
  ++version_;
  if (count_ < window_) {
    // The rings do not cover the snapshot window yet (e.g. a restored
    // deployment): anything previously stamped is stale.
    Invalidate();
    return;
  }
  PromoteHot(anchor);
  // Periodic exact re-materialization: unroll every ring into snapshot
  // row order (oldest → newest — exactly the snapshot column layout) and
  // rebuild all accumulators with the canonical blocked kernels at the
  // snapshot's grid anchor, so the stamped moments are bitwise identical
  // to the raw cross sweep.
  const bool exact = stamps_since_resync_ == 0;
  std::vector<std::vector<double>> unrolled;
  if (exact) {
    unrolled.resize(series_.size());
    for (std::size_t s = 0; s < series_.size(); ++s) {
      unrolled[s].resize(window_);
      for (std::size_t i = 0; i < window_; ++i) {
        unrolled[s][i] = series_[s].ring[(head_ + i) % window_];
      }
      const core::kernels::Marginals marg =
          core::kernels::ColumnMarginals(unrolled[s].data(), window_, anchor);
      series_[s].sum = marg.sum;
      series_[s].sumsq = marg.sumsq;
    }
    ++stats_.exact_stamps;
  }
  for (PairEntry& entry : entries_) {
    if (exact) {
      entry.dot = core::kernels::BlockedDot(unrolled[entry.u_slot].data(),
                                            unrolled[entry.v_slot].data(), window_, anchor);
    }
    const SeriesSlot& su = series_[entry.u_slot];
    const SeriesSlot& sv = series_[entry.v_slot];
    // Warm-up gate: a freshly promoted slot's ring is zero-padded until
    // it has observed a full window — stamping it would freeze moments
    // over fabricated samples. The pair keeps missing (raw sweep) until
    // both rings cover the window.
    if (su.filled < window_ || sv.filled < window_) continue;
    entry.stamped =
        core::PairMoments{window_, su.sum, su.sumsq, sv.sum, sv.sumsq, entry.dot};
    entry.stamped_generation = generation;
  }
  ++stats_.stamps;
  stamps_since_resync_ = (stamps_since_resync_ + 1) % exact_resync_period_;
}

void CrossMomentCache::Invalidate() {
  if (entries_.empty()) return;
  ++version_;
  for (PairEntry& entry : entries_) entry.stamped_generation = 0;
  stamps_since_resync_ = 0;  // the next stamp re-materializes exactly
  ++stats_.invalidations;
}

bool CrossMomentCache::Lookup(std::size_t cross_index, std::uint64_t generation,
                              core::PairMoments* out) {
  // A lookup at the sentinel would match every Invalidate()d entry and
  // serve dropped moments as hits; the router guarantees generation ≥ 1
  // from construction and restore alike (ShardedAffinity ordering audit).
  AFFINITY_CHECK_NE(generation, std::uint64_t{0});
  // Heat accrues for every consulted index — watched or not — so the
  // promotion pass can see which unwatched pairs the workload wants.
  if (cross_index < heat_.size()) ++heat_[cross_index];
  if (!Watches(cross_index)) return false;
  PairEntry& entry = entries_[watch_of_[cross_index]];
  if (entry.stamped_generation != generation) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  *out = entry.stamped;
  return true;
}

void CrossMomentCache::Store(std::size_t cross_index, std::uint64_t generation,
                             const core::PairMoments& pm) {
  AFFINITY_CHECK_NE(generation, std::uint64_t{0});
  if (!Watches(cross_index)) return;
  ++version_;
  PairEntry& entry = entries_[watch_of_[cross_index]];
  entry.stamped = pm;
  entry.stamped_generation = generation;
}

std::size_t CrossMomentCache::StampedCount(std::uint64_t generation) const {
  if (generation == 0) return 0;
  std::size_t count = 0;
  for (const PairEntry& entry : entries_) {
    if (entry.stamped_generation == generation) ++count;
  }
  return count;
}

void CrossMomentCache::ExportStamped(std::uint64_t generation,
                                     std::vector<std::uint8_t>* stamped,
                                     std::vector<core::PairMoments>* moments) const {
  stamped->assign(cross_pairs_.size(), 0);
  moments->assign(cross_pairs_.size(), core::PairMoments{});
  if (generation == 0) return;
  for (const PairEntry& entry : entries_) {
    if (entry.stamped_generation != generation) continue;
    (*stamped)[entry.cross_index] = 1;
    (*moments)[entry.cross_index] = entry.stamped;
  }
}

}  // namespace affinity::shard
