#ifndef AFFINITY_SHARD_SHARD_SERVE_H_
#define AFFINITY_SHARD_SHARD_SERVE_H_

/// \file shard_serve.h
/// Lock-free snapshot serving for the *sharded* deployment (DESIGN.md
/// §11): an immutable `RouterSnapshot` bundles every shard's published
/// `serve::ServingSnapshot` for one lockstep refresh epoch together with
/// the routing tables (partition maps, the lex cross-pair list) and a
/// frozen view of the cross co-moment cache, so a scatter-gather
/// MET/MER/MEC/top-k can execute end-to-end against immutable state —
/// zero locks, zero waiting on in-flight slides.
///
/// The `RouterMet`/`RouterMer`/`RouterMec`/`RouterTopK` free functions
/// mirror `ShardedAffinity`'s gather exactly (same plan resolution, same
/// local→global rewrite + sort, same k-way merges, same cross-pair
/// arithmetic), so answers are bitwise identical to the live router over
/// the same epoch. Cross pairs stamped in the frozen co-moment view are
/// served O(1) from `core::PairMeasureFromMoments`; the rest sweep the
/// shard snapshots' window copies with the canonical blocked kernels —
/// the exact values the live miss path computes and re-serves.
///
/// Freshness blending is inherently live (it reads the rolling
/// marginals), so router snapshots serve only the unblended path; the
/// facade keeps handling `FreshnessOptions::max_staleness`. Anything a
/// shard snapshot cannot serve (e.g. WF) propagates
/// `StatusCode::kUnavailable`, and the caller falls back to the live
/// service.

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/query.h"
#include "serve/serve_query.h"
#include "serve/serving_snapshot.h"
#include "ts/data_matrix.h"

namespace affinity::shard {

/// An immutable serving replica of one sharded deployment at one lockstep
/// refresh epoch. Holds shared ownership of every shard's serving
/// snapshot; no pointer into the live service survives in here.
struct RouterSnapshot {
  /// The router's cross generation at publication (≥ 1; lockstep epochs).
  std::uint64_t generation = 0;
  /// Window geometry shared by every shard snapshot.
  std::size_t window = 0;
  /// The shard snapshots' shared block-grid anchor.
  std::size_t anchor = 0;
  /// Global series count.
  std::size_t n = 0;

  /// Shard s's serving snapshot for this epoch.
  std::vector<std::shared_ptr<const serve::ServingSnapshot>> shards;

  // --- Routing tables (frozen copies of the partitioner) -------------------
  std::vector<std::size_t> shard_of;               ///< global id → shard
  std::vector<ts::SeriesId> local_of;              ///< global id → shard-local id
  std::vector<std::vector<ts::SeriesId>> groups;   ///< shard → local → global id

  /// Every pair spanning two shards, (u, v)-lex in global ids.
  std::vector<ts::SequencePair> cross;

  // --- Frozen cross co-moment view (cross_cache.h, at publication) ---------
  /// One immutable freeze of the cross co-moment cache, shared across
  /// epochs whose cache contents did not change between publications (the
  /// router compares the cache's mutation version and re-freezes only on
  /// change — the common steady state with the cache disabled shares one
  /// view forever).
  struct CrossMomentView {
    /// `stamped[i]` is 1 iff cross pair i's co-moments were stamped at
    /// the freezing generation; its moments sit in `moments[i]`. Both are
    /// cross-list-aligned (all zeros when the cache is disabled).
    std::vector<std::uint8_t> stamped;
    std::vector<core::PairMoments> moments;
    /// Number of 1s in `stamped` — the planner's cached_cross_pairs.
    /// NOTE: the live router's count keeps growing as queries miss-fill
    /// the cache after publication, so a served plan's *cost/rationale*
    /// may differ from the live plan's; the chosen method (and hence
    /// every answer value) cannot (the surcharge applies after strategy
    /// selection).
    std::size_t stamped_count = 0;
  };
  std::shared_ptr<const CrossMomentView> cross_view;

  /// Capability intersection over the shards and the widest shard width —
  /// the live router's kAuto planner inputs.
  core::QueryPlanner::Capabilities caps;
  std::size_t max_n = 0;
};

/// Query 1 against a router snapshot. Mirrors `ShardedAffinity::Mec`
/// (unblended path); answers carry no per-shard freshness — the snapshot
/// is one coherent epoch.
StatusOr<core::MecResponse> RouterMec(const RouterSnapshot& snap, const core::MecRequest& request,
                                      core::QueryMethod method = core::QueryMethod::kAuto);

/// Query 2 against a router snapshot. Mirrors `ShardedAffinity::Met`.
StatusOr<core::SelectionResult> RouterMet(const RouterSnapshot& snap,
                                          const core::MetRequest& request,
                                          core::QueryMethod method = core::QueryMethod::kAuto);

/// Query 3 against a router snapshot. Mirrors `ShardedAffinity::Mer`.
StatusOr<core::SelectionResult> RouterMer(const RouterSnapshot& snap,
                                          const core::MerRequest& request,
                                          core::QueryMethod method = core::QueryMethod::kAuto);

/// Top-k against a router snapshot. Mirrors `ShardedAffinity::TopK`.
StatusOr<core::TopKResult> RouterTopK(const RouterSnapshot& snap,
                                      const core::TopKRequest& request,
                                      core::QueryMethod method = core::QueryMethod::kAuto);

}  // namespace affinity::shard

#endif  // AFFINITY_SHARD_SHARD_SERVE_H_
