#ifndef AFFINITY_SHARD_CROSS_CACHE_H_
#define AFFINITY_SHARD_CROSS_CACHE_H_

/// \file cross_cache.h
/// The cross-shard co-moment cache (ROADMAP "cross-shard pair budget";
/// DESIGN.md §10).
///
/// The cross sweep is ≈ (1 − 1/N) of all pair-measure work in an N-shard
/// deployment: every pair spanning two shards is invisible to every
/// per-shard model and index, so the router re-reads its two snapshot
/// columns on every MET/MER/top-k. This cache designates a *watch-list*
/// of hot cross pairs and maintains their full co-moment set — Σu, Σu²,
/// Σv, Σv², Σuv — by **rolling add/evict updates**: every appended global
/// row costs O(watched) accumulator work, and each lockstep snapshot
/// refresh freezes ("stamps") the rolled live moments as that
/// generation's snapshot moments. A warm query then serves every watched
/// pair from `core::PairMeasureFromMoments` with **zero raw column
/// scans** (verified by the CrossSweepStats counters in
/// bench_streaming).
///
/// Watch-list policy: the list is *seeded* with the first `budget` pairs
/// of the router's lex-ordered cross list, then **adapts to the
/// workload**. Every Lookup — hit, miss, or unwatched — counts one unit
/// of heat against its cross index, and at each stamp the hottest
/// unwatched pairs are promoted over strictly-colder watched ones (the
/// budget is fixed; a promotion evicts the coldest entry). Heat is
/// halved at every stamp, so the list tracks the current query mix
/// instead of its whole history, and the strict-inequality rule gives
/// hysteresis: a uniform sweep workload (every cross pair equally hot)
/// never churns the list. A freshly promoted pair starts with empty
/// value rings and is *stamp-gated* until both rings cover a full
/// window — until then it simply misses and is served by the raw sweep,
/// so promotion can never surface moments computed over partial
/// windows.
///
/// Numerics: rolled stamps inherit subtract-on-evict round-off, bounded
/// by re-materializing from the value rings with the canonical blocked
/// kernels every `exact_resync_period` stamps — the same policy
/// RollingCrossSums uses (rolling.h). An exact stamp (and any miss fill,
/// which stores the sweep's own moments) is bitwise identical to the raw
/// cross sweep over the snapshot columns.
///
/// Invalidation: generation-stamped. The owner bumps the generation on
/// every lockstep refresh (stamp) and drops all stamped moments on
/// escalation, manual rebuild, or restore (Invalidate); a stale or
/// never-stamped entry simply misses and is re-filled by the sweep.
///
/// Thread safety: none of its own — single-writer by contract
/// (DESIGN.md §13). Observe/Stamp/Invalidate run only on the owning
/// ShardedAffinity's lockstep write path, which is externally
/// serialized; concurrent queries read stamped co-moments from published
/// RouterSnapshot copies and never touch this object.

#include <cstdint>
#include <vector>

#include "core/measures.h"
#include "ts/data_matrix.h"

namespace affinity::shard {

/// Cache configuration (ShardedOptions::cross_cache).
struct CrossCacheOptions {
  /// Watched cross pairs (0 disables the cache). The watch-list is
  /// seeded with the first `budget` pairs of the router's lex-ordered
  /// cross-pair list and thereafter adapts by heat promotion.
  std::size_t budget = 0;
  /// Stamps between exact blocked re-materializations from the rings
  /// (bounds rolled-stamp drift; ≥ 1). The first stamp is always exact.
  std::size_t exact_resync_period = 64;
};

/// Cache accounting, cumulative since construction.
struct CrossCacheStats {
  std::size_t hits = 0;            ///< watched pairs served from warm co-moments
  std::size_t misses = 0;          ///< watched pairs that fell through to the raw sweep
  std::size_t stamps = 0;          ///< rolled generation stamps
  std::size_t exact_stamps = 0;    ///< blocked re-materializations from the rings
  std::size_t invalidations = 0;   ///< escalation / rebuild / restore drops
  std::size_t observed_rows = 0;   ///< appended rows rolled through the accumulators
  std::size_t promotions = 0;      ///< hot pairs promoted onto the watch-list

  double HitRatio() const {
    const std::size_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Rolling co-moment accumulators for a heat-adaptive cross-pair
/// watch-list. Not thread-safe; owned and driven by ShardedAffinity's
/// append/query surface (which is single-threaded at the router level).
class CrossMomentCache {
 public:
  /// A disabled cache (no watch-list); every call is a cheap no-op.
  CrossMomentCache() = default;

  /// Watches min(budget, cross_pairs.size()) pairs over windows of
  /// `window` samples, seeded with the first pairs of the router's
  /// cross list.
  CrossMomentCache(const std::vector<ts::SequencePair>& cross_pairs, std::size_t window,
                   const CrossCacheOptions& options);

  bool enabled() const { return !entries_.empty(); }

  /// Watch-list size (the effective budget).
  std::size_t watched() const { return entries_.size(); }

  /// True when the router's cross pair at `cross_index` is currently on
  /// the watch-list.
  bool Watches(std::size_t cross_index) const {
    return cross_index < watch_of_.size() && watch_of_[cross_index] != kUnwatched;
  }

  /// Rolls one appended global row through every watched series ring and
  /// pair accumulator: O(watched series + watched pairs).
  void Observe(const std::vector<double>& row);

  /// Freezes the rolled live co-moments as generation `generation`'s
  /// snapshot moments — called on every lockstep refresh, after the
  /// refresh-triggering row was Observed (live window == new snapshot
  /// window). No-op until the rings hold a full window. Promotion runs
  /// first: the hottest unwatched pairs displace strictly-colder
  /// watched entries, then all heat is halved. Every
  /// `exact_resync_period` stamps re-materializes rings → accumulators
  /// with the blocked kernels first, at `anchor` — the shard snapshots'
  /// block-grid anchor (`data().anchor_row()`, identical across a
  /// lockstep deployment) — so an exact stamp is bitwise equal to the
  /// raw cross sweep over the snapshot columns. Entries whose rings do
  /// not yet cover the window (freshly promoted) are skipped.
  /// `generation` must be > 0 (0 is the never-stamped sentinel;
  /// checked).
  void Stamp(std::uint64_t generation, std::size_t anchor);

  /// Drops every stamped entry (escalation / manual rebuild / restore).
  /// The rings keep rolling — the next Stamp re-validates.
  void Invalidate();

  /// Cached snapshot moments of cross pair `cross_index`, if stamped at
  /// `generation`. Counts a hit or miss for watched indices, and one
  /// unit of promotion heat for *every* index — watched or not — so the
  /// watch-list can follow the workload. `generation` must be > 0: a
  /// router may only consult the cache once its snapshots form a real
  /// generation (the restore path starts at 1; checked so a
  /// never-stamped entry — sentinel 0 — can never masquerade as a hit).
  bool Lookup(std::size_t cross_index, std::uint64_t generation, core::PairMoments* out);

  /// Installs sweep-computed moments for a watched pair (miss fill);
  /// no-op for unwatched indices. `generation` must be > 0 (checked).
  void Store(std::size_t cross_index, std::uint64_t generation, const core::PairMoments& pm);

  /// Watched pairs currently stamped at `generation` — the planner's
  /// Topology::cached_cross_pairs input.
  std::size_t StampedCount(std::uint64_t generation) const;

  /// Exports the stamped co-moments of generation `generation` over the
  /// *full* cross list: `(*stamped)[i]` is 1 iff cross pair i is watched
  /// and stamped at that generation, with its moments in
  /// `(*moments)[i]`. Both vectors are resized to the cross-list length
  /// (empty for a disabled cache). Used to freeze the warm co-moment
  /// view into a published router snapshot (shard/shard_serve.h).
  void ExportStamped(std::uint64_t generation, std::vector<std::uint8_t>* stamped,
                     std::vector<core::PairMoments>* moments) const;

  const CrossCacheStats& stats() const { return stats_; }

  /// Mutation version of the *exportable* stamped state: bumped by every
  /// Stamp, Invalidate, and Store on an enabled cache (Observe and Lookup
  /// roll live accumulators and heat only — they cannot change what
  /// ExportStamped returns). A disabled cache stays at 0 forever. The
  /// router compares versions across publications to skip re-freezing an
  /// unchanged cross co-moment view (shard_serve.h).
  std::uint64_t version() const { return version_; }

 private:
  static constexpr std::size_t kUnwatched = static_cast<std::size_t>(-1);

  /// One watched series: its value ring over the window plus rolled
  /// marginal sums (shared by every watched pair touching the series).
  struct SeriesSlot {
    ts::SeriesId id = 0;
    std::vector<double> ring;
    double sum = 0.0;
    double sumsq = 0.0;
    std::size_t filled = 0;  ///< samples observed since the slot was created (≤ window)
  };

  /// One watched cross pair: rolled Σuv plus the frozen snapshot moments.
  struct PairEntry {
    std::size_t cross_index = 0;  ///< position in the router's lex cross list
    std::size_t u_slot = 0;
    std::size_t v_slot = 0;
    double dot = 0.0;
    core::PairMoments stamped;
    std::uint64_t stamped_generation = 0;  ///< 0 = never stamped / dropped
  };

  /// Slot of global series `id`, creating an empty (zero-ring) slot on
  /// first use.
  std::size_t EnsureSlot(ts::SeriesId id);

  /// Swaps the hottest unwatched pairs over strictly-colder watched
  /// entries, then halves all heat (decay). Called at stamp time.
  void PromoteHot(std::size_t anchor);

  /// Re-points entry `slot` at cross pair `new_index`: rebinds series
  /// slots, re-materializes the rolling Σuv invariant from the current
  /// rings, and clears the stamp.
  void RewatchEntry(std::size_t slot, std::size_t new_index, std::size_t anchor);

  /// Drops series slots no longer referenced by any entry (after
  /// promotion rebinds) and remaps entry slot indices.
  void CollectSeriesSlots();

  std::size_t window_ = 0;
  std::size_t exact_resync_period_ = 64;
  std::size_t head_ = 0;   ///< shared ring cursor (all rings advance together)
  std::size_t count_ = 0;  ///< samples rolled since construction (≤ window_)
  std::size_t stamps_since_resync_ = 0;
  std::vector<ts::SequencePair> cross_pairs_;  ///< the router's full lex cross list
  std::vector<std::uint64_t> heat_;            ///< per-cross-index lookup counts (decayed)
  std::vector<std::size_t> watch_of_;          ///< cross index → entry slot (kUnwatched if none)
  std::vector<SeriesSlot> series_;
  std::vector<PairEntry> entries_;
  CrossCacheStats stats_;
  std::uint64_t version_ = 0;
};

}  // namespace affinity::shard

#endif  // AFFINITY_SHARD_CROSS_CACHE_H_
