#include "shard/shard_serve.h"

#include <algorithm>
#include <queue>
#include <string>
#include <utility>

#include "common/exec_context.h"
#include "core/planner.h"

namespace affinity::shard {

namespace {

using core::ExecutedPlan;
using core::Measure;
using core::QueryMethod;
using core::QueryPlanner;
using core::ScapeTopKEntry;
using core::ScapeTopKResult;

/// K-way heap merge of sorted runs — the same gather step the live router
/// runs (sharded.cc keeps its own file-local copy; the shapes must stay
/// identical for the bitwise-identity contract).
template <typename T, typename Less>
std::vector<T> MergeSortedRuns(const std::vector<std::vector<T>>& runs, Less less) {
  struct Head {
    std::size_t run;
    std::size_t pos;
  };
  const auto head_greater = [&](const Head& a, const Head& b) {
    return less(runs[b.run][b.pos], runs[a.run][a.pos]);
  };
  std::priority_queue<Head, std::vector<Head>, decltype(head_greater)> frontier(head_greater);
  std::size_t total = 0;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    total += runs[r].size();
    if (!runs[r].empty()) frontier.push(Head{r, 0});
  }
  std::vector<T> out;
  out.reserve(total);
  while (!frontier.empty()) {
    const Head head = frontier.top();
    frontier.pop();
    out.push_back(runs[head.run][head.pos]);
    if (head.pos + 1 < runs[head.run].size()) frontier.push(Head{head.run, head.pos + 1});
  }
  return out;
}

/// The snapshot column of global series `id` (shard snapshots hold the
/// window copies; local order matches the live shard's DataMatrix).
const double* ColumnOf(const RouterSnapshot& snap, ts::SeriesId id) {
  return snap.shards[snap.shard_of[id]]->data.ColumnData(snap.local_of[id]);
}

/// Mirrors ShardedAffinity::ResolveShardPlan for the unblended path. A
/// RouterSnapshot only exists once the deployment is ready, so there is
/// no FailedPrecondition arm; blending is live-only (the facade handles
/// it before ever consulting a snapshot).
template <typename PlanFn>
ExecutedPlan ResolveRouterPlan(const RouterSnapshot& snap, QueryMethod method,
                               const PlanFn& plan) {
  if (method != QueryMethod::kAuto) {
    ExecutedPlan explicit_plan;
    explicit_plan.method = method;
    explicit_plan.rationale = "explicitly requested " +
                              std::string(core::QueryMethodName(method)) +
                              " per shard; scatter-gather over " +
                              std::to_string(snap.shards.size()) + " shards";
    return explicit_plan;
  }
  const QueryPlanner::Topology topology{
      snap.shards.size(), snap.cross.size(),
      snap.cross_view != nullptr ? snap.cross_view->stamped_count : 0};
  const QueryPlanner planner(snap.max_n, snap.window, snap.caps, topology);
  return plan(planner);
}

/// Mirrors ShardedAffinity::CrossPairValues (unblended): stamped pairs
/// answer O(1) from the frozen co-moments — the exact moments the live
/// cache serves at this generation — and the rest sweep the shard
/// snapshots' window copies with the canonical blocked kernels, which is
/// bitwise the live miss path over the same columns.
StatusOr<std::vector<double>> RouterCrossValues(const RouterSnapshot& snap, Measure measure) {
  std::vector<double> values(snap.cross.size());
  std::vector<std::size_t> swept;
  swept.reserve(snap.cross.size());
  const RouterSnapshot::CrossMomentView* view = snap.cross_view.get();
  for (std::size_t i = 0; i < snap.cross.size(); ++i) {
    if (view != nullptr && i < view->stamped.size() && view->stamped[i] != 0) {
      auto value = core::PairMeasureFromMoments(measure, view->moments[i]);
      if (!value.ok()) return value.status();
      values[i] = *value;
    } else {
      swept.push_back(i);
    }
  }
  if (!swept.empty()) {
    std::vector<core::CrossPair> resolved(swept.size());
    for (std::size_t j = 0; j < swept.size(); ++j) {
      const ts::SequencePair e = snap.cross[swept[j]];
      resolved[j] = core::CrossPair{e, ColumnOf(snap, e.u), ColumnOf(snap, e.v)};
    }
    AFFINITY_ASSIGN_OR_RETURN(
        const std::vector<double> swept_values,
        core::EvaluateCrossPairs(measure, resolved, snap.window, ExecContext{}, nullptr,
                                 nullptr, snap.anchor));
    for (std::size_t j = 0; j < swept.size(); ++j) values[swept[j]] = swept_values[j];
  }
  return values;
}

/// The shared MET/MER gather, mirroring SelectAcrossShards: per-shard
/// snapshot selections, local→global rewrite + sort, the cross-shard
/// sweep under `keep`, then the k-way merge.
template <typename PlanFn, typename ShardQuery>
StatusOr<core::SelectionResult> RouterSelect(const RouterSnapshot& snap, Measure measure,
                                             bool (*keep)(double, double, double), double a,
                                             double b, QueryMethod method, const PlanFn& plan,
                                             const ShardQuery& shard_query) {
  ExecutedPlan resolved = ResolveRouterPlan(snap, method, plan);
  const QueryMethod per_shard = method == QueryMethod::kAuto ? resolved.method : method;

  core::SelectionResult out;
  const bool location = core::IsLocation(measure);
  const std::size_t n_shards = snap.shards.size();
  std::vector<std::vector<ts::SeriesId>> series_runs(n_shards);
  std::vector<std::vector<ts::SequencePair>> pair_runs(n_shards);
  for (std::size_t s = 0; s < n_shards; ++s) {
    AFFINITY_ASSIGN_OR_RETURN(core::SelectionResult r, shard_query(*snap.shards[s], per_shard));
    out.prune += r.prune;
    if (location) {
      for (ts::SeriesId& v : r.series) v = snap.groups[s][v];
      std::sort(r.series.begin(), r.series.end());
      series_runs[s] = std::move(r.series);
    } else {
      for (ts::SequencePair& e : r.pairs) {
        e = ts::SequencePair(snap.groups[s][e.u], snap.groups[s][e.v]);
      }
      std::sort(r.pairs.begin(), r.pairs.end());
      pair_runs[s] = std::move(r.pairs);
    }
  }
  if (!location && n_shards > 1) {
    AFFINITY_ASSIGN_OR_RETURN(const std::vector<double> values,
                              RouterCrossValues(snap, measure));
    std::vector<ts::SequencePair> kept;
    for (std::size_t i = 0; i < snap.cross.size(); ++i) {
      if (keep(values[i], a, b)) kept.push_back(snap.cross[i]);
    }
    pair_runs.push_back(std::move(kept));  // already lex-sorted
  }
  if (location) {
    out.series = MergeSortedRuns(series_runs, std::less<ts::SeriesId>{});
  } else {
    out.pairs = MergeSortedRuns(pair_runs, std::less<ts::SequencePair>{});
  }
  core::AnnotateSnapshotServed(&resolved, snap.generation);
  out.plan = std::move(resolved);
  return out;
}

}  // namespace

StatusOr<core::SelectionResult> RouterMet(const RouterSnapshot& snap,
                                          const core::MetRequest& request,
                                          QueryMethod method) {
  return RouterSelect(
      snap, request.measure, request.greater ? core::KeepGreater : core::KeepLesser,
      request.tau, 0.0, method,
      [&](const QueryPlanner& planner) { return planner.PlanMet(request.measure); },
      [&](const serve::ServingSnapshot& shard, QueryMethod m) {
        return serve::SnapshotMet(shard, request, m);
      });
}

StatusOr<core::SelectionResult> RouterMer(const RouterSnapshot& snap,
                                          const core::MerRequest& request,
                                          QueryMethod method) {
  if (request.lo > request.hi) return Status::InvalidArgument("MER requires lo <= hi");
  return RouterSelect(
      snap, request.measure, core::KeepInside, request.lo, request.hi, method,
      [&](const QueryPlanner& planner) { return planner.PlanMer(request.measure); },
      [&](const serve::ServingSnapshot& shard, QueryMethod m) {
        return serve::SnapshotMer(shard, request, m);
      });
}

StatusOr<core::TopKResult> RouterTopK(const RouterSnapshot& snap,
                                      const core::TopKRequest& request, QueryMethod method) {
  ExecutedPlan plan = ResolveRouterPlan(snap, method, [&](const QueryPlanner& planner) {
    return planner.PlanTopK(request.measure, request.k);
  });
  const QueryMethod per_shard = method == QueryMethod::kAuto ? plan.method : method;

  std::vector<ScapeTopKResult> runs(snap.shards.size());
  for (std::size_t s = 0; s < snap.shards.size(); ++s) {
    AFFINITY_ASSIGN_OR_RETURN(core::TopKResult r,
                              serve::SnapshotTopK(*snap.shards[s], request, per_shard));
    for (ScapeTopKEntry& entry : r.entries) {
      if (entry.has_series()) {
        entry.series = snap.groups[s][entry.series];
      } else {
        entry.pair = ts::SequencePair(snap.groups[s][entry.pair.u], snap.groups[s][entry.pair.v]);
      }
    }
    runs[s] = std::move(r);
  }
  if (!core::IsLocation(request.measure) && snap.shards.size() > 1) {
    AFFINITY_ASSIGN_OR_RETURN(const std::vector<double> values,
                              RouterCrossValues(snap, request.measure));
    ScapeTopKResult cross_run;
    cross_run.entries.resize(snap.cross.size());
    for (std::size_t i = 0; i < snap.cross.size(); ++i) {
      cross_run.entries[i] = ScapeTopKEntry{snap.cross[i], core::kNoSeries, values[i]};
    }
    const std::size_t k = std::min(request.k, cross_run.entries.size());
    const auto better = [&](const ScapeTopKEntry& a, const ScapeTopKEntry& b) {
      return request.largest ? a.value > b.value : a.value < b.value;
    };
    std::partial_sort(cross_run.entries.begin(),
                      cross_run.entries.begin() + static_cast<long>(k), cross_run.entries.end(),
                      better);
    cross_run.entries.resize(k);
    cross_run.examined = snap.cross.size();
    runs.push_back(std::move(cross_run));
  }
  core::TopKResult out;
  static_cast<ScapeTopKResult&>(out) = core::MergeTopK(runs, request.k, request.largest);
  core::AnnotateSnapshotServed(&plan, snap.generation);
  out.plan = std::move(plan);
  return out;
}

StatusOr<core::MecResponse> RouterMec(const RouterSnapshot& snap, const core::MecRequest& request,
                                      QueryMethod method) {
  ExecutedPlan plan = ResolveRouterPlan(snap, method, [&](const QueryPlanner& planner) {
    return planner.PlanMec(request.measure, request.ids.size());
  });
  if (request.ids.empty()) return Status::InvalidArgument("MEC requires a non-empty id set");
  for (const ts::SeriesId id : request.ids) {
    if (id >= snap.n) {
      return Status::OutOfRange("series id " + std::to_string(id) + " out of range (n=" +
                                std::to_string(snap.n) + ")");
    }
  }
  const QueryMethod per_shard = method == QueryMethod::kAuto ? plan.method : method;

  // Slice the request per shard, remembering each id's request position.
  std::vector<std::vector<std::size_t>> positions(snap.shards.size());
  std::vector<core::MecRequest> slices(snap.shards.size());
  for (std::size_t i = 0; i < request.ids.size(); ++i) {
    const std::size_t s = snap.shard_of[request.ids[i]];
    positions[s].push_back(i);
    slices[s].measure = request.measure;
    slices[s].ids.push_back(snap.local_of[request.ids[i]]);
  }

  const std::size_t count = request.ids.size();
  const bool location = core::IsLocation(request.measure);
  core::MecResponse out;
  if (location) {
    out.location = la::Vector(count);
  } else {
    out.pair_values = la::Matrix(count, count);
  }
  for (std::size_t s = 0; s < snap.shards.size(); ++s) {
    if (slices[s].ids.empty()) continue;
    AFFINITY_ASSIGN_OR_RETURN(core::MecResponse r,
                              serve::SnapshotMec(*snap.shards[s], slices[s], per_shard));
    if (location) {
      for (std::size_t t = 0; t < positions[s].size(); ++t) {
        out.location[positions[s][t]] = r.location[t];
      }
    } else {
      for (std::size_t a = 0; a < positions[s].size(); ++a) {
        for (std::size_t b = 0; b < positions[s].size(); ++b) {
          out.pair_values(positions[s][a], positions[s][b]) = r.pair_values(a, b);
        }
      }
    }
  }
  if (!location) {
    // Cross-shard cells, mirroring the live router: each requested (i, j)
    // spanning two shards resolves its cross index by binary search into
    // the lex cross list; stamped pairs answer from the frozen co-moments,
    // the rest sweep the snapshot columns.
    std::vector<core::CrossPair> resolved;
    std::vector<std::pair<std::size_t, std::size_t>> cells;
    const RouterSnapshot::CrossMomentView* view = snap.cross_view.get();
    for (std::size_t i = 0; i < count; ++i) {
      for (std::size_t j = i + 1; j < count; ++j) {
        if (snap.shard_of[request.ids[i]] == snap.shard_of[request.ids[j]]) continue;
        const ts::SeriesId u = request.ids[i];
        const ts::SeriesId v = request.ids[j];
        const ts::SequencePair e(u, v);
        const auto it = std::lower_bound(snap.cross.begin(), snap.cross.end(), e);
        const std::size_t cross_index = static_cast<std::size_t>(it - snap.cross.begin());
        if (view != nullptr && cross_index < view->stamped.size() &&
            view->stamped[cross_index] != 0) {
          AFFINITY_ASSIGN_OR_RETURN(
              const double value,
              core::PairMeasureFromMoments(request.measure, view->moments[cross_index]));
          out.pair_values(i, j) = value;
          out.pair_values(j, i) = value;
          continue;
        }
        resolved.push_back(core::CrossPair{e, ColumnOf(snap, u), ColumnOf(snap, v)});
        cells.emplace_back(i, j);
      }
    }
    if (!resolved.empty()) {
      AFFINITY_ASSIGN_OR_RETURN(
          const std::vector<double> values,
          core::EvaluateCrossPairs(request.measure, resolved, snap.window, ExecContext{},
                                   nullptr, nullptr, snap.anchor));
      for (std::size_t idx = 0; idx < cells.size(); ++idx) {
        out.pair_values(cells[idx].first, cells[idx].second) = values[idx];
        out.pair_values(cells[idx].second, cells[idx].first) = values[idx];
      }
    }
  }
  core::AnnotateSnapshotServed(&plan, snap.generation);
  out.plan = std::move(plan);
  return out;
}

}  // namespace affinity::shard
