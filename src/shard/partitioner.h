#ifndef AFFINITY_SHARD_PARTITIONER_H_
#define AFFINITY_SHARD_PARTITIONER_H_

/// \file partitioner.h
/// Series-group partitioning for the sharded streaming service
/// (DESIGN.md §9).
///
/// A `SeriesPartitioner` assigns each of the n registered series to exactly
/// one of N shards (disjoint cover) and owns the two id spaces the router
/// translates between: *global* ids (the caller's view, 0..n-1) and *local*
/// ids (each shard's dense 0..|group|-1 view — the column index inside that
/// shard's `StreamingAffinity`). Within a shard, local order is ascending
/// global id, so per-shard query results translate back monotonically.
///
/// Two schemes:
///  * `kRange` — contiguous blocks of the registration order, sizes within
///    one of each other. Best when adjacent ids are related (e.g. one
///    exchange's tickers registered together).
///  * `kHash` — series are ordered by a stable 64-bit hash of their *name*
///    and dealt round-robin. Deterministic across runs and processes (no
///    std::hash), balanced within one series per shard, and independent of
///    registration order — the scheme for hostile or unknown id layouts.
///
/// Every shard must receive at least 2 series (a one-series shard cannot
/// model relationships); Create reports InvalidArgument otherwise.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "ts/data_matrix.h"

namespace affinity::shard {

/// How series are assigned to shards.
enum class PartitionScheme : std::uint32_t { kRange = 0, kHash = 1 };

/// Display name: "range" / "hash".
std::string_view PartitionSchemeName(PartitionScheme scheme);

/// A disjoint cover of n series by N shard groups, with global↔local id
/// translation. Immutable once created.
class SeriesPartitioner {
 public:
  /// Partitions `names.size()` series into `shards` groups.
  /// InvalidArgument when shards < 1 or any shard would get < 2 series
  /// (i.e. names.size() < 2·shards).
  static StatusOr<SeriesPartitioner> Create(const std::vector<std::string>& names,
                                            std::size_t shards, PartitionScheme scheme);

  /// Rebuilds a partitioner from a persisted per-series shard assignment
  /// (the manifest round-trip). Validates the same invariants as Create.
  static StatusOr<SeriesPartitioner> FromAssignment(const std::vector<std::uint32_t>& shard_of,
                                                    std::size_t shards, PartitionScheme scheme);

  /// Number of shards N.
  std::size_t shards() const { return groups_.size(); }

  /// Number of series n.
  std::size_t n() const { return shard_of_.size(); }

  /// The scheme this partition was produced by.
  PartitionScheme scheme() const { return scheme_; }

  /// Shard owning a global series id.
  std::size_t shard_of(ts::SeriesId global) const { return shard_of_[global]; }

  /// The id of a global series inside its shard (dense, ascending in
  /// global id).
  ts::SeriesId local_id(ts::SeriesId global) const { return local_of_[global]; }

  /// The global id of shard-local series `local` in shard `s`.
  ts::SeriesId global_id(std::size_t s, ts::SeriesId local) const { return groups_[s][local]; }

  /// Global ids owned by shard `s`, ascending.
  const std::vector<ts::SeriesId>& group(std::size_t s) const { return groups_[s]; }

  /// Number of sequence pairs whose endpoints live in different shards —
  /// the pairs every per-shard structure is blind to (planner Topology).
  std::size_t cross_pair_count() const;

 private:
  SeriesPartitioner() = default;

  /// Builds groups_/local_of_ from a filled shard_of_; validates ≥2 series
  /// per shard.
  static StatusOr<SeriesPartitioner> FinishFrom(std::vector<std::size_t> shard_of,
                                                std::size_t shards, PartitionScheme scheme);

  PartitionScheme scheme_ = PartitionScheme::kRange;
  std::vector<std::size_t> shard_of_;            ///< global id → shard
  std::vector<ts::SeriesId> local_of_;           ///< global id → local id
  std::vector<std::vector<ts::SeriesId>> groups_;  ///< shard → global ids, ascending
};

}  // namespace affinity::shard

#endif  // AFFINITY_SHARD_PARTITIONER_H_
