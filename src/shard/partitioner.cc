#include "shard/partitioner.h"

#include <algorithm>
#include <numeric>

namespace affinity::shard {

namespace {

/// Stable 64-bit name hash (FNV-1a folded through a SplitMix64 finalizer):
/// deterministic across processes and standard libraries, unlike
/// std::hash.
std::uint64_t NameHash(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace

std::string_view PartitionSchemeName(PartitionScheme scheme) {
  return scheme == PartitionScheme::kHash ? "hash" : "range";
}

StatusOr<SeriesPartitioner> SeriesPartitioner::Create(const std::vector<std::string>& names,
                                                      std::size_t shards,
                                                      PartitionScheme scheme) {
  const std::size_t n = names.size();
  if (shards < 1) return Status::InvalidArgument("need at least 1 shard");
  if (n < 2 * shards) {
    return Status::InvalidArgument("cannot split " + std::to_string(n) + " series into " +
                                   std::to_string(shards) +
                                   " shards: every shard needs >= 2 series");
  }
  std::vector<std::size_t> shard_of(n);
  if (scheme == PartitionScheme::kRange) {
    // Contiguous blocks, remainder spread over the leading shards.
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t begin = s * (n / shards) + std::min(s, n % shards);
      const std::size_t end = (s + 1) * (n / shards) + std::min(s + 1, n % shards);
      for (std::size_t i = begin; i < end; ++i) shard_of[i] = s;
    }
  } else {
    // Hash order, then a round-robin deal: balanced within one series per
    // shard whatever the names, yet fully determined by them.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::vector<std::uint64_t> hashes(n);
    for (std::size_t i = 0; i < n; ++i) hashes[i] = NameHash(names[i]);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return hashes[a] != hashes[b] ? hashes[a] < hashes[b] : a < b;
    });
    for (std::size_t pos = 0; pos < n; ++pos) shard_of[order[pos]] = pos % shards;
  }
  return FinishFrom(std::move(shard_of), shards, scheme);
}

StatusOr<SeriesPartitioner> SeriesPartitioner::FromAssignment(
    const std::vector<std::uint32_t>& shard_of, std::size_t shards, PartitionScheme scheme) {
  if (shards < 1) return Status::InvalidArgument("need at least 1 shard");
  std::vector<std::size_t> wide(shard_of.size());
  for (std::size_t i = 0; i < shard_of.size(); ++i) {
    if (shard_of[i] >= shards) {
      return Status::InvalidArgument("series " + std::to_string(i) + " assigned to shard " +
                                     std::to_string(shard_of[i]) + " of " +
                                     std::to_string(shards));
    }
    wide[i] = shard_of[i];
  }
  return FinishFrom(std::move(wide), shards, scheme);
}

StatusOr<SeriesPartitioner> SeriesPartitioner::FinishFrom(std::vector<std::size_t> shard_of,
                                                          std::size_t shards,
                                                          PartitionScheme scheme) {
  SeriesPartitioner p;
  p.scheme_ = scheme;
  p.shard_of_ = std::move(shard_of);
  p.groups_.resize(shards);
  p.local_of_.resize(p.shard_of_.size());
  // Ascending global-id walk keeps every group ascending, so local ids are
  // monotone in global ids within a shard.
  for (std::size_t i = 0; i < p.shard_of_.size(); ++i) {
    const std::size_t s = p.shard_of_[i];
    p.local_of_[i] = static_cast<ts::SeriesId>(p.groups_[s].size());
    p.groups_[s].push_back(static_cast<ts::SeriesId>(i));
  }
  for (std::size_t s = 0; s < shards; ++s) {
    if (p.groups_[s].size() < 2) {
      return Status::InvalidArgument("shard " + std::to_string(s) + " got " +
                                     std::to_string(p.groups_[s].size()) +
                                     " series; every shard needs >= 2");
    }
  }
  return p;
}

std::size_t SeriesPartitioner::cross_pair_count() const {
  std::size_t intra = 0;
  for (const auto& group : groups_) intra += ts::SequencePairCount(group.size());
  return ts::SequencePairCount(n()) - intra;
}

}  // namespace affinity::shard
