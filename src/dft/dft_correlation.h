#ifndef AFFINITY_DFT_DFT_CORRELATION_H_
#define AFFINITY_DFT_DFT_CORRELATION_H_

/// \file dft_correlation.h
/// The WF baseline: correlation-coefficient approximation from the first
/// few DFT coefficients of normalized series (StatStream / HierarchyScan
/// family, refs [1–3] of the paper).
///
/// Each series x is normalized to x̂ = (x − μ)/(σ·√m) so that ‖x̂‖ = 1 and
/// ρ(x, y) = ⟨x̂, ŷ⟩ = 1 − ‖x̂ − ŷ‖²/2. By Parseval (unitary DFT),
/// ‖x̂ − ŷ‖² = Σ_k |X̂_k − Ŷ_k|², and because the energy of smooth series
/// concentrates in the low frequencies, keeping the first `c` coefficients
/// (plus their conjugate mirrors) gives the StatStream estimate
///   ρ̂(x, y) = 1 − Σ_{k=1..c} 2·|X̂_k − Ŷ_k|² / 2.
///
/// WF only supports the correlation coefficient — the limitation Table 4
/// highlights versus AFFINITY's measure-agnostic design.

#include <complex>
#include <cstddef>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "dft/fft.h"
#include "la/matrix.h"
#include "ts/data_matrix.h"

namespace affinity::dft {

/// Number of retained DFT coefficients used throughout the paper.
inline constexpr std::size_t kDefaultCoefficients = 5;

/// Per-series DFT sketch: the retained low-frequency coefficients of the
/// unitarily scaled, normalized series.
struct DftSketch {
  std::vector<Complex> coefficients;  // k = 1 .. c (k = 0 vanishes after centering)
  bool degenerate = false;            // constant series (zero variance)
};

/// Builds and queries DFT sketches for a dataset (the WF method).
class DftCorrelationEstimator {
 public:
  /// Builds sketches for all series of `data`, keeping `coefficients`
  /// low-frequency terms. O(n·m·log m) one-time cost; the per-series FFTs
  /// fan out over `exec` (sketches are identical at any thread count).
  static StatusOr<DftCorrelationEstimator> Build(
      const ts::DataMatrix& data, std::size_t coefficients = kDefaultCoefficients,
      const ExecContext& exec = {});

  /// Estimated correlation of series u and v in O(c).
  /// Degenerate (constant) series estimate as 0, matching stats::Correlation.
  double Estimate(ts::SeriesId u, ts::SeriesId v) const;

  /// Estimated correlation for every sequence pair (n×n symmetric matrix,
  /// unit diagonal) — what WF does to answer a MET/MER query.
  la::Matrix EstimateAll() const;

  /// Number of series sketched.
  std::size_t size() const { return sketches_.size(); }

  /// Number of coefficients per sketch.
  std::size_t coefficients() const { return coefficients_; }

 private:
  DftCorrelationEstimator(std::vector<DftSketch> sketches, std::size_t coefficients)
      : sketches_(std::move(sketches)), coefficients_(coefficients) {}

  std::vector<DftSketch> sketches_;
  std::size_t coefficients_ = kDefaultCoefficients;
};

}  // namespace affinity::dft

#endif  // AFFINITY_DFT_DFT_CORRELATION_H_
