#ifndef AFFINITY_DFT_FFT_H_
#define AFFINITY_DFT_FFT_H_

/// \file fft.h
/// Fast Fourier transform substrate for the WF baseline.
///
/// The paper's comparator (WF) approximates correlation coefficients from
/// the largest/first DFT coefficients [Zhu & Shasha, VLDB'02; Mueen et al.,
/// SIGMOD'10]. Arbitrary series lengths (720, 1950, ...) are handled with
/// Bluestein's chirp-z algorithm on top of an iterative radix-2 kernel.

#include <complex>
#include <cstddef>
#include <vector>

#include "common/status.h"

namespace affinity::dft {

using Complex = std::complex<double>;

/// True iff n is a power of two (n ≥ 1).
bool IsPowerOfTwo(std::size_t n);

/// Smallest power of two ≥ n.
std::size_t NextPowerOfTwo(std::size_t n);

/// In-place radix-2 Cooley–Tukey FFT.
/// `a->size()` must be a power of two (InvalidArgument otherwise).
/// The inverse transform divides by n (so Fft(Fft(x), inverse) == x).
Status Fft(std::vector<Complex>* a, bool inverse);

/// DFT of arbitrary length via Bluestein's algorithm; `a` is replaced by
/// its (forward or inverse) transform. Inverse divides by n.
Status BluesteinDft(std::vector<Complex>* a, bool inverse);

/// Forward DFT of a real series of any length. Returns the m complex
/// coefficients X_k = Σ_i x_i e^{-2πi·ik/m} (no scaling).
StatusOr<std::vector<Complex>> RealDft(const double* x, std::size_t m);

}  // namespace affinity::dft

#endif  // AFFINITY_DFT_FFT_H_
