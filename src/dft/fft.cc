#include "dft/fft.h"

#include <cmath>

namespace affinity::dft {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

bool IsPowerOfTwo(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

Status Fft(std::vector<Complex>* a, bool inverse) {
  const std::size_t n = a->size();
  if (!IsPowerOfTwo(n)) {
    return Status::InvalidArgument("Fft requires a power-of-two length");
  }
  auto& x = *a;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }

  // Butterfly passes.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = 2.0 * kPi / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex even = x[i + k];
        const Complex odd = x[i + k + len / 2] * w;
        x[i + k] = even + odd;
        x[i + k + len / 2] = even - odd;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& v : x) v *= inv_n;
  }
  return Status::OK();
}

Status BluesteinDft(std::vector<Complex>* a, bool inverse) {
  const std::size_t n = a->size();
  if (n == 0) return Status::InvalidArgument("BluesteinDft requires a non-empty input");
  if (IsPowerOfTwo(n)) return Fft(a, inverse);

  // Bluestein: X_k = conj(w_k) * sum_i (x_i conj(w_i)) w_{k-i},
  // where w_j = exp(+i π j² / n) for the forward transform.
  const std::size_t conv_len = NextPowerOfTwo(2 * n - 1);
  const double sign = inverse ? -1.0 : 1.0;

  std::vector<Complex> chirp(n);
  for (std::size_t j = 0; j < n; ++j) {
    // j² mod 2n avoids precision loss for large j.
    const std::size_t j2 = (j * j) % (2 * n);
    const double angle = kPi * static_cast<double>(j2) / static_cast<double>(n) * sign;
    chirp[j] = Complex(std::cos(angle), std::sin(angle));  // w_j with sign folded in
  }

  std::vector<Complex> av(conv_len, Complex(0.0, 0.0));
  std::vector<Complex> bv(conv_len, Complex(0.0, 0.0));
  for (std::size_t j = 0; j < n; ++j) av[j] = (*a)[j] * std::conj(chirp[j]);
  bv[0] = chirp[0];
  for (std::size_t j = 1; j < n; ++j) bv[j] = bv[conv_len - j] = chirp[j];

  AFFINITY_RETURN_IF_ERROR(Fft(&av, /*inverse=*/false));
  AFFINITY_RETURN_IF_ERROR(Fft(&bv, /*inverse=*/false));
  for (std::size_t j = 0; j < conv_len; ++j) av[j] *= bv[j];
  AFFINITY_RETURN_IF_ERROR(Fft(&av, /*inverse=*/true));

  for (std::size_t k = 0; k < n; ++k) (*a)[k] = av[k] * std::conj(chirp[k]);

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& v : *a) v *= inv_n;
  }
  return Status::OK();
}

StatusOr<std::vector<Complex>> RealDft(const double* x, std::size_t m) {
  if (m == 0) return Status::InvalidArgument("RealDft requires a non-empty input");
  std::vector<Complex> a(m);
  for (std::size_t i = 0; i < m; ++i) a[i] = Complex(x[i], 0.0);
  AFFINITY_RETURN_IF_ERROR(BluesteinDft(&a, /*inverse=*/false));
  return a;
}

}  // namespace affinity::dft
