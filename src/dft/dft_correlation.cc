#include "dft/dft_correlation.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "dft/fft.h"
#include "ts/stats.h"

namespace affinity::dft {

StatusOr<DftCorrelationEstimator> DftCorrelationEstimator::Build(const ts::DataMatrix& data,
                                                                 std::size_t coefficients,
                                                                 const ExecContext& exec) {
  if (coefficients == 0) {
    return Status::InvalidArgument("DftCorrelationEstimator needs >= 1 coefficient");
  }
  const std::size_t m = data.m();
  if (m < 2) {
    return Status::InvalidArgument("DftCorrelationEstimator needs series of length >= 2");
  }
  const std::size_t c = std::min(coefficients, m / 2);

  // Every sketch is independent, so the per-series FFTs fan out; each
  // chunk reuses one normalization scratch buffer.
  std::vector<DftSketch> sketches(data.n());
  AFFINITY_RETURN_IF_ERROR(TryParallelChunks(
      exec, data.n(), [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) -> Status {
        std::vector<double> normalized(m);
        for (std::size_t j = lo; j < hi; ++j) {
          const double* x = data.ColumnData(static_cast<ts::SeriesId>(j));
          const double mu = ts::stats::Mean(x, m);
          const double var = ts::stats::Variance(x, m);
          DftSketch& sk = sketches[j];
          if (var <= 0.0) {
            sk.degenerate = true;
            sk.coefficients.assign(c, Complex(0.0, 0.0));
            continue;
          }
          // x̂ = (x − μ) / (σ √m): unit-norm, zero-mean.
          const double scale = 1.0 / std::sqrt(var * static_cast<double>(m));
          for (std::size_t i = 0; i < m; ++i) normalized[i] = (x[i] - mu) * scale;
          auto spectrum = RealDft(normalized.data(), m);
          if (!spectrum.ok()) return spectrum.status();
          // Unitary scaling so Parseval holds: ‖x̂‖² = Σ|X_k|².
          const double unitary = 1.0 / std::sqrt(static_cast<double>(m));
          sk.coefficients.resize(c);
          for (std::size_t k = 0; k < c; ++k) sk.coefficients[k] = (*spectrum)[k + 1] * unitary;
        }
        return Status::OK();
      }));
  return DftCorrelationEstimator(std::move(sketches), c);
}

double DftCorrelationEstimator::Estimate(ts::SeriesId u, ts::SeriesId v) const {
  AFFINITY_DCHECK(u < sketches_.size() && v < sketches_.size());
  if (u == v) return 1.0;
  const DftSketch& a = sketches_[u];
  const DftSketch& b = sketches_[v];
  if (a.degenerate || b.degenerate) return 0.0;
  double dist2 = 0.0;
  for (std::size_t k = 0; k < coefficients_; ++k) {
    const Complex d = a.coefficients[k] - b.coefficients[k];
    // affinity-lint: allow(fp-accumulate): sketch distance over a handful of DFT
    // coefficients — sequential by coefficient index, never chunked
    dist2 += std::norm(d);
  }
  // Conjugate-symmetric mirror doubles the retained energy (k and m−k).
  dist2 *= 2.0;
  const double rho = 1.0 - dist2 / 2.0;
  // The truncated distance underestimates, so rho can only be overestimated;
  // clamp to the valid range for robustness.
  return std::clamp(rho, -1.0, 1.0);
}

la::Matrix DftCorrelationEstimator::EstimateAll() const {
  const std::size_t n = sketches_.size();
  la::Matrix out(n, n);
  for (std::size_t u = 0; u < n; ++u) {
    out(u, u) = 1.0;
    for (std::size_t v = u + 1; v < n; ++v) {
      const double r = Estimate(static_cast<ts::SeriesId>(u), static_cast<ts::SeriesId>(v));
      out(u, v) = r;
      out(v, u) = r;
    }
  }
  return out;
}

}  // namespace affinity::dft
