#ifndef AFFINITY_SERVE_SERVING_SNAPSHOT_H_
#define AFFINITY_SERVE_SERVING_SNAPSHOT_H_

/// \file serving_snapshot.h
/// Lock-free snapshot serving (DESIGN.md §11): immutable, read-optimized
/// replicas of one AFFINITY instance, published per refresh.
///
/// The live structures (SYMEX+ hash, SCAPE B+-trees) are mutated in place
/// by the incremental maintenance path, so serving queries from them while
/// a slide is absorbing would require locks. Instead, each successful
/// refresh *flattens* the maintained stack into a `ServingSnapshot`:
///
///  * every SCAPE (pivot, family) B+-tree becomes a pair of sorted
///    contiguous arrays (keys + payloads, in exact tree order) so index
///    scans become branch-free `std::lower_bound` / `std::upper_bound`
///    seeks plus linear array walks — cache-dense where the tree chased
///    node pointers;
///  * the WA surface (per-series stats, L-measure values, the six pair
///    measure tables in lexicographic pair order) is frozen into flat
///    arrays, so snapshot WA queries never touch the live hash;
///  * the window is a `CowWindow`: refcounted immutable column segments
///    shared with the storage table (and with the previous epoch), with
///    the dense form materialized lazily on the first WN sweep.
///
/// Publication is *incremental* between consecutive epochs. A slide's
/// refresh records which ξ-ranges each (pivot, family) tree dirtied
/// (`core::ScapeDeltaLog`); `SnapshotBuilder::BuildDelta` splices the
/// untouched sorted runs from the prior epoch's arrays (shared wholesale
/// when a tree didn't move at all), re-emits only dirty runs from the live
/// tree, and re-captures the window as segment references — zero sample
/// copies. The result is bitwise identical to a from-scratch `Build` at
/// every epoch; `Build` remains the simple single-pass oracle.
///
/// Snapshots are published through an `EpochPublisher` — an atomic
/// shared_ptr swap, optionally backed by a ring that pins the last N
/// epochs for diagnostics / branch-diff queries. Readers `Acquire()` a
/// snapshot (or `AcquireEpoch(g)` a pinned one) and keep it alive for the
/// duration of a query; writers publish a fresh replica and never touch
/// an old one, so queries never wait on maintenance and maintenance never
/// waits on queries. Memory lifetime is reference-counted: an old epoch
/// is reclaimed when the ring drops it and its last in-flight query ends.
///
/// The serving contract is *bitwise identity*: every answer computed from
/// a snapshot equals the live engine's answer over the same structures
/// (serve_query.h mirrors each execution path exactly; the flattened scan
/// semantics, including equal-key order, replicate the B+-tree's).

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/planner.h"
#include "core/scape.h"
#include "core/symex.h"
#include "storage/table.h"
#include "ts/data_matrix.h"

namespace affinity::serve {

/// Copy-on-write analysis window: either an owned dense matrix (full
/// build) or refcounted column-segment references into the storage table
/// (delta build — zero sample copies, segments shared with the previous
/// epoch). Exposes the `DataMatrix` read surface the serving paths use;
/// the dense form materializes lazily, once, on the first access that
/// needs contiguous columns.
///
/// Aliasing contract (DESIGN.md §11): segment buffers are append-only and
/// fully reserved, and this window only ever reads rows below its
/// capture point `anchor_row() + m()`, while the table's writer only
/// appends at or past it — disjoint elements, so readers and the
/// maintenance thread never touch the same byte.
class CowWindow {
 public:
  CowWindow() = default;

  /// Wraps an already-materialized window (the full-build path).
  static CowWindow FromDense(ts::DataMatrix dense);

  /// Captures refcounted segment handles covering the `rows` rows ending
  /// at the table's append point, starting at absolute row `first_row`
  /// (which becomes the window's block-grid anchor). Zero sample copies.
  /// Returns false when the table's retained rows cannot cover the span.
  static bool FromTable(const storage::DataMatrixTable& table, std::size_t first_row,
                        std::size_t rows, std::vector<std::string> names, CowWindow* out);

  std::size_t m() const { return m_; }
  std::size_t n() const { return n_; }
  std::size_t anchor_row() const { return anchor_; }

  /// Contiguous storage of series `id` (length m()). Materializes the
  /// dense window on first use — thread-safe, at most once per window.
  const double* ColumnData(ts::SeriesId id) const;

  /// The dense window as a DataMatrix (same lazy materialization).
  const ts::DataMatrix& dense() const;

  /// Number of segment buffers this window references (0 in dense mode)
  /// and how many of them `prior` also references — the reuse accounting
  /// surfaced per publication.
  std::size_t segment_count() const;
  std::size_t SharedSegmentsWith(const CowWindow& prior) const;

 private:
  /// One run of consecutive window rows inside a shared segment buffer.
  struct Span {
    std::shared_ptr<const std::vector<double>> owner;
    const double* data = nullptr;
    std::size_t rows = 0;
  };
  /// Heap-held so CowWindow stays movable (std::once_flag is not) and so
  /// concurrent readers of a shared snapshot synchronize on one flag.
  struct Lazy {
    std::once_flag once;
    ts::DataMatrix dense;
  };

  const ts::DataMatrix& Materialize() const;

  std::size_t m_ = 0;
  std::size_t n_ = 0;
  std::size_t anchor_ = 0;
  std::vector<std::string> names_;
  std::vector<std::vector<Span>> cols_;  ///< per series; empty in dense mode
  std::shared_ptr<Lazy> lazy_;
};

/// One side-list (degenerate) entry: U == 0 or a degenerate pivot. Keeps
/// ξ so T-measure queries can still evaluate value = ‖α‖·ξ directly.
struct FlatDegenerateEntry {
  ts::SequencePair pair;
  double u = 0.0;
  double xi = 0.0;
};

/// The sorted SoA runs of one flattened (pivot, family) tree: the
/// B+-tree's entries in exact key order (equal-key runs preserved).
/// Structure-of-arrays deliberately: an accepted run is appended straight
/// from `pairs` at 8 bytes/entry of read traffic, and only the D-measure
/// verify band touches `us` — where the interleaved live tree drags every
/// leaf's full entry through cache on any walk. Held behind a shared_ptr
/// so consecutive epochs share unchanged trees without copying.
struct FlatPairRuns {
  std::vector<double> keys;             ///< ξ ascending, tree iteration order
  std::vector<ts::SequencePair> pairs;  ///< aligned with keys
  std::vector<double> us;               ///< stored normalizers, aligned with keys
};

/// A flattened (pivot, T-measure family) SCAPE tree.
struct FlatPairTree {
  double norm = 0.0;  ///< ‖α‖; 0 marks a degenerate pivot
  double u_min = 0.0;
  double u_max = 0.0;
  std::shared_ptr<const FlatPairRuns> runs;     ///< never null once built
  std::vector<FlatDegenerateEntry> degenerate;  ///< side list, member order
};

/// Flattened pair-level pivot node (family 0 = covariance, 1 = dot).
struct FlatPairPivot {
  std::array<FlatPairTree, 2> trees;
};

/// Sorted runs of a flattened per-cluster location tree (series by ξ).
struct FlatLocRuns {
  std::vector<double> keys;
  std::vector<ts::SeriesId> series;  ///< aligned with keys
};

/// A flattened per-cluster location tree.
struct FlatLocTree {
  double norm = 1.0;
  std::shared_ptr<const FlatLocRuns> runs;  ///< never null once built
};

/// Flattened location pivot node (0 = mean, 1 = median, 2 = mode).
struct FlatLocPivot {
  std::array<FlatLocTree, 3> trees;
};

/// An immutable read-optimized replica of one AFFINITY instance at one
/// refresh epoch. Everything a MET/MER/MEC/top-k needs is embedded; no
/// pointer into the live stack survives in here (shared segment buffers
/// and flat runs are jointly owned, never aliased mutably).
struct ServingSnapshot {
  /// Publication epoch (monotone per publisher; 0 never published).
  std::uint64_t generation = 0;
  /// Logical stream row count when this snapshot was published.
  std::size_t snapshot_row = 0;

  /// The analysis window (copy-on-write; anchor_row preserved) — the WN
  /// surface.
  CowWindow data;

  /// The live engine's capabilities at publication — drives the exact
  /// same kAuto planning as the live engine.
  core::QueryPlanner::Capabilities caps;

  /// True when SCAPE pivot arrays below were flattened from a live index.
  bool has_scape = false;
  std::vector<FlatPairPivot> pair_pivots;
  std::vector<FlatLocPivot> loc_pivots;

  // --- WA surface ----------------------------------------------------------
  /// Exact per-series statistics (diagonal MEC semantics).
  std::vector<core::SeriesStats> stats;
  /// L-measure value per series, per family (mean/median/mode).
  std::array<std::vector<double>, 3> location;
  std::array<bool, 3> location_ok{};  ///< false → family not servable
  /// Pair measure tables in lexicographic (u, v) order, indexed by
  /// `Measure - kCovariance` (covariance .. Dice). A table absent (ok
  /// false) — e.g. a truncated model without the relationship — makes the
  /// affected WA query kUnavailable, and the caller falls back live.
  std::array<std::vector<double>, 6> pair_values;
  std::array<bool, 6> pair_ok{};
};

/// Accounting of one publication, for the maintenance profile and the
/// `--serve-publish` bench: what was materialized vs shared.
struct PublishStats {
  bool delta = false;                     ///< built by BuildDelta
  std::size_t bytes_copied = 0;           ///< bytes written into the new epoch
  std::size_t window_segments_total = 0;  ///< segment refs captured (0 = dense copy)
  std::size_t window_segments_reused = 0; ///< of those, shared with the prior epoch
  std::size_t trees_shared = 0;           ///< flat trees reused wholesale
  std::size_t trees_spliced = 0;          ///< flat trees partially spliced
  std::size_t trees_rebuilt = 0;          ///< flat trees fully re-walked
};

/// Flattens live structures into `ServingSnapshot`s. Friend of
/// `core::ScapeIndex` — the only seam that reads the private pivot trees.
class SnapshotBuilder {
 public:
  /// Builds a replica of (`model`, `scape`) stamped with `generation` and
  /// `snapshot_row`, copying the window densely and walking every tree —
  /// the from-scratch oracle every delta build must match bit for bit.
  /// `scape` may be null (no SCAPE surface). `caps` must be the serving
  /// engine's capabilities so kAuto plans match. Never fails: a WA table
  /// whose model accessor errors (truncated model) is marked absent
  /// instead, demoting only those queries to live fallback.
  static std::shared_ptr<const ServingSnapshot> Build(
      const core::AffinityModel& model, const core::ScapeIndex* scape,
      const core::QueryPlanner::Capabilities& caps, std::uint64_t generation,
      std::size_t snapshot_row, PublishStats* stats = nullptr);

  /// Incremental publication (DESIGN.md §11): builds the same snapshot
  /// `Build` would, but
  ///  * captures the window as refcounted segment references into `table`
  ///    (zero sample copies; segments shared with `prior`),
  ///  * shares each flat tree's runs with `prior` when its ScapeDeltaLog
  ///    range is clean, splices the untouched prefix/suffix runs around a
  ///    dirty range (re-walking only the dirty middle), and falls back to
  ///    a full walk when the dirty range covers most of the tree,
  ///  * refills the WA surface in parallel over `exec` through the bulk
  ///    `PairMeasures6` accessor (bitwise equal to the per-measure path).
  ///
  /// Valid only when `prior` was flattened from the *same* live structures
  /// at the previous epoch and `delta` records exactly the one Refresh
  /// between the two — the streaming layer guarantees this and resets to
  /// `Build` after any rebuild, restore, or escalation. Returns nullptr
  /// when a precondition does not hold (caller falls back to `Build`).
  ///
  /// `scratch` may pass back a *retired* epoch (one `EpochPublisher::
  /// Publish` returned, with no surviving readers): its vectors are
  /// overwritten in place, so the steady state allocates nothing per
  /// epoch — the retiring epoch's memory becomes the next one's. Every
  /// element is rewritten (or cleared) before the result is published, so
  /// recycling never changes the produced bits.
  static std::shared_ptr<const ServingSnapshot> BuildDelta(
      const core::AffinityModel& model, const core::ScapeIndex* scape,
      const core::ScapeDeltaLog& delta, const storage::DataMatrixTable& table,
      const ServingSnapshot& prior, const core::QueryPlanner::Capabilities& caps,
      std::uint64_t generation, std::size_t snapshot_row, const ExecContext& exec = {},
      PublishStats* stats = nullptr, std::shared_ptr<ServingSnapshot> scratch = nullptr);
};

/// Epoch-based publication point: writers atomically swap in a fresh
/// immutable snapshot; readers acquire the current one with shared
/// ownership. The atomic<shared_ptr> swap is the only synchronization on
/// the serving fast path — queries never block on maintenance.
///
/// With `history > 0` the publisher additionally pins the last `history`
/// superseded epochs in a ring, retrievable by generation through
/// `AcquireEpoch` — diagnostics and branch-diff readers can hold an old
/// epoch (bit-stable, still queryable) while newer epochs publish, at the
/// cost of one mutex hop off the fast path. `T` must expose a
/// `generation` field. Publish must stay single-writer (the maintenance
/// thread), as before.
template <typename T>
class EpochPublisher {
 public:
  EpochPublisher() = default;
  explicit EpochPublisher(std::size_t history) : history_(history) {}

  /// Publishes `snapshot` as the current epoch (release ordering: all the
  /// builder's writes happen-before any reader that acquires it). The
  /// outgoing epoch moves into the pinned ring *before* the swap, so no
  /// generation is ever unreachable in between.
  ///
  /// Returns the epoch this publish *retired* — the one evicted from the
  /// ring (or, with no ring, the replaced current) — so the caller can
  /// recycle its memory into the next build instead of freeing ~the whole
  /// replica on the publish critical path. nullptr when nothing retired.
  /// A retired epoch may still be pinned by in-flight readers; recycle it
  /// only when its use_count() is 1.
  std::shared_ptr<const T> Publish(std::shared_ptr<const T> snapshot) EXCLUDES(mu_) {
    std::shared_ptr<const T> retired;
    if (history_ > 0) {
      auto prev = current_.load(std::memory_order_acquire);
      if (prev != nullptr) {
        MutexLock lock(mu_);
        ring_.push_back(std::move(prev));
        while (ring_.size() > history_) {
          retired = std::move(ring_.front());
          ring_.pop_front();
        }
      }
      current_.store(std::move(snapshot), std::memory_order_release);
    } else {
      retired = current_.exchange(std::move(snapshot), std::memory_order_acq_rel);
    }
    return retired;
  }

  /// The current epoch's snapshot (nullptr before the first Publish).
  /// The returned shared_ptr keeps the epoch alive across the query.
  std::shared_ptr<const T> Acquire() const {
    return current_.load(std::memory_order_acquire);
  }

  /// The epoch with exactly `generation`: the current one when it
  /// matches, else a ring-pinned one, else nullptr (never published, or
  /// already evicted by newer publishes).
  std::shared_ptr<const T> AcquireEpoch(std::uint64_t generation) const EXCLUDES(mu_) {
    auto current = Acquire();
    if (current != nullptr && current->generation == generation) return current;
    MutexLock lock(mu_);
    for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
      if ((*it)->generation == generation) return *it;
    }
    return nullptr;
  }

  /// Number of superseded epochs the ring pins.
  std::size_t history() const { return history_; }

 private:
  std::size_t history_ = 0;  ///< immutable after construction
  /// The serving fast path: swap/load only, never under mu_.
  std::atomic<std::shared_ptr<const T>> current_;
  mutable Mutex mu_;
  std::deque<std::shared_ptr<const T>> ring_ GUARDED_BY(mu_);  ///< oldest first
};

}  // namespace affinity::serve

#endif  // AFFINITY_SERVE_SERVING_SNAPSHOT_H_
