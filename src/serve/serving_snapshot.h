#ifndef AFFINITY_SERVE_SERVING_SNAPSHOT_H_
#define AFFINITY_SERVE_SERVING_SNAPSHOT_H_

/// \file serving_snapshot.h
/// Lock-free snapshot serving (DESIGN.md §11): immutable, read-optimized
/// replicas of one AFFINITY instance, published per refresh.
///
/// The live structures (SYMEX+ hash, SCAPE B+-trees) are mutated in place
/// by the incremental maintenance path, so serving queries from them while
/// a slide is absorbing would require locks. Instead, each successful
/// refresh *flattens* the maintained stack into a `ServingSnapshot`:
///
///  * every SCAPE (pivot, family) B+-tree becomes a pair of sorted
///    contiguous arrays (keys + payloads, in exact tree order) so index
///    scans become branch-free `std::lower_bound` / `std::upper_bound`
///    seeks plus linear array walks — cache-dense where the tree chased
///    node pointers;
///  * the WA surface (per-series stats, L-measure values, the six pair
///    measure tables in lexicographic pair order) is frozen into flat
///    arrays, so snapshot WA queries never touch the live hash;
///  * the window itself is copied (`ts::DataMatrix` keeps its block-grid
///    anchor), so snapshot WN sweeps are bitwise those of the live engine.
///
/// Snapshots are published through an `EpochPublisher` — an atomic
/// shared_ptr swap. Readers `Acquire()` a snapshot and keep it alive for
/// the duration of a query; writers publish a fresh replica and never
/// touch an old one, so queries never wait on maintenance and maintenance
/// never waits on queries. Memory lifetime is reference-counted: an old
/// epoch is reclaimed when its last in-flight query drops it.
///
/// The serving contract is *bitwise identity*: every answer computed from
/// a snapshot equals the live engine's answer over the same structures
/// (serve_query.h mirrors each execution path exactly; the flattened scan
/// semantics, including equal-key order, replicate the B+-tree's).

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/planner.h"
#include "core/scape.h"
#include "core/symex.h"
#include "ts/data_matrix.h"

namespace affinity::serve {

/// One side-list (degenerate) entry: U == 0 or a degenerate pivot. Keeps
/// ξ so T-measure queries can still evaluate value = ‖α‖·ξ directly.
struct FlatDegenerateEntry {
  ts::SequencePair pair;
  double u = 0.0;
  double xi = 0.0;
};

/// A flattened (pivot, T-measure family) SCAPE tree: the B+-tree's entries
/// in exact key order (equal-key runs preserved), as parallel arrays.
/// Structure-of-arrays deliberately: an accepted run is appended straight
/// from `pairs` at 8 bytes/entry of read traffic, and only the D-measure
/// verify band touches `us` — where the interleaved live tree drags every
/// leaf's full entry through cache on any walk.
struct FlatPairTree {
  double norm = 0.0;  ///< ‖α‖; 0 marks a degenerate pivot
  double u_min = 0.0;
  double u_max = 0.0;
  std::vector<double> keys;            ///< ξ ascending, tree iteration order
  std::vector<ts::SequencePair> pairs;  ///< aligned with keys
  std::vector<double> us;               ///< stored normalizers, aligned with keys
  std::vector<FlatDegenerateEntry> degenerate;  ///< side list, member order
};

/// Flattened pair-level pivot node (family 0 = covariance, 1 = dot).
struct FlatPairPivot {
  std::array<FlatPairTree, 2> trees;
};

/// A flattened per-cluster location tree (series keyed by ξ).
struct FlatLocTree {
  double norm = 1.0;
  std::vector<double> keys;
  std::vector<ts::SeriesId> series;  ///< aligned with keys
};

/// Flattened location pivot node (0 = mean, 1 = median, 2 = mode).
struct FlatLocPivot {
  std::array<FlatLocTree, 3> trees;
};

/// An immutable read-optimized replica of one AFFINITY instance at one
/// refresh epoch. Everything a MET/MER/MEC/top-k needs is embedded; no
/// pointer into the live stack survives in here.
struct ServingSnapshot {
  /// Publication epoch (monotone per publisher; 0 never published).
  std::uint64_t generation = 0;
  /// Logical stream row count when this snapshot was published.
  std::size_t snapshot_row = 0;

  /// The analysis window (copy; anchor_row preserved) — the WN surface.
  ts::DataMatrix data;

  /// The live engine's capabilities at publication — drives the exact
  /// same kAuto planning as the live engine.
  core::QueryPlanner::Capabilities caps;

  /// True when SCAPE pivot arrays below were flattened from a live index.
  bool has_scape = false;
  std::vector<FlatPairPivot> pair_pivots;
  std::vector<FlatLocPivot> loc_pivots;

  // --- WA surface ----------------------------------------------------------
  /// Exact per-series statistics (diagonal MEC semantics).
  std::vector<core::SeriesStats> stats;
  /// L-measure value per series, per family (mean/median/mode).
  std::array<std::vector<double>, 3> location;
  std::array<bool, 3> location_ok{};  ///< false → family not servable
  /// Pair measure tables in lexicographic (u, v) order, indexed by
  /// `Measure - kCovariance` (covariance .. Dice). A table absent (ok
  /// false) — e.g. a truncated model without the relationship — makes the
  /// affected WA query kUnavailable, and the caller falls back live.
  std::array<std::vector<double>, 6> pair_values;
  std::array<bool, 6> pair_ok{};
};

/// Flattens live structures into `ServingSnapshot`s. Friend of
/// `core::ScapeIndex` — the only seam that reads the private pivot trees.
class SnapshotBuilder {
 public:
  /// Builds a replica of (`model`, `scape`) stamped with `generation` and
  /// `snapshot_row`. `scape` may be null (no SCAPE surface). `caps` must
  /// be the serving engine's capabilities so kAuto plans match. Never
  /// fails: a WA table whose model accessor errors (truncated model) is
  /// marked absent instead, demoting only those queries to live fallback.
  static std::shared_ptr<const ServingSnapshot> Build(
      const core::AffinityModel& model, const core::ScapeIndex* scape,
      const core::QueryPlanner::Capabilities& caps, std::uint64_t generation,
      std::size_t snapshot_row);
};

/// Epoch-based publication point: writers atomically swap in a fresh
/// immutable snapshot; readers acquire the current one with shared
/// ownership. The atomic<shared_ptr> swap is the only synchronization in
/// the serving path — queries never block on maintenance.
template <typename T>
class EpochPublisher {
 public:
  /// Publishes `snapshot` as the current epoch (release ordering: all the
  /// builder's writes happen-before any reader that acquires it).
  void Publish(std::shared_ptr<const T> snapshot) {
    current_.store(std::move(snapshot), std::memory_order_release);
  }

  /// The current epoch's snapshot (nullptr before the first Publish).
  /// The returned shared_ptr keeps the epoch alive across the query.
  std::shared_ptr<const T> Acquire() const {
    return current_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::shared_ptr<const T>> current_;
};

}  // namespace affinity::serve

#endif  // AFFINITY_SERVE_SERVING_SNAPSHOT_H_
