#include "serve/serve_query.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "core/kernels.h"

namespace affinity::serve {

namespace {

using core::ExecutedPlan;
using core::IsDerived;
using core::IsLocation;
using core::kNoSeries;
using core::Measure;
using core::MeasureName;
using core::PlanChoice;
using core::PruneStats;
using core::QueryMethod;
using core::QueryMethodName;
using core::QueryPlanner;
using core::ScapeQueryResult;
using core::ScapeTopKEntry;
using core::ScapeTopKResult;
using core::SelectionResult;
using core::SeriesStats;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Pairs before row u in the lexicographic (u, v) sweep order — the index
/// arithmetic of the frozen pair tables (same formula as the engine's).
std::size_t PairsBeforeRow(std::size_t u, std::size_t n) {
  return u * (2 * n - u - 1) / 2;
}

std::size_t LexPairIndex(std::size_t u, std::size_t v, std::size_t n) {
  return PairsBeforeRow(u, n) + (v - u - 1);
}

/// Measure family of the two pair-level tree slots (0 cov, 1 dot) —
/// mirrors ScapeIndex::PairFamilyIndex.
int PairFamilyIndex(Measure m) {
  switch (m) {
    case Measure::kCovariance:
    case Measure::kCorrelation:
      return 0;
    case Measure::kDotProduct:
    case Measure::kCosine:
      return 1;
    default:
      return -1;
  }
}

/// Location family slot (0 mean, 1 median, 2 mode) — mirrors
/// ScapeIndex::LocationFamilyIndex.
int LocationFamilyIndex(Measure m) {
  switch (m) {
    case Measure::kMean:
      return 0;
    case Measure::kMedian:
      return 1;
    case Measure::kMode:
      return 2;
    default:
      return -1;
  }
}

/// First index whose key is >= `key` (the flat LowerBound).
std::size_t FlatLowerBound(const std::vector<double>& keys, double key) {
  return static_cast<std::size_t>(
      std::lower_bound(keys.begin(), keys.end(), key) - keys.begin());
}

/// First index whose key is > `key` (the flat UpperBound).
std::size_t FlatUpperBound(const std::vector<double>& keys, double key) {
  return static_cast<std::size_t>(
      std::upper_bound(keys.begin(), keys.end(), key) - keys.begin());
}

/// Bulk-accepts the pre-seeked run `src[begin, end)` — one contiguous
/// append instead of a per-entry push, counting the whole run as
/// accepted-unverified. No-op when the run is empty or inverted.
void AcceptPairRun(const std::vector<ts::SequencePair>& src, std::size_t begin, std::size_t end,
                   ScapeQueryResult* out) {
  if (begin >= end) return;
  out->pairs.insert(out->pairs.end(), src.begin() + static_cast<std::ptrdiff_t>(begin),
                    src.begin() + static_cast<std::ptrdiff_t>(end));
  out->prune.accepted_unverified += end - begin;
}

/// Series-array counterpart of AcceptPairRun for location trees.
void AcceptSeriesRun(const std::vector<ts::SeriesId>& src, std::size_t begin, std::size_t end,
                     ScapeQueryResult* out) {
  if (begin >= end) return;
  out->series.insert(out->series.end(), src.begin() + static_cast<std::ptrdiff_t>(begin),
                     src.begin() + static_cast<std::ptrdiff_t>(end));
  out->prune.accepted_unverified += end - begin;
}

/// Mirrors QueryEngine::ResolvePlan over the snapshot's frozen shape and
/// capabilities — identical inputs, identical plan.
template <typename PlanFn>
ExecutedPlan ResolvePlanServed(const ServingSnapshot& snap, QueryMethod method, PlanFn&& plan) {
  if (method != QueryMethod::kAuto) {
    ExecutedPlan explicit_plan;
    explicit_plan.method = method;
    explicit_plan.rationale = "explicitly requested " + std::string(QueryMethodName(method));
    return explicit_plan;
  }
  return plan(QueryPlanner(snap.data.n(), snap.data.m(), snap.caps));
}

Status CheckIdsServed(const ServingSnapshot& snap, const std::vector<ts::SeriesId>& ids) {
  if (ids.empty()) return Status::InvalidArgument("MEC requires a non-empty id set");
  for (const ts::SeriesId id : ids) {
    if (id >= snap.data.n()) {
      return Status::OutOfRange("series id " + std::to_string(id) + " out of range (n=" +
                                std::to_string(snap.data.n()) + ")");
    }
  }
  return Status::OK();
}

/// Mirrors QueryEngine::SeriesValue: WN recomputes from the window copy,
/// WA reads the frozen L-measure table (kUnavailable when absent).
StatusOr<double> SeriesValueServed(const ServingSnapshot& snap, Measure measure, ts::SeriesId v,
                                   QueryMethod method) {
  switch (method) {
    case QueryMethod::kNaive:
      return core::NaiveLocationMeasure(measure, snap.data.ColumnData(v), snap.data.m());
    case QueryMethod::kAffine: {
      if (!snap.caps.has_model) return Status::FailedPrecondition("WA strategy not attached");
      const int family = LocationFamilyIndex(measure);
      if (family < 0) return Status::InvalidArgument("not an L-measure");
      if (!snap.location_ok[static_cast<std::size_t>(family)]) {
        return Status::Unavailable("snapshot lacks the WA table for " +
                                   std::string(MeasureName(measure)));
      }
      return snap.location[static_cast<std::size_t>(family)][v];
    }
    default:
      return Status::InvalidArgument("L-measures support WN and WA only");
  }
}

/// Mirrors QueryEngine::Value: WN from the window copy, WA from the
/// frozen diagonal stats / lexicographic pair tables.
StatusOr<double> PairValueServed(const ServingSnapshot& snap, Measure measure, ts::SeriesId u,
                                 ts::SeriesId v, QueryMethod method) {
  switch (method) {
    case QueryMethod::kNaive:
      return core::NaivePairMeasure(measure, snap.data.ColumnData(u), snap.data.ColumnData(v),
                                    snap.data.m(), snap.data.anchor_row());
    case QueryMethod::kAffine: {
      if (!snap.caps.has_model) return Status::FailedPrecondition("WA strategy not attached");
      if (u == v) {
        const SeriesStats& st = snap.stats[u];
        switch (measure) {
          case Measure::kCovariance:
            return st.variance;
          case Measure::kDotProduct:
            return st.sumsq;
          case Measure::kCorrelation:
            return st.variance > 0.0 ? 1.0 : 0.0;
          case Measure::kCosine:
          case Measure::kJaccard:
            return st.sumsq > 0.0 ? 1.0 : 0.0;
          case Measure::kDice:
            return st.sumsq > 0.0 ? 1.0 : 0.0;
          default:
            return Status::InvalidArgument("not a pair measure");
        }
      }
      const int table = static_cast<int>(measure) - static_cast<int>(Measure::kCovariance);
      if (table < 0 || table >= 6) return Status::InvalidArgument("not a pair measure");
      if (!snap.pair_ok[static_cast<std::size_t>(table)]) {
        return Status::Unavailable("snapshot lacks the WA table for " +
                                   std::string(MeasureName(measure)));
      }
      const ts::SequencePair e(u, v);
      return snap.pair_values[static_cast<std::size_t>(table)]
                             [LexPairIndex(e.u, e.v, snap.data.n())];
    }
    case QueryMethod::kDft:
      return Status::Internal("WF values are computed batch-wise (see Mec/Met/Mer)");
    case QueryMethod::kScape:
      return Status::InvalidArgument("SCAPE answers MET/MER queries, not MEC");
    case QueryMethod::kAuto:
      return Status::Internal("kAuto must be resolved before per-value dispatch");
  }
  return Status::Internal("unreachable");
}

/// Mirrors QueryEngine::SelectByPredicate sequentially — the sequential
/// lexicographic sweep equals the engine's chunk-concatenated order at
/// any thread count, so results match bitwise.
StatusOr<SelectionResult> SelectServed(const ServingSnapshot& snap, Measure measure,
                                       QueryMethod method,
                                       bool (*keep)(double, double, double), double a, double b) {
  SelectionResult out;
  const std::size_t n = snap.data.n();
  if (IsLocation(measure)) {
    for (std::size_t v = 0; v < n; ++v) {
      auto value = SeriesValueServed(snap, measure, static_cast<ts::SeriesId>(v), method);
      if (!value.ok()) return value.status();
      if (keep(*value, a, b)) out.series.push_back(static_cast<ts::SeriesId>(v));
    }
    return out;
  }
  if (n < 2) return out;
  std::vector<core::kernels::Marginals> marginals;
  if (method == QueryMethod::kNaive) {
    marginals = core::kernels::HoistMarginals(snap.data.dense(), ExecContext{});
  }
  for (std::size_t u = 0; u + 1 < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      StatusOr<double> value = [&]() -> StatusOr<double> {
        if (method != QueryMethod::kNaive) {
          return PairValueServed(snap, measure, static_cast<ts::SeriesId>(u),
                                 static_cast<ts::SeriesId>(v), method);
        }
        const double dot = core::kernels::BlockedDot(
            snap.data.ColumnData(static_cast<ts::SeriesId>(u)),
            snap.data.ColumnData(static_cast<ts::SeriesId>(v)), snap.data.m(),
            snap.data.anchor_row());
        return core::PairMeasureFromMoments(
            measure, core::PairMomentsFromMarginals(marginals[u], marginals[v], dot,
                                                    snap.data.m()));
      }();
      if (!value.ok()) return value.status();
      if (keep(*value, a, b)) {
        out.pairs.emplace_back(static_cast<ts::SeriesId>(u), static_cast<ts::SeriesId>(v));
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Flat SCAPE scans — each mirrors the corresponding ScapeIndex query with
// binary-search bounds over the sorted key arrays in place of B+-tree
// descents. Scan regions, verify bands, and result order are identical.
// ---------------------------------------------------------------------------

StatusOr<ScapeQueryResult> FlatLocationThreshold(const ServingSnapshot& snap, int family,
                                                 double tau, bool greater) {
  ScapeQueryResult out;
  for (const FlatLocPivot& node : snap.loc_pivots) {
    const FlatLocTree& lt = node.trees[static_cast<std::size_t>(family)];
    const double tau_prime = tau / lt.norm;
    if (greater) {
      AcceptSeriesRun(lt.runs->series, FlatUpperBound(lt.runs->keys, tau_prime), lt.runs->keys.size(), &out);
    } else {
      AcceptSeriesRun(lt.runs->series, 0, FlatLowerBound(lt.runs->keys, tau_prime), &out);
    }
  }
  return out;
}

StatusOr<ScapeQueryResult> FlatLocationRange(const ServingSnapshot& snap, int family, double lo,
                                             double hi) {
  ScapeQueryResult out;
  for (const FlatLocPivot& node : snap.loc_pivots) {
    const FlatLocTree& lt = node.trees[static_cast<std::size_t>(family)];
    // [ub(lo'), lb(hi')) is exactly the strict (lo', hi') band; AcceptSeriesRun
    // no-ops on an inverted run (hi' at or below the first key past lo').
    AcceptSeriesRun(lt.runs->series, FlatUpperBound(lt.runs->keys, lo / lt.norm),
                    FlatLowerBound(lt.runs->keys, hi / lt.norm), &out);
  }
  return out;
}

StatusOr<ScapeQueryResult> FlatPairThreshold(const ServingSnapshot& snap, Measure measure,
                                             double tau, bool greater) {
  const int family = PairFamilyIndex(measure);
  const bool derived = IsDerived(measure);
  ScapeQueryResult out;

  for (const FlatPairPivot& node : snap.pair_pivots) {
    const FlatPairTree& pt = node.trees[static_cast<std::size_t>(family)];

    if (!derived) {
      if (pt.norm > 0.0) {
        const double tau_prime = tau / pt.norm;
        if (greater) {
          AcceptPairRun(pt.runs->pairs, FlatUpperBound(pt.runs->keys, tau_prime), pt.runs->keys.size(), &out);
        } else {
          AcceptPairRun(pt.runs->pairs, 0, FlatLowerBound(pt.runs->keys, tau_prime), &out);
        }
      } else {
        const bool zero_in = greater ? 0.0 > tau : 0.0 < tau;
        if (zero_in) {
          for (const FlatDegenerateEntry& s : pt.degenerate) out.pairs.push_back(s.pair);
        }
        out.prune.scanned_degenerate += pt.degenerate.size();
        continue;
      }
      for (const FlatDegenerateEntry& s : pt.degenerate) {
        const double value = pt.norm * s.xi;
        if (greater ? value > tau : value < tau) out.pairs.push_back(s.pair);
      }
      out.prune.scanned_degenerate += pt.degenerate.size();
      continue;
    }

    // D-measure §5.3 pruning over the flat key array.
    if (pt.norm > 0.0 && !pt.runs->keys.empty()) {
      const double b1 = tau * pt.u_min;
      const double b2 = tau * pt.u_max;
      const double lo_key = std::min(b1, b2) / pt.norm;
      const double hi_key = std::max(b1, b2) / pt.norm;
      // Keys ≤ hi_key form the verify band, keys > hi_key (resp. < lo_key)
      // the unconditional-accept band — contiguous in the sorted array, so
      // the accept side becomes one bulk run. Ascending order is preserved:
      // for `greater` the verify band precedes the accepted tail; for
      // `lesser` the accepted head precedes the verify band.
      if (greater) {
        const std::size_t vend = FlatUpperBound(pt.runs->keys, hi_key);
        for (std::size_t i = FlatLowerBound(pt.runs->keys, lo_key); i < vend; ++i) {
          const double value = pt.norm * pt.runs->keys[i] / pt.runs->us[i];
          ++out.prune.verified;
          if (value > tau) out.pairs.push_back(pt.runs->pairs[i]);
        }
        AcceptPairRun(pt.runs->pairs, vend, pt.runs->keys.size(), &out);
      } else {
        const std::size_t vbegin = FlatLowerBound(pt.runs->keys, lo_key);
        AcceptPairRun(pt.runs->pairs, 0, vbegin, &out);
        const std::size_t vend = FlatUpperBound(pt.runs->keys, hi_key);
        for (std::size_t i = vbegin; i < vend; ++i) {
          const double value = pt.norm * pt.runs->keys[i] / pt.runs->us[i];
          ++out.prune.verified;
          if (value < tau) out.pairs.push_back(pt.runs->pairs[i]);
        }
      }
    }
    const bool zero_in = greater ? 0.0 > tau : 0.0 < tau;
    if (zero_in) {
      for (const FlatDegenerateEntry& s : pt.degenerate) out.pairs.push_back(s.pair);
    }
    out.prune.scanned_degenerate += pt.degenerate.size();
  }
  return out;
}

StatusOr<ScapeQueryResult> FlatPairRange(const ServingSnapshot& snap, Measure measure, double lo,
                                         double hi) {
  const int family = PairFamilyIndex(measure);
  const bool derived = IsDerived(measure);
  ScapeQueryResult out;

  for (const FlatPairPivot& node : snap.pair_pivots) {
    const FlatPairTree& pt = node.trees[static_cast<std::size_t>(family)];

    if (!derived) {
      if (pt.norm > 0.0) {
        AcceptPairRun(pt.runs->pairs, FlatUpperBound(pt.runs->keys, lo / pt.norm),
                      FlatLowerBound(pt.runs->keys, hi / pt.norm), &out);
        for (const FlatDegenerateEntry& s : pt.degenerate) {
          const double value = pt.norm * s.xi;
          if (lo < value && value < hi) out.pairs.push_back(s.pair);
        }
      } else if (lo < 0.0 && 0.0 < hi) {
        for (const FlatDegenerateEntry& s : pt.degenerate) out.pairs.push_back(s.pair);
      }
      out.prune.scanned_degenerate += pt.degenerate.size();
      continue;
    }

    if (pt.norm > 0.0 && !pt.runs->keys.empty()) {
      const double l1 = lo * pt.u_min, l2 = lo * pt.u_max;
      const double h1 = hi * pt.u_min, h2 = hi * pt.u_max;
      const double reject_below = std::min(l1, l2) / pt.norm;
      const double accept_lo = std::max(l1, l2) / pt.norm;
      const double accept_hi = std::min(h1, h2) / pt.norm;
      const double reject_above = std::max(h1, h2) / pt.norm;
      // The §5.3 walk splits into verify / bulk-accept / verify segments:
      // within [begin, end) the strict (accept_lo, accept_hi) band is the
      // contiguous run [ub(accept_lo), lb(accept_hi)), clamped so an empty
      // or out-of-walk band degenerates to verify-everything — identical
      // accept/verify decisions, in the same ascending order.
      const std::size_t begin = FlatUpperBound(pt.runs->keys, reject_below);
      const std::size_t end = std::max(begin, FlatLowerBound(pt.runs->keys, reject_above));
      const std::size_t a = std::clamp(FlatUpperBound(pt.runs->keys, accept_lo), begin, end);
      const std::size_t b = std::clamp(std::max(a, FlatLowerBound(pt.runs->keys, accept_hi)), a, end);
      for (std::size_t i = begin; i < a; ++i) {
        const double value = pt.norm * pt.runs->keys[i] / pt.runs->us[i];
        ++out.prune.verified;
        if (lo < value && value < hi) out.pairs.push_back(pt.runs->pairs[i]);
      }
      AcceptPairRun(pt.runs->pairs, a, b, &out);
      for (std::size_t i = b; i < end; ++i) {
        const double value = pt.norm * pt.runs->keys[i] / pt.runs->us[i];
        ++out.prune.verified;
        if (lo < value && value < hi) out.pairs.push_back(pt.runs->pairs[i]);
      }
    }
    if (lo < 0.0 && 0.0 < hi) {
      for (const FlatDegenerateEntry& s : pt.degenerate) out.pairs.push_back(s.pair);
    }
    out.prune.scanned_degenerate += pt.degenerate.size();
  }
  return out;
}

StatusOr<ScapeQueryResult> FlatMeasureThreshold(const ServingSnapshot& snap, Measure measure,
                                                double tau, bool greater) {
  const int loc = LocationFamilyIndex(measure);
  if (loc >= 0) return FlatLocationThreshold(snap, loc, tau, greater);
  if (PairFamilyIndex(measure) >= 0) return FlatPairThreshold(snap, measure, tau, greater);
  return Status::Unimplemented(std::string(MeasureName(measure)) +
                               " is not SCAPE-indexable (no separable normalizer)");
}

StatusOr<ScapeQueryResult> FlatMeasureRange(const ServingSnapshot& snap, Measure measure,
                                            double lo, double hi) {
  if (lo > hi) return Status::InvalidArgument("MER requires lo <= hi");
  const int loc = LocationFamilyIndex(measure);
  if (loc >= 0) return FlatLocationRange(snap, loc, lo, hi);
  if (PairFamilyIndex(measure) >= 0) return FlatPairRange(snap, measure, lo, hi);
  return Status::Unimplemented(std::string(MeasureName(measure)) +
                               " is not SCAPE-indexable (no separable normalizer)");
}

// ---------------------------------------------------------------------------
// Flat top-k: the threshold algorithm of scape_topk.cc over array streams.
// Stream construction order, bound formulas, heap disciplines, and the TA
// stop condition are identical, so the produced entries match exactly.
// ---------------------------------------------------------------------------

struct Candidate {
  double value;
  ScapeTopKEntry entry;
};

struct WorseCandidate {
  bool operator()(const Candidate& a, const Candidate& b) const { return a.value > b.value; }
};

class Stream {
 public:
  virtual ~Stream() = default;
  virtual double Bound() const = 0;
  virtual Candidate Take() = 0;
  virtual bool Exhausted() const = 0;
};

struct WorseBound {
  bool operator()(const Stream* a, const Stream* b) const { return a->Bound() < b->Bound(); }
};

StatusOr<ScapeTopKResult> FlatTopK(const ServingSnapshot& snap, Measure measure, std::size_t k,
                                   bool largest) {
  if (k == 0) return ScapeTopKResult{};
  const int loc_family = LocationFamilyIndex(measure);
  const int pair_family = PairFamilyIndex(measure);
  if (loc_family < 0 && pair_family < 0) {
    return Status::Unimplemented(std::string(MeasureName(measure)) +
                                 " is not SCAPE-indexable (no separable normalizer)");
  }
  const bool derived = IsDerived(measure);
  const double sign = largest ? 1.0 : -1.0;

  /// Pair-array stream: walks the flat keys best-first (descending for
  /// `largest`, ascending otherwise).
  class FlatPairStream final : public Stream {
   public:
    FlatPairStream(const FlatPairTree* ft, bool largest, bool derived, double sign)
        : ft_(ft), largest_(largest), derived_(derived), sign_(sign) {
      pos_ = largest_ ? ft_->runs->keys.size() - 1 : 0;
      done_ = ft_->runs->keys.empty();
    }

    bool Exhausted() const override { return done_; }

    double Bound() const override {
      if (done_) return -kInf;
      const double xi = ft_->runs->keys[pos_];
      if (!derived_) return sign_ * ft_->norm * xi;
      const double scaled = sign_ * ft_->norm * xi;
      return scaled >= 0 ? scaled / ft_->u_min : scaled / ft_->u_max;
    }

    Candidate Take() override {
      const double xi = ft_->runs->keys[pos_];
      Candidate c;
      c.entry.pair = ft_->runs->pairs[pos_];
      const double raw = derived_ ? ft_->norm * xi / ft_->runs->us[pos_] : ft_->norm * xi;
      c.entry.value = raw;
      c.value = sign_ * raw;
      if (largest_) {
        if (pos_ == 0) {
          done_ = true;
        } else {
          --pos_;
        }
      } else {
        ++pos_;
        if (pos_ >= ft_->runs->keys.size()) done_ = true;
      }
      return c;
    }

   private:
    const FlatPairTree* ft_;
    bool largest_;
    bool derived_;
    double sign_;
    std::size_t pos_ = 0;
    bool done_ = false;
  };

  class VectorStream final : public Stream {
   public:
    explicit VectorStream(std::vector<Candidate> sorted_desc) : items_(std::move(sorted_desc)) {}
    bool Exhausted() const override { return idx_ >= items_.size(); }
    double Bound() const override { return Exhausted() ? -kInf : items_[idx_].value; }
    Candidate Take() override { return items_[idx_++]; }

   private:
    std::vector<Candidate> items_;
    std::size_t idx_ = 0;
  };

  class FlatLocStream final : public Stream {
   public:
    FlatLocStream(const FlatLocTree* lt, bool largest, double sign)
        : lt_(lt), largest_(largest), sign_(sign) {
      pos_ = largest_ ? lt_->runs->keys.size() - 1 : 0;
      done_ = lt_->runs->keys.empty();
    }
    bool Exhausted() const override { return done_; }
    double Bound() const override {
      if (done_) return -kInf;
      return sign_ * lt_->norm * lt_->runs->keys[pos_];
    }
    Candidate Take() override {
      Candidate c;
      c.entry.series = lt_->runs->series[pos_];
      const double raw = lt_->norm * lt_->runs->keys[pos_];
      c.entry.value = raw;
      c.value = sign_ * raw;
      if (largest_) {
        if (pos_ == 0) {
          done_ = true;
        } else {
          --pos_;
        }
      } else {
        ++pos_;
        if (pos_ >= lt_->runs->keys.size()) done_ = true;
      }
      return c;
    }

   private:
    const FlatLocTree* lt_;
    bool largest_;
    double sign_;
    std::size_t pos_ = 0;
    bool done_ = false;
  };

  std::vector<std::unique_ptr<Stream>> streams;
  if (loc_family >= 0) {
    for (const FlatLocPivot& node : snap.loc_pivots) {
      const FlatLocTree& lt = node.trees[static_cast<std::size_t>(loc_family)];
      if (!lt.runs->keys.empty()) {
        streams.push_back(std::make_unique<FlatLocStream>(&lt, largest, sign));
      }
    }
  } else {
    for (const FlatPairPivot& node : snap.pair_pivots) {
      const FlatPairTree& pt = node.trees[static_cast<std::size_t>(pair_family)];
      if (pt.norm > 0.0 && !pt.runs->keys.empty()) {
        streams.push_back(std::make_unique<FlatPairStream>(&pt, largest, derived, sign));
      }
      if (!pt.degenerate.empty()) {
        std::vector<Candidate> items;
        items.reserve(pt.degenerate.size());
        for (const FlatDegenerateEntry& s : pt.degenerate) {
          const double raw = derived ? 0.0 : pt.norm * s.xi;
          Candidate c;
          c.entry.pair = s.pair;
          c.entry.value = raw;
          c.value = sign * raw;
          items.push_back(c);
        }
        std::sort(items.begin(), items.end(),
                  [](const Candidate& a, const Candidate& b) { return a.value > b.value; });
        streams.push_back(std::make_unique<VectorStream>(std::move(items)));
      }
    }
  }

  std::priority_queue<Stream*, std::vector<Stream*>, WorseBound> frontier;
  for (const auto& s : streams) {
    if (!s->Exhausted()) frontier.push(s.get());
  }

  std::priority_queue<Candidate, std::vector<Candidate>, WorseCandidate> best;
  ScapeTopKResult result;
  while (!frontier.empty()) {
    Stream* s = frontier.top();
    const double bound = s->Bound();
    if (best.size() == k && best.top().value >= bound) break;
    frontier.pop();
    best.push(s->Take());
    ++result.examined;
    if (best.size() > k) best.pop();
    if (!s->Exhausted()) frontier.push(s);
  }

  result.entries.resize(best.size());
  for (std::size_t i = best.size(); i-- > 0;) {
    result.entries[i] = best.top().entry;
    best.pop();
  }
  return result;
}

}  // namespace

StatusOr<core::MecResponse> SnapshotMec(const ServingSnapshot& snap,
                                        const core::MecRequest& request, QueryMethod method) {
  if (request.min_quality > 0.0) {
    // The quality surface is live state (it advances with every append,
    // not every publication), so a frozen replica cannot answer the
    // predicate — bounce to the live engine.
    return Status::Unavailable("quality predicates are not snapshot-servable");
  }
  AFFINITY_RETURN_IF_ERROR(CheckIdsServed(snap, request.ids));
  ExecutedPlan plan = ResolvePlanServed(snap, method, [&](const QueryPlanner& planner) {
    return planner.PlanMec(request.measure, request.ids.size());
  });
  method = plan.method;
  core::AnnotateSnapshotServed(&plan, snap.generation);

  core::MecResponse out;
  out.plan = std::move(plan);
  const std::size_t count = request.ids.size();
  if (IsLocation(request.measure)) {
    out.location = la::Vector(count);
    for (std::size_t i = 0; i < count; ++i) {
      auto value = SeriesValueServed(snap, request.measure, request.ids[i], method);
      if (!value.ok()) return value.status();
      out.location[i] = *value;
    }
    return out;
  }
  if (method == QueryMethod::kDft) {
    // WF builds its sketches per query — nothing frozen can serve it.
    return Status::Unavailable("WF queries are not snapshot-servable");
  }
  out.pair_values = la::Matrix(count, count);
  std::vector<core::kernels::Marginals> marginals;
  std::vector<const double*> cols;
  if (method == QueryMethod::kNaive) {
    cols.resize(count);
    for (std::size_t i = 0; i < count; ++i) cols[i] = snap.data.ColumnData(request.ids[i]);
    marginals =
        core::kernels::HoistMarginals(cols, snap.data.m(), ExecContext{}, snap.data.anchor_row());
  }
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t j = i; j < count; ++j) {
      StatusOr<double> value = [&]() -> StatusOr<double> {
        if (method != QueryMethod::kNaive) {
          return PairValueServed(snap, request.measure, request.ids[i], request.ids[j], method);
        }
        const double dot = i == j ? marginals[i].sumsq
                                  : core::kernels::BlockedDot(cols[i], cols[j], snap.data.m(),
                                                              snap.data.anchor_row());
        return core::PairMeasureFromMoments(
            request.measure,
            core::PairMomentsFromMarginals(marginals[i], marginals[j], dot, snap.data.m()));
      }();
      if (!value.ok()) return value.status();
      out.pair_values(i, j) = *value;
      out.pair_values(j, i) = *value;
    }
  }
  return out;
}

StatusOr<SelectionResult> SnapshotMet(const ServingSnapshot& snap,
                                      const core::MetRequest& request, QueryMethod method) {
  if (request.min_quality > 0.0) {
    return Status::Unavailable("quality predicates are not snapshot-servable");
  }
  ExecutedPlan plan = ResolvePlanServed(
      snap, method, [&](const QueryPlanner& planner) { return planner.PlanMet(request.measure); });
  method = plan.method;
  StatusOr<SelectionResult> result = [&]() -> StatusOr<SelectionResult> {
    if (method == QueryMethod::kDft) {
      return Status::Unavailable("WF queries are not snapshot-servable");
    }
    if (method == QueryMethod::kScape) {
      if (!snap.has_scape) return Status::FailedPrecondition("SCAPE index not attached");
      AFFINITY_ASSIGN_OR_RETURN(
          ScapeQueryResult r, FlatMeasureThreshold(snap, request.measure, request.tau,
                                                   request.greater));
      SelectionResult out;
      out.series = std::move(r.series);
      out.pairs = std::move(r.pairs);
      out.prune = r.prune;
      return out;
    }
    return SelectServed(snap, request.measure, method,
                        request.greater ? core::KeepGreater : core::KeepLesser, request.tau, 0.0);
  }();
  if (!result.ok()) return result.status();
  core::AnnotateSnapshotServed(&plan, snap.generation);
  result->plan = std::move(plan);
  return result;
}

StatusOr<SelectionResult> SnapshotMer(const ServingSnapshot& snap,
                                      const core::MerRequest& request, QueryMethod method) {
  if (request.min_quality > 0.0) {
    return Status::Unavailable("quality predicates are not snapshot-servable");
  }
  if (request.lo > request.hi) return Status::InvalidArgument("MER requires lo <= hi");
  ExecutedPlan plan = ResolvePlanServed(
      snap, method, [&](const QueryPlanner& planner) { return planner.PlanMer(request.measure); });
  method = plan.method;
  StatusOr<SelectionResult> result = [&]() -> StatusOr<SelectionResult> {
    if (method == QueryMethod::kDft) {
      return Status::Unavailable("WF queries are not snapshot-servable");
    }
    if (method == QueryMethod::kScape) {
      if (!snap.has_scape) return Status::FailedPrecondition("SCAPE index not attached");
      AFFINITY_ASSIGN_OR_RETURN(ScapeQueryResult r,
                                FlatMeasureRange(snap, request.measure, request.lo, request.hi));
      SelectionResult out;
      out.series = std::move(r.series);
      out.pairs = std::move(r.pairs);
      out.prune = r.prune;
      return out;
    }
    return SelectServed(snap, request.measure, method, core::KeepInside, request.lo, request.hi);
  }();
  if (!result.ok()) return result.status();
  core::AnnotateSnapshotServed(&plan, snap.generation);
  result->plan = std::move(plan);
  return result;
}

StatusOr<core::TopKResult> SnapshotTopK(const ServingSnapshot& snap,
                                        const core::TopKRequest& request, QueryMethod method) {
  if (request.min_quality > 0.0) {
    return Status::Unavailable("quality predicates are not snapshot-servable");
  }
  ExecutedPlan plan = ResolvePlanServed(snap, method, [&](const QueryPlanner& planner) {
    return planner.PlanTopK(request.measure, request.k);
  });
  method = plan.method;
  if (method == QueryMethod::kScape) {
    if (!snap.has_scape) return Status::FailedPrecondition("SCAPE index not attached");
    AFFINITY_ASSIGN_OR_RETURN(ScapeTopKResult r,
                              FlatTopK(snap, request.measure, request.k, request.largest));
    core::TopKResult out;
    static_cast<ScapeTopKResult&>(out) = std::move(r);
    core::AnnotateSnapshotServed(&plan, snap.generation);
    out.plan = std::move(plan);
    return out;
  }
  if (method == QueryMethod::kDft) {
    // The live engine rejects WF top-k outright; mirror its final answer
    // (kUnavailable would bounce to the live engine just to hear it).
    return Status::InvalidArgument("top-k supports WN, WA, and SCAPE");
  }
  const std::size_t n = snap.data.n();
  const std::size_t total = IsLocation(request.measure) ? n : ts::SequencePairCount(n);
  std::vector<ScapeTopKEntry> all(total);
  if (IsLocation(request.measure)) {
    for (std::size_t v = 0; v < total; ++v) {
      auto value = SeriesValueServed(snap, request.measure, static_cast<ts::SeriesId>(v), method);
      if (!value.ok()) return value.status();
      all[v] = ScapeTopKEntry{ts::SequencePair{}, static_cast<ts::SeriesId>(v), *value};
    }
  } else {
    std::vector<core::kernels::Marginals> marginals;
    if (method == QueryMethod::kNaive) {
      marginals = core::kernels::HoistMarginals(snap.data.dense(), ExecContext{});
    }
    std::size_t i = 0;
    for (std::size_t u = 0; u + 1 < n; ++u) {
      for (std::size_t v = u + 1; v < n; ++v, ++i) {
        StatusOr<double> value = [&]() -> StatusOr<double> {
          if (method != QueryMethod::kNaive) {
            return PairValueServed(snap, request.measure, static_cast<ts::SeriesId>(u),
                                   static_cast<ts::SeriesId>(v), method);
          }
          const double dot = core::kernels::BlockedDot(
              snap.data.ColumnData(static_cast<ts::SeriesId>(u)),
              snap.data.ColumnData(static_cast<ts::SeriesId>(v)), snap.data.m(),
              snap.data.anchor_row());
          return core::PairMeasureFromMoments(
              request.measure,
              core::PairMomentsFromMarginals(marginals[u], marginals[v], dot, snap.data.m()));
        }();
        if (!value.ok()) return value.status();
        all[i] = ScapeTopKEntry{
            ts::SequencePair(static_cast<ts::SeriesId>(u), static_cast<ts::SeriesId>(v)),
            kNoSeries, *value};
      }
    }
  }
  const std::size_t k = request.k < all.size() ? request.k : all.size();
  const auto better = [&](const ScapeTopKEntry& a, const ScapeTopKEntry& b) {
    return request.largest ? a.value > b.value : a.value < b.value;
  };
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(k), all.end(), better);
  all.resize(k);
  core::TopKResult out;
  out.entries = std::move(all);
  out.examined = total;
  core::AnnotateSnapshotServed(&plan, snap.generation);
  out.plan = std::move(plan);
  return out;
}

}  // namespace affinity::serve
