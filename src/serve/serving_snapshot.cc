#include "serve/serving_snapshot.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <utility>

namespace affinity::serve {

// ---------------------------------------------------------------------------
// CowWindow

CowWindow CowWindow::FromDense(ts::DataMatrix dense) {
  CowWindow w;
  w.m_ = dense.m();
  w.n_ = dense.n();
  w.anchor_ = dense.anchor_row();
  w.names_ = dense.names();
  w.lazy_ = std::make_shared<Lazy>();
  Lazy* lazy = w.lazy_.get();
  std::call_once(lazy->once, [&] { lazy->dense = std::move(dense); });
  return w;
}

bool CowWindow::FromTable(const storage::DataMatrixTable& table, std::size_t first_row,
                          std::size_t rows, std::vector<std::string> names, CowWindow* out) {
  if (rows == 0 || table.series_count() == 0) return false;
  if (first_row < table.first_retained_row()) return false;
  if (first_row + rows > table.row_count()) return false;
  if (names.size() != table.series_count()) return false;
  CowWindow w;
  w.m_ = rows;
  w.n_ = table.series_count();
  w.anchor_ = first_row;
  w.names_ = std::move(names);
  w.lazy_ = std::make_shared<Lazy>();
  w.cols_.resize(w.n_);
  const std::size_t end_row = first_row + rows;
  for (std::size_t j = 0; j < w.n_; ++j) {
    auto segments = table.ColumnSegments(static_cast<ts::SeriesId>(j));
    if (!segments.ok()) return false;
    std::size_t covered = 0;
    for (auto& ref : *segments) {
      const std::size_t seg_end = ref.first_row + ref.rows;
      if (seg_end <= first_row || ref.first_row >= end_row) continue;
      const std::size_t lo = std::max(ref.first_row, first_row);
      const std::size_t hi = std::min(seg_end, end_row);
      Span span;
      span.data = ref.values->data() + (lo - ref.first_row);
      span.owner = std::move(ref.values);
      span.rows = hi - lo;
      covered += span.rows;
      w.cols_[j].push_back(std::move(span));
    }
    if (covered != rows) return false;
  }
  *out = std::move(w);
  return true;
}

const ts::DataMatrix& CowWindow::Materialize() const {
  Lazy* lazy = lazy_.get();
  std::call_once(lazy->once, [&] {
    la::Matrix values(m_, n_);
    for (std::size_t j = 0; j < n_; ++j) {
      double* dst = values.ColData(j);
      std::size_t i = 0;
      for (const Span& s : cols_[j]) {
        std::copy(s.data, s.data + s.rows, dst + i);
        i += s.rows;
      }
    }
    ts::DataMatrix dense(std::move(values), names_);
    dense.set_anchor_row(anchor_);
    lazy->dense = std::move(dense);
  });
  return lazy->dense;
}

const double* CowWindow::ColumnData(ts::SeriesId id) const {
  return Materialize().ColumnData(id);
}

const ts::DataMatrix& CowWindow::dense() const { return Materialize(); }

std::size_t CowWindow::segment_count() const {
  std::size_t count = 0;
  for (const auto& col : cols_) count += col.size();
  return count;
}

std::size_t CowWindow::SharedSegmentsWith(const CowWindow& prior) const {
  if (cols_.empty() || prior.cols_.empty()) return 0;
  std::size_t shared = 0;
  // Columns keep their segment lists in row order, so matching by column
  // index is enough (a buffer never migrates between series).
  for (std::size_t j = 0; j < cols_.size() && j < prior.cols_.size(); ++j) {
    for (const Span& s : cols_[j]) {
      for (const Span& p : prior.cols_[j]) {
        if (s.owner.get() == p.owner.get()) {
          ++shared;
          break;
        }
      }
    }
  }
  return shared;
}

// ---------------------------------------------------------------------------
// WA surface fills

namespace {

using core::Measure;

/// Fills the snapshot's WA location tables (one per L-measure family).
/// A family whose accessor errors is marked absent, not fatal.
void FillLocationTables(const core::AffinityModel& model, ServingSnapshot* out) {
  const std::size_t n = model.data().n();
  const Measure kLoc[3] = {Measure::kMean, Measure::kMedian, Measure::kMode};
  for (int f = 0; f < 3; ++f) {
    out->location_ok[static_cast<std::size_t>(f)] = true;
    auto& table = out->location[static_cast<std::size_t>(f)];
    table.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
      auto value = model.SeriesMeasure(kLoc[f], static_cast<ts::SeriesId>(v));
      if (!value.ok()) {
        out->location_ok[static_cast<std::size_t>(f)] = false;
        table.clear();
        break;
      }
      table[v] = *value;
    }
  }
}

/// Fills the six pair measure tables in lexicographic pair order — the
/// order every sweep walks, so snapshot WA sweeps read values in exactly
/// the sequence the live engine computes them. A truncated model (missing
/// relationship → NotFound) marks the table absent.
void FillPairTables(const core::AffinityModel& model, ServingSnapshot* out) {
  const std::size_t n = model.data().n();
  if (n < 2) {
    for (auto& flag : out->pair_ok) flag = true;
    return;
  }
  for (int t = 0; t < 6; ++t) {
    const auto measure = static_cast<Measure>(static_cast<int>(Measure::kCovariance) + t);
    auto& table = out->pair_values[static_cast<std::size_t>(t)];
    table.reserve(ts::SequencePairCount(n));
    bool ok = true;
    for (std::size_t u = 0; ok && u + 1 < n; ++u) {
      for (std::size_t v = u + 1; v < n; ++v) {
        auto value = model.PairMeasure(
            measure, ts::SequencePair(static_cast<ts::SeriesId>(u), static_cast<ts::SeriesId>(v)));
        if (!value.ok()) {
          ok = false;
          table.clear();
          break;
        }
        table.push_back(*value);
      }
    }
    out->pair_ok[static_cast<std::size_t>(t)] = ok;
  }
}

/// The delta path's bulk variant: one relationship lookup per pair
/// (`PairMeasures6`) filling all six tables, fanned out over `exec`.
/// Each value is bitwise what FillPairTables stores; a missing
/// relationship anywhere marks all six tables absent — the same final
/// state FillPairTables reaches, because its only failure mode (NotFound)
/// is measure-independent.
void FillPairTablesBulk(const core::AffinityModel& model, const ExecContext& exec,
                        ServingSnapshot* out) {
  const std::size_t n = model.data().n();
  if (n < 2) {
    for (auto& flag : out->pair_ok) flag = true;
    return;
  }
  const std::size_t pairs = ts::SequencePairCount(n);
  // A complete model (every lex pair has its relationship — the only case
  // where the tables can be present at all) is filled by *iterating* the
  // relationship hash once and scattering each record's six measures to
  // its lexicographic slot: zero per-pair hash lookups, which dominate
  // the bulk fill on the per-pair path below. Each value goes through
  // PairMeasures6From — bitwise what the lookup form stores.
  if (model.relationship_count() == pairs) {
    for (auto& table : out->pair_values) table.resize(pairs);
    // The ~k² pivot matrix measures, resolved once into a small 4×
    // oversized linear-probe table (multiply-shift hash): per-pair
    // resolution is one predictable probe into a handful of cache lines,
    // where both std::unordered_map::find (prime modulo) and a binary
    // search (log k mispredicted branches) measurably drag the fill.
    std::size_t cap = 16;
    while (cap < model.pivot_count() * 4) cap <<= 1;
    int shift = 64;
    for (std::size_t c = cap; c > 1; c >>= 1) --shift;
    std::vector<std::pair<std::uint64_t, const core::PairMatrixMeasures*>> pivots(
        cap, {0, nullptr});
    const auto slot_of = [shift](std::uint64_t key) {
      return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ULL) >> shift);
    };
    model.ForEachPivot([&](const core::PivotPair& p, const core::PairMatrixMeasures& pm) {
      std::size_t s = slot_of(p.Key());
      while (pivots[s].second != nullptr) s = (s + 1) & (cap - 1);
      pivots[s] = {p.Key(), &pm};
    });
    double* tables[6];
    for (int t = 0; t < 6; ++t) tables[t] = out->pair_values[static_cast<std::size_t>(t)].data();
    model.ForEachRelationship([&](const ts::SequencePair& e, const core::AffineRecord& rec) {
      const std::size_t u = e.u;
      const std::size_t p = u * n - u * (u + 1) / 2 + (e.v - u - 1);
      const std::uint64_t pk = rec.pivot.Key();
      std::size_t s = slot_of(pk);
      while (pivots[s].second != nullptr && pivots[s].first != pk) s = (s + 1) & (cap - 1);
      double values[6];
      if (pivots[s].second != nullptr) {
        model.PairMeasures6From(rec, e, *pivots[s].second, values);
      } else {
        model.PairMeasures6From(rec, e, values);
      }
      for (int t = 0; t < 6; ++t) tables[t][p] = values[t];
    });
    for (auto& flag : out->pair_ok) flag = true;
    return;
  }
  for (auto& table : out->pair_values) table.resize(pairs);
  // Lexicographic index → (u, v): row u covers [offset[u], offset[u + 1]).
  std::vector<std::size_t> offset(n + 1, 0);
  for (std::size_t u = 0; u < n; ++u) offset[u + 1] = offset[u] + (n - 1 - u);
  std::atomic<bool> missing{false};
  ParallelChunks(exec, pairs, [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) {
    std::size_t u =
        static_cast<std::size_t>(std::upper_bound(offset.begin(), offset.end(), lo) -
                                 offset.begin()) -
        1;
    for (std::size_t p = lo; p < hi; ++p) {
      while (p >= offset[u + 1]) ++u;
      const auto v = static_cast<ts::SeriesId>(u + 1 + (p - offset[u]));
      double values[6];
      if (!model.PairMeasures6(ts::SequencePair(static_cast<ts::SeriesId>(u), v), values)
               .ok()) {
        missing.store(true, std::memory_order_relaxed);
        return;
      }
      for (int t = 0; t < 6; ++t) out->pair_values[static_cast<std::size_t>(t)][p] = values[t];
    }
  });
  if (missing.load(std::memory_order_relaxed)) {
    for (auto& table : out->pair_values) table.clear();
    for (auto& flag : out->pair_ok) flag = false;
  } else {
    for (auto& flag : out->pair_ok) flag = true;
  }
}

// ---------------------------------------------------------------------------
// Flat-run construction. Templated on the private ScapeIndex tree types
// (reached through auto/deduction; SnapshotBuilder is the friend seam).

/// Reclaims a retired epoch's run buffers for in-place rewrite: when the
/// old slot holds the only reference (not shared into a live epoch, no
/// pinned reader), the vectors — with their full capacity — are recycled;
/// otherwise a fresh allocation is returned. Callers overwrite the
/// contents wholesale, so reuse never changes the produced bits.
std::shared_ptr<FlatPairRuns> ReclaimPairRuns(std::shared_ptr<const FlatPairRuns>&& old) {
  if (old != nullptr && old.use_count() == 1) {
    return std::const_pointer_cast<FlatPairRuns>(std::move(old));
  }
  return std::make_shared<FlatPairRuns>();
}

std::shared_ptr<FlatLocRuns> ReclaimLocRuns(std::shared_ptr<const FlatLocRuns>&& old) {
  if (old != nullptr && old.use_count() == 1) {
    return std::const_pointer_cast<FlatLocRuns>(std::move(old));
  }
  return std::make_shared<FlatLocRuns>();
}

template <typename PairTreeT>
std::shared_ptr<const FlatPairRuns> WalkPairRuns(const PairTreeT& pt,
                                                 std::shared_ptr<FlatPairRuns> into = nullptr) {
  auto runs = into != nullptr ? std::move(into) : std::make_shared<FlatPairRuns>();
  runs->keys.clear();
  runs->pairs.clear();
  runs->us.clear();
  runs->keys.reserve(pt.tree.size());
  runs->pairs.reserve(pt.tree.size());
  runs->us.reserve(pt.tree.size());
  for (auto it = pt.tree.begin(); it != pt.tree.end(); ++it) {
    runs->keys.push_back(it.key());
    runs->pairs.push_back(it.value().e);
    runs->us.push_back(it.value().u);
  }
  return runs;
}

template <typename LocTreeT>
std::shared_ptr<const FlatLocRuns> WalkLocRuns(const LocTreeT& lt,
                                               std::shared_ptr<FlatLocRuns> into = nullptr) {
  auto runs = into != nullptr ? std::move(into) : std::make_shared<FlatLocRuns>();
  runs->keys.clear();
  runs->series.clear();
  runs->keys.reserve(lt.tree.size());
  runs->series.reserve(lt.tree.size());
  for (auto it = lt.tree.begin(); it != lt.tree.end(); ++it) {
    runs->keys.push_back(it.key());
    runs->series.push_back(it.value());
  }
  return runs;
}

constexpr std::size_t kPairEntryBytes =
    sizeof(double) + sizeof(ts::SequencePair) + sizeof(double);

/// Splices one dirty pair tree: the prior epoch's runs outside the dirty
/// ξ-interval are untouched sorted subsequences (the ScapeDeltaRange
/// contract), so only the [lo, hi] middle is re-walked from the live
/// tree. Falls back to a full walk when the clean spans are too small to
/// be worth the seek, or when the spliced length disagrees with the tree
/// (defensive: a log/prior mismatch must never ship a wrong snapshot).
template <typename PairTreeT>
std::shared_ptr<const FlatPairRuns> SplicePairRuns(const PairTreeT& pt,
                                                   const core::ScapeDeltaRange& dirty,
                                                   const FlatPairRuns& prior,
                                                   PublishStats* stats,
                                                   std::shared_ptr<FlatPairRuns> into = nullptr) {
  const std::size_t size = pt.tree.size();
  const auto prefix_end = static_cast<std::size_t>(
      std::lower_bound(prior.keys.begin(), prior.keys.end(), dirty.lo) - prior.keys.begin());
  const auto suffix_begin = static_cast<std::size_t>(
      std::upper_bound(prior.keys.begin(), prior.keys.end(), dirty.hi) - prior.keys.begin());
  const std::size_t clean = prefix_end + (prior.keys.size() - suffix_begin);
  if (clean < size / 4) {
    ++stats->trees_rebuilt;
    stats->bytes_copied += size * kPairEntryBytes;
    return WalkPairRuns(pt, std::move(into));
  }
  auto runs = into != nullptr ? std::move(into) : std::make_shared<FlatPairRuns>();
  runs->keys.reserve(size);
  runs->pairs.reserve(size);
  runs->us.reserve(size);
  runs->keys.assign(prior.keys.begin(), prior.keys.begin() + static_cast<long>(prefix_end));
  runs->pairs.assign(prior.pairs.begin(), prior.pairs.begin() + static_cast<long>(prefix_end));
  runs->us.assign(prior.us.begin(), prior.us.begin() + static_cast<long>(prefix_end));
  for (auto it = pt.tree.LowerBound(dirty.lo); it != pt.tree.end() && it.key() <= dirty.hi;
       ++it) {
    runs->keys.push_back(it.key());
    runs->pairs.push_back(it.value().e);
    runs->us.push_back(it.value().u);
  }
  runs->keys.insert(runs->keys.end(), prior.keys.begin() + static_cast<long>(suffix_begin),
                    prior.keys.end());
  runs->pairs.insert(runs->pairs.end(), prior.pairs.begin() + static_cast<long>(suffix_begin),
                     prior.pairs.end());
  runs->us.insert(runs->us.end(), prior.us.begin() + static_cast<long>(suffix_begin),
                  prior.us.end());
  if (runs->keys.size() != size) {
    ++stats->trees_rebuilt;
    stats->bytes_copied += size * kPairEntryBytes;
    return WalkPairRuns(pt, std::move(runs));
  }
  ++stats->trees_spliced;
  stats->bytes_copied += size * kPairEntryBytes;
  return runs;
}

void AddStats(PublishStats* into, const PublishStats& from) {
  into->bytes_copied += from.bytes_copied;
  into->trees_shared += from.trees_shared;
  into->trees_spliced += from.trees_spliced;
  into->trees_rebuilt += from.trees_rebuilt;
}

}  // namespace

// ---------------------------------------------------------------------------
// SnapshotBuilder

std::shared_ptr<const ServingSnapshot> SnapshotBuilder::Build(
    const core::AffinityModel& model, const core::ScapeIndex* scape,
    const core::QueryPlanner::Capabilities& caps, std::uint64_t generation,
    std::size_t snapshot_row, PublishStats* stats) {
  auto out = std::make_shared<ServingSnapshot>();
  out->generation = generation;
  out->snapshot_row = snapshot_row;
  // Dense copy keeps names and the block-grid anchor.
  out->data = CowWindow::FromDense(model.data());
  out->caps = caps;

  PublishStats local;
  local.delta = false;
  local.bytes_copied += model.data().m() * model.data().n() * sizeof(double);

  const std::size_t n = model.data().n();
  out->stats.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    out->stats.push_back(model.series_stats(static_cast<ts::SeriesId>(v)));
  }
  local.bytes_copied += n * sizeof(core::SeriesStats);
  FillLocationTables(model, out.get());
  FillPairTables(model, out.get());
  for (const auto& table : out->location) local.bytes_copied += table.size() * sizeof(double);
  for (const auto& table : out->pair_values) local.bytes_copied += table.size() * sizeof(double);

  if (scape != nullptr) {
    out->has_scape = true;
    // Flatten every (pivot, family) B+-tree by in-order walk: ascending ξ
    // with equal-key runs in tree order, so flat binary-search bounds land
    // exactly where the tree's LowerBound/UpperBound descend.
    out->pair_pivots.reserve(scape->pair_pivots_.size());
    for (const auto& node : scape->pair_pivots_) {
      FlatPairPivot flat;
      for (int family = 0; family < 2; ++family) {
        const auto& pt = node.trees[static_cast<std::size_t>(family)];
        FlatPairTree& ft = flat.trees[static_cast<std::size_t>(family)];
        ft.norm = pt.norm;
        ft.u_min = pt.u_min;
        ft.u_max = pt.u_max;
        ft.runs = WalkPairRuns(pt);
        ++local.trees_rebuilt;
        local.bytes_copied += ft.runs->keys.size() * kPairEntryBytes;
        ft.degenerate.reserve(pt.degenerate.size());
        for (const auto& s : pt.degenerate) {
          ft.degenerate.push_back(FlatDegenerateEntry{s.e, s.u, s.xi});
        }
        local.bytes_copied += ft.degenerate.size() * sizeof(FlatDegenerateEntry);
      }
      out->pair_pivots.push_back(std::move(flat));
    }
    out->loc_pivots.reserve(scape->loc_pivots_.size());
    for (const auto& node : scape->loc_pivots_) {
      FlatLocPivot flat;
      for (int family = 0; family < 3; ++family) {
        const auto& lt = node.trees[static_cast<std::size_t>(family)];
        FlatLocTree& ft = flat.trees[static_cast<std::size_t>(family)];
        ft.norm = lt.norm;
        ft.runs = WalkLocRuns(lt);
        ++local.trees_rebuilt;
        local.bytes_copied +=
            ft.runs->keys.size() * (sizeof(double) + sizeof(ts::SeriesId));
      }
      out->loc_pivots.push_back(std::move(flat));
    }
  }
  if (stats != nullptr) *stats = local;
  return out;
}

std::shared_ptr<const ServingSnapshot> SnapshotBuilder::BuildDelta(
    const core::AffinityModel& model, const core::ScapeIndex* scape,
    const core::ScapeDeltaLog& delta, const storage::DataMatrixTable& table,
    const ServingSnapshot& prior, const core::QueryPlanner::Capabilities& caps,
    std::uint64_t generation, std::size_t snapshot_row, const ExecContext& exec,
    PublishStats* stats, std::shared_ptr<ServingSnapshot> scratch) {
  const std::size_t n = model.data().n();
  const std::size_t m = model.data().m();
  // Preconditions: `prior` must be the flatten of these same structures
  // one refresh ago, `delta` must match the index shape, and the table
  // must still retain (and agree with) the whole window. Any mismatch
  // falls back to a full Build at the call site — never a wrong snapshot.
  if (scape != nullptr) {
    if (!prior.has_scape || prior.pair_pivots.size() != scape->pair_pivots_.size() ||
        prior.loc_pivots.size() != scape->loc_pivots_.size() ||
        delta.pair.size() != scape->pair_pivots_.size() ||
        delta.loc.size() != scape->loc_pivots_.size()) {
      return nullptr;
    }
  } else if (prior.has_scape) {
    return nullptr;
  }
  if (table.series_count() != n || snapshot_row < m) return nullptr;
  const std::size_t first_row = snapshot_row - m;
  if (model.data().anchor_row() != first_row) return nullptr;

  // A recycled retired epoch keeps all its vector capacities: in steady
  // state every table below is rewritten in place and nothing allocates.
  auto out = scratch != nullptr ? std::move(scratch) : std::make_shared<ServingSnapshot>();
  out->generation = generation;
  out->snapshot_row = snapshot_row;
  out->caps = caps;
  if (!CowWindow::FromTable(table, first_row, m, model.data().names(), &out->data)) {
    return nullptr;
  }
  PublishStats total;
  total.delta = true;
  total.window_segments_total = out->data.segment_count();
  total.window_segments_reused = out->data.SharedSegmentsWith(prior.data);

  out->stats.clear();
  out->stats.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    out->stats.push_back(model.series_stats(static_cast<ts::SeriesId>(v)));
  }
  total.bytes_copied += n * sizeof(core::SeriesStats);
  // The WA surface is value-level state: at interval-1 slides every value
  // moves, so it is refilled — but through the bulk accessor and in
  // parallel, not one hash lookup per (measure, pair).
  FillLocationTables(model, out.get());
  FillPairTablesBulk(model, exec, out.get());
  for (const auto& tbl : out->location) total.bytes_copied += tbl.size() * sizeof(double);
  for (const auto& tbl : out->pair_values) total.bytes_copied += tbl.size() * sizeof(double);

  if (scape != nullptr) {
    out->has_scape = true;
    out->pair_pivots.resize(scape->pair_pivots_.size());
    std::vector<PublishStats> chunk_stats(ExecNumChunks(scape->pair_pivots_.size()));
    ParallelChunks(exec, scape->pair_pivots_.size(),
                   [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
                     PublishStats& cs = chunk_stats[chunk];
                     for (std::size_t slot = lo; slot < hi; ++slot) {
                       const auto& node = scape->pair_pivots_[slot];
                       FlatPairPivot& flat = out->pair_pivots[slot];
                       for (int family = 0; family < 2; ++family) {
                         const auto& pt = node.trees[static_cast<std::size_t>(family)];
                         FlatPairTree& ft = flat.trees[static_cast<std::size_t>(family)];
                         ft.norm = pt.norm;
                         ft.u_min = pt.u_min;
                         ft.u_max = pt.u_max;
                         ft.degenerate.clear();
                         ft.degenerate.reserve(pt.degenerate.size());
                         for (const auto& s : pt.degenerate) {
                           ft.degenerate.push_back(FlatDegenerateEntry{s.e, s.u, s.xi});
                         }
                         cs.bytes_copied += ft.degenerate.size() * sizeof(FlatDegenerateEntry);
                         const core::ScapeDeltaRange& dirty =
                             delta.pair[slot][static_cast<std::size_t>(family)];
                         const FlatPairTree& prior_ft =
                             prior.pair_pivots[slot].trees[static_cast<std::size_t>(family)];
                         // The scratch slot's outgoing runs become the
                         // rewrite buffer unless a live epoch still shares
                         // them (slot-local, so safe under the fan-out).
                         auto old_runs = std::move(ft.runs);
                         if (dirty.moved == 0 && prior_ft.runs != nullptr &&
                             prior_ft.runs->keys.size() == pt.tree.size()) {
                           ft.runs = prior_ft.runs;
                           ++cs.trees_shared;
                         } else if (prior_ft.runs != nullptr) {
                           ft.runs = SplicePairRuns(pt, dirty, *prior_ft.runs, &cs,
                                                    ReclaimPairRuns(std::move(old_runs)));
                         } else {
                           ft.runs = WalkPairRuns(pt, ReclaimPairRuns(std::move(old_runs)));
                           ++cs.trees_rebuilt;
                           cs.bytes_copied += ft.runs->keys.size() * kPairEntryBytes;
                         }
                       }
                     }
                   });
    out->loc_pivots.resize(scape->loc_pivots_.size());
    std::vector<PublishStats> loc_stats(ExecNumChunks(scape->loc_pivots_.size()));
    ParallelChunks(exec, scape->loc_pivots_.size(),
                   [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
                     PublishStats& cs = loc_stats[chunk];
                     for (std::size_t slot = lo; slot < hi; ++slot) {
                       const auto& node = scape->loc_pivots_[slot];
                       FlatLocPivot& flat = out->loc_pivots[slot];
                       for (int family = 0; family < 3; ++family) {
                         const auto& lt = node.trees[static_cast<std::size_t>(family)];
                         FlatLocTree& ft = flat.trees[static_cast<std::size_t>(family)];
                         ft.norm = lt.norm;
                         const core::ScapeDeltaRange& dirty =
                             delta.loc[slot][static_cast<std::size_t>(family)];
                         const FlatLocTree& prior_ft =
                             prior.loc_pivots[slot].trees[static_cast<std::size_t>(family)];
                         // Location trees are O(cluster) small: share when
                         // clean, otherwise a full walk is already cheap.
                         auto old_runs = std::move(ft.runs);
                         if (dirty.moved == 0 && prior_ft.runs != nullptr &&
                             prior_ft.runs->keys.size() == lt.tree.size()) {
                           ft.runs = prior_ft.runs;
                           ++cs.trees_shared;
                         } else {
                           ft.runs = WalkLocRuns(lt, ReclaimLocRuns(std::move(old_runs)));
                           ++cs.trees_rebuilt;
                           cs.bytes_copied += ft.runs->keys.size() *
                                              (sizeof(double) + sizeof(ts::SeriesId));
                         }
                       }
                     }
                   });
    for (const PublishStats& cs : chunk_stats) AddStats(&total, cs);
    for (const PublishStats& cs : loc_stats) AddStats(&total, cs);
  } else {
    // Defensive against a recycled scratch that once carried a SCAPE
    // surface: a no-scape snapshot must not expose stale pivots.
    out->has_scape = false;
    out->pair_pivots.clear();
    out->loc_pivots.clear();
  }
  if (stats != nullptr) *stats = total;
  return out;
}

}  // namespace affinity::serve
