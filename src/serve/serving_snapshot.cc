#include "serve/serving_snapshot.h"

#include <utility>

namespace affinity::serve {

namespace {

using core::Measure;

/// Fills the snapshot's WA location tables (one per L-measure family).
/// A family whose accessor errors is marked absent, not fatal.
void FillLocationTables(const core::AffinityModel& model, ServingSnapshot* out) {
  const std::size_t n = model.data().n();
  const Measure kLoc[3] = {Measure::kMean, Measure::kMedian, Measure::kMode};
  for (int f = 0; f < 3; ++f) {
    out->location_ok[static_cast<std::size_t>(f)] = true;
    auto& table = out->location[static_cast<std::size_t>(f)];
    table.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
      auto value = model.SeriesMeasure(kLoc[f], static_cast<ts::SeriesId>(v));
      if (!value.ok()) {
        out->location_ok[static_cast<std::size_t>(f)] = false;
        table.clear();
        break;
      }
      table[v] = *value;
    }
  }
}

/// Fills the six pair measure tables in lexicographic pair order — the
/// order every sweep walks, so snapshot WA sweeps read values in exactly
/// the sequence the live engine computes them. A truncated model (missing
/// relationship → NotFound) marks the table absent.
void FillPairTables(const core::AffinityModel& model, ServingSnapshot* out) {
  const std::size_t n = model.data().n();
  if (n < 2) {
    for (auto& flag : out->pair_ok) flag = true;
    return;
  }
  for (int t = 0; t < 6; ++t) {
    const auto measure = static_cast<Measure>(static_cast<int>(Measure::kCovariance) + t);
    auto& table = out->pair_values[static_cast<std::size_t>(t)];
    table.reserve(ts::SequencePairCount(n));
    bool ok = true;
    for (std::size_t u = 0; ok && u + 1 < n; ++u) {
      for (std::size_t v = u + 1; v < n; ++v) {
        auto value = model.PairMeasure(
            measure, ts::SequencePair(static_cast<ts::SeriesId>(u), static_cast<ts::SeriesId>(v)));
        if (!value.ok()) {
          ok = false;
          table.clear();
          break;
        }
        table.push_back(*value);
      }
    }
    out->pair_ok[static_cast<std::size_t>(t)] = ok;
  }
}

}  // namespace

std::shared_ptr<const ServingSnapshot> SnapshotBuilder::Build(
    const core::AffinityModel& model, const core::ScapeIndex* scape,
    const core::QueryPlanner::Capabilities& caps, std::uint64_t generation,
    std::size_t snapshot_row) {
  auto out = std::make_shared<ServingSnapshot>();
  out->generation = generation;
  out->snapshot_row = snapshot_row;
  out->data = model.data();  // copy keeps names and the block-grid anchor
  out->caps = caps;

  const std::size_t n = model.data().n();
  out->stats.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    out->stats.push_back(model.series_stats(static_cast<ts::SeriesId>(v)));
  }
  FillLocationTables(model, out.get());
  FillPairTables(model, out.get());

  if (scape != nullptr) {
    out->has_scape = true;
    // Flatten every (pivot, family) B+-tree by in-order walk: ascending ξ
    // with equal-key runs in tree order, so flat binary-search bounds land
    // exactly where the tree's LowerBound/UpperBound descend.
    out->pair_pivots.reserve(scape->pair_pivots_.size());
    for (const auto& node : scape->pair_pivots_) {
      FlatPairPivot flat;
      for (int family = 0; family < 2; ++family) {
        const auto& pt = node.trees[static_cast<std::size_t>(family)];
        FlatPairTree& ft = flat.trees[static_cast<std::size_t>(family)];
        ft.norm = pt.norm;
        ft.u_min = pt.u_min;
        ft.u_max = pt.u_max;
        ft.keys.reserve(pt.tree.size());
        ft.pairs.reserve(pt.tree.size());
        ft.us.reserve(pt.tree.size());
        for (auto it = pt.tree.begin(); it != pt.tree.end(); ++it) {
          ft.keys.push_back(it.key());
          ft.pairs.push_back(it.value().e);
          ft.us.push_back(it.value().u);
        }
        ft.degenerate.reserve(pt.degenerate.size());
        for (const auto& s : pt.degenerate) {
          ft.degenerate.push_back(FlatDegenerateEntry{s.e, s.u, s.xi});
        }
      }
      out->pair_pivots.push_back(std::move(flat));
    }
    out->loc_pivots.reserve(scape->loc_pivots_.size());
    for (const auto& node : scape->loc_pivots_) {
      FlatLocPivot flat;
      for (int family = 0; family < 3; ++family) {
        const auto& lt = node.trees[static_cast<std::size_t>(family)];
        FlatLocTree& ft = flat.trees[static_cast<std::size_t>(family)];
        ft.norm = lt.norm;
        ft.keys.reserve(lt.tree.size());
        ft.series.reserve(lt.tree.size());
        for (auto it = lt.tree.begin(); it != lt.tree.end(); ++it) {
          ft.keys.push_back(it.key());
          ft.series.push_back(it.value());
        }
      }
      out->loc_pivots.push_back(std::move(flat));
    }
  }
  return out;
}

}  // namespace affinity::serve
