#ifndef AFFINITY_SERVE_SERVE_QUERY_H_
#define AFFINITY_SERVE_SERVE_QUERY_H_

/// \file serve_query.h
/// Query execution against a published `ServingSnapshot` (DESIGN.md §11).
///
/// Each function mirrors the corresponding `QueryEngine` path — same
/// dispatch order, same error texts, same arithmetic, same result order —
/// but reads only the snapshot's flat arrays: SCAPE scans run as
/// `std::lower_bound`/`std::upper_bound` seeks over sorted contiguous
/// keys instead of B+-tree descents, WA values come from the frozen
/// tables, and WN sweeps run over the snapshot's window copy. Answers are
/// bitwise identical to the live engine over the structures the snapshot
/// was flattened from.
///
/// Everything here is const over the snapshot and allocation-local, so
/// any number of threads may serve queries from the same snapshot
/// concurrently, while maintenance publishes new epochs — the lock-free
/// serving contract.
///
/// What a snapshot cannot serve returns `StatusCode::kUnavailable`
/// (e.g. WF queries, whose sketches are built per query, or a WA table
/// absent on a truncated model); the streaming facade treats that code as
/// "fall back to the live engine" and every other status as final.

#include "common/status.h"
#include "core/query.h"
#include "serve/serving_snapshot.h"

namespace affinity::serve {

/// Query 1 against the snapshot. Mirrors `QueryEngine::Mec`.
StatusOr<core::MecResponse> SnapshotMec(const ServingSnapshot& snap,
                                        const core::MecRequest& request,
                                        core::QueryMethod method = core::QueryMethod::kAuto);

/// Query 2 against the snapshot. Mirrors `QueryEngine::Met`.
StatusOr<core::SelectionResult> SnapshotMet(const ServingSnapshot& snap,
                                            const core::MetRequest& request,
                                            core::QueryMethod method = core::QueryMethod::kAuto);

/// Query 3 against the snapshot. Mirrors `QueryEngine::Mer`.
StatusOr<core::SelectionResult> SnapshotMer(const ServingSnapshot& snap,
                                            const core::MerRequest& request,
                                            core::QueryMethod method = core::QueryMethod::kAuto);

/// Top-k against the snapshot. Mirrors `QueryEngine::TopK`.
StatusOr<core::TopKResult> SnapshotTopK(const ServingSnapshot& snap,
                                        const core::TopKRequest& request,
                                        core::QueryMethod method = core::QueryMethod::kAuto);

}  // namespace affinity::serve

#endif  // AFFINITY_SERVE_SERVE_QUERY_H_
