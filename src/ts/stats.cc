// affinity-lint: allow-file(fp-accumulate): scalar oracle routines — strictly
// sequential left-to-right sums the SIMD kernels are verified against.
#include "ts/stats.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
// Header-only blocked-summation primitives (DESIGN.md §10). Include-only:
// the kernels are inline, so no link dependency on core is introduced.
#include "core/kernels.h"

namespace affinity::ts::stats {

double Sum(const double* x, std::size_t m) {
  double acc = 0.0;
  for (std::size_t i = 0; i < m; ++i) acc += x[i];
  return acc;
}

double Mean(const double* x, std::size_t m) {
  return m == 0 ? 0.0 : Sum(x, m) / static_cast<double>(m);
}

double Median(const double* x, std::size_t m) {
  std::vector<double> buf;
  return MedianWithScratch(x, m, &buf);
}

double MedianWithScratch(const double* x, std::size_t m, std::vector<double>* scratch) {
  if (m == 0) return 0.0;
  scratch->assign(x, x + m);
  std::vector<double>& buf = *scratch;
  const std::size_t mid = m / 2;
  std::nth_element(buf.begin(), buf.begin() + static_cast<long>(mid), buf.end());
  const double upper = buf[mid];
  if (m % 2 == 1) return upper;
  // Even length: the lower central order statistic is the max of the left
  // partition produced by nth_element.
  const double lower = *std::max_element(buf.begin(), buf.begin() + static_cast<long>(mid));
  return 0.5 * (lower + upper);
}

double Mode(const double* x, std::size_t m, int bins) {
  std::vector<std::uint32_t> hist;
  return ModeWithScratch(x, m, bins, &hist);
}

double ModeWithScratch(const double* x, std::size_t m, int bins,
                       std::vector<std::uint32_t>* hist_scratch) {
  if (m == 0) return 0.0;
  AFFINITY_CHECK_GT(bins, 0);
  double lo = x[0], hi = x[0];
  for (std::size_t i = 1; i < m; ++i) {
    lo = std::min(lo, x[i]);
    hi = std::max(hi, x[i]);
  }
  if (hi <= lo) return lo;  // constant series
  const double width = (hi - lo) / static_cast<double>(bins);
  hist_scratch->assign(static_cast<std::size_t>(bins), 0);
  std::vector<std::uint32_t>& hist = *hist_scratch;
  const double inv_width = static_cast<double>(bins) / (hi - lo);
  for (std::size_t i = 0; i < m; ++i) {
    auto b = static_cast<long>((x[i] - lo) * inv_width);
    if (b >= bins) b = bins - 1;  // x == hi lands in the top bin
    ++hist[static_cast<std::size_t>(b)];
  }
  std::size_t best = 0;
  for (std::size_t b = 1; b < hist.size(); ++b) {
    if (hist[b] > hist[best]) best = b;  // ties keep the lower bin
  }
  return lo + (static_cast<double>(best) + 0.5) * width;
}

double ModeSortedWithScratch(const double* sorted, std::size_t m, int bins,
                             std::vector<std::uint32_t>* hist_scratch) {
  if (m == 0) return 0.0;
  AFFINITY_CHECK_GT(bins, 0);
  // Sorted input serves min/max as the end elements — the same values the
  // linear scan of ModeWithScratch finds.
  const double lo = sorted[0];
  const double hi = sorted[m - 1];
  if (hi <= lo) return lo;  // constant series
  const double width = (hi - lo) / static_cast<double>(bins);
  const double inv_width = static_cast<double>(bins) / (hi - lo);
  // Identical per-element bin map to ModeWithScratch, including the top
  // clamp. It is monotone non-decreasing in x (subtraction of a common
  // lo, multiplication by a positive constant, and truncation all
  // preserve order), so bin populations are boundary differences.
  const auto bin_of = [&](double x) {
    auto b = static_cast<long>((x - lo) * inv_width);
    return b >= bins ? bins - 1 : b;
  };
  hist_scratch->assign(static_cast<std::size_t>(bins), 0);
  std::vector<std::uint32_t>& hist = *hist_scratch;
  const double* cur = sorted;
  const double* const end = sorted + m;
  for (int b = 0; b < bins && cur != end; ++b) {
    const double* next =
        std::partition_point(cur, end, [&](double x) { return bin_of(x) <= b; });
    hist[static_cast<std::size_t>(b)] = static_cast<std::uint32_t>(next - cur);
    cur = next;
  }
  std::size_t best = 0;
  for (std::size_t b = 1; b < hist.size(); ++b) {
    if (hist[b] > hist[best]) best = b;  // ties keep the lower bin
  }
  return lo + (static_cast<double>(best) + 0.5) * width;
}

double ModeFromHistogram(double lo, double hi, const std::vector<std::uint32_t>& counts) {
  AFFINITY_CHECK_GT(hi, lo);
  AFFINITY_CHECK_GT(counts.size(), 0u);
  const double width = (hi - lo) / static_cast<double>(counts.size());
  std::size_t best = 0;
  for (std::size_t b = 1; b < counts.size(); ++b) {
    if (counts[b] > counts[best]) best = b;  // ties keep the lower bin
  }
  return lo + (static_cast<double>(best) + 0.5) * width;
}

double NaiveModeEstimate(const double* x, std::size_t m, int bins) {
  if (m == 0) return 0.0;
  AFFINITY_CHECK_GT(bins, 0);
  double lo = x[0], hi = x[0];
  for (std::size_t i = 1; i < m; ++i) {
    lo = std::min(lo, x[i]);
    hi = std::max(hi, x[i]);
  }
  if (hi <= lo) return lo;
  const double half_window = 0.5 * (hi - lo) / static_cast<double>(bins);
  std::size_t best_count = 0;
  double best_value = x[0];
  for (std::size_t i = 0; i < m; ++i) {
    std::size_t count = 0;
    for (std::size_t j = 0; j < m; ++j) {
      if (std::fabs(x[i] - x[j]) <= half_window) ++count;
    }
    if (count > best_count || (count == best_count && x[i] < best_value)) {
      best_count = count;
      best_value = x[i];
    }
  }
  return best_value;
}

double Variance(const double* x, std::size_t m) {
  if (m == 0) return 0.0;
  const double mu = Mean(x, m);
  double acc = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double d = x[i] - mu;
    acc += d * d;
  }
  return acc / static_cast<double>(m);
}

double Covariance(const double* x, const double* y, std::size_t m) {
  if (m == 0) return 0.0;
  const double mx = Mean(x, m);
  const double my = Mean(y, m);
  double acc = 0.0;
  for (std::size_t i = 0; i < m; ++i) acc += (x[i] - mx) * (y[i] - my);
  return acc / static_cast<double>(m);
}

double DotProduct(const double* x, const double* y, std::size_t m, std::size_t anchor) {
  // Canonical blocked order, so Σxy here is bitwise equal to the fused
  // sweep kernels over the same columns at the same grid anchor.
  return core::kernels::BlockedDot(x, y, m, anchor);
}

double Correlation(const double* x, const double* y, std::size_t m) {
  const double u = CorrelationNormalizer(x, y, m);
  if (u == 0.0) return 0.0;
  return Covariance(x, y, m) / u;
}

double CorrelationNormalizer(const double* x, const double* y, std::size_t m) {
  return std::sqrt(Variance(x, m) * Variance(y, m));
}

double Mean(const la::Vector& x) { return Mean(x.data(), x.size()); }
double Median(const la::Vector& x) { return Median(x.data(), x.size()); }
double Mode(const la::Vector& x) { return Mode(x.data(), x.size()); }
double Variance(const la::Vector& x) { return Variance(x.data(), x.size()); }

double Covariance(const la::Vector& x, const la::Vector& y) {
  AFFINITY_CHECK_EQ(x.size(), y.size());
  return Covariance(x.data(), y.data(), x.size());
}

double DotProduct(const la::Vector& x, const la::Vector& y) {
  AFFINITY_CHECK_EQ(x.size(), y.size());
  return DotProduct(x.data(), y.data(), x.size());
}

double Correlation(const la::Vector& x, const la::Vector& y) {
  AFFINITY_CHECK_EQ(x.size(), y.size());
  return Correlation(x.data(), y.data(), x.size());
}

la::Vector ColumnSums(const la::Matrix& x) {
  la::Vector out(x.cols());
  for (std::size_t j = 0; j < x.cols(); ++j) out[j] = Sum(x.ColData(j), x.rows());
  return out;
}

la::Matrix PairCovarianceMatrix(const la::Matrix& x) {
  AFFINITY_CHECK_EQ(x.cols(), 2u);
  la::Matrix out(2, 2);
  const double* c0 = x.ColData(0);
  const double* c1 = x.ColData(1);
  out(0, 0) = Variance(c0, x.rows());
  out(1, 1) = Variance(c1, x.rows());
  out(0, 1) = out(1, 0) = Covariance(c0, c1, x.rows());
  return out;
}

la::Matrix PairDotProductMatrix(const la::Matrix& x) {
  AFFINITY_CHECK_EQ(x.cols(), 2u);
  la::Matrix out(2, 2);
  const double* c0 = x.ColData(0);
  const double* c1 = x.ColData(1);
  out(0, 0) = DotProduct(c0, c0, x.rows());
  out(1, 1) = DotProduct(c1, c1, x.rows());
  out(0, 1) = out(1, 0) = DotProduct(c0, c1, x.rows());
  return out;
}

la::Matrix CovarianceMatrix(const DataMatrix& s) {
  const std::size_t n = s.n();
  la::Matrix out(n, n);
  // "From scratch" per pair: means are intentionally *not* shared across
  // pairs — this is the WN cost model of Section 6.
  for (std::size_t u = 0; u < n; ++u) {
    out(u, u) = Variance(s.ColumnData(static_cast<SeriesId>(u)), s.m());
    for (std::size_t v = u + 1; v < n; ++v) {
      const double c = Covariance(s.ColumnData(static_cast<SeriesId>(u)),
                                  s.ColumnData(static_cast<SeriesId>(v)), s.m());
      out(u, v) = c;
      out(v, u) = c;
    }
  }
  return out;
}

la::Matrix DotProductMatrix(const DataMatrix& s) {
  const std::size_t n = s.n();
  la::Matrix out(n, n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u; v < n; ++v) {
      const double d =
          core::kernels::BlockedDot(s.ColumnData(static_cast<SeriesId>(u)),
                                    s.ColumnData(static_cast<SeriesId>(v)), s.m(), s.anchor_row());
      out(u, v) = d;
      out(v, u) = d;
    }
  }
  return out;
}

la::Matrix CorrelationMatrix(const DataMatrix& s) {
  const std::size_t n = s.n();
  la::Matrix out(n, n);
  for (std::size_t u = 0; u < n; ++u) {
    out(u, u) = 1.0;
    for (std::size_t v = u + 1; v < n; ++v) {
      const double r = Correlation(s.ColumnData(static_cast<SeriesId>(u)),
                                   s.ColumnData(static_cast<SeriesId>(v)), s.m());
      out(u, v) = r;
      out(v, u) = r;
    }
  }
  return out;
}

la::Vector MeanVector(const DataMatrix& s) {
  la::Vector out(s.n());
  for (std::size_t j = 0; j < s.n(); ++j) out[j] = Mean(s.ColumnData(static_cast<SeriesId>(j)), s.m());
  return out;
}

la::Vector MedianVector(const DataMatrix& s) {
  la::Vector out(s.n());
  for (std::size_t j = 0; j < s.n(); ++j) {
    out[j] = Median(s.ColumnData(static_cast<SeriesId>(j)), s.m());
  }
  return out;
}

la::Vector ModeVector(const DataMatrix& s) {
  la::Vector out(s.n());
  for (std::size_t j = 0; j < s.n(); ++j) out[j] = Mode(s.ColumnData(static_cast<SeriesId>(j)), s.m());
  return out;
}

}  // namespace affinity::ts::stats
