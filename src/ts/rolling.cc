#include "ts/rolling.h"

#include <cmath>

#include "common/check.h"

namespace affinity::ts {

RollingStats::RollingStats(std::size_t window) : buffer_(window, 0.0) {
  AFFINITY_CHECK_GE(window, 1u);
}

AFFINITY_HOT void RollingStats::Push(double x) {
  if (count_ == buffer_.size()) {
    const double evicted = buffer_[head_];
    sum_ -= evicted;
    sumsq_ -= evicted * evicted;
  } else {
    ++count_;
  }
  buffer_[head_] = x;
  head_ = (head_ + 1) % buffer_.size();
  sum_ += x;
  sumsq_ += x * x;
}

double RollingStats::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double RollingStats::Variance() const {
  if (count_ == 0) return 0.0;
  const double mu = Mean();
  const double var = sumsq_ / static_cast<double>(count_) - mu * mu;
  return var > 0.0 ? var : 0.0;  // clamp negative roundoff
}

RollingCovariance::RollingCovariance(std::size_t window)
    : x_(window), y_(window), xy_(window, 0.0) {}

AFFINITY_HOT void RollingCovariance::Push(double x, double y) {
  if (count_ == xy_.size()) {
    sum_xy_ -= xy_[head_];
  } else {
    ++count_;
  }
  xy_[head_] = x * y;
  head_ = (head_ + 1) % xy_.size();
  sum_xy_ += x * y;
  x_.Push(x);
  y_.Push(y);
}

double RollingCovariance::Covariance() const {
  if (count_ == 0) return 0.0;
  const double inv = 1.0 / static_cast<double>(count_);
  return sum_xy_ * inv - x_.Mean() * y_.Mean();
}

double RollingCovariance::Correlation() const {
  const double denom = std::sqrt(x_.Variance() * y_.Variance());
  if (denom == 0.0) return 0.0;
  return Covariance() / denom;
}

StatusOr<DataMatrix> TailWindow(const DataMatrix& data, std::size_t window) {
  if (window == 0) return Status::InvalidArgument("TailWindow requires window >= 1");
  if (window > data.m()) {
    return Status::InvalidArgument("TailWindow: window " + std::to_string(window) +
                                   " exceeds available samples " + std::to_string(data.m()));
  }
  const std::size_t start = data.m() - window;
  la::Matrix values(window, data.n());
  for (std::size_t j = 0; j < data.n(); ++j) {
    const double* src = data.ColumnData(static_cast<SeriesId>(j));
    double* dst = values.ColData(j);
    for (std::size_t i = 0; i < window; ++i) dst[i] = src[start + i];
  }
  DataMatrix out(std::move(values), data.names());
  // The tail keeps its place on the absolute block grid: sums over the
  // snapshot match the maintained window's anchored chains bit for bit.
  out.set_anchor_row(data.anchor_row() + start);
  return out;
}

}  // namespace affinity::ts
