#ifndef AFFINITY_TS_CSV_H_
#define AFFINITY_TS_CSV_H_

/// \file csv.h
/// CSV import/export of data matrices.
///
/// Format: one header line with comma-separated series names, then one line
/// per sample with comma-separated values. This is the interchange format
/// the examples use to move data in and out of the framework.

#include <string>

#include "common/status.h"
#include "ts/data_matrix.h"

namespace affinity::ts {

/// Writes `data` to `path`. Overwrites existing files.
Status WriteCsv(const DataMatrix& data, const std::string& path);

/// Reads a data matrix from `path`.
/// Returns IoError when the file cannot be opened, InvalidArgument on a
/// malformed row (wrong field count or non-numeric value).
StatusOr<DataMatrix> ReadCsv(const std::string& path);

}  // namespace affinity::ts

#endif  // AFFINITY_TS_CSV_H_
