#ifndef AFFINITY_TS_CSV_H_
#define AFFINITY_TS_CSV_H_

/// \file csv.h
/// CSV import/export of data matrices.
///
/// Format: one header line with comma-separated series names, then one line
/// per sample with comma-separated values. This is the interchange format
/// the examples use to move data in and out of the framework.

#include <string>

#include "common/status.h"
#include "ts/data_matrix.h"

namespace affinity::ts {

/// Writes `data` to `path`. Overwrites existing files.
Status WriteCsv(const DataMatrix& data, const std::string& path);

/// Reads a data matrix from `path`.
/// Returns IoError when the file cannot be opened, InvalidArgument on a
/// malformed row (wrong field count or non-numeric value).
StatusOr<DataMatrix> ReadCsv(const std::string& path);

/// What the tolerant reader repaired (DESIGN.md §12) — the import-side
/// half of the data-quality story: every repaired cell is a NaN the
/// ingestion layer (ts/ingest) then turns into a masked gap.
struct CsvParseReport {
  std::size_t rows = 0;            ///< sample rows parsed
  std::size_t missing_fields = 0;  ///< empty cells → NaN
  std::size_t bad_fields = 0;      ///< non-numeric cells → NaN
  std::size_t short_rows = 0;      ///< rows padded with NaN to the header width
  std::size_t long_rows = 0;       ///< rows with extra fields (dropped)
  std::size_t nan_cells = 0;       ///< total NaN cells emitted

  bool clean() const {
    return missing_fields == 0 && bad_fields == 0 && short_rows == 0 && long_rows == 0;
  }
};

/// As ReadCsv, but tolerant of dirty exports: empty fields, non-numeric
/// values, and ragged rows become NaN cells (short rows are NaN-padded,
/// extra fields dropped) instead of errors, with every repair counted in
/// `report` (optional). Still IoError for an unreadable file and
/// InvalidArgument for a missing/empty header or a body with no samples —
/// a file with no usable shape is an error, not a repair. The returned
/// matrix is NOT safe to feed `Affinity::Build` directly when the report
/// is dirty; route it through the ingestion layer first.
StatusOr<DataMatrix> ReadCsvTolerant(const std::string& path, CsvParseReport* report = nullptr);

}  // namespace affinity::ts

#endif  // AFFINITY_TS_CSV_H_
