#ifndef AFFINITY_TS_DATA_MATRIX_H_
#define AFFINITY_TS_DATA_MATRIX_H_

/// \file data_matrix.h
/// The paper's data matrix `S = [s1, ..., sn] ∈ R^{m×n}` plus the
/// series-identifier / sequence-pair vocabulary of Section 2.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"
#include "la/vector.h"
#include "ts/time_series.h"

namespace affinity::ts {

/// An unordered pair of distinct series identifiers with u < v — the paper's
/// *sequence pair* e = (u, v) ∈ P. Identifiers are 0-based.
struct SequencePair {
  SeriesId u = 0;
  SeriesId v = 0;

  SequencePair() = default;

  /// Normalizes so that u < v regardless of argument order.
  SequencePair(SeriesId a, SeriesId b) : u(a < b ? a : b), v(a < b ? b : a) {}

  bool operator==(const SequencePair& o) const { return u == o.u && v == o.v; }
  bool operator!=(const SequencePair& o) const { return !(*this == o); }
  bool operator<(const SequencePair& o) const {
    return u != o.u ? u < o.u : v < o.v;
  }

  /// A dense 64-bit key for hashing (u in the high word).
  std::uint64_t Key() const {
    return (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint64_t>(v);
  }
};

/// Hash functor so SequencePair can key unordered containers (the paper's
/// affHash / pivotHash maps).
struct SequencePairHash {
  std::size_t operator()(const SequencePair& e) const {
    // SplitMix64 finalizer over the packed key — cheap and well mixed.
    std::uint64_t z = e.Key() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

/// Number of sequence pairs for n series: n(n-1)/2.
inline std::size_t SequencePairCount(std::size_t n) { return n * (n - 1) / 2; }

/// Enumerates the full sequence-pair set P for n series, ordered by (u, v).
std::vector<SequencePair> AllSequencePairs(std::size_t n);

/// The data matrix: n aligned time series of m samples each, stored
/// column-major with per-series names.
///
/// This is the in-memory form of the Fig. 2 `data_matrix` table; the
/// storage module persists and restores it.
class DataMatrix {
 public:
  DataMatrix() = default;

  /// Builds from a raw matrix; names default to "s0", "s1", ...
  explicit DataMatrix(la::Matrix values);

  /// Builds from a raw matrix with explicit per-column names
  /// (must match the column count; checked).
  DataMatrix(la::Matrix values, std::vector<std::string> names);

  /// Builds from a list of equally long time series.
  /// Returns InvalidArgument when lengths differ or the list is empty.
  static StatusOr<DataMatrix> FromSeries(const std::vector<TimeSeries>& series);

  /// Number of samples per series (m).
  std::size_t m() const { return values_.rows(); }

  /// Number of series (n).
  std::size_t n() const { return values_.cols(); }

  /// The underlying m×n matrix.
  const la::Matrix& matrix() const { return values_; }

  /// Mutable access to the underlying matrix — the incremental window
  /// maintenance path (DESIGN.md §8) slides columns in place instead of
  /// reallocating the window every refresh. Dimensions must not change.
  la::Matrix& mutable_matrix() { return values_; }

  /// The absolute stream row of row 0 — the block-grid anchor every
  /// canonical blocked sum over this matrix runs at (core/kernels,
  /// DESIGN.md §10). 0 for standalone matrices (the historic order); a
  /// sliding window carries its position so grid blocks keep their
  /// absolute cut points across slides and retained block partials stay
  /// bit-exact. Copies and serialization preserve it.
  std::size_t anchor_row() const { return anchor_row_; }

  /// Sets the block-grid anchor (windowed snapshots, deserialization).
  void set_anchor_row(std::size_t anchor) { anchor_row_ = anchor; }

  /// Advances the anchor by `rows` — paired with an in-place slide of the
  /// matrix by the incremental maintenance path.
  void advance_anchor(std::size_t rows) { anchor_row_ += rows; }

  /// Name of series `id`.
  const std::string& name(SeriesId id) const { return names_[id]; }

  /// All series names, index-aligned with columns.
  const std::vector<std::string>& names() const { return names_; }

  /// Contiguous storage of series `id` (length m()).
  const double* ColumnData(SeriesId id) const { return values_.ColData(id); }

  /// Copies series `id` into a Vector.
  la::Vector Column(SeriesId id) const { return values_.Col(id); }

  /// The m×2 *sequence pair matrix* Se = [s_u, s_v].
  la::Matrix SequencePairMatrix(const SequencePair& e) const;

  /// Looks up a series id by name; NotFound if absent.
  StatusOr<SeriesId> FindByName(const std::string& name) const;

  /// Returns a DataMatrix restricted to the first `count` series
  /// (used by scalability sweeps). `count` must be ≤ n (checked).
  DataMatrix Prefix(std::size_t count) const;

 private:
  la::Matrix values_;
  std::vector<std::string> names_;
  std::size_t anchor_row_ = 0;
};

}  // namespace affinity::ts

#endif  // AFFINITY_TS_DATA_MATRIX_H_
