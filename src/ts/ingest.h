#ifndef AFFINITY_TS_INGEST_H_
#define AFFINITY_TS_INGEST_H_

/// \file ingest.h
/// Dirty-stream ingestion (DESIGN.md §12): the alignment layer between
/// ragged operational streams and the dense, all-finite window every
/// engine layer above assumes.
///
/// Real streams arrive with irregular timestamps, gaps, NaNs and dead
/// sensors. `StreamAligner` snaps timestamped samples onto the stream
/// grid (origin + tick), buffers out-of-order arrivals up to a caller-
/// driven watermark, and emits one `AlignedRow` per grid slot:
///
///  * an **observed** sample lands in its slot (the latest write wins on
///    duplicates; non-finite values are dropped and counted — a NaN
///    sample is a gap, never a poisoned moment);
///  * a missing sample is **forward-filled** from the series' last
///    repaired value while the gap is at most `max_fill` ticks old
///    (valid = 1, filled = 1);
///  * beyond the horizon the slot is an explicit **gap**: the row still
///    carries the last known value (so dense kernels stay finite) but
///    the validity mask flags it invalid and masked kernels exclude it.
///
/// The emitted (values, valid, filled) triple feeds
/// `StreamingAffinity::AppendMasked`, which maintains the per-series
/// `SeriesQuality` surface through a `QualityTracker` ring mirror of the
/// window.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/status.h"
#include "ts/time_series.h"

namespace affinity::ts {

/// Grid and fill policy of one ingestion stream.
struct IngestOptions {
  double origin = 0.0;       ///< timestamp of grid slot 0
  double tick = 1.0;         ///< grid spacing (> 0)
  std::size_t max_fill = 8;  ///< forward-fill horizon in ticks; older → gap
};

Status ValidateIngestOptions(const IngestOptions& options);

/// One dense window row produced by the aligner, plus its validity mask.
/// `valid[j]` = the value is usable (observed, or forward-filled within
/// the horizon); `filled[j]` = the value was synthesized by forward-fill
/// (implies valid). A slot that is neither is an explicit gap: the value
/// is the series' last known sample (0.0 if none yet) purely to keep the
/// dense window finite.
struct AlignedRow {
  std::int64_t slot = 0;  ///< grid index: origin + slot * tick
  std::vector<double> values;
  std::vector<std::uint8_t> valid;
  std::vector<std::uint8_t> filled;
};

/// Ingestion counters, cumulative since construction.
struct IngestStats {
  std::size_t samples = 0;     ///< accepted Push calls
  std::size_t snapped = 0;     ///< timestamps not exactly on the grid
  std::size_t duplicates = 0;  ///< same (series, slot) overwritten
  std::size_t late = 0;        ///< behind the emitted watermark, dropped
  std::size_t nonfinite = 0;   ///< NaN/Inf values dropped (become gaps)
  std::size_t rows = 0;        ///< rows emitted
  std::size_t fills = 0;       ///< forward-filled cells emitted
  std::size_t gaps = 0;        ///< gap cells emitted
};

/// Aligns timestamped, possibly-ragged samples for `n` series onto the
/// stream grid. Push order is free above the watermark; emission is
/// caller-driven (`EmitUpTo` / `Flush`) so lateness tolerance is a caller
/// policy, not an aligner guess.
class StreamAligner {
 public:
  StreamAligner(std::size_t n, const IngestOptions& options);

  /// Records one sample. The timestamp snaps to the nearest grid slot.
  /// Non-finite values are counted and dropped (the slot stays a gap);
  /// samples behind the watermark are counted and dropped. OutOfRange for
  /// an unknown series.
  Status Push(SeriesId series, double timestamp, double value);

  /// Emits one row per grid slot strictly before `timestamp`, in slot
  /// order, appending to `out`. Returns the number of rows emitted.
  std::size_t EmitUpTo(double timestamp, std::vector<AlignedRow>* out);

  /// Emits every slot up to and including the newest observed sample.
  std::size_t Flush(std::vector<AlignedRow>* out);

  std::size_t n() const { return n_; }
  const IngestOptions& options() const { return options_; }
  const IngestStats& stats() const { return stats_; }
  /// Next slot to be emitted (the watermark: pushes below it are late).
  std::int64_t watermark() const { return next_slot_; }

 private:
  struct PendingRow {
    std::vector<double> values;
    std::vector<std::uint8_t> observed;
  };

  PendingRow& RowForSlot(std::int64_t slot);
  void EmitFront(std::vector<AlignedRow>* out);

  std::size_t n_;
  IngestOptions options_;
  IngestStats stats_;
  std::int64_t next_slot_ = 0;  ///< first unemitted slot
  bool any_sample_ = false;
  std::int64_t max_slot_ = 0;  ///< newest slot with an observed sample
  /// Pending rows for slots [next_slot_, next_slot_ + pending_.size());
  /// bounded by the out-of-orderness the caller's watermark allows.
  std::deque<PendingRow> pending_;
  /// Per-series forward-fill state.
  std::vector<double> last_value_;
  std::vector<std::uint8_t> has_last_;
  std::vector<std::int64_t> last_slot_;  ///< slot of the last observation
};

/// The per-series data-quality surface (DESIGN.md §12), computed over the
/// current window. Modeled on anofox-forecast's ts_stats_by health card:
/// structural stats plus a composite score usable as a query predicate.
struct SeriesQuality {
  std::size_t length = 0;    ///< window rows considered
  std::size_t observed = 0;  ///< rows actually observed
  std::size_t filled = 0;    ///< rows synthesized by forward-fill
  std::size_t gaps = 0;      ///< rows invalid (beyond the fill horizon)
  std::size_t gap_runs = 0;  ///< maximal runs of consecutive gaps
  std::size_t longest_gap = 0;
  std::size_t longest_plateau = 0;  ///< longest constant-value run
  double gap_ratio = 0.0;           ///< gaps / length
  double fill_ratio = 0.0;          ///< filled / length
  double intermittency = 0.0;       ///< zero share among observed rows
  double score = 1.0;               ///< composite quality in [0, 1]
};

/// The composite score (DESIGN.md §12):
///   completeness  = (observed + filled) / length
///   observed_frac = observed / length
///   plateau_ratio = (longest_plateau - 1) / length  (excess run only)
///   base          = (completeness + observed_frac) / 2   — a fill counts half
///   score = base · (1 − ½·plateau_ratio) · (1 − ¼·intermittency)
/// clamped to [0, 1]; an empty window scores 1 (nothing wrong yet).
double CompositeQualityScore(const SeriesQuality& q);

/// Maintains the quality surface incrementally: a ring mirror of the last
/// `window` rows (values + validity + fill flags) updated O(n) per append,
/// with run-length stats (longest gap / plateau) recomputed lazily per
/// ring scan and cached until the next append.
class QualityTracker {
 public:
  QualityTracker(std::size_t n, std::size_t window);

  /// Appends one aligned row. Null `valid` / `filled` mean fully observed.
  void Push(const double* values, const std::uint8_t* valid, const std::uint8_t* filled);

  /// Quality of one series over the current ring contents.
  SeriesQuality Quality(SeriesId series) const;

  /// Quality of every series (cached; recomputed after a Push).
  const std::vector<SeriesQuality>& All() const;

  /// Composite scores only, aligned with series ids (cached like All()).
  const std::vector<double>& Scores() const;

  std::size_t n() const { return n_; }
  std::size_t window() const { return window_; }
  std::size_t size() const { return size_; }

 private:
  std::size_t n_;
  std::size_t window_;
  std::size_t size_ = 0;  ///< rows currently in the ring (≤ window)
  std::size_t head_ = 0;  ///< next ring slot to write
  /// Ring storage, series-major: series j's row i lives at
  /// [j * window_ + (start + i) % window_].
  std::vector<double> values_;
  std::vector<std::uint8_t> valid_;
  std::vector<std::uint8_t> filled_;
  mutable bool cache_fresh_ = false;
  mutable std::vector<SeriesQuality> cache_;
  mutable std::vector<double> scores_;
};

}  // namespace affinity::ts

#endif  // AFFINITY_TS_INGEST_H_
