#include "ts/generators.h"

#include <cmath>

#include "common/check.h"
#include "common/random.h"

namespace affinity::ts {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// A smooth latent factor: sum of two sinusoids (diurnal + harmonic), a
/// slow linear trend, and a random level. Unit-ish amplitude.
la::Vector SmoothFactor(std::size_t m, Xoshiro256* rng) {
  const double phase1 = rng->Uniform(0.0, 2.0 * kPi);
  const double phase2 = rng->Uniform(0.0, 2.0 * kPi);
  const double amp1 = rng->Uniform(0.6, 1.2);
  const double amp2 = rng->Uniform(0.2, 0.6);
  const double cycles = rng->Uniform(0.8, 2.2);  // diurnal-ish periodicity
  const double trend = rng->Uniform(-0.5, 0.5);
  la::Vector f(m);
  for (std::size_t i = 0; i < m; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(m);
    f[i] = amp1 * std::sin(2.0 * kPi * cycles * t + phase1) +
           amp2 * std::sin(4.0 * kPi * cycles * t + phase2) + trend * t;
  }
  return f;
}

/// A standard random walk of length m with per-step stddev `step`.
la::Vector RandomWalk(std::size_t m, double step, Xoshiro256* rng) {
  la::Vector w(m);
  double x = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    // affinity-lint: allow(fp-accumulate): random-walk prefix — inherently sequential
    x += rng->Gaussian(0.0, step);
    w[i] = x;
  }
  return w;
}

/// AR(1) noise with coefficient phi and innovation stddev sigma.
la::Vector Ar1Noise(std::size_t m, double phi, double sigma, Xoshiro256* rng) {
  la::Vector e(m);
  double x = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    x = phi * x + rng->Gaussian(0.0, sigma);
    e[i] = x;
  }
  return e;
}

}  // namespace

Dataset MakeSensorData(DatasetSpec spec) {
  AFFINITY_CHECK_GT(spec.num_series, 0u);
  AFFINITY_CHECK_GT(spec.num_samples, 0u);
  AFFINITY_CHECK_GT(spec.num_clusters, 0u);
  Xoshiro256 rng(spec.seed);

  // Two latent factors per cluster: think "temperature" and "humidity
  // response" of one campus zone.
  std::vector<la::Vector> primary, secondary;
  primary.reserve(spec.num_clusters);
  secondary.reserve(spec.num_clusters);
  for (std::size_t c = 0; c < spec.num_clusters; ++c) {
    primary.push_back(SmoothFactor(spec.num_samples, &rng));
    secondary.push_back(SmoothFactor(spec.num_samples, &rng));
  }

  la::Matrix values(spec.num_samples, spec.num_series);
  std::vector<std::string> names(spec.num_series);
  std::vector<int> truth(spec.num_series);
  for (std::size_t j = 0; j < spec.num_series; ++j) {
    const std::size_t c = j % spec.num_clusters;  // balanced clusters
    truth[j] = static_cast<int>(c);
    // Affine image of the cluster factors: gain * primary + cross * secondary
    // + offset. Gains occasionally negative (inverted sensors exist).
    const double gain = rng.Uniform(0.5, 2.5) * (rng.NextDouble() < 0.12 ? -1.0 : 1.0);
    const double cross = rng.Uniform(-0.4, 0.4);
    const double offset = rng.Uniform(-5.0, 30.0);
    const double scale = std::fabs(gain) + std::fabs(cross);
    la::Vector noise =
        Ar1Noise(spec.num_samples, 0.8, spec.noise_level * scale, &rng);
    la::Vector col(spec.num_samples);
    for (std::size_t i = 0; i < spec.num_samples; ++i) {
      col[i] = gain * primary[c][i] + cross * secondary[c][i] + offset + noise[i];
    }
    values.SetCol(j, col);
    names[j] = "sensor-" + std::to_string(c) + "-" + std::to_string(j);
  }

  Dataset out;
  out.matrix = DataMatrix(std::move(values), std::move(names));
  out.name = "sensor-data";
  out.sampling_interval_seconds = 120.0;  // 2 min, Table 3
  out.true_cluster = std::move(truth);
  return out;
}

Dataset MakeStockData(DatasetSpec spec) {
  AFFINITY_CHECK_GT(spec.num_series, 0u);
  AFFINITY_CHECK_GT(spec.num_samples, 0u);
  AFFINITY_CHECK_GT(spec.num_clusters, 0u);
  Xoshiro256 rng(spec.seed);

  // One market factor plus one factor per sector.
  const double step = 0.0009;  // per-minute log-return scale
  la::Vector market = RandomWalk(spec.num_samples, step, &rng);
  std::vector<la::Vector> sector;
  sector.reserve(spec.num_clusters);
  for (std::size_t c = 0; c < spec.num_clusters; ++c) {
    sector.push_back(RandomWalk(spec.num_samples, step, &rng));
  }

  la::Matrix values(spec.num_samples, spec.num_series);
  std::vector<std::string> names(spec.num_series);
  std::vector<int> truth(spec.num_series);
  for (std::size_t j = 0; j < spec.num_series; ++j) {
    const std::size_t c = j % spec.num_clusters;
    truth[j] = static_cast<int>(c);
    const double w_market = rng.Uniform(0.4, 1.1);
    const double w_sector = rng.Uniform(0.4, 1.2);
    const double base_price = rng.Uniform(5.0, 400.0);
    const double vol = rng.Uniform(0.7, 1.6);
    la::Vector idio = RandomWalk(spec.num_samples, spec.noise_level * step * 40.0, &rng);
    la::Vector col(spec.num_samples);
    for (std::size_t i = 0; i < spec.num_samples; ++i) {
      const double log_ret = vol * (w_market * market[i] + w_sector * sector[c][i]) + idio[i];
      col[i] = base_price * std::exp(log_ret);
    }
    values.SetCol(j, col);
    names[j] = "stk-" + std::to_string(c) + "-" + std::to_string(j);
  }

  Dataset out;
  out.matrix = DataMatrix(std::move(values), std::move(names));
  out.name = "stock-data";
  out.sampling_interval_seconds = 60.0;  // 1 min, Table 3
  out.true_cluster = std::move(truth);
  return out;
}

Dataset MakeClusteredData(DatasetSpec spec) {
  // The sensor generator with the caller's sizes serves as the generic
  // clustered testbed; give it a distinguishing name.
  Dataset out = MakeSensorData(spec);
  out.name = "clustered-" + std::to_string(spec.num_series) + "x" +
             std::to_string(spec.num_samples);
  return out;
}

DataMatrix MakeExactAffineFamily(std::size_t m, std::size_t n, std::uint64_t seed) {
  AFFINITY_CHECK_GE(n, 2u);
  Xoshiro256 rng(seed);
  // Two independent base signals; every series is an exact affine
  // combination a*x + b*y + c of them, so any pair spans the same plane and
  // all LSFDs are zero to machine precision.
  la::Vector x = SmoothFactor(m, &rng);
  la::Vector y = RandomWalk(m, 0.05, &rng);
  la::Matrix values(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    const double a = rng.Uniform(-2.0, 2.0);
    const double b = rng.Uniform(-2.0, 2.0);
    const double c = rng.Uniform(-10.0, 10.0);
    la::Vector col(m);
    for (std::size_t i = 0; i < m; ++i) col[i] = a * x[i] + b * y[i] + c;
    values.SetCol(j, col);
  }
  return DataMatrix(std::move(values));
}

}  // namespace affinity::ts
