#ifndef AFFINITY_TS_ROLLING_H_
#define AFFINITY_TS_ROLLING_H_

/// \file rolling.h
/// Sliding-window statistics for streaming ingestion.
///
/// The paper frames AFFINITY for "real-time and archival settings"; this
/// substrate maintains the per-series and per-pair moments a windowed
/// deployment needs (the same quantities the model's normalizers and the
/// WN kernels consume) in O(1) per sample. Rebuilding the affine model on a
/// refreshed window is then a snapshot + `Affinity::Build` away (see the
/// `sensor_monitor` example and `TailWindow`).
///
/// Implementation: ring buffer plus running sums with subtract-on-evict.
/// This is numerically adequate for the well-scaled inputs of this library;
/// long-running deployments with adversarial scales should periodically
/// re-materialize (documented trade-off, tested against exact recomputation).

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
// Header-only blocked-summation primitives (no link dependency on core).
#include "core/kernels.h"
#include "ts/data_matrix.h"

namespace affinity::ts {

/// O(1)-per-sample rolling moments of one series over a fixed window.
class RollingStats {
 public:
  /// \param window number of most recent samples retained (≥ 1; checked).
  explicit RollingStats(std::size_t window);

  /// Appends a sample, evicting the oldest when the window is full.
  void Push(double x);

  /// Number of samples currently in the window (≤ window()).
  std::size_t count() const { return count_; }

  /// The configured window length.
  std::size_t window() const { return buffer_.size(); }

  /// True when the window holds `window()` samples.
  bool full() const { return count_ == buffer_.size(); }

  /// Sum of the windowed samples.
  double Sum() const { return sum_; }

  /// Sum of squares of the windowed samples.
  double SumSquares() const { return sumsq_; }

  /// Mean of the windowed samples (0 when empty).
  double Mean() const;

  /// Population variance of the windowed samples (0 when empty).
  double Variance() const;

 private:
  std::vector<double> buffer_;
  std::size_t head_ = 0;  // next write position
  std::size_t count_ = 0;
  double sum_ = 0;
  double sumsq_ = 0;
};

/// O(1)-per-sample rolling co-moments of an aligned pair of series.
class RollingCovariance {
 public:
  explicit RollingCovariance(std::size_t window);

  /// Appends one aligned sample pair.
  void Push(double x, double y);

  std::size_t count() const { return x_.count(); }
  bool full() const { return x_.full(); }

  /// Population covariance over the window (0 when empty).
  double Covariance() const;

  /// Pearson correlation over the window (0 when a variance vanishes).
  double Correlation() const;

  /// Windowed dot product Σ xᵢyᵢ.
  double DotProduct() const { return sum_xy_; }

  /// The per-series rolling stats.
  const RollingStats& x() const { return x_; }
  const RollingStats& y() const { return y_; }

 private:
  RollingStats x_;
  RollingStats y_;
  std::vector<double> xy_;  // ring of x*y products
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  double sum_xy_ = 0;
};

/// Windowed add/evict accumulator of the right-hand-side sums
/// (Σ c1·t, Σ c2·t, Σ t) a normal-equation refit over [c1, c2, 1m] needs.
/// Unlike RollingStats it keeps no ring of its own: the caller owns one
/// shared ring of window rows (the sliding data matrix) and supplies the
/// evicted values — the layout that lets the incremental maintenance path
/// (DESIGN.md §8) keep O(pairs) accumulators without O(pairs · window)
/// memory.
struct RollingCrossSums {
  double c1t = 0.0;  ///< Σ c1ᵢ·tᵢ over the window
  double c2t = 0.0;  ///< Σ c2ᵢ·tᵢ
  double t = 0.0;    ///< Σ tᵢ

  /// Absorbs one aligned sample entering the window.
  AFFINITY_HOT void Add(double c1, double c2, double tv) {
    c1t += c1 * tv;
    c2t += c2 * tv;
    t += tv;
  }

  /// Removes one aligned sample leaving the window.
  AFFINITY_HOT void Evict(double c1, double c2, double tv) {
    c1t -= c1 * tv;
    c2t -= c2 * tv;
    t -= tv;
  }

  /// Overwrites with exact sums over the full window — the periodic
  /// re-materialization that bounds subtract-on-evict round-off. Runs the
  /// blocked cross kernel at the window's block-grid anchor so a Reset is
  /// bitwise equal to the SYMEX+ build path's right-hand-side
  /// accumulation over the same window (fit_kernels.h / DESIGN.md §10).
  void Reset(const double* c1, const double* c2, const double* tv, std::size_t m,
             std::size_t anchor = 0) {
    double sums[3];
    core::kernels::FusedCross3(c1, c2, tv, m, sums, anchor);
    c1t = sums[0];
    c2t = sums[1];
    t = sums[2];
  }

  /// Installs sums produced elsewhere (the retained block-partial slide of
  /// the incremental path, which is bitwise equal to Reset by
  /// construction).
  void Install(const double sums[3]) {
    c1t = sums[0];
    c2t = sums[1];
    t = sums[2];
  }
};

/// The last `window` rows of `data` as a new DataMatrix — the snapshot a
/// windowed deployment rebuilds the AFFINITY model from.
/// InvalidArgument when window is 0 or exceeds data.m().
StatusOr<DataMatrix> TailWindow(const DataMatrix& data, std::size_t window);

}  // namespace affinity::ts

#endif  // AFFINITY_TS_ROLLING_H_
