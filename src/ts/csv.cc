#include "ts/csv.h"

#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

namespace affinity::ts {

namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) fields.push_back(field);
  // Trailing comma produces an implicit empty final field.
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

}  // namespace

Status WriteCsv(const DataMatrix& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out.precision(17);
  for (std::size_t j = 0; j < data.n(); ++j) {
    if (j) out << ',';
    out << data.name(static_cast<SeriesId>(j));
  }
  out << '\n';
  for (std::size_t i = 0; i < data.m(); ++i) {
    for (std::size_t j = 0; j < data.n(); ++j) {
      if (j) out << ',';
      out << data.matrix()(i, j);
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

StatusOr<DataMatrix> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");

  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("'" + path + "' is empty (missing header)");
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  const std::vector<std::string> names = SplitCsvLine(line);
  if (names.empty()) {
    return Status::InvalidArgument("'" + path + "' has an empty header");
  }

  std::vector<std::vector<double>> rows;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != names.size()) {
      return Status::InvalidArgument("'" + path + "' line " + std::to_string(line_no) +
                                     ": expected " + std::to_string(names.size()) +
                                     " fields, got " + std::to_string(fields.size()));
    }
    std::vector<double> row(fields.size());
    for (std::size_t j = 0; j < fields.size(); ++j) {
      char* end = nullptr;
      row[j] = std::strtod(fields[j].c_str(), &end);
      if (end == fields[j].c_str() || *end != '\0') {
        return Status::InvalidArgument("'" + path + "' line " + std::to_string(line_no) +
                                       ": non-numeric value '" + fields[j] + "'");
      }
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    return Status::InvalidArgument("'" + path + "' contains a header but no samples");
  }

  la::Matrix values(rows.size(), names.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < names.size(); ++j) values(i, j) = rows[i][j];
  }
  return DataMatrix(std::move(values), names);
}

StatusOr<DataMatrix> ReadCsvTolerant(const std::string& path, CsvParseReport* report) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");

  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("'" + path + "' is empty (missing header)");
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  const std::vector<std::string> names = SplitCsvLine(line);
  if (names.empty()) {
    return Status::InvalidArgument("'" + path + "' has an empty header");
  }

  const double nan = std::numeric_limits<double>::quiet_NaN();
  CsvParseReport counts;
  std::vector<std::vector<double>> rows;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() < names.size()) ++counts.short_rows;
    if (fields.size() > names.size()) ++counts.long_rows;
    std::vector<double> row(names.size(), nan);
    for (std::size_t j = 0; j < names.size(); ++j) {
      if (j >= fields.size() || fields[j].empty()) {
        // Short row or empty cell: the sample is simply absent.
        if (j < fields.size()) ++counts.missing_fields;
        ++counts.nan_cells;
        continue;
      }
      char* end = nullptr;
      const double value = std::strtod(fields[j].c_str(), &end);
      if (end == fields[j].c_str() || *end != '\0') {
        ++counts.bad_fields;
        ++counts.nan_cells;
        continue;  // row[j] stays NaN
      }
      row[j] = value;
      if (!(value == value)) ++counts.nan_cells;  // a literal "nan" field
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    return Status::InvalidArgument("'" + path + "' contains a header but no samples");
  }
  counts.rows = rows.size();

  la::Matrix values(rows.size(), names.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < names.size(); ++j) values(i, j) = rows[i][j];
  }
  if (report != nullptr) *report = counts;
  return DataMatrix(std::move(values), names);
}

}  // namespace affinity::ts
