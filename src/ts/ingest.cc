#include "ts/ingest.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"

namespace affinity::ts {

Status ValidateIngestOptions(const IngestOptions& options) {
  if (!std::isfinite(options.origin)) {
    return Status::InvalidArgument("ingest origin must be finite");
  }
  if (!std::isfinite(options.tick) || options.tick <= 0.0) {
    return Status::InvalidArgument("ingest tick must be a positive finite value");
  }
  return Status::OK();
}

StreamAligner::StreamAligner(std::size_t n, const IngestOptions& options)
    : n_(n),
      options_(options),
      last_value_(n, 0.0),
      has_last_(n, 0),
      last_slot_(n, 0) {
  AFFINITY_CHECK(ValidateIngestOptions(options).ok());
  AFFINITY_CHECK(n > 0);
}

StreamAligner::PendingRow& StreamAligner::RowForSlot(std::int64_t slot) {
  AFFINITY_DCHECK(slot >= next_slot_);
  const std::size_t offset = static_cast<std::size_t>(slot - next_slot_);
  while (pending_.size() <= offset) {
    PendingRow row;
    row.values.assign(n_, 0.0);
    row.observed.assign(n_, 0);
    pending_.push_back(std::move(row));
  }
  return pending_[offset];
}

Status StreamAligner::Push(SeriesId series, double timestamp, double value) {
  if (series >= n_) {
    return Status::OutOfRange("series " + std::to_string(series) + " out of range (n=" +
                              std::to_string(n_) + ")");
  }
  if (!std::isfinite(timestamp)) {
    return Status::InvalidArgument("sample timestamp must be finite");
  }
  // Snap to the nearest grid slot; anything off-grid is counted so the
  // parse/ingest report surfaces clock skew.
  const double pos = (timestamp - options_.origin) / options_.tick;
  const double snapped = std::nearbyint(pos);
  const std::int64_t slot = static_cast<std::int64_t>(snapped);
  if (slot < 0) return Status::OutOfRange("sample timestamp precedes the grid origin");
  if (std::abs(pos - snapped) > 1e-9) ++stats_.snapped;
  if (!std::isfinite(value)) {
    // A NaN/Inf sample is a gap, never a poisoned moment: drop the value,
    // leave the slot unobserved, and account for it.
    ++stats_.nonfinite;
    return Status::OK();
  }
  if (slot < next_slot_) {
    ++stats_.late;
    return Status::OK();
  }
  PendingRow& row = RowForSlot(slot);
  if (row.observed[series]) ++stats_.duplicates;
  row.values[series] = value;
  row.observed[series] = 1;
  ++stats_.samples;
  any_sample_ = true;
  max_slot_ = std::max(max_slot_, slot);
  return Status::OK();
}

void StreamAligner::EmitFront(std::vector<AlignedRow>* out) {
  AlignedRow row;
  row.slot = next_slot_;
  row.values.assign(n_, 0.0);
  row.valid.assign(n_, 0);
  row.filled.assign(n_, 0);
  const PendingRow* pending = pending_.empty() ? nullptr : &pending_.front();
  for (std::size_t j = 0; j < n_; ++j) {
    if (pending != nullptr && pending->observed[j]) {
      row.values[j] = pending->values[j];
      row.valid[j] = 1;
      last_value_[j] = pending->values[j];
      has_last_[j] = 1;
      last_slot_[j] = next_slot_;
      continue;
    }
    // Missing sample: forward-fill from the last observation while the
    // gap is within the horizon, else an explicit (but finite) gap.
    row.values[j] = has_last_[j] ? last_value_[j] : 0.0;
    const bool fillable =
        has_last_[j] &&
        static_cast<std::size_t>(next_slot_ - last_slot_[j]) <= options_.max_fill;
    if (fillable) {
      row.valid[j] = 1;
      row.filled[j] = 1;
      ++stats_.fills;
    } else {
      ++stats_.gaps;
    }
  }
  if (!pending_.empty()) pending_.pop_front();
  ++next_slot_;
  ++stats_.rows;
  out->push_back(std::move(row));
}

std::size_t StreamAligner::EmitUpTo(double timestamp, std::vector<AlignedRow>* out) {
  AFFINITY_CHECK(out != nullptr);
  const double pos = (timestamp - options_.origin) / options_.tick;
  const std::int64_t stop = static_cast<std::int64_t>(std::ceil(pos));
  std::size_t emitted = 0;
  while (next_slot_ < stop) {
    EmitFront(out);
    ++emitted;
  }
  return emitted;
}

std::size_t StreamAligner::Flush(std::vector<AlignedRow>* out) {
  AFFINITY_CHECK(out != nullptr);
  if (!any_sample_ && pending_.empty()) return 0;
  std::size_t emitted = 0;
  while (!pending_.empty() || next_slot_ <= max_slot_) {
    EmitFront(out);
    ++emitted;
  }
  return emitted;
}

double CompositeQualityScore(const SeriesQuality& q) {
  if (q.length == 0) return 1.0;
  const double len = static_cast<double>(q.length);
  const double completeness = static_cast<double>(q.observed + q.filled) / len;
  const double observed_frac = static_cast<double>(q.observed) / len;
  // A plateau of 1 is no plateau: only the excess run length penalizes,
  // so a clean window of distinct values scores exactly 1.
  const std::size_t excess = q.longest_plateau > 0 ? q.longest_plateau - 1 : 0;
  const double plateau_ratio = static_cast<double>(excess) / len;
  const double base = 0.5 * (completeness + observed_frac);
  const double score = base * (1.0 - 0.5 * plateau_ratio) * (1.0 - 0.25 * q.intermittency);
  return std::clamp(score, 0.0, 1.0);
}

QualityTracker::QualityTracker(std::size_t n, std::size_t window)
    : n_(n),
      window_(window),
      values_(n * window, 0.0),
      valid_(n * window, 1),
      filled_(n * window, 0) {
  AFFINITY_CHECK(n > 0 && window > 0);
}

void QualityTracker::Push(const double* values, const std::uint8_t* valid,
                          const std::uint8_t* filled) {
  for (std::size_t j = 0; j < n_; ++j) {
    const std::size_t at = j * window_ + head_;
    values_[at] = values[j];
    valid_[at] = valid == nullptr ? 1 : valid[j];
    filled_[at] = filled == nullptr ? 0 : filled[j];
  }
  head_ = (head_ + 1) % window_;
  if (size_ < window_) ++size_;
  cache_fresh_ = false;
}

SeriesQuality QualityTracker::Quality(SeriesId series) const {
  AFFINITY_CHECK_LT(series, n_);
  SeriesQuality q;
  q.length = size_;
  if (size_ == 0) return q;
  const std::size_t start = (head_ + window_ - size_) % window_;
  const double* vals = values_.data() + static_cast<std::size_t>(series) * window_;
  const std::uint8_t* ok = valid_.data() + static_cast<std::size_t>(series) * window_;
  const std::uint8_t* fil = filled_.data() + static_cast<std::size_t>(series) * window_;
  std::size_t gap_run = 0;
  std::size_t plateau = 0;
  double plateau_value = 0.0;
  bool have_prev = false;
  for (std::size_t i = 0; i < size_; ++i) {
    const std::size_t at = (start + i) % window_;
    const bool is_valid = ok[at] != 0;
    const bool is_fill = is_valid && fil[at] != 0;
    if (!is_valid) {
      ++q.gaps;
      if (gap_run == 0) ++q.gap_runs;
      ++gap_run;
      q.longest_gap = std::max(q.longest_gap, gap_run);
    } else {
      gap_run = 0;
      if (is_fill) {
        ++q.filled;
      } else {
        ++q.observed;
        if (vals[at] == 0.0) ++q.intermittency;  // count; ratio below
      }
    }
    // Plateau: a run of equal consecutive values (fills extend it by
    // construction; gaps carry the last value forward, also extending).
    if (have_prev && vals[at] == plateau_value) {
      ++plateau;
    } else {
      plateau = 1;
      plateau_value = vals[at];
      have_prev = true;
    }
    q.longest_plateau = std::max(q.longest_plateau, plateau);
  }
  const double len = static_cast<double>(q.length);
  q.gap_ratio = static_cast<double>(q.gaps) / len;
  q.fill_ratio = static_cast<double>(q.filled) / len;
  q.intermittency = q.observed == 0 ? 0.0 : q.intermittency / static_cast<double>(q.observed);
  q.score = CompositeQualityScore(q);
  return q;
}

const std::vector<SeriesQuality>& QualityTracker::All() const {
  if (!cache_fresh_) {
    cache_.resize(n_);
    scores_.resize(n_);
    for (std::size_t j = 0; j < n_; ++j) {
      cache_[j] = Quality(static_cast<SeriesId>(j));
      scores_[j] = cache_[j].score;
    }
    cache_fresh_ = true;
  }
  return cache_;
}

const std::vector<double>& QualityTracker::Scores() const {
  All();
  return scores_;
}

}  // namespace affinity::ts
