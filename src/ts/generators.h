#ifndef AFFINITY_TS_GENERATORS_H_
#define AFFINITY_TS_GENERATORS_H_

/// \file generators.h
/// Synthetic dataset generators standing in for the paper's two real
/// datasets (Table 3).
///
/// The paper evaluates on (a) `sensor-data`: 670 daily series × 720 samples
/// from campus environmental sensors, and (b) `stock-data`: 996 intra-day
/// series × 1950 samples from S&P 500 stocks and ETFs. Neither dataset is
/// public, so we generate synthetic equivalents with the property AFFINITY
/// actually exploits: *groups of series that are near-affine images of a
/// common latent signal*. Sensors sharing a phenomenon (temperature on one
/// campus) and stocks sharing a sector factor both have this structure; the
/// generators reproduce it with controllable cluster count and noise.
/// DESIGN.md §2 records this substitution.

#include <cstdint>
#include <string>
#include <vector>

#include "ts/data_matrix.h"

namespace affinity::ts {

/// Parameters of the latent-factor generators.
struct DatasetSpec {
  std::size_t num_series = 100;      ///< n
  std::size_t num_samples = 200;     ///< m
  std::size_t num_clusters = 8;      ///< latent groups ("true" k)
  double noise_level = 0.02;         ///< idiosyncratic noise relative to signal scale
  std::uint64_t seed = 42;           ///< PRNG seed (fully reproducible)
};

/// A generated dataset: the data matrix plus ground-truth metadata that
/// tests use to validate clustering quality.
struct Dataset {
  DataMatrix matrix;
  std::string name;
  double sampling_interval_seconds = 60.0;
  /// Ground-truth latent cluster of each series (size n).
  std::vector<int> true_cluster;
};

/// Campus-sensor-like data: per cluster, two smooth latent factors
/// (diurnal sinusoids + slow trend); each series is an affine combination
/// of its cluster's factors plus AR(1) measurement noise.
///
/// Defaults reproduce Table 3: n=670, m=720, Δt=2 min.
Dataset MakeSensorData(DatasetSpec spec = {.num_series = 670,
                                           .num_samples = 720,
                                           .num_clusters = 8,
                                           .noise_level = 0.02,
                                           .seed = 42});

/// Intra-day-equity-like data: geometric random walks driven by one market
/// factor and per-sector factors; series loadings and base prices vary.
///
/// Defaults reproduce Table 3: n=996, m=1950, Δt=1 min.
Dataset MakeStockData(DatasetSpec spec = {.num_series = 996,
                                          .num_samples = 1950,
                                          .num_clusters = 10,
                                          .noise_level = 0.015,
                                          .seed = 7});

/// Small generic clustered dataset for unit tests and examples.
Dataset MakeClusteredData(DatasetSpec spec);

/// Series with an *exact* affine relationship to a base (zero LSFD by
/// construction) — used by property tests.
DataMatrix MakeExactAffineFamily(std::size_t m, std::size_t n, std::uint64_t seed);

}  // namespace affinity::ts

#endif  // AFFINITY_TS_GENERATORS_H_
