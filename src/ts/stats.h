#ifndef AFFINITY_TS_STATS_H_
#define AFFINITY_TS_STATS_H_

/// \file stats.h
/// Scalar and matrix-level statistical kernels.
///
/// These kernels *are* the WN ("naive, from scratch") baseline of the paper:
/// every call recomputes its result from the raw samples with no shared
/// state, exactly as the naive method is costed in Section 6.
///
/// Conventions (pinned in DESIGN.md §6):
///  * covariance / variance are population moments (divide by m);
///  * the dot product is the raw inner product Σ xᵢyᵢ;
///  * the mode quantizes to `kModeBins` equal-width bins over [min, max]
///    and returns the centre of the most populated bin (ties → lower bin);
///  * the median of an even-length series is the midpoint of the two
///    central order statistics.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "la/matrix.h"
#include "la/vector.h"
#include "ts/data_matrix.h"

namespace affinity::ts::stats {

/// Number of histogram bins used by the mode estimator.
inline constexpr int kModeBins = 256;

/// Sum of elements.
double Sum(const double* x, std::size_t m);

/// Arithmetic mean (0 for m == 0).
double Mean(const double* x, std::size_t m);

/// Median via partial selection; copies the input (the caller's data is
/// never reordered). 0 for m == 0.
double Median(const double* x, std::size_t m);

/// As Median, reusing `*scratch` for the working copy — for callers that
/// evaluate many columns per pass (the per-refresh recomputation of
/// DESIGN.md §8). The result is the central order statistic, so it is
/// identical to Median() bit for bit.
double MedianWithScratch(const double* x, std::size_t m, std::vector<double>* scratch);

/// Histogram mode over `bins` equal-width bins (see file docs).
double Mode(const double* x, std::size_t m, int bins = kModeBins);

/// As Mode, reusing `*hist` for the histogram; identical to Mode() bit for
/// bit (bin counts are order-independent).
double ModeWithScratch(const double* x, std::size_t m, int bins,
                       std::vector<std::uint32_t>* hist);

/// Mode of an ascending-sorted series: bin populations are counted by
/// boundary bisection (O(bins·log m)) instead of a full histogram pass —
/// the shape the incremental refresh wants, where a sorted view of every
/// window column is already maintained. Each element's bin is the same
/// `(x - lo)·bins/(hi - lo)` map ModeWithScratch applies (monotone in x,
/// so bisection is valid), so the result is bitwise identical to
/// Mode()/ModeWithScratch() over any permutation of the same samples.
double ModeSortedWithScratch(const double* sorted, std::size_t m, int bins,
                             std::vector<std::uint32_t>* hist);

/// The bin index of `x` in the mode estimator's equal-width binning over
/// [lo, hi) with `bins` bins — the exact per-element map Mode() applies
/// (top clamp included). Requires hi > lo.
inline int ModeBinOf(double x, double lo, double hi, int bins) {
  const double inv_width = static_cast<double>(bins) / (hi - lo);
  const auto b = static_cast<long>((x - lo) * inv_width);
  return b >= bins ? bins - 1 : static_cast<int>(b);
}

/// Finishes the mode from already-counted bin populations over [lo, hi)
/// (hi > lo): same argmax (ties → lower bin) and same centre arithmetic
/// as Mode(), so a histogram maintained by exact integer delta updates
/// yields the identical double. `counts.size()` is the bin count.
double ModeFromHistogram(double lo, double hi, const std::vector<std::uint32_t>& counts);

/// The classical naive mode estimator for continuous data: the sample with
/// the most neighbours within a half-window of h = (max−min)/bins — i.e.
/// the highest-local-density sample. O(m²); this is the WN baseline the
/// paper's mode experiments cost (its reported ~3500× mode speedups and
/// 10–100 s absolute naive-mode times are only consistent with a quadratic
/// kernel). The histogram Mode above approximates it to within ~one bin.
double NaiveModeEstimate(const double* x, std::size_t m, int bins = kModeBins);

/// Population variance (divides by m; 0 for m == 0).
double Variance(const double* x, std::size_t m);

/// Population covariance of two aligned series.
double Covariance(const double* x, const double* y, std::size_t m);

/// Raw dot product Σ xᵢ yᵢ, accumulated on the canonical block grid at
/// `anchor` (core/kernels) — pass the owning matrix's `anchor_row()` when
/// the columns come from a sliding window.
double DotProduct(const double* x, const double* y, std::size_t m, std::size_t anchor = 0);

/// Pearson correlation; 0 when either variance vanishes.
double Correlation(const double* x, const double* y, std::size_t m);

/// The correlation normalizer U = sqrt(Var(x) · Var(y)) of Eq. (8).
double CorrelationNormalizer(const double* x, const double* y, std::size_t m);

/// Convenience overloads on Vector.
double Mean(const la::Vector& x);
double Median(const la::Vector& x);
double Mode(const la::Vector& x);
double Variance(const la::Vector& x);
double Covariance(const la::Vector& x, const la::Vector& y);
double DotProduct(const la::Vector& x, const la::Vector& y);
double Correlation(const la::Vector& x, const la::Vector& y);

/// Column sums h1, h2 of a two-column matrix (Eq. (7)).
la::Vector ColumnSums(const la::Matrix& x);

/// 2×2 covariance matrix of a two-column matrix (Eq. (2)).
la::Matrix PairCovarianceMatrix(const la::Matrix& x);

/// 2×2 dot-product matrix XᵀX of a two-column matrix.
la::Matrix PairDotProductMatrix(const la::Matrix& x);

/// Full n×n covariance matrix Σ(S), computed from scratch (WN).
la::Matrix CovarianceMatrix(const DataMatrix& s);

/// Full n×n dot-product matrix Π(S), computed from scratch (WN).
la::Matrix DotProductMatrix(const DataMatrix& s);

/// Full n×n correlation matrix ρ(S), computed from scratch (WN).
la::Matrix CorrelationMatrix(const DataMatrix& s);

/// Per-series location measures, computed from scratch (WN).
la::Vector MeanVector(const DataMatrix& s);
la::Vector MedianVector(const DataMatrix& s);
la::Vector ModeVector(const DataMatrix& s);

}  // namespace affinity::ts::stats

#endif  // AFFINITY_TS_STATS_H_
