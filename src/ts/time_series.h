#ifndef AFFINITY_TS_TIME_SERIES_H_
#define AFFINITY_TS_TIME_SERIES_H_

/// \file time_series.h
/// A single named, regularly sampled time series.

#include <cstdint>
#include <string>
#include <utility>

#include "la/vector.h"

namespace affinity::ts {

/// Identifier of a time series inside a data matrix (1-based in the paper's
/// notation; 0-based here, documented at every API boundary).
using SeriesId = std::uint32_t;

/// A regularly sampled time series: values plus sampling metadata.
///
/// AFFINITY operates on aligned series, so timestamps are implicit:
/// sample i was taken at `start_time + i * interval_seconds`.
class TimeSeries {
 public:
  TimeSeries() = default;

  /// \param name              human-readable name (e.g. ticker or sensor id)
  /// \param values            the samples
  /// \param interval_seconds  sampling interval Δt (default 60 s)
  /// \param start_time        epoch seconds of sample 0 (default 0)
  TimeSeries(std::string name, la::Vector values, double interval_seconds = 60.0,
             std::int64_t start_time = 0)
      : name_(std::move(name)),
        values_(std::move(values)),
        interval_seconds_(interval_seconds),
        start_time_(start_time) {}

  /// Human-readable name.
  const std::string& name() const { return name_; }

  /// The sample vector.
  const la::Vector& values() const { return values_; }
  la::Vector& mutable_values() { return values_; }

  /// Number of samples.
  std::size_t length() const { return values_.size(); }

  /// Sampling interval in seconds.
  double interval_seconds() const { return interval_seconds_; }

  /// Epoch seconds of the first sample.
  std::int64_t start_time() const { return start_time_; }

  /// Epoch seconds of sample `i`.
  double TimestampOf(std::size_t i) const {
    return static_cast<double>(start_time_) + interval_seconds_ * static_cast<double>(i);
  }

 private:
  std::string name_;
  la::Vector values_;
  double interval_seconds_ = 60.0;
  std::int64_t start_time_ = 0;
};

}  // namespace affinity::ts

#endif  // AFFINITY_TS_TIME_SERIES_H_
