#include "ts/data_matrix.h"

#include "common/check.h"

namespace affinity::ts {

std::vector<SequencePair> AllSequencePairs(std::size_t n) {
  std::vector<SequencePair> out;
  out.reserve(SequencePairCount(n));
  for (SeriesId u = 0; u + 1 < n; ++u) {
    for (SeriesId v = u + 1; v < n; ++v) out.emplace_back(u, v);
  }
  return out;
}

DataMatrix::DataMatrix(la::Matrix values) : values_(std::move(values)) {
  names_.reserve(values_.cols());
  for (std::size_t j = 0; j < values_.cols(); ++j) {
    names_.push_back("s" + std::to_string(j));
  }
}

DataMatrix::DataMatrix(la::Matrix values, std::vector<std::string> names)
    : values_(std::move(values)), names_(std::move(names)) {
  AFFINITY_CHECK_EQ(names_.size(), values_.cols());
}

StatusOr<DataMatrix> DataMatrix::FromSeries(const std::vector<TimeSeries>& series) {
  if (series.empty()) {
    return Status::InvalidArgument("DataMatrix::FromSeries: empty series list");
  }
  const std::size_t m = series.front().length();
  for (const auto& s : series) {
    if (s.length() != m) {
      return Status::InvalidArgument("DataMatrix::FromSeries: series lengths differ (" +
                                     s.name() + ")");
    }
  }
  la::Matrix values(m, series.size());
  std::vector<std::string> names;
  names.reserve(series.size());
  for (std::size_t j = 0; j < series.size(); ++j) {
    values.SetCol(j, series[j].values());
    names.push_back(series[j].name());
  }
  return DataMatrix(std::move(values), std::move(names));
}

la::Matrix DataMatrix::SequencePairMatrix(const SequencePair& e) const {
  AFFINITY_CHECK_LT(e.v, n());
  la::Matrix out(m(), 2);
  const double* cu = ColumnData(e.u);
  const double* cv = ColumnData(e.v);
  double* d0 = out.ColData(0);
  double* d1 = out.ColData(1);
  for (std::size_t i = 0; i < m(); ++i) {
    d0[i] = cu[i];
    d1[i] = cv[i];
  }
  return out;
}

StatusOr<SeriesId> DataMatrix::FindByName(const std::string& name) const {
  for (std::size_t j = 0; j < names_.size(); ++j) {
    if (names_[j] == name) return static_cast<SeriesId>(j);
  }
  return Status::NotFound("no series named '" + name + "'");
}

DataMatrix DataMatrix::Prefix(std::size_t count) const {
  AFFINITY_CHECK_LE(count, n());
  la::Matrix sub(m(), count);
  for (std::size_t j = 0; j < count; ++j) sub.SetCol(j, values_.Col(j));
  std::vector<std::string> names(names_.begin(), names_.begin() + static_cast<long>(count));
  DataMatrix out(std::move(sub), std::move(names));
  out.set_anchor_row(anchor_row_);  // same rows, same block grid
  return out;
}

}  // namespace affinity::ts
