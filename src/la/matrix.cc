// affinity-lint: allow-file(fp-accumulate): sequential dense LA — fixed iteration
// order on one thread; the parallel/chunked summation paths live in core/kernels.
#include "la/matrix.h"

#include <cmath>
#include <sstream>

#include "common/check.h"

namespace affinity::la {

Matrix Matrix::FromRows(std::initializer_list<std::initializer_list<double>> rows) {
  const std::size_t r = rows.size();
  const std::size_t c = r == 0 ? 0 : rows.begin()->size();
  Matrix out(r, c);
  std::size_t i = 0;
  for (const auto& row : rows) {
    AFFINITY_CHECK_EQ(row.size(), c);
    std::size_t j = 0;
    for (double v : row) out(i, j++) = v;
    ++i;
  }
  return out;
}

Matrix Matrix::FromColumns(const std::vector<Vector>& columns) {
  if (columns.empty()) return Matrix();
  const std::size_t r = columns.front().size();
  Matrix out(r, columns.size());
  for (std::size_t j = 0; j < columns.size(); ++j) {
    AFFINITY_CHECK_EQ(columns[j].size(), r);
    out.SetCol(j, columns[j]);
  }
  return out;
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

Vector Matrix::Col(std::size_t j) const {
  AFFINITY_CHECK_LT(j, cols_);
  Vector out(rows_);
  const double* src = ColData(j);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = src[i];
  return out;
}

void Matrix::SetCol(std::size_t j, const Vector& v) {
  AFFINITY_CHECK_LT(j, cols_);
  AFFINITY_CHECK_EQ(v.size(), rows_);
  double* dst = ColData(j);
  for (std::size_t i = 0; i < rows_; ++i) dst[i] = v[i];
}

Matrix Matrix::Multiply(const Matrix& other) const {
  AFFINITY_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  // Column-major friendly loop order: out[:,j] = sum_k this[:,k] * other(k,j).
  for (std::size_t j = 0; j < other.cols_; ++j) {
    double* dst = out.ColData(j);
    for (std::size_t k = 0; k < cols_; ++k) {
      const double w = other(k, j);
      if (w == 0.0) continue;
      const double* src = ColData(k);
      for (std::size_t i = 0; i < rows_; ++i) dst[i] += w * src[i];
    }
  }
  return out;
}

Vector Matrix::Multiply(const Vector& v) const {
  AFFINITY_CHECK_EQ(cols_, v.size());
  Vector out(rows_);
  for (std::size_t k = 0; k < cols_; ++k) {
    const double w = v[k];
    if (w == 0.0) continue;
    const double* src = ColData(k);
    for (std::size_t i = 0; i < rows_; ++i) out[i] += w * src[i];
  }
  return out;
}

Vector Matrix::TransposeMultiply(const Vector& v) const {
  AFFINITY_CHECK_EQ(rows_, v.size());
  Vector out(cols_);
  for (std::size_t j = 0; j < cols_; ++j) {
    const double* src = ColData(j);
    double acc = 0.0;
    for (std::size_t i = 0; i < rows_; ++i) acc += src[i] * v[i];
    out[j] = acc;
  }
  return out;
}

Matrix Matrix::Gram() const {
  Matrix out(cols_, cols_);
  for (std::size_t a = 0; a < cols_; ++a) {
    const double* ca = ColData(a);
    for (std::size_t b = a; b < cols_; ++b) {
      const double* cb = ColData(b);
      double acc = 0.0;
      for (std::size_t i = 0; i < rows_; ++i) acc += ca[i] * cb[i];
      out(a, b) = acc;
      out(b, a) = acc;
    }
  }
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t j = 0; j < cols_; ++j) {
    const double* src = ColData(j);
    for (std::size_t i = 0; i < rows_; ++i) out(j, i) = src[i];
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  AFFINITY_CHECK_EQ(rows_, other.rows_);
  AFFINITY_CHECK_EQ(cols_, other.cols_);
  Matrix out = *this;
  for (std::size_t idx = 0; idx < data_.size(); ++idx) out.data_[idx] += other.data_[idx];
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  AFFINITY_CHECK_EQ(rows_, other.rows_);
  AFFINITY_CHECK_EQ(cols_, other.cols_);
  Matrix out = *this;
  for (std::size_t idx = 0; idx < data_.size(); ++idx) out.data_[idx] -= other.data_[idx];
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out = *this;
  for (auto& x : out.data_) x *= scalar;
  return out;
}

Matrix Matrix::ConcatColumns(const Matrix& other) const {
  AFFINITY_CHECK_EQ(rows_, other.rows_);
  Matrix out(rows_, cols_ + other.cols_);
  for (std::size_t j = 0; j < cols_; ++j) {
    const double* src = ColData(j);
    double* dst = out.ColData(j);
    for (std::size_t i = 0; i < rows_; ++i) dst[i] = src[i];
  }
  for (std::size_t j = 0; j < other.cols_; ++j) {
    const double* src = other.ColData(j);
    double* dst = out.ColData(cols_ + j);
    for (std::size_t i = 0; i < rows_; ++i) dst[i] = src[i];
  }
  return out;
}

Matrix Matrix::CenteredColumnsCopy() const {
  Matrix out = *this;
  for (std::size_t j = 0; j < cols_; ++j) {
    double* col = out.ColData(j);
    double mu = 0.0;
    for (std::size_t i = 0; i < rows_; ++i) mu += col[i];
    mu /= rows_ == 0 ? 1.0 : static_cast<double>(rows_);
    for (std::size_t i = 0; i < rows_; ++i) col[i] -= mu;
  }
  return out;
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  AFFINITY_CHECK_EQ(rows_, other.rows_);
  AFFINITY_CHECK_EQ(cols_, other.cols_);
  double worst = 0.0;
  for (std::size_t idx = 0; idx < data_.size(); ++idx) {
    worst = std::max(worst, std::fabs(data_[idx] - other.data_[idx]));
  }
  return worst;
}

std::string Matrix::ToString() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < rows_; ++i) {
    if (i) os << "; ";
    for (std::size_t j = 0; j < cols_; ++j) {
      if (j) os << ", ";
      os << (*this)(i, j);
    }
  }
  os << "]";
  return os.str();
}

}  // namespace affinity::la
