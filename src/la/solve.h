#ifndef AFFINITY_LA_SOLVE_H_
#define AFFINITY_LA_SOLVE_H_

/// \file solve.h
/// Small dense linear solvers and the least-squares / pseudo-inverse kernel
/// that powers affine-relationship fitting (Algorithm 2, LeastSquares).
///
/// All fits in AFFINITY have the design matrix `[Op, 1m]` with exactly three
/// columns, so we solve through the 3×3 normal equations with partially
/// pivoted LU. This is numerically adequate for the well-scaled inputs the
/// pipeline produces (columns are either raw series or unit-norm centres);
/// tests cover near-collinear inputs.

#include <cstddef>

#include "common/status.h"
#include "la/matrix.h"
#include "la/vector.h"

namespace affinity::la {

/// Solves the square system `a · x = b` with partially pivoted LU.
/// Returns FailedPrecondition if `a` is singular to working precision.
StatusOr<Vector> SolveLinearSystem(const Matrix& a, const Vector& b);

/// Multi-RHS variant: solves `a · X = B` column by column with a single
/// factorization. B must have a.rows() rows.
StatusOr<Matrix> SolveLinearSystems(const Matrix& a, const Matrix& b);

/// Inverse of a small square matrix (via SolveLinearSystems against I).
StatusOr<Matrix> Invert(const Matrix& a);

/// Least-squares solve: X = argmin ‖m·X − b‖_F via normal equations.
/// `m` is rows×p (rows ≥ p), `b` is rows×q; the result is p×q.
StatusOr<Matrix> SolveLeastSquares(const Matrix& m, const Matrix& b);

/// Moore–Penrose pseudo-inverse `(mᵀm)⁻¹ mᵀ` of a full-column-rank tall
/// matrix (p×rows result). This is exactly what SYMEX+ caches per pivot
/// pair (§4, "Pseudo-inverse cache").
StatusOr<Matrix> PseudoInverse(const Matrix& m);

}  // namespace affinity::la

#endif  // AFFINITY_LA_SOLVE_H_
