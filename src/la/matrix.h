#ifndef AFFINITY_LA_MATRIX_H_
#define AFFINITY_LA_MATRIX_H_

/// \file matrix.h
/// Dense column-major real matrix.
///
/// Column-major layout matches the paper's formulation (a data matrix is a
/// concatenation of time-series *columns*) and makes column extraction,
/// zero-meaning, and least-squares fits contiguous-memory operations.

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "la/vector.h"

namespace affinity::la {

/// A dense rows×cols matrix of doubles, column-major, value semantics.
class Matrix {
 public:
  /// An empty 0×0 matrix.
  Matrix() = default;

  /// A zero-initialized rows×cols matrix.
  Matrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Builds from a row-major initializer list (convenient in tests):
  /// `Matrix::FromRows({{1,2},{3,4}})` is [[1,2],[3,4]].
  static Matrix FromRows(std::initializer_list<std::initializer_list<double>> rows);

  /// Builds by concatenating column vectors (all the same length).
  static Matrix FromColumns(const std::vector<Vector>& columns);

  /// The n×n identity.
  static Matrix Identity(std::size_t n);

  /// Number of rows / columns.
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Unchecked element access (row i, column j).
  double operator()(std::size_t i, std::size_t j) const { return data_[j * rows_ + i]; }
  double& operator()(std::size_t i, std::size_t j) { return data_[j * rows_ + i]; }

  /// Pointer to the contiguous storage of column `j`.
  const double* ColData(std::size_t j) const { return data_.data() + j * rows_; }
  double* ColData(std::size_t j) { return data_.data() + j * rows_; }

  /// Copies column `j` into a Vector.
  Vector Col(std::size_t j) const;

  /// Overwrites column `j` with `v` (length must equal rows(); checked).
  void SetCol(std::size_t j, const Vector& v);

  /// Matrix product `this * other` (inner dimensions checked).
  Matrix Multiply(const Matrix& other) const;

  /// Matrix-vector product `this * v` (dimension checked).
  Vector Multiply(const Vector& v) const;

  /// `thisᵀ * v` without materializing the transpose.
  Vector TransposeMultiply(const Vector& v) const;

  /// `thisᵀ * this` — the Gram matrix (cols×cols), computed directly.
  Matrix Gram() const;

  /// Materialized transpose.
  Matrix Transpose() const;

  /// Element-wise sum / difference (dimensions checked).
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(double scalar) const;

  /// Column-wise concatenation [this, other] (row counts must match).
  Matrix ConcatColumns(const Matrix& other) const;

  /// Returns a copy where every column has zero mean (the "hat" matrices
  /// X̂, Ŷ of LSFD Definition 1).
  Matrix CenteredColumnsCopy() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Maximum absolute element difference to `other` (dimensions checked).
  double MaxAbsDiff(const Matrix& other) const;

  /// Human-readable rendering (for tests/debugging).
  std::string ToString() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;  // column-major
};

}  // namespace affinity::la

#endif  // AFFINITY_LA_MATRIX_H_
