#ifndef AFFINITY_LA_SVD_H_
#define AFFINITY_LA_SVD_H_

/// \file svd.h
/// Singular-value machinery specialized for AFFINITY's two uses:
///
/// 1. **LSFD (Definition 1)** needs the singular values of a tall m×4
///    concatenation [X̂, Ŷ]. We obtain them exactly as the square roots of
///    the eigenvalues of the 4×4 Gram matrix — O(m) work plus a tiny
///    Jacobi diagonalization.
/// 2. **AFCLST's update phase (Algorithm 1, line 23)** needs only the left
///    singular vector of a cluster matrix R_ℓ (m × cluster-size) belonging
///    to the *largest* singular value. We compute it by alternating power
///    iteration on R and Rᵀ, never materializing a Gram matrix of either
///    side — O(m·c) per iteration.

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"
#include "la/vector.h"

namespace affinity::la {

/// All singular values of `a` (rows×cols, any shape), descending order.
///
/// Computed from the Gram matrix of the thinner side, so the cost is
/// O(rows·cols·min(rows,cols)) plus a min-side Jacobi solve. Exact for the
/// small `cols` AFFINITY uses (≤ 4).
StatusOr<std::vector<double>> SingularValues(const Matrix& a);

/// Result of the dominant singular triple computation.
struct TopSingular {
  double sigma = 0.0;  ///< largest singular value
  Vector left;         ///< unit left singular vector (length rows)
  Vector right;        ///< unit right singular vector (length cols)
  int iterations = 0;  ///< power iterations performed
};

/// Dominant singular triple of `a` by power iteration.
///
/// \param a          matrix with at least one column and one row
/// \param seed_right optional starting right vector (length cols); pass an
///                   empty vector to use a deterministic default seed.
/// \param max_iters  iteration cap (default 100)
/// \param tol        convergence tolerance on the right-vector update
///
/// Deterministic given the same seed vector. If the dominant and second
/// singular values are equal the returned vector is *a* dominant-subspace
/// vector, which is all AFCLST requires.
StatusOr<TopSingular> PowerIterationTopSingular(const Matrix& a, const Vector& seed_right,
                                                int max_iters = 100, double tol = 1e-12);

}  // namespace affinity::la

#endif  // AFFINITY_LA_SVD_H_
