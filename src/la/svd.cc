#include "la/svd.h"

#include <algorithm>
#include <cmath>

#include "la/eigen.h"

namespace affinity::la {

StatusOr<std::vector<double>> SingularValues(const Matrix& a) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("SingularValues requires a non-empty matrix");
  }
  // Use the Gram matrix of the thinner side: eigenvalues of AᵀA (or AAᵀ)
  // are the squared singular values.
  const bool tall = a.rows() >= a.cols();
  const Matrix gram = tall ? a.Gram() : a.Transpose().Gram();
  AFFINITY_ASSIGN_OR_RETURN(std::vector<double> eig, SymmetricEigenvalues(gram));
  std::vector<double> sigma(eig.size());
  for (std::size_t i = 0; i < eig.size(); ++i) {
    sigma[i] = std::sqrt(std::max(0.0, eig[i]));
  }
  // Eigenvalues were descending; square root preserves the order.
  return sigma;
}

StatusOr<TopSingular> PowerIterationTopSingular(const Matrix& a, const Vector& seed_right,
                                                int max_iters, double tol) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("PowerIterationTopSingular requires a non-empty matrix");
  }
  const std::size_t n = a.cols();

  Vector v(n);
  if (seed_right.empty()) {
    // Deterministic quasi-random seed; avoids pathological alignment with a
    // null space for the data AFFINITY feeds in.
    for (std::size_t j = 0; j < n; ++j) v[j] = 1.0 + 0.37 * static_cast<double>(j % 7);
  } else {
    if (seed_right.size() != n) {
      return Status::InvalidArgument("seed_right length must equal cols()");
    }
    v = seed_right;
  }
  if (v.Normalize() == 0.0) {
    return Status::InvalidArgument("seed_right must be non-zero");
  }

  TopSingular out;
  Vector u(a.rows());
  for (int iter = 0; iter < max_iters; ++iter) {
    out.iterations = iter + 1;
    u = a.Multiply(v);
    const double unorm = u.Normalize();
    if (unorm == 0.0) {
      // v is in the null space: the matrix is (numerically) zero along v.
      out.sigma = 0.0;
      out.left = u;
      out.right = v;
      return out;
    }
    Vector v_next = a.TransposeMultiply(u);
    const double sigma = v_next.Normalize();
    const double delta = v_next.MaxAbsDiff(v);
    v = v_next;
    out.sigma = sigma;
    if (delta < tol) break;
  }
  out.left = a.Multiply(v);
  const double sigma_final = out.left.Normalize();
  if (sigma_final > 0.0) out.sigma = sigma_final;
  out.right = v;
  return out;
}

}  // namespace affinity::la
