// affinity-lint: allow-file(fp-accumulate): sequential dense LA — fixed iteration
// order on one thread; the parallel/chunked summation paths live in core/kernels.
#include "la/vector.h"

#include <cmath>
#include <sstream>

#include "common/check.h"

namespace affinity::la {

Vector& Vector::operator+=(const Vector& other) {
  AFFINITY_CHECK_EQ(size(), other.size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& other) {
  AFFINITY_CHECK_EQ(size(), other.size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Vector& Vector::operator*=(double scalar) {
  for (auto& x : data_) x *= scalar;
  return *this;
}

Vector& Vector::operator/=(double scalar) {
  for (auto& x : data_) x /= scalar;
  return *this;
}

Vector Vector::operator+(const Vector& other) const {
  Vector out = *this;
  out += other;
  return out;
}

Vector Vector::operator-(const Vector& other) const {
  Vector out = *this;
  out -= other;
  return out;
}

Vector Vector::operator*(double scalar) const {
  Vector out = *this;
  out *= scalar;
  return out;
}

double Vector::Dot(const Vector& other) const {
  AFFINITY_CHECK_EQ(size(), other.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) acc += data_[i] * other.data_[i];
  return acc;
}

double Vector::Norm() const { return std::sqrt(Dot(*this)); }

double Vector::Sum() const {
  double acc = 0.0;
  for (double x : data_) acc += x;
  return acc;
}

double Vector::Mean() const { return data_.empty() ? 0.0 : Sum() / static_cast<double>(size()); }

double Vector::Normalize() {
  const double n = Norm();
  if (n > 0.0) (*this) /= n;
  return n;
}

Vector Vector::CenteredCopy() const {
  Vector out = *this;
  const double mu = Mean();
  for (auto i = std::size_t{0}; i < out.size(); ++i) out[i] -= mu;
  return out;
}

double Vector::MaxAbsDiff(const Vector& other) const {
  AFFINITY_CHECK_EQ(size(), other.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::fabs(data_[i] - other.data_[i]));
  }
  return worst;
}

std::string Vector::ToString() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (i) os << ", ";
    os << data_[i];
  }
  os << "]";
  return os.str();
}

Vector operator*(double scalar, const Vector& v) { return v * scalar; }

}  // namespace affinity::la
