// affinity-lint: allow-file(fp-accumulate): sequential Jacobi sweeps — fixed
// rotation and reduction order on one thread, never chunked.
#include "la/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace affinity::la {

StatusOr<SymmetricEigen> JacobiEigenSym(const Matrix& input) {
  if (input.rows() != input.cols()) {
    return Status::InvalidArgument("JacobiEigenSym requires a square matrix");
  }
  const std::size_t n = input.rows();
  if (n == 0) {
    return Status::InvalidArgument("JacobiEigenSym requires a non-empty matrix");
  }

  // Work on a symmetrized copy so tiny asymmetries from accumulation order
  // cannot stall convergence.
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = 0.5 * (input(i, j) + input(j, i));
    }
  }
  Matrix v = Matrix::Identity(n);

  const int kMaxSweeps = 64;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    // Sum of squares of the strict upper triangle — the off(A) measure.
    double off = 0.0;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    }
    if (off < 1e-300) break;

    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        // Stable rotation angle (Golub & Van Loan, Algorithm 8.4.1).
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // A <- Jᵀ A J applied to rows/columns p and q.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        // Accumulate the rotation into the eigenvector matrix.
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return a(x, x) > a(y, y); });

  SymmetricEigen out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = a(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) out.vectors(i, j) = v(i, order[j]);
  }
  return out;
}

StatusOr<std::vector<double>> SymmetricEigenvalues(const Matrix& a) {
  AFFINITY_ASSIGN_OR_RETURN(SymmetricEigen eig, JacobiEigenSym(a));
  return std::move(eig.values);
}

}  // namespace affinity::la
