#include "la/solve.h"

#include <cmath>
#include <vector>

namespace affinity::la {

namespace {

/// In-place LU factorization with partial pivoting.
/// Returns the pivot permutation, or an error if singular.
StatusOr<std::vector<std::size_t>> LuFactorize(Matrix* a) {
  const std::size_t n = a->rows();
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Pivot selection.
    std::size_t pivot = k;
    double best = std::fabs((*a)(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double cand = std::fabs((*a)(i, k));
      if (cand > best) {
        best = cand;
        pivot = i;
      }
    }
    if (best < 1e-300) {
      return Status::FailedPrecondition("matrix is singular to working precision");
    }
    if (pivot != k) {
      std::swap(perm[k], perm[pivot]);
      for (std::size_t j = 0; j < n; ++j) std::swap((*a)(k, j), (*a)(pivot, j));
    }
    // Elimination.
    const double inv = 1.0 / (*a)(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double f = (*a)(i, k) * inv;
      (*a)(i, k) = f;
      for (std::size_t j = k + 1; j < n; ++j) (*a)(i, j) -= f * (*a)(k, j);
    }
  }
  return perm;
}

/// Solves with a prior LU factorization: forward then back substitution.
Vector LuSolve(const Matrix& lu, const std::vector<std::size_t>& perm, const Vector& b) {
  const std::size_t n = lu.rows();
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[perm[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu(i, j) * y[j];
    y[i] = acc;
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu(ii, j) * x[j];
    x[ii] = acc / lu(ii, ii);
  }
  return x;
}

}  // namespace

StatusOr<Vector> SolveLinearSystem(const Matrix& a, const Vector& b) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SolveLinearSystem requires a square matrix");
  }
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("SolveLinearSystem dimension mismatch");
  }
  Matrix lu = a;
  AFFINITY_ASSIGN_OR_RETURN(std::vector<std::size_t> perm, LuFactorize(&lu));
  return LuSolve(lu, perm, b);
}

StatusOr<Matrix> SolveLinearSystems(const Matrix& a, const Matrix& b) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SolveLinearSystems requires a square matrix");
  }
  if (a.rows() != b.rows()) {
    return Status::InvalidArgument("SolveLinearSystems dimension mismatch");
  }
  Matrix lu = a;
  AFFINITY_ASSIGN_OR_RETURN(std::vector<std::size_t> perm, LuFactorize(&lu));
  Matrix x(a.cols(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    x.SetCol(j, LuSolve(lu, perm, b.Col(j)));
  }
  return x;
}

StatusOr<Matrix> Invert(const Matrix& a) {
  return SolveLinearSystems(a, Matrix::Identity(a.rows()));
}

StatusOr<Matrix> SolveLeastSquares(const Matrix& m, const Matrix& b) {
  if (m.rows() < m.cols()) {
    return Status::InvalidArgument("SolveLeastSquares requires rows >= cols");
  }
  if (m.rows() != b.rows()) {
    return Status::InvalidArgument("SolveLeastSquares dimension mismatch");
  }
  // Normal equations: (mᵀm) X = mᵀ b.
  const Matrix gram = m.Gram();
  Matrix rhs(m.cols(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    rhs.SetCol(j, m.TransposeMultiply(b.Col(j)));
  }
  return SolveLinearSystems(gram, rhs);
}

StatusOr<Matrix> PseudoInverse(const Matrix& m) {
  if (m.rows() < m.cols()) {
    return Status::InvalidArgument("PseudoInverse requires rows >= cols");
  }
  AFFINITY_ASSIGN_OR_RETURN(Matrix gram_inv, Invert(m.Gram()));
  // (mᵀm)⁻¹ mᵀ — p×rows. Materialized because SYMEX+ reuses it across many
  // sequence pairs that share the pivot.
  return gram_inv.Multiply(m.Transpose());
}

}  // namespace affinity::la
