#ifndef AFFINITY_LA_VECTOR_H_
#define AFFINITY_LA_VECTOR_H_

/// \file vector.h
/// Dense real column vector used throughout the linear-algebra substrate.

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace affinity::la {

/// A dense column vector of doubles with value semantics.
///
/// The element layout is contiguous; `data()` is safe to hand to kernels.
class Vector {
 public:
  /// An empty (size-0) vector.
  Vector() = default;

  /// A zero-initialized vector of `n` elements.
  explicit Vector(std::size_t n) : data_(n, 0.0) {}

  /// A vector of `n` copies of `fill`.
  Vector(std::size_t n, double fill) : data_(n, fill) {}

  /// A vector from an initializer list, e.g. `Vector v{1.0, 2.0}`.
  Vector(std::initializer_list<double> init) : data_(init) {}

  /// A vector that adopts the given storage.
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  /// Number of elements.
  std::size_t size() const { return data_.size(); }

  /// True iff the vector has no elements.
  bool empty() const { return data_.empty(); }

  /// Unchecked element access.
  double operator[](std::size_t i) const { return data_[i]; }
  double& operator[](std::size_t i) { return data_[i]; }

  /// Raw contiguous storage.
  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

  /// The underlying std::vector (read-only view).
  const std::vector<double>& values() const { return data_; }

  /// Iteration support.
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  /// In-place arithmetic. Sizes must match (checked).
  Vector& operator+=(const Vector& other);
  Vector& operator-=(const Vector& other);
  Vector& operator*=(double scalar);
  Vector& operator/=(double scalar);

  /// Element-wise arithmetic (allocating).
  Vector operator+(const Vector& other) const;
  Vector operator-(const Vector& other) const;
  Vector operator*(double scalar) const;

  /// Dot product with `other`; sizes must match (checked).
  double Dot(const Vector& other) const;

  /// Euclidean (L2) norm.
  double Norm() const;

  /// Sum of elements.
  double Sum() const;

  /// Arithmetic mean; 0 for the empty vector.
  double Mean() const;

  /// Scales this vector to unit L2 norm; no-op on the zero vector.
  /// Returns the norm the vector had before normalization.
  double Normalize();

  /// Returns a copy with the mean subtracted from every element.
  Vector CenteredCopy() const;

  /// Maximum absolute difference to `other`; sizes must match (checked).
  double MaxAbsDiff(const Vector& other) const;

  /// Human-readable rendering, e.g. "[1, 2, 3]" (for tests/debugging).
  std::string ToString() const;

 private:
  std::vector<double> data_;
};

/// scalar * vector convenience.
Vector operator*(double scalar, const Vector& v);

}  // namespace affinity::la

#endif  // AFFINITY_LA_VECTOR_H_
