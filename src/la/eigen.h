#ifndef AFFINITY_LA_EIGEN_H_
#define AFFINITY_LA_EIGEN_H_

/// \file eigen.h
/// Symmetric eigenproblem solver (cyclic Jacobi rotations).
///
/// The AFFINITY pipeline only ever diagonalizes *small* symmetric matrices:
/// the 4×4 Gram matrix of the LSFD concatenation and the 2×2/3×3 normal
/// matrices of least-squares fits. Jacobi is simple, branch-light and
/// accurate to machine precision in that regime.

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"

namespace affinity::la {

/// Eigendecomposition of a symmetric matrix.
struct SymmetricEigen {
  /// Eigenvalues sorted in descending order.
  std::vector<double> values;
  /// Column j of `vectors` is the unit eigenvector for values[j].
  Matrix vectors;
};

/// Diagonalizes the symmetric matrix `a` with the cyclic Jacobi method.
///
/// \param a  square symmetric matrix (symmetry is enforced by averaging
///           a(i,j) and a(j,i); non-square input is an InvalidArgument).
/// \returns  eigenvalues in descending order with matching eigenvectors.
///
/// Converges to machine precision in O(d³ log(1/ε)) for dimension d; meant
/// for d ≲ 64 (AFFINITY uses d ≤ 4 on hot paths).
StatusOr<SymmetricEigen> JacobiEigenSym(const Matrix& a);

/// Convenience: eigenvalues only, descending.
StatusOr<std::vector<double>> SymmetricEigenvalues(const Matrix& a);

}  // namespace affinity::la

#endif  // AFFINITY_LA_EIGEN_H_
