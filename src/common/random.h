#ifndef AFFINITY_COMMON_RANDOM_H_
#define AFFINITY_COMMON_RANDOM_H_

/// \file random.h
/// Deterministic, fast pseudo-random number generation for dataset
/// synthesis and workload generation.
///
/// The library never uses `std::rand` or nondeterministic seeding: every
/// generator is explicitly seeded so datasets and benchmark workloads are
/// exactly reproducible across runs and platforms.

#include <cstdint>
#include <vector>

namespace affinity {

/// SplitMix64 — used to expand a single 64-bit seed into generator state.
///
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64 pseudo-random bits.
  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256++ — the workhorse generator (fast, 2^256-1 period).
///
/// Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
/// generators", ACM TOMS 2021.
class Xoshiro256 {
 public:
  /// Seeds the four 64-bit state words from `seed` via SplitMix64.
  explicit Xoshiro256(std::uint64_t seed);

  /// Next 64 pseudo-random bits.
  std::uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Standard normal deviate (Marsaglia polar method, cached spare).
  double Gaussian();

  /// Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

 private:
  std::uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

/// Zipf-distributed integer sampler over ranks {0, 1, ..., n-1}.
///
/// Rank r is drawn with probability proportional to 1/(r+1)^exponent.
/// Used to model the skewed popularity of stocks/sensors in the Fig. 12
/// online query workload.
class ZipfSampler {
 public:
  /// \param n         population size (> 0)
  /// \param exponent  skew (1.0 reproduces the paper's "powerlaw" workload)
  ZipfSampler(std::size_t n, double exponent);

  /// Draws one rank in [0, n).
  std::size_t Sample(Xoshiro256* rng) const;

  /// Draws `count` *distinct* ranks (rejection on duplicates).
  /// `count` must be <= population size.
  std::vector<std::size_t> SampleDistinct(Xoshiro256* rng, std::size_t count) const;

  /// Population size.
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative probabilities, cdf_.back() == 1
};

}  // namespace affinity

#endif  // AFFINITY_COMMON_RANDOM_H_
