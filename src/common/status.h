#ifndef AFFINITY_COMMON_STATUS_H_
#define AFFINITY_COMMON_STATUS_H_

/// \file status.h
/// Exception-free error handling for the AFFINITY library.
///
/// The public API never throws; fallible operations return `Status` or
/// `StatusOr<T>` (the Arrow/RocksDB idiom). Internal invariant violations
/// use the AFFINITY_CHECK macros from check.h instead.

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace affinity {

/// Machine-readable error category carried by a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kIoError = 8,
  kUnavailable = 9,
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// A value-semantic success/error result.
///
/// An OK status carries no allocation; error statuses carry a code and a
/// message. Copyable, movable, cheap to pass by value when OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. A message on an
  /// OK code is ignored.
  Status(StatusCode code, std::string message)
      : code_(code), message_(code == StatusCode::kOk ? std::string() : std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A Status or a value of type T.
///
/// Access the value with `value()` / `operator*` only after checking `ok()`;
/// accessing the value of an errored StatusOr aborts in debug builds and is
/// undefined in release builds (same contract as absl::StatusOr).
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. `s` must not be OK.
  StatusOr(Status s) : status_(std::move(s)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "StatusOr constructed from OK status without a value");
  }

  /// Constructs from a value (implicit, mirroring absl::StatusOr).
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The status (OK when a value is present).
  const Status& status() const { return status_; }

  /// The contained value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

  const T* operator->() const {
    assert(ok());
    return &*value_;
  }
  T* operator->() {
    assert(ok());
    return &*value_;
  }

  /// Returns the value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error status out of the current function.
#define AFFINITY_RETURN_IF_ERROR(expr)                  \
  do {                                                  \
    ::affinity::Status _affinity_status = (expr);       \
    if (!_affinity_status.ok()) return _affinity_status; \
  } while (false)

/// Evaluates a StatusOr expression, assigning the value to `lhs` or
/// propagating the error.
#define AFFINITY_ASSIGN_OR_RETURN(lhs, expr)                       \
  AFFINITY_ASSIGN_OR_RETURN_IMPL_(                                 \
      AFFINITY_STATUS_CONCAT_(_affinity_statusor, __LINE__), lhs, expr)

#define AFFINITY_STATUS_CONCAT_INNER_(a, b) a##b
#define AFFINITY_STATUS_CONCAT_(a, b) AFFINITY_STATUS_CONCAT_INNER_(a, b)
#define AFFINITY_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

}  // namespace affinity

#endif  // AFFINITY_COMMON_STATUS_H_
