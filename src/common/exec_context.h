#ifndef AFFINITY_COMMON_EXEC_CONTEXT_H_
#define AFFINITY_COMMON_EXEC_CONTEXT_H_

/// \file exec_context.h
/// The execution context threaded through every hot path (DESIGN.md §7).
///
/// An `ExecContext` is a non-owning handle to an optional `ThreadPool`.
/// Default-constructed it means "sequential": `ParallelChunks` then runs
/// the identical chunk loop inline, so the sequential and parallel paths
/// share one code path and one chunk decomposition — the foundation of
/// the thread-count-invariance guarantee.
///
/// Ownership: whoever creates the pool (an `Affinity` framework, a
/// `StreamingAffinity`, a bench harness) must keep it alive for as long
/// as any ExecContext pointing at it is used.
///
/// Thread safety: ExecContext is an immutable value handle — copies may
/// be used from any thread concurrently. All synchronization lives in
/// ThreadPool, whose locking contract is machine-checked through the
/// GUARDED_BY/EXCLUDES annotations in thread_pool.h (DESIGN.md §13).
/// ParallelChunks blocks the caller until every chunk finished, and the
/// chunk decomposition depends only on `count` — never on scheduling —
/// which is what keeps results thread-count-invariant.

#include <cstddef>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"

namespace affinity {

/// Non-owning execution handle passed by value through build and query
/// paths. Copyable and cheap.
struct ExecContext {
  ThreadPool* pool = nullptr;  ///< nullptr → sequential execution

  /// Worker parallelism this context offers (1 when sequential).
  std::size_t threads() const { return pool == nullptr ? 1 : pool->size(); }
};

/// Number of chunks `ParallelChunks` splits `count` items into — exposed
/// so callers can pre-size per-chunk merge buffers. Depends only on
/// `count`, never on the context (see ThreadPool::NumChunks).
inline std::size_t ExecNumChunks(std::size_t count) { return ThreadPool::NumChunks(count); }

/// Runs `body(chunk, begin, end)` over [0, count), using the context's
/// pool when present and the identical sequential loop otherwise. Blocks
/// until all chunks complete; the lowest-indexed failing chunk's
/// exception is rethrown.
template <typename Body>
void ParallelChunks(const ExecContext& exec, std::size_t count, const Body& body) {
  if (exec.pool != nullptr) {
    exec.pool->ParallelFor(count, body);
  } else {
    ThreadPool::SequentialFor(count, body);
  }
}

/// Fallible variant: `body(chunk, begin, end)` returns a Status. All
/// chunks run; the first error *by chunk index* is returned (matching
/// what a sequential loop would have hit first — deterministic
/// regardless of scheduling). OK when every chunk succeeded.
template <typename Body>
Status TryParallelChunks(const ExecContext& exec, std::size_t count, const Body& body) {
  std::vector<Status> errors(ExecNumChunks(count), Status::OK());
  ParallelChunks(exec, count, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
    errors[chunk] = body(chunk, begin, end);
  });
  for (Status& s : errors) {
    if (!s.ok()) return std::move(s);
  }
  return Status::OK();
}

}  // namespace affinity

#endif  // AFFINITY_COMMON_EXEC_CONTEXT_H_
