#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace affinity {

namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.Next();
  // A run of zeros would be a fixed point; SplitMix64 cannot produce four
  // zero words from any seed, but keep the guard for safety.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

std::uint64_t Xoshiro256::Next() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Xoshiro256::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

std::uint64_t Xoshiro256::NextBounded(std::uint64_t bound) {
  AFFINITY_CHECK_GT(bound, 0u);
  // Debiased modulo via rejection (Lemire's threshold trick simplified).
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Xoshiro256::Gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Xoshiro256::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  AFFINITY_CHECK_GT(n, 0u);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    // affinity-lint: allow(fp-accumulate): CDF prefix sum — inherently sequential by rank
    total += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
    cdf_[r] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against floating point shortfall
}

std::size_t ZipfSampler::Sample(Xoshiro256* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

std::vector<std::size_t> ZipfSampler::SampleDistinct(Xoshiro256* rng, std::size_t count) const {
  AFFINITY_CHECK_LE(count, cdf_.size());
  std::vector<std::size_t> out;
  out.reserve(count);
  while (out.size() < count) {
    const std::size_t r = Sample(rng);
    if (std::find(out.begin(), out.end(), r) == out.end()) out.push_back(r);
  }
  return out;
}

}  // namespace affinity
