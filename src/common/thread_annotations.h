#ifndef AFFINITY_COMMON_THREAD_ANNOTATIONS_H_
#define AFFINITY_COMMON_THREAD_ANNOTATIONS_H_

/// \file thread_annotations.h
/// Clang thread-safety annotation macros (DESIGN.md §13).
///
/// These expand to clang's `-Wthread-safety` attributes when compiling
/// with clang and to nothing everywhere else, so gcc builds are
/// unaffected while every clang CI leg machine-checks the locking
/// contracts. The macro set mirrors the conventional one (abseil, LLVM):
///
///  * data members guarded by a lock are declared `GUARDED_BY(mu_)`;
///  * functions that must be called with a lock held are `REQUIRES(mu_)`;
///  * functions that must NOT be called with it held are `EXCLUDES(mu_)`;
///  * lock-like types are `CAPABILITY("mutex")` with `ACQUIRE`/`RELEASE`
///    on their lock/unlock methods, and RAII guards are
///    `SCOPED_CAPABILITY` (see mutex.h for the project's annotated
///    wrappers — raw `std::mutex` is invisible to the analysis because
///    libstdc++ carries no attributes).
///
/// `AFFINITY_HOT` is *not* a compiler attribute: it is a textual marker
/// consumed by `tools/affinity_lint`, declaring a function body part of
/// the allocation-free append path (DESIGN.md §13). The lint rejects
/// heap-allocation keywords inside marked bodies.

#if defined(__clang__)
#define AFFINITY_TS_ATTR(x) __attribute__((x))
#else
#define AFFINITY_TS_ATTR(x)  // no-op off clang
#endif

#define CAPABILITY(x) AFFINITY_TS_ATTR(capability(x))
#define SCOPED_CAPABILITY AFFINITY_TS_ATTR(scoped_lockable)
#define GUARDED_BY(x) AFFINITY_TS_ATTR(guarded_by(x))
#define PT_GUARDED_BY(x) AFFINITY_TS_ATTR(pt_guarded_by(x))
#define REQUIRES(...) AFFINITY_TS_ATTR(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) AFFINITY_TS_ATTR(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) AFFINITY_TS_ATTR(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) AFFINITY_TS_ATTR(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) AFFINITY_TS_ATTR(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) AFFINITY_TS_ATTR(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) AFFINITY_TS_ATTR(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) AFFINITY_TS_ATTR(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) AFFINITY_TS_ATTR(assert_capability(x))
#define RETURN_CAPABILITY(x) AFFINITY_TS_ATTR(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS AFFINITY_TS_ATTR(no_thread_safety_analysis)

/// Marks a function definition as part of the allocation-free append hot
/// path. Enforced textually by tools/affinity_lint (rule `hot-alloc`):
/// the body may not contain operator new, make_unique/make_shared, the
/// malloc family, owning-container locals, or resize/reserve calls.
/// Amortized-reserved push_back/emplace_back stays allowed — the
/// allocs_per_append bench counter owns that contract (DESIGN.md §13).
#define AFFINITY_HOT

#endif  // AFFINITY_COMMON_THREAD_ANNOTATIONS_H_
