#ifndef AFFINITY_COMMON_MUTEX_H_
#define AFFINITY_COMMON_MUTEX_H_

/// \file mutex.h
/// Annotated mutex wrappers for clang's `-Wthread-safety` analysis
/// (DESIGN.md §13).
///
/// libstdc++'s `std::mutex` carries no capability attributes, so guarded
/// members would warn on *every* access, locked or not. `Mutex` is a
/// zero-cost wrapper declaring the capability; `MutexLock` is the RAII
/// guard the analysis tracks. Condition waits use
/// `std::condition_variable_any` directly on the `Mutex` (it satisfies
/// Lockable): the wait call unlocks/relocks internally, which is
/// invisible to — and consistent with — the analysis, since the lock is
/// held both at the call and at the return.
///
/// Convention: every new lock in the tree is an `affinity::Mutex`, its
/// guarded members are declared `GUARDED_BY(mu_)`, and critical sections
/// are `MutexLock` scopes (no manual lock()/unlock() pairs on hot paths).

#include <mutex>

#include "common/thread_annotations.h"

namespace affinity {

/// A std::mutex declared as a thread-safety capability. Lockable (lower
/// case lock/unlock/try_lock) so `std::condition_variable_any` can wait
/// on it directly.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII critical section over `Mutex`, tracked by the analysis.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace affinity

#endif  // AFFINITY_COMMON_MUTEX_H_
