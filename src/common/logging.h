#ifndef AFFINITY_COMMON_LOGGING_H_
#define AFFINITY_COMMON_LOGGING_H_

/// \file logging.h
/// Minimal leveled logging to stderr.
///
/// The library defaults to `kWarning` so that quiet programs stay quiet;
/// benches and examples raise it to `kInfo` when narrating progress.
///
/// Thread safety: the global level is a single atomic, so
/// SetLogLevel/GetLogLevel are safe from any thread (no capability to
/// annotate — there is no lock). Each message is formatted into a
/// message-local buffer and emitted with one stdio call, so concurrent
/// messages never interleave mid-line.

#include <sstream>
#include <string>

namespace affinity {

/// Log severity, ordered.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Sets the global minimum severity that will be emitted.
void SetLogLevel(LogLevel level);

/// Current global minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Stream-style logging macros:
///   AFFINITY_LOG(kInfo) << "built " << count << " pivots";
#define AFFINITY_LOG(severity) \
  ::affinity::internal::LogMessage(::affinity::LogLevel::severity, __FILE__, __LINE__)

}  // namespace affinity

#endif  // AFFINITY_COMMON_LOGGING_H_
