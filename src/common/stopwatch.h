#ifndef AFFINITY_COMMON_STOPWATCH_H_
#define AFFINITY_COMMON_STOPWATCH_H_

/// \file stopwatch.h
/// Wall-clock stopwatch used by the benchmark harnesses and the query
/// engine's per-strategy timing counters.

#include <chrono>
#include <cstdint>

namespace affinity {

/// A restartable wall-clock stopwatch with nanosecond resolution.
///
/// Uses `steady_clock`, so it is immune to system time adjustments.
class Stopwatch {
 public:
  /// Starts (or restarts) timing from now.
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in whole nanoseconds.
  std::int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates wall-clock time across multiple timed sections.
///
/// Typical use inside the query engine:
/// \code
///   TimeAccumulator acc;
///   { ScopedTimer t(&acc); ... timed work ...; }
///   double total = acc.seconds();
/// \endcode
class TimeAccumulator {
 public:
  /// Adds `seconds` to the accumulated total.
  void Add(double seconds) {
    total_ += seconds;
    ++count_;
  }

  /// Total accumulated seconds.
  double seconds() const { return total_; }

  /// Number of timed sections accumulated.
  std::int64_t count() const { return count_; }

  /// Clears the accumulator.
  void Reset() {
    total_ = 0;
    count_ = 0;
  }

 private:
  double total_ = 0;
  std::int64_t count_ = 0;
};

/// RAII helper that adds its lifetime to a TimeAccumulator.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimeAccumulator* acc) : acc_(acc) {}
  ~ScopedTimer() { acc_->Add(watch_.ElapsedSeconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimeAccumulator* acc_;
  Stopwatch watch_;
};

}  // namespace affinity

#endif  // AFFINITY_COMMON_STOPWATCH_H_
