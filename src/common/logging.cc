#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace affinity {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_level.load()), level_(level) {
  if (enabled_) {
    // Keep only the basename to avoid long absolute paths in logs.
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
  }
}

}  // namespace internal

}  // namespace affinity
