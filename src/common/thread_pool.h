#ifndef AFFINITY_COMMON_THREAD_POOL_H_
#define AFFINITY_COMMON_THREAD_POOL_H_

/// \file thread_pool.h
/// The shared execution subsystem: a fixed-size task pool plus a
/// deterministic chunked parallel-for (DESIGN.md §7).
///
/// Every parallel hot path in the library — MET/MER/MEC sweeps, the
/// AFCLST/SYMEX+/SCAPE/WF build phases, streaming rebuilds — funnels
/// through `ThreadPool::ParallelFor`. The determinism contract is:
///
///  * the decomposition of `count` items into chunks depends ONLY on
///    `count` (never on the worker count), and
///  * callers merge per-chunk results in chunk-index order,
///
/// so query results and built structures are bitwise identical at any
/// thread count, including 1 (sequential execution uses the exact same
/// chunk loop). Chunks are claimed dynamically by whichever worker is
/// free, which only affects wall-clock, never output.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace affinity {

/// A fixed-size pool of worker threads with a shared FIFO task queue.
///
/// Construction spawns the workers; destruction drains outstanding tasks
/// and joins. All methods are thread-safe. The pool is intentionally
/// minimal: higher layers use `ParallelFor`, not raw `Schedule`.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means one per hardware thread.
  /// A pool of size 1 still owns one worker (useful for testing the
  /// machinery), but `ExecContext` treats "no pool" as sequential.
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Waits for queued tasks to finish, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueues one task for asynchronous execution.
  void Schedule(std::function<void()> task) EXCLUDES(mutex_);

  /// Runs `body(chunk, begin, end)` over [0, count) split into
  /// `NumChunks(count)` contiguous chunks, in parallel, and blocks until
  /// every chunk completed. The calling thread participates, so the pool
  /// is never idle-waited from a hot path.
  ///
  /// If a chunk body throws, the remaining chunks still run and the
  /// exception of the *lowest-indexed* failing chunk is rethrown here
  /// (deterministic regardless of scheduling).
  ///
  /// Calls from inside a pool worker (nested parallelism) degrade to
  /// inline sequential execution rather than deadlocking.
  void ParallelFor(std::size_t count,
                   const std::function<void(std::size_t chunk, std::size_t begin,
                                            std::size_t end)>& body) EXCLUDES(mutex_);

  /// The chunk decomposition policy behind ParallelFor: how many chunks
  /// `count` items are split into. Depends only on `count` so callers can
  /// pre-size per-chunk merge buffers. Chunk c covers
  /// [c*count/chunks, (c+1)*count/chunks).
  static std::size_t NumChunks(std::size_t count);

  /// Runs the same chunk loop sequentially on the calling thread — the
  /// pool-less fallback used by ExecContext. Exceptions propagate from
  /// the first failing chunk directly.
  static void SequentialFor(std::size_t count,
                            const std::function<void(std::size_t chunk, std::size_t begin,
                                                     std::size_t end)>& body);

 private:
  void WorkerLoop() EXCLUDES(mutex_);

  std::vector<std::thread> workers_;  ///< written only during construct/join
  Mutex mutex_;
  /// condition_variable_any so it can wait on the annotated Mutex
  /// directly (mutex.h) — the analysis sees the capability held across
  /// the wait call, which matches reality at both edges.
  std::condition_variable_any task_available_;
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mutex_);
  bool stopping_ GUARDED_BY(mutex_) = false;
};

}  // namespace affinity

#endif  // AFFINITY_COMMON_THREAD_POOL_H_
