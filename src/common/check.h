#ifndef AFFINITY_COMMON_CHECK_H_
#define AFFINITY_COMMON_CHECK_H_

/// \file check.h
/// Fatal invariant checks for internal library code.
///
/// These are for programmer errors (broken invariants), never for user
/// input — user input errors surface as `affinity::Status`. CHECKs are
/// active in all build types; DCHECKs compile away in release builds.

#include <cstdio>
#include <cstdlib>

namespace affinity::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "AFFINITY_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace affinity::internal

/// Aborts with a diagnostic if `cond` is false. Active in all builds.
#define AFFINITY_CHECK(cond)                                          \
  do {                                                                \
    if (!(cond)) ::affinity::internal::CheckFailed(__FILE__, __LINE__, #cond); \
  } while (false)

/// Binary comparison checks (report the expression text on failure).
#define AFFINITY_CHECK_EQ(a, b) AFFINITY_CHECK((a) == (b))
#define AFFINITY_CHECK_NE(a, b) AFFINITY_CHECK((a) != (b))
#define AFFINITY_CHECK_LT(a, b) AFFINITY_CHECK((a) < (b))
#define AFFINITY_CHECK_LE(a, b) AFFINITY_CHECK((a) <= (b))
#define AFFINITY_CHECK_GT(a, b) AFFINITY_CHECK((a) > (b))
#define AFFINITY_CHECK_GE(a, b) AFFINITY_CHECK((a) >= (b))

/// Debug-only variants.
#ifdef NDEBUG
#define AFFINITY_DCHECK(cond) \
  do {                        \
  } while (false)
#else
#define AFFINITY_DCHECK(cond) AFFINITY_CHECK(cond)
#endif

#endif  // AFFINITY_COMMON_CHECK_H_
