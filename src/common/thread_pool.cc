#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace affinity {

namespace {

/// Set while a thread is executing pool work; nested ParallelFor calls
/// from such a thread run inline instead of re-entering the queue.
thread_local bool t_in_pool_worker = false;

/// Chunk boundaries: even split of `count` into `chunks` pieces with the
/// remainder spread over the leading chunks.
std::size_t ChunkBegin(std::size_t count, std::size_t chunks, std::size_t c) {
  return c * (count / chunks) + std::min(c, count % chunks);
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw == 0 ? 1 : hw;
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      // Plain while-wait (no predicate lambda): the guarded reads stay in
      // this annotated scope, where the analysis can see the lock held.
      MutexLock lock(mutex_);
      while (!stopping_ && tasks_.empty()) task_available_.wait(mutex_);
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

std::size_t ThreadPool::NumChunks(std::size_t count) {
  // Fixed policy, independent of the worker count (the determinism
  // contract): enough chunks that dynamic claiming load-balances well,
  // few enough that per-chunk scratch and merges stay cheap.
  constexpr std::size_t kMaxChunks = 128;
  return count < kMaxChunks ? count : kMaxChunks;
}

void ThreadPool::SequentialFor(std::size_t count,
                               const std::function<void(std::size_t, std::size_t, std::size_t)>&
                                   body) {
  if (count == 0) return;
  const std::size_t chunks = NumChunks(count);
  for (std::size_t c = 0; c < chunks; ++c) {
    body(c, ChunkBegin(count, chunks, c), ChunkBegin(count, chunks, c + 1));
  }
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t, std::size_t, std::size_t)>&
                                 body) {
  if (count == 0) return;
  const std::size_t chunks = NumChunks(count);
  if (chunks == 1 || workers_.empty() || t_in_pool_worker) {
    SequentialFor(count, body);
    return;
  }

  // Shared per-call state; shared_ptr keeps it alive for any helper task
  // that wakes up after the call already returned.
  struct State {
    std::size_t count;
    std::size_t chunks;
    const std::function<void(std::size_t, std::size_t, std::size_t)>* body;
    std::atomic<std::size_t> next{0};
    Mutex mutex;
    std::condition_variable_any done_cv;
    std::size_t done GUARDED_BY(mutex) = 0;
    std::exception_ptr error GUARDED_BY(mutex);
    std::size_t error_chunk GUARDED_BY(mutex) = 0;

    void RunChunks() EXCLUDES(mutex) {
      for (;;) {
        const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
        if (c >= chunks) return;
        std::exception_ptr eptr;
        try {
          (*body)(c, ChunkBegin(count, chunks, c), ChunkBegin(count, chunks, c + 1));
        } catch (...) {
          eptr = std::current_exception();
        }
        MutexLock lock(mutex);
        if (eptr && (!error || c < error_chunk)) {
          error = eptr;
          error_chunk = c;
        }
        if (++done == chunks) done_cv.notify_all();
      }
    }
  };

  auto state = std::make_shared<State>();
  state->count = count;
  state->chunks = chunks;
  state->body = &body;

  const std::size_t helpers = std::min(workers_.size(), chunks - 1);
  for (std::size_t i = 0; i < helpers; ++i) {
    Schedule([state] { state->RunChunks(); });
  }

  // The calling thread works too; mark it as a pool worker so nested
  // ParallelFor calls inside `body` run inline.
  const bool was_worker = t_in_pool_worker;
  t_in_pool_worker = true;
  state->RunChunks();
  t_in_pool_worker = was_worker;

  MutexLock lock(state->mutex);
  while (state->done != state->chunks) state->done_cv.wait(state->mutex);
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace affinity
