#include "storage/table.h"

#include <algorithm>

#include "common/check.h"
#include "common/thread_annotations.h"
// Header-only block-grid constants (no core link dependency): the snapshot
// anchor below must agree with the canonical summation grid.
#include "core/kernels.h"

namespace affinity::storage {

// The storage default keeps segment boundaries and summation-grid block
// boundaries coincident, so whole-segment reclamation also preserves the
// block alignment of the retained origin. Custom capacities may split a
// block across segments — harmless for correctness because snapshots carry
// the *absolute* retained origin as their grid anchor (see Snapshot), but
// the default is the layout the retained-partial cache is designed around
// (DESIGN.md §10).
static_assert(core::kernels::kBlockElems % ColumnSegment::kDefaultCapacity == 0,
              "default segment capacity must tile the canonical summation block");

StatusOr<ts::SeriesId> DataMatrixTable::RegisterSeries(const std::string& name,
                                                       const std::string& source,
                                                       double interval_seconds) {
  if (rows_ > 0) {
    return Status::FailedPrecondition(
        "cannot register series after rows have been appended (series must stay aligned)");
  }
  if (name.empty()) return Status::InvalidArgument("series name must be non-empty");
  if (by_name_.contains(name)) {
    return Status::AlreadyExists("series '" + name + "' is already registered");
  }
  const auto id = static_cast<ts::SeriesId>(catalog_.size());
  catalog_.push_back(SeriesInfo{id, name, source, interval_seconds});
  by_name_[name] = id;
  columns_.emplace_back();
  return id;
}

AFFINITY_HOT Status DataMatrixTable::AppendRow(const std::vector<double>& row) {
  if (catalog_.empty()) {
    return Status::FailedPrecondition("no series registered");
  }
  if (row.size() != catalog_.size()) {
    return Status::InvalidArgument("row has " + std::to_string(row.size()) +
                                   " values, table has " + std::to_string(catalog_.size()) +
                                   " series");
  }
  for (std::size_t j = 0; j < row.size(); ++j) {
    auto& segs = columns_[j];
    if (segs.empty() || segs.back().full()) segs.emplace_back(segment_capacity_);
    segs.back().Append(row[j]);
  }
  ++rows_;
  return Status::OK();
}

Status DataMatrixTable::AppendRows(const std::vector<std::vector<double>>& rows) {
  for (const auto& row : rows) AFFINITY_RETURN_IF_ERROR(AppendRow(row));
  return Status::OK();
}

std::size_t DataMatrixTable::CompactBefore(std::size_t row) {
  if (catalog_.empty() || row <= first_retained_) return 0;
  if (row > rows_) row = rows_;
  // Only whole segments are reclaimed, and all retained leading segments
  // are full (partial fills only ever exist at the tail), so the boundary
  // arithmetic stays aligned across every column.
  const std::size_t whole_segments = (row - first_retained_) / segment_capacity_;
  if (whole_segments == 0) return 0;
  for (auto& segs : columns_) {
    segs.erase(segs.begin(), segs.begin() + static_cast<long>(whole_segments));
  }
  const std::size_t reclaimed = whole_segments * segment_capacity_;
  first_retained_ += reclaimed;
  // The retained origin must stay on a segment boundary: Snapshot stamps
  // it as the snapshot's absolute block-grid anchor, and a misaligned
  // origin would shift every chain's block boundaries and silently
  // invalidate retained partials downstream (DESIGN.md §10).
  AFFINITY_CHECK_EQ(first_retained_ % segment_capacity_, 0u);
  return reclaimed;
}

StatusOr<SeriesInfo> DataMatrixTable::GetSeriesInfo(ts::SeriesId id) const {
  if (id >= catalog_.size()) {
    return Status::OutOfRange("series id " + std::to_string(id) + " out of range");
  }
  return catalog_[id];
}

StatusOr<ts::SeriesId> DataMatrixTable::FindSeries(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return Status::NotFound("no series named '" + name + "'");
  return it->second;
}

StatusOr<double> DataMatrixTable::ColumnMin(ts::SeriesId id) const {
  if (id >= columns_.size()) return Status::OutOfRange("series id out of range");
  if (retained_row_count() == 0) return Status::FailedPrecondition("table is empty");
  double out = columns_[id].front().min();
  for (const auto& seg : columns_[id]) out = std::min(out, seg.min());
  return out;
}

StatusOr<double> DataMatrixTable::ColumnMax(ts::SeriesId id) const {
  if (id >= columns_.size()) return Status::OutOfRange("series id out of range");
  if (retained_row_count() == 0) return Status::FailedPrecondition("table is empty");
  double out = columns_[id].front().max();
  for (const auto& seg : columns_[id]) out = std::max(out, seg.max());
  return out;
}

StatusOr<double> DataMatrixTable::ColumnSum(ts::SeriesId id) const {
  if (id >= columns_.size()) return Status::OutOfRange("series id out of range");
  double out = 0.0;
  // affinity-lint: allow(fp-accumulate): combines per-segment sums in segment order —
  // fixed by construction; the per-segment sums come from the canonical chains
  for (const auto& seg : columns_[id]) out += seg.sum();
  return out;
}

StatusOr<ts::DataMatrix> DataMatrixTable::Snapshot() const {
  if (catalog_.empty()) return Status::FailedPrecondition("no series registered");
  if (retained_row_count() == 0) return Status::FailedPrecondition("no rows retained");
  la::Matrix values(retained_row_count(), catalog_.size());
  std::vector<std::string> names(catalog_.size());
  for (std::size_t j = 0; j < catalog_.size(); ++j) {
    names[j] = catalog_[j].name;
    double* dst = values.ColData(j);
    std::size_t i = 0;
    for (const auto& seg : columns_[j]) {
      for (double v : seg.values()) dst[i++] = v;
    }
  }
  ts::DataMatrix out(std::move(values), std::move(names));
  // Snapshots keep their place on the absolute summation grid: row 0 of
  // the snapshot is logical row `first_retained_` of the stream, so sums
  // over the snapshot (and over any TailWindow of it) land on the same
  // block boundaries as the incrementally maintained window — the
  // alignment the retained-partial cache depends on.
  out.set_anchor_row(first_retained_);
  return out;
}

StatusOr<std::vector<DataMatrixTable::SegmentRef>> DataMatrixTable::ColumnSegments(
    ts::SeriesId id) const {
  if (id >= columns_.size()) return Status::OutOfRange("series id out of range");
  std::vector<SegmentRef> out;
  out.reserve(columns_[id].size());
  std::size_t row = first_retained_;
  for (const auto& seg : columns_[id]) {
    // The captured `rows` freezes how much of the (possibly still-growing)
    // tail segment this handle covers; the buffer pointer is stable
    // because segments reserve their full capacity up front.
    out.push_back(SegmentRef{seg.shared_values(), row, seg.size()});
    row += seg.size();
  }
  return out;
}

StatusOr<DataMatrixTable> DataMatrixTable::FromDataMatrix(const ts::DataMatrix& data,
                                                          const std::string& source,
                                                          double interval_seconds) {
  DataMatrixTable table;
  for (std::size_t j = 0; j < data.n(); ++j) {
    AFFINITY_RETURN_IF_ERROR(
        table.RegisterSeries(data.name(static_cast<ts::SeriesId>(j)), source, interval_seconds)
            .status());
  }
  std::vector<double> row(data.n());
  for (std::size_t i = 0; i < data.m(); ++i) {
    for (std::size_t j = 0; j < data.n(); ++j) row[j] = data.matrix()(i, j);
    AFFINITY_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

}  // namespace affinity::storage
