#ifndef AFFINITY_STORAGE_TABLE_H_
#define AFFINITY_STORAGE_TABLE_H_

/// \file table.h
/// The `data_matrix` table of Fig. 2: a catalog of registered series plus
/// append-only columnar storage, with an aligned snapshot operation that
/// produces the in-memory `ts::DataMatrix` the AFFINITY pipeline consumes.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "storage/column_segment.h"
#include "ts/data_matrix.h"

namespace affinity::storage {

/// Catalog row describing one registered series.
struct SeriesInfo {
  ts::SeriesId id = 0;
  std::string name;
  std::string source;              ///< e.g. "finance", "sensor", "rss"
  double interval_seconds = 60.0;  ///< sampling interval Δt
};

/// Append-only columnar table of aligned time series, with segment-level
/// reclamation for windowed deployments.
///
/// Usage:
///   DataMatrixTable table;
///   auto id = table.RegisterSeries("INTC", "finance", 60.0);
///   table.AppendRow({...one value per registered series...});
///   auto snapshot = table.Snapshot();   // -> ts::DataMatrix
///
/// `CompactBefore(row)` drops whole segments that lie entirely below a
/// logical row, so a streaming ingester can keep resident storage O(window)
/// while logical row numbering stays stable: `row_count()` keeps counting
/// every row ever appended and `first_retained_row()` reports how many of
/// the leading ones have been reclaimed. Snapshots and the column
/// aggregates cover the retained rows only.
class DataMatrixTable {
 public:
  /// \param segment_capacity samples per column segment (> 0; checked).
  /// Reclamation is whole-segment, so `first_retained_row()` advances in
  /// multiples of this; snapshots stamp that origin as their absolute
  /// block-grid anchor (see Snapshot), which is what keeps blocked sums
  /// over snapshots aligned with incrementally maintained windows no
  /// matter how the capacity relates to `kernels::kBlockElems`.
  explicit DataMatrixTable(std::size_t segment_capacity = ColumnSegment::kDefaultCapacity)
      : segment_capacity_(segment_capacity) {
    AFFINITY_CHECK_GT(segment_capacity_, 0u);
  }

  /// Registers a new series; names must be unique (AlreadyExists otherwise).
  /// Registration is only allowed before the first row is appended
  /// (FailedPrecondition afterwards — series must stay aligned).
  StatusOr<ts::SeriesId> RegisterSeries(const std::string& name, const std::string& source,
                                        double interval_seconds);

  /// Appends one aligned sample row; `row.size()` must equal series_count().
  Status AppendRow(const std::vector<double>& row);

  /// Appends many rows (convenience for loaders).
  Status AppendRows(const std::vector<std::vector<double>>& rows);

  /// Number of registered series.
  std::size_t series_count() const { return catalog_.size(); }

  /// Number of appended rows (including reclaimed ones).
  std::size_t row_count() const { return rows_; }

  /// Logical index of the first row still resident (0 before any
  /// compaction; always a segment-capacity multiple).
  std::size_t first_retained_row() const { return first_retained_; }

  /// Number of rows currently resident: row_count() − first_retained_row().
  std::size_t retained_row_count() const { return rows_ - first_retained_; }

  /// Reclaims every whole segment lying entirely before logical row `row`
  /// (segment granularity: up to segment_capacity − 1 older rows stay
  /// resident). Returns the number of rows reclaimed by this call.
  std::size_t CompactBefore(std::size_t row);

  /// Catalog lookup by id (OutOfRange) or name (NotFound).
  StatusOr<SeriesInfo> GetSeriesInfo(ts::SeriesId id) const;
  StatusOr<ts::SeriesId> FindSeries(const std::string& name) const;

  /// Segment-summary aggregates over a column's retained rows —
  /// O(#segments).
  StatusOr<double> ColumnMin(ts::SeriesId id) const;
  StatusOr<double> ColumnMax(ts::SeriesId id) const;
  StatusOr<double> ColumnSum(ts::SeriesId id) const;

  /// Materializes the aligned snapshot of the retained rows as a
  /// DataMatrix. FailedPrecondition when the table has no series or no
  /// retained rows.
  StatusOr<ts::DataMatrix> Snapshot() const;

  /// Samples per column segment.
  std::size_t segment_capacity() const { return segment_capacity_; }

  /// Refcounted view of one resident column segment — the copy-on-write
  /// publication seam (DESIGN.md §11). `values` keeps the buffer alive
  /// past `CompactBefore`; `first_row` is the absolute logical row of
  /// `values->front()`; `rows` is how many samples were resident when the
  /// handle was captured (the tail segment may grow afterwards, but only
  /// past `rows`, so captured handles read a frozen prefix).
  struct SegmentRef {
    std::shared_ptr<const std::vector<double>> values;
    std::size_t first_row = 0;
    std::size_t rows = 0;
  };

  /// Shared handles on every resident segment of column `id`, in row
  /// order. OutOfRange for an unknown id. O(#segments), zero sample
  /// copies.
  StatusOr<std::vector<SegmentRef>> ColumnSegments(ts::SeriesId id) const;

  /// Bulk-loads an existing DataMatrix into a fresh table.
  static StatusOr<DataMatrixTable> FromDataMatrix(const ts::DataMatrix& data,
                                                  const std::string& source,
                                                  double interval_seconds);

 private:
  std::size_t segment_capacity_;
  std::vector<SeriesInfo> catalog_;
  std::unordered_map<std::string, ts::SeriesId> by_name_;
  std::vector<std::vector<ColumnSegment>> columns_;  // per series, per segment
  std::size_t rows_ = 0;
  std::size_t first_retained_ = 0;  // logical row of columns_[j].front()[0]
};

}  // namespace affinity::storage

#endif  // AFFINITY_STORAGE_TABLE_H_
