#ifndef AFFINITY_STORAGE_COLUMN_SEGMENT_H_
#define AFFINITY_STORAGE_COLUMN_SEGMENT_H_

/// \file column_segment.h
/// Fixed-capacity append-only segment of a stored time series.
///
/// The storage layer splits every series into segments and keeps per-segment
/// summaries (count/min/max/sum) so scans can skip or pre-aggregate without
/// touching samples — the standard columnar-store layout the paper's Fig. 2
/// assumes underneath the `data_matrix` table.
///
/// The sample buffer is held behind a shared_ptr and fully reserved at
/// construction, which gives snapshot publication a copy-on-write seam
/// (DESIGN.md §11): `shared_values()` hands out a refcounted handle whose
/// data pointer is stable for the segment's whole life (Append never
/// reallocates), so a published epoch can keep reading a segment after the
/// table reclaims it — or while the writer is still filling its tail.
/// Readers of a shared handle may only touch rows the writer had appended
/// when the handle's row count was captured; the writer only ever appends
/// past that point, so the element ranges are disjoint.

#include <algorithm>
#include <cstddef>
#include <limits>
#include <memory>
#include <vector>

#include "common/check.h"

namespace affinity::storage {

/// One immutable-once-full run of consecutive samples.
class ColumnSegment {
 public:
  /// \param capacity maximum number of samples this segment holds.
  explicit ColumnSegment(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity), values_(std::make_shared<std::vector<double>>()) {
    AFFINITY_CHECK_GT(capacity_, 0u);
    values_->reserve(capacity_);
  }

  /// Copies allocate a fresh (reserved) buffer: a copied segment is an
  /// independent value, never an alias of the original's samples — only
  /// `shared_values()` handles share. Moves transfer the buffer.
  ColumnSegment(const ColumnSegment& other)
      : capacity_(other.capacity_),
        values_(std::make_shared<std::vector<double>>()),
        min_(other.min_),
        max_(other.max_),
        sum_(other.sum_) {
    values_->reserve(capacity_);
    *values_ = *other.values_;
  }
  ColumnSegment& operator=(const ColumnSegment& other) {
    if (this != &other) {
      capacity_ = other.capacity_;
      values_ = std::make_shared<std::vector<double>>();
      values_->reserve(capacity_);
      *values_ = *other.values_;
      min_ = other.min_;
      max_ = other.max_;
      sum_ = other.sum_;
    }
    return *this;
  }
  ColumnSegment(ColumnSegment&&) noexcept = default;
  ColumnSegment& operator=(ColumnSegment&&) noexcept = default;

  static constexpr std::size_t kDefaultCapacity = 1024;

  /// True when no further samples fit.
  bool full() const { return values_->size() >= capacity_; }

  /// Number of stored samples.
  std::size_t size() const { return values_->size(); }

  /// Appends one sample; the segment must not be full (checked). The
  /// reserved buffer guarantees no reallocation, so previously captured
  /// `shared_values()` data pointers stay valid.
  void Append(double v) {
    AFFINITY_CHECK(!full());
    values_->push_back(v);
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    sum_ += v;
  }

  /// Raw sample access.
  const std::vector<double>& values() const { return *values_; }

  /// Refcounted handle on the sample buffer (copy-on-write publication
  /// seam — see the file comment for the aliasing contract).
  std::shared_ptr<const std::vector<double>> shared_values() const { return values_; }

  /// Segment summaries (valid when size() > 0).
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t capacity_;
  std::shared_ptr<std::vector<double>> values_;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double sum_ = 0.0;
};

}  // namespace affinity::storage

#endif  // AFFINITY_STORAGE_COLUMN_SEGMENT_H_
