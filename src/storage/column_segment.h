#ifndef AFFINITY_STORAGE_COLUMN_SEGMENT_H_
#define AFFINITY_STORAGE_COLUMN_SEGMENT_H_

/// \file column_segment.h
/// Fixed-capacity append-only segment of a stored time series.
///
/// The storage layer splits every series into segments and keeps per-segment
/// summaries (count/min/max/sum) so scans can skip or pre-aggregate without
/// touching samples — the standard columnar-store layout the paper's Fig. 2
/// assumes underneath the `data_matrix` table.

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "common/check.h"

namespace affinity::storage {

/// One immutable-once-full run of consecutive samples.
class ColumnSegment {
 public:
  /// \param capacity maximum number of samples this segment holds.
  explicit ColumnSegment(std::size_t capacity = kDefaultCapacity) : capacity_(capacity) {
    AFFINITY_CHECK_GT(capacity_, 0u);
    values_.reserve(capacity_);
  }

  static constexpr std::size_t kDefaultCapacity = 1024;

  /// True when no further samples fit.
  bool full() const { return values_.size() >= capacity_; }

  /// Number of stored samples.
  std::size_t size() const { return values_.size(); }

  /// Appends one sample; the segment must not be full (checked).
  void Append(double v) {
    AFFINITY_CHECK(!full());
    values_.push_back(v);
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    sum_ += v;
  }

  /// Raw sample access.
  const std::vector<double>& values() const { return values_; }

  /// Segment summaries (valid when size() > 0).
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t capacity_;
  std::vector<double> values_;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double sum_ = 0.0;
};

}  // namespace affinity::storage

#endif  // AFFINITY_STORAGE_COLUMN_SEGMENT_H_
